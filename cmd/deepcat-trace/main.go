// Command deepcat-trace inspects tuning flight-recorder traces: the
// per-step decision streams recorded by package trace — every candidate
// configuration the Twin-Q Optimizer scored with both critic values, the
// reward decomposition of every observation, RDPER routing and the timed
// spans around them.
//
// Input is one of three sources:
//
//	deepcat-trace -spool traces/s-1f.jsonl          a daemon's on-disk spool
//	deepcat-trace -addr http://:8080 -session s-1f  a live daemon's ring
//	deepcat-trace -demo -steps 5                    an in-process demo session
//
// The default output is a per-step summary table. -why drills into one
// step: every candidate the optimizer scored, which was chosen and why the
// others were rejected, the reward arithmetic and the replay routing.
// -export chrome renders the trace as Chrome trace-event JSON for Perfetto
// or chrome://tracing (-o picks the output file, default stdout).
//
// A fourth mode stitches one request's propagated trace context back
// together across the spools of several fleet processes:
//
//	deepcat-trace -stitch router-traces,shard1-traces,shard2-traces
//
// picks the trace spanning the most spools (-trace-id selects one
// explicitly) and prints a single cross-process timeline with per-stage
// latency attribution; combined with -export chrome it writes a
// multi-track Chrome trace, one process track per spool.
// -require-sources N exits non-zero unless the trace crosses at least N
// spools — CI uses it to assert that propagation survived a 307/proxy hop.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"deepcat/internal/cli"
	"deepcat/internal/core"
	"deepcat/internal/service/client"
	"deepcat/internal/trace"
)

func main() {
	var (
		spool   = flag.String("spool", "", "read events from a JSONL spool file")
		addr    = flag.String("addr", "", "read events from a live daemon at this base URL (requires -session)")
		session = flag.String("session", "", "session id to fetch from -addr")

		demo     = flag.Bool("demo", false, "record a deterministic in-process demo session")
		workload = flag.String("workload", "TS", "demo workload: WC, TS, PR or KM")
		input    = flag.Int("input", 1, "demo dataset index (1-3)")
		cluster  = flag.String("cluster", "a", "demo cluster: a or b")
		seed     = flag.Int64("seed", 1, "demo random seed")
		steps    = flag.Int("steps", 5, "demo online tuning steps")
		offline  = flag.Int("offline", 0, "demo offline training iterations before tuning")

		n      = flag.Int("n", 0, "only consider the most recent n events (0 = all)")
		why    = flag.Int("why", 0, "drill into one online step: candidates, verdicts, reward arithmetic")
		export = flag.String("export", "", `export format: "chrome" (Perfetto / chrome://tracing)`)
		out    = flag.String("o", "", "export output file (default stdout)")

		stitch     = flag.String("stitch", "", "comma-separated trace dirs: stitch one request's spans across their spools")
		traceID    = flag.String("trace-id", "", "stitch this trace id (default: the trace spanning the most sources)")
		requireSrc = flag.Int("require-sources", 0, "with -stitch, exit non-zero unless the trace spans at least this many spools")
	)
	flag.Parse()

	if *stitch != "" {
		if err := runStitch(*stitch, *traceID, *requireSrc, *export, *out); err != nil {
			fatal(err)
		}
		return
	}

	events, label, err := loadEvents(*spool, *addr, *session, *demo,
		*workload, *input, *cluster, *seed, *steps, *offline, *n)
	if err != nil {
		fatal(err)
	}
	if len(events) == 0 {
		fatal(fmt.Errorf("no events (empty trace)"))
	}

	switch {
	case *export != "":
		if *export != "chrome" {
			fatal(fmt.Errorf("unknown export format %q", *export))
		}
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := trace.WriteChrome(w, label, events); err != nil {
			fatal(err)
		}
		if *out != "" {
			fmt.Printf("wrote %d events to %s\n", len(events), *out)
		}
	case *why > 0:
		whyStep(events, *why)
	default:
		summarize(events, label)
	}
}

// runStitch joins one propagated request trace across the spool files of
// several processes (router, shards, spine) and prints it as a single
// timeline — or exports it as a multi-track Chrome trace with -export.
func runStitch(dirList, traceID string, requireSrc int, export, out string) error {
	var dirs []string
	for _, d := range strings.Split(dirList, ",") {
		if d = strings.TrimSpace(d); d != "" {
			dirs = append(dirs, d)
		}
	}
	if len(dirs) == 0 {
		return fmt.Errorf("-stitch needs at least one trace directory")
	}
	traces, err := trace.CollectTraces(dirs)
	if err != nil {
		return err
	}
	if len(traces) == 0 {
		return fmt.Errorf("no propagated traces under %s (were the daemons started with a trace dir?)", dirList)
	}
	id := traceID
	if id == "" {
		id = trace.BestTrace(traces)
	}
	events, ok := traces[id]
	if !ok {
		return fmt.Errorf("trace %s not found (%d traces collected; omit -trace-id to auto-pick the widest)", id, len(traces))
	}
	sources := trace.Sources(events)
	if requireSrc > 0 && len(sources) < requireSrc {
		return fmt.Errorf("trace %s spans %d source(s) %v, need at least %d", id, len(sources), sources, requireSrc)
	}
	switch export {
	case "":
		stitchSummary(id, events, sources)
		return nil
	case "chrome":
		w := os.Stdout
		if out != "" {
			f, err := os.Create(out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := trace.WriteChromeStitched(w, id, events); err != nil {
			return err
		}
		if out != "" {
			fmt.Printf("wrote stitched trace %s (%d events, %d sources) to %s\n", id, len(events), len(sources), out)
		}
		return nil
	default:
		return fmt.Errorf("unknown export format %q", export)
	}
}

// stitchSummary prints a stitched trace as one chronological timeline with
// per-stage latency attribution: each span's offset from the request start,
// its duration and which process it ran in.
func stitchSummary(id string, events []trace.SourcedEvent, sources []string) {
	var spans []trace.SourcedEvent
	for _, se := range events {
		if se.Event.Kind == trace.KindSpan {
			spans = append(spans, se)
		}
	}
	sort.SliceStable(spans, func(i, j int) bool {
		return spans[i].Event.Time.Before(spans[j].Event.Time)
	})
	fmt.Printf("trace %s: %d spans across %d sources (%s)\n",
		id, len(spans), len(sources), strings.Join(sources, ", "))
	if len(spans) == 0 {
		return
	}
	start := spans[0].Event.Time
	stage := map[string]time.Duration{}
	for _, se := range spans {
		ev := se.Event
		dur := time.Duration(ev.DurNS)
		stage[ev.Span] += dur
		line := fmt.Sprintf("  +%-9s %-24s %-16s %s",
			ev.Time.Sub(start).Round(time.Microsecond), se.Source, ev.Span, dur.Round(time.Microsecond))
		if rid := ev.Attrs["request_id"]; rid != "" {
			line += "  request_id=" + rid
		}
		if tgt := ev.Attrs["target"]; tgt != "" {
			line += "  target=" + tgt
		}
		fmt.Println(line)
	}
	names := make([]string, 0, len(stage))
	for name := range stage {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Println("stage totals:")
	for _, name := range names {
		fmt.Printf("  %-24s %s\n", name, stage[name].Round(time.Microsecond))
	}
}

// loadEvents resolves the input source flags into an event slice and a
// label naming the session.
func loadEvents(spool, addr, session string, demo bool,
	workload string, input int, cluster string, seed int64, steps, offline, n int) ([]trace.Event, string, error) {
	var (
		events []trace.Event
		label  string
		err    error
	)
	switch {
	case demo:
		events, err = runDemo(workload, input, cluster, seed, steps, offline)
		label = fmt.Sprintf("demo-%s-%d-%s-seed%d", workload, input, cluster, seed)
	case spool != "":
		events, err = readSpoolWithRotation(spool)
		label = strings.TrimSuffix(spool[strings.LastIndexByte(spool, '/')+1:], ".jsonl")
	case addr != "":
		if session == "" {
			return nil, "", fmt.Errorf("-addr requires -session")
		}
		resp, cerr := client.New(addr).Trace(session, n)
		if cerr != nil {
			return nil, "", cerr
		}
		if resp.Dropped > 0 {
			fmt.Fprintf(os.Stderr, "note: the daemon's ring evicted %d older events (use -spool on its trace dir for the full stream)\n", resp.Dropped)
		}
		return resp.Events, session, nil
	default:
		return nil, "", fmt.Errorf("pick an input: -spool FILE, -addr URL -session ID, or -demo")
	}
	if err != nil {
		return nil, "", err
	}
	if n > 0 && len(events) > n {
		events = events[len(events)-n:]
	}
	return events, label, nil
}

// readSpoolWithRotation reads a spool plus its rotated predecessor
// (<path>.1) when one exists, oldest events first.
func readSpoolWithRotation(path string) ([]trace.Event, error) {
	var events []trace.Event
	if _, err := os.Stat(path + ".1"); err == nil {
		old, err := trace.ReadSpool(path + ".1")
		if err != nil {
			return nil, err
		}
		events = old
	}
	cur, err := trace.ReadSpool(path)
	if err != nil {
		return nil, err
	}
	return append(events, cur...), nil
}

// runDemo drives a cold tuner through a few suggest/observe steps against
// the simulated environment with a recorder attached, and returns the
// recorded stream. Same seed, same events — the demo is deterministic.
func runDemo(workload string, input int, cluster string, seed int64, steps, offline int) ([]trace.Event, error) {
	e, err := cli.BuildEnv(cluster, workload, input, seed)
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig(e.StateDim(), e.Space().Dim())
	tuner, err := core.New(rand.New(rand.NewSource(seed)), cfg)
	if err != nil {
		return nil, err
	}
	rec := trace.NewSession(trace.Options{RingSize: 16384})
	tuner.SetRecorder(rec)
	if offline > 0 {
		tuner.OfflineTrain(e, offline, nil)
	}
	state := e.IdleState()
	defTime := e.DefaultTime()
	prevTime := defTime
	lastFailed := false
	for step := 1; step <= steps; step++ {
		rec.SetStep(step)
		action, _ := tuner.Suggest(state, lastFailed)
		outcome := e.Evaluate(action)
		tuner.Observe(state, action, outcome.ExecTime, prevTime, defTime,
			outcome.State, step == steps)
		lastFailed = outcome.Failed
		prevTime = outcome.ExecTime
		state = outcome.State
	}
	return rec.Recent(0), nil
}

// stepView is everything the inspector knows about one online step.
type stepView struct {
	step       int
	candidates []trace.Candidate
	reward     *trace.RewardBreakdown
	routes     []trace.Route
	spans      map[string]time.Duration
	trainOnce  int
}

// collate groups events into per-step views, ordered by step. Events from
// outside any step (step 0: construction, offline training) are collected
// under step 0.
func collate(events []trace.Event) []stepView {
	byStep := map[int]*stepView{}
	get := func(step int) *stepView {
		v, ok := byStep[step]
		if !ok {
			v = &stepView{step: step, spans: map[string]time.Duration{}}
			byStep[step] = v
		}
		return v
	}
	for _, ev := range events {
		v := get(ev.Step)
		switch ev.Kind {
		case trace.KindCandidate:
			v.candidates = append(v.candidates, *ev.Candidate)
		case trace.KindReward:
			rb := *ev.Reward
			v.reward = &rb
		case trace.KindRoute:
			v.routes = append(v.routes, *ev.Route)
		case trace.KindSpan:
			if ev.Span == "train_once" {
				v.trainOnce++
			}
			v.spans[ev.Span] += time.Duration(ev.DurNS)
		}
	}
	out := make([]stepView, 0, len(byStep))
	for _, v := range byStep {
		out = append(out, *v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].step < out[j].step })
	return out
}

// chosen returns the index of the candidate the optimizer returned: the
// first accepted one, else the best-scoring (Algorithm 1's fallback when
// MaxTries is exhausted).
func chosen(cands []trace.Candidate) int {
	best := -1
	for i, c := range cands {
		if c.Accepted {
			return i
		}
		if best < 0 || c.MinQ > cands[best].MinQ {
			best = i
		}
	}
	return best
}

func summarize(events []trace.Event, label string) {
	views := collate(events)
	fmt.Printf("trace %s: %d events\n", label, len(events))
	for _, v := range views {
		if v.step == 0 {
			var parts []string
			for _, name := range []string{"donor_adopt", "offline_train", "warehouse_ingest"} {
				if d, ok := v.spans[name]; ok {
					parts = append(parts, fmt.Sprintf("%s %s", name, d.Round(time.Microsecond)))
				}
			}
			if v.trainOnce > 0 {
				parts = append(parts, fmt.Sprintf("%d train iterations", v.trainOnce))
			}
			if len(parts) > 0 {
				fmt.Printf("setup: %s\n", strings.Join(parts, ", "))
			}
			continue
		}
		line := fmt.Sprintf("step %-3d", v.step)
		if len(v.candidates) > 0 {
			ch := chosen(v.candidates)
			rejected := len(v.candidates) - 1
			verdict := "fallback best"
			if v.candidates[ch].Accepted {
				verdict = "accepted"
			}
			line += fmt.Sprintf("  twinq: %2d scored, %2d rejected, chose try %d (min-Q %+.3f, %s, q_th %.2f)",
				len(v.candidates), rejected, v.candidates[ch].Try, v.candidates[ch].MinQ, verdict, v.candidates[ch].QTh)
		}
		if v.reward != nil {
			line += fmt.Sprintf("  reward %+.3f (exec %.1fs)", v.reward.Reward, v.reward.ExecTime)
		}
		for _, rt := range v.routes {
			line += fmt.Sprintf("  -> %s pool", rt.Pool)
			break
		}
		fmt.Println(line)
	}
	fmt.Println("\nuse -why STEP for the full candidate list and reward arithmetic of one step")
}

func whyStep(events []trace.Event, step int) {
	for _, v := range collate(events) {
		if v.step != step {
			continue
		}
		fmt.Printf("step %d\n", step)
		if len(v.candidates) > 0 {
			ch := chosen(v.candidates)
			fmt.Printf("  twin-Q search (%d candidates, q_th %.2f):\n", len(v.candidates), v.candidates[0].QTh)
			for i, c := range v.candidates {
				verdict := "rejected"
				if c.Accepted {
					verdict = "ACCEPTED"
				}
				mark := "  "
				if i == ch {
					mark = "=>"
				}
				origin := ""
				if c.Try == 1 {
					origin = "  (raw actor output)"
				}
				fmt.Printf("   %s try %-3d min-Q %+.4f (q1 %+.4f, q2 %+.4f)  %s%s\n",
					mark, c.Try, c.MinQ, c.Q1, c.Q2, verdict, origin)
			}
			if !v.candidates[ch].Accepted {
				fmt.Printf("      no candidate reached q_th in %d tries; best-scoring perturbation returned\n", len(v.candidates))
			}
		}
		if r := v.reward; r != nil {
			fmt.Printf("  reward (%s mode): exec %.3fs, prev %.3fs, default %.3fs", r.Mode, r.ExecTime, r.PrevTime, r.DefTime)
			if r.Mode != "delta" {
				fmt.Printf(", perf_e %.3fs (default/%.3g)", r.PerfE, r.SpeedupTarget)
			}
			fmt.Printf(" => %+.4f\n", r.Reward)
		}
		for _, rt := range v.routes {
			fmt.Printf("  rdper: reward %+.4f vs r_th %+.3g -> %s pool (high %d, low %d)\n",
				rt.Reward, rt.RTh, rt.Pool, rt.HighLen, rt.LowLen)
		}
		if len(v.spans) > 0 {
			var names []string
			for name := range v.spans {
				names = append(names, name)
			}
			sort.Strings(names)
			var parts []string
			for _, name := range names {
				if name == "train_once" {
					parts = append(parts, fmt.Sprintf("train_once x%d (%s total)", v.trainOnce, v.spans[name].Round(time.Microsecond)))
					continue
				}
				parts = append(parts, fmt.Sprintf("%s %s", name, v.spans[name].Round(time.Microsecond)))
			}
			fmt.Printf("  spans: %s\n", strings.Join(parts, ", "))
		}
		return
	}
	fatal(fmt.Errorf("no events for step %d in this trace", step))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "deepcat-trace:", err)
	os.Exit(1)
}
