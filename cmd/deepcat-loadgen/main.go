// Command deepcat-loadgen drives a deepcat-serve daemon or fleet with many
// concurrent simulated tuning sessions and reports latency histograms per
// operation, so capacity limits and routing regressions show up before a
// real scheduler hits them.
//
// Each simulated session is created (letting the receiving shard assign a
// self-owned id), runs a fixed number of suggest/observe rounds with
// synthetic execution-time measurements, and is finally deleted. Sessions
// are spread round-robin over the target URLs; with a fleet behind them the
// 307 redirects are followed transparently, so the measured latencies
// include routing cost — exactly what a client sees.
//
// Example:
//
//	deepcat-loadgen -targets http://127.0.0.1:8080 -sessions 10000 \
//	    -concurrency 256 -rounds 3 -report loadgen.json
//
// The process exits non-zero when the error rate exceeds -max-error-rate,
// making it usable as a CI gate; -short selects the small preset CI runs
// against a 3-shard fleet.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"deepcat/internal/obs"
	"deepcat/internal/service"
	"deepcat/internal/service/client"
)

// workloads cycles the Table-1 workload abbreviations across sessions so
// the daemon exercises several workload families, not one hot family.
var workloads = []string{"WC", "TS", "PR", "KM"}

// opStats aggregates one operation type across all workers.
type opStats struct {
	hist   *obs.Histogram
	errors atomic.Uint64

	mu  sync.Mutex
	max float64
}

func newOpStats() *opStats { return &opStats{hist: obs.NewHistogram(nil)} }

func (o *opStats) observe(d time.Duration) {
	s := d.Seconds()
	o.hist.Observe(s)
	o.mu.Lock()
	if s > o.max {
		o.max = s
	}
	o.mu.Unlock()
}

// opReport is one operation's slice of the JSON report.
type opReport struct {
	Count  uint64  `json:"count"`
	Errors uint64  `json:"errors"`
	P50ms  float64 `json:"p50_ms"`
	P90ms  float64 `json:"p90_ms"`
	P99ms  float64 `json:"p99_ms"`
	Maxms  float64 `json:"max_ms"`
	Meanms float64 `json:"mean_ms"`
}

func (o *opStats) report() opReport {
	r := opReport{Count: o.hist.Count(), Errors: o.errors.Load()}
	if r.Count > 0 {
		r.P50ms = o.hist.Quantile(0.5) * 1000
		r.P90ms = o.hist.Quantile(0.9) * 1000
		r.P99ms = o.hist.Quantile(0.99) * 1000
		r.Meanms = o.hist.Sum() / float64(r.Count) * 1000
	}
	o.mu.Lock()
	r.Maxms = o.max * 1000
	o.mu.Unlock()
	return r
}

// report is the full JSON document written by -report.
type report struct {
	Targets         []string            `json:"targets"`
	Sessions        int                 `json:"sessions"`
	Rounds          int                 `json:"rounds"`
	Concurrency     int                 `json:"concurrency"`
	DurationSeconds float64             `json:"duration_seconds"`
	SessionsOK      uint64              `json:"sessions_ok"`
	SessionsFailed  uint64              `json:"sessions_failed"`
	OpsPerSecond    float64             `json:"ops_per_second"`
	ErrorRate       float64             `json:"error_rate"`
	Ops             map[string]opReport `json:"ops"`
}

func main() {
	var (
		targetsFlag  = flag.String("targets", "http://127.0.0.1:8080", "comma-separated daemon base URLs (sessions spread round-robin)")
		sessions     = flag.Int("sessions", 10000, "number of simulated sessions")
		concurrency  = flag.Int("concurrency", 256, "concurrent workers")
		rounds       = flag.Int("rounds", 3, "suggest/observe rounds per session")
		seed         = flag.Int64("seed", 1, "base seed for the synthetic measurements")
		reportPath   = flag.String("report", "", "write the JSON report to this file (empty = stdout summary only)")
		maxErrorRate = flag.Float64("max-error-rate", 0, "exit non-zero when the op error rate exceeds this fraction")
		readyTimeout = flag.Duration("ready-timeout", 30*time.Second, "how long to wait for every target's /v1/readyz")
		opTimeout    = flag.Duration("op-timeout", 30*time.Second, "per-operation deadline")
		cleanup      = flag.Bool("cleanup", true, "delete sessions when their rounds finish")
		short        = flag.Bool("short", false, "CI preset: 2 rounds, 32 workers (explicit flags still win)")
	)
	flag.Parse()
	if *short {
		// Presets apply only where the user did not set the flag explicitly.
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["rounds"] {
			*rounds = 2
		}
		if !set["concurrency"] {
			*concurrency = 32
		}
	}
	targets := splitTargets(*targetsFlag)
	if len(targets) == 0 {
		fatal(fmt.Errorf("no targets"))
	}
	if *sessions < 1 || *rounds < 1 || *concurrency < 1 {
		fatal(fmt.Errorf("sessions, rounds and concurrency must be positive"))
	}
	if *concurrency > *sessions {
		*concurrency = *sessions
	}

	clients := make([]*client.Client, len(targets))
	for i, t := range targets {
		clients[i] = client.New(t)
	}
	if err := waitReady(clients, *readyTimeout); err != nil {
		fatal(err)
	}
	fmt.Printf("deepcat-loadgen: %d sessions x %d rounds over %d target(s), %d workers\n",
		*sessions, *rounds, len(targets), *concurrency)

	stats := map[string]*opStats{
		"create":  newOpStats(),
		"suggest": newOpStats(),
		"observe": newOpStats(),
		"delete":  newOpStats(),
	}
	var okSessions, failedSessions atomic.Uint64

	start := time.Now()
	idxc := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxc {
				if runSession(clients[i%len(clients)], i, *rounds, *seed, *opTimeout, *cleanup, stats) {
					okSessions.Add(1)
				} else {
					failedSessions.Add(1)
				}
			}
		}()
	}
	for i := 0; i < *sessions; i++ {
		idxc <- i
	}
	close(idxc)
	wg.Wait()
	elapsed := time.Since(start)

	rep := report{
		Targets:         targets,
		Sessions:        *sessions,
		Rounds:          *rounds,
		Concurrency:     *concurrency,
		DurationSeconds: elapsed.Seconds(),
		SessionsOK:      okSessions.Load(),
		SessionsFailed:  failedSessions.Load(),
		Ops:             make(map[string]opReport, len(stats)),
	}
	var totalOps, totalErrs uint64
	for name, st := range stats {
		r := st.report()
		rep.Ops[name] = r
		totalOps += r.Count + r.Errors
		totalErrs += r.Errors
	}
	if elapsed > 0 {
		rep.OpsPerSecond = float64(totalOps) / elapsed.Seconds()
	}
	if totalOps > 0 {
		rep.ErrorRate = float64(totalErrs) / float64(totalOps)
	}

	for _, name := range []string{"create", "suggest", "observe", "delete"} {
		r := rep.Ops[name]
		fmt.Printf("  %-8s count %-7d errors %-4d p50 %.1fms p90 %.1fms p99 %.1fms max %.1fms\n",
			name, r.Count, r.Errors, r.P50ms, r.P90ms, r.P99ms, r.Maxms)
	}
	fmt.Printf("  %d/%d sessions ok in %.1fs (%.0f ops/s, error rate %.4f)\n",
		rep.SessionsOK, rep.Sessions, rep.DurationSeconds, rep.OpsPerSecond, rep.ErrorRate)

	if *reportPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*reportPath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("  report written to %s\n", *reportPath)
	}
	if rep.ErrorRate > *maxErrorRate {
		fatal(fmt.Errorf("error rate %.4f exceeds limit %.4f", rep.ErrorRate, *maxErrorRate))
	}
}

// runSession drives one simulated session end to end, reporting whether
// every operation succeeded.
func runSession(c *client.Client, idx, rounds int, seed int64, opTimeout time.Duration, cleanup bool, stats map[string]*opStats) bool {
	rng := rand.New(rand.NewSource(seed + int64(idx)))
	wl := workloads[idx%len(workloads)]
	input := 1 + idx%3

	ctx, cancel := context.WithTimeout(context.Background(), opTimeout)
	start := time.Now()
	info, err := c.CreateSessionCtx(ctx, service.CreateSessionRequest{
		Workload: wl, Input: input, Seed: seed + int64(idx),
		// Warm-starting 10k sessions would serialize on donor lookups and
		// measure the warehouse, not the serving path.
		NoWarmStart: true,
	})
	cancel()
	if err != nil {
		stats["create"].errors.Add(1)
		return false
	}
	stats["create"].observe(time.Since(start))

	ok := true
	for r := 0; r < rounds; r++ {
		ctx, cancel := context.WithTimeout(context.Background(), opTimeout)
		start = time.Now()
		_, err := c.SuggestCtx(ctx, info.ID)
		cancel()
		if err != nil {
			stats["suggest"].errors.Add(1)
			ok = false
			break
		}
		stats["suggest"].observe(time.Since(start))

		// A plausible, strictly finite execution time with mild noise; the
		// absolute value is irrelevant to the serving-path measurement.
		exec := 60 + 20*rng.Float64()
		ctx, cancel = context.WithTimeout(context.Background(), opTimeout)
		start = time.Now()
		_, err = c.ObserveCtx(ctx, info.ID, service.ObserveRequest{ExecTime: exec})
		cancel()
		if err != nil {
			stats["observe"].errors.Add(1)
			ok = false
			break
		}
		stats["observe"].observe(time.Since(start))
	}

	if cleanup {
		ctx, cancel := context.WithTimeout(context.Background(), opTimeout)
		start = time.Now()
		err := c.DeleteSessionCtx(ctx, info.ID)
		cancel()
		if err != nil {
			stats["delete"].errors.Add(1)
			ok = false
		} else {
			stats["delete"].observe(time.Since(start))
		}
	}
	return ok
}

// waitReady polls every target's readiness endpoint until all answer 200
// or the deadline passes.
func waitReady(clients []*client.Client, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		pending := ""
		for _, c := range clients {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			_, err := c.Ready(ctx)
			cancel()
			if err != nil {
				pending = fmt.Sprintf("%s: %v", c.BaseURL, err)
				break
			}
		}
		if pending == "" {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("targets not ready after %s (%s)", timeout, pending)
		}
		time.Sleep(250 * time.Millisecond)
	}
}

func splitTargets(s string) []string {
	var out []string
	for _, t := range strings.Split(s, ",") {
		t = strings.TrimRight(strings.TrimSpace(t), "/")
		if t != "" {
			out = append(out, t)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "deepcat-loadgen:", err)
	os.Exit(1)
}
