// Command deepcat-loadgen drives a deepcat-serve daemon or fleet with many
// concurrent simulated tuning sessions and reports latency histograms per
// operation, so capacity limits and routing regressions show up before a
// real scheduler hits them.
//
// Each simulated session is created (letting the receiving shard assign a
// self-owned id), runs a fixed number of suggest/observe rounds with
// synthetic execution-time measurements, and is finally deleted. Sessions
// are spread round-robin over the target URLs; with a fleet behind them the
// 307 redirects are followed transparently, so the measured latencies
// include routing cost — exactly what a client sees.
//
// Example:
//
//	deepcat-loadgen -targets http://127.0.0.1:8080 -sessions 10000 \
//	    -concurrency 256 -rounds 3 -report loadgen.json
//
// The process exits non-zero when the error rate exceeds -max-error-rate
// or when -slo-p99 is set and the suggest/observe error budget is burned
// (more than 1% of operations over the threshold), making it usable as a
// CI latency gate; -short selects the small preset CI runs against a
// 3-shard fleet. When $GITHUB_STEP_SUMMARY is set the report is also
// appended there as markdown.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"deepcat/internal/obs"
	"deepcat/internal/service"
	"deepcat/internal/service/client"
)

// workloads cycles the Table-1 workload abbreviations across sessions so
// the daemon exercises several workload families, not one hot family.
var workloads = []string{"WC", "TS", "PR", "KM"}

// opStats aggregates one operation type across all workers. sloMs, when
// positive, is the latency SLO threshold: over counts the operations that
// exceeded it, tallied exactly at observation time rather than estimated
// from histogram buckets afterwards.
type opStats struct {
	hist   *obs.Histogram
	errors atomic.Uint64
	sloMs  float64
	over   atomic.Uint64
	// Error taxonomy for overload runs: shed429 counts admission sheds,
	// shed504 deadline/budget rejects (both controlled answers, not
	// faults), fivexx genuine server faults (5xx other than 504), and
	// transport network-level failures (refused, reset, timed out).
	shed429   atomic.Uint64
	shed504   atomic.Uint64
	fivexx    atomic.Uint64
	transport atomic.Uint64

	mu  sync.Mutex
	max float64
}

func newOpStats() *opStats { return &opStats{hist: obs.NewHistogram(nil)} }

// fail records one failed operation, classified by what the server (or
// the network) actually said. A typed APIError carries the status; any
// other error is a transport-level failure.
func (o *opStats) fail(err error) {
	o.errors.Add(1)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		o.transport.Add(1)
		return
	}
	switch {
	case apiErr.Status == 429:
		o.shed429.Add(1)
	case apiErr.Status == 504:
		o.shed504.Add(1)
	case apiErr.Status >= 500 && apiErr.Status < 600:
		o.fivexx.Add(1)
	}
}

func (o *opStats) observe(d time.Duration) {
	s := d.Seconds()
	o.hist.Observe(s)
	if o.sloMs > 0 && s*1000 > o.sloMs {
		o.over.Add(1)
	}
	o.mu.Lock()
	if s > o.max {
		o.max = s
	}
	o.mu.Unlock()
}

// opReport is one operation's slice of the JSON report.
type opReport struct {
	Count  uint64 `json:"count"`
	Errors uint64 `json:"errors"`
	// Shed429/Shed504 break Errors down into controlled overload answers;
	// FiveXX are real server faults, Transport network-level failures.
	Shed429   uint64  `json:"shed_429,omitempty"`
	Shed504   uint64  `json:"shed_504,omitempty"`
	FiveXX    uint64  `json:"five_xx,omitempty"`
	Transport uint64  `json:"transport_errors,omitempty"`
	P50ms     float64 `json:"p50_ms"`
	P90ms     float64 `json:"p90_ms"`
	P99ms     float64 `json:"p99_ms"`
	Maxms     float64 `json:"max_ms"`
	Meanms    float64 `json:"mean_ms"`
}

func (o *opStats) report() opReport {
	r := opReport{
		Count: o.hist.Count(), Errors: o.errors.Load(),
		Shed429: o.shed429.Load(), Shed504: o.shed504.Load(),
		FiveXX: o.fivexx.Load(), Transport: o.transport.Load(),
	}
	if r.Count > 0 {
		r.P50ms = o.hist.Quantile(0.5) * 1000
		r.P90ms = o.hist.Quantile(0.9) * 1000
		r.P99ms = o.hist.Quantile(0.99) * 1000
		r.Meanms = o.hist.Sum() / float64(r.Count) * 1000
	}
	o.mu.Lock()
	r.Maxms = o.max * 1000
	o.mu.Unlock()
	return r
}

// sloReport is one operation's SLO verdict. BudgetBurn is how much of the
// error budget the run consumed: the fraction of operations over the
// threshold divided by the fraction the target quantile allows (1% for a
// p99 SLO) — 1.0 means exactly at budget, above 1.0 is a violation.
type sloReport struct {
	Op         string  `json:"op"`
	Quantile   float64 `json:"quantile"`
	TargetMs   float64 `json:"target_ms"`
	ActualMs   float64 `json:"actual_ms"`
	Over       uint64  `json:"over_threshold"`
	Count      uint64  `json:"count"`
	BudgetBurn float64 `json:"error_budget_burn"`
	Violated   bool    `json:"violated"`
}

// report is the full JSON document written by -report.
type report struct {
	Targets         []string `json:"targets"`
	Sessions        int      `json:"sessions"`
	Rounds          int      `json:"rounds"`
	Concurrency     int      `json:"concurrency"`
	DurationSeconds float64  `json:"duration_seconds"`
	SessionsOK      uint64   `json:"sessions_ok"`
	SessionsFailed  uint64   `json:"sessions_failed"`
	OpsPerSecond    float64  `json:"ops_per_second"`
	ErrorRate       float64  `json:"error_rate"`
	// Shed429/Shed504 total the controlled overload answers across all
	// ops; FiveXX and TransportErrors are the genuine failures.
	// Availability is the fraction of operations that received a
	// controlled answer (success or shed) — sheds are the server working
	// as designed under overload, not an outage.
	Shed429         uint64              `json:"shed_429"`
	Shed504         uint64              `json:"shed_504"`
	FiveXX          uint64              `json:"five_xx"`
	TransportErrors uint64              `json:"transport_errors"`
	Availability    float64             `json:"availability"`
	Ops             map[string]opReport `json:"ops"`
	// SLO is present when -slo-p99 was set: one verdict per serving-path
	// operation (suggest, observe).
	SLO []sloReport `json:"slo,omitempty"`
}

func main() {
	var (
		targetsFlag  = flag.String("targets", "http://127.0.0.1:8080", "comma-separated daemon base URLs (sessions spread round-robin)")
		sessions     = flag.Int("sessions", 10000, "number of simulated sessions")
		concurrency  = flag.Int("concurrency", 256, "concurrent workers")
		rounds       = flag.Int("rounds", 3, "suggest/observe rounds per session")
		seed         = flag.Int64("seed", 1, "base seed for the synthetic measurements")
		reportPath   = flag.String("report", "", "write the JSON report to this file (empty = stdout summary only)")
		maxErrorRate = flag.Float64("max-error-rate", 0, "exit non-zero when the op error rate exceeds this fraction")
		max5xx       = flag.Int64("max-5xx", -1, "exit non-zero when genuine 5xx answers (excluding 504 budget rejects) exceed this count; -1 disables")
		minAvail     = flag.Float64("min-availability", 0, "exit non-zero when the fraction of ops receiving a controlled answer (2xx/429/504) falls below this; 0 disables")
		sloP99       = flag.Float64("slo-p99", 0, "p99 latency SLO in ms for suggest and observe; exit non-zero when the error budget is burned")
		readyTimeout = flag.Duration("ready-timeout", 30*time.Second, "how long to wait for every target's /v1/readyz")
		opTimeout    = flag.Duration("op-timeout", 30*time.Second, "per-operation deadline")
		cleanup      = flag.Bool("cleanup", true, "delete sessions when their rounds finish")
		short        = flag.Bool("short", false, "CI preset: 2 rounds, 32 workers (explicit flags still win)")
	)
	flag.Parse()
	if *short {
		// Presets apply only where the user did not set the flag explicitly.
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["rounds"] {
			*rounds = 2
		}
		if !set["concurrency"] {
			*concurrency = 32
		}
	}
	targets := splitTargets(*targetsFlag)
	if len(targets) == 0 {
		fatal(fmt.Errorf("no targets"))
	}
	if *sessions < 1 || *rounds < 1 || *concurrency < 1 {
		fatal(fmt.Errorf("sessions, rounds and concurrency must be positive"))
	}
	if *concurrency > *sessions {
		*concurrency = *sessions
	}

	clients := make([]*client.Client, len(targets))
	for i, t := range targets {
		clients[i] = client.New(t)
	}
	if err := waitReady(clients, *readyTimeout); err != nil {
		fatal(err)
	}
	fmt.Printf("deepcat-loadgen: %d sessions x %d rounds over %d target(s), %d workers\n",
		*sessions, *rounds, len(targets), *concurrency)

	stats := map[string]*opStats{
		"create":  newOpStats(),
		"suggest": newOpStats(),
		"observe": newOpStats(),
		"delete":  newOpStats(),
	}
	// The SLO covers the serving path a scheduler blocks on, not session
	// setup or teardown.
	stats["suggest"].sloMs = *sloP99
	stats["observe"].sloMs = *sloP99
	var okSessions, failedSessions atomic.Uint64

	start := time.Now()
	idxc := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxc {
				if runSession(clients[i%len(clients)], i, *rounds, *seed, *opTimeout, *cleanup, stats) {
					okSessions.Add(1)
				} else {
					failedSessions.Add(1)
				}
			}
		}()
	}
	for i := 0; i < *sessions; i++ {
		idxc <- i
	}
	close(idxc)
	wg.Wait()
	elapsed := time.Since(start)

	rep := report{
		Targets:         targets,
		Sessions:        *sessions,
		Rounds:          *rounds,
		Concurrency:     *concurrency,
		DurationSeconds: elapsed.Seconds(),
		SessionsOK:      okSessions.Load(),
		SessionsFailed:  failedSessions.Load(),
		Ops:             make(map[string]opReport, len(stats)),
	}
	var totalOps, totalErrs uint64
	for name, st := range stats {
		r := st.report()
		rep.Ops[name] = r
		totalOps += r.Count + r.Errors
		totalErrs += r.Errors
		rep.Shed429 += r.Shed429
		rep.Shed504 += r.Shed504
		rep.FiveXX += r.FiveXX
		rep.TransportErrors += r.Transport
	}
	if elapsed > 0 {
		rep.OpsPerSecond = float64(totalOps) / elapsed.Seconds()
	}
	if totalOps > 0 {
		rep.ErrorRate = float64(totalErrs) / float64(totalOps)
		rep.Availability = 1 - float64(rep.FiveXX+rep.TransportErrors)/float64(totalOps)
	}
	if *sloP99 > 0 {
		for _, name := range []string{"suggest", "observe"} {
			rep.SLO = append(rep.SLO, sloVerdict(name, stats[name], *sloP99, 0.99))
		}
	}

	for _, name := range []string{"create", "suggest", "observe", "delete"} {
		r := rep.Ops[name]
		fmt.Printf("  %-8s count %-7d errors %-4d p50 %.1fms p90 %.1fms p99 %.1fms max %.1fms\n",
			name, r.Count, r.Errors, r.P50ms, r.P90ms, r.P99ms, r.Maxms)
	}
	fmt.Printf("  %d/%d sessions ok in %.1fs (%.0f ops/s, error rate %.4f)\n",
		rep.SessionsOK, rep.Sessions, rep.DurationSeconds, rep.OpsPerSecond, rep.ErrorRate)
	if rep.Shed429+rep.Shed504+rep.FiveXX+rep.TransportErrors > 0 {
		fmt.Printf("  shed 429 %d, shed 504 %d, 5xx %d, transport %d (availability %.4f)\n",
			rep.Shed429, rep.Shed504, rep.FiveXX, rep.TransportErrors, rep.Availability)
	}
	for _, s := range rep.SLO {
		verdict := "ok"
		if s.Violated {
			verdict = "VIOLATED"
		}
		fmt.Printf("  slo %-8s p99 %.1fms vs target %.1fms, %d/%d over threshold (budget burn %.2f) %s\n",
			s.Op, s.ActualMs, s.TargetMs, s.Over, s.Count, s.BudgetBurn, verdict)
	}
	publishStepSummary(rep)

	if *reportPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*reportPath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("  report written to %s\n", *reportPath)
	}
	if rep.ErrorRate > *maxErrorRate {
		fatal(fmt.Errorf("error rate %.4f exceeds limit %.4f", rep.ErrorRate, *maxErrorRate))
	}
	if *max5xx >= 0 && int64(rep.FiveXX) > *max5xx {
		fatal(fmt.Errorf("%d genuine 5xx answers exceed limit %d (shed paths must answer 429/504)", rep.FiveXX, *max5xx))
	}
	if *minAvail > 0 && rep.Availability < *minAvail {
		fatal(fmt.Errorf("availability %.4f below minimum %.4f (5xx %d, transport %d)",
			rep.Availability, *minAvail, rep.FiveXX, rep.TransportErrors))
	}
	for _, s := range rep.SLO {
		if s.Violated {
			fatal(fmt.Errorf("SLO violated: %s p99 %.1fms exceeds %.1fms (%d/%d over threshold, budget burn %.2f)",
				s.Op, s.ActualMs, s.TargetMs, s.Over, s.Count, s.BudgetBurn))
		}
	}
}

// sloVerdict scores one operation against a latency SLO at the given
// quantile. The violation test uses the exact over-threshold count (burn >
// 1), not the interpolated quantile estimate, so bucket boundaries cannot
// flip the verdict.
func sloVerdict(name string, st *opStats, targetMs, quantile float64) sloReport {
	s := sloReport{
		Op:       name,
		Quantile: quantile,
		TargetMs: targetMs,
		Over:     st.over.Load(),
		Count:    st.hist.Count(),
	}
	if s.Count > 0 {
		s.ActualMs = st.hist.Quantile(quantile) * 1000
		allowed := 1 - quantile
		s.BudgetBurn = (float64(s.Over) / float64(s.Count)) / allowed
		s.Violated = s.BudgetBurn > 1
	}
	return s
}

// publishStepSummary appends a markdown run summary to the file named by
// $GITHUB_STEP_SUMMARY, when present — the loadgen's report rendered on
// the CI job page without digging through logs.
func publishStepSummary(rep report) {
	path := os.Getenv("GITHUB_STEP_SUMMARY")
	if path == "" {
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "### deepcat-loadgen: %d sessions x %d rounds, %d workers\n\n",
		rep.Sessions, rep.Rounds, rep.Concurrency)
	fmt.Fprintf(&b, "%d/%d sessions ok in %.1fs — %.0f ops/s, error rate %.4f\n\n",
		rep.SessionsOK, rep.Sessions, rep.DurationSeconds, rep.OpsPerSecond, rep.ErrorRate)
	b.WriteString("| op | count | errors | p50 | p90 | p99 | max |\n|---|---|---|---|---|---|---|\n")
	for _, name := range []string{"create", "suggest", "observe", "delete"} {
		r := rep.Ops[name]
		fmt.Fprintf(&b, "| %s | %d | %d | %.1fms | %.1fms | %.1fms | %.1fms |\n",
			name, r.Count, r.Errors, r.P50ms, r.P90ms, r.P99ms, r.Maxms)
	}
	if len(rep.SLO) > 0 {
		b.WriteString("\n| SLO op | target | actual p99 | over/count | budget burn | verdict |\n|---|---|---|---|---|---|\n")
		for _, s := range rep.SLO {
			verdict := "ok"
			if s.Violated {
				verdict = "**VIOLATED**"
			}
			fmt.Fprintf(&b, "| %s | %.1fms | %.1fms | %d/%d | %.2f | %s |\n",
				s.Op, s.TargetMs, s.ActualMs, s.Over, s.Count, s.BudgetBurn, verdict)
		}
	}
	b.WriteString("\n")
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		fmt.Fprintf(os.Stderr, "deepcat-loadgen: step summary: %v\n", err)
		return
	}
	defer f.Close()
	if _, err := f.WriteString(b.String()); err != nil {
		fmt.Fprintf(os.Stderr, "deepcat-loadgen: step summary: %v\n", err)
	}
}

// runSession drives one simulated session end to end, reporting whether
// every operation succeeded.
func runSession(c *client.Client, idx, rounds int, seed int64, opTimeout time.Duration, cleanup bool, stats map[string]*opStats) bool {
	rng := rand.New(rand.NewSource(seed + int64(idx)))
	wl := workloads[idx%len(workloads)]
	input := 1 + idx%3

	ctx, cancel := context.WithTimeout(context.Background(), opTimeout)
	start := time.Now()
	info, err := c.CreateSessionCtx(ctx, service.CreateSessionRequest{
		Workload: wl, Input: input, Seed: seed + int64(idx),
		// Warm-starting 10k sessions would serialize on donor lookups and
		// measure the warehouse, not the serving path.
		NoWarmStart: true,
	})
	cancel()
	if err != nil {
		stats["create"].fail(err)
		return false
	}
	stats["create"].observe(time.Since(start))

	ok := true
	for r := 0; r < rounds; r++ {
		ctx, cancel := context.WithTimeout(context.Background(), opTimeout)
		start = time.Now()
		_, err := c.SuggestCtx(ctx, info.ID)
		cancel()
		if err != nil {
			stats["suggest"].fail(err)
			ok = false
			break
		}
		stats["suggest"].observe(time.Since(start))

		// A plausible, strictly finite execution time with mild noise; the
		// absolute value is irrelevant to the serving-path measurement.
		exec := 60 + 20*rng.Float64()
		ctx, cancel = context.WithTimeout(context.Background(), opTimeout)
		start = time.Now()
		_, err = c.ObserveCtx(ctx, info.ID, service.ObserveRequest{ExecTime: exec})
		cancel()
		if err != nil {
			stats["observe"].fail(err)
			ok = false
			break
		}
		stats["observe"].observe(time.Since(start))
	}

	if cleanup {
		ctx, cancel := context.WithTimeout(context.Background(), opTimeout)
		start = time.Now()
		err := c.DeleteSessionCtx(ctx, info.ID)
		cancel()
		if err != nil {
			stats["delete"].fail(err)
			ok = false
		} else {
			stats["delete"].observe(time.Since(start))
		}
	}
	return ok
}

// waitReady polls every target's readiness endpoint until all answer 200
// or the deadline passes.
func waitReady(clients []*client.Client, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		pending := ""
		for _, c := range clients {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			_, err := c.Ready(ctx)
			cancel()
			if err != nil {
				pending = fmt.Sprintf("%s: %v", c.BaseURL, err)
				break
			}
		}
		if pending == "" {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("targets not ready after %s (%s)", timeout, pending)
		}
		time.Sleep(250 * time.Millisecond)
	}
}

func splitTargets(s string) []string {
	var out []string
	for _, t := range strings.Split(s, ",") {
		t = strings.TrimRight(strings.TrimSpace(t), "/")
		if t != "" {
			out = append(out, t)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "deepcat-loadgen:", err)
	os.Exit(1)
}
