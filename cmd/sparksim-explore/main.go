// Command sparksim-explore inspects the simulated Spark/YARN/HDFS cluster:
// default configuration times, random-search statistics and performance
// CDFs — useful for understanding the tuning landscape the agents face.
//
// Examples:
//
//	sparksim-explore                         # all 12 pairs, summary
//	sparksim-explore -workload TS -n 500     # deeper look at one pair
//	sparksim-explore -workload TS -show-default
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"

	"deepcat/internal/analysis"
	"deepcat/internal/sparksim"
)

func main() {
	var (
		workload    = flag.String("workload", "", "workload to explore (WC, TS, PR, KM); empty = all")
		input       = flag.Int("input", 1, "input dataset: 1, 2 or 3")
		cluster     = flag.String("cluster", "a", "hardware environment: a or b")
		n           = flag.Int("n", 200, "number of random configurations to sample")
		seed        = flag.Int64("seed", 1, "random seed")
		showDefault = flag.Bool("show-default", false, "print the default configuration values")
		importance  = flag.Bool("importance", false, "rank knob importance (Lasso) from the random samples")
	)
	flag.Parse()

	var cl sparksim.Cluster
	switch *cluster {
	case "a":
		cl = sparksim.ClusterA()
	case "b":
		cl = sparksim.ClusterB()
	default:
		fmt.Fprintf(os.Stderr, "sparksim-explore: unknown cluster %q\n", *cluster)
		os.Exit(1)
	}
	sim := sparksim.NewSimulator(cl, *seed)
	fmt.Println(cl.String())

	if *showDefault {
		fmt.Println("\ndefault configuration:")
		fmt.Print(sim.Space().Describe(sim.Space().DefaultValues()))
	}

	if *workload == "" {
		fmt.Printf("\n%-8s %-10s %-10s %-9s %-7s %s\n", "pair", "default", "best", "speedup", "fail%", "oom%")
		for _, p := range sparksim.AllPairs() {
			explore(sim, p.Workload, p.InputIdx, *n, *seed, false)
		}
		return
	}

	w, err := sparksim.WorkloadByShort(*workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sparksim-explore:", err)
		os.Exit(1)
	}
	if *input < 1 || *input > 3 {
		fmt.Fprintf(os.Stderr, "sparksim-explore: input %d outside 1..3\n", *input)
		os.Exit(1)
	}
	fmt.Printf("\n%-8s %-10s %-10s %-9s %-7s %s\n", "pair", "default", "best", "speedup", "fail%", "oom%")
	explore(sim, w, *input-1, *n, *seed, true)

	if *importance {
		rankKnobs(sim, w, *input-1, *n, *seed)
	}
}

// rankKnobs samples the workload and prints the Lasso knob-importance
// ranking (see internal/analysis).
func rankKnobs(sim *sparksim.Simulator, w sparksim.Workload, inputIdx, n int, seed int64) {
	rng := rand.New(rand.NewSource(seed + 1234))
	var actions [][]float64
	var times []float64
	for i := 0; i < n; i++ {
		u := sim.Space().RandomAction(rng)
		actions = append(actions, u)
		times = append(times, sim.Evaluate(w, inputIdx, u).ExecTime)
	}
	ranking, err := analysis.KnobImportance(sim.Space(), actions, times, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sparksim-explore:", err)
		return
	}
	fmt.Println("\nknob importance (Lasso weight on normalized knob; negative = raising it speeds the job up):")
	for i, imp := range ranking {
		if i >= 12 {
			break
		}
		fmt.Printf("  %2d. %-45s %9.2f\n", i+1, imp.Name, imp.Weight)
	}
}

func explore(sim *sparksim.Simulator, w sparksim.Workload, inputIdx, n int, seed int64, cdf bool) {
	rng := rand.New(rand.NewSource(seed + int64(inputIdx)*97))
	def := sim.DefaultTime(w, inputIdx)
	best := def
	var fails, ooms int
	times := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		r := sim.Evaluate(w, inputIdx, sim.Space().RandomAction(rng))
		times = append(times, r.ExecTime)
		if r.Failed {
			fails++
		}
		if r.OOM {
			ooms++
		}
		if !r.Failed && r.ExecTime < best {
			best = r.ExecTime
		}
	}
	fmt.Printf("%-8s %-10.1f %-10.1f %-9.2f %-7.1f %.1f\n",
		sparksim.PairLabel(w, inputIdx), def, best, def/best,
		100*float64(fails)/float64(n), 100*float64(ooms)/float64(n))

	if cdf {
		sort.Float64s(times)
		fmt.Println("\nexecution-time percentiles over random configurations:")
		for _, p := range []int{5, 25, 50, 75, 95} {
			idx := p * len(times) / 100
			if idx >= len(times) {
				idx = len(times) - 1
			}
			fmt.Printf("  p%-3d %.1fs\n", p, times[idx])
		}
	}
}
