// Command deepcat-chaos runs the fault-injection experiment: one
// offline-trained agent is snapshotted and restored twice, the first copy
// tunes a clean simulator with the classic loop, the second tunes a
// chaos-wrapped clone of it with the hardened loop, and the tool prints the
// convergence comparison. It exits non-zero when the faulted run's best
// time regresses past -max-gap, so CI can gate on it.
//
// Example:
//
//	deepcat-chaos -workload TS -input 1 -steps 12 -crash 0.1 -corrupt 0.1
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"deepcat/internal/chaos"
	"deepcat/internal/harness"
	"deepcat/internal/sparksim"
)

func main() {
	var (
		workload = flag.String("workload", "TS", "workload abbreviation: WC, TS, PR or KM")
		input    = flag.Int("input", 1, "1-based dataset index (1-3)")
		seed     = flag.Int64("seed", 1, "experiment seed (offline training and simulators)")
		offline  = flag.Int("offline-iters", 900, "offline training budget before online tuning")
		steps    = flag.Int("steps", 12, "online tuning steps per run")
		maxGap   = flag.Float64("max-gap", 0.15, "largest tolerated relative best-time regression")

		chaosSeed   = flag.Int64("chaos-seed", 7, "fault-schedule seed")
		crash       = flag.Float64("crash", 0.10, "per-evaluation crash probability")
		hang        = flag.Float64("hang", 0.05, "per-evaluation straggler probability")
		hangDur     = flag.Duration("hang-duration", 50*time.Millisecond, "straggler block duration")
		outlier     = flag.Float64("outlier", 0.10, "per-evaluation outlier probability")
		outlierMul  = flag.Float64("outlier-factor", 25, "outlier execution-time multiplier")
		corrupt     = flag.Float64("corrupt", 0.10, "per-evaluation NaN/Inf corruption probability")
		unavailEach = flag.Int("unavailable-every", 0, "deterministic unavailability window period (0 = off)")
		unavailLen  = flag.Int("unavailable-len", 0, "unavailability window length")
	)
	flag.Parse()

	w, err := sparksim.WorkloadByShort(*workload)
	if err != nil {
		fatal(err)
	}
	if *input < 1 || *input > 3 {
		fatal(fmt.Errorf("input %d outside 1..3", *input))
	}

	opts := harness.QuickOptions()
	opts.Seed = *seed
	opts.OfflineIters = *offline
	h := harness.New(opts)
	res, err := h.RunChaos(context.Background(), harness.ChaosOptions{
		Workload: w,
		InputIdx: *input - 1,
		Steps:    *steps,
		Chaos: chaos.Config{
			Seed:             *chaosSeed,
			CrashRate:        *crash,
			HangRate:         *hang,
			HangDuration:     *hangDur,
			OutlierRate:      *outlier,
			OutlierFactor:    *outlierMul,
			CorruptRate:      *corrupt,
			UnavailableEvery: *unavailEach,
			UnavailableLen:   *unavailLen,
		},
	})
	if err != nil {
		fatal(err)
	}
	res.Fprint(os.Stdout)
	if res.Gap > *maxGap {
		fatal(fmt.Errorf("faulted run regressed %.1f%%, tolerance is %.1f%%", res.Gap*100, *maxGap*100))
	}
	fmt.Printf("OK: faulted run within %.1f%% of fault-free baseline\n", *maxGap*100)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "deepcat-chaos:", err)
	os.Exit(1)
}
