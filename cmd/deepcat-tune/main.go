// Command deepcat-tune runs DeepCAT's online tuning stage: it loads (or
// freshly trains) an offline model and fine-tunes it on a target workload,
// reporting each step, the best configuration found and the total tuning
// cost.
//
// Examples:
//
//	deepcat-tune -model ts-d1.model -workload TS -input 1
//	deepcat-tune -workload PR -input 1 -train-iters 2000      # train first
//	deepcat-tune -model a.model -workload WC -cluster b       # migrate
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"deepcat/internal/cli"
	"deepcat/internal/core"
)

func main() {
	var ef cli.EnvFlags
	ef.Register(flag.CommandLine)
	var (
		model      = flag.String("model", "", "offline model file (from deepcat-train); empty trains fresh")
		trainIters = flag.Int("train-iters", 2000, "offline iterations when no -model is given")
		steps      = flag.Int("steps", 5, "online tuning steps")
		budget     = flag.Float64("budget", 0, "total tuning time budget in seconds (0 = none)")
		qth        = flag.Float64("qth", 0.3, "Twin-Q Optimizer threshold Q_th")
		noTwinQ    = flag.Bool("no-twinq", false, "disable the Twin-Q Optimizer")
	)
	flag.Parse()

	e, err := ef.Build()
	if err != nil {
		fatal(err)
	}
	// Models trained on Cluster A may recommend values outside Cluster B's
	// physical bounds; clamp per the paper's hardware-migration rule.
	if ef.Cluster == "b" {
		e.Clamp = true
	}

	var d *core.DeepCAT
	if *model != "" {
		d, err = core.LoadFile(*model, ef.Seed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded model from %s\n", *model)
	} else {
		cfg := core.DefaultConfig(e.StateDim(), e.Space().Dim())
		d, err = core.New(rand.New(rand.NewSource(ef.Seed)), cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("no model given; offline training on %s for %d iterations...\n", e.Label(), *trainIters)
		d.OfflineTrain(e, *trainIters, nil)
	}

	d.Cfg.OnlineSteps = *steps
	d.Cfg.TimeBudgetSeconds = *budget
	d.Cfg.TwinQ.QTh = *qth
	d.Cfg.UseTwinQ = !*noTwinQ

	fmt.Printf("online tuning %s (default %.1fs, budget %d steps)...\n\n",
		e.Label(), e.DefaultTime(), *steps)
	rep := d.OnlineTune(e)
	fmt.Print(rep.String())
	fmt.Printf("\nspeedup over default: %.2fx\n", rep.Speedup(e.DefaultTime()))
	fmt.Printf("total tuning cost: %.1fs (evaluation %.1fs + recommendation %.3fs)\n",
		rep.TotalCost(), rep.EvaluationCost(), rep.RecommendationCost())
	if rep.BestAction != nil {
		fmt.Printf("\nbest configuration found:\n%s", e.Space().Describe(e.Space().Denormalize(rep.BestAction)))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "deepcat-tune:", err)
	os.Exit(1)
}
