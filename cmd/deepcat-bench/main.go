// Command deepcat-bench regenerates the paper's tables and figures on the
// sparksim substrate.
//
// Examples:
//
//	deepcat-bench -exp all                 # everything, full profile
//	deepcat-bench -exp fig6 -profile quick # one figure, reduced scale
//	deepcat-bench -exp fig4,fig5,fig12
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"deepcat/internal/harness"
)

// experiments maps experiment ids to runners. Figures 6-8 share one
// comparison run through the harness cache. Runners return a non-nil
// harness.CSVWriter when the experiment has an exportable data series.
var experiments = []struct {
	id  string
	run func(h *harness.Harness, w io.Writer) (harness.CSVWriter, error)
}{
	{"table1", func(h *harness.Harness, w io.Writer) (harness.CSVWriter, error) {
		harness.FprintTable1(w)
		return nil, nil
	}},
	{"table2", func(h *harness.Harness, w io.Writer) (harness.CSVWriter, error) {
		harness.FprintTable2(w)
		return nil, nil
	}},
	{"fig2", func(h *harness.Harness, w io.Writer) (harness.CSVWriter, error) {
		r := h.RunFig2(200)
		r.Fprint(w)
		return r, nil
	}},
	{"fig3", func(h *harness.Harness, w io.Writer) (harness.CSVWriter, error) {
		r := h.RunFig3(h.Opts.OfflineIters, h.Opts.OfflineIters/15)
		r.Fprint(w)
		return r, nil
	}},
	{"fig4", func(h *harness.Harness, w io.Writer) (harness.CSVWriter, error) {
		r := h.RunFig4(fig4Marks(h))
		r.Fprint(w)
		return r, nil
	}},
	{"fig5", func(h *harness.Harness, w io.Writer) (harness.CSVWriter, error) {
		r := h.RunFig5(h.Opts.OfflineIters * 2 / 5)
		r.Fprint(w)
		return r, nil
	}},
	{"fig6", func(h *harness.Harness, w io.Writer) (harness.CSVWriter, error) {
		c := h.RunComparison()
		c.FprintFig6(w)
		return c, nil
	}},
	{"fig7", func(h *harness.Harness, w io.Writer) (harness.CSVWriter, error) {
		h.RunComparison().FprintFig7(w)
		return nil, nil // data shared with fig6.csv
	}},
	{"fig8", func(h *harness.Harness, w io.Writer) (harness.CSVWriter, error) {
		h.RunComparison().FprintFig8(w)
		return nil, nil // data shared with fig6.csv
	}},
	{"fig9", func(h *harness.Harness, w io.Writer) (harness.CSVWriter, error) {
		h.RunFig9().Fprint(w)
		return nil, nil
	}},
	{"fig10", func(h *harness.Harness, w io.Writer) (harness.CSVWriter, error) {
		h.RunFig10().Fprint(w)
		return nil, nil
	}},
	{"fig11", func(h *harness.Harness, w io.Writer) (harness.CSVWriter, error) {
		r := h.RunFig11(h.Opts.OfflineIters / 2)
		r.Fprint(w)
		return r, nil
	}},
	{"fig12", func(h *harness.Harness, w io.Writer) (harness.CSVWriter, error) {
		r := h.RunFig12(h.Opts.OfflineIters*2/5, []float64{0.1, 0.2, 0.3, 0.4, 0.5})
		r.Fprint(w)
		return r, nil
	}},
	{"extensions", func(h *harness.Harness, w io.Writer) (harness.CSVWriter, error) {
		r, err := h.RunExtensions()
		if err != nil {
			return nil, err
		}
		r.Fprint(w)
		return nil, nil
	}},
	{"dynamic", func(h *harness.Harness, w io.Writer) (harness.CSVWriter, error) {
		r, err := h.RunDynamic([]string{"TS", "PR", "WC", "KM"}, 8)
		if err != nil {
			return nil, err
		}
		r.Fprint(w)
		return nil, nil
	}},
	{"ablations", func(h *harness.Harness, w io.Writer) (harness.CSVWriter, error) {
		it := h.Opts.OfflineIters / 2
		runs := []func() (harness.AblationResult, error){
			func() (harness.AblationResult, error) { return h.RunAblationReplay(it) },
			func() (harness.AblationResult, error) { return h.RunAblationTwinQ(h.Opts.OfflineIters * 2 / 5) },
			func() (harness.AblationResult, error) { return h.RunAblationBackbone(it) },
			func() (harness.AblationResult, error) { return h.RunAblationReward(it) },
		}
		for i, run := range runs {
			r, err := run()
			if err != nil {
				return nil, err
			}
			if i > 0 {
				fmt.Fprintln(w)
			}
			r.Fprint(w)
		}
		return nil, nil
	}},
}

func fig4Marks(h *harness.Harness) []int {
	total := h.Opts.OfflineIters * 2 // convergence study trains longer
	step := total / 9
	marks := make([]int, 9)
	for i := range marks {
		marks[i] = step * (i + 1)
	}
	return marks
}

func main() {
	var (
		exp     = flag.String("exp", "all", "comma-separated experiment ids, or 'all'; ids: table1 table2 fig2..fig12 extensions dynamic ablations")
		profile = flag.String("profile", "full", "scale profile: full or quick")
		seed    = flag.Int64("seed", 1, "random seed")
		workers = flag.Int("workers", harness.AutoWorkers(), "goroutines for fan-out experiments (1 = serial)")
		out     = flag.String("out", "", "write output to file instead of stdout")
		csvDir  = flag.String("csv", "", "directory to write per-experiment CSV data series into")
	)
	flag.Parse()

	opts := harness.DefaultOptions()
	if *profile == "quick" {
		opts = harness.QuickOptions()
	} else if *profile != "full" {
		fmt.Fprintf(os.Stderr, "deepcat-bench: unknown profile %q\n", *profile)
		os.Exit(1)
	}
	opts.Seed = *seed
	opts.Workers = *workers
	h := harness.New(opts)

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "deepcat-bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	want := map[string]bool{}
	if *exp != "all" {
		for _, id := range strings.Split(*exp, ",") {
			want[strings.TrimSpace(id)] = true
		}
		for id := range want {
			if !known(id) {
				fmt.Fprintf(os.Stderr, "deepcat-bench: unknown experiment %q\n", id)
				os.Exit(1)
			}
		}
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "deepcat-bench:", err)
			os.Exit(1)
		}
	}
	for _, e := range experiments {
		if *exp != "all" && !want[e.id] {
			continue
		}
		start := time.Now()
		fmt.Fprintf(w, "=== %s ===\n", e.id)
		data, err := e.run(h, w)
		if err != nil {
			fmt.Fprintln(os.Stderr, "deepcat-bench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "(%s took %.1fs)\n\n", e.id, time.Since(start).Seconds())
		if *csvDir != "" && data != nil {
			if err := writeCSVFile(filepath.Join(*csvDir, e.id+".csv"), data); err != nil {
				fmt.Fprintln(os.Stderr, "deepcat-bench:", err)
				os.Exit(1)
			}
		}
	}
}

func writeCSVFile(path string, data harness.CSVWriter) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := data.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}

func known(id string) bool {
	for _, e := range experiments {
		if e.id == id {
			return true
		}
	}
	return false
}
