// Command deepcat-netchaos stands deterministic fault-injection TCP
// proxies in front of deepcat-serve shards (or anything else speaking
// TCP), replaying a seeded fault schedule — added latency, bandwidth
// throttles, connection resets, full and asymmetric partitions,
// slow-loris trickle — and reporting exactly what it did as JSON.
//
// Every fault is a pure function of -seed: two runs with the same seed,
// profile and duration inject byte-identical schedules, so a chaos CI job
// that fails replays locally with nothing more than the seed from its
// report.
//
//	deepcat-netchaos -proxies 127.0.0.1:18081=127.0.0.1:8081,127.0.0.1:18082=127.0.0.1:8082 \
//	    -profile partition -seed 42 -duration 30s -report chaos.json
//
// Each listen=upstream pair becomes one proxy; pair i runs the profile
// under seed+i so shards fail independently, not in lockstep. The process
// serves faults for the schedule's duration, waits for every window to
// heal, writes the report and exits 0 — or exits early on SIGINT/SIGTERM
// (still writing the report). -print-schedule dumps the schedules as JSON
// and exits without proxying, for inspecting what a seed would do.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"deepcat/internal/netchaos"
)

// proxyReport is one proxy's slice of the chaos report.
type proxyReport struct {
	Listen   string            `json:"listen"`
	Upstream string            `json:"upstream"`
	Schedule netchaos.Schedule `json:"schedule"`
	Stats    netchaos.Stats    `json:"stats"`
}

// chaosReport is the JSON document written by -report: everything needed
// to replay the run (profile, seed, duration) plus what each proxy
// observed while injecting it.
type chaosReport struct {
	Profile         string        `json:"profile"`
	Seed            int64         `json:"seed"`
	DurationSeconds float64       `json:"duration_seconds"`
	Interrupted     bool          `json:"interrupted,omitempty"`
	Proxies         []proxyReport `json:"proxies"`
}

func main() {
	var (
		proxiesFlag   = flag.String("proxies", "", "comma-separated listen=upstream address pairs, one proxy each")
		profile       = flag.String("profile", "mixed", "fault profile: "+strings.Join(netchaos.ProfileNames, ", "))
		seed          = flag.Int64("seed", 1, "schedule seed; pair i uses seed+i")
		duration      = flag.Duration("duration", 30*time.Second, "total schedule length")
		linger        = flag.Duration("linger", 0, "keep proxying fault-free for this long after the schedule heals (0 = exit once healed)")
		reportPath    = flag.String("report", "", "write the chaos report JSON here (empty = stdout)")
		printSchedule = flag.Bool("print-schedule", false, "print the schedules as JSON and exit without proxying")
	)
	flag.Parse()

	pairs, err := splitPairs(*proxiesFlag)
	if err != nil {
		fatal(err)
	}
	if len(pairs) == 0 && !*printSchedule {
		fatal(fmt.Errorf("no -proxies given"))
	}

	if *printSchedule {
		n := len(pairs)
		if n == 0 {
			n = 1
		}
		scheds := make([]netchaos.Schedule, n)
		for i := range scheds {
			s, err := netchaos.Profile(*profile, *seed+int64(i), *duration)
			if err != nil {
				fatal(err)
			}
			scheds[i] = s
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(scheds); err != nil {
			fatal(err)
		}
		return
	}

	proxies := make([]*netchaos.Proxy, 0, len(pairs))
	for i, pr := range pairs {
		sched, err := netchaos.Profile(*profile, *seed+int64(i), *duration)
		if err != nil {
			fatal(err)
		}
		p, err := netchaos.Start(pr[0], pr[1], sched)
		if err != nil {
			fatal(fmt.Errorf("proxy %s=%s: %w", pr[0], pr[1], err))
		}
		defer p.Close()
		proxies = append(proxies, p)
		fmt.Printf("deepcat-netchaos: %s -> %s profile %s seed %d (%d rules)\n",
			p.Addr(), pr[1], *profile, *seed+int64(i), len(sched.Rules))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	start := time.Now()

	// Serve faults until every proxy's schedule has healed (WaitHealthy
	// returns once no rule window is active), then optionally linger
	// fault-free so clients can be observed recovering through the same
	// proxies.
	interrupted := false
	for _, p := range proxies {
		if err := p.WaitHealthy(ctx); err != nil {
			interrupted = true
			break
		}
	}
	if !interrupted && *linger > 0 {
		select {
		case <-time.After(*linger):
		case <-ctx.Done():
			interrupted = true
		}
	}

	rep := chaosReport{
		Profile:         *profile,
		Seed:            *seed,
		DurationSeconds: time.Since(start).Seconds(),
		Interrupted:     interrupted,
	}
	for i, p := range proxies {
		rep.Proxies = append(rep.Proxies, proxyReport{
			Listen:   p.Addr(),
			Upstream: pairs[i][1],
			Schedule: p.Schedule(),
			Stats:    p.Stats(),
		})
		st := p.Stats()
		fmt.Printf("  %s: accepted %d refused %d resets %d, %dB up %dB down %dB dropped, %d delayed chunks\n",
			p.Addr(), st.Accepted, st.Refused, st.Resets, st.BytesUp, st.BytesDown, st.BytesDropped, st.DelayedChunk)
	}

	out := os.Stdout
	if *reportPath != "" {
		f, err := os.Create(*reportPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	if *reportPath != "" {
		fmt.Printf("  chaos report written to %s\n", *reportPath)
	}
}

// splitPairs parses "listen=upstream,listen=upstream" into address pairs.
func splitPairs(s string) ([][2]string, error) {
	var out [][2]string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		listen, upstream, ok := strings.Cut(part, "=")
		if !ok || listen == "" || upstream == "" {
			return nil, fmt.Errorf("bad proxy pair %q, want listen=upstream", part)
		}
		out = append(out, [2]string{listen, upstream})
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "deepcat-netchaos:", err)
	os.Exit(1)
}
