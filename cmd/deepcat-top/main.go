// Command deepcat-top is a terminal dashboard over a tuning fleet: a
// refresh loop against the router's GET /v1/fleet/metrics aggregation
// showing, per shard, request rate, latency quantiles, live and degraded
// session counts, shed requests (admission + deadline rejects) and scrape
// availability, plus the replay spine's health —
// per-family policy versions, adoption lag, queue depth and staleness, and
// the learner's train-loop duty cycle.
//
//	deepcat-top -addr http://127.0.0.1:8080              refresh loop (2s)
//	deepcat-top -addr http://127.0.0.1:8080 -once        one frame, no clear
//	deepcat-top -addr http://127.0.0.1:8080 -n 5         five frames, then exit
//
// Pointed at a daemon running without a fleet, it falls back to that
// node's own GET /v1/metrics/snapshot and renders a one-shard view.
// Request rates are deltas between consecutive frames, so the first frame
// shows "-" in the QPS column.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"deepcat/internal/obs"
	"deepcat/internal/service"
	"deepcat/internal/service/client"
)

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8080", "base URL of any fleet member (or a standalone daemon)")
		interval = flag.Duration("interval", 2*time.Second, "refresh interval")
		frames   = flag.Int("n", 0, "exit after this many frames (0 = run until interrupted)")
		once     = flag.Bool("once", false, "print a single frame without clearing the screen (same as -n 1)")
	)
	flag.Parse()
	if *once {
		*frames = 1
	}

	c := client.New(*addr)
	prev := map[string]uint64{} // shard URL -> last requests_total
	var prevAt time.Time
	for i := 0; *frames == 0 || i < *frames; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		resp, err := fetch(ctx, c, *addr)
		cancel()
		now := time.Now()
		if !*once && *frames != 1 {
			fmt.Print("\x1b[2J\x1b[H") // clear screen, cursor home
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "deepcat-top: %v\n", err)
			if *frames == 1 {
				os.Exit(1)
			}
			continue
		}
		render(resp, prev, now.Sub(prevAt), i > 0)
		next := map[string]uint64{}
		for _, sm := range resp.Shards {
			next[sm.URL] = sm.Snapshot.CounterTotal("deepcat_http_requests_total")
		}
		prev, prevAt = next, now
	}
}

// fetch asks for the fleet aggregation and falls back to the single node's
// own snapshot (rendered as a one-shard fleet) when the daemon has no
// fleet routes.
func fetch(ctx context.Context, c *client.Client, addr string) (service.FleetMetricsResponse, error) {
	resp, err := c.FleetMetrics(ctx)
	if err == nil {
		return resp, nil
	}
	snap, serr := c.MetricsSnapshot(ctx)
	if serr != nil {
		return service.FleetMetricsResponse{}, err
	}
	one := service.FleetMetricsResponse{
		Self:   addr,
		Shards: []service.ShardMetrics{{URL: addr, Self: true, OK: true, Snapshot: snap}},
		Merged: snap,
	}
	one.Merged.SetGauge("deepcat_fleet_shard_up", 1, "shard", addr)
	return one, nil
}

func render(resp service.FleetMetricsResponse, prev map[string]uint64, elapsed time.Duration, haveRates bool) {
	up := 0
	for _, sm := range resp.Shards {
		if sm.OK {
			up++
		}
	}
	fmt.Printf("deepcat-top  %s  via %s  shards %d/%d up\n\n",
		time.Now().Format("15:04:05"), resp.Self, up, len(resp.Shards))

	fmt.Printf("%-28s %-5s %6s %6s %8s %9s %9s %8s %7s\n",
		"SHARD", "UP", "SESS", "DEGR", "QPS", "p50", "p99", "ERR5XX", "SHED")
	for _, sm := range resp.Shards {
		name := sm.URL
		if sm.Self {
			name += " *"
		}
		if !sm.OK {
			reason := sm.Error
			if len(reason) > 40 {
				reason = reason[:40] + "..."
			}
			fmt.Printf("%-28s %-5s %s\n", name, "DOWN", reason)
			continue
		}
		snap := sm.Snapshot
		sess, _ := snap.GaugeValue("deepcat_sessions_live")
		degr, _ := snap.GaugeValue("deepcat_degraded_sessions")
		qps := "-"
		if haveRates && elapsed > 0 {
			cur := snap.CounterTotal("deepcat_http_requests_total")
			if last, ok := prev[sm.URL]; ok && cur >= last {
				qps = fmt.Sprintf("%.1f", float64(cur-last)/elapsed.Seconds())
			}
		}
		p50, p99 := "-", "-"
		if h := snap.HistogramTotal("deepcat_http_request_duration_seconds"); h != nil && h.Count > 0 {
			p50 = fmtLatency(h.Quantile(0.50))
			p99 = fmtLatency(h.Quantile(0.99))
		}
		fmt.Printf("%-28s %-5s %6d %6d %8s %9s %9s %8d %7d\n",
			name, "up", sess, degr, qps, p50, p99, errorCount(snap),
			snap.CounterTotal("deepcat_shed_total"))
	}

	merged := resp.Merged
	trips := merged.CounterTotal("deepcat_breaker_trips_total")
	proxied := merged.CounterTotal("deepcat_fleet_forwards_total")
	shed := merged.CounterTotal("deepcat_shed_total")
	spineShed := merged.CounterTotal("deepcat_spine_shed_transitions_total")
	fmt.Printf("\nfleet: %d sessions, %d breaker trips, %d forwards, %d shed (+%d spine transitions)\n",
		gaugeOrZero(merged, "deepcat_sessions_live"), trips, proxied, shed, spineShed)

	spineSection(merged)
}

// fmtLatency renders a latency in seconds with a unit that keeps three
// significant figures readable (µs/ms/s).
func fmtLatency(sec float64) string {
	switch {
	case sec < 0.001:
		return fmt.Sprintf("%.0fµs", sec*1e6)
	case sec < 1:
		return fmt.Sprintf("%.1fms", sec*1e3)
	default:
		return fmt.Sprintf("%.2fs", sec)
	}
}

// errorCount sums request counters whose code label is a 5xx.
func errorCount(snap obs.Snapshot) uint64 {
	var total uint64
	for _, ins := range snap.Instruments {
		if ins.Name == "deepcat_http_requests_total" && ins.Kind == "counter" &&
			strings.Contains(ins.Labels, `code="5`) {
			total += ins.Value
		}
	}
	return total
}

func gaugeOrZero(snap obs.Snapshot, name string) int64 {
	v, _ := snap.GaugeValue(name)
	return v
}

// spineSection renders per-family replay-spine health from the merged
// snapshot, if a spine is running anywhere in the fleet.
func spineSection(merged obs.Snapshot) {
	type laneRow struct {
		version, lag, depth, staleness int64
	}
	lanes := map[string]*laneRow{}
	get := func(fam string) *laneRow {
		r, ok := lanes[fam]
		if !ok {
			r = &laneRow{}
			lanes[fam] = r
		}
		return r
	}
	var dutyPermille int64 = -1
	for _, ins := range merged.Instruments {
		if ins.Kind != "gauge" {
			continue
		}
		fam := labelValue(ins.Labels, "family")
		switch ins.Name {
		case "deepcat_spine_policy_version":
			get(fam).version = ins.Gauge
		case "deepcat_spine_adoption_lag_versions":
			get(fam).lag = ins.Gauge
		case "deepcat_spine_queue_depth":
			get(fam).depth = ins.Gauge
		case "deepcat_spine_policy_staleness_seconds":
			get(fam).staleness = ins.Gauge
		case "deepcat_spine_learner_duty_permille":
			dutyPermille = ins.GaugeMax
		}
	}
	if len(lanes) == 0 && dutyPermille < 0 {
		return
	}
	fmt.Println("\nspine:")
	if dutyPermille >= 0 {
		fmt.Printf("  learner duty %.1f%%\n", float64(dutyPermille)/10)
	}
	fams := make([]string, 0, len(lanes))
	for fam := range lanes {
		fams = append(fams, fam)
	}
	sort.Strings(fams)
	if len(fams) > 0 {
		fmt.Printf("  %-16s %8s %6s %7s %10s\n", "FAMILY", "VERSION", "LAG", "QUEUE", "STALENESS")
		for _, fam := range fams {
			r := lanes[fam]
			fmt.Printf("  %-16s %8d %6d %7d %9ds\n", fam, r.version, r.lag, r.depth, r.staleness)
		}
	}
}

// labelValue extracts one label's value from a rendered label set like
// `family="wc-1-a",shard="..."`; "" when absent.
func labelValue(labels, key string) string {
	marker := key + `="`
	i := strings.Index(labels, marker)
	if i < 0 {
		return ""
	}
	rest := labels[i+len(marker):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return ""
	}
	return rest[:j]
}
