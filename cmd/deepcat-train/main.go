// Command deepcat-train runs DeepCAT's offline training stage on a
// simulated Spark cluster and saves the resulting model for later online
// tuning with deepcat-tune.
//
// Example:
//
//	deepcat-train -workload TS -input 1 -iters 2000 -o ts-d1.model
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"deepcat/internal/cli"
	"deepcat/internal/core"
)

func main() {
	var ef cli.EnvFlags
	ef.Register(flag.CommandLine)
	var (
		iters  = flag.Int("iters", 2000, "offline training iterations")
		beta   = flag.Float64("beta", 0.6, "RDPER high-reward batch ratio")
		replay = flag.String("replay", "rdper", "replay mechanism: rdper, uniform or per")
		out    = flag.String("o", "deepcat.model", "output model file")
	)
	flag.Parse()

	e, err := ef.Build()
	if err != nil {
		fatal(err)
	}
	cfg := core.DefaultConfig(e.StateDim(), e.Space().Dim())
	cfg.Beta = *beta
	cfg.ReplayMode = *replay
	d, err := core.New(rand.New(rand.NewSource(ef.Seed)), cfg)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("offline training on %s (default %.1fs) for %d iterations...\n",
		e.Label(), e.DefaultTime(), *iters)
	start := time.Now()
	trace := d.OfflineTrain(e, *iters, nil)
	fmt.Printf("done in %.1fs; RDPER pools: %d high-reward, %d low-reward\n",
		time.Since(start).Seconds(), trace.HighPool, trace.LowPool)

	last := trace.Iters[len(trace.Iters)-min(100, len(trace.Iters)):]
	var mean float64
	for _, it := range last {
		mean += it.Reward
	}
	fmt.Printf("mean reward over final %d iterations: %.3f\n", len(last), mean/float64(len(last)))

	if err := d.SaveFile(*out); err != nil {
		fatal(err)
	}
	fmt.Printf("model saved to %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "deepcat-train:", err)
	os.Exit(1)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
