// Command deepcat-serve runs the tuning-as-a-service daemon: a long-lived
// process hosting many concurrent tuning sessions behind an HTTP/JSON API,
// checkpointing every session's agent and replay state to disk so a
// restart resumes mid-tuning.
//
// Example:
//
//	deepcat-serve -addr :8080 -data ./deepcat-data -max-sessions 64 \
//	    -warehouse ./deepcat-data/warehouse
//
// The -warehouse flag enables the fleet experience warehouse: every
// session's transitions are appended to a crash-safe log under that
// directory, a background pool distills each workload family into donor
// agents, and new sessions on a known workload warm-start from them.
//
// On SIGINT/SIGTERM the daemon stops accepting connections, drains
// in-flight requests, checkpoints every session, flushes the warehouse and
// exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"deepcat/internal/service"
	"deepcat/internal/warehouse"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		dataDir     = flag.String("data", "deepcat-data", "checkpoint directory")
		maxSessions = flag.Int("max-sessions", 64, "maximum live sessions (0 = unlimited)")
		drain       = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout")

		whDir      = flag.String("warehouse", "", "experience warehouse directory (empty = disabled)")
		whInterval = flag.Duration("warehouse-interval", time.Minute, "warehouse trainer/compactor period")
		whIters    = flag.Int("warehouse-train-iters", 500, "gradient updates per donor training")
		whWorkers  = flag.Int("warehouse-workers", 2, "concurrent donor trainings")
	)
	flag.Parse()

	store, err := service.NewFSStore(*dataDir)
	if err != nil {
		fatal(err)
	}
	manager := service.NewManager(store, *maxSessions)
	var wh *warehouse.Warehouse
	if *whDir != "" {
		wh, err = warehouse.Open(warehouse.Options{
			Dir:           *whDir,
			TrainInterval: *whInterval,
			TrainIters:    *whIters,
			TrainWorkers:  *whWorkers,
		})
		if err != nil {
			fatal(err)
		}
		manager.AttachWarehouse(wh)
		st := wh.Stats()
		fmt.Printf("warehouse in %s: %d records across %d families recovered",
			st.Dir, st.Records, len(st.Families))
		if st.TruncatedBytes > 0 || st.DroppedBytes > 0 {
			fmt.Printf(" (torn tail truncated: %dB, corrupt skipped: %dB)",
				st.TruncatedBytes, st.DroppedBytes)
		}
		fmt.Println()
	}
	resumed, err := manager.Resume()
	if err != nil {
		fmt.Fprintln(os.Stderr, "deepcat-serve: some checkpoints not resumed:", err)
	}
	if resumed > 0 {
		fmt.Printf("resumed %d session(s) from %s\n", resumed, store.Dir())
	}

	srv := &http.Server{Addr: *addr, Handler: service.NewServer(manager)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("deepcat-serve listening on %s (checkpoints in %s, max %d sessions)\n",
		*addr, store.Dir(), *maxSessions)

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}

	fmt.Println("shutting down: draining in-flight requests...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "deepcat-serve: shutdown:", err)
	}
	if err := manager.CheckpointAll(); err != nil {
		fmt.Fprintln(os.Stderr, "deepcat-serve: final checkpoint:", err)
	}
	if wh != nil {
		if err := wh.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "deepcat-serve: warehouse close:", err)
		}
	}
	fmt.Println("all sessions checkpointed; bye")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "deepcat-serve:", err)
	os.Exit(1)
}
