// Command deepcat-serve runs the tuning-as-a-service daemon: a long-lived
// process hosting many concurrent tuning sessions behind an HTTP/JSON API,
// checkpointing every session's agent and replay state to disk so a
// restart resumes mid-tuning.
//
// Example:
//
//	deepcat-serve -addr :8080 -data ./deepcat-data -max-sessions 64 \
//	    -warehouse ./deepcat-data/warehouse -metrics-addr 127.0.0.1:9090
//
// The -warehouse flag enables the fleet experience warehouse: every
// session's transitions are appended to a crash-safe log under that
// directory, a background pool distills each workload family into donor
// agents, and new sessions on a known workload warm-start from them.
//
// The -metrics-addr flag starts a second listener serving Prometheus
// metrics on /metrics and the standard net/http/pprof profiling endpoints
// under /debug/pprof/. Keeping them off the tuning port means a scraper or
// an attached profiler can never contend with suggest/observe traffic, and
// the operations port can stay firewalled to the operator network. When
// the flag is unset no registry exists and every recording site in the
// stack is a no-op.
//
// The -trace-ring flag (on by default) keeps a bounded flight-recorder
// ring of decision events per session, served on
// GET /v1/sessions/{id}/trace and exportable as Chrome trace-event JSON on
// GET /v1/sessions/{id}/trace/export?format=chrome; -trace-dir additionally
// spools every event to <dir>/<session>.jsonl for inspection with
// deepcat-trace after the session is gone. -log-format json switches the
// daemon's log lines from key=value to one JSON object per line.
//
// Actor/learner mode: -spine switches sessions from inline fine-tuning to
// the shared replay spine — each observation is enqueued into a sharded,
// lock-minimal experience buffer, per-workload-family learners train off it
// in the background (-spine-learn-interval, -spine-learn-iters,
// -spine-workers), and every -spine-adopt-every observations a session
// adopts the latest published policy weights. -spine-shards and
// -spine-capacity size the buffer. With a warehouse configured the spine is
// warm-started from the WAL at boot.
//
// Fault handling: the -breaker-threshold and -breaker-cooldown flags
// configure the per-session circuit breaker (consecutive failed runs trip a
// session into degraded mode, where it serves its last known good
// configuration until a half-open probe succeeds), and -sanitize-window
// sizes the observation sanitizer that quarantines non-finite and outlier
// measurements before they can reach learning, checkpoints or the
// warehouse. The -read-header-timeout, -read-timeout and -idle-timeout
// flags bound how long a client connection can stall either listener.
//
// Overload handling: -admission turns on adaptive AIMD load shedding —
// guarded endpoints answer 429 + Retry-After when the learned concurrency
// limit is hit, with priority headroom admitting suggest before observe
// before admin traffic (-admission-initial/-min/-max size the limit).
// Requests carrying an X-Deepcat-Deadline millisecond budget are rejected
// up front with 504 when the budget cannot cover the endpoint's observed
// p99, and the remaining budget becomes the request context's deadline on
// every hop. -spine-queue bounds the replay spine's ingest queue so
// experience sheds (oldest low-priority first) instead of backpressuring
// the serving path.
//
// Fleet mode: -peers lists every member's base URL (comma-separated,
// including this node's own -public-url) and shards sessions across them
// on a consistent-hash ring. Any node answers any request — sessions owned
// elsewhere are 307-redirected (or proxied server-side with -fleet-proxy)
// to their owner — and sealed warehouse WAL segments replicate between
// peers so donor training sees the whole fleet's experience. Point every
// member's -data at the same shared directory and a killed member's
// sessions resume on their new ring owner from the last acknowledged
// observation.
//
// On SIGINT/SIGTERM the daemon stops accepting connections, drains
// in-flight requests, checkpoints every session, flushes the warehouse and
// exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"deepcat/internal/admission"
	"deepcat/internal/fleet"
	"deepcat/internal/obs"
	"deepcat/internal/service"
	"deepcat/internal/spine"
	"deepcat/internal/warehouse"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		dataDir     = flag.String("data", "deepcat-data", "checkpoint directory")
		maxSessions = flag.Int("max-sessions", 64, "maximum live sessions (0 = unlimited)")
		drain       = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout")

		readHeaderTimeout = flag.Duration("read-header-timeout", 5*time.Second, "HTTP header read deadline")
		readTimeout       = flag.Duration("read-timeout", 30*time.Second, "HTTP full-request read deadline")
		idleTimeout       = flag.Duration("idle-timeout", 2*time.Minute, "HTTP keep-alive idle deadline")

		breakerThreshold = flag.Int("breaker-threshold", 5, "consecutive failed observations before a session degrades (negative = breaker disabled)")
		breakerCooldown  = flag.Int("breaker-cooldown", 2, "degraded observations before a half-open recovery probe")
		sanitizeWindow   = flag.Int("sanitize-window", 20, "observation-sanitizer history window (negative = outlier test disabled)")

		metricsAddr = flag.String("metrics-addr", "", "operations listen address serving /metrics and /debug/pprof (empty = disabled)")
		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn or error")
		logFormat   = flag.String("log-format", "kv", "log line format: kv or json")

		traceRing = flag.Int("trace-ring", 512, "per-session flight-recorder ring size (0 = tracing disabled)")
		traceDir  = flag.String("trace-dir", "", "directory for per-session trace spools (empty = ring only)")

		spineOn         = flag.Bool("spine", false, "actor/learner mode: sessions enqueue experience into a shared replay spine and adopt weights from per-family learners instead of training inline")
		spineShards     = flag.Int("spine-shards", 8, "replay-spine shards per workload-family lane")
		spineCapacity   = flag.Int("spine-capacity", 2048, "replay-spine transitions per shard pool (high and low each)")
		spineInterval   = flag.Duration("spine-learn-interval", 2*time.Second, "background learner pass period (0 = learners run only on demand)")
		spineIters      = flag.Int("spine-learn-iters", 4, "gradient updates per learner pass")
		spineWorkers    = flag.Int("spine-workers", 2, "concurrent learner passes")
		spineAdoptEvery = flag.Int("spine-adopt-every", service.DefaultSpineAdoptEvery, "observations between a session's policy-weight adoption checks")
		spineQueue      = flag.Int("spine-queue", 0, "bounded ingest-queue capacity in flush batches: sessions enqueue experience asynchronously and the spine sheds oldest low-priority batches under overload (0 = synchronous ingest)")

		whDir      = flag.String("warehouse", "", "experience warehouse directory (empty = disabled)")
		whInterval = flag.Duration("warehouse-interval", time.Minute, "warehouse trainer/compactor period")
		whIters    = flag.Int("warehouse-train-iters", 500, "gradient updates per donor training")
		whWorkers  = flag.Int("warehouse-workers", 2, "concurrent donor trainings")

		admissionOn      = flag.Bool("admission", false, "adaptive AIMD load shedding: guarded endpoints answer 429 + Retry-After when the concurrency limit is hit, with priority headroom (suggest > observe > admin)")
		admissionInitial = flag.Int("admission-initial", 0, "initial concurrency limit (0 = library default)")
		admissionMin     = flag.Int("admission-min", 0, "concurrency-limit floor under persistent congestion (0 = library default)")
		admissionMax     = flag.Int("admission-max", 0, "concurrency-limit ceiling (0 = library default)")

		peers        = flag.String("peers", "", "comma-separated fleet member base URLs, including this node's -public-url (empty = standalone)")
		publicURL    = flag.String("public-url", "", "this node's advertised base URL, e.g. http://10.0.0.3:8080 (required with -peers)")
		fleetProxy   = flag.Bool("fleet-proxy", false, "forward misrouted requests server-side instead of 307-redirecting")
		probePeriod  = flag.Duration("fleet-probe-interval", time.Second, "peer readiness probe period")
		shipInterval = flag.Duration("fleet-ship-interval", 5*time.Second, "warehouse segment replication pull period")
		sealInterval = flag.Duration("fleet-seal-interval", 30*time.Second, "active warehouse segment force-seal period")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fatal(err)
	}
	format, err := obs.ParseFormat(*logFormat)
	if err != nil {
		fatal(err)
	}
	logger := obs.NewLoggerFormat(os.Stderr, level, format)
	// The registry only exists when something will scrape it; without it
	// every instrument in the stack is nil and recording is a nil check.
	// A fleet member is always scrapeable: peers' /v1/fleet/metrics
	// aggregation pulls its /v1/metrics/snapshot on the tuning port.
	var reg *obs.Registry
	if *metricsAddr != "" || *peers != "" {
		reg = obs.NewRegistry()
	}

	store, err := service.NewFSStore(*dataDir)
	if err != nil {
		fatal(err)
	}
	manager := service.NewManager(store, *maxSessions)
	manager.AttachObs(reg, logger)
	manager.SetResilience(service.Resilience{
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		SanitizeWindow:   *sanitizeWindow,
	})
	if *traceRing > 0 {
		if *traceDir != "" {
			if err := os.MkdirAll(*traceDir, 0o755); err != nil {
				fatal(err)
			}
		}
		manager.AttachTrace(service.TraceConfig{RingSize: *traceRing, Dir: *traceDir})
		fmt.Printf("flight recorder on: ring %d events/session", *traceRing)
		if *traceDir != "" {
			fmt.Printf(", spooling to %s", *traceDir)
		}
		fmt.Println()
	}
	var wh *warehouse.Warehouse
	if *whDir != "" {
		wh, err = warehouse.Open(warehouse.Options{
			Dir:           *whDir,
			TrainInterval: *whInterval,
			TrainIters:    *whIters,
			TrainWorkers:  *whWorkers,
			Registry:      reg,
			Logger:        logger,
		})
		if err != nil {
			fatal(err)
		}
		manager.AttachWarehouse(wh)
		st := wh.Stats()
		fmt.Printf("warehouse in %s: %d records across %d families recovered",
			st.Dir, st.Records, len(st.Families))
		if st.TruncatedBytes > 0 || st.DroppedBytes > 0 {
			fmt.Printf(" (torn tail truncated: %dB, corrupt skipped: %dB)",
				st.TruncatedBytes, st.DroppedBytes)
		}
		fmt.Println()
	}
	var spn *spine.Spine
	if *spineOn {
		spn = spine.New(spine.Options{
			Shards:        *spineShards,
			ShardCapacity: *spineCapacity,
			LearnInterval: *spineInterval,
			LearnIters:    *spineIters,
			Workers:       *spineWorkers,
			QueueCapacity: *spineQueue,
			Registry:      reg,
			Logger:        logger,
		})
		manager.AttachSpine(service.SpineConfig{Spine: spn, AdoptEvery: *spineAdoptEvery})
		// The spine is memory-only; replaying the warehouse WAL into it at
		// boot means the learner pool resumes from the fleet's history
		// instead of an empty ring.
		if warmed := service.WarmSpineFromWarehouse(spn, wh); warmed > 0 {
			fmt.Printf("spine warm-started with %d transitions from the warehouse\n", warmed)
		}
		fmt.Printf("actor/learner spine on: %d shards x %d/pool, learner pass every %s, adopt every %d observations\n",
			*spineShards, *spineCapacity, *spineInterval, *spineAdoptEvery)
		if *spineQueue > 0 {
			fmt.Printf("spine ingest backpressure on: bounded queue of %d batches, oldest low-priority sheds first\n", *spineQueue)
		}
	}
	var adm *admission.Limiter
	if *admissionOn {
		adm = admission.New(admission.Config{
			Initial: float64(*admissionInitial),
			Min:     float64(*admissionMin),
			Max:     float64(*admissionMax),
		})
		fmt.Println("adaptive admission control on: AIMD concurrency limit with priority headroom")
	}
	var (
		router  *fleet.Router
		shipper *fleet.Shipper
	)
	if *peers != "" {
		if *publicURL == "" {
			fatal(errors.New("-peers requires -public-url"))
		}
		router, err = fleet.NewRouter(fleet.Config{
			Self:          *publicURL,
			Peers:         strings.Split(*peers, ","),
			ProbeInterval: *probePeriod,
			Registry:      reg,
			Logger:        logger,
		})
		if err != nil {
			fatal(err)
		}
		// With every member's -data on one shared directory, only resume
		// the sessions this shard owns; the rest are peers' to serve.
		manager.SetOwned(router.Owns)
		if wh != nil {
			shipper, err = fleet.NewShipper(fleet.ShipperConfig{
				Warehouse:    wh,
				Router:       router,
				Interval:     *shipInterval,
				SealInterval: *sealInterval,
				Registry:     reg,
				Logger:       logger,
			})
			if err != nil {
				fatal(err)
			}
		}
		fmt.Printf("fleet member %s of %d peers\n", *publicURL, len(router.Peers()))
	}

	resumed, err := manager.Resume()
	if err != nil {
		fmt.Fprintln(os.Stderr, "deepcat-serve: some checkpoints not resumed:", err)
	}
	if resumed > 0 {
		fmt.Printf("resumed %d session(s) from %s\n", resumed, store.Dir())
	}

	// Server-side deadlines keep one stalled or malicious client from
	// pinning a connection (and its goroutine) forever; request handling
	// itself is bounded by the per-request contexts the handlers plumb down.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           service.NewFleetServer(manager, service.FleetOptions{Router: router, Proxy: *fleetProxy, Admission: adm}),
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		IdleTimeout:       *idleTimeout,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("deepcat-serve listening on %s (checkpoints in %s, max %d sessions)\n",
		*addr, store.Dir(), *maxSessions)
	// Probing and shipping start only once this node itself is serving, so
	// peers' probes and pulls against it race nothing.
	if router != nil {
		router.Start()
	}
	if shipper != nil {
		shipper.Start()
	}

	var opsSrv *http.Server
	if *metricsAddr != "" {
		opsSrv = &http.Server{
			Addr:              *metricsAddr,
			Handler:           opsMux(reg),
			ReadHeaderTimeout: *readHeaderTimeout,
			// No ReadTimeout here: pprof profile captures legitimately hold
			// the request open for their whole -seconds duration.
			IdleTimeout: *idleTimeout,
		}
		go func() {
			if err := opsSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				// The ops listener failing must not take tuning down with
				// it; losing observability is an error, not an outage.
				logger.Error("metrics listener failed", "addr", *metricsAddr, "err", err)
			}
		}()
		fmt.Printf("metrics and pprof on %s (/metrics, /debug/pprof/)\n", *metricsAddr)
	}

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}

	fmt.Println("shutting down: draining in-flight requests...")
	if shipper != nil {
		shipper.Close()
	}
	if router != nil {
		router.Close()
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "deepcat-serve: shutdown:", err)
	}
	if opsSrv != nil {
		opsSrv.Close()
	}
	if err := manager.CheckpointAll(); err != nil {
		fmt.Fprintln(os.Stderr, "deepcat-serve: final checkpoint:", err)
	}
	if spn != nil {
		spn.Close()
	}
	if wh != nil {
		if err := wh.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "deepcat-serve: warehouse close:", err)
		}
	}
	fmt.Println("all sessions checkpointed; bye")
}

// opsMux builds the operations handler: Prometheus exposition plus the
// pprof suite, registered explicitly so nothing rides on
// http.DefaultServeMux.
func opsMux(reg *obs.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "deepcat-serve:", err)
	os.Exit(1)
}
