package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBenchText = `goos: linux
goarch: amd64
pkg: deepcat/internal/nn
cpu: AMD EPYC 7B13
BenchmarkForward-8             	  500000	      2100 ns/op	     384 B/op	       6 allocs/op
BenchmarkForwardBackward-8     	  100000	     11000 ns/op	    1536 B/op	      24 allocs/op
PASS
ok  	deepcat/internal/nn	2.511s
pkg: deepcat
BenchmarkWarehouseIngest-8     	    2000	    520000 ns/op	        1923 records/s	   48000 B/op	     310 allocs/op
PASS
ok  	deepcat	1.902s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBenchText))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	fwd, ok := got["deepcat/internal/nn.BenchmarkForward"]
	if !ok {
		t.Fatalf("missing pkg-qualified key, got %v", got)
	}
	if fwd.NsPerOp != 2100 || fwd.BytesPerOp != 384 || fwd.AllocsPerOp != 6 || fwd.Iterations != 500000 {
		t.Errorf("BenchmarkForward parsed as %+v", fwd)
	}
	ing := got["deepcat.BenchmarkWarehouseIngest"]
	if ing.NsPerOp != 520000 {
		t.Errorf("ingest ns/op = %v, want 520000", ing.NsPerOp)
	}
	if ing.Metrics["records/s"] != 1923 {
		t.Errorf("custom metric records/s = %v, want 1923", ing.Metrics)
	}
}

func TestCompare(t *testing.T) {
	base := File{
		Hot: []string{"p.BenchmarkHot", "p.BenchmarkGone"},
		Benchmarks: map[string]Result{
			"p.BenchmarkHot":  {NsPerOp: 1000},
			"p.BenchmarkCold": {NsPerOp: 1000},
			"p.BenchmarkGone": {NsPerOp: 1000},
		},
	}

	t.Run("within threshold passes", func(t *testing.T) {
		cur := File{Benchmarks: map[string]Result{
			"p.BenchmarkHot":  {NsPerOp: 1190},
			"p.BenchmarkCold": {NsPerOp: 9000},
			"p.BenchmarkGone": {NsPerOp: 1000},
		}}
		rows, failed := compare(base, cur, 0.20)
		if failed {
			t.Errorf("failed on +19%% hot / +800%% cold, rows: %+v", rows)
		}
	})

	t.Run("hot regression over threshold fails", func(t *testing.T) {
		cur := File{Benchmarks: map[string]Result{
			"p.BenchmarkHot":  {NsPerOp: 1300},
			"p.BenchmarkCold": {NsPerOp: 1000},
			"p.BenchmarkGone": {NsPerOp: 1000},
		}}
		rows, failed := compare(base, cur, 0.20)
		if !failed {
			t.Fatal("did not fail on +30% hot regression")
		}
		for _, r := range rows {
			if r.Name == "p.BenchmarkHot" && !r.Failed {
				t.Error("hot row not marked failed")
			}
			if r.Name == "p.BenchmarkCold" && r.Failed {
				t.Error("cold row marked failed despite not being hot")
			}
		}
	})

	t.Run("missing hot benchmark fails", func(t *testing.T) {
		cur := File{Benchmarks: map[string]Result{
			"p.BenchmarkHot":  {NsPerOp: 1000},
			"p.BenchmarkCold": {NsPerOp: 1000},
		}}
		_, failed := compare(base, cur, 0.20)
		if !failed {
			t.Fatal("vanished hot benchmark did not fail the comparison")
		}
	})
}

// TestCompareMemoryGates pins the allocs/op and B/op gating: hot paths fail
// on regressions past threshold+slack, zero-alloc baselines catch a single
// new allocation, and baselines without -benchmem numbers skip the memory
// gates entirely.
func TestCompareMemoryGates(t *testing.T) {
	base := File{
		Hot: []string{"p.BenchmarkHot", "p.BenchmarkZeroAlloc"},
		Benchmarks: map[string]Result{
			"p.BenchmarkHot":       {NsPerOp: 1000, BytesPerOp: 1000, AllocsPerOp: 10},
			"p.BenchmarkZeroAlloc": {NsPerOp: 1000},
			"p.BenchmarkCold":      {NsPerOp: 1000, BytesPerOp: 1000, AllocsPerOp: 10},
		},
	}
	run := func(t *testing.T, cur map[string]Result, wantFail bool, wantWhy ...string) {
		t.Helper()
		rows, failed := compare(base, File{Benchmarks: cur}, 0.20)
		if failed != wantFail {
			t.Fatalf("failed = %v, want %v; rows: %+v", failed, wantFail, rows)
		}
		if len(wantWhy) > 0 {
			for _, r := range rows {
				if r.Failed {
					if strings.Join(r.Why, ",") != strings.Join(wantWhy, ",") {
						t.Fatalf("row %s failed for %v, want %v", r.Name, r.Why, wantWhy)
					}
					return
				}
			}
			t.Fatal("no failed row found")
		}
	}

	t.Run("alloc regression on hot fails", func(t *testing.T) {
		run(t, map[string]Result{
			"p.BenchmarkHot":       {NsPerOp: 1000, BytesPerOp: 1000, AllocsPerOp: 20},
			"p.BenchmarkZeroAlloc": {NsPerOp: 1000},
			"p.BenchmarkCold":      {NsPerOp: 1000, BytesPerOp: 1000, AllocsPerOp: 10},
		}, true, "allocs/op")
	})
	t.Run("bytes regression on hot fails", func(t *testing.T) {
		run(t, map[string]Result{
			"p.BenchmarkHot":       {NsPerOp: 1000, BytesPerOp: 2000, AllocsPerOp: 10},
			"p.BenchmarkZeroAlloc": {NsPerOp: 1000},
			"p.BenchmarkCold":      {NsPerOp: 1000, BytesPerOp: 1000, AllocsPerOp: 10},
		}, true, "B/op")
	})
	t.Run("new allocation on zero-alloc hot path fails", func(t *testing.T) {
		run(t, map[string]Result{
			"p.BenchmarkHot":       {NsPerOp: 1000, BytesPerOp: 1000, AllocsPerOp: 10},
			"p.BenchmarkZeroAlloc": {NsPerOp: 1000, BytesPerOp: 165, AllocsPerOp: 1},
			"p.BenchmarkCold":      {NsPerOp: 1000, BytesPerOp: 1000, AllocsPerOp: 10},
		}, true, "allocs/op", "B/op")
	})
	t.Run("within threshold and slack passes", func(t *testing.T) {
		run(t, map[string]Result{
			"p.BenchmarkHot":       {NsPerOp: 1100, BytesPerOp: 1150, AllocsPerOp: 12},
			"p.BenchmarkZeroAlloc": {NsPerOp: 1000, BytesPerOp: 32},
			"p.BenchmarkCold":      {NsPerOp: 1000, BytesPerOp: 99999, AllocsPerOp: 999},
		}, false)
	})
	t.Run("legacy baseline without benchmem skips memory gates", func(t *testing.T) {
		legacy := File{
			Hot:        []string{"p.BenchmarkHot"},
			Benchmarks: map[string]Result{"p.BenchmarkHot": {NsPerOp: 1000}},
		}
		cur := File{Benchmarks: map[string]Result{
			"p.BenchmarkHot": {NsPerOp: 1000, BytesPerOp: 5000, AllocsPerOp: 100},
		}}
		if _, failed := compare(legacy, cur, 0.20); failed {
			t.Fatal("memory gates applied against a baseline with no memory numbers")
		}
	})
}

// TestReportMarkdown sanity-checks the $GITHUB_STEP_SUMMARY table: one row
// per benchmark, failures called out with their dimensions.
func TestReportMarkdown(t *testing.T) {
	base := File{
		Hot: []string{"p.BenchmarkHot"},
		Benchmarks: map[string]Result{
			"p.BenchmarkHot":  {NsPerOp: 1000, AllocsPerOp: 1},
			"p.BenchmarkCold": {NsPerOp: 500},
		},
	}
	cur := File{Benchmarks: map[string]Result{
		"p.BenchmarkHot":  {NsPerOp: 2000, AllocsPerOp: 9},
		"p.BenchmarkCold": {NsPerOp: 500},
	}}
	rows, failed := compare(base, cur, 0.20)
	if !failed {
		t.Fatal("fixture should fail")
	}
	var sb strings.Builder
	reportMarkdown(&sb, rows, 0.20)
	got := sb.String()
	for _, want := range []string{
		"| benchmark |", "`p.BenchmarkHot`", "`p.BenchmarkCold`",
		"**FAIL** (ns/op, allocs/op)", "1→9",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("markdown report missing %q:\n%s", want, got)
		}
	}
}

// TestRegressionExitCode runs the real binary (via `go run` on this
// package) against a synthetic fixture with a +50% regression on a hot
// path and asserts the process exits non-zero — the exact contract CI
// depends on.
func TestRegressionExitCode(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a go build")
	}
	dir := t.TempDir()
	write := func(name string, f File) string {
		data, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	basePath := write("base.json", File{
		Hot:        []string{"p.BenchmarkHot"},
		Benchmarks: map[string]Result{"p.BenchmarkHot": {NsPerOp: 1000}},
	})
	curPath := write("cur.json", File{
		Benchmarks: map[string]Result{"p.BenchmarkHot": {NsPerOp: 1500}},
	})

	cmd := exec.Command("go", "run", ".", "-baseline", basePath, "-current", curPath)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("benchdiff exited 0 on a +50%% hot regression; output:\n%s", out)
	}
	exitErr, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("benchdiff did not run: %v\n%s", err, out)
	}
	if code := exitErr.ExitCode(); code != 1 {
		t.Fatalf("exit code = %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(string(out), "FAIL") {
		t.Errorf("report does not mark the regressed row FAIL:\n%s", out)
	}

	// Same binary, healthy numbers: must exit 0.
	okPath := write("ok.json", File{
		Benchmarks: map[string]Result{"p.BenchmarkHot": {NsPerOp: 1100}},
	})
	cmd = exec.Command("go", "run", ".", "-baseline", basePath, "-current", okPath)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("benchdiff failed on a +10%% change: %v\n%s", err, out)
	}
}

func TestParseRoundTripThroughFiles(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	out := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(in, []byte(sampleBenchText), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runParse(in, out); err != nil {
		t.Fatal(err)
	}
	f, err := loadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if f.Benchmarks["deepcat/internal/nn.BenchmarkForwardBackward"].NsPerOp != 11000 {
		t.Errorf("round-tripped file wrong: %+v", f.Benchmarks)
	}
}

// TestCompareNewBenchmark pins the informational row for a benchmark that
// exists only in the current run: it must appear in both report flavors
// (instead of being silently omitted) and must never fail the comparison.
func TestCompareNewBenchmark(t *testing.T) {
	base := File{
		Hot:        []string{"p.BenchmarkHot"},
		Benchmarks: map[string]Result{"p.BenchmarkHot": {NsPerOp: 1000}},
	}
	cur := File{Benchmarks: map[string]Result{
		"p.BenchmarkHot":   {NsPerOp: 1000},
		"p.BenchmarkFresh": {NsPerOp: 42, BytesPerOp: 128, AllocsPerOp: 3},
	}}
	rows, failed := compare(base, cur, 0.20)
	if failed {
		t.Fatalf("new benchmark must not fail the comparison, rows: %+v", rows)
	}
	var fresh *Row
	for i := range rows {
		if rows[i].Name == "p.BenchmarkFresh" {
			fresh = &rows[i]
		}
	}
	if fresh == nil {
		t.Fatal("benchmark present only in current run was omitted from rows")
	}
	if !fresh.New || fresh.Failed {
		t.Errorf("fresh row = %+v, want New and not Failed", fresh)
	}

	var txt, md strings.Builder
	report(&txt, rows, 0.20)
	reportMarkdown(&md, rows, 0.20)
	if !strings.Contains(txt.String(), "p.BenchmarkFresh") || !strings.Contains(txt.String(), "new (not in baseline, informational)") {
		t.Errorf("text report missing informational new row:\n%s", txt.String())
	}
	if !strings.Contains(md.String(), "`p.BenchmarkFresh`") || !strings.Contains(md.String(), "new (informational)") {
		t.Errorf("markdown report missing informational new row:\n%s", md.String())
	}
}
