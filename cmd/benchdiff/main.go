// Command benchdiff turns `go test -bench` text output into a machine-
// readable JSON summary and compares such summaries across commits, so CI
// can fail when a named hot path regresses.
//
// Two modes:
//
//	benchdiff -parse BENCH_all.txt -o BENCH_all.json
//	    Parse benchmark text (as produced by `go test -bench -benchmem`,
//	    possibly spanning several packages) into a JSON summary.
//
//	benchdiff -baseline bench_baseline.json -current BENCH_all.json
//	    Compare a fresh summary against the committed baseline. Exits 1
//	    when any benchmark named in the baseline's "hot" list regresses by
//	    more than the threshold (default 20%) on ns/op, allocs/op or B/op
//	    (memory gates apply only when the baseline carries -benchmem
//	    numbers), or has disappeared. Benchmarks outside the hot list are
//	    reported but never fail the run — micro-benchmarks on shared CI
//	    runners are too noisy to block on wholesale; the hot list is the
//	    contract. Benchmarks present only in the current run get an
//	    informational "new" row — visible immediately, gated once the
//	    baseline is refreshed to name them. -md additionally writes the
//	    table as markdown for $GITHUB_STEP_SUMMARY.
//
// Benchmarks are keyed "pkg.BenchmarkName" (the -cpu/-procs suffix is
// stripped), so equally named benchmarks in different packages never
// collide.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed numbers.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	Iterations  int64   `json:"iterations"`
	// Metrics carries b.ReportMetric extras, keyed by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// File is the JSON summary format shared by BENCH_all.json and the
// committed bench_baseline.json.
type File struct {
	// Hot names the benchmarks whose ns/op regressions fail CI; only
	// meaningful in the baseline file.
	Hot []string `json:"hot,omitempty"`
	// Threshold overrides the default 0.20 regression bound (fraction,
	// not percent); only meaningful in the baseline file.
	Threshold  float64           `json:"threshold,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// parseBench reads `go test -bench` text output. Package clauses ("pkg:
// deepcat/internal/nn") scope the benchmark names that follow.
func parseBench(r io.Reader) (map[string]Result, error) {
	out := make(map[string]Result)
	var pkg string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// A result line is at least "BenchmarkName-8 N value unit".
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // a header or some other line that happens to match
		}
		res := Result{Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchdiff: bad value %q in line %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			default:
				if res.Metrics == nil {
					res.Metrics = make(map[string]float64)
				}
				res.Metrics[unit] = v
			}
		}
		key := name
		if pkg != "" {
			key = pkg + "." + name
		}
		out[key] = res
	}
	return out, sc.Err()
}

// Row is one line of the comparison report.
type Row struct {
	Name    string
	Base    Result  // baseline numbers
	Cur     Result  // current numbers; zero when missing
	Delta   float64 // (cur-base)/base on ns/op
	Hot     bool
	Failed  bool
	Missing bool
	// New marks a benchmark present in the current run but absent from the
	// baseline: informational only (there is nothing to gate against), but
	// shown so a fresh benchmark is visible instead of silently omitted
	// until the baseline is refreshed.
	New bool
	// Why lists the dimensions that failed: "ns/op", "allocs/op", "B/op".
	Why []string
}

// Absolute slack on the memory gates so near-zero baselines are not failed
// by a single stray allocation's worth of measurement noise while a real
// regression (a new allocation per op on an allocation-free path, a fresh
// buffer per op) still trips them.
const (
	allocSlack = 0.5 // allocs/op
	bytesSlack = 64  // B/op
)

// compare evaluates current against baseline. threshold is the allowed
// fractional growth for hot benchmarks (e.g. 0.2 = +20%): it gates ns/op
// always, and allocs/op and B/op (plus a small absolute slack) when the
// baseline carries memory numbers. Baselines parsed without -benchmem have
// no memory numbers anywhere, and for them the memory gates are skipped
// entirely, so refreshing an old baseline never has to happen in lockstep
// with a benchdiff upgrade.
func compare(baseline, current File, threshold float64) (rows []Row, failed bool) {
	hot := make(map[string]bool, len(baseline.Hot))
	for _, name := range baseline.Hot {
		hot[name] = true
	}
	gateMem := false
	for _, b := range baseline.Benchmarks {
		if b.AllocsPerOp > 0 || b.BytesPerOp > 0 {
			gateMem = true
			break
		}
	}
	names := make([]string, 0, len(baseline.Benchmarks))
	for name := range baseline.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base := baseline.Benchmarks[name]
		row := Row{Name: name, Base: base, Hot: hot[name]}
		cur, ok := current.Benchmarks[name]
		if !ok {
			row.Missing = true
			// A vanished hot path means the gate lost its subject; that is
			// a CI wiring error, not a pass.
			row.Failed = row.Hot
			if row.Failed {
				row.Why = []string{"missing"}
			}
		} else {
			row.Cur = cur
			if base.NsPerOp > 0 {
				row.Delta = (cur.NsPerOp - base.NsPerOp) / base.NsPerOp
			}
			if row.Hot {
				if row.Delta > threshold {
					row.Why = append(row.Why, "ns/op")
				}
				if gateMem {
					if cur.AllocsPerOp > base.AllocsPerOp*(1+threshold)+allocSlack {
						row.Why = append(row.Why, "allocs/op")
					}
					if cur.BytesPerOp > base.BytesPerOp*(1+threshold)+bytesSlack {
						row.Why = append(row.Why, "B/op")
					}
				}
				row.Failed = len(row.Why) > 0
			}
		}
		failed = failed || row.Failed
		rows = append(rows, row)
	}
	var fresh []string
	for name := range current.Benchmarks {
		if _, ok := baseline.Benchmarks[name]; !ok {
			fresh = append(fresh, name)
		}
	}
	sort.Strings(fresh)
	for _, name := range fresh {
		rows = append(rows, Row{Name: name, Cur: current.Benchmarks[name], New: true})
	}
	return rows, failed
}

// report renders the comparison table.
func report(w io.Writer, rows []Row, threshold float64) {
	fmt.Fprintf(w, "%-64s %14s %14s %9s %17s %15s\n",
		"benchmark", "base ns/op", "cur ns/op", "delta", "B/op", "allocs/op")
	for _, r := range rows {
		mark := "    "
		switch {
		case r.Failed:
			mark = "FAIL(" + strings.Join(r.Why, ",") + ")"
		case r.Hot:
			mark = "hot "
		}
		if r.Missing {
			fmt.Fprintf(w, "%-64s %14.0f %14s %9s %17s %15s %s (missing from current run)\n",
				r.Name, r.Base.NsPerOp, "-", "-", "-", "-", mark)
			continue
		}
		if r.New {
			fmt.Fprintf(w, "%-64s %14s %14.0f %9s %17s %15s new (not in baseline, informational)\n",
				r.Name, "-", r.Cur.NsPerOp, "-",
				fmt.Sprintf("%.0f", r.Cur.BytesPerOp), fmt.Sprintf("%.0f", r.Cur.AllocsPerOp))
			continue
		}
		fmt.Fprintf(w, "%-64s %14.0f %14.0f %8.1f%% %17s %15s %s\n",
			r.Name, r.Base.NsPerOp, r.Cur.NsPerOp, 100*r.Delta,
			fmt.Sprintf("%.0f->%.0f", r.Base.BytesPerOp, r.Cur.BytesPerOp),
			fmt.Sprintf("%.0f->%.0f", r.Base.AllocsPerOp, r.Cur.AllocsPerOp), mark)
	}
	fmt.Fprintf(w, "hot-path regression threshold: +%.0f%% on ns/op, allocs/op and B/op\n", 100*threshold)
}

// reportMarkdown renders the comparison as a GitHub-flavored markdown table,
// suitable for $GITHUB_STEP_SUMMARY.
func reportMarkdown(w io.Writer, rows []Row, threshold float64) {
	fmt.Fprintln(w, "### Benchmark comparison")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "Hot-path gate: +%.0f%% on ns/op, allocs/op and B/op.\n", 100*threshold)
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| benchmark | base ns/op | cur ns/op | Δ | B/op | allocs/op | status |")
	fmt.Fprintln(w, "|---|---:|---:|---:|---:|---:|---|")
	for _, r := range rows {
		status := "ok"
		switch {
		case r.Failed:
			status = "**FAIL** (" + strings.Join(r.Why, ", ") + ")"
		case r.Hot:
			status = "hot, ok"
		}
		if r.Missing {
			fmt.Fprintf(w, "| `%s` | %.0f | – | – | – | – | %s missing |\n", r.Name, r.Base.NsPerOp, status)
			continue
		}
		if r.New {
			fmt.Fprintf(w, "| `%s` | – | %.0f | – | %.0f | %.0f | new (informational) |\n",
				r.Name, r.Cur.NsPerOp, r.Cur.BytesPerOp, r.Cur.AllocsPerOp)
			continue
		}
		fmt.Fprintf(w, "| `%s` | %.0f | %.0f | %+.1f%% | %.0f→%.0f | %.0f→%.0f | %s |\n",
			r.Name, r.Base.NsPerOp, r.Cur.NsPerOp, 100*r.Delta,
			r.Base.BytesPerOp, r.Cur.BytesPerOp, r.Base.AllocsPerOp, r.Cur.AllocsPerOp, status)
	}
}

func loadFile(path string) (File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return File{}, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return File{}, fmt.Errorf("benchdiff: parse %s: %w", path, err)
	}
	if f.Benchmarks == nil {
		return File{}, fmt.Errorf("benchdiff: %s has no benchmarks", path)
	}
	return f, nil
}

func main() {
	var (
		parse     = flag.String("parse", "", "parse `go test -bench` text output from this file ('-' = stdin) into JSON")
		out       = flag.String("o", "", "with -parse: output JSON path (default stdout)")
		baseline  = flag.String("baseline", "", "committed baseline JSON to compare against")
		current   = flag.String("current", "", "fresh run JSON to compare")
		threshold = flag.Float64("threshold", 0, "allowed fractional growth on hot paths (0 = baseline's, default 0.20)")
		md        = flag.String("md", "", "with -baseline/-current: also write the comparison as a markdown table to this file")
	)
	flag.Parse()

	switch {
	case *parse != "":
		if err := runParse(*parse, *out); err != nil {
			fatal(err)
		}
	case *baseline != "" && *current != "":
		failed, err := runCompare(*baseline, *current, *threshold, *md)
		if err != nil {
			fatal(err)
		}
		if failed {
			fmt.Fprintln(os.Stderr, "benchdiff: hot-path regression detected")
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: benchdiff -parse bench.txt [-o out.json]")
		fmt.Fprintln(os.Stderr, "       benchdiff -baseline base.json -current cur.json [-threshold 0.2] [-md summary.md]")
		os.Exit(2)
	}
}

func runParse(in, out string) error {
	var r io.Reader = os.Stdin
	if in != "-" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	benches, err := parseBench(r)
	if err != nil {
		return err
	}
	if len(benches) == 0 {
		return fmt.Errorf("benchdiff: no benchmark results in %s", in)
	}
	data, err := json.MarshalIndent(File{Benchmarks: benches}, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

func runCompare(basePath, curPath string, threshold float64, mdPath string) (failed bool, err error) {
	base, err := loadFile(basePath)
	if err != nil {
		return false, err
	}
	cur, err := loadFile(curPath)
	if err != nil {
		return false, err
	}
	if threshold == 0 {
		threshold = base.Threshold
	}
	if threshold == 0 {
		threshold = 0.20
	}
	rows, failed := compare(base, cur, threshold)
	report(os.Stdout, rows, threshold)
	if mdPath != "" {
		var sb strings.Builder
		reportMarkdown(&sb, rows, threshold)
		if err := os.WriteFile(mdPath, []byte(sb.String()), 0o644); err != nil {
			return failed, err
		}
	}
	return failed, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
