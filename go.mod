module deepcat

go 1.22
