package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"deepcat/internal/mat"
)

// randomSPD builds a random SPD matrix A = BᵀB + n·I.
func randomSPD(rng *rand.Rand, n int) *mat.Matrix {
	b := mat.New(n, n)
	b.RandUniform(rng, 1)
	a := b.Transpose().Mul(b)
	AddJitter(a, float64(n))
	return a
}

func TestCholeskyKnown(t *testing.T) {
	a := mat.FromRows([][]float64{
		{4, 12, -16},
		{12, 37, -43},
		{-16, -43, 98},
	})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	want := mat.FromRows([][]float64{
		{2, 0, 0},
		{6, 1, 0},
		{-8, 5, 3},
	})
	if !ch.L.Equal(want, 1e-9) {
		t.Fatalf("L = %v", ch.L)
	}
}

func TestCholeskyReconstructionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(rng.Int31n(10))
		a := randomSPD(rng, n)
		ch, err := NewCholesky(a)
		if err != nil {
			return false
		}
		recon := ch.L.Mul(ch.L.Transpose())
		return recon.Equal(a, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a := mat.FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	_, err := NewCholesky(a)
	if !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("err = %v, want ErrNotPositiveDefinite", err)
	}
}

func TestCholeskyNonSquare(t *testing.T) {
	if _, err := NewCholesky(mat.New(2, 3)); err == nil {
		t.Fatal("non-square Cholesky succeeded")
	}
}

func TestSolveVecProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(rng.Int31n(12))
		a := randomSPD(rng, n)
		xTrue := mat.RandVec(rng, n, -5, 5)
		b := make([]float64, n)
		a.MulVecTo(b, xTrue)
		ch, err := NewCholesky(a)
		if err != nil {
			return false
		}
		x := ch.SolveVec(b)
		return mat.Dist2(x, xTrue) < 1e-6*(1+mat.Norm2(xTrue))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveVecTo(t *testing.T) {
	a := mat.FromRows([][]float64{{2, 0}, {0, 3}})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 2)
	ch.SolveVecTo(dst, []float64{4, 9})
	if math.Abs(dst[0]-2) > 1e-12 || math.Abs(dst[1]-3) > 1e-12 {
		t.Fatalf("SolveVecTo = %v", dst)
	}
}

func TestLogDet(t *testing.T) {
	a := mat.FromRows([][]float64{{2, 0}, {0, 8}}) // det = 16
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := ch.LogDet(); math.Abs(got-math.Log(16)) > 1e-12 {
		t.Fatalf("LogDet = %v, want %v", got, math.Log(16))
	}
}

func TestForwardBackwardSubst(t *testing.T) {
	l := mat.FromRows([][]float64{{2, 0}, {1, 3}})
	// L y = b with b = (4, 11) -> y = (2, 3)
	y := ForwardSubst(l, []float64{4, 11})
	if math.Abs(y[0]-2) > 1e-12 || math.Abs(y[1]-3) > 1e-12 {
		t.Fatalf("ForwardSubst = %v", y)
	}
	// Lᵀ x = y with y = (7, 6) -> x: 2x0 + x1 = 7; 3x1 = 6 -> x = (2.5, 2)
	x := BackwardSubstTrans(l, []float64{7, 6})
	if math.Abs(x[0]-2.5) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Fatalf("BackwardSubstTrans = %v", x)
	}
}

func TestSolveSPD(t *testing.T) {
	a := mat.FromRows([][]float64{{4, 1}, {1, 3}})
	b := []float64{1, 2}
	x, err := SolveSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	check := make([]float64, 2)
	a.MulVecTo(check, x)
	if mat.Dist2(check, b) > 1e-10 {
		t.Fatalf("residual too large: Ax = %v, b = %v", check, b)
	}
}

func TestSolveSPDError(t *testing.T) {
	if _, err := SolveSPD(mat.New(2, 2), []float64{1, 1}); err == nil {
		t.Fatal("SolveSPD on zero matrix succeeded")
	}
}

func TestAddJitter(t *testing.T) {
	a := mat.New(3, 3)
	AddJitter(a, 0.5)
	for i := 0; i < 3; i++ {
		if a.At(i, i) != 0.5 {
			t.Fatalf("diag %d = %v", i, a.At(i, i))
		}
	}
	if a.At(0, 1) != 0 {
		t.Fatal("off-diagonal modified")
	}
}

func TestLogDetMatchesSumOfEigsProperty(t *testing.T) {
	// For diagonal matrices the log-det is the sum of log entries.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(rng.Int31n(8))
		a := mat.New(n, n)
		want := 0.0
		for i := 0; i < n; i++ {
			d := 0.1 + rng.Float64()*10
			a.Set(i, i, d)
			want += math.Log(d)
		}
		ch, err := NewCholesky(a)
		if err != nil {
			return false
		}
		return math.Abs(ch.LogDet()-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
