// Package linalg provides the small set of dense linear-algebra routines
// needed by the Gaussian-process substrate of the DeepCAT reproduction:
// Cholesky factorization of symmetric positive-definite matrices,
// forward/backward triangular solves, SPD linear solves and
// log-determinants.
//
// All routines operate on mat.Matrix values and return errors (rather than
// panicking) when a matrix is numerically not positive definite, because
// that is a data condition — ill-conditioned kernels — not a programmer
// error.
package linalg

import (
	"errors"
	"fmt"
	"math"

	"deepcat/internal/mat"
)

// ErrNotPositiveDefinite is returned when Cholesky factorization encounters
// a non-positive pivot, meaning the input matrix is not (numerically)
// symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// Cholesky holds the lower-triangular factor L of an SPD matrix A = L·Lᵀ.
type Cholesky struct {
	// L is the lower-triangular factor; entries above the diagonal are zero.
	L *mat.Matrix
}

// NewCholesky factorizes the symmetric positive-definite matrix a and
// returns its lower-triangular factor. The input is not modified. It returns
// ErrNotPositiveDefinite if a pivot is not strictly positive.
func NewCholesky(a *mat.Matrix) (*Cholesky, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("linalg: Cholesky of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	l := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			li := l.Row(i)
			lj := l.Row(j)
			for k := 0; k < j; k++ {
				sum -= li[k] * lj[k]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, fmt.Errorf("%w: pivot %d = %g", ErrNotPositiveDefinite, i, sum)
				}
				li[j] = math.Sqrt(sum)
			} else {
				li[j] = sum / lj[j]
			}
		}
	}
	return &Cholesky{L: l}, nil
}

// Size returns the dimension n of the factored matrix.
func (c *Cholesky) Size() int { return c.L.Rows }

// SolveVec solves A·x = b using the factorization and returns x. The
// right-hand side b must have length Size().
func (c *Cholesky) SolveVec(b []float64) []float64 {
	y := ForwardSubst(c.L, b)
	return BackwardSubstTrans(c.L, y)
}

// SolveVecTo is like SolveVec but writes into dst (which must have length
// Size() and may alias b).
func (c *Cholesky) SolveVecTo(dst, b []float64) {
	x := c.SolveVec(b)
	copy(dst, x)
}

// LogDet returns log|A| = 2·Σ log L[i][i].
func (c *Cholesky) LogDet() float64 {
	var s float64
	for i := 0; i < c.L.Rows; i++ {
		s += math.Log(c.L.At(i, i))
	}
	return 2 * s
}

// ForwardSubst solves L·y = b for lower-triangular L and returns y.
func ForwardSubst(l *mat.Matrix, b []float64) []float64 {
	n := l.Rows
	if len(b) != n {
		panic(fmt.Sprintf("linalg: forward subst rhs length %d, want %d", len(b), n))
	}
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		row := l.Row(i)
		for k := 0; k < i; k++ {
			sum -= row[k] * y[k]
		}
		y[i] = sum / row[i]
	}
	return y
}

// BackwardSubstTrans solves Lᵀ·x = y for lower-triangular L and returns x.
func BackwardSubstTrans(l *mat.Matrix, y []float64) []float64 {
	n := l.Rows
	if len(y) != n {
		panic(fmt.Sprintf("linalg: backward subst rhs length %d, want %d", len(y), n))
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= l.At(k, i) * x[k]
		}
		x[i] = sum / l.At(i, i)
	}
	return x
}

// SolveSPD solves A·x = b for symmetric positive-definite A in one call.
func SolveSPD(a *mat.Matrix, b []float64) ([]float64, error) {
	ch, err := NewCholesky(a)
	if err != nil {
		return nil, err
	}
	return ch.SolveVec(b), nil
}

// AddJitter adds eps to the diagonal of a in place; the standard trick to
// regularize a nearly singular kernel matrix before factorization.
func AddJitter(a *mat.Matrix, eps float64) {
	n := a.Rows
	if a.Cols < n {
		n = a.Cols
	}
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+eps)
	}
}
