// Package rl implements the reinforcement-learning machinery of the DeepCAT
// reproduction: experience transitions, three replay strategies (uniform,
// TD-error prioritized replay on a sum-tree, and the paper's reward-driven
// RDPER), exploration noise processes, and the DDPG and TD3 actor-critic
// agents built on package nn.
//
// Everything is deterministic given seeded *rand.Rand values, and nothing
// here knows about Spark or configuration tuning — the agents operate on
// abstract state/action vectors so they can be reused for any environment.
package rl

import "deepcat/internal/mat"

// Transition is one (s, a, r, s', done) experience tuple. Action dimensions
// are normalized to [0,1] by callers, matching the paper's action encoding
// (§3.1).
type Transition struct {
	State     []float64
	Action    []float64
	Reward    float64
	NextState []float64
	Done      bool
}

// Clone returns a deep copy of the transition, so that buffers can retain
// data even if callers reuse their slices.
func (tr Transition) Clone() Transition {
	return Transition{
		State:     mat.CloneSlice(tr.State),
		Action:    mat.CloneSlice(tr.Action),
		Reward:    tr.Reward,
		NextState: mat.CloneSlice(tr.NextState),
		Done:      tr.Done,
	}
}

// Batch is a sampled mini-batch. Indices and Weights are only meaningful for
// prioritized samplers: Indices identify the sampled transitions for
// priority updates and Weights carry importance-sampling corrections
// (all-ones for non-prioritized samplers).
type Batch struct {
	Transitions []Transition
	Indices     []int
	Weights     []float64
}

// Len returns the number of transitions in the batch.
func (b Batch) Len() int { return len(b.Transitions) }
