package rl

import (
	"fmt"
	"math/rand"
)

// Sampler is the interface all replay buffers implement. Add stores a
// transition (evicting the oldest when full) and Sample draws a mini-batch.
type Sampler interface {
	// Add stores a (deep-copied) transition.
	Add(tr Transition)
	// Len returns the number of stored transitions.
	Len() int
	// Sample draws n transitions; when fewer than n are stored it samples
	// with replacement from what is available. On an empty buffer RDPER
	// returns an empty batch (check Batch.Len before training); the other
	// implementations panic. An implementation may reuse the returned
	// batch's backing arrays on its next Sample call.
	Sample(rng *rand.Rand, n int) Batch
}

// PrioritySampler is implemented by samplers whose sampling distribution
// depends on per-transition priorities that the learner refreshes with new
// TD errors after each training step.
type PrioritySampler interface {
	Sampler
	// UpdatePriorities sets new |TD error|-based priorities for the
	// transitions identified by a previous Sample's Batch.Indices.
	UpdatePriorities(indices []int, tdErrs []float64)
}

// UniformReplay is the conventional experience replay: a fixed-capacity ring
// buffer sampled uniformly at random. This is the mechanism the paper's
// "TD3 (conventional ER)" baseline in Fig. 4 uses.
type UniformReplay struct {
	cap  int
	buf  []Transition
	next int
	full bool
}

// NewUniformReplay creates a buffer holding at most capacity transitions.
func NewUniformReplay(capacity int) *UniformReplay {
	if capacity <= 0 {
		panic(fmt.Sprintf("rl: non-positive replay capacity %d", capacity))
	}
	return &UniformReplay{cap: capacity, buf: make([]Transition, 0, capacity)}
}

// Add stores a transition, evicting the oldest when the buffer is full.
func (u *UniformReplay) Add(tr Transition) {
	c := tr.Clone()
	if len(u.buf) < u.cap {
		u.buf = append(u.buf, c)
		return
	}
	u.buf[u.next] = c
	u.next = (u.next + 1) % u.cap
	u.full = true
}

// Len returns the number of stored transitions.
func (u *UniformReplay) Len() int { return len(u.buf) }

// Sample draws n transitions uniformly with replacement.
func (u *UniformReplay) Sample(rng *rand.Rand, n int) Batch {
	if len(u.buf) == 0 {
		panic("rl: Sample from empty UniformReplay")
	}
	b := Batch{
		Transitions: make([]Transition, n),
		Indices:     make([]int, n),
		Weights:     make([]float64, n),
	}
	for i := 0; i < n; i++ {
		idx := rng.Intn(len(u.buf))
		b.Transitions[i] = u.buf[idx]
		b.Indices[i] = idx
		b.Weights[i] = 1
	}
	return b
}

// sampleInto appends n uniform draws (with replacement) to dst without
// allocating when dst's backing arrays have capacity; a no-op when the
// buffer is empty or n <= 0. Only transitions are appended — the caller owns
// Indices and Weights.
func (u *UniformReplay) sampleInto(rng *rand.Rand, n int, dst *Batch) {
	if len(u.buf) == 0 {
		return
	}
	for i := 0; i < n; i++ {
		dst.Transitions = append(dst.Transitions, u.buf[rng.Intn(len(u.buf))])
	}
}
