package rl

import (
	"fmt"
	"math/rand"

	"deepcat/internal/mat"
)

// Noise is an exploration-noise process producing perturbation vectors of a
// fixed dimension.
type Noise interface {
	// Sample returns the next noise vector (freshly allocated).
	Sample(rng *rand.Rand) []float64
	// Reset restarts the process (meaningful for stateful processes such as
	// Ornstein-Uhlenbeck).
	Reset()
}

// GaussianNoise is i.i.d. zero-mean Gaussian exploration noise, the process
// both TD3 exploration and DeepCAT's Twin-Q Optimizer perturbations use.
type GaussianNoise struct {
	Dim   int
	Sigma float64
}

// NewGaussianNoise returns a dim-dimensional N(0, sigma²) process.
func NewGaussianNoise(dim int, sigma float64) *GaussianNoise {
	if dim <= 0 {
		panic(fmt.Sprintf("rl: non-positive noise dim %d", dim))
	}
	return &GaussianNoise{Dim: dim, Sigma: sigma}
}

// Sample returns a fresh N(0, sigma²) vector.
func (g *GaussianNoise) Sample(rng *rand.Rand) []float64 {
	return mat.RandNormalVec(rng, g.Dim, 0, g.Sigma)
}

// Reset is a no-op: Gaussian noise is memoryless.
func (g *GaussianNoise) Reset() {}

// OUNoise is the Ornstein-Uhlenbeck process classically paired with DDPG
// (Lillicrap et al., 2015): temporally correlated noise that mean-reverts to
// Mu at rate Theta with volatility Sigma.
type OUNoise struct {
	Dim   int
	Mu    float64
	Theta float64
	Sigma float64

	state []float64
}

// NewOUNoise returns a dim-dimensional OU process with the conventional
// parameters theta=0.15, sigma as given, mu=0.
func NewOUNoise(dim int, sigma float64) *OUNoise {
	if dim <= 0 {
		panic(fmt.Sprintf("rl: non-positive noise dim %d", dim))
	}
	n := &OUNoise{Dim: dim, Theta: 0.15, Sigma: sigma}
	n.Reset()
	return n
}

// Sample advances the process one step and returns a copy of its state.
func (n *OUNoise) Sample(rng *rand.Rand) []float64 {
	for i := range n.state {
		n.state[i] += n.Theta*(n.Mu-n.state[i]) + n.Sigma*rng.NormFloat64()
	}
	return mat.CloneSlice(n.state)
}

// Reset returns the process to its mean.
func (n *OUNoise) Reset() {
	n.state = make([]float64, n.Dim)
	for i := range n.state {
		n.state[i] = n.Mu
	}
}
