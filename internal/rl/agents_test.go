package rl

import (
	"math"
	"math/rand"
	"testing"

	"deepcat/internal/mat"
)

// toyTarget is the optimal action for a toy one-step environment: a smooth
// state-dependent map into [0,1]^2.
func toyTarget(s []float64) []float64 {
	return []float64{0.25 + 0.5*s[0], 0.75 - 0.5*s[1]}
}

// toyReward peaks at 1 when a == toyTarget(s) and falls off quadratically.
func toyReward(s, a []float64) float64 {
	d := mat.Dist2(a, toyTarget(s))
	return 1 - 4*d*d
}

// fillToyBuffer populates buf with random-action experiences from the toy
// environment (one-step episodes).
func fillToyBuffer(rng *rand.Rand, buf Sampler, n int) {
	for i := 0; i < n; i++ {
		s := mat.RandVec(rng, 2, 0, 1)
		a := mat.RandVec(rng, 2, 0, 1)
		buf.Add(Transition{
			State:     s,
			Action:    a,
			Reward:    toyReward(s, a),
			NextState: mat.RandVec(rng, 2, 0, 1),
			Done:      true,
		})
	}
}

func TestTD3ConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bad := []TD3Config{
		{},
		func() TD3Config { c := DefaultTD3Config(2, 2); c.Gamma = 1.5; return c }(),
		func() TD3Config { c := DefaultTD3Config(2, 2); c.Tau = 0; return c }(),
		func() TD3Config { c := DefaultTD3Config(2, 2); c.PolicyDelay = 0; return c }(),
		func() TD3Config { c := DefaultTD3Config(2, 2); c.Hidden = nil; return c }(),
	}
	for i, cfg := range bad {
		if _, err := NewTD3(rng, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := NewTD3(rng, DefaultTD3Config(2, 2)); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestDDPGConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewDDPG(rng, DDPGConfig{}); err == nil {
		t.Error("invalid DDPG config accepted")
	}
	if _, err := NewDDPG(rng, DefaultDDPGConfig(2, 2)); err != nil {
		t.Fatalf("valid DDPG config rejected: %v", err)
	}
}

func TestTD3ActBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	agent, err := NewTD3(rng, DefaultTD3Config(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		a := agent.Act(mat.RandVec(rng, 3, -2, 2))
		if len(a) != 5 {
			t.Fatalf("action dim %d", len(a))
		}
		for _, v := range a {
			if v < 0 || v > 1 {
				t.Fatalf("action %v outside [0,1]", v)
			}
		}
	}
}

func TestTD3ActNoisyClipped(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	agent, _ := NewTD3(rng, DefaultTD3Config(2, 4))
	for i := 0; i < 50; i++ {
		a := agent.ActNoisy(rng, []float64{0.5, 0.5}, 5) // huge sigma
		for _, v := range a {
			if v < 0 || v > 1 {
				t.Fatalf("noisy action %v outside [0,1]", v)
			}
		}
	}
}

func TestTD3MinQConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	agent, _ := NewTD3(rng, DefaultTD3Config(2, 2))
	s := []float64{0.3, 0.6}
	a := []float64{0.1, 0.9}
	q1, q2 := agent.QValues(s, a)
	if got := agent.MinQ(s, a); got != math.Min(q1, q2) {
		t.Fatalf("MinQ = %v, want min(%v, %v)", got, q1, q2)
	}
}

func TestTD3DelayedPolicyUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := DefaultTD3Config(2, 2)
	cfg.PolicyDelay = 3
	agent, _ := NewTD3(rng, cfg)
	buf := NewUniformReplay(100)
	fillToyBuffer(rng, buf, 50)
	for step := 1; step <= 9; step++ {
		st := agent.Train(rng, buf.Sample(rng, 16))
		want := step%3 == 0
		if st.ActorUpdated != want {
			t.Fatalf("step %d: ActorUpdated = %v, want %v", step, st.ActorUpdated, want)
		}
	}
	if agent.Updates() != 9 {
		t.Fatalf("Updates = %d", agent.Updates())
	}
}

func TestTD3EmptyBatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	agent, _ := NewTD3(rng, DefaultTD3Config(2, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("empty batch did not panic")
		}
	}()
	agent.Train(rng, Batch{})
}

// trainToy runs a short offline training loop of either agent on the toy
// environment and returns the mean regret of the greedy policy over probe
// states (0 = optimal).
func trainToyTD3(t *testing.T, seed int64, sampler Sampler) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cfg := DefaultTD3Config(2, 2)
	cfg.Hidden = []int{64, 64}
	agent, err := NewTD3(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fillToyBuffer(rng, sampler, 600)
	for i := 0; i < 1200; i++ {
		agent.Train(rng, sampler.Sample(rng, 32))
	}
	return toyRegret(rng, agent.Act)
}

func toyRegret(rng *rand.Rand, policy func([]float64) []float64) float64 {
	var regret float64
	const probes = 50
	for i := 0; i < probes; i++ {
		s := mat.RandVec(rng, 2, 0, 1)
		regret += 1 - toyReward(s, policy(s))
	}
	return regret / probes
}

func TestTD3LearnsToyProblem(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping learning test in -short mode")
	}
	regret := trainToyTD3(t, 7, NewUniformReplay(2000))
	if regret > 0.08 {
		t.Fatalf("TD3 regret after training = %v, want < 0.08", regret)
	}
}

func TestTD3WithRDPERLearnsToyProblem(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping learning test in -short mode")
	}
	regret := trainToyTD3(t, 8, NewRDPER(2000, 0.5, 0.6))
	if regret > 0.08 {
		t.Fatalf("TD3+RDPER regret = %v, want < 0.08", regret)
	}
}

func TestDDPGLearnsToyProblem(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping learning test in -short mode")
	}
	rng := rand.New(rand.NewSource(9))
	cfg := DefaultDDPGConfig(2, 2)
	cfg.Hidden = []int{64, 64}
	agent, err := NewDDPG(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	buf := NewUniformReplay(2000)
	fillToyBuffer(rng, buf, 600)
	for i := 0; i < 1200; i++ {
		agent.Train(rng, buf.Sample(rng, 32))
	}
	regret := toyRegret(rng, agent.Act)
	if regret > 0.1 {
		t.Fatalf("DDPG regret after training = %v, want < 0.1", regret)
	}
}

func TestTD3CriticTracksReward(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping learning test in -short mode")
	}
	// After training on one-step episodes, min(Q1,Q2) should correlate
	// strongly with the immediate reward — the Fig. 3 premise that makes
	// the Twin-Q Optimizer's indicator work.
	rng := rand.New(rand.NewSource(10))
	agent, _ := NewTD3(rng, DefaultTD3Config(2, 2))
	buf := NewUniformReplay(2000)
	fillToyBuffer(rng, buf, 800)
	for i := 0; i < 1500; i++ {
		agent.Train(rng, buf.Sample(rng, 32))
	}
	var qs, rs []float64
	for i := 0; i < 200; i++ {
		s := mat.RandVec(rng, 2, 0, 1)
		a := mat.RandVec(rng, 2, 0, 1)
		qs = append(qs, agent.MinQ(s, a))
		rs = append(rs, toyReward(s, a))
	}
	corr := correlation(qs, rs)
	if corr < 0.8 {
		t.Fatalf("min-Q/reward correlation = %v, want > 0.8", corr)
	}
}

func correlation(a, b []float64) float64 {
	ma, mb := mat.Mean(a), mat.Mean(b)
	var cov, va, vb float64
	for i := range a {
		cov += (a[i] - ma) * (b[i] - mb)
		va += (a[i] - ma) * (a[i] - ma)
		vb += (b[i] - mb) * (b[i] - mb)
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

func TestDDPGQValue(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	agent, _ := NewDDPG(rng, DefaultDDPGConfig(2, 2))
	q := agent.QValue([]float64{0.5, 0.5}, []float64{0.5, 0.5})
	if math.IsNaN(q) || math.IsInf(q, 0) {
		t.Fatalf("QValue = %v", q)
	}
}

func TestDDPGActNoisyClipped(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	agent, _ := NewDDPG(rng, DefaultDDPGConfig(2, 3))
	for i := 0; i < 50; i++ {
		a := agent.ActNoisy(rng, []float64{0.5, 0.5}, 5)
		for _, v := range a {
			if v < 0 || v > 1 {
				t.Fatalf("noisy action %v outside [0,1]", v)
			}
		}
	}
}

func TestTD3TrainWithPERUpdatesPriorities(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	agent, _ := NewTD3(rng, DefaultTD3Config(2, 2))
	per := NewPrioritizedReplay(500)
	fillToyBuffer(rng, per, 100)
	b := per.Sample(rng, 16)
	st := agent.Train(rng, b)
	if len(st.TDErrors) != 16 {
		t.Fatalf("TDErrors len %d", len(st.TDErrors))
	}
	per.UpdatePriorities(b.Indices, st.TDErrors) // must not panic
}

func TestTD3DoneMasksBootstrap(t *testing.T) {
	// With gamma ~ 1 and Done=true, targets equal rewards exactly; train a
	// few steps and verify critic loss is finite and decreasing-ish.
	rng := rand.New(rand.NewSource(14))
	cfg := DefaultTD3Config(2, 2)
	cfg.Gamma = 0.99
	agent, _ := NewTD3(rng, cfg)
	buf := NewUniformReplay(200)
	fillToyBuffer(rng, buf, 100)
	first := agent.Train(rng, buf.Sample(rng, 32)).CriticLoss
	var last float64
	for i := 0; i < 300; i++ {
		last = agent.Train(rng, buf.Sample(rng, 32)).CriticLoss
	}
	if math.IsNaN(last) || last > first {
		t.Fatalf("critic loss did not decrease: first %v, last %v", first, last)
	}
}
