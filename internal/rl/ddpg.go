package rl

import (
	"fmt"
	"math/rand"

	"deepcat/internal/mat"
	"deepcat/internal/nn"
)

// DDPGConfig collects the hyper-parameters of a DDPG agent (Lillicrap et
// al., 2015), the backbone of the CDBTune baseline.
type DDPGConfig struct {
	StateDim  int
	ActionDim int
	Hidden    []int

	ActorLR  float64
	CriticLR float64
	Gamma    float64
	Tau      float64
	// MaxGradNorm, when positive, clips gradients by global norm.
	MaxGradNorm float64
}

// DefaultDDPGConfig mirrors DefaultTD3Config for a fair head-to-head
// comparison: identical architecture, learning rates and discount.
func DefaultDDPGConfig(stateDim, actionDim int) DDPGConfig {
	return DDPGConfig{
		StateDim:    stateDim,
		ActionDim:   actionDim,
		Hidden:      []int{128, 128},
		ActorLR:     1e-3,
		CriticLR:    1e-3,
		Gamma:       0.35,
		Tau:         0.005,
		MaxGradNorm: 5,
	}
}

func (c DDPGConfig) validate() error {
	switch {
	case c.StateDim <= 0 || c.ActionDim <= 0:
		return fmt.Errorf("rl: non-positive dimensions state=%d action=%d", c.StateDim, c.ActionDim)
	case len(c.Hidden) == 0:
		return fmt.Errorf("rl: no hidden layers")
	case c.Gamma < 0 || c.Gamma >= 1:
		return fmt.Errorf("rl: gamma %g outside [0,1)", c.Gamma)
	case c.Tau <= 0 || c.Tau > 1:
		return fmt.Errorf("rl: tau %g outside (0,1]", c.Tau)
	}
	return nil
}

// DDPG is the single-critic deterministic policy gradient agent. Its known
// weakness — critic overestimation feeding a poor policy — is exactly what
// the paper replaces it with TD3 to fix.
type DDPG struct {
	Cfg DDPGConfig

	Actor       *nn.MLP
	ActorTarget *nn.MLP
	Critic      *nn.MLP
	CriticT     *nn.MLP

	actorOpt   *nn.Adam
	criticOpt  *nn.Adam
	actorGrads *nn.Grads
	critGrads  *nn.Grads

	updates int
}

// NewDDPG constructs an agent with freshly initialized networks.
func NewDDPG(rng *rand.Rand, cfg DDPGConfig) (*DDPG, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// Reuse the TD3 layer-shape helpers; the roles are identical.
	tcfg := TD3Config{StateDim: cfg.StateDim, ActionDim: cfg.ActionDim, Hidden: cfg.Hidden}
	aSizes, aActs := actorSizes(tcfg)
	cSizes, cActs := criticSizes(tcfg)
	d := &DDPG{Cfg: cfg}
	d.Actor = nn.NewMLP(rng, aSizes, aActs)
	d.Critic = nn.NewMLP(rng, cSizes, cActs)
	d.ActorTarget = d.Actor.Clone()
	d.CriticT = d.Critic.Clone()
	d.actorOpt = nn.NewAdam(d.Actor, cfg.ActorLR)
	d.criticOpt = nn.NewAdam(d.Critic, cfg.CriticLR)
	d.actorOpt.MaxNorm = cfg.MaxGradNorm
	d.criticOpt.MaxNorm = cfg.MaxGradNorm
	d.actorGrads = d.Actor.NewGrads()
	d.critGrads = d.Critic.NewGrads()
	return d, nil
}

// Act returns the deterministic policy's action for state in [0,1]^d.
func (d *DDPG) Act(state []float64) []float64 {
	return d.Actor.Forward(state)
}

// ActNoisy returns the policy action perturbed with Gaussian exploration
// noise, clipped into [0,1].
func (d *DDPG) ActNoisy(rng *rand.Rand, state []float64, sigma float64) []float64 {
	a := d.Act(state)
	for i := range a {
		a[i] = mat.Clip(a[i]+sigma*rng.NormFloat64(), 0, 1)
	}
	return a
}

// QValue evaluates the critic at (state, action).
func (d *DDPG) QValue(state, action []float64) float64 {
	sa := make([]float64, d.Cfg.StateDim+d.Cfg.ActionDim)
	copy(sa, state)
	copy(sa[d.Cfg.StateDim:], action)
	return d.Critic.Forward(sa)[0]
}

// Train performs one DDPG update: critic TD regression (Eq. 3), actor
// deterministic policy gradient (Eq. 4), soft target updates.
func (d *DDPG) Train(rng *rand.Rand, batch Batch) TrainStats {
	n := batch.Len()
	if n == 0 {
		panic("rl: Train on empty batch")
	}
	stats := TrainStats{TDErrors: make([]float64, n), ActorUpdated: true}

	targets := make([]float64, n)
	for i, tr := range batch.Transitions {
		y := tr.Reward
		if !tr.Done {
			aNext := d.ActorTarget.Forward(tr.NextState)
			sa := make([]float64, d.Cfg.StateDim+d.Cfg.ActionDim)
			copy(sa, tr.NextState)
			copy(sa[d.Cfg.StateDim:], aNext)
			y += d.Cfg.Gamma * d.CriticT.Forward(sa)[0]
		}
		targets[i] = y
	}

	d.critGrads.Zero()
	var loss, sumQ float64
	for i, tr := range batch.Transitions {
		w := 1.0
		if batch.Weights != nil {
			w = batch.Weights[i]
		}
		sa := make([]float64, d.Cfg.StateDim+d.Cfg.ActionDim)
		copy(sa, tr.State)
		copy(sa[d.Cfg.StateDim:], tr.Action)
		tape := d.Critic.ForwardTape(sa)
		q := tape.Output()[0]
		delta := q - targets[i]
		d.Critic.Backward(tape, []float64{w * delta}, d.critGrads)
		loss += w * 0.5 * delta * delta
		sumQ += q
		stats.TDErrors[i] = delta
	}
	scale := 1.0 / float64(n)
	d.criticOpt.Step(d.Critic, d.critGrads, scale)
	stats.CriticLoss = loss * scale
	stats.MeanQ = sumQ * scale

	// Actor update.
	d.actorGrads.Zero()
	for _, tr := range batch.Transitions {
		aTape := d.Actor.ForwardTape(tr.State)
		a := aTape.Output()
		sa := make([]float64, d.Cfg.StateDim+d.Cfg.ActionDim)
		copy(sa, tr.State)
		copy(sa[d.Cfg.StateDim:], a)
		dSA := d.Critic.InputGrad(sa, []float64{1})
		dA := dSA[d.Cfg.StateDim:]
		neg := make([]float64, len(dA))
		mat.ScaleTo(neg, -1, dA)
		d.Actor.Backward(aTape, neg, d.actorGrads)
	}
	d.actorOpt.Step(d.Actor, d.actorGrads, scale)

	d.ActorTarget.SoftUpdate(d.Actor, d.Cfg.Tau)
	d.CriticT.SoftUpdate(d.Critic, d.Cfg.Tau)
	d.updates++
	return stats
}

// Updates returns the number of Train calls performed.
func (d *DDPG) Updates() int { return d.updates }
