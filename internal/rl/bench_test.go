package rl

import (
	"math/rand"
	"testing"

	"deepcat/internal/mat"
)

func benchTransition(rng *rand.Rand) Transition {
	return Transition{
		State:     mat.RandVec(rng, 9, 0, 1),
		Action:    mat.RandVec(rng, 32, 0, 1),
		Reward:    rng.NormFloat64(),
		NextState: mat.RandVec(rng, 9, 0, 1),
	}
}

func BenchmarkRDPERAddSample(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	buf := NewRDPER(100000, 0, 0.6)
	for i := 0; i < 1000; i++ {
		buf.Add(benchTransition(rng))
	}
	tr := benchTransition(rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Add(tr)
		buf.Sample(rng, 32)
	}
}

func BenchmarkPERSampleUpdate(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	buf := NewPrioritizedReplay(100000)
	for i := 0; i < 1000; i++ {
		buf.Add(benchTransition(rng))
	}
	errs := make([]float64, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := buf.Sample(rng, 32)
		buf.UpdatePriorities(batch.Indices, errs)
	}
}

func BenchmarkSumTreeSet(b *testing.B) {
	s := NewSumTree(1 << 16)
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Set(i&(1<<16-1), rng.Float64())
	}
}

func BenchmarkTD3TrainStep(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	cfg := DefaultTD3Config(9, 32)
	cfg.Hidden = []int{64, 64}
	agent, err := NewTD3(rng, cfg)
	if err != nil {
		b.Fatal(err)
	}
	buf := NewUniformReplay(10000)
	for i := 0; i < 500; i++ {
		buf.Add(benchTransition(rng))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent.Train(rng, buf.Sample(rng, 32))
	}
}

func BenchmarkDDPGTrainStep(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	cfg := DefaultDDPGConfig(9, 32)
	cfg.Hidden = []int{64, 64}
	agent, err := NewDDPG(rng, cfg)
	if err != nil {
		b.Fatal(err)
	}
	buf := NewUniformReplay(10000)
	for i := 0; i < 500; i++ {
		buf.Add(benchTransition(rng))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent.Train(rng, buf.Sample(rng, 32))
	}
}

func BenchmarkTD3Act(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	cfg := DefaultTD3Config(9, 32)
	cfg.Hidden = []int{64, 64}
	agent, _ := NewTD3(rng, cfg)
	s := mat.RandVec(rng, 9, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent.Act(s)
	}
}
