package rl

import (
	"fmt"

	"deepcat/internal/nn"
)

// PoolState is the serializable state of one UniformReplay ring buffer:
// the full transition contents plus the ring cursor, so a restored pool
// evicts in exactly the order the original would have.
type PoolState struct {
	Cap         int
	Next        int
	Full        bool
	Transitions []Transition
}

// State returns a deep copy of the buffer's state.
func (u *UniformReplay) State() PoolState {
	s := PoolState{
		Cap:         u.cap,
		Next:        u.next,
		Full:        u.full,
		Transitions: make([]Transition, len(u.buf)),
	}
	for i, tr := range u.buf {
		s.Transitions[i] = tr.Clone()
	}
	return s
}

// SetState replaces the buffer's contents with a previously captured state.
func (u *UniformReplay) SetState(s PoolState) error {
	if s.Cap <= 0 {
		return fmt.Errorf("rl: pool state with non-positive capacity %d", s.Cap)
	}
	if len(s.Transitions) > s.Cap {
		return fmt.Errorf("rl: pool state holds %d transitions, capacity %d", len(s.Transitions), s.Cap)
	}
	if s.Next < 0 || s.Next >= s.Cap {
		return fmt.Errorf("rl: pool state cursor %d outside [0,%d)", s.Next, s.Cap)
	}
	u.cap = s.Cap
	u.next = s.Next
	u.full = s.Full
	u.buf = make([]Transition, len(s.Transitions))
	for i, tr := range s.Transitions {
		u.buf[i] = tr.Clone()
	}
	return nil
}

// ReplayState is the serializable state of any Sampler in this package,
// discriminated by Mode. For "per" buffers only the transitions survive a
// round trip: priorities are reset to the maximum on restore (the standard
// new-experience treatment), since TD errors are recomputed within a few
// training steps anyway.
type ReplayState struct {
	// Mode is "uniform", "rdper" or "per".
	Mode string
	// Uniform is set for mode "uniform" and "per".
	Uniform *PoolState
	// High and Low are set for mode "rdper".
	High, Low *PoolState
	// RewardThreshold and Beta echo the RDPER routing parameters.
	RewardThreshold, Beta float64
}

// CaptureReplay snapshots any of the package's samplers.
func CaptureReplay(s Sampler) (ReplayState, error) {
	switch b := s.(type) {
	case *UniformReplay:
		st := b.State()
		return ReplayState{Mode: "uniform", Uniform: &st}, nil
	case *RDPER:
		hi, lo := b.high.State(), b.low.State()
		return ReplayState{
			Mode: "rdper", High: &hi, Low: &lo,
			RewardThreshold: b.RewardThreshold, Beta: b.Beta,
		}, nil
	case *PrioritizedReplay:
		st := PoolState{Cap: b.cap, Transitions: make([]Transition, len(b.buf))}
		for i, tr := range b.buf {
			st.Transitions[i] = tr.Clone()
		}
		return ReplayState{Mode: "per", Uniform: &st}, nil
	default:
		return ReplayState{}, fmt.Errorf("rl: cannot capture replay of type %T", s)
	}
}

// RestoreReplay loads a captured state into dst, which must be the same
// sampler type the state was captured from.
func RestoreReplay(dst Sampler, st ReplayState) error {
	switch b := dst.(type) {
	case *UniformReplay:
		if st.Mode != "uniform" || st.Uniform == nil {
			return fmt.Errorf("rl: replay state mode %q cannot restore a UniformReplay", st.Mode)
		}
		return b.SetState(*st.Uniform)
	case *RDPER:
		if st.Mode != "rdper" || st.High == nil || st.Low == nil {
			return fmt.Errorf("rl: replay state mode %q cannot restore an RDPER", st.Mode)
		}
		b.RewardThreshold = st.RewardThreshold
		b.Beta = st.Beta
		if err := b.high.SetState(*st.High); err != nil {
			return err
		}
		return b.low.SetState(*st.Low)
	case *PrioritizedReplay:
		if st.Mode != "per" || st.Uniform == nil {
			return fmt.Errorf("rl: replay state mode %q cannot restore a PrioritizedReplay", st.Mode)
		}
		if len(st.Uniform.Transitions) > b.cap {
			return fmt.Errorf("rl: per state holds %d transitions, capacity %d", len(st.Uniform.Transitions), b.cap)
		}
		for _, tr := range st.Uniform.Transitions {
			b.Add(tr)
		}
		return nil
	default:
		return fmt.Errorf("rl: cannot restore replay of type %T", dst)
	}
}

// ExportTransitions returns a deep copy of every transition stored in s:
// uniform and prioritized buffers in storage order, RDPER high pool first
// then low. Sessions use it to stream accumulated experience into the fleet
// warehouse without knowing which sampler they run.
func ExportTransitions(s Sampler) ([]Transition, error) {
	switch b := s.(type) {
	case *UniformReplay:
		return cloneTransitions(b.buf, nil), nil
	case *RDPER:
		out := cloneTransitions(b.high.buf, nil)
		return cloneTransitions(b.low.buf, out), nil
	case *PrioritizedReplay:
		return cloneTransitions(b.buf, nil), nil
	default:
		return nil, fmt.Errorf("rl: cannot export transitions of type %T", s)
	}
}

func cloneTransitions(buf, dst []Transition) []Transition {
	for _, tr := range buf {
		dst = append(dst, tr.Clone())
	}
	return dst
}

// TD3State is the full serializable state of a TD3 agent: every network
// (online and target), all three optimizers' moment estimates, and the
// update counter that schedules the delayed policy updates. Restoring it
// into a fresh agent built from the same TD3Config reproduces the original
// agent's training trajectory exactly.
type TD3State struct {
	Actor, ActorTarget *nn.MLP
	Critic1, Critic2   *nn.MLP
	Critic1T, Critic2T *nn.MLP

	ActorOpt, Critic1Opt, Critic2Opt nn.AdamState

	Updates int
}

// CaptureState returns a deep copy of the agent's mutable state.
func (t *TD3) CaptureState() TD3State {
	return TD3State{
		Actor:       t.Actor.Clone(),
		ActorTarget: t.ActorTarget.Clone(),
		Critic1:     t.Critic1.Clone(),
		Critic2:     t.Critic2.Clone(),
		Critic1T:    t.Critic1T.Clone(),
		Critic2T:    t.Critic2T.Clone(),
		ActorOpt:    t.actorOpt.State(),
		Critic1Opt:  t.c1Opt.State(),
		Critic2Opt:  t.c2Opt.State(),
		Updates:     t.updates,
	}
}

// RestoreState loads a captured state into t, which must have been built
// from the same configuration (architectures must match).
func (t *TD3) RestoreState(s TD3State) error {
	for _, m := range []*nn.MLP{s.Actor, s.ActorTarget, s.Critic1, s.Critic2, s.Critic1T, s.Critic2T} {
		if m == nil || len(m.Layers) == 0 {
			return fmt.Errorf("rl: TD3 state with missing network")
		}
	}
	if s.Actor.InSize() != t.Cfg.StateDim || s.Actor.OutSize() != t.Cfg.ActionDim {
		return fmt.Errorf("rl: TD3 state actor is %d->%d, want %d->%d",
			s.Actor.InSize(), s.Actor.OutSize(), t.Cfg.StateDim, t.Cfg.ActionDim)
	}
	if err := t.actorOpt.SetState(s.ActorOpt); err != nil {
		return err
	}
	if err := t.c1Opt.SetState(s.Critic1Opt); err != nil {
		return err
	}
	if err := t.c2Opt.SetState(s.Critic2Opt); err != nil {
		return err
	}
	t.Actor.CopyFrom(s.Actor)
	t.ActorTarget.CopyFrom(s.ActorTarget)
	t.Critic1.CopyFrom(s.Critic1)
	t.Critic2.CopyFrom(s.Critic2)
	t.Critic1T.CopyFrom(s.Critic1T)
	t.Critic2T.CopyFrom(s.Critic2T)
	t.updates = s.Updates
	return nil
}
