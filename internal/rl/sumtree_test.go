package rl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSumTreeSetGetTotal(t *testing.T) {
	s := NewSumTree(4)
	s.Set(0, 1)
	s.Set(1, 2)
	s.Set(2, 3)
	s.Set(3, 4)
	if s.Total() != 10 {
		t.Fatalf("Total = %v", s.Total())
	}
	if s.Get(2) != 3 {
		t.Fatalf("Get(2) = %v", s.Get(2))
	}
	s.Set(2, 0)
	if s.Total() != 7 {
		t.Fatalf("Total after update = %v", s.Total())
	}
}

func TestSumTreeFindPrefix(t *testing.T) {
	s := NewSumTree(4)
	s.Set(0, 1)
	s.Set(1, 2)
	s.Set(2, 3)
	s.Set(3, 4)
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0}, {0.99, 0}, {1, 1}, {2.99, 1}, {3, 2}, {5.99, 2}, {6, 3}, {9.99, 3},
	}
	for _, c := range cases {
		if got := s.FindPrefix(c.v); got != c.want {
			t.Errorf("FindPrefix(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestSumTreeNonPowerOfTwo(t *testing.T) {
	s := NewSumTree(5)
	for i := 0; i < 5; i++ {
		s.Set(i, float64(i+1))
	}
	if s.Total() != 15 {
		t.Fatalf("Total = %v", s.Total())
	}
	if got := s.FindPrefix(14.5); got != 4 {
		t.Fatalf("FindPrefix(14.5) = %d", got)
	}
}

func TestSumTreeInvariantProperty(t *testing.T) {
	// Property: after arbitrary Set operations the root equals the sum of
	// all leaves and every internal node equals the sum of its children.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(rng.Int31n(32))
		s := NewSumTree(n)
		for k := 0; k < 100; k++ {
			s.Set(rng.Intn(n), rng.Float64()*10)
		}
		var leafSum float64
		for i := 0; i < n; i++ {
			leafSum += s.Get(i)
		}
		if math.Abs(leafSum-s.Total()) > 1e-9 {
			return false
		}
		for node := 1; node < n; node++ {
			if math.Abs(s.tree[node]-(s.tree[2*node]+s.tree[2*node+1])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSumTreeProportionalSampling(t *testing.T) {
	s := NewSumTree(3)
	s.Set(0, 1)
	s.Set(1, 0)
	s.Set(2, 3)
	rng := rand.New(rand.NewSource(8))
	counts := make([]int, 3)
	const draws = 40000
	for i := 0; i < draws; i++ {
		counts[s.SampleProportional(rng)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-priority leaf sampled %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.25 {
		t.Fatalf("sampling ratio = %v, want ~3", ratio)
	}
}

func TestSumTreeZeroMassPanics(t *testing.T) {
	s := NewSumTree(2)
	defer func() {
		if recover() == nil {
			t.Fatal("zero-mass sample did not panic")
		}
	}()
	s.SampleProportional(rand.New(rand.NewSource(1)))
}

func TestSumTreeNegativePriorityPanics(t *testing.T) {
	s := NewSumTree(2)
	defer func() {
		if recover() == nil {
			t.Fatal("negative priority did not panic")
		}
	}()
	s.Set(0, -1)
}

func TestSumTreeLeafRangePanics(t *testing.T) {
	s := NewSumTree(2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range leaf did not panic")
		}
	}()
	s.Get(2)
}
