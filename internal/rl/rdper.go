package rl

import (
	"fmt"
	"math/rand"

	"deepcat/internal/trace"
)

// RDPER is DeepCAT's reward-driven prioritized experience replay (§3.3).
// Transitions are routed by their immediate reward into one of two memory
// pools: those with reward >= RewardThreshold go to the high-reward pool
// P_high, the rest to P_low. Each sampled mini-batch of size m draws
// ceil(Beta*m) transitions from P_high and the remainder from P_low,
// guaranteeing the proportion of the rare, valuable high-reward transitions
// in every training batch regardless of how scarce they are in the stream.
//
// Unlike TD-error PER, no importance-sampling correction is applied: the
// skew towards high-reward experiences is the point, not a bias to undo
// (the paper argues collecting maximal environment information is
// unnecessary for configuration tuning).
type RDPER struct {
	// RewardThreshold is R_th: transitions with Reward >= R_th are
	// considered high-reward.
	RewardThreshold float64
	// Beta is the fraction of each batch drawn from the high-reward pool
	// (the paper sweeps 0.1–0.9 in Fig. 11 and settles on 0.6).
	Beta float64

	// Rec, when non-nil, receives one flight-recorder routing event per
	// Add: which pool the transition entered and the R_th in force.
	// Recording is passive and consumes no randomness. Not serialized —
	// CaptureReplay/RestoreReplay ignore it.
	Rec trace.Recorder

	high *UniformReplay
	low  *UniformReplay

	// scratch is the reused mini-batch backing: Sample truncates and refills
	// it instead of allocating fresh slices every call. Not serialized.
	scratch Batch
}

// NewRDPER creates a two-pool buffer. Each pool holds up to capacity
// transitions. Beta must lie in [0, 1].
func NewRDPER(capacity int, rewardThreshold, beta float64) *RDPER {
	if beta < 0 || beta > 1 {
		panic(fmt.Sprintf("rl: RDPER beta %g outside [0,1]", beta))
	}
	return &RDPER{
		RewardThreshold: rewardThreshold,
		Beta:            beta,
		high:            NewUniformReplay(capacity),
		low:             NewUniformReplay(capacity),
	}
}

// Add routes the transition into the high- or low-reward pool.
func (r *RDPER) Add(tr Transition) {
	pool := "low"
	if tr.Reward >= r.RewardThreshold {
		pool = "high"
		r.high.Add(tr)
	} else {
		r.low.Add(tr)
	}
	if r.Rec != nil {
		r.Rec.Emit(trace.Event{Kind: trace.KindRoute, Route: &trace.Route{
			Pool:    pool,
			RTh:     r.RewardThreshold,
			Reward:  tr.Reward,
			HighLen: r.high.Len(),
			LowLen:  r.low.Len(),
		}})
	}
}

// Len returns the total number of stored transitions across both pools.
func (r *RDPER) Len() int { return r.high.Len() + r.low.Len() }

// HighLen returns the number of transitions in the high-reward pool.
func (r *RDPER) HighLen() int { return r.high.Len() }

// LowLen returns the number of transitions in the low-reward pool.
func (r *RDPER) LowLen() int { return r.low.Len() }

// Sample draws ceil(Beta*n) transitions from P_high and the rest from
// P_low. While one pool is still empty the whole batch comes from the other,
// so learning can start before any high-reward experience exists. An empty
// buffer yields an empty batch rather than panicking; callers must check
// Batch.Len before training. The returned batch shares backing arrays reused
// by the next Sample call, so it must be consumed before then.
func (r *RDPER) Sample(rng *rand.Rand, n int) Batch {
	r.scratch.Transitions = r.scratch.Transitions[:0]
	r.scratch.Indices = r.scratch.Indices[:0]
	r.scratch.Weights = r.scratch.Weights[:0]
	if r.Len() == 0 {
		return r.scratch
	}
	nHigh := int(r.Beta*float64(n) + 0.999999)
	if nHigh > n {
		nHigh = n
	}
	switch {
	case r.high.Len() == 0:
		nHigh = 0
	case r.low.Len() == 0:
		nHigh = n
	}
	r.high.sampleInto(rng, nHigh, &r.scratch)
	r.low.sampleInto(rng, n-nHigh, &r.scratch)
	for i := range r.scratch.Transitions {
		r.scratch.Indices = append(r.scratch.Indices, i)
		r.scratch.Weights = append(r.scratch.Weights, 1)
	}
	return r.scratch
}

var _ Sampler = (*RDPER)(nil)
