package rl

import (
	"fmt"
	"math/rand"
)

// SumTree is a complete binary tree whose leaves hold non-negative
// priorities and whose internal nodes hold the sum of their children. It
// supports O(log n) priority updates and O(log n) sampling proportional to
// priority, and backs the TD-error prioritized replay used by the CDBTune
// baseline (Schaul et al., 2015).
type SumTree struct {
	cap   int       // logical leaf capacity
	leafN int       // internal leaf count, next power of two >= cap
	tree  []float64 // 1-based heap layout; leaves occupy [leafN, 2*leafN)
}

// NewSumTree creates a tree with the given leaf capacity. Internally the
// leaf level is padded to the next power of two so the descend logic stays
// branch-free; padded leaves keep priority zero and are never returned.
func NewSumTree(capacity int) *SumTree {
	if capacity <= 0 {
		panic(fmt.Sprintf("rl: non-positive sum-tree capacity %d", capacity))
	}
	leafN := 1
	for leafN < capacity {
		leafN *= 2
	}
	return &SumTree{cap: capacity, leafN: leafN, tree: make([]float64, 2*leafN)}
}

// Capacity returns the number of leaves.
func (s *SumTree) Capacity() int { return s.cap }

// Total returns the sum of all leaf priorities.
func (s *SumTree) Total() float64 { return s.tree[1] }

// Get returns the priority at leaf i.
func (s *SumTree) Get(i int) float64 {
	s.checkLeaf(i)
	return s.tree[s.leafN+i]
}

// Set assigns priority p (>= 0) to leaf i and propagates the change to the
// root.
func (s *SumTree) Set(i int, p float64) {
	s.checkLeaf(i)
	if p < 0 {
		panic(fmt.Sprintf("rl: negative priority %g", p))
	}
	node := s.leafN + i
	delta := p - s.tree[node]
	s.tree[node] = p
	for node > 1 {
		node /= 2
		s.tree[node] += delta
	}
}

// FindPrefix returns the index of the leaf l such that the cumulative sum of
// priorities of leaves 0..l-1 is <= v < cumulative sum through l. v should
// lie in [0, Total()).
func (s *SumTree) FindPrefix(v float64) int {
	node := 1
	for node < s.leafN {
		left := 2 * node
		if v < s.tree[left] {
			node = left
		} else {
			v -= s.tree[left]
			node = left + 1
		}
	}
	return node - s.leafN
}

// SampleProportional draws a leaf index with probability proportional to its
// priority. It panics when the total priority is zero.
func (s *SumTree) SampleProportional(rng *rand.Rand) int {
	total := s.Total()
	if total <= 0 {
		panic("rl: SampleProportional on zero-mass sum-tree")
	}
	return s.FindPrefix(rng.Float64() * total)
}

func (s *SumTree) checkLeaf(i int) {
	if i < 0 || i >= s.cap {
		panic(fmt.Sprintf("rl: sum-tree leaf %d out of range %d", i, s.cap))
	}
}
