package rl

import (
	"math/rand"
	"testing"
)

// TestRDPERThresholdBoundary pins the routing rule at the exact threshold:
// the paper's P_high is defined by reward >= R_th, so a transition whose
// reward equals R_th is high-reward, not low.
func TestRDPERThresholdBoundary(t *testing.T) {
	const rth = 0.25
	r := NewRDPER(8, rth, 0.6)

	r.Add(mkTr(rth)) // exactly at the threshold
	if r.HighLen() != 1 || r.LowLen() != 0 {
		t.Fatalf("reward == R_th routed to (high=%d, low=%d), want (1, 0)", r.HighLen(), r.LowLen())
	}
	r.Add(mkTr(rth - 1e-12)) // just below
	if r.HighLen() != 1 || r.LowLen() != 1 {
		t.Fatalf("reward < R_th routed to (high=%d, low=%d), want (1, 1)", r.HighLen(), r.LowLen())
	}
	r.Add(mkTr(rth + 1e-12)) // just above
	if r.HighLen() != 2 || r.LowLen() != 1 {
		t.Fatalf("reward > R_th routed to (high=%d, low=%d), want (2, 1)", r.HighLen(), r.LowLen())
	}
}

// TestRDPEREmptyHighPoolFallsBackToLow checks that with Beta > 0 but no
// high-reward experience yet, whole batches come from P_low instead of
// panicking or under-filling — learning must be able to start before the
// first good configuration is found.
func TestRDPEREmptyHighPoolFallsBackToLow(t *testing.T) {
	r := NewRDPER(8, 0, 0.6)
	for i := 0; i < 4; i++ {
		r.Add(mkTr(-1 - float64(i)))
	}
	if r.HighLen() != 0 {
		t.Fatalf("high pool has %d transitions, want 0", r.HighLen())
	}
	rng := rand.New(rand.NewSource(1))
	b := r.Sample(rng, 6)
	if len(b.Transitions) != 6 {
		t.Fatalf("sampled %d transitions, want 6", len(b.Transitions))
	}
	for i, tr := range b.Transitions {
		if tr.Reward >= 0 {
			t.Fatalf("sample %d has reward %g: drawn from the empty high pool?", i, tr.Reward)
		}
	}

	// The symmetric case: an empty low pool sources the batch from P_high.
	r2 := NewRDPER(8, 0, 0.3)
	r2.Add(mkTr(0.5))
	b2 := r2.Sample(rng, 4)
	if len(b2.Transitions) != 4 {
		t.Fatalf("sampled %d transitions, want 4", len(b2.Transitions))
	}
	for i, tr := range b2.Transitions {
		if tr.Reward != 0.5 {
			t.Fatalf("sample %d has reward %g, want 0.5 from the high pool", i, tr.Reward)
		}
	}
}

// TestRDPEREvictionOrder checks that a full pool evicts oldest-first: after
// overflowing a capacity-3 pool with rewards 1..5, exactly {3,4,5} remain.
func TestRDPEREvictionOrder(t *testing.T) {
	r := NewRDPER(3, 0, 0.6)
	for i := 1; i <= 5; i++ {
		r.Add(mkTr(float64(i)))
	}
	if r.HighLen() != 3 {
		t.Fatalf("high pool holds %d transitions, want capacity 3", r.HighLen())
	}
	trs, err := ExportTransitions(r)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[float64]bool, len(trs))
	for _, tr := range trs {
		got[tr.Reward] = true
	}
	for _, want := range []float64{3, 4, 5} {
		if !got[want] {
			t.Fatalf("newest transition with reward %g was evicted; pool holds %v", want, got)
		}
	}
	for _, gone := range []float64{1, 2} {
		if got[gone] {
			t.Fatalf("oldest transition with reward %g survived eviction; pool holds %v", gone, got)
		}
	}
}
