package rl

import (
	"math"
	"math/rand"
	"testing"

	"deepcat/internal/mat"
)

func TestGaussianNoiseMoments(t *testing.T) {
	g := NewGaussianNoise(4, 0.2)
	rng := rand.New(rand.NewSource(1))
	var all []float64
	for i := 0; i < 5000; i++ {
		all = append(all, g.Sample(rng)...)
	}
	if m := mat.Mean(all); math.Abs(m) > 0.01 {
		t.Fatalf("mean = %v", m)
	}
	if s := mat.Stddev(all); math.Abs(s-0.2) > 0.01 {
		t.Fatalf("stddev = %v", s)
	}
}

func TestGaussianNoiseDim(t *testing.T) {
	g := NewGaussianNoise(7, 1)
	if got := len(g.Sample(rand.New(rand.NewSource(2)))); got != 7 {
		t.Fatalf("dim = %d", got)
	}
	g.Reset() // no-op, must not panic
}

func TestGaussianNoiseValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dim 0 did not panic")
		}
	}()
	NewGaussianNoise(0, 1)
}

func TestOUNoiseMeanReversion(t *testing.T) {
	n := NewOUNoise(1, 0) // zero volatility: pure decay towards mu
	n.state[0] = 10
	rng := rand.New(rand.NewSource(3))
	prev := 10.0
	for i := 0; i < 50; i++ {
		v := n.Sample(rng)[0]
		if math.Abs(v) > math.Abs(prev) {
			t.Fatalf("OU process diverged at step %d: %v > %v", i, v, prev)
		}
		prev = v
	}
	if math.Abs(prev) > 1 {
		t.Fatalf("OU did not decay towards mean: %v", prev)
	}
}

func TestOUNoiseTemporalCorrelation(t *testing.T) {
	// Consecutive OU samples should be positively correlated, unlike i.i.d.
	// Gaussian noise.
	n := NewOUNoise(1, 0.3)
	rng := rand.New(rand.NewSource(4))
	var xs, ys []float64
	prev := n.Sample(rng)[0]
	for i := 0; i < 5000; i++ {
		cur := n.Sample(rng)[0]
		xs = append(xs, prev)
		ys = append(ys, cur)
		prev = cur
	}
	mx, my := mat.Mean(xs), mat.Mean(ys)
	var cov, vx, vy float64
	for i := range xs {
		cov += (xs[i] - mx) * (ys[i] - my)
		vx += (xs[i] - mx) * (xs[i] - mx)
		vy += (ys[i] - my) * (ys[i] - my)
	}
	corr := cov / math.Sqrt(vx*vy)
	if corr < 0.5 {
		t.Fatalf("OU autocorrelation = %v, want > 0.5", corr)
	}
}

func TestOUNoiseReset(t *testing.T) {
	n := NewOUNoise(3, 0.5)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10; i++ {
		n.Sample(rng)
	}
	n.Reset()
	for _, v := range n.state {
		if v != 0 {
			t.Fatalf("state after Reset = %v", n.state)
		}
	}
}

func TestNoiseInterfaceCompliance(t *testing.T) {
	var _ Noise = NewGaussianNoise(1, 1)
	var _ Noise = NewOUNoise(1, 1)
}
