package rl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mkTr(reward float64) Transition {
	return Transition{
		State:     []float64{reward},
		Action:    []float64{0.5},
		Reward:    reward,
		NextState: []float64{reward + 1},
	}
}

func TestTransitionClone(t *testing.T) {
	tr := mkTr(1)
	c := tr.Clone()
	c.State[0] = 99
	c.Action[0] = 99
	c.NextState[0] = 99
	if tr.State[0] == 99 || tr.Action[0] == 99 || tr.NextState[0] == 99 {
		t.Fatal("Clone shares storage")
	}
}

func TestUniformReplayAddSample(t *testing.T) {
	u := NewUniformReplay(10)
	for i := 0; i < 5; i++ {
		u.Add(mkTr(float64(i)))
	}
	if u.Len() != 5 {
		t.Fatalf("Len = %d", u.Len())
	}
	b := u.Sample(rand.New(rand.NewSource(1)), 8)
	if b.Len() != 8 {
		t.Fatalf("batch len = %d", b.Len())
	}
	for _, w := range b.Weights {
		if w != 1 {
			t.Fatal("uniform weights must be 1")
		}
	}
}

func TestUniformReplayEviction(t *testing.T) {
	u := NewUniformReplay(3)
	for i := 0; i < 7; i++ {
		u.Add(mkTr(float64(i)))
	}
	if u.Len() != 3 {
		t.Fatalf("Len = %d after overflow", u.Len())
	}
	// All retained rewards must be among the most recent 3 (4, 5, 6).
	seen := map[float64]bool{}
	for _, tr := range u.buf {
		seen[tr.Reward] = true
	}
	for r := range seen {
		if r < 4 {
			t.Fatalf("stale transition with reward %v retained", r)
		}
	}
}

func TestUniformReplayIsolatesCallerSlices(t *testing.T) {
	u := NewUniformReplay(4)
	tr := mkTr(1)
	u.Add(tr)
	tr.State[0] = 42
	b := u.Sample(rand.New(rand.NewSource(2)), 1)
	if b.Transitions[0].State[0] == 42 {
		t.Fatal("buffer aliases caller's slices")
	}
}

func TestUniformReplayEmptyPanics(t *testing.T) {
	u := NewUniformReplay(4)
	defer func() {
		if recover() == nil {
			t.Fatal("empty Sample did not panic")
		}
	}()
	u.Sample(rand.New(rand.NewSource(1)), 1)
}

func TestNewUniformReplayValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 0 did not panic")
		}
	}()
	NewUniformReplay(0)
}

func TestPrioritizedReplaySamplesHighTDMore(t *testing.T) {
	p := NewPrioritizedReplay(100)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		p.Add(mkTr(float64(i)))
	}
	// Give transition 7 a huge TD error, everything else tiny.
	idx := make([]int, 100)
	errs := make([]float64, 100)
	for i := range idx {
		idx[i] = i
		errs[i] = 0.001
	}
	errs[7] = 100
	p.UpdatePriorities(idx, errs)

	counts := 0
	const draws = 2000
	for i := 0; i < draws; i++ {
		b := p.Sample(rng, 1)
		if b.Indices[0] == 7 {
			counts++
		}
	}
	if counts < draws/2 {
		t.Fatalf("high-priority transition sampled only %d/%d times", counts, draws)
	}
}

func TestPrioritizedReplayWeightsNormalized(t *testing.T) {
	p := NewPrioritizedReplay(50)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		p.Add(mkTr(float64(i)))
	}
	b := p.Sample(rng, 16)
	maxW := 0.0
	for _, w := range b.Weights {
		if w <= 0 || w > 1+1e-12 {
			t.Fatalf("weight %v outside (0,1]", w)
		}
		if w > maxW {
			maxW = w
		}
	}
	if math.Abs(maxW-1) > 1e-12 {
		t.Fatalf("max weight = %v, want 1", maxW)
	}
}

func TestPrioritizedReplayUpdateValidation(t *testing.T) {
	p := NewPrioritizedReplay(10)
	p.Add(mkTr(0))
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched UpdatePriorities did not panic")
		}
	}()
	p.UpdatePriorities([]int{0, 1}, []float64{1})
}

func TestPrioritizedReplayIgnoresStaleIndices(t *testing.T) {
	p := NewPrioritizedReplay(10)
	p.Add(mkTr(0))
	// Out-of-range index silently skipped.
	p.UpdatePriorities([]int{5}, []float64{1})
}

func TestPrioritizedReplayEviction(t *testing.T) {
	p := NewPrioritizedReplay(4)
	for i := 0; i < 9; i++ {
		p.Add(mkTr(float64(i)))
	}
	if p.Len() != 4 {
		t.Fatalf("Len = %d", p.Len())
	}
}

func TestRDPERPoolRouting(t *testing.T) {
	r := NewRDPER(100, 0.5, 0.6)
	r.Add(mkTr(0.7)) // high
	r.Add(mkTr(0.5)) // boundary -> high (>=)
	r.Add(mkTr(0.2)) // low
	r.Add(mkTr(-1))  // low
	if r.HighLen() != 2 || r.LowLen() != 2 {
		t.Fatalf("pools = %d/%d, want 2/2", r.HighLen(), r.LowLen())
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestRDPERBatchComposition(t *testing.T) {
	r := NewRDPER(1000, 0.5, 0.6)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		r.Add(mkTr(1)) // high pool
	}
	for i := 0; i < 500; i++ {
		r.Add(mkTr(0)) // low pool
	}
	b := r.Sample(rng, 10)
	if b.Len() != 10 {
		t.Fatalf("batch len %d", b.Len())
	}
	var high int
	for _, tr := range b.Transitions {
		if tr.Reward >= 0.5 {
			high++
		}
	}
	// ceil(0.6*10) = 6 exactly: RDPER guarantees the ratio.
	if high != 6 {
		t.Fatalf("high-reward samples = %d, want 6", high)
	}
}

func TestRDPERFallbackWhenPoolEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	onlyLow := NewRDPER(10, 0.5, 0.6)
	onlyLow.Add(mkTr(0))
	b := onlyLow.Sample(rng, 4)
	if b.Len() != 4 {
		t.Fatalf("batch len %d", b.Len())
	}
	onlyHigh := NewRDPER(10, 0.5, 0.6)
	onlyHigh.Add(mkTr(1))
	b = onlyHigh.Sample(rng, 4)
	if b.Len() != 4 {
		t.Fatalf("batch len %d", b.Len())
	}
}

// TestRDPEREmptySampleReturnsEmptyBatch is the regression test for the old
// behavior of panicking on an empty buffer: Sample must instead return an
// empty batch the caller can check, so a learner racing its first ingest
// degrades to a no-op training pass rather than a crash.
func TestRDPEREmptySampleReturnsEmptyBatch(t *testing.T) {
	r := NewRDPER(10, 0.5, 0.6)
	b := r.Sample(rand.New(rand.NewSource(1)), 4)
	if b.Len() != 0 || len(b.Indices) != 0 || len(b.Weights) != 0 {
		t.Fatalf("empty RDPER Sample = %+v, want empty batch", b)
	}
	// After experience arrives the same buffer samples normally.
	r.Add(Transition{State: []float64{1}, Action: []float64{1}, Reward: 1, NextState: []float64{1}})
	if got := r.Sample(rand.New(rand.NewSource(2)), 4).Len(); got != 4 {
		t.Fatalf("batch len %d after add, want 4", got)
	}
}

// TestRDPERSampleReusesBacking pins the allocation win: consecutive Sample
// calls must refill the same backing arrays instead of allocating fresh
// slices per batch.
func TestRDPERSampleReusesBacking(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r := NewRDPER(100, 0.5, 0.6)
	for i := 0; i < 20; i++ {
		r.Add(mkTr(float64(i % 2)))
	}
	b1 := r.Sample(rng, 8)
	if b1.Len() != 8 {
		t.Fatalf("batch len %d, want 8", b1.Len())
	}
	p1 := &b1.Transitions[0]
	b2 := r.Sample(rng, 8)
	if p1 != &b2.Transitions[0] {
		t.Fatal("Sample reallocated its batch backing")
	}
	allocs := testing.AllocsPerRun(50, func() { r.Sample(rng, 8) })
	if allocs != 0 {
		t.Fatalf("Sample allocates %.1f times per call, want 0", allocs)
	}
}

func TestRDPERBetaValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("beta > 1 did not panic")
		}
	}()
	NewRDPER(10, 0.5, 1.5)
}

func TestRDPERBetaExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, beta := range []float64{0, 1} {
		r := NewRDPER(100, 0.5, beta)
		for i := 0; i < 20; i++ {
			r.Add(mkTr(1))
			r.Add(mkTr(0))
		}
		b := r.Sample(rng, 10)
		var high int
		for _, tr := range b.Transitions {
			if tr.Reward >= 0.5 {
				high++
			}
		}
		want := int(beta * 10)
		if high != want {
			t.Fatalf("beta=%v: high = %d, want %d", beta, high, want)
		}
	}
}

func TestRDPERAccountingProperty(t *testing.T) {
	// Property: for any sequence of rewards, HighLen+LowLen == total added
	// (within per-pool capacity), and every stored transition sits in the
	// pool its reward dictates.
	f := func(rewards []float64) bool {
		r := NewRDPER(10000, 0.3, 0.5)
		var wantHigh, wantLow int
		for _, rew := range rewards {
			r.Add(mkTr(rew))
			if rew >= 0.3 {
				wantHigh++
			} else {
				wantLow++
			}
		}
		return r.HighLen() == wantHigh && r.LowLen() == wantLow
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
