package rl

import (
	"fmt"
	"math"
	"math/rand"
)

// PrioritizedReplay is proportional prioritized experience replay (Schaul et
// al., 2015): each transition's sampling probability is proportional to
// |TD error|^Alpha, with importance-sampling weights annealed by BetaIS.
// The paper attributes this mechanism to the CDBTune baseline, which DeepCAT
// improves on with RDPER.
type PrioritizedReplay struct {
	// Alpha is the priority exponent (0 = uniform, 1 = fully proportional).
	Alpha float64
	// BetaIS is the importance-sampling exponent; 1 fully corrects the
	// sampling bias.
	BetaIS float64
	// EpsPriority is added to every |TD error| so no transition starves.
	EpsPriority float64

	cap     int
	buf     []Transition
	tree    *SumTree
	next    int
	maxPrio float64
}

// NewPrioritizedReplay creates a prioritized buffer with conventional
// hyper-parameters alpha=0.6, betaIS=0.4, eps=1e-3.
func NewPrioritizedReplay(capacity int) *PrioritizedReplay {
	if capacity <= 0 {
		panic(fmt.Sprintf("rl: non-positive replay capacity %d", capacity))
	}
	return &PrioritizedReplay{
		Alpha:       0.6,
		BetaIS:      0.4,
		EpsPriority: 1e-3,
		cap:         capacity,
		buf:         make([]Transition, 0, capacity),
		tree:        NewSumTree(capacity),
		maxPrio:     1,
	}
}

// Add stores a transition with the maximum priority seen so far, the
// standard trick that guarantees each new experience is replayed at least
// once before its priority decays.
func (p *PrioritizedReplay) Add(tr Transition) {
	c := tr.Clone()
	var idx int
	if len(p.buf) < p.cap {
		idx = len(p.buf)
		p.buf = append(p.buf, c)
	} else {
		idx = p.next
		p.buf[idx] = c
		p.next = (p.next + 1) % p.cap
	}
	p.tree.Set(idx, p.maxPrio)
}

// Len returns the number of stored transitions.
func (p *PrioritizedReplay) Len() int { return len(p.buf) }

// Sample draws n transitions proportionally to priority and attaches
// normalized importance-sampling weights.
func (p *PrioritizedReplay) Sample(rng *rand.Rand, n int) Batch {
	if len(p.buf) == 0 {
		panic("rl: Sample from empty PrioritizedReplay")
	}
	b := Batch{
		Transitions: make([]Transition, n),
		Indices:     make([]int, n),
		Weights:     make([]float64, n),
	}
	total := p.tree.Total()
	maxW := 0.0
	for i := 0; i < n; i++ {
		idx := p.tree.SampleProportional(rng)
		// Guard against stale mass on not-yet-filled slots (cannot happen
		// through the public API, but cheap to keep safe).
		if idx >= len(p.buf) {
			idx = rng.Intn(len(p.buf))
		}
		b.Transitions[i] = p.buf[idx]
		b.Indices[i] = idx
		prob := p.tree.Get(idx) / total
		w := math.Pow(float64(len(p.buf))*prob, -p.BetaIS)
		b.Weights[i] = w
		if w > maxW {
			maxW = w
		}
	}
	if maxW > 0 {
		for i := range b.Weights {
			b.Weights[i] /= maxW
		}
	}
	return b
}

// UpdatePriorities refreshes the priorities of previously sampled
// transitions using their new absolute TD errors.
func (p *PrioritizedReplay) UpdatePriorities(indices []int, tdErrs []float64) {
	if len(indices) != len(tdErrs) {
		panic(fmt.Sprintf("rl: UpdatePriorities got %d indices, %d errors", len(indices), len(tdErrs)))
	}
	for i, idx := range indices {
		if idx < 0 || idx >= len(p.buf) {
			continue
		}
		prio := math.Pow(math.Abs(tdErrs[i])+p.EpsPriority, p.Alpha)
		p.tree.Set(idx, prio)
		if prio > p.maxPrio {
			p.maxPrio = prio
		}
	}
}

var _ PrioritySampler = (*PrioritizedReplay)(nil)
