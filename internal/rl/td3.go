package rl

import (
	"fmt"
	"math/rand"

	"deepcat/internal/mat"
	"deepcat/internal/nn"
)

// TD3Config collects the hyper-parameters of a TD3 agent. The zero value is
// not usable; start from DefaultTD3Config.
type TD3Config struct {
	StateDim  int
	ActionDim int
	// Hidden lists the hidden-layer widths shared by actor and critics.
	Hidden []int

	ActorLR  float64
	CriticLR float64
	// Gamma is the discount factor. The tuners in this repo use a small
	// gamma so that Q stays in immediate-reward units, keeping the Twin-Q
	// threshold Q_th (Fig. 12) directly comparable to Eq. (1) rewards.
	Gamma float64
	// Tau is the Polyak soft-update coefficient for the target networks.
	Tau float64
	// PolicyDelay is the number of critic updates per actor/target update
	// (the "delayed" in TD3; canonical value 2).
	PolicyDelay int
	// TargetNoiseStd and TargetNoiseClip parameterize target policy
	// smoothing: a' = clip(actorTarget(s') + clip(eps, ±Clip), 0, 1).
	TargetNoiseStd  float64
	TargetNoiseClip float64
	// MaxGradNorm, when positive, clips gradients by global norm.
	MaxGradNorm float64
}

// DefaultTD3Config returns the configuration used throughout the
// reproduction for a given state/action dimensionality.
func DefaultTD3Config(stateDim, actionDim int) TD3Config {
	return TD3Config{
		StateDim:        stateDim,
		ActionDim:       actionDim,
		Hidden:          []int{128, 128},
		ActorLR:         1e-3,
		CriticLR:        1e-3,
		Gamma:           0.35,
		Tau:             0.005,
		PolicyDelay:     2,
		TargetNoiseStd:  0.05,
		TargetNoiseClip: 0.1,
		MaxGradNorm:     5,
	}
}

func (c TD3Config) validate() error {
	switch {
	case c.StateDim <= 0 || c.ActionDim <= 0:
		return fmt.Errorf("rl: non-positive dimensions state=%d action=%d", c.StateDim, c.ActionDim)
	case len(c.Hidden) == 0:
		return fmt.Errorf("rl: no hidden layers")
	case c.Gamma < 0 || c.Gamma >= 1:
		return fmt.Errorf("rl: gamma %g outside [0,1)", c.Gamma)
	case c.Tau <= 0 || c.Tau > 1:
		return fmt.Errorf("rl: tau %g outside (0,1]", c.Tau)
	case c.PolicyDelay <= 0:
		return fmt.Errorf("rl: policy delay %d <= 0", c.PolicyDelay)
	}
	return nil
}

// actorSizes/criticSizes build layer-size slices for the two network roles.
// The actor maps state -> action in [0,1]^d via a sigmoid output; a critic
// maps concat(state, action) -> scalar Q.
func actorSizes(c TD3Config) ([]int, []nn.Activation) {
	sizes := append([]int{c.StateDim}, c.Hidden...)
	sizes = append(sizes, c.ActionDim)
	acts := make([]nn.Activation, len(sizes)-1)
	for i := range acts {
		acts[i] = nn.ReLU
	}
	acts[len(acts)-1] = nn.Sigmoid
	return sizes, acts
}

func criticSizes(c TD3Config) ([]int, []nn.Activation) {
	sizes := append([]int{c.StateDim + c.ActionDim}, c.Hidden...)
	sizes = append(sizes, 1)
	acts := make([]nn.Activation, len(sizes)-1)
	for i := range acts {
		acts[i] = nn.ReLU
	}
	acts[len(acts)-1] = nn.Linear
	return sizes, acts
}

// TD3 is the Twin Delayed Deep Deterministic policy gradient agent
// (Fujimoto et al., 2018): two critics whose minimum forms the bootstrap
// target, target policy smoothing, and delayed policy updates.
type TD3 struct {
	Cfg TD3Config

	Actor       *nn.MLP
	ActorTarget *nn.MLP
	Critic1     *nn.MLP
	Critic2     *nn.MLP
	Critic1T    *nn.MLP
	Critic2T    *nn.MLP

	actorOpt *nn.Adam
	c1Opt    *nn.Adam
	c2Opt    *nn.Adam

	actorGrads *nn.Grads
	c1Grads    *nn.Grads
	c2Grads    *nn.Grads

	updates int
	saBuf   []float64 // scratch concat(state, action)
}

// NewTD3 constructs an agent with freshly initialized networks.
func NewTD3(rng *rand.Rand, cfg TD3Config) (*TD3, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	aSizes, aActs := actorSizes(cfg)
	cSizes, cActs := criticSizes(cfg)
	t := &TD3{Cfg: cfg}
	t.Actor = nn.NewMLP(rng, aSizes, aActs)
	t.Critic1 = nn.NewMLP(rng, cSizes, cActs)
	t.Critic2 = nn.NewMLP(rng, cSizes, cActs)
	t.ActorTarget = t.Actor.Clone()
	t.Critic1T = t.Critic1.Clone()
	t.Critic2T = t.Critic2.Clone()
	t.actorOpt = nn.NewAdam(t.Actor, cfg.ActorLR)
	t.c1Opt = nn.NewAdam(t.Critic1, cfg.CriticLR)
	t.c2Opt = nn.NewAdam(t.Critic2, cfg.CriticLR)
	t.actorOpt.MaxNorm = cfg.MaxGradNorm
	t.c1Opt.MaxNorm = cfg.MaxGradNorm
	t.c2Opt.MaxNorm = cfg.MaxGradNorm
	t.actorGrads = t.Actor.NewGrads()
	t.c1Grads = t.Critic1.NewGrads()
	t.c2Grads = t.Critic2.NewGrads()
	t.saBuf = make([]float64, cfg.StateDim+cfg.ActionDim)
	return t, nil
}

// Act returns the deterministic policy's action for state, each dimension
// in [0,1].
func (t *TD3) Act(state []float64) []float64 {
	return t.Actor.Forward(state)
}

// ActNoisy returns the policy action perturbed with N(0, sigma²) exploration
// noise and clipped back into [0,1].
func (t *TD3) ActNoisy(rng *rand.Rand, state []float64, sigma float64) []float64 {
	a := t.Act(state)
	for i := range a {
		a[i] = mat.Clip(a[i]+sigma*rng.NormFloat64(), 0, 1)
	}
	return a
}

// QValues evaluates both online critics at (state, action). The Twin-Q
// Optimizer (Algorithm 1) consumes min(q1, q2) as its cost-free quality
// indicator.
func (t *TD3) QValues(state, action []float64) (q1, q2 float64) {
	sa := t.concat(state, action)
	return t.Critic1.Forward(sa)[0], t.Critic2.Forward(sa)[0]
}

// ActTo computes the deterministic policy action for state into dst using
// ar for scratch, allocating nothing once ar is warm. Bit-identical to Act.
func (t *TD3) ActTo(ar *nn.Arena, state, dst []float64) {
	t.Actor.ForwardBatch(ar, state, 1, dst)
}

// QValuesBatch evaluates both online critics at (state, actions[r]) for r in
// [0, k), writing Critic1 outputs to q1 and Critic2 outputs to q2. actions
// is row-major (k x ActionDim). The state columns' partial dot products — the
// state embedding — are computed once per critic and seed every candidate's
// accumulators, and each critic scores the whole batch as one lane-major pass
// (see nn.ForwardBatchPrefix), so the cost per extra candidate is only the
// action-column work. Results are bit-identical to k sequential QValues
// calls; the batched Twin-Q optimizer depends on that.
func (t *TD3) QValuesBatch(ar *nn.Arena, state, actions []float64, k int, q1, q2 []float64) {
	if len(state) != t.Cfg.StateDim {
		panic(fmt.Sprintf("rl: QValuesBatch state dim %d, want %d", len(state), t.Cfg.StateDim))
	}
	if len(actions) < k*t.Cfg.ActionDim {
		panic(fmt.Sprintf("rl: QValuesBatch actions len %d, want %d", len(actions), k*t.Cfg.ActionDim))
	}
	if len(q1) < k || len(q2) < k {
		panic(fmt.Sprintf("rl: QValuesBatch output len %d/%d, want %d", len(q1), len(q2), k))
	}
	t.Critic1.ForwardBatchPrefix(ar, state, actions, k, q1)
	t.Critic2.ForwardBatchPrefix(ar, state, actions, k, q2)
}

// QBatch scores candidate batches against one state with the per-critic
// state embeddings hoisted: SetState computes each critic's state-column
// partial dots once, and every subsequent Score reuses them, so chunked
// searches (the Twin-Q optimizer scores a few chunks per Suggest, all under
// the same state) pay the state work once instead of per chunk. Score is
// bit-identical to QValuesBatch, which is bit-identical to sequential
// QValues calls.
type QBatch struct {
	t      *TD3
	u1, u2 []float64
	xt     []float64 // lane-major candidate batch, packed once per Score
	set    bool
}

// NewQBatch returns a batch scorer bound to t's online critics.
func (t *TD3) NewQBatch() *QBatch {
	return &QBatch{
		t:  t,
		u1: make([]float64, t.Critic1.Layers[0].W.Rows),
		u2: make([]float64, t.Critic2.Layers[0].W.Rows),
	}
}

// Agent returns the agent the scorer is bound to.
func (q *QBatch) Agent() *TD3 { return q.t }

// SetState computes the state embeddings for subsequent Score calls. It must
// be called again after any critic weight update.
func (q *QBatch) SetState(state []float64) {
	if len(state) != q.t.Cfg.StateDim {
		panic(fmt.Sprintf("rl: QBatch state dim %d, want %d", len(state), q.t.Cfg.StateDim))
	}
	q.t.Critic1.Layers[0].W.MulVecColsTo(q.u1, state, 0)
	q.t.Critic2.Layers[0].W.MulVecColsTo(q.u2, state, 0)
	q.set = true
}

// Score evaluates both critics at (state, actions[r]) for r in [0, k) under
// the state fixed by SetState, writing Critic1 outputs to q1 and Critic2
// outputs to q2. actions is row-major (k x ActionDim).
func (q *QBatch) Score(ar *nn.Arena, actions []float64, k int, q1, q2 []float64) {
	if !q.set {
		panic("rl: QBatch.Score before SetState")
	}
	if len(actions) < k*q.t.Cfg.ActionDim {
		panic(fmt.Sprintf("rl: QBatch actions len %d, want %d", len(actions), k*q.t.Cfg.ActionDim))
	}
	if len(q1) < k || len(q2) < k {
		panic(fmt.Sprintf("rl: QBatch output len %d/%d, want %d", len(q1), len(q2), k))
	}
	// Pack the candidate batch lane-major once and run both critics over it.
	kp := (k + 7) &^ 7
	dim := q.t.Cfg.ActionDim
	if len(q.xt) < dim*kp {
		q.xt = make([]float64, dim*kp)
	}
	nn.PackLanes(q.xt, actions, dim, k, kp)
	q.ScoreLanes(ar, q.xt, kp, k, q1, q2)
}

// ScoreLanes is Score on an already lane-major candidate batch: xt holds
// ActionDim columns of kp lanes each (kp a multiple of 8, >= k) with every
// lane finite — nn.PackLanes produces this layout, and callers that generate
// candidates straight into lane-major storage (the Twin-Q walk) skip the
// transpose entirely.
func (q *QBatch) ScoreLanes(ar *nn.Arena, xt []float64, kp, k int, q1, q2 []float64) {
	if !q.set {
		panic("rl: QBatch.ScoreLanes before SetState")
	}
	if len(q1) < k || len(q2) < k {
		panic(fmt.Sprintf("rl: QBatch output len %d/%d, want %d", len(q1), len(q2), k))
	}
	q.t.Critic1.ForwardBatchSeededLanes(ar, q.u1, q.t.Cfg.StateDim, xt, kp, k, q1)
	q.t.Critic2.ForwardBatchSeededLanes(ar, q.u2, q.t.Cfg.StateDim, xt, kp, k, q2)
}

// MinQ returns min(Q1, Q2) at (state, action).
func (t *TD3) MinQ(state, action []float64) float64 {
	q1, q2 := t.QValues(state, action)
	if q2 < q1 {
		return q2
	}
	return q1
}

func (t *TD3) concat(state, action []float64) []float64 {
	if len(state) != t.Cfg.StateDim || len(action) != t.Cfg.ActionDim {
		panic(fmt.Sprintf("rl: concat dims state=%d action=%d, want %d/%d",
			len(state), len(action), t.Cfg.StateDim, t.Cfg.ActionDim))
	}
	copy(t.saBuf, state)
	copy(t.saBuf[t.Cfg.StateDim:], action)
	return t.saBuf
}

// TrainStats summarizes one Train call.
type TrainStats struct {
	CriticLoss float64
	MeanQ      float64
	// TDErrors holds the per-sample |target - Q1| values, ready for
	// PrioritySampler.UpdatePriorities.
	TDErrors []float64
	// ActorUpdated reports whether this step performed the delayed policy
	// and target updates.
	ActorUpdated bool
}

// Train performs one TD3 update from the mini-batch: both critics always,
// actor and targets every PolicyDelay-th call.
func (t *TD3) Train(rng *rand.Rand, batch Batch) TrainStats {
	n := batch.Len()
	if n == 0 {
		panic("rl: Train on empty batch")
	}
	stats := TrainStats{TDErrors: make([]float64, n)}

	// Build bootstrap targets y_i with target policy smoothing and the
	// min of the twin target critics.
	targets := make([]float64, n)
	for i, tr := range batch.Transitions {
		y := tr.Reward
		if !tr.Done {
			aNext := t.ActorTarget.Forward(tr.NextState)
			for j := range aNext {
				eps := mat.Clip(t.Cfg.TargetNoiseStd*rng.NormFloat64(),
					-t.Cfg.TargetNoiseClip, t.Cfg.TargetNoiseClip)
				aNext[j] = mat.Clip(aNext[j]+eps, 0, 1)
			}
			sa := make([]float64, t.Cfg.StateDim+t.Cfg.ActionDim)
			copy(sa, tr.NextState)
			copy(sa[t.Cfg.StateDim:], aNext)
			q1 := t.Critic1T.Forward(sa)[0]
			q2 := t.Critic2T.Forward(sa)[0]
			if q2 < q1 {
				q1 = q2
			}
			y += t.Cfg.Gamma * q1
		}
		targets[i] = y
	}

	// Critic regression towards y with importance weights.
	t.c1Grads.Zero()
	t.c2Grads.Zero()
	var loss, sumQ float64
	for i, tr := range batch.Transitions {
		w := 1.0
		if batch.Weights != nil {
			w = batch.Weights[i]
		}
		sa := make([]float64, t.Cfg.StateDim+t.Cfg.ActionDim)
		copy(sa, tr.State)
		copy(sa[t.Cfg.StateDim:], tr.Action)

		tape1 := t.Critic1.ForwardTape(sa)
		q1 := tape1.Output()[0]
		d1 := q1 - targets[i]
		t.Critic1.Backward(tape1, []float64{w * d1}, t.c1Grads)

		tape2 := t.Critic2.ForwardTape(sa)
		q2 := tape2.Output()[0]
		d2 := q2 - targets[i]
		t.Critic2.Backward(tape2, []float64{w * d2}, t.c2Grads)

		loss += w * 0.5 * (d1*d1 + d2*d2)
		sumQ += q1
		stats.TDErrors[i] = d1
	}
	scale := 1.0 / float64(n)
	t.c1Opt.Step(t.Critic1, t.c1Grads, scale)
	t.c2Opt.Step(t.Critic2, t.c2Grads, scale)
	stats.CriticLoss = loss * scale
	stats.MeanQ = sumQ * scale

	t.updates++
	if t.updates%t.Cfg.PolicyDelay == 0 {
		t.updateActor(batch)
		t.ActorTarget.SoftUpdate(t.Actor, t.Cfg.Tau)
		t.Critic1T.SoftUpdate(t.Critic1, t.Cfg.Tau)
		t.Critic2T.SoftUpdate(t.Critic2, t.Cfg.Tau)
		stats.ActorUpdated = true
	}
	return stats
}

// updateActor performs one deterministic policy gradient ascent step on
// J = E[Q1(s, actor(s))].
func (t *TD3) updateActor(batch Batch) {
	t.actorGrads.Zero()
	for _, tr := range batch.Transitions {
		aTape := t.Actor.ForwardTape(tr.State)
		a := aTape.Output()

		sa := make([]float64, t.Cfg.StateDim+t.Cfg.ActionDim)
		copy(sa, tr.State)
		copy(sa[t.Cfg.StateDim:], a)
		// dQ1/d(sa), then take the action block.
		dSA := t.Critic1.InputGrad(sa, []float64{1})
		dA := dSA[t.Cfg.StateDim:]
		// Gradient ascent on Q => descend on -Q.
		neg := make([]float64, len(dA))
		mat.ScaleTo(neg, -1, dA)
		t.Actor.Backward(aTape, neg, t.actorGrads)
	}
	t.actorOpt.Step(t.Actor, t.actorGrads, 1.0/float64(batch.Len()))
}

// Updates returns the number of Train calls performed.
func (t *TD3) Updates() int { return t.updates }
