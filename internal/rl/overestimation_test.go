package rl

import (
	"math/rand"
	"testing"

	"deepcat/internal/mat"
)

// TestTD3ReducesOverestimation checks the paper's central motivation for
// replacing DDPG with TD3 (§3.2): with noisy rewards, a single critic
// trained by bootstrapping overestimates values, while the min of twin
// critics does not (or much less so).
//
// Setup: the toy one-step environment with substantial reward noise. After
// training, the critics are probed at the *policy's own* actions — where
// maximization bias concentrates — and the estimation bias
// E[Q(s, pi(s)) - E[r(s, pi(s))]] is compared between the two agents.
func TestTD3ReducesOverestimation(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping statistical test in -short mode")
	}
	const noise = 0.5
	trainSteps := 900
	bufferFill := 600

	// Shared noisy experience-generation procedure.
	fill := func(rng *rand.Rand, buf Sampler) {
		for i := 0; i < bufferFill; i++ {
			s := mat.RandVec(rng, 2, 0, 1)
			a := mat.RandVec(rng, 2, 0, 1)
			buf.Add(Transition{
				State:     s,
				Action:    a,
				Reward:    toyReward(s, a) + noise*rng.NormFloat64(),
				NextState: mat.RandVec(rng, 2, 0, 1),
				Done:      rng.Float64() < 0.2, // bootstrapped chains
			})
		}
	}

	biasOf := func(q func(s, a []float64) float64, act func(s []float64) []float64, seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		var bias float64
		const probes = 300
		for i := 0; i < probes; i++ {
			s := mat.RandVec(rng, 2, 0, 1)
			a := act(s)
			bias += q(s, a) - toyReward(s, a)
		}
		return bias / probes
	}

	var td3Bias, ddpgBias float64
	const seeds = 2
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		tcfg := DefaultTD3Config(2, 2)
		tcfg.Hidden = []int{64, 64}
		tcfg.Gamma = 0.9 // long horizon amplifies bootstrapped bias
		td3, err := NewTD3(rng, tcfg)
		if err != nil {
			t.Fatal(err)
		}
		buf := NewUniformReplay(5000)
		fill(rng, buf)
		for i := 0; i < trainSteps; i++ {
			td3.Train(rng, buf.Sample(rng, 32))
		}
		td3Bias += biasOf(td3.MinQ, td3.Act, 900+seed) / seeds

		rng2 := rand.New(rand.NewSource(100 + seed))
		dcfg := DefaultDDPGConfig(2, 2)
		dcfg.Hidden = []int{64, 64}
		dcfg.Gamma = 0.9
		ddpg, err := NewDDPG(rng2, dcfg)
		if err != nil {
			t.Fatal(err)
		}
		buf2 := NewUniformReplay(5000)
		fill(rng2, buf2)
		for i := 0; i < trainSteps; i++ {
			ddpg.Train(rng2, buf2.Sample(rng2, 32))
		}
		ddpgBias += biasOf(ddpg.QValue, ddpg.Act, 900+seed) / seeds
	}

	t.Logf("value bias at policy actions: TD3 %.3f, DDPG %.3f", td3Bias, ddpgBias)
	if td3Bias >= ddpgBias {
		t.Fatalf("TD3 bias %.3f not below DDPG bias %.3f", td3Bias, ddpgBias)
	}
}
