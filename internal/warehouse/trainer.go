package warehouse

import (
	"context"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"deepcat/internal/core"
	"deepcat/internal/rl"
)

// donorEntry pairs a donor's metadata with its in-memory snapshot.
type donorEntry struct {
	meta donorFileMeta
	snap *core.Snapshot
}

// donorFileMeta is DonorMeta; aliased so the on-disk format below reads as
// a unit.
type donorFileMeta = DonorMeta

// donorFile is the on-disk donor format: metadata plus the agent snapshot.
type donorFile struct {
	Meta donorFileMeta
	Snap *core.Snapshot
}

// loop is the background trainer/compactor: every TrainInterval it compacts
// the log once enough sealed segments accumulate and dispatches donor
// trainings for families with enough new experience, bounded by the worker
// pool. It exits when Close signals stopc; Close then waits for in-flight
// trainings.
func (w *Warehouse) loop() {
	defer w.loopWG.Done()
	ticker := time.NewTicker(w.opts.TrainInterval)
	defer ticker.Stop()
	for {
		select {
		case <-w.stopc:
			return
		case <-ticker.C:
		}
		w.mu.Lock()
		if w.log.sealedCount() >= w.opts.CompactAfterSegments {
			if err := w.compactLocked(); err != nil {
				w.trainErrs++
			}
		}
		due := w.dueFamiliesLocked()
		w.mu.Unlock()
		for _, sig := range due {
			select {
			case w.trainSlots <- struct{}{}:
			default:
				// Pool is saturated; the family stays due and the next
				// tick retries, so nothing queues without bound.
				continue
			}
			w.trainWG.Add(1)
			go func(sig string) {
				defer w.trainWG.Done()
				defer func() { <-w.trainSlots }()
				// Label the worker so donor-training CPU shows up in
				// profiles attributed to its workload family.
				pprof.Do(context.Background(), pprof.Labels("deepcat_trainer", "donor", "workload", sig),
					func(context.Context) {
						if _, err := w.TrainFamily(sig); err != nil {
							w.mu.Lock()
							w.trainErrs++
							w.mu.Unlock()
						}
					})
			}(sig)
		}
	}
}

// dueFamiliesLocked returns the families whose donors should be
// (re)trained: big enough, enough new experience, not already training.
// Replicated records shipped from fleet peers count toward both bars, so a
// node that only ever observes remote experience still trains donors.
func (w *Warehouse) dueFamiliesLocked() []string {
	var due []string
	for sig, fam := range w.families {
		remote := len(w.remoteBySig[sig])
		if w.training[sig] || len(fam.recs)+remote < w.opts.MinFamilyRecords {
			continue
		}
		if fam.appended+remote-fam.lastTrained < w.opts.TrainMinNew {
			continue
		}
		due = append(due, sig)
	}
	sort.Strings(due)
	return due
}

// TrainFamily synchronously trains the next donor generation for one
// family: a fresh TD3 agent's replay is seeded with the family's retained
// transitions and trained with TrainIters gradient updates — batch RL over
// the log, no environment interaction, so a donor costs compute but zero
// cluster runs. The result is persisted next to the log (atomic rename) and
// becomes the family's warm-start source. At most one training per family
// runs at a time; concurrent calls fail with ErrTraining.
func (w *Warehouse) TrainFamily(sig string) (DonorMeta, error) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return DonorMeta{}, ErrClosed
	}
	fam, ok := w.families[sig]
	remote := w.remoteRecordsLocked(sig)
	if !ok || len(fam.recs)+len(remote) == 0 {
		w.mu.Unlock()
		return DonorMeta{}, fmt.Errorf("warehouse: %s: %w", sig, ErrUnknownFamily)
	}
	if w.training[sig] {
		w.mu.Unlock()
		return DonorMeta{}, fmt.Errorf("warehouse: %s: %w", sig, ErrTraining)
	}
	w.training[sig] = true
	gen := fam.nextGen
	fam.nextGen++
	appended := fam.appended + len(remote)
	high := fam.high + w.remoteHigh[sig]
	// The local slice header is copied under the lock; appends only ever
	// grow the backing array past len, so the training goroutine's view is
	// stable. The replicated records are concatenated under the lock
	// because a compacted file arriving from a peer may replace them.
	recs := fam.recs
	if len(remote) > 0 {
		recs = make([]Record, 0, len(fam.recs)+len(remote))
		recs = append(append(recs, fam.recs...), remote...)
	}
	w.mu.Unlock()

	start := time.Now()
	meta, entry, err := w.trainDonor(sig, gen, recs, high)
	if err == nil {
		w.met.trainingsOK.Inc()
		w.met.trainingDur.ObserveSince(start)
		w.logg.Info("donor trained", "signature", sig, "generation", gen,
			"records", meta.Records, "iters", meta.Iters, "dur", time.Since(start))
	} else {
		w.met.trainingsErr.Inc()
		w.logg.Warn("donor training failed", "signature", sig, "generation", gen, "err", err)
	}

	w.mu.Lock()
	delete(w.training, sig)
	if err == nil {
		fam.lastTrained = appended
		fam.donors = append(fam.donors, entry)
		for len(fam.donors) > w.opts.DonorKeep {
			old := fam.donors[0]
			fam.donors = fam.donors[1:]
			os.Remove(w.donorPath(sig, old.meta.Generation))
		}
	}
	w.mu.Unlock()
	return meta, err
}

// trainDonor does the actual (lock-free) training and persistence.
func (w *Warehouse) trainDonor(sig string, gen int, recs []Record, high int) (DonorMeta, *donorEntry, error) {
	// Belt-and-braces: ingest already quarantines non-finite records, but a
	// donor trained on even one NaN is worthless, so filter again here.
	trs := make([]rl.Transition, 0, len(recs))
	for _, rec := range recs {
		if finiteRecord(rec) {
			trs = append(trs, rec.Transition)
		}
	}
	if len(trs) == 0 {
		return DonorMeta{}, nil, fmt.Errorf("warehouse: donor %s g%d: no finite transitions", sig, gen)
	}
	stateDim, actionDim := len(trs[0].State), len(trs[0].Action)
	cfg := core.DefaultConfig(stateDim, actionDim)
	cfg.RewardThreshold = w.opts.RewardThreshold
	tuner, err := core.New(rand.New(rand.NewSource(donorSeed(w.opts.Seed, sig, gen))), cfg)
	if err != nil {
		return DonorMeta{}, nil, fmt.Errorf("warehouse: donor %s g%d: %w", sig, gen, err)
	}
	tuner.SeedReplay(trs)
	iters := tuner.TrainFromReplay(w.opts.TrainIters)
	// Clone drops the replay buffer, so the persisted snapshot carries only
	// the learned networks — the warm-start path refills replay from the
	// log itself.
	snap, err := tuner.Clone().Snapshot()
	if err != nil {
		return DonorMeta{}, nil, fmt.Errorf("warehouse: donor %s g%d: %w", sig, gen, err)
	}
	meta := DonorMeta{
		Signature:  sig,
		Generation: gen,
		Records:    len(trs),
		HighReward: high,
		Iters:      iters,
		TrainedAt:  time.Now().UTC(),
	}
	if err := w.saveDonor(meta, snap); err != nil {
		return DonorMeta{}, nil, err
	}
	return meta, &donorEntry{meta: meta, snap: snap}, nil
}

// donorSeed derives a deterministic per-(family, generation) seed.
func donorSeed(base int64, sig string, gen int) int64 {
	h := fnv.New64a()
	h.Write([]byte(sig))
	return base ^ int64(h.Sum64()&0x7fffffffffff) ^ int64(gen)<<48
}

// saveDonor writes the donor file atomically (temp + fsync + rename).
func (w *Warehouse) saveDonor(meta DonorMeta, snap *core.Snapshot) error {
	tmp, err := os.CreateTemp(w.opts.Dir, "donor-*.tmp")
	if err != nil {
		return fmt.Errorf("warehouse: save donor: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := gob.NewEncoder(tmp).Encode(donorFile{Meta: meta, Snap: snap}); err != nil {
		tmp.Close()
		return fmt.Errorf("warehouse: save donor: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("warehouse: save donor: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("warehouse: save donor: %w", err)
	}
	if err := os.Rename(tmp.Name(), w.donorPath(meta.Signature, meta.Generation)); err != nil {
		return fmt.Errorf("warehouse: save donor: %w", err)
	}
	return nil
}

// loadDonors scans the directory for persisted donors and attaches them to
// their families (creating a family entry when the log was compacted away
// but the donor survived). Unreadable donor files are skipped.
func (w *Warehouse) loadDonors() error {
	entries, err := os.ReadDir(w.opts.Dir)
	if err != nil {
		return fmt.Errorf("warehouse: scan donors: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "donor-") || !strings.HasSuffix(name, ".snap") {
			continue
		}
		f, err := os.Open(filepath.Join(w.opts.Dir, name))
		if err != nil {
			continue
		}
		var df donorFile
		decErr := gob.NewDecoder(f).Decode(&df)
		f.Close()
		if decErr != nil || df.Snap == nil || df.Meta.Signature == "" {
			continue
		}
		fam := w.families[df.Meta.Signature]
		if fam == nil {
			fam = &family{sig: df.Meta.Signature, nextGen: 1}
			w.families[df.Meta.Signature] = fam
		}
		fam.donors = append(fam.donors, &donorEntry{meta: df.Meta, snap: df.Snap})
		if df.Meta.Generation >= fam.nextGen {
			fam.nextGen = df.Meta.Generation + 1
		}
	}
	for _, fam := range w.families {
		sort.Slice(fam.donors, func(i, j int) bool {
			return fam.donors[i].meta.Generation < fam.donors[j].meta.Generation
		})
	}
	return nil
}

// WarmStart is what a new session receives from the warehouse: the best
// donor's snapshot (networks only) and the family's retained high-reward
// transitions to pre-fill the session's replay pools.
type WarmStart struct {
	Donor DonorMeta
	// Snap carries the donor agent; callers must treat it as read-only
	// (core's restore paths copy out of it).
	Snap *core.Snapshot
	// Seeds are transitions with reward >= the threshold passed to
	// WarmStart, newest-first capped at the requested maximum, returned
	// oldest-first so replay insertion order matches arrival order.
	Seeds []rl.Transition
}

// WarmStart returns warm-start material for a signature: the latest donor
// (trained on the most experience) plus up to maxSeeds high-reward
// (reward >= rth) retained transitions. ok is false when the family is
// unknown or has no donor yet — callers fall back to a cold start.
func (w *Warehouse) WarmStart(sig string, rth float64, maxSeeds int) (WarmStart, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	fam, ok := w.families[sig]
	if !ok || len(fam.donors) == 0 {
		return WarmStart{}, false
	}
	best := fam.donors[len(fam.donors)-1]
	ws := WarmStart{Donor: best.meta, Snap: best.snap}
	if maxSeeds > 0 {
		for i := len(fam.recs) - 1; i >= 0 && len(ws.Seeds) < maxSeeds; i-- {
			if tr := fam.recs[i].Transition; tr.Reward >= rth {
				ws.Seeds = append(ws.Seeds, tr.Clone())
			}
		}
		// Replicated experience from fleet peers fills whatever local
		// records left of the cap.
		rs := w.remoteBySig[sig]
		for i := len(rs) - 1; i >= 0 && len(ws.Seeds) < maxSeeds; i-- {
			if tr := rs[i].Transition; tr.Reward >= rth {
				ws.Seeds = append(ws.Seeds, tr.Clone())
			}
		}
		// Reverse back to arrival order.
		for i, j := 0, len(ws.Seeds)-1; i < j; i, j = i+1, j-1 {
			ws.Seeds[i], ws.Seeds[j] = ws.Seeds[j], ws.Seeds[i]
		}
	}
	return ws, true
}

// parseDonorGen is used only in tests; it extracts the generation from a
// donor file name, returning 0 when the name does not parse.
func parseDonorGen(name string) int {
	if !strings.HasPrefix(name, "donor-") || !strings.HasSuffix(name, ".snap") {
		return 0
	}
	base := strings.TrimSuffix(name, ".snap")
	i := strings.LastIndex(base, "-g")
	if i < 0 {
		return 0
	}
	n, err := strconv.Atoi(base[i+2:])
	if err != nil {
		return 0
	}
	return n
}
