package warehouse

import (
	"os"
	"testing"
)

// shipAll pulls every shippable file from src into dst under the given
// source name, returning how many records landed and how many files were
// newly applied.
func shipAll(t *testing.T, dst, src *Warehouse, source string) (records, applied int) {
	t.Helper()
	infos, err := src.Segments()
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range infos {
		if dst.HasRemoteSegment(source, info.Name) {
			continue
		}
		path, err := src.SegmentPath(info.Name)
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		n, fresh, err := dst.IngestRemoteSegment(source, info.Name, data)
		if err != nil {
			t.Fatal(err)
		}
		records += n
		if fresh {
			applied++
		}
	}
	return records, applied
}

func TestSegmentShippingIdempotent(t *testing.T) {
	src := mustOpen(t, testOptions(t))
	defer src.Close()
	dst := mustOpen(t, testOptions(t))
	defer dst.Close()

	recs := makeRecords("a.TS.1", 30, 3)
	if err := src.AppendBatch(recs); err != nil {
		t.Fatal(err)
	}
	if err := src.Seal(); err != nil {
		t.Fatal(err)
	}

	n, applied := shipAll(t, dst, src, "node-a")
	if n != 30 || applied == 0 {
		t.Fatalf("first ship = (%d records, %d files), want all 30 records", n, applied)
	}
	// Re-shipping the identical files must change nothing.
	n2, applied2 := shipAll(t, dst, src, "node-a")
	if n2 != 0 || applied2 != 0 {
		t.Fatalf("re-ship = (%d records, %d files), want (0, 0)", n2, applied2)
	}
	st := dst.Stats()
	if st.Remote.Records != 30 || st.Remote.Sources != 1 {
		t.Fatalf("remote stats = %+v, want 30 records from 1 source", st.Remote)
	}
	// Replicated records count toward the family but never into the local
	// record total — they are someone else's experience.
	if st.Records != 0 {
		t.Fatalf("local records = %d after shipping, want 0 (no echo into the local log)", st.Records)
	}

	// The replica must not be re-shippable from dst: only local log files
	// are served, so experience cannot echo between nodes.
	infos, err := dst.Segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 0 {
		t.Fatalf("dst offers %d segments for shipping, want 0", len(infos))
	}

	// The replica index is memory-only: a restart re-pulls.
	if err := dst.Close(); err != nil {
		t.Fatal(err)
	}
	reopened := mustOpen(t, Options{Dir: dst.opts.Dir, SegmentMaxBytes: 2048,
		TrainIters: 16, MinFamilyRecords: 4, TrainMinNew: 1})
	defer reopened.Close()
	if st := reopened.Stats(); st.Remote.Records != 0 {
		t.Fatalf("remote records survived restart: %+v", st.Remote)
	}
	n3, _ := shipAll(t, reopened, src, "node-a")
	if n3 != 30 {
		t.Fatalf("re-pull after restart = %d records, want 30", n3)
	}
}

func TestCompactedSegmentReplacesShipped(t *testing.T) {
	src := mustOpen(t, testOptions(t))
	defer src.Close()
	dst := mustOpen(t, testOptions(t))
	defer dst.Close()

	if err := src.AppendBatch(makeRecords("a.TS.1", 24, 4)); err != nil {
		t.Fatal(err)
	}
	if err := src.Seal(); err != nil {
		t.Fatal(err)
	}
	if n, _ := shipAll(t, dst, src, "node-a"); n != 24 {
		t.Fatalf("shipped %d records, want 24", n)
	}

	// The source compacts: its sealed segments collapse into one cmp file.
	// Shipping that file must replace the already-applied segments, not add
	// to them.
	if err := src.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Segments(); err != nil {
		t.Fatal(err)
	}
	shipAll(t, dst, src, "node-a")
	if st := dst.Stats(); st.Remote.Records != 24 {
		t.Fatalf("remote records after cmp replacement = %d, want 24 (no double count)", st.Remote.Records)
	}
}

func TestRemoteRecordsFeedTraining(t *testing.T) {
	src := mustOpen(t, testOptions(t))
	defer src.Close()
	dst := mustOpen(t, testOptions(t))
	defer dst.Close()

	if err := src.AppendBatch(makeRecords("a.TS.1", 40, 5)); err != nil {
		t.Fatal(err)
	}
	if err := src.Seal(); err != nil {
		t.Fatal(err)
	}
	if n, _ := shipAll(t, dst, src, "node-a"); n != 40 {
		t.Fatalf("shipped %d records, want 40", n)
	}

	// dst has zero local experience for the family, yet the replicated
	// records alone must be enough to distill a donor.
	meta, err := dst.TrainFamily("a.TS.1")
	if err != nil {
		t.Fatal(err)
	}
	if meta.Records != 40 {
		t.Fatalf("donor trained on %d records, want 40 replicated ones", meta.Records)
	}
	donors, err := dst.Donors("a.TS.1")
	if err != nil || len(donors) == 0 {
		t.Fatalf("no donor listed after remote-only training: %v", err)
	}
}

func TestIngestRemoteSegmentQuarantinesAndValidates(t *testing.T) {
	dst := mustOpen(t, testOptions(t))
	defer dst.Close()

	if _, _, err := dst.IngestRemoteSegment("", "seg-00000001.wal", nil); err == nil {
		t.Fatal("ingest without source succeeded")
	}
	if _, _, err := dst.IngestRemoteSegment("node-a", "../evil", nil); err == nil {
		t.Fatal("ingest with a non-segment name succeeded")
	}
	if _, err := dst.SegmentPath("../../etc/passwd"); err == nil {
		t.Fatal("SegmentPath resolved a traversal name")
	}

	// Corrupt bytes are dropped, not fatal: a garbage body applies as an
	// empty file and stays applied (idempotency covers junk too).
	n, applied, err := dst.IngestRemoteSegment("node-a", "seg-00000001.wal", []byte("not a wal"))
	if err != nil || n != 0 || !applied {
		t.Fatalf("garbage ingest = (%d, %v, %v), want (0, true, nil)", n, applied, err)
	}
	if !dst.HasRemoteSegment("node-a", "seg-00000001.wal") {
		t.Fatal("garbage file not remembered as applied")
	}
}
