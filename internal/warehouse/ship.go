package warehouse

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// This file is the warehouse half of fleet segment shipping. Each node
// exposes its immutable log files (sealed segments plus the newest
// compacted file) for peers to pull, and ingests files pulled from peers
// into a per-source replica index kept beside — never inside — the local
// log. Replicated records feed donor training and warm-starting exactly
// like local ones, but they are not re-shipped (only local log files are
// served) and not re-persisted (a restart simply re-pulls, which the
// idempotent apply makes safe), so experience never echoes between nodes.

// SegmentInfo describes one shippable log file.
type SegmentInfo struct {
	Name string `json:"name"`
	Size int64  `json:"size"`
}

// remoteSource is the replica index for one peer: which immutable files
// have been applied and the records each contributed. File contents never
// change after sealing, so idempotency is simply "skip names already
// applied"; a compacted file replaces the segments (and older compaction)
// it covers.
type remoteSource struct {
	segs   map[string][]Record // applied file name -> its finite records
	cmpIdx int                 // coverage of the newest applied cmp file
	seen   int                 // monotonic count of records ever applied
}

// Seal rotates the active log segment if it holds any data, so its
// contents become immutable and visible to Segments. The fleet shipper
// calls it periodically; without sealing, a quiet node's tail experience
// would never replicate.
func (w *Warehouse) Seal() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	return w.log.seal()
}

// Segments lists the log's immutable, shippable files with their current
// sizes. Files racing a concurrent compaction may be missing from disk by
// the time a peer fetches them; the fetch then fails cleanly and the next
// sync pass picks up the compacted file instead.
func (w *Warehouse) Segments() ([]SegmentInfo, error) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil, ErrClosed
	}
	names := w.log.shippable()
	dir := w.opts.Dir
	w.mu.Unlock()
	infos := make([]SegmentInfo, 0, len(names))
	for _, name := range names {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			continue // compacted away between listing and stat
		}
		infos = append(infos, SegmentInfo{Name: name, Size: fi.Size()})
	}
	return infos, nil
}

// SegmentPath validates a shippable file name and returns its path for
// serving. Only seg-/cmp-named files resolve, so the HTTP layer can never
// be walked into donor snapshots or anything outside the log.
func (w *Warehouse) SegmentPath(name string) (string, error) {
	if _, _, ok := parseLogName(name); !ok || name != filepath.Base(name) {
		return "", fmt.Errorf("warehouse: %q is not a log segment", name)
	}
	return filepath.Join(w.opts.Dir, name), nil
}

// HasRemoteSegment reports whether the named file from source has already
// been applied (directly, or via a compacted file covering it), so the
// shipper can skip the fetch entirely.
func (w *Warehouse) HasRemoteSegment(source, name string) bool {
	idx, _, ok := parseLogName(name)
	if !ok {
		return false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	src := w.remote[source]
	if src == nil {
		return false
	}
	if _, done := src.segs[name]; done {
		return true
	}
	return idx <= src.cmpIdx
}

// IngestRemoteSegment applies one immutable log file pulled from a peer:
// frames are CRC-validated, records decoded, non-finite transitions
// quarantined, and the survivors indexed under the source's replica set.
// The apply is idempotent by (source, file name) — re-shipping a segment
// changes nothing — and a compacted file atomically replaces the segments
// it covers, so a source compacting between pulls never double-counts.
// It returns how many records the file contributed and whether it was
// newly applied.
func (w *Warehouse) IngestRemoteSegment(source, name string, data []byte) (int, bool, error) {
	if source == "" {
		return 0, false, fmt.Errorf("warehouse: remote segment without source")
	}
	idx, compacted, ok := parseLogName(name)
	if !ok {
		return 0, false, fmt.Errorf("warehouse: %q is not a log segment", name)
	}
	// Decode outside the lock; a multi-megabyte segment should not stall
	// ingest from live sessions.
	payloads, _, dropped := parseFrames(data)
	var recs []Record
	var quarantined int
	for _, payload := range payloads {
		rec, err := decodeRecord(payload)
		if err != nil || validateRecord(rec) != nil || !finiteRecord(rec) {
			quarantined++
			continue
		}
		rec.Transition = rec.Transition.Clone()
		recs = append(recs, rec)
	}

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, false, ErrClosed
	}
	src := w.remote[source]
	if src == nil {
		src = &remoteSource{segs: make(map[string][]Record)}
		w.remote[source] = src
	}
	if _, done := src.segs[name]; done || idx <= src.cmpIdx {
		return 0, false, nil // already applied, directly or via compaction
	}
	if compacted {
		// The compacted file supersedes every segment (and older cmp) with
		// index <= idx: drop their records before applying, so the replica
		// set matches the source's own post-compaction log.
		for applied, old := range src.segs {
			oldIdx, _, ok := parseLogName(applied)
			if !ok || oldIdx > idx {
				continue
			}
			w.unindexRemoteLocked(old)
			delete(src.segs, applied)
		}
		src.cmpIdx = idx
	}
	if quarantined > 0 {
		w.quarantined += quarantined
		w.met.quarantined.Add(uint64(quarantined))
		w.logg.Warn("remote records quarantined", "source", source, "segment", name,
			"records", quarantined)
	}
	if dropped > 0 {
		w.logg.Warn("remote segment carried corrupt bytes", "source", source,
			"segment", name, "dropped_bytes", dropped)
	}
	kept := recs[:0]
	for _, rec := range recs {
		if !w.remoteDimsOKLocked(rec) {
			w.quarantined++
			w.met.quarantined.Inc()
			w.logg.Warn("remote record quarantined", "source", source, "segment", name,
				"signature", rec.Signature, "reason", "dimension mismatch")
			continue
		}
		kept = append(kept, rec)
	}
	src.segs[name] = kept
	src.seen += len(kept)
	w.indexRemoteLocked(kept)
	return len(kept), true, nil
}

// remoteDimsOKLocked rejects a replicated record whose state/action shape
// contradicts what the family already holds — the same guard AppendBatch
// applies to local ingest.
func (w *Warehouse) remoteDimsOKLocked(rec Record) bool {
	fam := w.families[rec.Signature]
	if fam != nil && len(fam.recs) > 0 {
		prev := fam.recs[len(fam.recs)-1].Transition
		return len(prev.State) == len(rec.Transition.State) &&
			len(prev.Action) == len(rec.Transition.Action)
	}
	if rs := w.remoteBySig[rec.Signature]; len(rs) > 0 {
		prev := rs[0].Transition
		return len(prev.State) == len(rec.Transition.State) &&
			len(prev.Action) == len(rec.Transition.Action)
	}
	return true
}

// indexRemoteLocked adds applied records to the per-signature replica
// index, creating family entries for signatures this node has never seen
// locally so they become eligible for donor training.
func (w *Warehouse) indexRemoteLocked(recs []Record) {
	for i := range recs {
		rec := recs[i]
		w.remoteBySig[rec.Signature] = append(w.remoteBySig[rec.Signature], rec)
		if rec.Transition.Reward >= w.opts.RewardThreshold {
			w.remoteHigh[rec.Signature]++
		}
		if w.families[rec.Signature] == nil {
			w.families[rec.Signature] = &family{sig: rec.Signature, nextGen: 1}
		}
	}
}

// unindexRemoteLocked removes a replaced file's records from the
// per-signature index (compaction replacement path).
func (w *Warehouse) unindexRemoteLocked(recs []Record) {
	for i := range recs {
		rec := recs[i]
		rs := w.remoteBySig[rec.Signature]
		for j := range rs {
			if sameRecord(rs[j], rec) {
				rs = append(rs[:j], rs[j+1:]...)
				break
			}
		}
		if len(rs) == 0 {
			delete(w.remoteBySig, rec.Signature)
		} else {
			w.remoteBySig[rec.Signature] = rs
		}
		if rec.Transition.Reward >= w.opts.RewardThreshold {
			w.remoteHigh[rec.Signature]--
		}
	}
}

// sameRecord reports whether two records are the same logged experience;
// pointer identity on the cloned state slice is exact because every
// applied record's slices are cloned once at ingest and never copied.
func sameRecord(a, b Record) bool {
	return len(a.Transition.State) > 0 && len(b.Transition.State) > 0 &&
		&a.Transition.State[0] == &b.Transition.State[0]
}

// remoteRecordsLocked returns the replicated records of one signature in a
// deterministic order (sources sorted by name; within a source, the stable
// apply order).
func (w *Warehouse) remoteRecordsLocked(sig string) []Record {
	rs := w.remoteBySig[sig]
	if len(rs) == 0 {
		return nil
	}
	return rs
}

// remoteSeenLocked returns the monotonic count of records ever applied
// from peers; dueFamiliesLocked folds it into the retraining trigger.
func (w *Warehouse) remoteSeenLocked() int {
	total := 0
	for _, src := range w.remote {
		total += src.seen
	}
	return total
}

// RemoteStats summarizes the replica index for Stats.
type RemoteStats struct {
	// Sources is the number of peers that have shipped at least one
	// segment; Segments and Records count what they contributed.
	Sources  int `json:"sources"`
	Segments int `json:"segments"`
	Records  int `json:"records"`
}

func (w *Warehouse) remoteStatsLocked() RemoteStats {
	var st RemoteStats
	for _, src := range w.remote {
		st.Sources++
		st.Segments += len(src.segs)
		for _, recs := range src.segs {
			st.Records += len(recs)
		}
	}
	return st
}

// RemoteSources lists the peer identifiers that have shipped segments,
// sorted; tests use it to assert replication reached a node.
func (w *Warehouse) RemoteSources() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]string, 0, len(w.remote))
	for s := range w.remote {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
