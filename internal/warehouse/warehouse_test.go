package warehouse

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"deepcat/internal/rl"
)

// testOptions returns small, trainer-disabled options over a temp dir.
func testOptions(t *testing.T) Options {
	t.Helper()
	return Options{
		Dir:              t.TempDir(),
		SegmentMaxBytes:  2048, // a handful of records per segment
		TrainIters:       16,
		MinFamilyRecords: 4,
		TrainMinNew:      1,
	}
}

// makeRecords builds deterministic synthetic experience for one family.
// Rewards alternate around zero so both RDPER pools get members.
func makeRecords(sig string, n int, seed int64) []Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]Record, n)
	for i := range recs {
		state := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		action := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		next := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		recs[i] = Record{
			Signature: sig,
			Session:   "s-test",
			Transition: rl.Transition{
				State:     state,
				Action:    action,
				Reward:    float64(i%5)/4 - 0.5, // -0.5 .. +0.5
				NextState: next,
				Done:      i%5 == 4,
			},
		}
	}
	return recs
}

func mustOpen(t *testing.T, opts Options) *Warehouse {
	t.Helper()
	w, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	opts := testOptions(t)
	w := mustOpen(t, opts)
	recs := makeRecords("a.TS.1", 40, 1)
	if err := w.AppendBatch(recs[:25]); err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs[25:] {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	st := w.Stats()
	if st.Records != 40 || len(st.Families) != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if got := st.Families[0]; got.Signature != "a.TS.1" || got.HighReward != 24 {
		// rewards 0, +0.25, +0.5 are >= 0: 3 of every 5.
		t.Fatalf("family stats = %+v", got)
	}
	if st.Segments < 2 {
		t.Fatalf("want rotation across >= 2 segments, got %d", st.Segments)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Clean reopen recovers everything in order.
	w2 := mustOpen(t, opts)
	defer w2.Close()
	st2 := w2.Stats()
	if st2.Records != 40 || st2.RecoveredRecords != 40 || st2.TruncatedBytes != 0 {
		t.Fatalf("recovered stats = %+v", st2)
	}
	fam := w2.families["a.TS.1"]
	for i, rec := range fam.recs {
		if rec.Transition.Reward != recs[i].Transition.Reward || rec.Session != "s-test" {
			t.Fatalf("record %d changed across recovery: %+v", i, rec)
		}
	}
}

// TestKillNineRecovery is the crash acceptance test: the warehouse is
// abandoned without Close (as kill -9 would), the active segment gets a
// torn tail record (half-written frame) as an interrupted append would
// leave, and a reopen must recover all committed records, truncate the torn
// tail, and train a donor from the recovered data.
func TestKillNineRecovery(t *testing.T) {
	opts := testOptions(t)
	w := mustOpen(t, opts)
	if err := w.AppendBatch(makeRecords("a.TS.1", 30, 2)); err != nil {
		t.Fatal(err)
	}
	// Abandon w without Close: the OS keeps everything already written.
	activePath := filepath.Join(opts.Dir, segmentName(w.log.activeIdx))

	// Simulate the torn tail of an append interrupted by the crash: a full
	// header promising more payload than follows.
	payload, err := encodeRecord(makeRecords("a.TS.1", 1, 3)[0])
	if err != nil {
		t.Fatal(err)
	}
	var hdr [frameHeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	f, err := os.OpenFile(activePath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(hdr[:], payload[:len(payload)/2]...)
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()
	preSize := fileSize(t, activePath)

	w2 := mustOpen(t, opts)
	st := w2.Stats()
	if st.Records != 30 || st.RecoveredRecords != 30 {
		t.Fatalf("recovered %d records, want 30 (%+v)", st.Records, st)
	}
	if st.TruncatedBytes != int64(len(torn)) {
		t.Fatalf("truncated %d bytes, want %d", st.TruncatedBytes, len(torn))
	}
	if got := fileSize(t, activePath); got != preSize-int64(len(torn)) {
		t.Fatalf("active segment is %d bytes after truncation, want %d", got, preSize-int64(len(torn)))
	}

	// The trainer resumes from the recovered data and new appends land on a
	// clean frame boundary.
	meta, err := w2.TrainFamily("a.TS.1")
	if err != nil {
		t.Fatal(err)
	}
	if meta.Records != 30 || meta.Iters != 16 || meta.Generation != 1 {
		t.Fatalf("donor meta = %+v", meta)
	}
	if err := w2.Append(makeRecords("a.TS.1", 1, 4)[0]); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	w3 := mustOpen(t, opts)
	defer w3.Close()
	if st := w3.Stats(); st.Records != 31 {
		t.Fatalf("after truncation + append, recovered %d records, want 31", st.Records)
	}
}

// TestCRCCorruptionDetected flips one payload byte of the tail record and
// expects recovery to drop exactly that record.
func TestCRCCorruptionDetected(t *testing.T) {
	opts := testOptions(t)
	opts.SegmentMaxBytes = 1 << 20 // keep every record in one segment
	w := mustOpen(t, opts)
	if err := w.AppendBatch(makeRecords("a.WC.2", 10, 5)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(opts.Dir, segmentName(w.log.activeIdx))
	// Abandon without Close, then flip a byte inside the last record's
	// payload.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	w2 := mustOpen(t, opts)
	defer w2.Close()
	st := w2.Stats()
	if st.Records != 9 {
		t.Fatalf("recovered %d records after CRC corruption, want 9", st.Records)
	}
	if st.TruncatedBytes == 0 {
		t.Fatalf("corrupted tail record was not truncated: %+v", st)
	}
}

func TestCompactionRetainsNewestPerFamily(t *testing.T) {
	opts := testOptions(t)
	opts.RetainPerFamily = 12
	w := mustOpen(t, opts)
	if err := w.AppendBatch(makeRecords("a.TS.1", 40, 6)); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendBatch(makeRecords("a.KM.3", 5, 7)); err != nil {
		t.Fatal(err)
	}
	before := w.Stats()
	if before.Families[1].Records != 12 {
		t.Fatalf("retention did not trim in memory: %+v", before.Families)
	}
	if err := w.Compact(); err != nil {
		t.Fatal(err)
	}
	after := w.Stats()
	if after.LogBytes >= before.LogBytes {
		t.Fatalf("compaction grew the log: %d -> %d bytes", before.LogBytes, after.LogBytes)
	}
	names := logFiles(t, opts.Dir)
	var cmp int
	for _, n := range names {
		if strings.HasPrefix(n, "cmp-") {
			cmp++
		}
	}
	if cmp != 1 {
		t.Fatalf("want exactly one compacted file, got %v", names)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery from the compacted log sees only the retained records, with
	// the newest kept.
	w2 := mustOpen(t, opts)
	defer w2.Close()
	fam := w2.families["a.TS.1"]
	if len(fam.recs) != 12 {
		t.Fatalf("recovered %d TS records, want 12", len(fam.recs))
	}
	want := makeRecords("a.TS.1", 40, 6)[28:]
	for i, rec := range fam.recs {
		if rec.Transition.Reward != want[i].Transition.Reward {
			t.Fatalf("compaction kept wrong records at %d", i)
		}
	}
	if got := len(w2.families["a.KM.3"].recs); got != 5 {
		t.Fatalf("recovered %d KM records, want 5", got)
	}
}

func TestTrainFamilyDonorLifecycle(t *testing.T) {
	opts := testOptions(t)
	opts.DonorKeep = 2
	w := mustOpen(t, opts)
	if _, err := w.TrainFamily("a.TS.1"); !errors.Is(err, ErrUnknownFamily) {
		t.Fatalf("training an unknown family = %v, want ErrUnknownFamily", err)
	}
	if err := w.AppendBatch(makeRecords("a.TS.1", 20, 8)); err != nil {
		t.Fatal(err)
	}
	var gens []int
	for g := 1; g <= 3; g++ {
		meta, err := w.TrainFamily("a.TS.1")
		if err != nil {
			t.Fatal(err)
		}
		if meta.Generation != g {
			t.Fatalf("generation %d, want %d", meta.Generation, g)
		}
		gens = append(gens, meta.Generation)
	}
	donors, err := w.Donors("a.TS.1")
	if err != nil {
		t.Fatal(err)
	}
	if len(donors) != 2 || donors[0].Generation != 2 || donors[1].Generation != 3 {
		t.Fatalf("DonorKeep=2 kept %+v, want generations 2 and 3", donors)
	}
	// Pruned generations are gone from disk too.
	var onDisk []int
	entries, _ := os.ReadDir(opts.Dir)
	for _, e := range entries {
		if g := parseDonorGen(e.Name()); g > 0 {
			onDisk = append(onDisk, g)
		}
	}
	sort.Ints(onDisk)
	if len(onDisk) != 2 || onDisk[0] != 2 || onDisk[1] != 3 {
		t.Fatalf("donor files on disk: %v, want [2 3] (train order %v)", onDisk, gens)
	}

	ws, ok := w.WarmStart("a.TS.1", 0, 8)
	if !ok {
		t.Fatal("WarmStart found no donor")
	}
	if ws.Donor.Generation != 3 || ws.Snap == nil {
		t.Fatalf("warm start donor = %+v", ws.Donor)
	}
	if len(ws.Seeds) != 8 {
		t.Fatalf("warm start returned %d seeds, want 8", len(ws.Seeds))
	}
	for _, tr := range ws.Seeds {
		if tr.Reward < 0 {
			t.Fatalf("seed with reward %g below threshold", tr.Reward)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Donors survive a restart and WarmStart works without retraining.
	w2 := mustOpen(t, opts)
	defer w2.Close()
	ws2, ok := w2.WarmStart("a.TS.1", 0, 4)
	if !ok || ws2.Donor.Generation != 3 || len(ws2.Seeds) != 4 {
		t.Fatalf("post-restart warm start = %+v ok=%v", ws2.Donor, ok)
	}
	if _, ok := w2.WarmStart("b.TS.1", 0, 4); ok {
		t.Fatal("warm start for an unknown signature should miss")
	}
}

func TestBackgroundTrainerProducesDonors(t *testing.T) {
	opts := testOptions(t)
	opts.TrainInterval = 10 * time.Millisecond
	opts.TrainIters = 8
	w := mustOpen(t, opts)
	defer w.Close()
	if err := w.AppendBatch(makeRecords("a.PR.1", 16, 9)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if donors, err := w.Donors("a.PR.1"); err == nil && len(donors) > 0 {
			if donors[0].Records != 16 {
				t.Fatalf("background donor = %+v", donors[0])
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("background trainer produced no donor; stats %+v", w.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestAppendValidation(t *testing.T) {
	w := mustOpen(t, testOptions(t))
	defer w.Close()
	if err := w.Append(Record{}); err == nil {
		t.Fatal("empty record accepted")
	}
	good := makeRecords("a.TS.1", 1, 10)[0]
	if err := w.Append(good); err != nil {
		t.Fatal(err)
	}
	bad := makeRecords("a.TS.1", 1, 11)[0]
	bad.Transition.State = []float64{1} // dimension mismatch within a family
	if err := w.Append(bad); err == nil {
		t.Fatal("dimension-mismatched record accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(good); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close = %v, want ErrClosed", err)
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return info.Size()
}

func logFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if _, _, ok := parseLogName(e.Name()); ok {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names
}

// TestQuarantineNonFiniteIngest verifies the ingest guard: records carrying
// NaN/Inf anywhere in the transition are counted and dropped — never logged,
// indexed or replayed — while finite records in the same batch survive.
func TestQuarantineNonFiniteIngest(t *testing.T) {
	opts := testOptions(t)
	w := mustOpen(t, opts)
	recs := makeRecords("a.TS.1", 6, 1)
	recs[1].Transition.Reward = math.NaN()
	recs[3].Transition.State[0] = math.Inf(1)
	recs[4].Transition.NextState[2] = math.Inf(-1)
	if err := w.AppendBatch(recs); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Records != 3 || st.Quarantined != 3 {
		t.Fatalf("stats after poisoned batch = records %d quarantined %d, want 3/3", st.Records, st.Quarantined)
	}
	var scanned int
	if err := w.ScanRecords(func(rec Record) bool {
		if !finiteRecord(rec) {
			t.Fatalf("non-finite record survived ingest: %+v", rec)
		}
		scanned++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if scanned != 3 {
		t.Fatalf("ScanRecords visited %d records, want 3", scanned)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the quarantined records were never committed to the WAL.
	w2 := mustOpen(t, opts)
	defer w2.Close()
	if st := w2.Stats(); st.Records != 3 || st.RecoveredRecords != 3 {
		t.Fatalf("recovered stats = %+v", st)
	}
}

// TestQuarantineOnReplay verifies a WAL written before the ingest guard
// existed (simulated by appending a raw non-finite payload directly) is
// cleansed at Open: the poisoned record is quarantined, not indexed.
func TestQuarantineOnReplay(t *testing.T) {
	opts := testOptions(t)
	w := mustOpen(t, opts)
	if err := w.AppendBatch(makeRecords("a.TS.1", 4, 1)); err != nil {
		t.Fatal(err)
	}
	// Bypass AppendBatch's guard the way an old build would have.
	bad := makeRecords("a.TS.1", 1, 2)[0]
	bad.Transition.Reward = math.Inf(1)
	payload, err := encodeRecord(bad)
	if err != nil {
		t.Fatal(err)
	}
	w.mu.Lock()
	err = w.log.append(payload)
	w.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2 := mustOpen(t, opts)
	defer w2.Close()
	st := w2.Stats()
	if st.Records != 4 || st.Quarantined != 1 || st.RecoveredRecords != 4 {
		t.Fatalf("replay stats = records %d quarantined %d recovered %d, want 4/1/4",
			st.Records, st.Quarantined, st.RecoveredRecords)
	}
}

// TestTrainDonorFiltersNonFinite verifies the trainer's belt-and-braces
// filter: handed an in-memory slice containing a poisoned record, training
// proceeds on the finite remainder.
func TestTrainDonorFiltersNonFinite(t *testing.T) {
	opts := testOptions(t)
	w := mustOpen(t, opts)
	defer w.Close()
	recs := makeRecords("a.TS.1", 8, 1)
	recs[2].Transition.Action[0] = math.NaN()
	meta, _, err := w.trainDonor("a.TS.1", 1, recs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Records != 7 {
		t.Fatalf("donor trained on %d records, want 7 (poisoned one filtered)", meta.Records)
	}

	all := makeRecords("a.TS.1", 2, 3)
	for i := range all {
		all[i].Transition.Reward = math.NaN()
	}
	if _, _, err := w.trainDonor("a.TS.1", 2, all, 0); err == nil {
		t.Fatal("training on all-poisoned records succeeded")
	}
}
