package warehouse

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// The log is a sequence of segment files, each holding length-prefixed,
// CRC-checked frames:
//
//	| length uint32 LE | crc32(payload) uint32 LE | payload (gob Record) |
//
// Appends go to the active (highest-numbered) "seg-" file; when it exceeds
// the size limit it is sealed and a new one opened. Compaction rewrites all
// sealed segments into a single "cmp-N" file covering segments 1..N (after
// per-family retention), then deletes the covered files; recovery reads the
// newest cmp file followed by the seg files it does not cover, so a crash at
// any point between those steps loses nothing.
const (
	frameHeaderBytes = 8
	// maxRecordBytes rejects absurd length prefixes during recovery, which
	// otherwise could make a single flipped bit swallow the rest of a
	// segment.
	maxRecordBytes = 16 << 20
)

func segmentName(n int) string { return fmt.Sprintf("seg-%08d.wal", n) }
func compactName(n int) string { return fmt.Sprintf("cmp-%08d.wal", n) }

// parseLogName returns the index of a seg/cmp file, or ok=false for
// unrelated directory entries.
func parseLogName(name string) (idx int, compacted, ok bool) {
	var prefix string
	switch {
	case strings.HasPrefix(name, "seg-"):
		prefix = "seg-"
	case strings.HasPrefix(name, "cmp-"):
		prefix, compacted = "cmp-", true
	default:
		return 0, false, false
	}
	if !strings.HasSuffix(name, ".wal") {
		return 0, false, false
	}
	n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, prefix), ".wal"))
	if err != nil || n <= 0 {
		return 0, false, false
	}
	return n, compacted, true
}

// wal is the on-disk half of the warehouse. It is not safe for concurrent
// use; the Warehouse serializes access under its mutex.
type wal struct {
	dir      string
	maxBytes int64

	active     *os.File
	activeIdx  int
	activeSize int64
	sealed     []int // sealed seg indices still on disk, ascending
	cmpIdx     int   // coverage of the newest cmp file (0 = none)

	// onSeal, when set, is called once per sealed segment (rotation);
	// the warehouse points it at its segments-sealed counter.
	onSeal func()
}

// walRecovery reports what opening an existing log found.
type walRecovery struct {
	// Records is the number of committed frames recovered.
	Records int
	// TruncatedBytes is how much of a torn tail was cut off the active
	// segment.
	TruncatedBytes int64
	// DroppedBytes counts bytes abandoned mid-log (a corrupt frame in a
	// sealed segment ends that segment's recovery but not the log's).
	DroppedBytes int64
}

// openWAL recovers the log under dir and returns the committed payloads in
// append order.
func openWAL(dir string, maxBytes int64) (*wal, [][]byte, walRecovery, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, walRecovery{}, fmt.Errorf("warehouse: log dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, walRecovery{}, fmt.Errorf("warehouse: scan log dir: %w", err)
	}
	var segs, cmps []int
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if idx, compacted, ok := parseLogName(e.Name()); ok {
			if compacted {
				cmps = append(cmps, idx)
			} else {
				segs = append(segs, idx)
			}
		}
	}
	sort.Ints(segs)
	sort.Ints(cmps)

	w := &wal{dir: dir, maxBytes: maxBytes}
	if len(cmps) > 0 {
		w.cmpIdx = cmps[len(cmps)-1]
		// Older cmp files and the segments the newest one covers are
		// leftovers of a crash between compaction's rename and cleanup.
		for _, idx := range cmps[:len(cmps)-1] {
			os.Remove(filepath.Join(dir, compactName(idx)))
		}
	}
	var (
		payloads [][]byte
		rec      walRecovery
	)
	if w.cmpIdx > 0 {
		ps, _, dropped := readFrames(filepath.Join(dir, compactName(w.cmpIdx)))
		payloads = append(payloads, ps...)
		rec.DroppedBytes += dropped
	}
	live := segs[:0]
	for _, idx := range segs {
		if idx <= w.cmpIdx {
			os.Remove(filepath.Join(dir, segmentName(idx)))
			continue
		}
		live = append(live, idx)
	}
	for i, idx := range live {
		path := filepath.Join(dir, segmentName(idx))
		ps, good, dropped := readFrames(path)
		payloads = append(payloads, ps...)
		if i == len(live)-1 {
			// The active segment may end in a torn frame from a crash
			// mid-append; cut it off so new appends start on a frame
			// boundary.
			if dropped > 0 {
				if err := os.Truncate(path, good); err != nil {
					return nil, nil, walRecovery{}, fmt.Errorf("warehouse: truncate torn tail: %w", err)
				}
				rec.TruncatedBytes += dropped
			}
			w.activeIdx = idx
			w.activeSize = good
			w.sealed = append([]int(nil), live[:i]...)
		} else {
			rec.DroppedBytes += dropped
		}
	}
	if w.activeIdx == 0 {
		w.activeIdx = w.cmpIdx + 1
		w.activeSize = 0
	}
	f, err := os.OpenFile(filepath.Join(dir, segmentName(w.activeIdx)),
		os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, walRecovery{}, fmt.Errorf("warehouse: open active segment: %w", err)
	}
	w.active = f
	rec.Records = len(payloads)
	return w, payloads, rec, nil
}

// readFrames decodes every committed frame of one log file. It returns the
// payloads, the offset of the first byte after the last good frame, and the
// number of bytes past that offset (0 for a clean file).
func readFrames(path string) (payloads [][]byte, good int64, dropped int64) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, 0
	}
	return parseFrames(data)
}

// parseFrames decodes committed frames from an in-memory log image; the
// segment shipper uses it on bytes pulled from a peer, with the same CRC
// and length validation recovery applies to local files.
func parseFrames(data []byte) (payloads [][]byte, good int64, dropped int64) {
	off := 0
	for off+frameHeaderBytes <= len(data) {
		ln := int(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if ln == 0 || ln > maxRecordBytes || off+frameHeaderBytes+ln > len(data) {
			break
		}
		payload := data[off+frameHeaderBytes : off+frameHeaderBytes+ln]
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		payloads = append(payloads, append([]byte(nil), payload...))
		off += frameHeaderBytes + ln
	}
	return payloads, int64(off), int64(len(data) - off)
}

// append writes one frame to the active segment, rotating first when the
// segment is over its size limit.
func (w *wal) append(payload []byte) error {
	if len(payload) == 0 || len(payload) > maxRecordBytes {
		return fmt.Errorf("warehouse: record payload of %d bytes", len(payload))
	}
	if w.activeSize > 0 && w.activeSize+int64(frameHeaderBytes+len(payload)) > w.maxBytes {
		if err := w.rotate(); err != nil {
			return err
		}
	}
	frame := make([]byte, frameHeaderBytes+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeaderBytes:], payload)
	// A single write keeps the frame contiguous; the OS page cache makes it
	// durable against process death (kill -9), and the CRC catches whatever
	// a harder crash leaves half-written.
	if _, err := w.active.Write(frame); err != nil {
		return fmt.Errorf("warehouse: append: %w", err)
	}
	w.activeSize += int64(len(frame))
	return nil
}

// rotate seals the active segment and opens the next one.
func (w *wal) rotate() error {
	if err := w.active.Close(); err != nil {
		return fmt.Errorf("warehouse: seal segment: %w", err)
	}
	w.sealed = append(w.sealed, w.activeIdx)
	if w.onSeal != nil {
		w.onSeal()
	}
	w.activeIdx++
	f, err := os.OpenFile(filepath.Join(w.dir, segmentName(w.activeIdx)),
		os.O_WRONLY|os.O_APPEND|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("warehouse: open segment: %w", err)
	}
	w.active = f
	w.activeSize = 0
	return nil
}

// compact seals the active segment, writes the given payloads (the retained
// state of every family) as cmp-N covering all segments before the new
// active one, and deletes the covered files. The rename publishes the cmp
// file atomically, so a crash anywhere in compact leaves a recoverable log —
// at worst with stale covered files that the next open removes.
func (w *wal) compact(payloads [][]byte) error {
	if w.activeSize > 0 {
		if err := w.rotate(); err != nil {
			return err
		}
	}
	cover := w.activeIdx - 1
	if cover <= w.cmpIdx {
		return nil // nothing sealed since the last compaction
	}
	tmp, err := os.CreateTemp(w.dir, "cmp-*.tmp")
	if err != nil {
		return fmt.Errorf("warehouse: compact: %w", err)
	}
	defer os.Remove(tmp.Name())
	for _, payload := range payloads {
		frame := make([]byte, frameHeaderBytes+len(payload))
		binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
		copy(frame[frameHeaderBytes:], payload)
		if _, err := tmp.Write(frame); err != nil {
			tmp.Close()
			return fmt.Errorf("warehouse: compact: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("warehouse: compact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("warehouse: compact: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(w.dir, compactName(cover))); err != nil {
		return fmt.Errorf("warehouse: compact: %w", err)
	}
	oldCmp := w.cmpIdx
	w.cmpIdx = cover
	if oldCmp > 0 {
		os.Remove(filepath.Join(w.dir, compactName(oldCmp)))
	}
	for _, idx := range w.sealed {
		os.Remove(filepath.Join(w.dir, segmentName(idx)))
	}
	w.sealed = w.sealed[:0]
	return nil
}

// sealedCount returns how many sealed segments await compaction.
func (w *wal) sealedCount() int { return len(w.sealed) }

// seal rotates the active segment if it holds any data, making its
// contents immutable and therefore shippable to peers.
func (w *wal) seal() error {
	if w.activeSize == 0 {
		return nil
	}
	return w.rotate()
}

// shippable returns the names of the log's immutable files — the newest
// compacted file (if any) followed by the sealed segments, ascending. The
// active segment is deliberately excluded: it is still being appended to,
// so a peer pulling it would see a different byte stream on every fetch.
func (w *wal) shippable() []string {
	var names []string
	if w.cmpIdx > 0 {
		names = append(names, compactName(w.cmpIdx))
	}
	for _, idx := range w.sealed {
		names = append(names, segmentName(idx))
	}
	return names
}

// close releases the active segment file.
func (w *wal) close() error {
	if w.active == nil {
		return nil
	}
	err := w.active.Close()
	w.active = nil
	return err
}
