// Package warehouse is the fleet experience store behind the tuning
// service: every session streams its observed transitions into an
// append-only, segmented, CRC-checked log keyed by a workload signature; a
// background trainer pool periodically distills each workload family's
// experience into "donor" TD3 agents (batch RL over the logged transitions,
// persisted as core.Snapshots); and new sessions on a known signature
// warm-start from the best donor instead of learning from scratch — the
// paper's experience-reuse argument lifted from one session to the whole
// fleet.
package warehouse

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"deepcat/internal/obs"
	"deepcat/internal/rl"
)

// Sentinel errors.
var (
	// ErrClosed marks calls against a closed warehouse.
	ErrClosed = errors.New("warehouse closed")
	// ErrUnknownFamily marks a signature with no recorded experience.
	ErrUnknownFamily = errors.New("unknown workload family")
	// ErrTraining marks a training request for a family whose donor is
	// already being trained.
	ErrTraining = errors.New("donor training already in flight")
)

// Signature derives the workload-family key from an environment descriptor:
// cluster, canonical workload abbreviation and 1-based input index, e.g.
// "a.TS.1". Equal signatures mean the same tunable system — identical
// configuration space, state dimensionality and performance model — so
// their sessions can exchange experience. The character set is restricted
// to [a-zA-Z0-9.], keeping signatures safe in file names and URL paths.
func Signature(cluster, workload string, input int) string {
	return fmt.Sprintf("%s.%s.%d", cluster, workload, input)
}

// Record is one logged experience: which family it belongs to, which
// session observed it, and the transition itself.
type Record struct {
	// Signature is the workload-family key (see Signature).
	Signature string
	// Session is the originating session id; empty for bulk imports.
	Session string
	// Transition is the observed (s, a, r, s', done) tuple.
	Transition rl.Transition
}

// Options configures a Warehouse. The zero value of every field selects a
// sensible default; only Dir is required.
type Options struct {
	// Dir is the directory holding log segments and donor snapshots.
	Dir string
	// SegmentMaxBytes seals the active log segment past this size
	// (default 4 MiB).
	SegmentMaxBytes int64
	// RetainPerFamily bounds the transitions kept per family; compaction
	// and the in-memory index drop the oldest beyond it (default 20000).
	RetainPerFamily int
	// CompactAfterSegments triggers background compaction once this many
	// sealed segments accumulate (default 8).
	CompactAfterSegments int
	// RewardThreshold is the R_th used for high-reward accounting; it
	// should match the tuners feeding the log (default 0, the core
	// default).
	RewardThreshold float64

	// TrainInterval is the period of the background trainer/compactor
	// loop; zero or negative disables it, leaving TrainFamily and Compact
	// to explicit calls.
	TrainInterval time.Duration
	// TrainIters is the gradient-update budget per donor training run
	// (default 500).
	TrainIters int
	// TrainMinNew is how many new records a family must accumulate before
	// its donor is retrained (default 32).
	TrainMinNew int
	// MinFamilyRecords is the smallest family that gets a donor at all
	// (default 64).
	MinFamilyRecords int
	// TrainWorkers bounds concurrent donor trainings (default 2).
	TrainWorkers int
	// DonorKeep is how many donor generations to keep per family
	// (default 3).
	DonorKeep int
	// Seed drives donor-training randomness (default 1).
	Seed int64

	// Registry, when non-nil, receives the warehouse's metrics: ingest
	// rate and latency, WAL segment/compaction activity, donor-training
	// durations. Nil keeps the whole layer a no-op.
	Registry *obs.Registry
	// Logger, when non-nil, receives warehouse events (compactions, donor
	// trainings, recovery findings).
	Logger *obs.Logger
}

func (o Options) withDefaults() Options {
	if o.SegmentMaxBytes <= 0 {
		o.SegmentMaxBytes = 4 << 20
	}
	if o.RetainPerFamily <= 0 {
		o.RetainPerFamily = 20000
	}
	if o.CompactAfterSegments <= 0 {
		o.CompactAfterSegments = 8
	}
	if o.TrainIters <= 0 {
		o.TrainIters = 500
	}
	if o.TrainMinNew <= 0 {
		o.TrainMinNew = 32
	}
	if o.MinFamilyRecords <= 0 {
		o.MinFamilyRecords = 64
	}
	if o.TrainWorkers <= 0 {
		o.TrainWorkers = 2
	}
	if o.DonorKeep <= 0 {
		o.DonorKeep = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// family is the in-memory index of one workload family.
type family struct {
	sig string
	// recs holds the retained records in arrival order (oldest first).
	recs []Record
	// high counts retained records with reward >= RewardThreshold.
	high int
	// appended counts every record ever logged for the family, including
	// ones retention has dropped.
	appended int
	// lastTrained is the value of appended when the latest donor was
	// trained.
	lastTrained int
	nextGen     int
	// donors holds the kept generations, oldest first.
	donors []*donorEntry
}

// whMetrics bundles the warehouse's instruments; every field is nil (and
// so no-op) when the warehouse runs without a registry.
type whMetrics struct {
	ingestRecords  *obs.Counter
	ingestBytes    *obs.Counter
	ingestDur      *obs.Histogram
	quarantined    *obs.Counter
	retained       *obs.Gauge
	segmentsSealed *obs.Counter
	compactions    *obs.Counter
	compactionDur  *obs.Histogram
	trainingsOK    *obs.Counter
	trainingsErr   *obs.Counter
	trainingDur    *obs.Histogram
}

func newWHMetrics(reg *obs.Registry) whMetrics {
	// Donor trainings run batch RL for hundreds of gradient updates;
	// stretch the latency buckets accordingly.
	trainBuckets := []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120}
	return whMetrics{
		ingestRecords:  reg.Counter("deepcat_warehouse_ingest_records_total"),
		ingestBytes:    reg.Counter("deepcat_warehouse_ingest_bytes_total"),
		ingestDur:      reg.Histogram("deepcat_warehouse_ingest_duration_seconds", nil),
		quarantined:    reg.Counter("deepcat_warehouse_quarantined_records_total"),
		retained:       reg.Gauge("deepcat_warehouse_retained_records"),
		segmentsSealed: reg.Counter("deepcat_warehouse_segments_sealed_total"),
		compactions:    reg.Counter("deepcat_warehouse_compactions_total"),
		compactionDur:  reg.Histogram("deepcat_warehouse_compaction_duration_seconds", nil),
		trainingsOK:    reg.Counter("deepcat_warehouse_donor_trainings_total", "result", "ok"),
		trainingsErr:   reg.Counter("deepcat_warehouse_donor_trainings_total", "result", "error"),
		trainingDur:    reg.Histogram("deepcat_warehouse_donor_training_duration_seconds", trainBuckets),
	}
}

// Warehouse is the fleet experience store. All methods are safe for
// concurrent use.
type Warehouse struct {
	opts Options
	met  whMetrics
	logg *obs.Logger

	mu          sync.Mutex
	log         *wal
	families    map[string]*family
	recovered   walRecovery
	training    map[string]bool
	trainErrs   int
	quarantined int // records refused by the non-finite ingest guard
	retained    int // total records across family indexes, mirrored to met.retained
	closed      bool

	// Fleet replica index: immutable log files applied from peers (see
	// ship.go). remoteBySig flattens the applied records per workload
	// signature for training and warm-start; remoteHigh counts the
	// high-reward subset.
	remote      map[string]*remoteSource
	remoteBySig map[string][]Record
	remoteHigh  map[string]int

	stopc      chan struct{}
	loopWG     sync.WaitGroup
	trainWG    sync.WaitGroup
	trainSlots chan struct{}
}

// Open recovers (or creates) the warehouse under opts.Dir: committed log
// segments are replayed into the in-memory index, a torn tail record left
// by a crash is detected via its CRC and truncated, and persisted donor
// snapshots are reloaded, so training resumes from everything that was ever
// committed. When opts.TrainInterval is positive a background goroutine
// compacts the log and retrains due families on that period.
func Open(opts Options) (*Warehouse, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("warehouse: no directory configured")
	}
	opts = opts.withDefaults()
	log, payloads, recovered, err := openWAL(opts.Dir, opts.SegmentMaxBytes)
	if err != nil {
		return nil, err
	}
	w := &Warehouse{
		opts:        opts,
		met:         newWHMetrics(opts.Registry),
		logg:        opts.Logger,
		log:         log,
		families:    make(map[string]*family),
		recovered:   recovered,
		training:    make(map[string]bool),
		remote:      make(map[string]*remoteSource),
		remoteBySig: make(map[string][]Record),
		remoteHigh:  make(map[string]int),
		stopc:       make(chan struct{}),
		trainSlots:  make(chan struct{}, opts.TrainWorkers),
	}
	log.onSeal = w.met.segmentsSealed.Inc
	for _, payload := range payloads {
		rec, err := decodeRecord(payload)
		if err != nil {
			// CRC passed but gob did not: a record from an incompatible
			// build. Skip it rather than refuse the whole log.
			w.recovered.DroppedBytes += int64(len(payload))
			w.recovered.Records--
			continue
		}
		if !finiteRecord(rec) {
			// A log written before the ingest guard existed may carry
			// NaN/Inf; quarantine on replay so corruption never reaches
			// donor training, whatever its vintage.
			w.quarantined++
			w.met.quarantined.Inc()
			w.recovered.Records--
			continue
		}
		w.indexLocked(rec)
	}
	if err := w.loadDonors(); err != nil {
		log.close()
		return nil, err
	}
	if opts.TrainInterval > 0 {
		w.loopWG.Add(1)
		go w.loop()
	}
	w.logg.Info("warehouse opened", "dir", opts.Dir, "records", w.recovered.Records,
		"families", len(w.families), "truncated_bytes", recovered.TruncatedBytes,
		"dropped_bytes", recovered.DroppedBytes)
	return w, nil
}

// Close stops the background loop, waits for in-flight donor trainings to
// finish, and releases the log. Further calls fail with ErrClosed.
func (w *Warehouse) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	close(w.stopc)
	w.loopWG.Wait()
	w.trainWG.Wait()
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.log.close()
}

// Append logs one record: it is framed, CRC-stamped, written to the active
// segment and indexed in memory. The record's transition is deep-copied, so
// callers may reuse their slices.
func (w *Warehouse) Append(rec Record) error {
	return w.AppendBatch([]Record{rec})
}

// AppendBatch logs several records under one lock acquisition; sessions use
// it to dump a whole replay buffer after offline training.
func (w *Warehouse) AppendBatch(recs []Record) error {
	start := time.Now()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	var appended, appendedBytes int
	defer func() {
		if appended > 0 {
			w.met.ingestRecords.Add(uint64(appended))
			w.met.ingestBytes.Add(uint64(appendedBytes))
			w.met.ingestDur.ObserveSince(start)
		}
	}()
	for _, rec := range recs {
		if err := validateRecord(rec); err != nil {
			return err
		}
		if !finiteRecord(rec) {
			// Quarantine, don't error: the warehouse is advisory, and one
			// corrupt measurement must not abort the rest of the batch or
			// the caller's observe path. The record never reaches the log,
			// the index or donor training.
			w.quarantined++
			w.met.quarantined.Inc()
			w.logg.Warn("record quarantined", "signature", rec.Signature,
				"session", rec.Session, "reason", "non-finite transition")
			continue
		}
		if fam, ok := w.families[rec.Signature]; ok && len(fam.recs) > 0 {
			prev := fam.recs[len(fam.recs)-1].Transition
			if len(prev.State) != len(rec.Transition.State) || len(prev.Action) != len(rec.Transition.Action) {
				return fmt.Errorf("warehouse: record for %s has dims %dx%d, family holds %dx%d",
					rec.Signature, len(rec.Transition.State), len(rec.Transition.Action),
					len(prev.State), len(prev.Action))
			}
		}
		rec.Transition = rec.Transition.Clone()
		payload, err := encodeRecord(rec)
		if err != nil {
			return err
		}
		if err := w.log.append(payload); err != nil {
			return err
		}
		w.indexLocked(rec)
		appended++
		appendedBytes += frameHeaderBytes + len(payload)
	}
	return nil
}

func validateRecord(rec Record) error {
	if rec.Signature == "" {
		return fmt.Errorf("warehouse: record without signature")
	}
	if len(rec.Transition.State) == 0 || len(rec.Transition.Action) == 0 {
		return fmt.Errorf("warehouse: record for %s with empty state or action", rec.Signature)
	}
	return nil
}

// finiteRecord reports whether every numeric field of the record's
// transition is finite. Non-finite transitions are quarantined rather than
// logged: a single NaN reward would silently poison every future donor
// trained on the family.
func finiteRecord(rec Record) bool {
	tr := rec.Transition
	if math.IsNaN(tr.Reward) || math.IsInf(tr.Reward, 0) {
		return false
	}
	for _, vs := range [][]float64{tr.State, tr.Action, tr.NextState} {
		for _, v := range vs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
	}
	return true
}

// ScanRecords calls fn for every retained record, families in signature
// order and records oldest first, stopping early when fn returns false.
// The warehouse lock is held for the duration: fn must be quick and must
// not call back into the warehouse. Chaos harnesses use it to assert that
// no corrupted transition survived ingest.
func (w *Warehouse) ScanRecords(fn func(Record) bool) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	sigs := make([]string, 0, len(w.families))
	for sig := range w.families {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	for _, sig := range sigs {
		for _, rec := range w.families[sig].recs {
			if !fn(rec) {
				return nil
			}
		}
	}
	return nil
}

// indexLocked adds rec to its family's in-memory index, applying retention.
func (w *Warehouse) indexLocked(rec Record) {
	fam := w.families[rec.Signature]
	if fam == nil {
		fam = &family{sig: rec.Signature, nextGen: 1}
		w.families[rec.Signature] = fam
	}
	fam.recs = append(fam.recs, rec)
	fam.appended++
	w.retained++
	if rec.Transition.Reward >= w.opts.RewardThreshold {
		fam.high++
	}
	for len(fam.recs) > w.opts.RetainPerFamily {
		if fam.recs[0].Transition.Reward >= w.opts.RewardThreshold {
			fam.high--
		}
		fam.recs = fam.recs[1:]
		w.retained--
	}
	w.met.retained.Set(int64(w.retained))
}

// Compact seals the active segment and rewrites the log as one compacted
// file holding only the retained records, dropping everything
// per-family retention has already aged out. The background loop calls this
// automatically once enough sealed segments accumulate.
func (w *Warehouse) Compact() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	return w.compactLocked()
}

func (w *Warehouse) compactLocked() error {
	start := time.Now()
	sigs := make([]string, 0, len(w.families))
	for sig := range w.families {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	var payloads [][]byte
	for _, sig := range sigs {
		for _, rec := range w.families[sig].recs {
			payload, err := encodeRecord(rec)
			if err != nil {
				return err
			}
			payloads = append(payloads, payload)
		}
	}
	err := w.log.compact(payloads)
	if err == nil {
		w.met.compactions.Inc()
		w.met.compactionDur.ObserveSince(start)
		w.logg.Info("log compacted", "retained_records", len(payloads), "dur", time.Since(start))
	} else {
		w.logg.Warn("log compaction failed", "err", err)
	}
	return err
}

// DonorMeta describes one trained donor generation.
type DonorMeta struct {
	Signature string `json:"signature"`
	// Generation numbers donors per family, starting at 1.
	Generation int `json:"generation"`
	// Records is the number of transitions the donor was trained on;
	// HighReward of them had reward >= R_th.
	Records    int `json:"records"`
	HighReward int `json:"high_reward"`
	// Iters is the number of gradient updates performed.
	Iters     int       `json:"iters"`
	TrainedAt time.Time `json:"trained_at"`
}

// FamilyStats summarizes one workload family for the stats endpoint.
type FamilyStats struct {
	Signature  string `json:"signature"`
	Records    int    `json:"records"`
	HighReward int    `json:"high_reward"`
	Appended   int    `json:"appended"`
	// Remote counts replicated records shipped from fleet peers; they feed
	// donor training alongside the local Records.
	Remote      int        `json:"remote,omitempty"`
	Donors      int        `json:"donors"`
	Training    bool       `json:"training,omitempty"`
	LatestDonor *DonorMeta `json:"latest_donor,omitempty"`
}

// Stats is a point-in-time snapshot of the warehouse.
type Stats struct {
	Dir      string        `json:"dir"`
	Records  int           `json:"records"`
	Families []FamilyStats `json:"families"`
	// Segments and LogBytes describe the on-disk log (including the
	// compacted file, if any).
	Segments int   `json:"segments"`
	LogBytes int64 `json:"log_bytes"`
	// RecoveredRecords, TruncatedBytes and DroppedBytes report what the
	// last Open found: committed records replayed, torn tail cut off, and
	// corrupt mid-log bytes skipped.
	RecoveredRecords int   `json:"recovered_records"`
	TruncatedBytes   int64 `json:"truncated_bytes"`
	DroppedBytes     int64 `json:"dropped_bytes"`
	// TrainErrors counts failed background donor trainings.
	TrainErrors int `json:"train_errors,omitempty"`
	// Quarantined counts records the non-finite ingest guard refused (at
	// append time, while replaying an old log, or in a shipped segment).
	Quarantined int `json:"quarantined,omitempty"`
	// Remote summarizes the fleet replica index: segments shipped from
	// peers and the records they contributed.
	Remote RemoteStats `json:"remote,omitempty"`
}

// Stats reports the warehouse's current state.
func (w *Warehouse) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	st := Stats{
		Dir:              w.opts.Dir,
		RecoveredRecords: w.recovered.Records,
		TruncatedBytes:   w.recovered.TruncatedBytes,
		DroppedBytes:     w.recovered.DroppedBytes,
		TrainErrors:      w.trainErrs,
		Quarantined:      w.quarantined,
	}
	st.Remote = w.remoteStatsLocked()
	sigs := make([]string, 0, len(w.families))
	for sig := range w.families {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	for _, sig := range sigs {
		fam := w.families[sig]
		fs := FamilyStats{
			Signature:  sig,
			Records:    len(fam.recs),
			HighReward: fam.high,
			Appended:   fam.appended,
			Remote:     len(w.remoteBySig[sig]),
			Donors:     len(fam.donors),
			Training:   w.training[sig],
		}
		if n := len(fam.donors); n > 0 {
			meta := fam.donors[n-1].meta
			fs.LatestDonor = &meta
		}
		st.Records += len(fam.recs)
		st.Families = append(st.Families, fs)
	}
	if entries, err := os.ReadDir(w.opts.Dir); err == nil {
		for _, e := range entries {
			if _, _, ok := parseLogName(e.Name()); !ok {
				continue
			}
			st.Segments++
			if info, err := e.Info(); err == nil {
				st.LogBytes += info.Size()
			}
		}
	}
	return st
}

// Donors lists the kept donor generations of a family, oldest first.
func (w *Warehouse) Donors(sig string) ([]DonorMeta, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	fam, ok := w.families[sig]
	if !ok {
		return nil, fmt.Errorf("warehouse: %s: %w", sig, ErrUnknownFamily)
	}
	out := make([]DonorMeta, len(fam.donors))
	for i, d := range fam.donors {
		out[i] = d.meta
	}
	return out, nil
}

// encodeRecord / decodeRecord frame one Record as a self-contained gob
// stream, so recovery can decode records independently after skipping a
// corrupt region.
func encodeRecord(rec Record) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return nil, fmt.Errorf("warehouse: encode record: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeRecord(payload []byte) (Record, error) {
	var rec Record
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
		return Record{}, fmt.Errorf("warehouse: decode record: %w", err)
	}
	return rec, nil
}

// donorPath names a donor snapshot file.
func (w *Warehouse) donorPath(sig string, gen int) string {
	return filepath.Join(w.opts.Dir, fmt.Sprintf("donor-%s-g%d.snap", sig, gen))
}
