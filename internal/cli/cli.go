// Package cli holds the small pieces shared by the command-line tools:
// registering the (cluster, workload, input, seed) flag quartet and
// resolving it into a simulated environment.
package cli

import (
	"flag"
	"fmt"

	"deepcat/internal/env"
	"deepcat/internal/sparksim"
)

// EnvFlags bundles the flags shared by every command that binds to a
// simulated environment (deepcat-train, deepcat-tune, deepcat-serve), so
// the flag names, defaults and validation live in one place.
type EnvFlags struct {
	Workload string
	Input    int
	Cluster  string
	Seed     int64
}

// Register installs the shared flags on fs (pass flag.CommandLine from a
// main package).
func (f *EnvFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Workload, "workload", "TS", "workload: WC, TS, PR or KM")
	fs.IntVar(&f.Input, "input", 1, "input dataset: 1, 2 or 3")
	fs.StringVar(&f.Cluster, "cluster", "a", "hardware environment: a or b")
	fs.Int64Var(&f.Seed, "seed", 1, "random seed")
}

// Build validates the parsed flags and constructs the environment.
func (f *EnvFlags) Build() (*env.SparkEnv, error) {
	return BuildEnv(f.Cluster, f.Workload, f.Input, f.Seed)
}

// BuildEnv resolves command-line flags into a Spark environment: cluster is
// "a" or "b", workload a Table-1 abbreviation (WC, TS, PR, KM) and input
// the 1-based dataset index (D1-D3). The seed drives simulator noise.
func BuildEnv(cluster, workload string, input int, seed int64) (*env.SparkEnv, error) {
	w, err := sparksim.WorkloadByShort(workload)
	if err != nil {
		return nil, err
	}
	if input < 1 || input > 3 {
		return nil, fmt.Errorf("input %d outside 1..3", input)
	}
	var cl sparksim.Cluster
	switch cluster {
	case "a":
		cl = sparksim.ClusterA()
	case "b":
		cl = sparksim.ClusterB()
	default:
		return nil, fmt.Errorf("unknown cluster %q (want a or b)", cluster)
	}
	return env.NewSparkEnv(sparksim.NewSimulator(cl, seed), w, input-1), nil
}
