// Package cli holds the small pieces shared by the command-line tools:
// resolving a (cluster, workload, input) flag triple into a simulated
// environment.
package cli

import (
	"fmt"

	"deepcat/internal/env"
	"deepcat/internal/sparksim"
)

// BuildEnv resolves command-line flags into a Spark environment: cluster is
// "a" or "b", workload a Table-1 abbreviation (WC, TS, PR, KM) and input
// the 1-based dataset index (D1-D3). The seed drives simulator noise.
func BuildEnv(cluster, workload string, input int, seed int64) (*env.SparkEnv, error) {
	w, err := sparksim.WorkloadByShort(workload)
	if err != nil {
		return nil, err
	}
	if input < 1 || input > 3 {
		return nil, fmt.Errorf("input %d outside 1..3", input)
	}
	var cl sparksim.Cluster
	switch cluster {
	case "a":
		cl = sparksim.ClusterA()
	case "b":
		cl = sparksim.ClusterB()
	default:
		return nil, fmt.Errorf("unknown cluster %q (want a or b)", cluster)
	}
	return env.NewSparkEnv(sparksim.NewSimulator(cl, seed), w, input-1), nil
}
