package cli

import "testing"

func TestBuildEnvValid(t *testing.T) {
	e, err := BuildEnv("a", "TS", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e.Label() != "TS-D1@cluster-a" {
		t.Fatalf("label = %q", e.Label())
	}
	e, err = BuildEnv("b", "KM", 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if e.Label() != "KM-D3@cluster-b" {
		t.Fatalf("label = %q", e.Label())
	}
}

func TestBuildEnvErrors(t *testing.T) {
	cases := []struct {
		cluster  string
		workload string
		input    int
	}{
		{"a", "XX", 1},
		{"a", "TS", 0},
		{"a", "TS", 4},
		{"c", "TS", 1},
	}
	for _, c := range cases {
		if _, err := BuildEnv(c.cluster, c.workload, c.input, 1); err == nil {
			t.Errorf("BuildEnv(%q, %q, %d) accepted", c.cluster, c.workload, c.input)
		}
	}
}
