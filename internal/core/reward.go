// Package core implements DeepCAT, the paper's cost-efficient online
// configuration auto-tuner: a TD3 agent trained offline with reward-driven
// prioritized experience replay (RDPER, §3.3) and fine-tuned online with the
// Twin-Q Optimizer (§3.4, Algorithm 1) so that sub-optimal recommendations
// are repaired for free instead of being paid for with cluster runs.
package core

import "math"

// Reward implements the paper's immediate reward function (Eq. 1):
//
//	r_t = (perf_e - perf_t) / perf_e
//
// where perf_t is the measured execution time of the evaluated
// configuration and perf_e is the expected performance, set to a speedup
// over the default execution time (perf_e = defaultTime / speedupTarget).
// The reward is positive when the configuration beats the expectation,
// approaches 1 as execution time approaches zero, and grows unboundedly
// negative for slow configurations.
func Reward(execTime, defaultTime, speedupTarget float64) float64 {
	perfE := defaultTime / speedupTarget
	return (perfE - execTime) / perfE
}

// RewardToTime inverts Reward: the execution time that yields reward r.
func RewardToTime(r, defaultTime, speedupTarget float64) float64 {
	perfE := defaultTime / speedupTarget
	return perfE * (1 - r)
}

// DeltaReward is the CDBTune-style delta reward over execution time, kept
// here so both the CDBTune baseline and DeepCAT's reward-function ablation
// share one implementation. With delta0 = (T0-Tt)/T0 (improvement over the
// default) and deltaP = (Tp-Tt)/Tp (improvement over the previous step):
//
//	r = ((1+delta0)^2 - 1) * |1+deltaP|   when delta0 > 0
//	r = -((1-delta0)^2 - 1) * |1-deltaP|  otherwise
//
// It rewards eventual improvement trajectories rather than each action's
// own cost — the objective the paper contrasts with Eq. (1).
func DeltaReward(execTime, prevTime, defaultTime float64) float64 {
	d0 := (defaultTime - execTime) / defaultTime
	dp := (prevTime - execTime) / prevTime
	if d0 > 0 {
		return ((1+d0)*(1+d0) - 1) * math.Abs(1+dp)
	}
	return -((1-d0)*(1-d0) - 1) * math.Abs(1-dp)
}
