package core_test

import (
	"fmt"

	"deepcat/internal/core"
)

// The reward of Eq. (1) is positive once a configuration beats the expected
// performance (a target speedup over the default execution time).
func ExampleReward() {
	defaultTime := 120.0 // seconds under the out-of-the-box configuration
	target := 3.0        // perf_e = 120/3 = 40 s

	fmt.Printf("%.2f\n", core.Reward(40, defaultTime, target))  // at expectation
	fmt.Printf("%.2f\n", core.Reward(20, defaultTime, target))  // better
	fmt.Printf("%.2f\n", core.Reward(120, defaultTime, target)) // the default itself
	// Output:
	// 0.00
	// 0.50
	// -2.00
}

// RewardToTime inverts the reward function.
func ExampleRewardToTime() {
	r := core.Reward(30, 120, 3)
	fmt.Printf("%.0f\n", core.RewardToTime(r, 120, 3))
	// Output:
	// 30
}

// DeltaReward is the CDBTune-style objective used by the reward ablation.
func ExampleDeltaReward() {
	// Execution time improved from the default 100 s (and the previous
	// step's 80 s) to 50 s.
	fmt.Printf("%.3f\n", core.DeltaReward(50, 80, 100))
	// Output:
	// 1.719
}
