package core

import (
	"math"
	"math/rand"
	"testing"

	"deepcat/internal/trace"
)

// eventSink is a minimal trace.Recorder that retains candidate events.
type eventSink struct{ events []trace.Event }

func (s *eventSink) Emit(ev trace.Event) {
	if ev.Kind == trace.KindCandidate {
		s.events = append(s.events, ev)
	}
}

// TestBatchedOptimizeMatchesSequential is the tentpole equivalence property:
// the batched Twin-Q search must reach the same decision as the sequential
// reference — accepted action bit for bit, tries, optimized flag, and the
// full candidate trace stream — across thresholds that exercise accept-at-1,
// accept-mid-search and never-accept, in both min(Q1,Q2) and SingleQ modes,
// with warm and cold scratches. Each path gets its own identically-seeded
// RNG: the walk draws consumed up to the decision are the same; only the
// stream position after a mid-chunk acceptance may differ, which no decision
// depends on.
func TestBatchedOptimizeMatchesSequential(t *testing.T) {
	e := testEnv(t, "TS")
	d := newTuner(t, e, 7)
	d.OfflineTrain(e, 40, nil)
	agent := d.Agent
	rng := rand.New(rand.NewSource(99))
	scr := newTwinqScratch() // shared across trials: warm-arena reuse is part of the property

	for trial := 0; trial < 120; trial++ {
		state := e.IdleState()
		for i := range state {
			state[i] = rng.Float64()
		}
		action := e.Space().RandomAction(rng)
		o := *NewTwinQOptimizer()
		o.SingleQ = trial%3 == 0
		switch trial % 5 {
		case 0:
			o.QTh = math.Inf(-1) // raw recommendation always accepted
		case 1:
			o.QTh = math.Inf(1) // threshold unreachable: full 64-try search
		case 2:
			o.MaxTries = 1 + rng.Intn(8) // tiny budgets hit partial chunks
		default:
			// Sample thresholds around the critics' actual output range so
			// acceptance lands at arbitrary points inside chunks.
			q1, q2 := agent.QValues(state, action)
			o.QTh = minF(q1, q2) + (rng.Float64()*2-1)*0.5
		}
		seed := rng.Int63()

		seqRec := &eventSink{}
		seqRNG := rand.New(rand.NewSource(seed))
		wantA, wantTries, wantOpt := o.optimizeSequential(seqRNG, agent, state, action, seqRec)

		batRec := &eventSink{}
		batRNG := rand.New(rand.NewSource(seed))
		gotA, gotTries, gotOpt := o.optimize(batRNG, agent, state, action, batRec, scr)

		if gotTries != wantTries || gotOpt != wantOpt {
			t.Fatalf("trial %d (QTh=%g singleQ=%v maxTries=%d): tries/opt = %d/%v, want %d/%v",
				trial, o.QTh, o.SingleQ, o.MaxTries, gotTries, gotOpt, wantTries, wantOpt)
		}
		if len(gotA) != len(wantA) {
			t.Fatalf("trial %d: action dim %d, want %d", trial, len(gotA), len(wantA))
		}
		for i := range gotA {
			if gotA[i] != wantA[i] {
				t.Fatalf("trial %d (QTh=%g tries=%d): action[%d] = %v, want %v (bit mismatch)",
					trial, o.QTh, gotTries, i, gotA[i], wantA[i])
			}
		}
		if len(batRec.events) != len(seqRec.events) {
			t.Fatalf("trial %d: %d candidate events, want %d", trial, len(batRec.events), len(seqRec.events))
		}
		for i := range batRec.events {
			g, w := batRec.events[i].Candidate, seqRec.events[i].Candidate
			if g.Try != w.Try || g.Q1 != w.Q1 || g.Q2 != w.Q2 || g.MinQ != w.MinQ ||
				g.QTh != w.QTh || g.Accepted != w.Accepted || !sameVec(g.Action, w.Action) {
				t.Fatalf("trial %d: candidate event %d differs:\n got %+v\nwant %+v", trial, i, g, w)
			}
		}
	}
}

// TestSuggestStatsMatchSequential pins the satellite fix: the tries and
// rejection counters SuggestWithStats reports from the batched path must be
// exactly what the sequential reference would report, so the service's
// twinq_candidates/twinq_rejections metrics and the trace stream stay
// consistent across the refactor.
func TestSuggestStatsMatchSequential(t *testing.T) {
	e := testEnv(t, "TS")
	d := newTuner(t, e, 11)
	d.OfflineTrain(e, 30, nil)
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Each probe restores both tuners fresh from the snapshot so their RNG
	// streams start identical; a single Suggest is compared per probe (after
	// a mid-chunk acceptance only the unread remainder of the stream may
	// differ between the paths, so multi-step streams are not comparable).
	srng := rand.New(rand.NewSource(5))
	for probe := 0; probe < 8; probe++ {
		state := e.IdleState()
		for i := range state {
			state[i] = srng.Float64()
		}
		ref, err := Restore(snap)
		if err != nil {
			t.Fatal(err)
		}
		raw := ref.Agent.Act(state)
		wantA, wantTries, wantOpt := ref.Cfg.TwinQ.optimizeSequential(ref.rng, ref.Agent, state, raw, nil)

		got, err := Restore(snap)
		if err != nil {
			t.Fatal(err)
		}
		gotA, st := got.SuggestWithStats(state, false)
		if st.Tries != wantTries || st.Optimized != wantOpt {
			t.Fatalf("probe %d: SuggestStats = {%d %v}, want {%d %v}",
				probe, st.Tries, st.Optimized, wantTries, wantOpt)
		}
		if !sameVec(gotA, wantA) {
			t.Fatalf("probe %d: suggested action differs from sequential reference", probe)
		}
	}
}

// TestSuggestSteadyStateAllocs verifies the hot path: once the per-tuner
// scratch is warm, Suggest allocates only the returned action (plus the
// small fixed overhead of the stats plumbing), not the hundreds of per-try
// slices the sequential path paid.
func TestSuggestSteadyStateAllocs(t *testing.T) {
	e := testEnv(t, "TS")
	d := newTuner(t, e, 13)
	d.OfflineTrain(e, 30, nil)
	state := e.IdleState()
	d.Suggest(state, false) // warm the scratch
	allocs := testing.AllocsPerRun(20, func() {
		d.Suggest(state, false)
	})
	if allocs > 9 {
		t.Fatalf("warm Suggest allocates %v per run, want <= 9", allocs)
	}
}
