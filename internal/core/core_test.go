package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"deepcat/internal/env"
	"deepcat/internal/mat"
	"deepcat/internal/rl"
	"deepcat/internal/sparksim"
)

func TestRewardFunction(t *testing.T) {
	// perf_e = 100/4 = 25s expected.
	if got := Reward(25, 100, 4); got != 0 {
		t.Fatalf("reward at expectation = %v, want 0", got)
	}
	if got := Reward(0, 100, 4); got != 1 {
		t.Fatalf("reward at zero time = %v, want 1", got)
	}
	if got := Reward(100, 100, 4); got != -3 {
		t.Fatalf("reward at default = %v, want -3", got)
	}
	// Faster is always better.
	if Reward(20, 100, 4) <= Reward(30, 100, 4) {
		t.Fatal("reward not monotone in execution time")
	}
}

func TestRewardRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		def := 10 + rng.Float64()*1000
		target := 1 + rng.Float64()*9
		tm := rng.Float64() * def * 2
		r := Reward(tm, def, target)
		back := RewardToTime(r, def, target)
		return math.Abs(back-tm) < 1e-9*(1+tm)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func testEnv(t *testing.T, short string) *env.SparkEnv {
	t.Helper()
	sim := sparksim.NewSimulator(sparksim.ClusterA(), 1)
	w, err := sparksim.WorkloadByShort(short)
	if err != nil {
		t.Fatal(err)
	}
	return env.NewSparkEnv(sim, w, 0)
}

func newTuner(t *testing.T, e env.Environment, seed int64) *DeepCAT {
	t.Helper()
	cfg := DefaultConfig(e.StateDim(), e.Space().Dim())
	d, err := New(rand.New(rand.NewSource(seed)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := DefaultConfig(9, 32)
	cfg.SpeedupTarget = 0
	if _, err := New(rng, cfg); err == nil {
		t.Fatal("zero speedup target accepted")
	}
	cfg = DefaultConfig(9, 32)
	cfg.EpisodeLen = 0
	if _, err := New(rng, cfg); err == nil {
		t.Fatal("zero episode length accepted")
	}
	cfg = DefaultConfig(9, 32)
	cfg.TD3.Gamma = 2
	if _, err := New(rng, cfg); err == nil {
		t.Fatal("invalid TD3 config accepted")
	}
}

func TestTwinQOptimizerAcceptsGoodAction(t *testing.T) {
	e := testEnv(t, "TS")
	d := newTuner(t, e, 2)
	opt := &TwinQOptimizer{QTh: -1e9, Sigma: 0.1, MaxTries: 8}
	s := e.IdleState()
	a := e.Space().DefaultAction()
	out, tries, optimized := opt.Optimize(rand.New(rand.NewSource(3)), d.Agent, s, a)
	if optimized || tries != 1 {
		t.Fatalf("good action modified: tries=%d optimized=%v", tries, optimized)
	}
	if mat.Dist2(out, a) != 0 {
		t.Fatal("accepted action differs from input")
	}
}

func TestTwinQOptimizerPerturbsBadAction(t *testing.T) {
	e := testEnv(t, "TS")
	d := newTuner(t, e, 4)
	opt := &TwinQOptimizer{QTh: 1e9, Sigma: 0.1, MaxTries: 16}
	s := e.IdleState()
	a := e.Space().DefaultAction()
	aCopy := mat.CloneSlice(a)
	out, tries, _ := opt.Optimize(rand.New(rand.NewSource(5)), d.Agent, s, a)
	if tries != 16 {
		t.Fatalf("tries = %d, want MaxTries", tries)
	}
	if mat.Dist2(a, aCopy) != 0 {
		t.Fatal("input action mutated")
	}
	// Unreachable threshold: returns the best-of-candidates.
	q1 := d.Agent.MinQ(s, out)
	q2 := d.Agent.MinQ(s, aCopy)
	if q1 < q2 {
		t.Fatalf("fallback action worse than input: %v < %v", q1, q2)
	}
	for _, x := range out {
		if x < 0 || x > 1 {
			t.Fatalf("perturbed action coordinate %v outside [0,1]", x)
		}
	}
}

func TestTwinQOptimizerReturnsBetterScoringAction(t *testing.T) {
	// With a reachable threshold, the returned action's min-Q must be
	// >= the input's min-Q: the optimizer never degrades an action.
	e := testEnv(t, "TS")
	d := newTuner(t, e, 6)
	rng := rand.New(rand.NewSource(7))
	opt := NewTwinQOptimizer()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := mat.RandVec(r, e.StateDim(), 0, 4)
		a := e.Space().RandomAction(r)
		before := d.Agent.MinQ(s, a)
		out, _, _ := opt.Optimize(rng, d.Agent, s, a)
		return d.Agent.MinQ(s, out) >= before-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestOfflineTrainTrace(t *testing.T) {
	e := testEnv(t, "TS")
	d := newTuner(t, e, 8)
	var checkpoints []int
	trace := d.OfflineTrain(e, 120, func(it int) {
		if it%40 == 0 {
			checkpoints = append(checkpoints, it)
		}
	})
	if len(trace.Iters) != 120 {
		t.Fatalf("trace length %d", len(trace.Iters))
	}
	if trace.HighPool+trace.LowPool != 120 {
		t.Fatalf("pool accounting %d+%d != 120", trace.HighPool, trace.LowPool)
	}
	if len(checkpoints) != 3 {
		t.Fatalf("checkpoints = %v", checkpoints)
	}
	for _, it := range trace.Iters {
		if math.IsNaN(it.Reward) || math.IsNaN(it.MinQ) {
			t.Fatal("NaN in trace")
		}
		if it.MinQ != math.Min(it.Q1, it.Q2) {
			t.Fatal("MinQ inconsistent")
		}
	}
}

func TestOfflineTrainingImprovesPolicy(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping training test in -short mode")
	}
	e := testEnv(t, "TS")
	d := newTuner(t, e, 9)
	// Greedy policy before training: essentially random sigmoid outputs.
	sBefore := e.Evaluate(d.Agent.Act(e.IdleState()))
	d.OfflineTrain(e, 1500, nil)
	sAfter := e.Evaluate(d.Agent.Act(e.IdleState()))
	if sAfter.Failed {
		t.Fatal("trained policy recommends a failing config")
	}
	if sAfter.ExecTime >= sBefore.ExecTime && !sBefore.Failed {
		t.Fatalf("training did not improve policy: %.1f -> %.1f", sBefore.ExecTime, sAfter.ExecTime)
	}
	// The trained policy must clearly beat the default configuration.
	if sAfter.ExecTime > 0.7*e.DefaultTime() {
		t.Fatalf("trained policy %.1fs too close to default %.1fs", sAfter.ExecTime, e.DefaultTime())
	}
}

func TestOnlineTuneReport(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping training test in -short mode")
	}
	e := testEnv(t, "TS")
	d := newTuner(t, e, 10)
	d.OfflineTrain(e, 1200, nil)
	rep := d.Clone().OnlineTune(e)
	if rep.Tuner != "DeepCAT" {
		t.Fatalf("tuner name %q", rep.Tuner)
	}
	if len(rep.Steps) != d.Cfg.OnlineSteps {
		t.Fatalf("steps = %d, want %d", len(rep.Steps), d.Cfg.OnlineSteps)
	}
	if rep.BestTime >= e.DefaultTime() {
		t.Fatalf("online best %.1f not better than default %.1f", rep.BestTime, e.DefaultTime())
	}
	if rep.BestAction == nil {
		t.Fatal("no best action recorded")
	}
	// Re-evaluating the reported best action must reproduce a time close
	// to the reported best (within noise).
	check := e.Evaluate(rep.BestAction)
	if check.Failed || check.ExecTime > rep.BestTime*1.3 {
		t.Fatalf("best action does not reproduce: %.1f vs reported %.1f", check.ExecTime, rep.BestTime)
	}
	if rep.RecommendationCost() <= 0 {
		t.Fatal("recommendation time not measured")
	}
}

func TestOnlineTuneTimeBudget(t *testing.T) {
	e := testEnv(t, "TS")
	d := newTuner(t, e, 11)
	d.OfflineTrain(e, 80, nil)
	d.Cfg.TimeBudgetSeconds = 1 // exhausted after the first evaluation
	rep := d.OnlineTune(e)
	if len(rep.Steps) != 1 {
		t.Fatalf("budgeted run took %d steps, want 1", len(rep.Steps))
	}
}

func TestCloneIndependence(t *testing.T) {
	e := testEnv(t, "TS")
	d := newTuner(t, e, 12)
	d.OfflineTrain(e, 80, nil)
	c := d.Clone()
	s := e.IdleState()
	if mat.Dist2(d.Agent.Act(s), c.Agent.Act(s)) != 0 {
		t.Fatal("clone policy differs")
	}
	if c.Buffer.Len() != 0 {
		t.Fatal("clone inherited replay buffer contents")
	}
	// Training the clone must not move the original.
	before := d.Agent.Act(s)
	c.OfflineTrain(e, 80, nil)
	if mat.Dist2(d.Agent.Act(s), before) != 0 {
		t.Fatal("training the clone mutated the original")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	e := testEnv(t, "TS")
	d := newTuner(t, e, 13)
	d.OfflineTrain(e, 100, nil)
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf, 99)
	if err != nil {
		t.Fatal(err)
	}
	s := e.IdleState()
	if mat.Dist2(d.Agent.Act(s), got.Agent.Act(s)) > 1e-15 {
		t.Fatal("loaded policy differs")
	}
	a := e.Space().DefaultAction()
	if math.Abs(d.Agent.MinQ(s, a)-got.Agent.MinQ(s, a)) > 1e-12 {
		t.Fatal("loaded critics differ")
	}
}

func TestSaveLoadFile(t *testing.T) {
	e := testEnv(t, "TS")
	d := newTuner(t, e, 14)
	path := t.TempDir() + "/deepcat.model"
	if err := d.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path+".missing", 1); err == nil {
		t.Fatal("missing file loaded")
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("garbage"), 1); err == nil {
		t.Fatal("garbage model loaded")
	}
}

func TestRecoveryAfterFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping training test in -short mode")
	}
	// A model trained on WordCount (no caching) applied to PageRank
	// (cache-heavy) walks into OOM territory; with recovery noise and
	// fine-tuning it must still find a working configuration within the
	// online budget — the §5.3.1 adaptability scenario.
	sim := sparksim.NewSimulator(sparksim.ClusterA(), 1)
	wc, _ := sparksim.WorkloadByShort("WC")
	pr, _ := sparksim.WorkloadByShort("PR")
	eWC := env.NewSparkEnv(sim, wc, 0)
	ePR := env.NewSparkEnv(sim, pr, 0)
	d := newTuner(t, eWC, 15)
	d.OfflineTrain(eWC, 1500, nil)
	tuner := d.Clone()
	tuner.Cfg.OnlineSteps = 8
	rep := tuner.OnlineTune(ePR)
	if rep.BestTime >= ePR.DefaultTime() {
		t.Fatalf("cross-workload tuning found nothing better than default: %.1f vs %.1f",
			rep.BestTime, ePR.DefaultTime())
	}
}

func TestGobTD3ConfigRegistered(t *testing.T) {
	// Compile-time use of the registered type; guards the init().
	var cfg rl.TD3Config
	_ = cfg
}
