package core

import (
	"testing"

	"deepcat/internal/trace"
)

// replayActions restores a tuner from snap, attaches rec, and drives it
// through a fixed suggest/observe loop against a fresh deterministic
// environment, returning every suggested action.
func replayActions(t *testing.T, snap *Snapshot, rec *trace.Session, steps int) [][]float64 {
	t.Helper()
	d, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	d.SetRecorder(rec)
	e := testEnv(t, "TS")
	state := e.IdleState()
	defTime := e.DefaultTime()
	prevTime := defTime
	var actions [][]float64
	for step := 1; step <= steps; step++ {
		rec.SetStep(step)
		action, _ := d.Suggest(state, false)
		actions = append(actions, action)
		outcome := e.Evaluate(action)
		d.Observe(state, action, outcome.ExecTime, prevTime, defTime,
			outcome.State, step == steps)
		prevTime = outcome.ExecTime
		state = outcome.State
	}
	return actions
}

// TestRecorderDoesNotPerturbDecisions is the flight recorder's core
// invariant: tracing must be provably free of effect on tuning output.
// The same snapshot replayed with the recorder off and on must produce
// bit-identical action sequences — the recorder consumes no randomness and
// the Twin-Q search performs identical critic evaluations either way.
func TestRecorderDoesNotPerturbDecisions(t *testing.T) {
	e := testEnv(t, "TS")
	d := newTuner(t, e, 7)
	// A little offline experience makes the Twin-Q search non-trivial so
	// the test exercises the perturbation loop, not just the happy path.
	d.OfflineTrain(e, 30, nil)
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	const steps = 4
	plain := replayActions(t, snap, nil, steps)
	rec := trace.NewSession(trace.Options{RingSize: 8192})
	traced := replayActions(t, snap, rec, steps)
	tracedAgain := replayActions(t, snap, trace.NewSession(trace.Options{RingSize: 64}), steps)

	for variant, actions := range map[string][][]float64{"traced": traced, "traced-small-ring": tracedAgain} {
		if len(actions) != len(plain) {
			t.Fatalf("%s produced %d actions, untraced %d", variant, len(actions), len(plain))
		}
		for i := range plain {
			if len(actions[i]) != len(plain[i]) {
				t.Fatalf("%s step %d action dim %d != %d", variant, i+1, len(actions[i]), len(plain[i]))
			}
			for j := range plain[i] {
				if actions[i][j] != plain[i][j] {
					t.Fatalf("%s diverged at step %d dim %d: %v != %v — tracing altered a tuning decision",
						variant, i+1, j, actions[i][j], plain[i][j])
				}
			}
		}
	}

	// And the traced run must actually have recorded the decisions.
	events := rec.Recent(0)
	var candidates, rewards, spans int
	for _, ev := range events {
		switch ev.Kind {
		case trace.KindCandidate:
			candidates++
		case trace.KindReward:
			rewards++
		case trace.KindSpan:
			spans++
		}
	}
	if candidates == 0 {
		t.Fatal("traced run recorded no Twin-Q candidates")
	}
	if rewards != steps {
		t.Fatalf("traced run recorded %d reward events, want %d", rewards, steps)
	}
	if spans == 0 {
		t.Fatal("traced run recorded no spans")
	}
	// Candidate events must carry both critic values and the verdict inputs.
	for _, ev := range events {
		if ev.Kind != trace.KindCandidate {
			continue
		}
		c := ev.Candidate
		if c == nil || len(c.Action) == 0 || c.QTh == 0 {
			t.Fatalf("malformed candidate event: %+v", ev)
		}
		if c.MinQ > c.Q1 || c.MinQ > c.Q2 {
			t.Fatalf("min-Q %v exceeds a critic value (q1 %v, q2 %v)", c.MinQ, c.Q1, c.Q2)
		}
		if c.Accepted != (c.MinQ >= c.QTh) {
			t.Fatalf("verdict inconsistent with score: %+v", c)
		}
		break
	}
}

// TestSetRecorderWiresRDPER checks that routing decisions reach the same
// stream and that a typed-nil recorder detaches cleanly.
func TestSetRecorderWiresRDPER(t *testing.T) {
	e := testEnv(t, "TS")
	d := newTuner(t, e, 3)
	rec := trace.NewSession(trace.Options{RingSize: 128})
	d.SetRecorder(rec)
	state := e.IdleState()
	action, _ := d.Suggest(state, false)
	d.Observe(state, action, 50, 100, 100, state, false)

	var routes int
	for _, ev := range rec.Recent(0) {
		if ev.Kind == trace.KindRoute {
			routes++
			if ev.Route.Pool != "high" && ev.Route.Pool != "low" {
				t.Fatalf("route pool = %q", ev.Route.Pool)
			}
		}
	}
	if routes == 0 {
		t.Fatal("no RDPER routing events recorded")
	}

	var nilRec *trace.Session
	d.SetRecorder(nilRec)
	if d.rec != nil {
		t.Fatal("typed-nil recorder not normalized to nil")
	}
	before := rec.Len()
	d.Observe(state, action, 50, 100, 100, state, false)
	if rec.Len() != before {
		t.Fatal("detached recorder still receiving events")
	}
}
