package core

import (
	"math/rand"

	"deepcat/internal/mat"
	"deepcat/internal/nn"
	"deepcat/internal/rl"
	"deepcat/internal/trace"
)

// TwinQOptimizer implements Algorithm 1 of the paper. During online tuning
// it scores each recommended action with the smaller of the two offline-
// trained critic outputs — a cost-free estimate of the configuration's
// quality (Fig. 3) — and, when the score falls below the threshold Q_th,
// perturbs the action with Gaussian noise and re-scores it, repeating until
// an estimated close-to-optimal action is found. No configuration is
// actually executed during the search, so the expensive evaluation of
// sub-optimal configurations is avoided entirely.
//
// The search scores candidates in batches: perturbations are generated in
// chunks (in the exact per-candidate, per-dimension RNG draw order of the
// sequential loop) and both critics score a whole chunk in two lane-major
// passes with the state embedding hoisted out (rl.TD3.QValuesBatch). The
// decision is identical to the sequential loop — same accepted action bit
// for bit, same tries count, same optimized flag, same trace events — which
// optimizeSequential and the equivalence test in twinq_batch_test.go pin
// down. Chunks are sized so the common cases stay cheap: the first round
// scores the raw recommendation together with a handful of perturbations
// (one SIMD lane group), then full-width chunks cover the remaining try
// budget.
type TwinQOptimizer struct {
	// QTh is the Q-value threshold Q_th: actions scoring below it are
	// considered sub-optimal (the paper sweeps it in Fig. 12 and picks
	// 0.3). A larger Q_th explores more aggressively around the
	// sub-optimal space; a smaller one exploits known-good regions.
	QTh float64
	// Sigma is the standard deviation of the Gaussian perturbation noise
	// epsilon.
	Sigma float64
	// MaxTries bounds the perturbation loop. Algorithm 1 as printed loops
	// unboundedly; a bound is required for the (early-training) case where
	// no action in the vicinity scores above Q_th. When the bound is hit,
	// the best-scoring action seen is returned.
	MaxTries int
	// SingleQ scores actions with Critic1 alone instead of min(Q1, Q2);
	// used by the ablation benches to quantify what the twin indicator
	// contributes over a single (overestimating) critic.
	SingleQ bool
}

// NewTwinQOptimizer returns an optimizer with the paper's settings
// (Q_th = 0.3) and a perturbation scale suited to [0,1]-normalized actions.
func NewTwinQOptimizer() *TwinQOptimizer {
	return &TwinQOptimizer{QTh: 0.3, Sigma: 0.12, MaxTries: 64}
}

// Chunk schedule for the batched search: one round of the raw
// recommendation plus firstChunk perturbations (8 candidates — exactly one
// SIMD lane group — so early acceptance stays cheap), then maxChunk per
// round until the try budget runs out. With MaxTries=64 that is 8+56: every
// lane is a live candidate and the worst case pads nothing.
const (
	firstChunk = 7
	maxChunk   = 56
)

// twinqScratch holds the reusable buffers of the batched search. One scratch
// serves one search at a time; DeepCAT keeps one per tuner instance (the
// service serializes Suggests per session, so that is also one per session).
type twinqScratch struct {
	ar     *nn.Arena
	qb     *rl.QBatch // state-embedding-hoisted scorer, rebound per agent
	cand   []float64  // candidate chunk, lane-major dim x kp
	q1, q2 []float64
	best   []float64
	walk   []float64 // current random-walk position, row-major
	act    []float64 // actor output buffer for SuggestWithStats
}

func newTwinqScratch() *twinqScratch { return &twinqScratch{ar: nn.NewArena()} }

// ensure sizes the buffers for a chunk of kp dim-dimensional candidate
// lanes. The walk/best buffers only depend on dim, so growing kp mid-search
// never moves them.
func (s *twinqScratch) ensure(dim, kp int) {
	if len(s.cand) < kp*dim {
		s.cand = make([]float64, kp*dim)
	}
	if len(s.q1) < kp {
		s.q1 = make([]float64, kp)
		s.q2 = make([]float64, kp)
	}
	if len(s.best) < dim {
		s.best = make([]float64, dim)
		s.walk = make([]float64, dim)
	}
}

// action returns the stable actor-output buffer.
func (s *twinqScratch) action(dim int) []float64 {
	if len(s.act) < dim {
		s.act = make([]float64, dim)
	}
	return s.act[:dim]
}

// Optimize applies Algorithm 1 to action a under state s using agent's twin
// critics. It returns the accepted action, the number of candidate actions
// scored, and whether the original action was replaced. The input slice is
// not modified.
func (o *TwinQOptimizer) Optimize(rng *rand.Rand, agent *rl.TD3, s, a []float64) (out []float64, tries int, optimized bool) {
	return o.optimize(rng, agent, s, a, nil, nil)
}

// optimize is Optimize with an optional flight recorder and reusable
// scratch. Every candidate scored — the raw recommendation and each
// perturbation — is emitted with both critic values, its score and the
// threshold verdict; candidates a chunk scored beyond the accepted one are
// neither counted nor emitted, so tries and the trace stream match the
// sequential loop exactly. Recording is passive: the search consumes exactly
// the same random draws and reaches the same decision with rec nil or set.
func (o *TwinQOptimizer) optimize(rng *rand.Rand, agent *rl.TD3, s, a []float64, rec trace.Recorder, scr *twinqScratch) (out []float64, tries int, optimized bool) {
	if scr == nil {
		scr = newTwinqScratch()
	}
	dim := len(a)
	// SingleQ only changes which critic value the verdict uses; both are
	// always computed, so tracing sees Q1 and Q2 in either mode.
	pick := func(q1, q2 float64) float64 {
		if !o.SingleQ && q2 < q1 {
			return q2
		}
		return q1
	}
	if scr.qb == nil || scr.qb.Agent() != agent {
		scr.qb = agent.NewQBatch()
	}
	scr.qb.SetState(s)
	scr.ensure(dim, 1)
	best := scr.best[:dim]
	copy(best, a)
	cur := scr.walk[:dim]
	copy(cur, a)
	var bestQ float64
	sigma := o.Sigma

	// Each round generates its candidates by continuing the random walk
	// (cur = cur + eps per candidate, eps ~ N(0, sigma^2), clipped into the
	// action box — the exact per-candidate, per-dimension draw order of the
	// sequential loop) straight into lane-major storage, one candidate per
	// lane, so both critics score the round with no transpose step. The
	// first round carries the raw recommendation in lane 0 plus up to
	// firstChunk perturbations drawn eagerly; when acceptance lands before
	// the end of a round, the walk draws already spent on the remaining
	// lanes are simply discarded. Only the RNG stream position after the
	// search can differ from the sequential loop — never an accepted action,
	// a tries count, or a trace event, which is what the equivalence test
	// pins down.
	first := true
	for tries < o.MaxTries {
		k := o.MaxTries - tries
		base := 0
		if first {
			if k > 1+firstChunk {
				k = 1 + firstChunk
			}
			base = 1
		} else if k > maxChunk {
			k = maxChunk
		}
		kp := (k + 7) &^ 7
		scr.ensure(dim, kp)
		// Stale values in pad lanes are fine: they are old candidates, all
		// finite, and their scores are never read (ScoreLanes contract).
		xt := scr.cand[:dim*kp]
		if first {
			for i := 0; i < dim; i++ {
				xt[i*kp] = a[i]
			}
		}
		for c := base; c < k; c++ {
			for i := 0; i < dim; i++ {
				v := mat.Clip(cur[i]+sigma*rng.NormFloat64(), 0, 1)
				cur[i] = v
				xt[i*kp+c] = v
			}
		}
		scr.qb.ScoreLanes(scr.ar, xt, kp, k, scr.q1[:k], scr.q2[:k])
		for c := 0; c < k; c++ {
			q := pick(scr.q1[c], scr.q2[c])
			tries++
			if rec != nil {
				act := make([]float64, dim)
				for i := range act {
					act[i] = xt[i*kp+c]
				}
				rec.Emit(trace.Event{Kind: trace.KindCandidate, Candidate: &trace.Candidate{
					Try:      tries,
					Action:   act,
					Q1:       scr.q1[c],
					Q2:       scr.q2[c],
					MinQ:     q,
					QTh:      o.QTh,
					Accepted: q >= o.QTh,
				}})
			}
			if q > bestQ || (first && c == 0) {
				bestQ = q
				for i := 0; i < dim; i++ {
					best[i] = xt[i*kp+c]
				}
			}
			if q >= o.QTh {
				return mat.CloneSlice(best), tries, !(first && c == 0)
			}
		}
		first = false
	}
	// Threshold unreachable in MaxTries attempts: fall back to the best
	// candidate scored, which still dominates the raw recommendation.
	return mat.CloneSlice(best), tries, !sameVec(best, a)
}

// optimizeSequential is the pre-batching reference implementation of
// Algorithm 1: one per-sample critic pair per candidate, early exit on
// acceptance. It is retained verbatim as the oracle for the batched-vs-
// sequential equivalence test; the two must agree on the accepted action
// (bit for bit), tries, the optimized flag and the emitted candidate events
// for any inputs.
func (o *TwinQOptimizer) optimizeSequential(rng *rand.Rand, agent *rl.TD3, s, a []float64, rec trace.Recorder) (out []float64, tries int, optimized bool) {
	score := func(s, a []float64) (q1, q2, sc float64) {
		q1, q2 = agent.QValues(s, a)
		sc = q1
		if !o.SingleQ && q2 < q1 {
			sc = q2
		}
		return q1, q2, sc
	}
	emit := func(try int, act []float64, q1, q2, sc float64) {
		if rec == nil {
			return
		}
		rec.Emit(trace.Event{Kind: trace.KindCandidate, Candidate: &trace.Candidate{
			Try:      try,
			Action:   mat.CloneSlice(act),
			Q1:       q1,
			Q2:       q2,
			MinQ:     sc,
			QTh:      o.QTh,
			Accepted: sc >= o.QTh,
		}})
	}
	cur := mat.CloneSlice(a)
	bestA := mat.CloneSlice(a)
	q1, q2, bestQ := score(s, cur)
	tries = 1
	emit(tries, cur, q1, q2, bestQ)
	if bestQ >= o.QTh {
		return bestA, tries, false
	}
	for tries < o.MaxTries {
		for i := range cur {
			cur[i] = mat.Clip(cur[i]+o.Sigma*rng.NormFloat64(), 0, 1)
		}
		q1, q2, q := score(s, cur)
		tries++
		emit(tries, cur, q1, q2, q)
		if q > bestQ {
			bestQ = q
			copy(bestA, cur)
		}
		if q >= o.QTh {
			return bestA, tries, true
		}
	}
	return bestA, tries, !sameVec(bestA, a)
}

func sameVec(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
