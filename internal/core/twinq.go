package core

import (
	"math/rand"

	"deepcat/internal/mat"
	"deepcat/internal/rl"
	"deepcat/internal/trace"
)

// TwinQOptimizer implements Algorithm 1 of the paper. During online tuning
// it scores each recommended action with the smaller of the two offline-
// trained critic outputs — a cost-free estimate of the configuration's
// quality (Fig. 3) — and, when the score falls below the threshold Q_th,
// perturbs the action with Gaussian noise and re-scores it, repeating until
// an estimated close-to-optimal action is found. No configuration is
// actually executed during the search, so the expensive evaluation of
// sub-optimal configurations is avoided entirely.
type TwinQOptimizer struct {
	// QTh is the Q-value threshold Q_th: actions scoring below it are
	// considered sub-optimal (the paper sweeps it in Fig. 12 and picks
	// 0.3). A larger Q_th explores more aggressively around the
	// sub-optimal space; a smaller one exploits known-good regions.
	QTh float64
	// Sigma is the standard deviation of the Gaussian perturbation noise
	// epsilon.
	Sigma float64
	// MaxTries bounds the perturbation loop. Algorithm 1 as printed loops
	// unboundedly; a bound is required for the (early-training) case where
	// no action in the vicinity scores above Q_th. When the bound is hit,
	// the best-scoring action seen is returned.
	MaxTries int
	// SingleQ scores actions with Critic1 alone instead of min(Q1, Q2);
	// used by the ablation benches to quantify what the twin indicator
	// contributes over a single (overestimating) critic.
	SingleQ bool
}

// NewTwinQOptimizer returns an optimizer with the paper's settings
// (Q_th = 0.3) and a perturbation scale suited to [0,1]-normalized actions.
func NewTwinQOptimizer() *TwinQOptimizer {
	return &TwinQOptimizer{QTh: 0.3, Sigma: 0.12, MaxTries: 64}
}

// Optimize applies Algorithm 1 to action a under state s using agent's twin
// critics. It returns the accepted action, the number of candidate actions
// scored, and whether the original action was replaced. The input slice is
// not modified.
func (o *TwinQOptimizer) Optimize(rng *rand.Rand, agent *rl.TD3, s, a []float64) (out []float64, tries int, optimized bool) {
	return o.optimize(rng, agent, s, a, nil)
}

// optimize is Optimize with an optional flight recorder: every candidate
// scored — the raw recommendation and each perturbation — is emitted with
// both critic values, its score and the threshold verdict. Recording is
// passive: the search consumes exactly the same random draws and computes
// exactly the same critic evaluations with rec nil or set.
func (o *TwinQOptimizer) optimize(rng *rand.Rand, agent *rl.TD3, s, a []float64, rec trace.Recorder) (out []float64, tries int, optimized bool) {
	// Both critics are always evaluated (QValues runs the pair); SingleQ
	// only changes which value the verdict uses, so tracing sees Q1 and Q2
	// in either mode.
	score := func(s, a []float64) (q1, q2, sc float64) {
		q1, q2 = agent.QValues(s, a)
		sc = q1
		if !o.SingleQ && q2 < q1 {
			sc = q2
		}
		return q1, q2, sc
	}
	emit := func(try int, act []float64, q1, q2, sc float64) {
		if rec == nil {
			return
		}
		rec.Emit(trace.Event{Kind: trace.KindCandidate, Candidate: &trace.Candidate{
			Try:      try,
			Action:   mat.CloneSlice(act),
			Q1:       q1,
			Q2:       q2,
			MinQ:     sc,
			QTh:      o.QTh,
			Accepted: sc >= o.QTh,
		}})
	}
	cur := mat.CloneSlice(a)
	bestA := mat.CloneSlice(a)
	q1, q2, bestQ := score(s, cur)
	tries = 1
	emit(tries, cur, q1, q2, bestQ)
	if bestQ >= o.QTh {
		return bestA, tries, false
	}
	for tries < o.MaxTries {
		// a = a + eps, eps ~ N(0, sigma^2), clipped into the action box.
		for i := range cur {
			cur[i] = mat.Clip(cur[i]+o.Sigma*rng.NormFloat64(), 0, 1)
		}
		q1, q2, q := score(s, cur)
		tries++
		emit(tries, cur, q1, q2, q)
		if q > bestQ {
			bestQ = q
			copy(bestA, cur)
		}
		if q >= o.QTh {
			return bestA, tries, true
		}
	}
	// Threshold unreachable in MaxTries attempts: fall back to the best
	// candidate scored, which still dominates the raw recommendation.
	return bestA, tries, !sameVec(bestA, a)
}

func sameVec(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
