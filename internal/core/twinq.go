package core

import (
	"math/rand"

	"deepcat/internal/mat"
	"deepcat/internal/rl"
)

// TwinQOptimizer implements Algorithm 1 of the paper. During online tuning
// it scores each recommended action with the smaller of the two offline-
// trained critic outputs — a cost-free estimate of the configuration's
// quality (Fig. 3) — and, when the score falls below the threshold Q_th,
// perturbs the action with Gaussian noise and re-scores it, repeating until
// an estimated close-to-optimal action is found. No configuration is
// actually executed during the search, so the expensive evaluation of
// sub-optimal configurations is avoided entirely.
type TwinQOptimizer struct {
	// QTh is the Q-value threshold Q_th: actions scoring below it are
	// considered sub-optimal (the paper sweeps it in Fig. 12 and picks
	// 0.3). A larger Q_th explores more aggressively around the
	// sub-optimal space; a smaller one exploits known-good regions.
	QTh float64
	// Sigma is the standard deviation of the Gaussian perturbation noise
	// epsilon.
	Sigma float64
	// MaxTries bounds the perturbation loop. Algorithm 1 as printed loops
	// unboundedly; a bound is required for the (early-training) case where
	// no action in the vicinity scores above Q_th. When the bound is hit,
	// the best-scoring action seen is returned.
	MaxTries int
	// SingleQ scores actions with Critic1 alone instead of min(Q1, Q2);
	// used by the ablation benches to quantify what the twin indicator
	// contributes over a single (overestimating) critic.
	SingleQ bool
}

// NewTwinQOptimizer returns an optimizer with the paper's settings
// (Q_th = 0.3) and a perturbation scale suited to [0,1]-normalized actions.
func NewTwinQOptimizer() *TwinQOptimizer {
	return &TwinQOptimizer{QTh: 0.3, Sigma: 0.12, MaxTries: 64}
}

// Optimize applies Algorithm 1 to action a under state s using agent's twin
// critics. It returns the accepted action, the number of candidate actions
// scored, and whether the original action was replaced. The input slice is
// not modified.
func (o *TwinQOptimizer) Optimize(rng *rand.Rand, agent *rl.TD3, s, a []float64) (out []float64, tries int, optimized bool) {
	score := agent.MinQ
	if o.SingleQ {
		score = func(s, a []float64) float64 {
			q1, _ := agent.QValues(s, a)
			return q1
		}
	}
	cur := mat.CloneSlice(a)
	bestA := mat.CloneSlice(a)
	bestQ := score(s, cur)
	tries = 1
	if bestQ >= o.QTh {
		return bestA, tries, false
	}
	for tries < o.MaxTries {
		// a = a + eps, eps ~ N(0, sigma^2), clipped into the action box.
		for i := range cur {
			cur[i] = mat.Clip(cur[i]+o.Sigma*rng.NormFloat64(), 0, 1)
		}
		q := score(s, cur)
		tries++
		if q > bestQ {
			bestQ = q
			copy(bestA, cur)
		}
		if q >= o.QTh {
			return bestA, tries, true
		}
	}
	// Threshold unreachable in MaxTries attempts: fall back to the best
	// candidate scored, which still dominates the raw recommendation.
	return bestA, tries, !sameVec(bestA, a)
}

func sameVec(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
