package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"os"

	"deepcat/internal/nn"
	"deepcat/internal/rl"
)

// savedModel is the serialized form of an offline-trained DeepCAT model:
// the actor and both critics plus their targets, and the configuration
// needed to reconstruct the agent. The replay buffer is intentionally not
// saved — online tuning starts from fresh experience, as in the paper.
type savedModel struct {
	Cfg      Config
	Actor    *nn.MLP
	ActorT   *nn.MLP
	Critic1  *nn.MLP
	Critic2  *nn.MLP
	Critic1T *nn.MLP
	Critic2T *nn.MLP
}

// Save writes the offline-trained model to w.
func (d *DeepCAT) Save(w io.Writer) error {
	m := savedModel{
		Cfg:      d.Cfg,
		Actor:    d.Agent.Actor,
		ActorT:   d.Agent.ActorTarget,
		Critic1:  d.Agent.Critic1,
		Critic2:  d.Agent.Critic2,
		Critic1T: d.Agent.Critic1T,
		Critic2T: d.Agent.Critic2T,
	}
	if err := gob.NewEncoder(w).Encode(m); err != nil {
		return fmt.Errorf("core: save model: %w", err)
	}
	return nil
}

// SaveFile saves the model to the named file.
func (d *DeepCAT) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: save model: %w", err)
	}
	defer f.Close()
	if err := d.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// Load reconstructs a DeepCAT tuner from a model stream written by Save.
// The supplied seed drives the tuner's online randomness.
func Load(r io.Reader, seed int64) (*DeepCAT, error) {
	var m savedModel
	if err := gob.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("core: load model: %w", err)
	}
	d, err := New(rand.New(rand.NewSource(seed)), m.Cfg)
	if err != nil {
		return nil, fmt.Errorf("core: load model: %w", err)
	}
	if m.Actor == nil || m.Critic1 == nil || m.Critic2 == nil {
		return nil, fmt.Errorf("core: load model: missing networks")
	}
	d.Agent.Actor.CopyFrom(m.Actor)
	d.Agent.Critic1.CopyFrom(m.Critic1)
	d.Agent.Critic2.CopyFrom(m.Critic2)
	if m.ActorT != nil {
		d.Agent.ActorTarget.CopyFrom(m.ActorT)
	} else {
		d.Agent.ActorTarget.CopyFrom(m.Actor)
	}
	if m.Critic1T != nil {
		d.Agent.Critic1T.CopyFrom(m.Critic1T)
	} else {
		d.Agent.Critic1T.CopyFrom(m.Critic1)
	}
	if m.Critic2T != nil {
		d.Agent.Critic2T.CopyFrom(m.Critic2T)
	} else {
		d.Agent.Critic2T.CopyFrom(m.Critic2)
	}
	return d, nil
}

// LoadFile loads a model from the named file.
func LoadFile(path string, seed int64) (*DeepCAT, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: load model: %w", err)
	}
	defer f.Close()
	return Load(f, seed)
}

// ensure the rl package's TD3 config type is gob-encodable (hidden slices,
// plain fields). This registration keeps future type evolution explicit.
func init() {
	gob.Register(rl.TD3Config{})
}
