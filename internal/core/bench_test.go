package core

import (
	"math/rand"
	"testing"

	"deepcat/internal/env"
	"deepcat/internal/sparksim"
	"deepcat/internal/trace"
)

func benchEnv(b *testing.B) *env.SparkEnv {
	b.Helper()
	sim := sparksim.NewSimulator(sparksim.ClusterA(), 1)
	w, err := sparksim.WorkloadByShort("TS")
	if err != nil {
		b.Fatal(err)
	}
	return env.NewSparkEnv(sim, w, 0)
}

func benchTuner(b *testing.B, e env.Environment) *DeepCAT {
	b.Helper()
	cfg := DefaultConfig(e.StateDim(), e.Space().Dim())
	d, err := New(rand.New(rand.NewSource(1)), cfg)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the buffer so the Twin-Q search runs over trained-ish critics,
	// matching the online-tuning hot path.
	d.OfflineTrain(e, 80, nil)
	return d
}

// BenchmarkSuggest is the untraced suggest hot path (actor forward plus the
// Twin-Q search); the CI regression gate holds it to the baseline, which
// bounds the flight recorder's nil-path overhead.
func BenchmarkSuggest(b *testing.B) {
	e := benchEnv(b)
	d := benchTuner(b, e)
	state := e.IdleState()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Suggest(state, false)
	}
}

// BenchmarkSuggestTraced is the same path with a live recorder attached,
// quantifying the tracing overhead (ISSUE budget: <5% over untraced).
func BenchmarkSuggestTraced(b *testing.B) {
	e := benchEnv(b)
	d := benchTuner(b, e)
	d.SetRecorder(trace.NewSession(trace.Options{RingSize: trace.DefaultRingSize}))
	state := e.IdleState()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Suggest(state, false)
	}
}
