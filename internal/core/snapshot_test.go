package core

import (
	"bytes"
	"math/rand"
	"testing"

	"deepcat/internal/env"
	"deepcat/internal/sparksim"
)

// snapEnv builds a deterministic TS-D1 environment for snapshot tests.
func snapEnv(t *testing.T, seed int64) *env.SparkEnv {
	t.Helper()
	w, err := sparksim.WorkloadByShort("TS")
	if err != nil {
		t.Fatal(err)
	}
	return env.NewSparkEnv(sparksim.NewSimulator(sparksim.ClusterA(), seed), w, 0)
}

func snapConfig(e *env.SparkEnv) Config {
	cfg := DefaultConfig(e.StateDim(), e.Space().Dim())
	cfg.TD3.Hidden = []int{16, 16}
	cfg.WarmupSteps = 8
	cfg.BatchSize = 8
	return cfg
}

// TestSnapshotRoundTripDeterminism trains a tuner partway, snapshots it
// through a gob encode/decode cycle, and verifies that the restored tuner
// and the live original produce identical action sequences (and identical
// fine-tuned behavior) on identical environments.
func TestSnapshotRoundTripDeterminism(t *testing.T) {
	e := snapEnv(t, 7)
	cfg := snapConfig(e)
	d, err := New(rand.New(rand.NewSource(3)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.OfflineTrain(e, 60, nil)

	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Restore(decoded)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := r.Buffer.Len(), d.Buffer.Len(); got != want {
		t.Fatalf("restored replay holds %d transitions, want %d", got, want)
	}

	// Identical fresh environments so simulator noise matches step for step.
	e1 := snapEnv(t, 99)
	e2 := snapEnv(t, 99)
	rep1 := d.OnlineTune(e1)
	rep2 := r.OnlineTune(e2)
	if len(rep1.Steps) != len(rep2.Steps) {
		t.Fatalf("step counts differ: %d vs %d", len(rep1.Steps), len(rep2.Steps))
	}
	for i := range rep1.Steps {
		s1, s2 := rep1.Steps[i], rep2.Steps[i]
		if len(s1.Action) != len(s2.Action) {
			t.Fatalf("step %d action dims differ", i)
		}
		for j := range s1.Action {
			if s1.Action[j] != s2.Action[j] {
				t.Fatalf("step %d action[%d]: %v vs %v", i, j, s1.Action[j], s2.Action[j])
			}
		}
		if s1.ExecTime != s2.ExecTime {
			t.Fatalf("step %d exec time: %v vs %v", i, s1.ExecTime, s2.ExecTime)
		}
	}
	if rep1.BestTime != rep2.BestTime {
		t.Fatalf("best time: %v vs %v", rep1.BestTime, rep2.BestTime)
	}
}

// TestSnapshotPreservesOptimizerMoments checks the round trip carries the
// Adam step counts and the TD3 update counter, which gate the delayed
// policy updates; losing either silently desynchronizes fine-tuning.
func TestSnapshotPreservesOptimizerMoments(t *testing.T) {
	e := snapEnv(t, 11)
	cfg := snapConfig(e)
	d, err := New(rand.New(rand.NewSource(5)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.OfflineTrain(e, 40, nil)
	wantUpdates := d.Agent.Updates()
	if wantUpdates == 0 {
		t.Fatal("training performed no updates; test is vacuous")
	}

	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Agent.Updates(); got != wantUpdates {
		t.Fatalf("restored update counter = %d, want %d", got, wantUpdates)
	}
}

// TestRestoreRejectsMismatchedState verifies Restore fails loudly when the
// snapshot's replay mode cannot be loaded into the configured buffer.
func TestRestoreRejectsMismatchedState(t *testing.T) {
	e := snapEnv(t, 13)
	cfg := snapConfig(e)
	d, err := New(rand.New(rand.NewSource(5)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snap.Cfg.ReplayMode = "uniform" // buffer rebuilt as uniform; state is rdper
	if _, err := Restore(snap); err == nil {
		t.Fatal("Restore accepted a replay-state/mode mismatch")
	}
}
