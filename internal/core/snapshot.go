package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"

	"deepcat/internal/rl"
)

// Snapshot is the complete serializable state of a mid-training DeepCAT
// tuner: configuration, the TD3 agent with optimizer moments and update
// counter, the replay buffer contents, and a seed for the restored tuner's
// randomness. Unlike the offline model format in model.go (weights only,
// meant for the offline-train / online-tune hand-off), a Snapshot preserves
// everything the online stage accumulates, so a restarted tuning service
// resumes mid-session instead of re-paying offline training.
type Snapshot struct {
	Cfg    Config
	Agent  rl.TD3State
	Replay rl.ReplayState
	// Seed drives the restored tuner's rng. Snapshot derives it from the
	// live tuner's rng and re-seeds the live tuner with the same value, so
	// the original and any restore of it continue with identical random
	// streams (and therefore identical behavior on identical inputs).
	Seed int64
}

// Snapshot captures the tuner's full state. As a side effect it re-seeds
// the tuner's rng with the same seed stored in the snapshot; this keeps the
// live tuner and future restores on identical random streams, which makes
// checkpoint/restore transparent to reproducibility.
func (d *DeepCAT) Snapshot() (*Snapshot, error) {
	replay, err := rl.CaptureReplay(d.Buffer)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot: %w", err)
	}
	seed := d.rng.Int63()
	d.rng = rand.New(rand.NewSource(seed))
	return &Snapshot{
		Cfg:    d.Cfg,
		Agent:  d.Agent.CaptureState(),
		Replay: replay,
		Seed:   seed,
	}, nil
}

// Restore reconstructs a tuner from a snapshot. The result continues
// exactly where the snapshotted tuner was: same weights, optimizer moments,
// replay contents and random stream.
func Restore(s *Snapshot) (*DeepCAT, error) {
	d, err := New(rand.New(rand.NewSource(s.Seed)), s.Cfg)
	if err != nil {
		return nil, fmt.Errorf("core: restore: %w", err)
	}
	// New consumed rng draws initializing throwaway networks; reset the
	// stream so it matches the live tuner's re-seeded rng exactly.
	d.rng = rand.New(rand.NewSource(s.Seed))
	if err := d.Agent.RestoreState(s.Agent); err != nil {
		return nil, fmt.Errorf("core: restore: %w", err)
	}
	if err := rl.RestoreReplay(d.Buffer, s.Replay); err != nil {
		return nil, fmt.Errorf("core: restore: %w", err)
	}
	return d, nil
}

// Encode writes the snapshot to w with encoding/gob.
func (s *Snapshot) Encode(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(s); err != nil {
		return fmt.Errorf("core: encode snapshot: %w", err)
	}
	return nil
}

// DecodeSnapshot reads a snapshot previously written with Encode.
func DecodeSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("core: decode snapshot: %w", err)
	}
	return &s, nil
}
