package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"deepcat/internal/env"
)

// scriptedEnv wraps a real simulator environment and applies a per-call
// modifier from the script (nil entries and calls past the script pass
// through), giving tests precise control over which evaluations fail,
// corrupt or inflate.
type scriptedEnv struct {
	*env.SparkEnv
	calls  int
	script []func(o env.Outcome) (env.Outcome, error)
}

func (s *scriptedEnv) EvaluateCtx(ctx context.Context, u []float64) (env.Outcome, error) {
	i := s.calls
	s.calls++
	o := s.SparkEnv.Evaluate(u)
	if i < len(s.script) && s.script[i] != nil {
		return s.script[i](o)
	}
	return o, nil
}

func (s *scriptedEnv) Evaluate(u []float64) env.Outcome {
	o, err := s.EvaluateCtx(context.Background(), u)
	if err != nil {
		return env.Outcome{ExecTime: s.DefaultTime(), Failed: true, State: s.IdleState()}
	}
	return o
}

var errScripted = errors.New("scripted evaluation failure")

func fail(env.Outcome) (env.Outcome, error) { return env.Outcome{}, errScripted }

func hardenedTuner(t *testing.T, e env.Environment, seed int64, h Hardening) *DeepCAT {
	t.Helper()
	cfg := DefaultConfig(e.StateDim(), e.Space().Dim())
	cfg.FineTuneIters = 2
	cfg.Hardening = h
	d, err := New(rand.New(rand.NewSource(seed)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestOnlineTuneCtxZeroHardeningMatchesClassic asserts the delegation
// contract: with zero Hardening, snapshot-identical tuners on identical
// environments produce bit-identical trajectories through OnlineTune (the
// classic entry point) and OnlineTuneCtx.
func TestOnlineTuneCtxZeroHardeningMatchesClassic(t *testing.T) {
	d := newTuner(t, testEnv(t, "TS"), 11)
	d.Cfg.FineTuneIters = 2
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	a, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	repA := a.OnlineTune(testEnv(t, "TS"))
	repB, err := b.OnlineTuneCtx(context.Background(), testEnv(t, "TS"))
	if err != nil {
		t.Fatal(err)
	}
	if len(repA.Steps) != len(repB.Steps) {
		t.Fatalf("step counts differ: %d vs %d", len(repA.Steps), len(repB.Steps))
	}
	for i := range repA.Steps {
		sa, sb := repA.Steps[i], repB.Steps[i]
		if sa.ExecTime != sb.ExecTime {
			t.Fatalf("step %d exec time %g vs %g", i, sa.ExecTime, sb.ExecTime)
		}
		for j := range sa.Action {
			if sa.Action[j] != sb.Action[j] {
				t.Fatalf("step %d action[%d] %g vs %g", i, j, sa.Action[j], sb.Action[j])
			}
		}
	}
	if repA.BestTime != repB.BestTime {
		t.Fatalf("best time %g vs %g", repA.BestTime, repB.BestTime)
	}
	if repB.Faults+repB.Retries+repB.Rejected+repB.Fallbacks != 0 {
		t.Fatalf("classic run reported hardened accounting: %+v", repB)
	}
}

func TestHardenedRetryRecoversTransientFailure(t *testing.T) {
	se := &scriptedEnv{
		SparkEnv: testEnv(t, "TS"),
		// Step 1's first two attempts fail; the third succeeds.
		script: []func(env.Outcome) (env.Outcome, error){fail, fail},
	}
	d := hardenedTuner(t, se, 12, Hardening{EvalRetries: 2, RetryBaseDelay: time.Millisecond})
	rep, err := d.OnlineTuneCtx(context.Background(), se)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults != 0 {
		t.Fatalf("transient failure escalated to a fault: %+v", rep)
	}
	if rep.Retries != 2 || rep.Steps[0].Retries != 2 {
		t.Fatalf("retries = %d (step: %d), want 2", rep.Retries, rep.Steps[0].Retries)
	}
	if rep.Steps[0].Fault != "" || rep.Steps[0].ExecTime <= 0 {
		t.Fatalf("retried step not measured: %+v", rep.Steps[0])
	}
}

func TestHardenedFallbackToLastKnownGood(t *testing.T) {
	se := &scriptedEnv{
		SparkEnv: testEnv(t, "TS"),
		// Step 1 (call 0) succeeds and becomes the LKG; step 2's only
		// attempt (call 1) fails, so call 2 is the LKG fallback.
		script: []func(env.Outcome) (env.Outcome, error){nil, fail},
	}
	d := hardenedTuner(t, se, 13, Hardening{FallbackLKG: true})
	rep, err := d.OnlineTuneCtx(context.Background(), se)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1: %s", rep.Fallbacks, rep)
	}
	st := rep.Steps[1]
	if !st.Fallback || st.Fault != "" || st.ExecTime <= 0 {
		t.Fatalf("step 2 = %+v, want measured fallback", st)
	}
	for j := range st.Action {
		if st.Action[j] != rep.Steps[0].Action[j] {
			// The fallback must have evaluated the step-1 (best) action.
			if rep.BestAction[j] != st.Action[j] {
				t.Fatalf("fallback action is not the last known good")
			}
		}
	}
}

func TestHardenedFaultWithoutFallback(t *testing.T) {
	se := &scriptedEnv{
		SparkEnv: testEnv(t, "TS"),
		script:   []func(env.Outcome) (env.Outcome, error){fail, fail, fail, fail, fail},
	}
	d := hardenedTuner(t, se, 14, Hardening{})
	before := d.Buffer.Len()
	rep, err := d.OnlineTuneCtx(context.Background(), se)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults != len(rep.Steps) {
		t.Fatalf("faults = %d over %d steps, want all faulted", rep.Faults, len(rep.Steps))
	}
	for i, st := range rep.Steps {
		if st.Fault != "error" || !st.Failed || st.ExecTime != 0 {
			t.Fatalf("step %d = %+v, want zero-time fault", i, st)
		}
	}
	if d.Buffer.Len() != before {
		t.Fatal("faulted steps reached the replay buffer")
	}
	if rep.BestAction != nil || rep.BestTime < 1e18 {
		t.Fatalf("all-faulted run claims a best configuration: %+v", rep)
	}
}

func TestHardenedSanitizerQuarantinesCorruption(t *testing.T) {
	corruptNaN := func(o env.Outcome) (env.Outcome, error) {
		o.ExecTime = math.NaN()
		return o, nil
	}
	se := &scriptedEnv{
		SparkEnv: testEnv(t, "TS"),
		script:   []func(env.Outcome) (env.Outcome, error){nil, corruptNaN},
	}
	d := hardenedTuner(t, se, 15, Hardening{SanitizeWindow: 20})
	rep, err := d.OnlineTuneCtx(context.Background(), se)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rejected != 1 || !rep.Steps[1].Rejected {
		t.Fatalf("NaN measurement not quarantined: %s", rep)
	}
	// One transition per measured step; the quarantined step adds none.
	if want := len(rep.Steps) - 1; d.Buffer.Len() != want {
		t.Fatalf("buffer holds %d transitions, want %d", d.Buffer.Len(), want)
	}
	for i, st := range rep.Steps {
		if !st.Rejected && (math.IsNaN(st.ExecTime) || math.IsInf(st.ExecTime, 0)) {
			t.Fatalf("step %d carries a non-finite measured time", i)
		}
	}
}

func TestOnlineTuneCtxHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d := newTuner(t, testEnv(t, "TS"), 16)
	rep, err := d.OnlineTuneCtx(ctx, testEnv(t, "TS"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run = %v, want context.Canceled", err)
	}
	if len(rep.Steps) != 0 {
		t.Fatalf("cancelled-before-start run recorded %d steps", len(rep.Steps))
	}
}
