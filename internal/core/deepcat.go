package core

import (
	"context"
	"fmt"
	"math/rand"

	"deepcat/internal/env"
	"deepcat/internal/mat"
	"deepcat/internal/rl"
	"deepcat/internal/trace"
)

// Config collects DeepCAT's hyper-parameters. Zero value is not usable;
// start from DefaultConfig.
type Config struct {
	// SpeedupTarget sets the expected performance of Eq. (1):
	// perf_e = defaultTime / SpeedupTarget.
	SpeedupTarget float64
	// RewardMode selects the reward function: "immediate" (Eq. 1, the
	// paper's choice, default) or "delta" (the CDBTune-style formula, for
	// the reward-function ablation).
	RewardMode string
	// RewardThreshold is RDPER's R_th: transitions with reward >= R_th
	// land in the high-reward pool.
	RewardThreshold float64
	// Beta is RDPER's high-reward batch ratio (Fig. 11; paper picks 0.6).
	Beta float64
	// ReplayMode selects the experience replay mechanism: "rdper" (the
	// paper's contribution, default), "uniform" (conventional ER, the
	// Fig. 4 baseline) or "per" (TD-error prioritized replay, for
	// ablations against CDBTune's mechanism).
	ReplayMode string
	// ReplayCapacity bounds each RDPER pool.
	ReplayCapacity int
	// BatchSize is the training mini-batch size.
	BatchSize int
	// WarmupSteps is the number of random-action environment steps
	// collected before gradient updates begin.
	WarmupSteps int
	// ExploreSigma is the offline exploration noise on actor outputs.
	ExploreSigma float64
	// EpisodeLen is the number of tuning steps per offline episode; the
	// final step of each episode is terminal.
	EpisodeLen int

	// OnlineSteps is the online fine-tuning step budget (the paper uses 5,
	// following CDBTune).
	OnlineSteps int
	// TimeBudgetSeconds optionally bounds the total online tuning cost
	// (evaluation plus recommendation time); 0 disables the bound. Tuning
	// stops before the step that would follow exceeding the budget.
	TimeBudgetSeconds float64
	// FineTuneIters is the number of gradient updates after each online
	// evaluation.
	FineTuneIters int
	// RecoverySigma is the Gaussian exploration noise added to the actor
	// output on the step after a failed evaluation, so the tuner escapes
	// failure regions the offline model did not know about (workload or
	// hardware shift). Zero disables recovery noise.
	RecoverySigma float64

	// Hardening configures the fault-tolerant online loop (OnlineTuneCtx):
	// per-evaluation deadlines, jittered retry, outcome sanitizing and
	// last-known-good fallback. The zero value disables all of it, which
	// keeps the classic infallible loop bit-identical.
	Hardening Hardening

	// TwinQ configures the Twin-Q Optimizer; UseTwinQ disables it for
	// ablations when false.
	TwinQ    TwinQOptimizer
	UseTwinQ bool

	// TD3 configures the agent. StateDim/ActionDim are filled in by New.
	TD3 rl.TD3Config
}

// DefaultConfig returns the configuration used in the experiments.
func DefaultConfig(stateDim, actionDim int) Config {
	td3 := rl.DefaultTD3Config(stateDim, actionDim)
	td3.Hidden = []int{64, 64}
	return Config{
		SpeedupTarget:   3,
		RewardThreshold: 0,
		Beta:            0.6,
		ReplayCapacity:  100000,
		BatchSize:       32,
		WarmupSteps:     64,
		ExploreSigma:    0.15,
		EpisodeLen:      5,
		OnlineSteps:     5,
		FineTuneIters:   24,
		RecoverySigma:   0.25,
		TwinQ:           *NewTwinQOptimizer(),
		UseTwinQ:        true,
		TD3:             td3,
	}
}

// DeepCAT is the tuner: a TD3 agent, an RDPER buffer, and the Twin-Q
// Optimizer, wired to the offline-training and online-tuning procedures of
// the paper's Fig. 1 architecture.
type DeepCAT struct {
	Cfg    Config
	Agent  *rl.TD3
	Buffer rl.Sampler
	rng    *rand.Rand
	// rec, when non-nil, receives the flight-recorder event stream:
	// suggest/observe/train spans, every Twin-Q candidate scored, reward
	// decompositions. Tracing is strictly passive — it consumes no
	// randomness and never alters tuning decisions (the determinism
	// regression test asserts identical action sequences with it on and
	// off). Not serialized: snapshots and clones start untraced.
	rec trace.Recorder
	// scratch holds the reusable arena and candidate buffers of the batched
	// Suggest path, built lazily on first use. It carries no tuner state —
	// only workspace — so it is not serialized; snapshots and clones start
	// with a cold scratch and warm it on their first Suggest. Access is
	// guarded by whatever serializes Suggest calls (the tuning service's
	// per-session mutex).
	scratch *twinqScratch
}

// SetRecorder attaches a flight recorder to the tuner (nil detaches). When
// the replay buffer is an RDPER it is wired too, so routing decisions land
// in the same stream. A nil *trace.Session behind the interface is
// normalized to a plain nil so the untraced fast path stays a nil check.
func (d *DeepCAT) SetRecorder(rec trace.Recorder) {
	if s, ok := rec.(*trace.Session); ok && s == nil {
		rec = nil
	}
	d.rec = rec
	if rd, ok := d.Buffer.(*rl.RDPER); ok {
		rd.Rec = rec
	}
}

// New constructs a DeepCAT tuner with freshly initialized networks.
func New(rng *rand.Rand, cfg Config) (*DeepCAT, error) {
	if cfg.SpeedupTarget <= 0 {
		return nil, fmt.Errorf("core: non-positive speedup target %g", cfg.SpeedupTarget)
	}
	if cfg.EpisodeLen <= 0 || cfg.OnlineSteps <= 0 || cfg.BatchSize <= 0 {
		return nil, fmt.Errorf("core: non-positive step configuration %+v", cfg)
	}
	if cfg.RewardMode != "" && cfg.RewardMode != "immediate" && cfg.RewardMode != "delta" {
		return nil, fmt.Errorf("core: unknown reward mode %q", cfg.RewardMode)
	}
	agent, err := rl.NewTD3(rng, cfg.TD3)
	if err != nil {
		return nil, err
	}
	buf, err := newBuffer(cfg)
	if err != nil {
		return nil, err
	}
	return &DeepCAT{
		Cfg:    cfg,
		Agent:  agent,
		Buffer: buf,
		rng:    rng,
	}, nil
}

// newBuffer builds the replay buffer selected by cfg.ReplayMode.
func newBuffer(cfg Config) (rl.Sampler, error) {
	switch cfg.ReplayMode {
	case "", "rdper":
		return rl.NewRDPER(cfg.ReplayCapacity, cfg.RewardThreshold, cfg.Beta), nil
	case "uniform":
		return rl.NewUniformReplay(cfg.ReplayCapacity), nil
	case "per":
		return rl.NewPrioritizedReplay(cfg.ReplayCapacity), nil
	default:
		return nil, fmt.Errorf("core: unknown replay mode %q", cfg.ReplayMode)
	}
}

// IterStat records one offline training iteration for analysis (Fig. 3).
type IterStat struct {
	Reward float64
	Q1, Q2 float64
	MinQ   float64
}

// TrainTrace is the record of an offline training run.
type TrainTrace struct {
	Iters []IterStat
	// HighPool and LowPool are the final RDPER pool sizes.
	HighPool, LowPool int
}

// OfflineTrain interacts with e for the given number of environment steps,
// training after every step once the warmup is collected. It implements the
// offline training stage of Fig. 1: episodes of EpisodeLen steps, Gaussian
// exploration noise, RDPER storage, TD3 updates. The returned trace holds
// per-iteration rewards and twin-critic values for the evaluated action.
//
// Checkpoints, if non-nil, is called after each iteration with the 1-based
// iteration number; harnesses use it to snapshot the policy at intervals
// (Fig. 4) without retraining from scratch.
func (d *DeepCAT) OfflineTrain(e env.Environment, iters int, checkpoint func(iter int)) TrainTrace {
	trace := TrainTrace{Iters: make([]IterStat, 0, iters)}
	state := e.IdleState()
	defTime := e.DefaultTime()
	prevTime := defTime
	stepInEp := 0
	for it := 1; it <= iters; it++ {
		var action []float64
		if d.Buffer.Len() < d.Cfg.WarmupSteps {
			action = e.Space().RandomAction(d.rng)
		} else {
			action = d.Agent.ActNoisy(d.rng, state, d.Cfg.ExploreSigma)
		}
		outcome := e.Evaluate(action)
		r := d.reward(outcome.ExecTime, prevTime, defTime)
		stepInEp++
		done := stepInEp >= d.Cfg.EpisodeLen
		d.Buffer.Add(rl.Transition{
			State:     state,
			Action:    action,
			Reward:    r,
			NextState: outcome.State,
			Done:      done,
		})
		q1, q2 := d.Agent.QValues(state, action)
		trace.Iters = append(trace.Iters, IterStat{Reward: r, Q1: q1, Q2: q2, MinQ: minF(q1, q2)})

		if done {
			state = e.IdleState()
			prevTime = defTime
			stepInEp = 0
		} else {
			state = outcome.State
			prevTime = outcome.ExecTime
		}
		if d.Buffer.Len() >= d.Cfg.WarmupSteps {
			d.trainOnce(d.Cfg.BatchSize)
		}
		if checkpoint != nil {
			checkpoint(it)
		}
	}
	if rd, ok := d.Buffer.(*rl.RDPER); ok {
		trace.HighPool = rd.HighLen()
		trace.LowPool = rd.LowLen()
	}
	return trace
}

// trainOnce samples a batch, performs one TD3 update and refreshes
// priorities when the buffer is TD-error prioritized.
func (d *DeepCAT) trainOnce(batchSize int) {
	sp := trace.Begin(d.rec, "train_once")
	batch := d.Buffer.Sample(d.rng, batchSize)
	if batch.Len() == 0 {
		if sp != nil {
			sp.AttrInt("batch", 0).End()
		}
		return
	}
	stats := d.Agent.Train(d.rng, batch)
	if ps, ok := d.Buffer.(rl.PrioritySampler); ok {
		ps.UpdatePriorities(batch.Indices, stats.TDErrors)
	}
	if sp != nil {
		sp.AttrInt("batch", batch.Len()).
			AttrFloat("critic_loss", stats.CriticLoss).
			AttrFloat("mean_q", stats.MeanQ).
			AttrBool("actor_updated", stats.ActorUpdated).
			End()
	}
}

// Clone returns a deep copy of the tuner (networks and configuration; the
// replay buffer is shared structurally but re-created empty). Harnesses use
// clones to run independent online tuning sessions from one offline model.
func (d *DeepCAT) Clone() *DeepCAT {
	buf, err := newBuffer(d.Cfg)
	if err != nil {
		panic(err) // the config was already validated in New
	}
	c := &DeepCAT{
		Cfg:    d.Cfg,
		rng:    rand.New(rand.NewSource(d.rng.Int63())),
		Buffer: buf,
	}
	agent, err := rl.NewTD3(c.rng, d.Cfg.TD3)
	if err != nil {
		panic(err) // the config was already validated in New
	}
	agent.Actor.CopyFrom(d.Agent.Actor)
	agent.ActorTarget.CopyFrom(d.Agent.ActorTarget)
	agent.Critic1.CopyFrom(d.Agent.Critic1)
	agent.Critic2.CopyFrom(d.Agent.Critic2)
	agent.Critic1T.CopyFrom(d.Agent.Critic1T)
	agent.Critic2T.CopyFrom(d.Agent.Critic2T)
	c.Agent = agent
	return c
}

// SuggestStats reports how the Twin-Q Optimizer treated one suggestion:
// how many candidate actions it scored (1 when the raw recommendation
// passed Q_th immediately) and whether the raw recommendation was rejected
// and replaced by a perturbation. The observability layer aggregates these
// into the fleet-wide rejection rate — the paper's measure of how many
// sub-optimal configurations were never paid for with a real run.
type SuggestStats struct {
	// Tries is the number of candidate actions the twin critics scored.
	Tries int
	// Optimized reports that the raw actor output scored below Q_th and a
	// perturbed action was returned instead.
	Optimized bool
}

// Suggest proposes the next configuration for the given system state: the
// actor's deterministic action (or a recovery-noise perturbation when the
// previous evaluation failed), repaired by the Twin-Q Optimizer when its
// twin-critic score falls below Q_th. This is one half of the incremental
// online-tuning API used by the tuning service; OnlineTune composes it with
// Observe into the paper's closed loop.
func (d *DeepCAT) Suggest(state []float64, lastFailed bool) (action []float64, optimized bool) {
	action, st := d.SuggestWithStats(state, lastFailed)
	return action, st.Optimized
}

// SuggestWithStats is Suggest plus the Twin-Q search statistics; the
// tuning service uses it to feed perturbation/rejection metrics.
func (d *DeepCAT) SuggestWithStats(state []float64, lastFailed bool) ([]float64, SuggestStats) {
	sp := trace.Begin(d.rec, "suggest")
	if d.scratch == nil {
		d.scratch = newTwinqScratch()
	}
	recovery := lastFailed && d.Cfg.RecoverySigma > 0
	// The actor runs through the arena-backed batched path (bit-identical
	// to Act/ActNoisy, including the recovery-noise draw order) so the hot
	// loop allocates nothing but the returned action.
	action := d.scratch.action(d.Cfg.TD3.ActionDim)
	d.Agent.ActTo(d.scratch.ar, state, action)
	if recovery {
		for i := range action {
			action[i] = mat.Clip(action[i]+d.Cfg.RecoverySigma*d.rng.NormFloat64(), 0, 1)
		}
	}
	st := SuggestStats{Tries: 1}
	if d.Cfg.UseTwinQ {
		action, st.Tries, st.Optimized = d.Cfg.TwinQ.optimize(d.rng, d.Agent, state, action, d.rec, d.scratch)
	} else {
		action = mat.CloneSlice(action)
	}
	if sp != nil {
		sp.AttrBool("recovery", recovery).
			AttrInt("tries", st.Tries).
			AttrBool("optimized", st.Optimized).
			End()
	}
	return action, st
}

// Observe records a measured outcome for a previously suggested action and
// fine-tunes the agent on the new experience. state is the system state the
// action was suggested for, nextState the post-run state, execTime the
// measured runtime, and prevTime/defTime the previous and default runtimes
// that parameterize the reward. It returns the reward assigned to the
// transition. This is the other half of the incremental API; callers that
// own the evaluation loop (e.g. an external job scheduler talking to the
// tuning service) alternate Suggest and Observe.
func (d *DeepCAT) Observe(state, action []float64, execTime, prevTime, defTime float64, nextState []float64, done bool) float64 {
	return d.observe(state, action, execTime, prevTime, defTime, nextState, done, true)
}

// ObserveNoTrain records the outcome exactly like Observe — same reward,
// same trace events, same replay append — but skips the inline fine-tune
// iterations. Sessions in actor/learner (spine) mode use it: the transition
// still lands in the local replay (keeping checkpoints self-contained and
// the inline fallback warm), while gradient work moves to the shared
// learner pool.
func (d *DeepCAT) ObserveNoTrain(state, action []float64, execTime, prevTime, defTime float64, nextState []float64, done bool) float64 {
	return d.observe(state, action, execTime, prevTime, defTime, nextState, done, false)
}

func (d *DeepCAT) observe(state, action []float64, execTime, prevTime, defTime float64, nextState []float64, done, train bool) float64 {
	sp := trace.Begin(d.rec, "observe")
	r := d.reward(execTime, prevTime, defTime)
	if d.rec != nil {
		rb := &trace.RewardBreakdown{
			Mode:     "immediate",
			ExecTime: execTime,
			PrevTime: prevTime,
			DefTime:  defTime,
			Reward:   r,
		}
		if d.Cfg.RewardMode == "delta" {
			rb.Mode = "delta"
		} else {
			rb.SpeedupTarget = d.Cfg.SpeedupTarget
			rb.PerfE = defTime / d.Cfg.SpeedupTarget
		}
		d.rec.Emit(trace.Event{Kind: trace.KindReward, Reward: rb})
	}
	d.Buffer.Add(rl.Transition{
		State:     state,
		Action:    action,
		Reward:    r,
		NextState: nextState,
		Done:      done,
	})
	if train {
		for i := 0; i < d.Cfg.FineTuneIters && d.Buffer.Len() >= 2; i++ {
			d.trainOnce(minI(d.Cfg.BatchSize, d.Buffer.Len()))
		}
	}
	if sp != nil {
		sp.AttrFloat("reward", r).AttrFloat("exec_time", execTime).End()
	}
	return r
}

// OnlineTune runs the online tuning stage on environment e: at each step
// the actor proposes a configuration for the current state, the Twin-Q
// Optimizer repairs it if its twin-critic score is sub-optimal, the result
// is evaluated on the target system, and the agent is fine-tuned on the new
// experience. Tuning stops after Cfg.OnlineSteps steps or when the time
// budget is exhausted, and the best configuration found is reported.
//
// OnlineTune is the classic infallible entry point: it delegates to
// OnlineTuneCtx with a background context, which with a zero-valued
// Cfg.Hardening reproduces the original loop exactly (same evaluations,
// same RNG consumption, same transitions).
func (d *DeepCAT) OnlineTune(e env.Environment) *env.Report {
	rep, _ := d.OnlineTuneCtx(context.Background(), e)
	return rep
}

// reward dispatches on Cfg.RewardMode.
func (d *DeepCAT) reward(execTime, prevTime, defTime float64) float64 {
	if d.Cfg.RewardMode == "delta" {
		return DeltaReward(execTime, prevTime, defTime)
	}
	return Reward(execTime, defTime, d.Cfg.SpeedupTarget)
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}
