package core

import (
	"fmt"

	"deepcat/internal/rl"
)

// SeedReplay bulk-loads transitions into the tuner's replay buffer; an
// RDPER buffer routes each one into its high- or low-reward pool as usual.
// The experience warehouse uses it to seed donor training and to pre-fill a
// warm-started session's pools with the fleet's high-reward experience.
func (d *DeepCAT) SeedReplay(trs []rl.Transition) {
	for _, tr := range trs {
		d.Buffer.Add(tr)
	}
}

// TrainFromReplay performs up to iters gradient updates sampled from the
// current replay contents without any environment interaction — batch RL
// over logged experience. This is how the warehouse distills a workload
// family's transition log into a donor agent: the training costs compute
// but zero cluster runs, the same cost argument the Twin-Q Optimizer makes
// for individual recommendations. It returns the number of updates
// performed, zero when the buffer holds fewer than two transitions.
func (d *DeepCAT) TrainFromReplay(iters int) int {
	done := 0
	for i := 0; i < iters && d.Buffer.Len() >= 2; i++ {
		d.trainOnce(minI(d.Cfg.BatchSize, d.Buffer.Len()))
		done++
	}
	return done
}

// AdoptAgent copies the agent state of a donor snapshot into d, leaving d's
// configuration, replay buffer and random stream untouched: the donor's
// learned networks with the recipient's own experience. The snapshot's
// architecture must match d's (equal state and action dimensions).
func (d *DeepCAT) AdoptAgent(snap *Snapshot) error {
	if snap == nil {
		return fmt.Errorf("core: adopt nil snapshot")
	}
	if err := d.Agent.RestoreState(snap.Agent); err != nil {
		return fmt.Errorf("core: adopt donor agent: %w", err)
	}
	return nil
}

// AdoptWeights copies a bare agent state into d — the spine's versioned
// policy snapshots arrive this way, without the Snapshot envelope. Like
// AdoptAgent it leaves the configuration, replay buffer and random stream
// untouched, so adoption composes with deterministic checkpoint resume: a
// restored session that re-adopts the same published version reproduces the
// same tuner bit for bit.
func (d *DeepCAT) AdoptWeights(st rl.TD3State) error {
	if err := d.Agent.RestoreState(st); err != nil {
		return fmt.Errorf("core: adopt weights: %w", err)
	}
	return nil
}
