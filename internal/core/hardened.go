package core

import (
	"context"
	"errors"
	"math/rand"
	"time"

	"deepcat/internal/env"
	"deepcat/internal/mat"
	"deepcat/internal/trace"
)

// Hardening configures the fault-tolerant online loop. The zero value
// disables every mechanism, making OnlineTuneCtx behave exactly like the
// classic infallible loop; enable pieces independently as the target
// environment warrants.
type Hardening struct {
	// EvalTimeout bounds one environment evaluation attempt; a straggler
	// past the deadline is abandoned and surfaces as a timeout fault. Zero
	// means no per-evaluation deadline.
	EvalTimeout time.Duration
	// EvalRetries is how many extra attempts a failed evaluation gets
	// before the step is declared faulted.
	EvalRetries int
	// RetryBaseDelay is the base of the jittered exponential backoff
	// between attempts (default 10ms when retries are enabled). The jitter
	// draws from a loop-local RNG, never the tuner's — retry timing cannot
	// perturb tuning decisions.
	RetryBaseDelay time.Duration
	// SanitizeWindow enables the outcome sanitizer with this many recent
	// successful execution times as the outlier baseline; 0 disables
	// sanitizing entirely (including the non-finite check).
	SanitizeWindow int
	// SanitizeMADK is the MAD multiple past which an execution time is
	// quarantined (default env.DefaultMADK). Only the upper tail is
	// tested: a dramatic improvement is the goal, not an anomaly.
	SanitizeMADK float64
	// FallbackLKG re-evaluates the last known good configuration once when
	// a step's retries are exhausted, so a faulted step can still produce
	// a usable measurement instead of a hole in the trajectory.
	FallbackLKG bool
}

// DefaultHardening returns the profile used by the chaos harness and the
// hardened service sessions: short deadline, two retries, sanitizing on,
// last-known-good fallback on.
func DefaultHardening() Hardening {
	return Hardening{
		EvalTimeout:    2 * time.Second,
		EvalRetries:    2,
		RetryBaseDelay: 5 * time.Millisecond,
		SanitizeWindow: 20,
		SanitizeMADK:   env.DefaultMADK,
		FallbackLKG:    true,
	}
}

// OnlineTuneCtx is the hardened online tuning loop: OnlineTune's closed
// loop extended with per-evaluation deadlines, jittered retry,
// last-known-good fallback and outcome sanitizing, all governed by
// Cfg.Hardening. Faulted and quarantined steps never reach Observe — no
// corrupted transition can enter the replay buffer — but they do set the
// failure flag so the next Suggest applies recovery noise.
//
// The returned error is non-nil only when ctx ends the run early; the
// report always covers the steps completed so far.
func (d *DeepCAT) OnlineTuneCtx(ctx context.Context, e env.Environment) (*env.Report, error) {
	h := d.Cfg.Hardening
	var san *env.Sanitizer
	if h.SanitizeWindow > 0 {
		k := h.SanitizeMADK
		if k <= 0 {
			k = env.DefaultMADK
		}
		san = env.NewSanitizer(h.SanitizeWindow, k)
	}
	// Backoff jitter only; deliberately not d.rng so hardened and classic
	// runs consume identical tuner randomness.
	jrng := rand.New(rand.NewSource(1))

	rep := &env.Report{Tuner: "DeepCAT", EnvLabel: e.Label(), BestTime: 1e18}
	state := e.IdleState()
	defTime := e.DefaultTime()
	prevTime := defTime
	lastFailed := false
	for step := 0; step < d.Cfg.OnlineSteps; step++ {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		if d.Cfg.TimeBudgetSeconds > 0 && rep.TotalCost() >= d.Cfg.TimeBudgetSeconds {
			break
		}
		recStart := time.Now()
		action, optimized := d.Suggest(state, lastFailed)
		outcome, retries, evalErr := d.evaluateHardened(ctx, e, action, jrng)
		rep.Retries += retries
		st := env.TuningStep{
			Action:    mat.CloneSlice(action),
			Optimized: optimized,
			Retries:   retries,
		}

		if evalErr != nil && h.FallbackLKG && rep.BestAction != nil && ctx.Err() == nil {
			if fo, ferr := d.evaluateOnce(ctx, e, rep.BestAction); ferr == nil && sanitize(san, fo) == nil {
				outcome, evalErr = fo, nil
				action = rep.BestAction
				st.Action = mat.CloneSlice(rep.BestAction)
				st.Fallback = true
				rep.Fallbacks++
			}
		}
		if evalErr != nil {
			st.Fault = faultName(evalErr)
			st.Failed = true
			st.RecommendSeconds = time.Since(recStart).Seconds()
			rep.Steps = append(rep.Steps, st)
			rep.Faults++
			d.emitFault("env_fault", st.Fault, step, retries, evalErr)
			lastFailed = true
			if err := ctx.Err(); err != nil {
				return rep, err
			}
			continue
		}
		if serr := sanitize(san, outcome); serr != nil {
			st.Rejected = true
			st.Failed = true
			st.RecommendSeconds = time.Since(recStart).Seconds()
			rep.Steps = append(rep.Steps, st)
			rep.Rejected++
			d.emitFault("sanitize_reject", faultName(serr), step, retries, serr)
			lastFailed = true
			continue
		}

		d.Observe(state, action, outcome.ExecTime, prevTime, defTime,
			outcome.State, step == d.Cfg.OnlineSteps-1)
		if san != nil && !outcome.Failed {
			san.Admit(outcome.ExecTime)
		}
		st.ExecTime = outcome.ExecTime
		st.Failed = outcome.Failed
		st.RecommendSeconds = time.Since(recStart).Seconds()
		rep.Steps = append(rep.Steps, st)
		if !outcome.Failed && outcome.ExecTime < rep.BestTime {
			rep.BestTime = outcome.ExecTime
			rep.BestAction = mat.CloneSlice(action)
		}
		lastFailed = outcome.Failed
		prevTime = outcome.ExecTime
		state = outcome.State
	}
	return rep, nil
}

// sanitize applies the sanitizer to a measured outcome: non-finite values
// are always rejected, and successful execution times are additionally
// tested against the recent-history outlier bound. A nil sanitizer accepts
// everything (the classic contract). Failed outcomes skip the outlier test
// — their execution time is a penalty price, not a measurement.
func sanitize(san *env.Sanitizer, o env.Outcome) error {
	if san == nil {
		return nil
	}
	if err := env.CheckFinite(o); err != nil {
		return err
	}
	if o.Failed {
		return nil
	}
	return san.CheckTime(o.ExecTime)
}

// evaluateHardened runs one evaluation with up to Hardening.EvalRetries
// retries under jittered exponential backoff. It returns the number of
// retries consumed alongside the result; the caller's ctx ending always
// stops retrying immediately.
func (d *DeepCAT) evaluateHardened(ctx context.Context, e env.Environment, action []float64, jrng *rand.Rand) (env.Outcome, int, error) {
	h := d.Cfg.Hardening
	retries := 0
	for attempt := 0; ; attempt++ {
		o, err := d.evaluateOnce(ctx, e, action)
		if err == nil {
			return o, retries, nil
		}
		if ctx.Err() != nil || attempt >= h.EvalRetries {
			return env.Outcome{}, retries, err
		}
		retries++
		sleepJittered(ctx, h.retryDelay(attempt), jrng)
	}
}

// evaluateOnce performs a single evaluation attempt under the configured
// per-evaluation deadline (if any).
func (d *DeepCAT) evaluateOnce(ctx context.Context, e env.Environment, action []float64) (env.Outcome, error) {
	if t := d.Cfg.Hardening.EvalTimeout; t > 0 {
		ectx, cancel := context.WithTimeout(ctx, t)
		defer cancel()
		return env.EvaluateWithContext(ectx, e, action)
	}
	return env.EvaluateWithContext(ctx, e, action)
}

// retryDelay is the exponential backoff for the attempt-th retry
// (attempt >= 1 corresponds to delay base<<(attempt-1)), capped at 1s.
func (h Hardening) retryDelay(attempt int) time.Duration {
	base := h.RetryBaseDelay
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	d := base << uint(attempt-1)
	if d > time.Second || d <= 0 {
		d = time.Second
	}
	return d
}

// sleepJittered sleeps for a uniformly jittered duration in [d/2, d],
// returning early if ctx ends.
func sleepJittered(ctx context.Context, d time.Duration, jrng *rand.Rand) {
	if d <= 0 {
		return
	}
	d = d/2 + time.Duration(jrng.Int63n(int64(d/2)+1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// faultName classifies an evaluation error for reporting: environments can
// name their own fault classes by implementing FaultKind() string (the
// chaos wrapper does); context errors map to "timeout"/"canceled";
// everything else is "error".
func faultName(err error) string {
	var fk interface{ FaultKind() string }
	if errors.As(err, &fk) {
		return fk.FaultKind()
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	case errors.Is(err, context.Canceled):
		return "canceled"
	case errors.Is(err, env.ErrNonFinite):
		return "non_finite"
	case errors.Is(err, env.ErrOutlier):
		return "outlier"
	}
	return "error"
}

// emitFault records a fault or quarantine decision on the flight recorder
// (no-op when untraced).
func (d *DeepCAT) emitFault(name, kind string, step, retries int, err error) {
	sp := trace.Begin(d.rec, name)
	if sp == nil {
		return
	}
	sp.Attr("kind", kind).
		AttrInt("step", step).
		AttrInt("retries", retries).
		Attr("error", err.Error()).
		End()
}
