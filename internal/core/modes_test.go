package core

import (
	"math/rand"
	"testing"

	"deepcat/internal/rl"
)

func TestReplayModeValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := DefaultConfig(9, 32)
	cfg.ReplayMode = "bogus"
	if _, err := New(rng, cfg); err == nil {
		t.Fatal("bogus replay mode accepted")
	}
	for _, mode := range []string{"", "rdper", "uniform", "per"} {
		cfg.ReplayMode = mode
		if _, err := New(rand.New(rand.NewSource(1)), cfg); err != nil {
			t.Fatalf("mode %q rejected: %v", mode, err)
		}
	}
}

func TestReplayModeBufferTypes(t *testing.T) {
	mk := func(mode string) rl.Sampler {
		cfg := DefaultConfig(9, 32)
		cfg.ReplayMode = mode
		d, err := New(rand.New(rand.NewSource(1)), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return d.Buffer
	}
	if _, ok := mk("rdper").(*rl.RDPER); !ok {
		t.Fatal("rdper mode did not build an RDPER buffer")
	}
	if _, ok := mk("uniform").(*rl.UniformReplay); !ok {
		t.Fatal("uniform mode did not build a UniformReplay")
	}
	if _, ok := mk("per").(*rl.PrioritizedReplay); !ok {
		t.Fatal("per mode did not build a PrioritizedReplay")
	}
}

func TestRewardModeValidation(t *testing.T) {
	cfg := DefaultConfig(9, 32)
	cfg.RewardMode = "nope"
	if _, err := New(rand.New(rand.NewSource(1)), cfg); err == nil {
		t.Fatal("bogus reward mode accepted")
	}
}

func TestRewardModeDispatch(t *testing.T) {
	cfg := DefaultConfig(9, 32)
	d, err := New(rand.New(rand.NewSource(1)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Immediate mode matches Eq. 1 regardless of prevTime.
	if got, want := d.reward(50, 77, 100), Reward(50, 100, cfg.SpeedupTarget); got != want {
		t.Fatalf("immediate reward = %v, want %v", got, want)
	}
	cfg.RewardMode = "delta"
	d2, err := New(rand.New(rand.NewSource(1)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := d2.reward(50, 77, 100), DeltaReward(50, 77, 100); got != want {
		t.Fatalf("delta reward = %v, want %v", got, want)
	}
}

func TestDeltaRewardMatchesCDBTuneSemantics(t *testing.T) {
	// Positive for improvement over default, negative for regression.
	if DeltaReward(50, 80, 100) <= 0 {
		t.Fatal("improvement not rewarded")
	}
	if DeltaReward(150, 80, 100) >= 0 {
		t.Fatal("regression not penalized")
	}
}

func TestOfflineTrainWithAlternativeModes(t *testing.T) {
	// Each replay/reward mode must train without panicking and fill the
	// trace; the uniform/per modes leave the RDPER pool counters at zero.
	e := testEnv(t, "TS")
	for _, mode := range []string{"uniform", "per"} {
		cfg := DefaultConfig(e.StateDim(), e.Space().Dim())
		cfg.ReplayMode = mode
		cfg.RewardMode = "delta"
		d, err := New(rand.New(rand.NewSource(9)), cfg)
		if err != nil {
			t.Fatal(err)
		}
		trace := d.OfflineTrain(e, 120, nil)
		if len(trace.Iters) != 120 {
			t.Fatalf("mode %s: trace %d", mode, len(trace.Iters))
		}
		if trace.HighPool != 0 || trace.LowPool != 0 {
			t.Fatalf("mode %s: RDPER pool counters set", mode)
		}
		// Online tuning must work on the alternative stack too.
		rep := d.Clone().OnlineTune(e)
		if len(rep.Steps) != cfg.OnlineSteps {
			t.Fatalf("mode %s: %d online steps", mode, len(rep.Steps))
		}
	}
}

func TestTwinQSingleQGate(t *testing.T) {
	e := testEnv(t, "TS")
	d := newTuner(t, e, 10)
	opt := &TwinQOptimizer{QTh: 1e9, Sigma: 0.1, MaxTries: 8, SingleQ: true}
	s := e.IdleState()
	a := e.Space().DefaultAction()
	out, tries, _ := opt.Optimize(rand.New(rand.NewSource(2)), d.Agent, s, a)
	if tries != 8 {
		t.Fatalf("tries = %d", tries)
	}
	// The fallback action maximizes Q1, not necessarily min(Q1,Q2).
	q1out, _ := d.Agent.QValues(s, out)
	q1in, _ := d.Agent.QValues(s, a)
	if q1out < q1in {
		t.Fatalf("SingleQ gate returned worse Q1: %v < %v", q1out, q1in)
	}
}

func TestConfigSurvivesSaveLoadWithModes(t *testing.T) {
	e := testEnv(t, "TS")
	cfg := DefaultConfig(e.StateDim(), e.Space().Dim())
	cfg.ReplayMode = "per"
	cfg.RewardMode = "delta"
	cfg.Beta = 0.4
	d, err := New(rand.New(rand.NewSource(11)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/m.model"
	if err := d.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cfg.ReplayMode != "per" || got.Cfg.RewardMode != "delta" || got.Cfg.Beta != 0.4 {
		t.Fatalf("config not preserved: %+v", got.Cfg)
	}
	if _, ok := got.Buffer.(*rl.PrioritizedReplay); !ok {
		t.Fatal("loaded tuner did not rebuild the per buffer")
	}
}
