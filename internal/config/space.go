// Package config models tunable configuration spaces: typed parameter
// specifications (numeric, boolean, categorical), the [0,1]^d action
// normalization that the paper's DRL formulation uses (§3.1), and utilities
// for defaults, random sampling and clipping recommended values into the
// bounds of a different hardware environment (§5.3.2).
//
// A Space is immutable after construction; all conversion methods are safe
// for concurrent use.
package config

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Kind discriminates parameter types.
type Kind int

// Parameter kinds. Numeric parameters span [Min, Max] (integers when
// Integer is set); Bool parameters are a two-valued special case;
// Categorical parameters select one of Choices.
const (
	Numeric Kind = iota
	Bool
	Categorical
)

// String returns the lowercase kind name.
func (k Kind) String() string {
	switch k {
	case Numeric:
		return "numeric"
	case Bool:
		return "bool"
	case Categorical:
		return "categorical"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Param specifies one tunable parameter.
type Param struct {
	// Name is the full parameter key, e.g. "spark.executor.memory".
	Name string
	// Component identifies the subsystem that owns the parameter
	// (e.g. "spark", "yarn", "hdfs"); used for Table-2 style accounting.
	Component string
	Kind      Kind

	// Min, Max bound numeric parameters (inclusive). Ignored otherwise.
	Min, Max float64
	// Integer marks a numeric parameter as integer-valued.
	Integer bool
	// Unit is a human-readable unit suffix, e.g. "MB" (informational).
	Unit string

	// Choices lists the values of a categorical parameter.
	Choices []string

	// Default is the framework's out-of-the-box value: the numeric value
	// for Numeric, 0/1 for Bool, or the choice index for Categorical.
	Default float64
}

// validate reports structural problems with the spec.
func (p Param) validate() error {
	if p.Name == "" {
		return fmt.Errorf("config: parameter with empty name")
	}
	switch p.Kind {
	case Numeric:
		if !(p.Min < p.Max) {
			return fmt.Errorf("config: %s: min %g not below max %g", p.Name, p.Min, p.Max)
		}
		if p.Default < p.Min || p.Default > p.Max {
			return fmt.Errorf("config: %s: default %g outside [%g, %g]", p.Name, p.Default, p.Min, p.Max)
		}
	case Bool:
		if p.Default != 0 && p.Default != 1 {
			return fmt.Errorf("config: %s: bool default %g not 0 or 1", p.Name, p.Default)
		}
	case Categorical:
		if len(p.Choices) < 2 {
			return fmt.Errorf("config: %s: categorical needs >= 2 choices, has %d", p.Name, len(p.Choices))
		}
		idx := int(p.Default)
		if float64(idx) != p.Default || idx < 0 || idx >= len(p.Choices) {
			return fmt.Errorf("config: %s: default index %g invalid for %d choices", p.Name, p.Default, len(p.Choices))
		}
	default:
		return fmt.Errorf("config: %s: unknown kind %d", p.Name, int(p.Kind))
	}
	return nil
}

// Denorm maps a normalized coordinate u in [0,1] to the parameter's concrete
// value: the (possibly rounded) numeric value, 0/1 for Bool, or a choice
// index for Categorical.
func (p Param) Denorm(u float64) float64 {
	if u < 0 {
		u = 0
	} else if u > 1 {
		u = 1
	}
	switch p.Kind {
	case Numeric:
		v := p.Min + u*(p.Max-p.Min)
		if p.Integer {
			v = math.Round(v)
		}
		return v
	case Bool:
		if u >= 0.5 {
			return 1
		}
		return 0
	case Categorical:
		idx := int(u * float64(len(p.Choices)))
		if idx >= len(p.Choices) {
			idx = len(p.Choices) - 1
		}
		return float64(idx)
	default:
		panic("config: unknown kind")
	}
}

// Norm maps a concrete value back into [0,1]. For Bool and Categorical the
// result is the center of the value's bucket so that Norm∘Denorm is the
// identity on bucket representatives.
func (p Param) Norm(v float64) float64 {
	switch p.Kind {
	case Numeric:
		return (v - p.Min) / (p.Max - p.Min)
	case Bool:
		if v >= 0.5 {
			return 0.75
		}
		return 0.25
	case Categorical:
		n := float64(len(p.Choices))
		return (v + 0.5) / n
	default:
		panic("config: unknown kind")
	}
}

// ValueString renders a concrete value with its unit or choice label.
func (p Param) ValueString(v float64) string {
	switch p.Kind {
	case Numeric:
		if p.Integer {
			if p.Unit != "" {
				return fmt.Sprintf("%d %s", int(v), p.Unit)
			}
			return fmt.Sprintf("%d", int(v))
		}
		if p.Unit != "" {
			return fmt.Sprintf("%.3g %s", v, p.Unit)
		}
		return fmt.Sprintf("%.3g", v)
	case Bool:
		if v >= 0.5 {
			return "true"
		}
		return "false"
	case Categorical:
		idx := int(v)
		if idx < 0 || idx >= len(p.Choices) {
			return fmt.Sprintf("choice(%d)", idx)
		}
		return p.Choices[idx]
	default:
		return fmt.Sprintf("%g", v)
	}
}

// Space is an ordered, immutable collection of parameters defining both the
// concrete configuration encoding and the normalized [0,1]^d action space.
type Space struct {
	params []Param
	index  map[string]int
}

// NewSpace validates the parameter list and builds a space. Parameter names
// must be unique.
func NewSpace(params []Param) (*Space, error) {
	s := &Space{params: make([]Param, len(params)), index: make(map[string]int, len(params))}
	copy(s.params, params)
	for i, p := range s.params {
		if err := p.validate(); err != nil {
			return nil, err
		}
		if _, dup := s.index[p.Name]; dup {
			return nil, fmt.Errorf("config: duplicate parameter %q", p.Name)
		}
		s.index[p.Name] = i
	}
	return s, nil
}

// MustNewSpace is NewSpace that panics on error; intended for package-level
// space literals that are validated by tests.
func MustNewSpace(params []Param) *Space {
	s, err := NewSpace(params)
	if err != nil {
		panic(err)
	}
	return s
}

// Dim returns the number of parameters (the action dimensionality).
func (s *Space) Dim() int { return len(s.params) }

// Params returns a copy of the parameter specs.
func (s *Space) Params() []Param {
	out := make([]Param, len(s.params))
	copy(out, s.params)
	return out
}

// Param returns the spec at position i.
func (s *Space) Param(i int) Param { return s.params[i] }

// Lookup returns the position of the named parameter.
func (s *Space) Lookup(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// CountByComponent returns the number of parameters per component, the
// Table-2 accounting.
func (s *Space) CountByComponent() map[string]int {
	out := make(map[string]int)
	for _, p := range s.params {
		out[p.Component]++
	}
	return out
}

// Denormalize maps a normalized action u in [0,1]^d to concrete values.
func (s *Space) Denormalize(u []float64) []float64 {
	s.checkDim(u)
	v := make([]float64, len(u))
	for i, p := range s.params {
		v[i] = p.Denorm(u[i])
	}
	return v
}

// Normalize maps concrete values back into [0,1]^d.
func (s *Space) Normalize(v []float64) []float64 {
	s.checkDim(v)
	u := make([]float64, len(v))
	for i, p := range s.params {
		u[i] = p.Norm(v[i])
	}
	return u
}

// DefaultValues returns the concrete default configuration.
func (s *Space) DefaultValues() []float64 {
	v := make([]float64, len(s.params))
	for i, p := range s.params {
		v[i] = p.Default
	}
	return v
}

// DefaultAction returns the default configuration as a normalized action.
func (s *Space) DefaultAction() []float64 {
	return s.Normalize(s.DefaultValues())
}

// RandomAction returns a uniformly random normalized action.
func (s *Space) RandomAction(rng *rand.Rand) []float64 {
	u := make([]float64, len(s.params))
	for i := range u {
		u[i] = rng.Float64()
	}
	return u
}

// ClipAction clamps every coordinate of u into [0,1] in place and returns u.
// The paper applies this when a model trained on one cluster recommends
// values outside a new environment's scope (§5.3.2).
func (s *Space) ClipAction(u []float64) []float64 {
	s.checkDim(u)
	for i, x := range u {
		if x < 0 {
			u[i] = 0
		} else if x > 1 {
			u[i] = 1
		}
	}
	return u
}

// Describe renders a concrete configuration as "name=value" lines.
func (s *Space) Describe(values []float64) string {
	s.checkDim(values)
	var b strings.Builder
	for i, p := range s.params {
		fmt.Fprintf(&b, "%s=%s\n", p.Name, p.ValueString(values[i]))
	}
	return b.String()
}

func (s *Space) checkDim(v []float64) {
	if len(v) != len(s.params) {
		panic(fmt.Sprintf("config: vector length %d, want %d", len(v), len(s.params)))
	}
}
