package config

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func testSpace(t *testing.T) *Space {
	t.Helper()
	s, err := NewSpace([]Param{
		{Name: "num", Component: "a", Kind: Numeric, Min: 10, Max: 110, Default: 20, Unit: "MB"},
		{Name: "int", Component: "a", Kind: Numeric, Min: 1, Max: 9, Default: 3, Integer: true},
		{Name: "flag", Component: "b", Kind: Bool, Default: 1},
		{Name: "cat", Component: "b", Kind: Categorical, Choices: []string{"x", "y", "z"}, Default: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSpaceValidation(t *testing.T) {
	bad := [][]Param{
		{{Name: "", Kind: Numeric, Min: 0, Max: 1}},
		{{Name: "p", Kind: Numeric, Min: 1, Max: 1}},
		{{Name: "p", Kind: Numeric, Min: 0, Max: 1, Default: 2}},
		{{Name: "p", Kind: Bool, Default: 0.5}},
		{{Name: "p", Kind: Categorical, Choices: []string{"only"}}},
		{{Name: "p", Kind: Categorical, Choices: []string{"a", "b"}, Default: 2}},
		{{Name: "p", Kind: Kind(9)}},
		{
			{Name: "p", Kind: Bool},
			{Name: "p", Kind: Bool},
		},
	}
	for i, params := range bad {
		if _, err := NewSpace(params); err == nil {
			t.Errorf("case %d: invalid space accepted", i)
		}
	}
}

func TestMustNewSpacePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewSpace did not panic")
		}
	}()
	MustNewSpace([]Param{{Name: "", Kind: Numeric}})
}

func TestDimAndLookup(t *testing.T) {
	s := testSpace(t)
	if s.Dim() != 4 {
		t.Fatalf("Dim = %d", s.Dim())
	}
	if i, ok := s.Lookup("flag"); !ok || i != 2 {
		t.Fatalf("Lookup flag = %d,%v", i, ok)
	}
	if _, ok := s.Lookup("missing"); ok {
		t.Fatal("Lookup found missing parameter")
	}
	if s.Param(0).Name != "num" {
		t.Fatal("Param(0) wrong")
	}
}

func TestParamsIsCopy(t *testing.T) {
	s := testSpace(t)
	ps := s.Params()
	ps[0].Name = "mutated"
	if s.Param(0).Name != "num" {
		t.Fatal("Params leaked internal storage")
	}
}

func TestCountByComponent(t *testing.T) {
	s := testSpace(t)
	c := s.CountByComponent()
	if c["a"] != 2 || c["b"] != 2 {
		t.Fatalf("CountByComponent = %v", c)
	}
}

func TestDenormNumeric(t *testing.T) {
	s := testSpace(t)
	v := s.Denormalize([]float64{0, 0.5, 0, 0})
	if v[0] != 10 {
		t.Fatalf("u=0 -> %v, want min", v[0])
	}
	v = s.Denormalize([]float64{1, 0.5, 0, 0})
	if v[0] != 110 {
		t.Fatalf("u=1 -> %v, want max", v[0])
	}
	v = s.Denormalize([]float64{0.5, 0.5, 0, 0})
	if v[0] != 60 {
		t.Fatalf("u=0.5 -> %v, want 60", v[0])
	}
}

func TestDenormIntegerRounds(t *testing.T) {
	s := testSpace(t)
	v := s.Denormalize([]float64{0, 0.49, 0, 0})
	if v[1] != float64(int(v[1])) {
		t.Fatalf("integer param = %v, not integral", v[1])
	}
}

func TestDenormBoolAndCat(t *testing.T) {
	s := testSpace(t)
	v := s.Denormalize([]float64{0, 0, 0.49, 0.99})
	if v[2] != 0 {
		t.Fatalf("bool(0.49) = %v", v[2])
	}
	if v[3] != 2 {
		t.Fatalf("cat(0.99) = %v", v[3])
	}
	v = s.Denormalize([]float64{0, 0, 0.51, 0.34})
	if v[2] != 1 {
		t.Fatalf("bool(0.51) = %v", v[2])
	}
	if v[3] != 1 {
		t.Fatalf("cat(0.34) = %v", v[3])
	}
}

func TestDenormClipsInput(t *testing.T) {
	s := testSpace(t)
	v := s.Denormalize([]float64{-3, 7, -1, 2})
	if v[0] != 10 || v[1] != 9 || v[2] != 0 || v[3] != 2 {
		t.Fatalf("out-of-range denorm = %v", v)
	}
}

func TestNormDenormRoundTripProperty(t *testing.T) {
	s := testSpace(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		u := s.RandomAction(rng)
		v := s.Denormalize(u)
		v2 := s.Denormalize(s.Normalize(v))
		for i := range v {
			if v[i] != v2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultRoundTrip(t *testing.T) {
	s := testSpace(t)
	dv := s.DefaultValues()
	want := []float64{20, 3, 1, 2}
	for i := range want {
		if dv[i] != want[i] {
			t.Fatalf("DefaultValues = %v", dv)
		}
	}
	back := s.Denormalize(s.DefaultAction())
	for i := range want {
		if back[i] != want[i] {
			t.Fatalf("DefaultAction round trip = %v", back)
		}
	}
}

func TestRandomActionInBounds(t *testing.T) {
	s := testSpace(t)
	rng := rand.New(rand.NewSource(1))
	for k := 0; k < 100; k++ {
		u := s.RandomAction(rng)
		for _, x := range u {
			if x < 0 || x >= 1 {
				t.Fatalf("random action coord %v", x)
			}
		}
	}
}

func TestClipAction(t *testing.T) {
	s := testSpace(t)
	u := []float64{-0.5, 0.5, 1.5, 0.2}
	got := s.ClipAction(u)
	if got[0] != 0 || got[1] != 0.5 || got[2] != 1 || got[3] != 0.2 {
		t.Fatalf("ClipAction = %v", got)
	}
	if &got[0] != &u[0] {
		t.Fatal("ClipAction must operate in place")
	}
}

func TestDescribe(t *testing.T) {
	s := testSpace(t)
	out := s.Describe(s.DefaultValues())
	for _, want := range []string{"num=20 MB", "int=3", "flag=true", "cat=z"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Describe missing %q in:\n%s", want, out)
		}
	}
}

func TestValueStringEdge(t *testing.T) {
	p := Param{Name: "c", Kind: Categorical, Choices: []string{"a", "b"}}
	if got := p.ValueString(5); got != "choice(5)" {
		t.Fatalf("ValueString(5) = %q", got)
	}
	pn := Param{Name: "n", Kind: Numeric, Min: 0, Max: 1}
	if got := pn.ValueString(0.25); got != "0.25" {
		t.Fatalf("ValueString = %q", got)
	}
}

func TestKindString(t *testing.T) {
	if Numeric.String() != "numeric" || Bool.String() != "bool" || Categorical.String() != "categorical" {
		t.Fatal("Kind.String wrong")
	}
	if Kind(42).String() != "Kind(42)" {
		t.Fatal("unknown Kind.String wrong")
	}
}

func TestVectorLengthPanics(t *testing.T) {
	s := testSpace(t)
	defer func() {
		if recover() == nil {
			t.Fatal("short vector did not panic")
		}
	}()
	s.Denormalize([]float64{0.5})
}
