package config_test

import (
	"fmt"

	"deepcat/internal/config"
)

// A Space maps between the DRL agent's [0,1]^d actions and concrete
// configuration values.
func ExampleSpace() {
	space := config.MustNewSpace([]config.Param{
		{Name: "executor.memory", Component: "spark", Kind: config.Numeric,
			Min: 1, Max: 9, Default: 1, Integer: true, Unit: "GB"},
		{Name: "shuffle.compress", Component: "spark", Kind: config.Bool, Default: 1},
		{Name: "serializer", Component: "spark", Kind: config.Categorical,
			Choices: []string{"java", "kryo"}, Default: 0},
	})

	values := space.Denormalize([]float64{0.5, 0.2, 0.9})
	fmt.Print(space.Describe(values))

	// Round trip: concrete values normalize back to bucket centers.
	back := space.Denormalize(space.Normalize(values))
	fmt.Println(back[0] == values[0], back[1] == values[1], back[2] == values[2])
	// Output:
	// executor.memory=5 GB
	// shuffle.compress=false
	// serializer=kryo
	// true true true
}
