// Package chaos wraps any env.Environment in a deterministic, seeded fault
// injector, turning the infallible simulator into the hostile target a real
// cluster binding is: submitted jobs crash, straggle past deadlines, find
// the cluster temporarily unreachable, or come back with outlier or
// NaN/Inf-corrupted measurements. Every fault class is independently rated
// and the whole schedule is a pure function of (seed, call index), so a
// chaos run is exactly reproducible — the property the hardened online loop
// and the degraded-mode session tests are built on.
package chaos

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"deepcat/internal/config"
	"deepcat/internal/env"
)

// Compile-time checks: the wrapper satisfies both halves of the contract.
var (
	_ env.Environment    = (*Env)(nil)
	_ env.CtxEnvironment = (*Env)(nil)
)

// faultErr is a sentinel error that also names its fault class for the
// hardened loop's per-step fault reporting (core.faultName probes for the
// FaultKind method via errors.As).
type faultErr struct{ kind, msg string }

func (e *faultErr) Error() string     { return e.msg }
func (e *faultErr) FaultKind() string { return e.kind }

// Fault sentinels; callers classify injected failures with errors.Is.
var (
	// ErrCrashed marks an evaluation whose job crashed: no measurement
	// exists.
	ErrCrashed error = &faultErr{"crash", "chaos: job crashed"}
	// ErrUnavailable marks an evaluation attempted during a transient
	// environment-unavailability window (cluster manager down, network
	// partition).
	ErrUnavailable error = &faultErr{"unavailable", "chaos: environment unavailable"}
)

// Config rates each fault class independently. All rates are probabilities
// in [0, 1] per evaluation; the zero value injects nothing (the wrapper
// becomes a transparent pass-through).
type Config struct {
	// Seed drives the fault schedule; equal seeds (and equal rates) yield
	// identical schedules.
	Seed int64

	// CrashRate is the probability an evaluation fails with ErrCrashed.
	CrashRate float64
	// HangRate is the probability an evaluation straggles: the call blocks
	// for HangDuration (or until the caller's ctx deadline, whichever comes
	// first). A straggler that outlives the deadline surfaces as
	// ctx.Err(); one that completes returns its measurement late.
	HangRate float64
	// HangDuration is how long a straggler blocks (default 100ms).
	HangDuration time.Duration
	// OutlierRate is the probability a measurement comes back inflated by
	// OutlierFactor — a straggler whose runtime was measured, or a
	// mis-scaled metric.
	OutlierRate float64
	// OutlierFactor multiplies the execution time of an outlier
	// (default 10).
	OutlierFactor float64
	// CorruptRate is the probability a measurement comes back with NaN/Inf
	// poisoning: alternating calls corrupt the execution time (NaN), the
	// state vector (+Inf) and the metrics vector (NaN).
	CorruptRate float64

	// UnavailableEvery and UnavailableLen define deterministic
	// unavailability windows: evaluations with call index in
	// [k*UnavailableEvery, k*UnavailableEvery+UnavailableLen) for k >= 1
	// fail with ErrUnavailable. Zero disables windows.
	UnavailableEvery int
	UnavailableLen   int
}

func (c Config) withDefaults() Config {
	if c.HangDuration <= 0 {
		c.HangDuration = 100 * time.Millisecond
	}
	if c.OutlierFactor <= 0 {
		c.OutlierFactor = 10
	}
	return c
}

// Stats counts injected faults by class. Evals counts every EvaluateCtx (or
// Evaluate) call, including clean ones.
type Stats struct {
	Evals       int `json:"evals"`
	Crashes     int `json:"crashes"`
	Hangs       int `json:"hangs"`
	Outliers    int `json:"outliers"`
	Corruptions int `json:"corruptions"`
	Unavailable int `json:"unavailable"`
}

// Faults returns the total number of injected faults across all classes.
func (s Stats) Faults() int {
	return s.Crashes + s.Hangs + s.Outliers + s.Corruptions + s.Unavailable
}

// Env is the fault-injecting wrapper. It implements both halves of the
// evaluation contract; all methods are safe for concurrent use (the fault
// schedule is serialized under a mutex, so concurrent callers still observe
// one deterministic schedule by arrival order).
type Env struct {
	inner env.Environment
	cfg   Config

	mu    sync.Mutex
	rng   *rand.Rand
	calls int
	stats Stats
}

// Wrap builds a chaos wrapper around e with the given fault profile.
func Wrap(e env.Environment, cfg Config) *Env {
	cfg = cfg.withDefaults()
	return &Env{
		inner: e,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Space forwards to the wrapped environment.
func (c *Env) Space() *config.Space { return c.inner.Space() }

// Stats returns a snapshot of the fault counters.
func (c *Env) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// fault is one scheduled injection decision.
type fault struct {
	crash, hang, outlier, corrupt, unavailable bool
	corruptTarget                              int // rotates exec/state/metrics
}

// nextFault draws the call's fault decision. Exactly four uniform draws are
// consumed per call regardless of which rates are zero, so the schedule for
// any one fault class is independent of the others' rates.
func (c *Env) nextFault() fault {
	c.mu.Lock()
	defer c.mu.Unlock()
	idx := c.calls
	c.calls++
	c.stats.Evals++
	var f fault
	f.crash = c.rng.Float64() < c.cfg.CrashRate
	f.hang = c.rng.Float64() < c.cfg.HangRate
	f.outlier = c.rng.Float64() < c.cfg.OutlierRate
	f.corrupt = c.rng.Float64() < c.cfg.CorruptRate
	f.corruptTarget = idx % 3
	if c.cfg.UnavailableEvery > 0 && c.cfg.UnavailableLen > 0 && idx >= c.cfg.UnavailableEvery {
		if idx%c.cfg.UnavailableEvery < c.cfg.UnavailableLen {
			f.unavailable = true
		}
	}
	// Precedence: unavailability masks everything (the job never ran);
	// a crash masks measurement faults (there is nothing to corrupt).
	switch {
	case f.unavailable:
		f.crash, f.hang, f.outlier, f.corrupt = false, false, false, false
		c.stats.Unavailable++
	case f.crash:
		f.outlier, f.corrupt = false, false
		c.stats.Crashes++
	}
	if f.hang {
		c.stats.Hangs++
	}
	if f.outlier {
		c.stats.Outliers++
	}
	if f.corrupt {
		c.stats.Corruptions++
	}
	return f
}

// EvaluateCtx runs the configuration on the wrapped environment with the
// call's scheduled faults applied. Crashes and unavailability windows
// return errors; stragglers block (honoring ctx); outliers and corruptions
// return a successfully-measured-but-wrong outcome — the class the caller's
// sanitizer exists for.
func (c *Env) EvaluateCtx(ctx context.Context, u []float64) (env.Outcome, error) {
	f := c.nextFault()
	if f.unavailable {
		return env.Outcome{}, ErrUnavailable
	}
	if f.hang {
		select {
		case <-time.After(c.cfg.HangDuration):
		case <-ctx.Done():
			return env.Outcome{}, fmt.Errorf("chaos: straggler: %w", ctx.Err())
		}
	}
	if f.crash {
		return env.Outcome{}, ErrCrashed
	}
	o, err := env.EvaluateWithContext(ctx, c.inner, u)
	if err != nil {
		return env.Outcome{}, err
	}
	if f.outlier {
		o.ExecTime *= c.cfg.OutlierFactor
	}
	if f.corrupt {
		o = corrupt(o, f.corruptTarget)
	}
	return o, nil
}

// corrupt poisons one part of the outcome with a non-finite value,
// rotating the target so all three corruption shapes appear in a long run.
func corrupt(o env.Outcome, target int) env.Outcome {
	switch target % 3 {
	case 0:
		o.ExecTime = math.NaN()
	case 1:
		if len(o.State) > 0 {
			state := append([]float64(nil), o.State...)
			state[0] = math.Inf(1)
			o.State = state
		} else {
			o.ExecTime = math.Inf(1)
		}
	default:
		if len(o.Metrics) > 0 {
			metrics := append([]float64(nil), o.Metrics...)
			metrics[len(metrics)-1] = math.NaN()
			o.Metrics = metrics
		} else {
			o.ExecTime = math.NaN()
		}
	}
	return o
}

// Evaluate adapts the fallible path to the legacy infallible contract for
// callers that predate EvaluateCtx: errors become failed outcomes priced at
// the default execution time (a crashed or unreachable run still wasted
// roughly one run's worth of wall clock).
func (c *Env) Evaluate(u []float64) env.Outcome {
	o, err := c.EvaluateCtx(context.Background(), u)
	if err != nil {
		return env.Outcome{
			ExecTime: c.inner.DefaultTime(),
			Failed:   true,
			State:    c.inner.IdleState(),
		}
	}
	return o
}

// DefaultTime forwards to the wrapped environment.
func (c *Env) DefaultTime() float64 { return c.inner.DefaultTime() }

// IdleState forwards to the wrapped environment.
func (c *Env) IdleState() []float64 { return c.inner.IdleState() }

// StateDim forwards to the wrapped environment.
func (c *Env) StateDim() int { return c.inner.StateDim() }

// MetricsDim forwards to the wrapped environment.
func (c *Env) MetricsDim() int { return c.inner.MetricsDim() }

// Label names the wrapped environment with a chaos marker.
func (c *Env) Label() string { return c.inner.Label() + "+chaos" }
