package chaos

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"
	"time"

	"deepcat/internal/env"
	"deepcat/internal/sparksim"
)

func testEnv() *env.SparkEnv {
	sim := sparksim.NewSimulator(sparksim.ClusterA(), 1)
	return env.NewSparkEnv(sim, sparksim.AllPairs()[0].Workload, 0)
}

func midAction(e env.Environment) []float64 {
	u := make([]float64, e.Space().Dim())
	for i := range u {
		u[i] = 0.5
	}
	return u
}

// faultTrace records one run's fault schedule for determinism comparison.
type faultTrace struct {
	Kind string // "ok", "crash", "unavailable", "corrupt", "outlier"
	Exec float64
}

func runSchedule(t *testing.T, seed int64, n int) ([]faultTrace, Stats) {
	t.Helper()
	inner := testEnv()
	ce := Wrap(inner, Config{
		Seed:             seed,
		CrashRate:        0.2,
		OutlierRate:      0.2,
		CorruptRate:      0.2,
		UnavailableEvery: 7,
		UnavailableLen:   1,
	})
	u := midAction(inner)
	out := make([]faultTrace, 0, n)
	for i := 0; i < n; i++ {
		o, err := ce.EvaluateCtx(context.Background(), u)
		ft := faultTrace{Kind: "ok", Exec: o.ExecTime}
		switch {
		case errors.Is(err, ErrCrashed):
			ft.Kind = "crash"
		case errors.Is(err, ErrUnavailable):
			ft.Kind = "unavailable"
		case err != nil:
			t.Fatalf("eval %d: unexpected error %v", i, err)
		case env.CheckFinite(o) != nil:
			ft.Kind = "corrupt"
		}
		if math.IsNaN(ft.Exec) {
			ft.Exec = -1 // NaN != NaN; normalize for comparison
		}
		out = append(out, ft)
	}
	return out, ce.Stats()
}

func TestSameSeedSameSchedule(t *testing.T) {
	a, sa := runSchedule(t, 42, 60)
	b, sb := runSchedule(t, 42, 60)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules:\n%v\n%v", a, b)
	}
	if sa != sb {
		t.Fatalf("same seed produced different stats: %+v vs %+v", sa, sb)
	}
	if sa.Faults() == 0 {
		t.Fatal("no faults injected at 20% rates over 60 evals")
	}
}

func TestDifferentSeedDifferentSchedule(t *testing.T) {
	a, _ := runSchedule(t, 1, 60)
	b, _ := runSchedule(t, 2, 60)
	if reflect.DeepEqual(a, b) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestZeroConfigIsTransparent(t *testing.T) {
	inner := testEnv()
	ce := Wrap(inner, Config{Seed: 1})
	u := midAction(inner)
	direct := inner.Evaluate(u)
	wrapped, err := ce.EvaluateCtx(context.Background(), u)
	if err != nil {
		t.Fatal(err)
	}
	if wrapped.ExecTime != direct.ExecTime {
		t.Fatalf("pass-through exec %g != direct %g", wrapped.ExecTime, direct.ExecTime)
	}
	if st := ce.Stats(); st.Faults() != 0 || st.Evals != 1 {
		t.Fatalf("zero config stats = %+v", st)
	}
}

func TestCrashRateOne(t *testing.T) {
	inner := testEnv()
	ce := Wrap(inner, Config{Seed: 1, CrashRate: 1})
	_, err := ce.EvaluateCtx(context.Background(), midAction(inner))
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("CrashRate 1 = %v, want ErrCrashed", err)
	}
}

func TestUnavailabilityWindow(t *testing.T) {
	inner := testEnv()
	ce := Wrap(inner, Config{Seed: 1, UnavailableEvery: 3, UnavailableLen: 1})
	u := midAction(inner)
	var unavailableAt []int
	for i := 0; i < 9; i++ {
		if _, err := ce.EvaluateCtx(context.Background(), u); errors.Is(err, ErrUnavailable) {
			unavailableAt = append(unavailableAt, i)
		}
	}
	want := []int{3, 6}
	if !reflect.DeepEqual(unavailableAt, want) {
		t.Fatalf("unavailable at %v, want %v", unavailableAt, want)
	}
}

func TestStragglerHonorsDeadline(t *testing.T) {
	inner := testEnv()
	ce := Wrap(inner, Config{Seed: 1, HangRate: 1, HangDuration: time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := ce.EvaluateCtx(ctx, midAction(inner))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("straggler = %v, want DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Fatalf("straggler blocked %v past a 20ms deadline", d)
	}
}

func TestCorruptionProducesNonFinite(t *testing.T) {
	inner := testEnv()
	ce := Wrap(inner, Config{Seed: 1, CorruptRate: 1})
	u := midAction(inner)
	for i := 0; i < 3; i++ { // hit all three rotation targets
		o, err := ce.EvaluateCtx(context.Background(), u)
		if err != nil {
			t.Fatal(err)
		}
		if env.CheckFinite(o) == nil {
			t.Fatalf("eval %d: corruption produced a finite outcome %+v", i, o)
		}
	}
}

func TestOutlierInflation(t *testing.T) {
	inner := testEnv()
	u := midAction(inner)
	clean := inner.Evaluate(u).ExecTime
	ce := Wrap(inner, Config{Seed: 1, OutlierRate: 1, OutlierFactor: 10})
	o, err := ce.EvaluateCtx(context.Background(), u)
	if err != nil {
		t.Fatal(err)
	}
	// The simulator is noisy; an exact 10x only holds in expectation, but
	// a 10x inflation is unmistakably larger than any noise band.
	if o.ExecTime < 5*clean {
		t.Fatalf("outlier exec %g not inflated vs clean %g", o.ExecTime, clean)
	}
}

func TestLegacyEvaluateConvertsErrors(t *testing.T) {
	inner := testEnv()
	ce := Wrap(inner, Config{Seed: 1, CrashRate: 1})
	o := ce.Evaluate(midAction(inner))
	if !o.Failed {
		t.Fatalf("legacy Evaluate of a crash = %+v, want Failed", o)
	}
	if o.ExecTime != inner.DefaultTime() {
		t.Fatalf("crashed run priced at %g, want default %g", o.ExecTime, inner.DefaultTime())
	}
}
