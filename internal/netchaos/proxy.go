package netchaos

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Stats counts what the proxy did to traffic. All fields are cumulative
// since Start; reads are atomic snapshots of independently updated
// counters (not a consistent cut, which is fine for reporting).
type Stats struct {
	Accepted     int64 `json:"accepted"`       // connections accepted from clients
	Refused      int64 `json:"refused"`        // connections reset at accept (reset/partition windows)
	Resets       int64 `json:"resets"`         // established connections torn down mid-stream
	BytesUp      int64 `json:"bytes_up"`       // client→upstream bytes forwarded
	BytesDown    int64 `json:"bytes_down"`     // upstream→client bytes forwarded
	BytesDropped int64 `json:"bytes_dropped"`  // bytes black-holed by partition windows
	DelayedChunk int64 `json:"delayed_chunks"` // chunks that waited on a latency/throttle/trickle rule
}

// Proxy is one fault-injected TCP relay: it listens on Addr() and forwards
// to the upstream address, applying the Schedule's active rules to every
// accept and every copied chunk. One Proxy guards one upstream; a fleet
// test runs one Proxy per shard.
type Proxy struct {
	upstream string
	schedule Schedule
	ln       net.Listener
	start    time.Time
	seq      atomic.Int64 // accept sequence, parameterizes per-conn rng

	accepted     atomic.Int64
	refused      atomic.Int64
	resets       atomic.Int64
	bytesUp      atomic.Int64
	bytesDown    atomic.Int64
	bytesDropped atomic.Int64
	delayed      atomic.Int64

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// Start listens on listenAddr (e.g. "127.0.0.1:0") and begins relaying to
// upstream under the schedule. The fault clock starts now: rule offsets
// are measured from this call.
func Start(listenAddr, upstream string, sched Schedule) (*Proxy, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("netchaos: listen %s: %w", listenAddr, err)
	}
	p := &Proxy{
		upstream: upstream,
		schedule: sched,
		ln:       ln,
		start:    time.Now(),
		conns:    make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address — point clients and peer lists
// here instead of at the upstream.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Schedule returns the fault plan the proxy is executing.
func (p *Proxy) Schedule() Schedule { return p.schedule }

// Stats returns a snapshot of the traffic counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Accepted:     p.accepted.Load(),
		Refused:      p.refused.Load(),
		Resets:       p.resets.Load(),
		BytesUp:      p.bytesUp.Load(),
		BytesDown:    p.bytesDown.Load(),
		BytesDropped: p.bytesDropped.Load(),
		DelayedChunk: p.delayed.Load(),
	}
}

// Close stops accepting, tears down every live connection, and waits for
// the relay goroutines to drain.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

// elapsed is the schedule clock: the offset since Start.
func (p *Proxy) elapsed() time.Duration { return time.Since(p.start) }

func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// abort closes a TCP connection with RST rather than FIN so the peer sees
// "connection reset by peer" — the signature of a mid-stream network
// failure, distinct from a graceful close.
func abort(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Close()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		seq := p.seq.Add(1)
		// Reset windows refuse new connections outright; partition windows
		// accept them (the SYN handshake happens below IP filtering in a
		// real partition too — the local stack completes it) but the relay
		// below will black-hole every byte.
		if p.anyActive(KindReset) {
			p.refused.Add(1)
			abort(client)
			continue
		}
		p.accepted.Add(1)
		p.wg.Add(1)
		go p.relay(client, seq)
	}
}

func (p *Proxy) anyActive(k Kind) bool {
	for _, r := range p.schedule.ActiveAt(p.elapsed()) {
		if r.Kind == k {
			return true
		}
	}
	return false
}

// relay dials upstream and runs the two directional copiers. Each
// connection gets its own rng derived from (schedule seed, accept seq) so
// jitter draws replay per connection regardless of goroutine interleaving.
func (p *Proxy) relay(client net.Conn, seq int64) {
	defer p.wg.Done()
	if !p.track(client) {
		client.Close()
		return
	}
	defer p.untrack(client)
	defer client.Close()

	up, err := net.DialTimeout("tcp", p.upstream, 5*time.Second)
	if err != nil {
		abort(client)
		return
	}
	if !p.track(up) {
		up.Close()
		return
	}
	defer p.untrack(up)
	defer up.Close()

	// Independent rngs per direction keep the draw sequences deterministic
	// even though the copiers interleave arbitrarily.
	upRNG := rand.New(rand.NewSource(p.schedule.Seed ^ seq<<1))
	downRNG := rand.New(rand.NewSource(p.schedule.Seed ^ (seq<<1 | 1)))

	var cwg sync.WaitGroup
	cwg.Add(2)
	go func() {
		defer cwg.Done()
		p.copyDir(up, client, upRNG, true)
		// Half-close toward upstream so request bodies end properly.
		if tc, ok := up.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
	}()
	go func() {
		defer cwg.Done()
		p.copyDir(client, up, downRNG, false)
		if tc, ok := client.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
	}()
	cwg.Wait()
}

// copyDir pumps src→dst in chunks, applying the currently active rules to
// each chunk: reset tears the connection down, partitions drop the bytes,
// trickle dribbles them one byte per interval, latency sleeps, throttle
// paces by size. Rules are re-evaluated per chunk so windows engage and
// heal mid-connection.
func (p *Proxy) copyDir(dst, src net.Conn, rng *rand.Rand, toUpstream bool) {
	buf := make([]byte, 16<<10)
	for {
		n, rerr := src.Read(buf)
		if n > 0 {
			if !p.forwardChunk(dst, src, buf[:n], rng, toUpstream) {
				return
			}
		}
		if rerr != nil {
			return
		}
	}
}

func (p *Proxy) forwardChunk(dst, src net.Conn, chunk []byte, rng *rand.Rand, toUpstream bool) bool {
	var (
		delay    time.Duration
		throttle int
		trickle  time.Duration
		drop     bool
	)
	for _, r := range p.schedule.ActiveAt(p.elapsed()) {
		switch r.Kind {
		case KindReset:
			p.resets.Add(1)
			abort(dst)
			abort(src)
			return false
		case KindPartition:
			drop = true
		case KindPartitionIn:
			if toUpstream {
				drop = true
			}
		case KindPartitionOut:
			if !toUpstream {
				drop = true
			}
		case KindLatency:
			d := r.Latency
			if r.Jitter > 0 {
				d += time.Duration(rng.Int63n(int64(2*r.Jitter))) - r.Jitter
			}
			if d > delay {
				delay = d
			}
		case KindThrottle:
			if r.BytesPerSec > 0 && (throttle == 0 || r.BytesPerSec < throttle) {
				throttle = r.BytesPerSec
			}
		case KindTrickle:
			if r.Interval > trickle {
				trickle = r.Interval
			}
		}
	}
	if drop {
		p.bytesDropped.Add(int64(len(chunk)))
		return true // swallow silently; the peer just sees a stall
	}
	if delay > 0 {
		p.delayed.Add(1)
		time.Sleep(delay)
	}
	if throttle > 0 {
		p.delayed.Add(1)
		time.Sleep(time.Duration(float64(len(chunk)) / float64(throttle) * float64(time.Second)))
	}
	if trickle > 0 {
		p.delayed.Add(1)
		for i := range chunk {
			time.Sleep(trickle)
			if _, err := dst.Write(chunk[i : i+1]); err != nil {
				return false
			}
			p.countBytes(1, toUpstream)
		}
		return true
	}
	if _, err := dst.Write(chunk); err != nil {
		return false
	}
	p.countBytes(len(chunk), toUpstream)
	return true
}

func (p *Proxy) countBytes(n int, toUpstream bool) {
	if toUpstream {
		p.bytesUp.Add(int64(n))
	} else {
		p.bytesDown.Add(int64(n))
	}
}

// WaitHealthy blocks until the schedule has no active fault windows or the
// context expires — used by tests and scripts to line up "after the
// partition heals" assertions with the schedule rather than sleeping blind.
func (p *Proxy) WaitHealthy(ctx context.Context) error {
	for {
		if len(p.schedule.ActiveAt(p.elapsed())) == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// ErrClosed is returned by operations on a closed proxy. (Reserved for
// future accessors; Close itself is idempotent.)
var ErrClosed = errors.New("netchaos: proxy closed")

var _ io.Closer = (*Proxy)(nil)
