package netchaos

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// Same (name, seed, total) must yield a byte-identical schedule — the
// determinism contract that makes chaos runs replayable.
func TestProfileDeterministic(t *testing.T) {
	for _, name := range ProfileNames {
		a, err := Profile(name, 42, 30*time.Second)
		if err != nil {
			t.Fatalf("Profile(%q): %v", name, err)
		}
		b, err := Profile(name, 42, 30*time.Second)
		if err != nil {
			t.Fatalf("Profile(%q) second call: %v", name, err)
		}
		ja, _ := json.Marshal(a)
		jb, _ := json.Marshal(b)
		if !bytes.Equal(ja, jb) {
			t.Fatalf("profile %q not deterministic:\n%s\n%s", name, ja, jb)
		}
		if len(a.Rules) == 0 {
			t.Fatalf("profile %q produced no rules", name)
		}
	}
}

// Different seeds must actually vary the schedule (otherwise the seed is
// decorative and distinct CI runs would all exercise one timeline).
func TestProfileSeedVaries(t *testing.T) {
	a, _ := Profile("mixed", 1, 30*time.Second)
	b, _ := Profile("mixed", 2, 30*time.Second)
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if bytes.Equal(ja, jb) {
		t.Fatal("seeds 1 and 2 produced identical mixed schedules")
	}
}

func TestProfileUnknown(t *testing.T) {
	if _, err := Profile("nope", 1, time.Second); err == nil {
		t.Fatal("unknown profile did not error")
	}
}

func TestRuleWindows(t *testing.T) {
	r := Rule{Kind: KindLatency, Start: 2 * time.Second, Duration: 3 * time.Second}
	for at, want := range map[time.Duration]bool{
		0:               false,
		2 * time.Second: true,
		4 * time.Second: true,
		5 * time.Second: false,
	} {
		if got := r.activeAt(at); got != want {
			t.Errorf("activeAt(%v) = %v, want %v", at, got, want)
		}
	}
	forever := Rule{Kind: KindReset, Start: time.Second}
	if !forever.activeAt(time.Hour) {
		t.Error("zero-duration rule should never heal")
	}
}

// startUpstream runs a trivial HTTP echo upstream for proxy tests.
func startUpstream(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		w.Write(body)
		if len(body) == 0 {
			io.WriteString(w, "ok")
		}
	}))
	t.Cleanup(srv.Close)
	return srv
}

func proxyFor(t *testing.T, upstream string, sched Schedule) *Proxy {
	t.Helper()
	p, err := Start("127.0.0.1:0", upstream, sched)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func get(client *http.Client, url string) (string, error) {
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

// A clean schedule must pass traffic through untouched.
func TestProxyPassthrough(t *testing.T) {
	up := startUpstream(t)
	p := proxyFor(t, up.Listener.Addr().String(), Schedule{Seed: 1})
	body, err := get(http.DefaultClient, "http://"+p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if body != "ok" {
		t.Fatalf("body = %q", body)
	}
	st := p.Stats()
	if st.Accepted != 1 || st.BytesUp == 0 || st.BytesDown == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// A latency window must measurably slow the request, and traffic after
// the window heals must be fast again.
func TestProxyLatencyWindowHeals(t *testing.T) {
	up := startUpstream(t)
	sched := Schedule{Seed: 7, Rules: []Rule{{
		Kind: KindLatency, Start: 0, Duration: 400 * time.Millisecond,
		Latency: 80 * time.Millisecond,
	}}}
	p := proxyFor(t, up.Listener.Addr().String(), sched)

	t0 := time.Now()
	if _, err := get(http.DefaultClient, "http://"+p.Addr()); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d < 80*time.Millisecond {
		t.Fatalf("request under latency window took only %v", d)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := p.WaitHealthy(ctx); err != nil {
		t.Fatal(err)
	}
	t0 = time.Now()
	if _, err := get(http.DefaultClient, "http://"+p.Addr()); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d > 60*time.Millisecond {
		t.Fatalf("healed request still slow: %v", d)
	}
	if p.Stats().DelayedChunk == 0 {
		t.Fatal("no chunks recorded as delayed")
	}
}

// A reset window must refuse new connections; after it heals connections
// succeed again.
func TestProxyResetWindow(t *testing.T) {
	up := startUpstream(t)
	sched := Schedule{Seed: 7, Rules: []Rule{{
		Kind: KindReset, Start: 0, Duration: 300 * time.Millisecond,
	}}}
	p := proxyFor(t, up.Listener.Addr().String(), sched)

	// No keep-alive reuse: each attempt must dial fresh to hit the accept path.
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	if _, err := get(client, "http://"+p.Addr()); err == nil {
		t.Fatal("request during reset window succeeded")
	}
	if p.Stats().Refused == 0 {
		t.Fatal("refused count not incremented")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := p.WaitHealthy(ctx); err != nil {
		t.Fatal(err)
	}
	if body, err := get(client, "http://"+p.Addr()); err != nil || body != "ok" {
		t.Fatalf("post-heal request: body=%q err=%v", body, err)
	}
}

// A full partition black-holes bytes: the connection is accepted but the
// request stalls until the client's deadline fires. After the window the
// link must serve again.
func TestProxyPartitionBlackHole(t *testing.T) {
	up := startUpstream(t)
	sched := Schedule{Seed: 7, Rules: []Rule{{
		Kind: KindPartition, Start: 0, Duration: 400 * time.Millisecond,
	}}}
	p := proxyFor(t, up.Listener.Addr().String(), sched)

	client := &http.Client{
		Timeout:   150 * time.Millisecond,
		Transport: &http.Transport{DisableKeepAlives: true},
	}
	if _, err := get(client, "http://"+p.Addr()); err == nil {
		t.Fatal("request through full partition succeeded")
	}
	if p.Stats().BytesDropped == 0 {
		t.Fatal("no bytes recorded as dropped")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := p.WaitHealthy(ctx); err != nil {
		t.Fatal(err)
	}
	slow := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	if body, err := get(slow, "http://"+p.Addr()); err != nil || body != "ok" {
		t.Fatalf("post-heal request: body=%q err=%v", body, err)
	}
}

// Asymmetric partition: requests vanish upstream (partition_in) so the
// client times out, but the reverse direction alone doesn't break a
// request that never needs it.
func TestProxyAsymmetricPartition(t *testing.T) {
	up := startUpstream(t)
	sched := Schedule{Seed: 7, Rules: []Rule{{
		Kind: KindPartitionIn, Start: 0, Duration: 300 * time.Millisecond,
	}}}
	p := proxyFor(t, up.Listener.Addr().String(), sched)
	client := &http.Client{
		Timeout:   150 * time.Millisecond,
		Transport: &http.Transport{DisableKeepAlives: true},
	}
	if _, err := get(client, "http://"+p.Addr()); err == nil {
		t.Fatal("request through inbound partition succeeded")
	}
	st := p.Stats()
	if st.BytesDropped == 0 {
		t.Fatalf("stats = %+v: inbound bytes not dropped", st)
	}
}

// Trickle slows a small response to ~one byte per interval.
func TestProxyTrickle(t *testing.T) {
	up := startUpstream(t)
	sched := Schedule{Seed: 7, Rules: []Rule{{
		Kind: KindTrickle, Start: 0, Duration: 5 * time.Second,
		Interval: 2 * time.Millisecond,
	}}}
	p := proxyFor(t, up.Listener.Addr().String(), sched)
	t0 := time.Now()
	body, err := get(http.DefaultClient, "http://"+p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if body != "ok" {
		t.Fatalf("body = %q", body)
	}
	// Request + response are each dozens of bytes; at 2ms/byte the round
	// trip cannot be instant.
	if d := time.Since(t0); d < 50*time.Millisecond {
		t.Fatalf("trickled request took only %v", d)
	}
}

// Mid-stream reset: a window that opens after the connection is
// established must tear it down at the next chunk.
func TestProxyMidStreamReset(t *testing.T) {
	// Raw TCP echo upstream so we control the framing.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(c, c)
		}
	}()
	sched := Schedule{Seed: 7, Rules: []Rule{{
		Kind: KindReset, Start: 200 * time.Millisecond, Duration: 0,
	}}}
	p := proxyFor(t, ln.Addr().String(), sched)

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Healthy echo before the window opens.
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	time.Sleep(250 * time.Millisecond)
	// The reset window is now open: the next chunk must kill the stream.
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	conn.Write([]byte("ping"))
	if _, err := io.ReadFull(conn, buf); err == nil {
		t.Fatal("echo survived an active reset window")
	}
	if p.Stats().Resets == 0 {
		t.Fatal("mid-stream reset not counted")
	}
}

// Proxy.Close must be idempotent and kill live relays.
func TestProxyClose(t *testing.T) {
	up := startUpstream(t)
	p := proxyFor(t, up.Listener.Addr().String(), Schedule{Seed: 1})
	if _, err := get(http.DefaultClient, "http://"+p.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal("second Close errored:", err)
	}
	if _, err := get(&http.Client{Timeout: 200 * time.Millisecond}, "http://"+p.Addr()); err == nil {
		t.Fatal("request to closed proxy succeeded")
	}
}
