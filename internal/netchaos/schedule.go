// Package netchaos is a deterministic, seeded TCP fault-injection proxy —
// the network-layer counterpart of internal/chaos. Where chaos corrupts a
// single process's *environment* (runtimes, crashes, NaNs), netchaos sits
// between fleet members (and between clients and the fleet) and injects the
// failures a real datacenter network produces: added latency and jitter,
// bandwidth throttling, connection resets, full and asymmetric partitions,
// and slow-loris byte trickle.
//
// Everything is replayable. A Schedule is a plain list of timed fault
// windows, and Profile expands a (name, seed, duration) triple into one via
// its own rand.Rand — the same seed always yields the byte-identical
// schedule, so a CI chaos run that fails can be re-run locally against the
// exact same fault timeline. Per-connection jitter draws are likewise a
// pure function of the schedule seed and the connection's accept sequence
// number, never of shared global randomness.
//
// The proxy itself (see proxy.go) is a plain TCP relay that consults the
// schedule on every accept and every copied chunk, so faults engage and
// heal mid-connection exactly when their windows say so.
package netchaos

import (
	"fmt"
	"math/rand"
	"time"
)

// Kind names one injectable fault class.
type Kind string

const (
	// KindLatency delays every copied chunk by Latency ± Jitter.
	KindLatency Kind = "latency"
	// KindThrottle caps forwarded bandwidth at BytesPerSec (both directions).
	KindThrottle Kind = "throttle"
	// KindReset closes connections with RST: new connections at accept,
	// established ones at their next copied chunk.
	KindReset Kind = "reset"
	// KindPartition black-holes the link in both directions: bytes are read
	// and silently dropped, so peers see stalls and deadline expiries — the
	// packet-loss signature of a real partition, not a clean close.
	KindPartition Kind = "partition"
	// KindPartitionIn black-holes only client→upstream bytes (asymmetric
	// partition: requests vanish, the return path stays up).
	KindPartitionIn Kind = "partition_in"
	// KindPartitionOut black-holes only upstream→client bytes (responses
	// vanish).
	KindPartitionOut Kind = "partition_out"
	// KindTrickle forwards one byte per Interval — a slow-loris link that
	// keeps connections alive while starving them.
	KindTrickle Kind = "trickle"
)

// Rule is one fault window, active for [Start, Start+Duration) measured
// from the proxy's start instant. Zero Duration means "until the schedule's
// end of time" (never heals).
type Rule struct {
	Kind     Kind          `json:"kind"`
	Start    time.Duration `json:"start"`
	Duration time.Duration `json:"duration"`

	// Latency and Jitter parameterize KindLatency: each chunk waits
	// Latency + U(-Jitter, +Jitter), drawn from the connection's seeded rng.
	Latency time.Duration `json:"latency,omitempty"`
	Jitter  time.Duration `json:"jitter,omitempty"`
	// BytesPerSec parameterizes KindThrottle.
	BytesPerSec int `json:"bytes_per_sec,omitempty"`
	// Interval parameterizes KindTrickle: the per-byte delay.
	Interval time.Duration `json:"interval,omitempty"`
}

// activeAt reports whether the rule's window covers the offset.
func (r Rule) activeAt(at time.Duration) bool {
	if at < r.Start {
		return false
	}
	return r.Duration <= 0 || at < r.Start+r.Duration
}

// Schedule is a deterministic fault plan: the timed rules plus the seed
// that parameterizes every per-connection random draw (jitter). Two
// schedules with equal fields produce bit-identical fault behavior modulo
// OS scheduling; the schedule itself is pure data and can be serialized
// into a chaos report for replay.
type Schedule struct {
	Seed  int64  `json:"seed"`
	Rules []Rule `json:"rules"`
}

// ActiveAt returns the rules whose windows cover the offset since proxy
// start. The returned slice aliases s.Rules entries (rules are values).
func (s Schedule) ActiveAt(at time.Duration) []Rule {
	var out []Rule
	for _, r := range s.Rules {
		if r.activeAt(at) {
			out = append(out, r)
		}
	}
	return out
}

// ProfileNames lists the built-in profile generators, in the order they
// are documented.
var ProfileNames = []string{"latency", "overload", "partition", "flaky", "trickle", "mixed"}

// Profile expands a named fault profile into a concrete Schedule lasting
// total (<= 0 selects 30s). It is a pure function of (name, seed, total):
// all randomness comes from a rand.Rand seeded with seed, so the same
// arguments always produce the byte-identical schedule.
//
//	latency    rolling 10-40ms ± jitter windows covering most of the run
//	overload   latency windows plus bandwidth-throttle windows
//	partition  one full partition window in the middle third of the run
//	flaky      short scattered connection-reset windows
//	trickle    one slow-loris window in the middle of the run
//	mixed      latency floor + one partition window + one reset window
func Profile(name string, seed int64, total time.Duration) (Schedule, error) {
	if total <= 0 {
		total = 30 * time.Second
	}
	rng := rand.New(rand.NewSource(seed))
	s := Schedule{Seed: seed}
	switch name {
	case "latency":
		// Back-to-back windows with independently drawn severity, so the
		// injected latency level shifts every few seconds.
		for at := time.Duration(0); at < total; {
			d := 2*time.Second + time.Duration(rng.Int63n(int64(3*time.Second)))
			if at+d > total {
				d = total - at
			}
			s.Rules = append(s.Rules, Rule{
				Kind:     KindLatency,
				Start:    at,
				Duration: d,
				Latency:  10*time.Millisecond + time.Duration(rng.Int63n(int64(30*time.Millisecond))),
				Jitter:   time.Duration(rng.Int63n(int64(10 * time.Millisecond))),
			})
			at += d
		}
	case "overload":
		lat, err := Profile("latency", seed, total)
		if err != nil {
			return Schedule{}, err
		}
		s.Rules = lat.Rules
		// Two throttle windows squeeze the pipe to force queueing upstream.
		for i := 0; i < 2; i++ {
			start := time.Duration(rng.Int63n(int64(total * 3 / 4)))
			s.Rules = append(s.Rules, Rule{
				Kind:        KindThrottle,
				Start:       start,
				Duration:    total / 6,
				BytesPerSec: 256 << 10, // 256 KiB/s: slow, not stalled
			})
		}
	case "partition":
		// One full partition covering roughly the middle third; everything
		// outside it is healthy, so recovery is observable.
		start := total/3 + time.Duration(rng.Int63n(int64(total/12)+1))
		s.Rules = append(s.Rules, Rule{
			Kind:     KindPartition,
			Start:    start,
			Duration: total / 3,
		})
	case "flaky":
		n := 3 + rng.Intn(3)
		for i := 0; i < n; i++ {
			start := time.Duration(rng.Int63n(int64(total * 9 / 10)))
			s.Rules = append(s.Rules, Rule{
				Kind:     KindReset,
				Start:    start,
				Duration: 200*time.Millisecond + time.Duration(rng.Int63n(int64(800*time.Millisecond))),
			})
		}
	case "trickle":
		s.Rules = append(s.Rules, Rule{
			Kind:     KindTrickle,
			Start:    total / 3,
			Duration: total / 3,
			Interval: 20 * time.Millisecond,
		})
	case "mixed":
		s.Rules = append(s.Rules, Rule{
			Kind:     KindLatency,
			Start:    0,
			Duration: total,
			Latency:  5*time.Millisecond + time.Duration(rng.Int63n(int64(10*time.Millisecond))),
			Jitter:   time.Duration(rng.Int63n(int64(5 * time.Millisecond))),
		})
		pStart := total/4 + time.Duration(rng.Int63n(int64(total/8)+1))
		s.Rules = append(s.Rules, Rule{Kind: KindPartition, Start: pStart, Duration: total / 6})
		rStart := (total * 2 / 3) + time.Duration(rng.Int63n(int64(total/8)+1))
		s.Rules = append(s.Rules, Rule{Kind: KindReset, Start: rStart, Duration: total / 12})
	default:
		return Schedule{}, fmt.Errorf("netchaos: unknown profile %q (have %v)", name, ProfileNames)
	}
	return s, nil
}
