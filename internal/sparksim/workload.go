package sparksim

import "fmt"

// Workload describes one HiBench benchmark application together with the
// cost-model coefficients that shape its performance landscape. The four
// workloads and their three input datasets follow the paper's Table 1.
type Workload struct {
	// Name is the full HiBench name ("TeraSort").
	Name string
	// Short is the paper's abbreviation ("TS").
	Short string
	// Category is the HiBench category ("micro", "websearch", "ml").
	Category string
	// InputLabel describes the input datasets in the paper's units
	// ("3.2, 6, 10 (GB)").
	InputLabel string
	// InputGB holds the three dataset sizes D1-D3 converted to on-disk GB.
	InputGB [3]float64

	// --- cost-model coefficients ---

	// ComputePerGB is CPU work in core-seconds per GB of input per
	// iteration on a CPUFactor-1.0 core.
	ComputePerGB float64
	// ShuffleFrac is the shuffle volume per iteration as a fraction of
	// input size.
	ShuffleFrac float64
	// OutputFrac is the HDFS output volume as a fraction of input size.
	OutputFrac float64
	// Iterations is the number of computation passes (PageRank and KMeans
	// are iterative; micro benchmarks run once).
	Iterations int
	// CacheFrac is the fraction of the input held in Spark block-manager
	// storage across iterations (0 for non-caching workloads). Workloads
	// with a high CacheFrac hit OOM cliffs when executor memory is scarce,
	// the behaviour the paper reports for KMeans (§5.2.1).
	CacheFrac float64
	// MemPerTaskGB is the per-task working-set at 1 GB of input spread
	// over the task count; used for spill modelling.
	MemPerTaskGB float64
	// BroadcastMB is per-iteration broadcast volume (KMeans centroids,
	// PageRank dangling mass), sensitive to spark.broadcast.blockSize.
	BroadcastMB float64
}

// Workloads returns the paper's four benchmark applications (Table 1).
// The index into the returned slice is stable and used in reports.
func Workloads() []Workload {
	return []Workload{
		{
			Name: "WordCount", Short: "WC", Category: "micro",
			InputLabel: "3.2, 10, 20 (GB)",
			InputGB:    [3]float64{3.2, 10, 20},
			// Map-side combining collapses the shuffle; mostly scan+CPU.
			ComputePerGB: 22, ShuffleFrac: 0.08, OutputFrac: 0.04,
			Iterations: 1, CacheFrac: 0, MemPerTaskGB: 0.25, BroadcastMB: 1,
		},
		{
			Name: "TeraSort", Short: "TS", Category: "micro",
			InputLabel: "3.2, 6, 10 (GB)",
			InputGB:    [3]float64{3.2, 6, 10},
			// Full-data shuffle and full-size replicated output.
			ComputePerGB: 16, ShuffleFrac: 1.0, OutputFrac: 1.0,
			Iterations: 1, CacheFrac: 0, MemPerTaskGB: 0.45, BroadcastMB: 1,
		},
		{
			Name: "PageRank", Short: "PR", Category: "websearch",
			InputLabel: "0.5, 1, 1.6 (Million Pages)",
			// ~2 GB of edges per 0.5M pages in HiBench's generator.
			InputGB:      [3]float64{1.0, 2.0, 3.2},
			ComputePerGB: 30, ShuffleFrac: 0.85, OutputFrac: 0.10,
			Iterations: 3, CacheFrac: 1.1, MemPerTaskGB: 0.5, BroadcastMB: 8,
		},
		{
			Name: "KMeans", Short: "KM", Category: "ml",
			InputLabel: "20, 30, 40 (Million Points)",
			// 20 dimensions x 8 bytes per sample.
			InputGB:      [3]float64{3.2, 4.8, 6.4},
			ComputePerGB: 34, ShuffleFrac: 0.05, OutputFrac: 0.01,
			Iterations: 4, CacheFrac: 1.4, MemPerTaskGB: 0.6, BroadcastMB: 16,
		},
	}
}

// WorkloadByShort returns the workload with the given abbreviation.
func WorkloadByShort(short string) (Workload, error) {
	for _, w := range Workloads() {
		if w.Short == short {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("sparksim: unknown workload %q (want WC, TS, PR or KM)", short)
}

// PairLabel names a (workload, input) pair the way the paper's figures do,
// e.g. "TS-D1".
func PairLabel(w Workload, inputIdx int) string {
	return fmt.Sprintf("%s-D%d", w.Short, inputIdx+1)
}

// AllPairs enumerates the 12 workload-input pairs of the evaluation.
func AllPairs() []struct {
	Workload Workload
	InputIdx int
} {
	var out []struct {
		Workload Workload
		InputIdx int
	}
	for _, w := range Workloads() {
		for d := 0; d < 3; d++ {
			out = append(out, struct {
				Workload Workload
				InputIdx int
			}{w, d})
		}
	}
	return out
}
