// Package sparksim is the evaluation substrate of the DeepCAT reproduction:
// an analytic performance model of a 3-node Spark-on-YARN-on-HDFS pipeline
// running the four HiBench workloads of the paper's Table 1 under the 32
// configuration parameters of Table 2.
//
// The original paper measures execution time on a physical cluster; that
// hardware is unavailable here, so this package substitutes a deterministic
// cost model that preserves the structure the tuning problem exposes to a
// tuner:
//
//   - a black-box config -> execution-time mapping with strong parameter
//     interactions (resources x parallelism x memory pressure),
//   - hard cliffs (YARN container rejection, OOM for cache-heavy
//     workloads) that make close-to-optimal configurations sparse
//     (the paper's Fig. 2),
//   - workload- and input-size-dependent optima (Table 1),
//   - hardware-environment dependence (the paper's Cluster-A/Cluster-B
//     adaptability study, §5.3.2),
//   - observable system state (per-node load averages, §3.1) and internal
//     metrics (for OtterTune-style workload mapping),
//   - seeded multiplicative run-to-run noise.
//
// Every evaluation is deterministic given (cluster, workload, input,
// configuration, seed), which makes experiments exactly reproducible.
package sparksim

import "fmt"

// Cluster describes a hardware environment. The model treats nodes as
// homogeneous.
type Cluster struct {
	// Name identifies the environment in reports ("cluster-a").
	Name string
	// Nodes is the number of worker nodes.
	Nodes int
	// CoresPerNode is the number of physical cores per node.
	CoresPerNode int
	// MemMBPerNode is the physical memory per node in MB.
	MemMBPerNode int
	// DiskMBps is the sequential disk bandwidth per node in MB/s.
	DiskMBps float64
	// NetMBps is the network bandwidth per node in MB/s.
	NetMBps float64
	// CPUFactor scales per-core compute speed relative to the paper's
	// Cluster-A i7-10700 (1.0 = Cluster-A speed).
	CPUFactor float64
}

// TotalCores returns the cluster-wide core count.
func (c Cluster) TotalCores() int { return c.Nodes * c.CoresPerNode }

// TotalMemMB returns the cluster-wide physical memory in MB.
func (c Cluster) TotalMemMB() int { return c.Nodes * c.MemMBPerNode }

// String renders a one-line summary.
func (c Cluster) String() string {
	return fmt.Sprintf("%s: %d nodes x %d cores/%d MB, disk %.0f MB/s, net %.0f MB/s, cpu x%.2f",
		c.Name, c.Nodes, c.CoresPerNode, c.MemMBPerNode, c.DiskMBps, c.NetMBps, c.CPUFactor)
}

// ClusterA is the paper's physical environment (§4.1): 3 nodes, each one
// i7-10700 with 16 cores and 16 GB DDR4, 1 TB HDD, 1-Gigabit Ethernet.
func ClusterA() Cluster {
	return Cluster{
		Name:         "cluster-a",
		Nodes:        3,
		CoresPerNode: 16,
		MemMBPerNode: 16384,
		DiskMBps:     160, // HDD sequential
		NetMBps:      110, // ~1 GbE after protocol overhead
		CPUFactor:    1.0,
	}
}

// ClusterB is the paper's VM environment (§5.3.2): 3 VMs with 24 cores, 24
// GB memory and 150 GB disk in total, used to evaluate hardware
// adaptability. Virtualization makes CPU and I/O slower than Cluster-A.
func ClusterB() Cluster {
	return Cluster{
		Name:         "cluster-b",
		Nodes:        3,
		CoresPerNode: 8,
		MemMBPerNode: 8192,
		DiskMBps:     110,
		NetMBps:      90,
		CPUFactor:    0.8,
	}
}
