package sparksim

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"deepcat/internal/config"
)

// StateDim is the dimensionality of the load-average state vector: three
// nodes x (1, 5, 15)-minute load averages, matching the paper's use of the
// uptime command on each server (§3.1).
const StateDim = 9

// MetricsDim is the dimensionality of the internal-metrics vector exposed
// for OtterTune-style workload mapping.
const MetricsDim = 12

// Indices into Result.Metrics.
const (
	MetricExecTime = iota
	MetricCPUUtil
	MetricMemUtil
	MetricShuffleGB
	MetricSpillRatio
	MetricGCFrac
	MetricDiskBusy
	MetricNetBusy
	MetricMapTasks
	MetricReduceTasks
	MetricCacheHit
	MetricFailed
)

// Result is the outcome of evaluating one configuration.
type Result struct {
	// ExecTime is the modelled wall-clock execution time in seconds.
	ExecTime float64
	// OOM reports that the run failed with an out-of-memory error
	// (cache-heavy workloads under-provisioned, §5.2.1).
	OOM bool
	// Failed reports any failure (OOM, unschedulable containers, driver
	// exhaustion). Failed runs still carry a (penalty) ExecTime.
	Failed bool
	// Executors and TotalCores record the resources YARN actually granted.
	Executors  int
	TotalCores int
	// LoadAvg is the StateDim-dimensional post-run load-average state.
	LoadAvg []float64
	// Metrics is the MetricsDim-dimensional internal-metrics vector.
	Metrics []float64
	// Breakdown decomposes the execution time for analysis and tests.
	Breakdown Breakdown
}

// Breakdown decomposes ExecTime into model components (seconds).
type Breakdown struct {
	Startup  float64
	ReadMap  float64
	Shuffle  float64
	Reduce   float64
	Write    float64
	Recache  float64
	Penalty  float64
	GCFrac   float64
	SpillRat float64
}

// Simulator evaluates configurations of the HDFS+YARN+Spark pipeline on a
// cluster. It is safe for concurrent use.
type Simulator struct {
	cluster Cluster
	space   *config.Space
	seed    int64
	// NoiseSigma is the multiplicative run-to-run noise level (0 disables
	// noise entirely).
	NoiseSigma float64

	idx paramIdx
}

// paramIdx caches parameter positions in the pipeline space.
type paramIdx struct {
	execInstances, execCores, execMem, driverMem, driverCores    int
	parallelism, memFraction, storageFraction                    int
	shuffleCompress, spillCompress, shuffleBuf, maxSizeInFlight  int
	codec, serializer, kryoBuf, rddCompress, broadcastBlock      int
	localityWait, schedulerMode, amMem                           int
	yarnNMMem, yarnNMCores, yarnMaxMB, yarnMinMB, yarnMaxVcores  int
	vmemRatio, pmemCheck                                         int
	blocksize, replication, nnHandlers, dnHandlers, ioFileBuffer int
}

// NewSimulator creates a simulator for the given cluster. The seed fixes
// the run-to-run noise stream; two simulators with equal (cluster, seed)
// produce identical results for identical inputs.
func NewSimulator(cluster Cluster, seed int64) *Simulator {
	s := &Simulator{
		cluster:    cluster,
		space:      PipelineSpace(),
		seed:       seed,
		NoiseSigma: 0.04,
	}
	must := func(name string) int {
		i, ok := s.space.Lookup(name)
		if !ok {
			panic(fmt.Sprintf("sparksim: parameter %q missing from pipeline space", name))
		}
		return i
	}
	s.idx = paramIdx{
		execInstances:   must("spark.executor.instances"),
		execCores:       must("spark.executor.cores"),
		execMem:         must("spark.executor.memory"),
		driverMem:       must("spark.driver.memory"),
		driverCores:     must("spark.driver.cores"),
		parallelism:     must("spark.default.parallelism"),
		memFraction:     must("spark.memory.fraction"),
		storageFraction: must("spark.memory.storageFraction"),
		shuffleCompress: must("spark.shuffle.compress"),
		spillCompress:   must("spark.shuffle.spill.compress"),
		shuffleBuf:      must("spark.shuffle.file.buffer"),
		maxSizeInFlight: must("spark.reducer.maxSizeInFlight"),
		codec:           must("spark.io.compression.codec"),
		serializer:      must("spark.serializer"),
		kryoBuf:         must("spark.kryoserializer.buffer.max"),
		rddCompress:     must("spark.rdd.compress"),
		broadcastBlock:  must("spark.broadcast.blockSize"),
		localityWait:    must("spark.locality.wait"),
		schedulerMode:   must("spark.scheduler.mode"),
		amMem:           must("spark.yarn.am.memory"),
		yarnNMMem:       must("yarn.nodemanager.resource.memory-mb"),
		yarnNMCores:     must("yarn.nodemanager.resource.cpu-vcores"),
		yarnMaxMB:       must("yarn.scheduler.maximum-allocation-mb"),
		yarnMinMB:       must("yarn.scheduler.minimum-allocation-mb"),
		yarnMaxVcores:   must("yarn.scheduler.maximum-allocation-vcores"),
		vmemRatio:       must("yarn.nodemanager.vmem-pmem-ratio"),
		pmemCheck:       must("yarn.nodemanager.pmem-check-enabled"),
		blocksize:       must("dfs.blocksize"),
		replication:     must("dfs.replication"),
		nnHandlers:      must("dfs.namenode.handler.count"),
		dnHandlers:      must("dfs.datanode.handler.count"),
		ioFileBuffer:    must("io.file.buffer.size"),
	}
	return s
}

// Space returns the 32-parameter pipeline configuration space.
func (s *Simulator) Space() *config.Space { return s.space }

// Cluster returns the simulated hardware environment.
func (s *Simulator) Cluster() Cluster { return s.cluster }

// Evaluate runs workload w's input dataset inputIdx (0-2) under the
// normalized action u in [0,1]^32 and returns the modelled outcome.
func (s *Simulator) Evaluate(w Workload, inputIdx int, u []float64) Result {
	v := s.space.Denormalize(u)
	return s.EvaluateValues(w, inputIdx, v)
}

// EvaluateValues is Evaluate for concrete (denormalized) parameter values.
func (s *Simulator) EvaluateValues(w Workload, inputIdx int, v []float64) Result {
	res := s.evaluate(w, inputIdx, v, true)
	return res
}

// DefaultResult evaluates the out-of-the-box configuration (noise-free, so
// reward baselines are stable).
func (s *Simulator) DefaultResult(w Workload, inputIdx int) Result {
	return s.evaluate(w, inputIdx, s.space.DefaultValues(), false)
}

// DefaultTime returns the noise-free default-configuration execution time.
func (s *Simulator) DefaultTime(w Workload, inputIdx int) float64 {
	return s.DefaultResult(w, inputIdx).ExecTime
}

func checkInput(w Workload, inputIdx int) float64 {
	if inputIdx < 0 || inputIdx > 2 {
		panic(fmt.Sprintf("sparksim: input index %d outside 0..2 for %s", inputIdx, w.Name))
	}
	return w.InputGB[inputIdx]
}

// codec characteristics: compression ratio (compressed/raw) and per-core
// throughput in GB/s.
var codecTable = []struct {
	ratio float64
	gbps  float64
}{
	{0.55, 0.45}, // lz4
	{0.60, 0.30}, // lzf
	{0.52, 0.38}, // snappy
}

func (s *Simulator) evaluate(w Workload, inputIdx int, v []float64, noisy bool) Result {
	d := checkInput(w, inputIdx)
	c := s.cluster
	ix := s.idx

	res := Result{
		LoadAvg: make([]float64, StateDim),
		Metrics: make([]float64, MetricsDim),
	}

	// ---- 1. YARN resource allocation --------------------------------
	execMemGB := v[ix.execMem]
	execCores := v[ix.execCores]
	if maxV := v[ix.yarnMaxVcores]; execCores > maxV {
		execCores = maxV // YARN clamps the vcore request
	}
	minAlloc := v[ix.yarnMinMB]
	overheadMB := math.Max(384, 0.10*execMemGB*1024)
	containerMB := math.Ceil((execMemGB*1024+overheadMB)/minAlloc) * minAlloc
	amMB := math.Ceil((v[ix.amMem]*1024+384)/minAlloc) * minAlloc

	// NodeManager capacity: advertised memory, capped at physical minus OS
	// reserve. Advertising more than physical enables overcommit (handled
	// as a thrash penalty below), it does not create memory.
	physMB := float64(c.MemMBPerNode) - 1024
	advertisedMB := v[ix.yarnNMMem]
	effNodeMB := math.Min(advertisedMB, physMB)
	overcommit := advertisedMB > physMB*1.02

	if containerMB > v[ix.yarnMaxMB] || containerMB > effNodeMB {
		// YARN rejects the container request: the job cannot start.
		return s.failResult(w, inputIdx, res, "unschedulable", noisy, v)
	}

	perNodeMem := math.Floor(effNodeMB / containerMB)
	perNodeCores := math.Floor(v[ix.yarnNMCores] / execCores)
	perNode := math.Min(perNodeMem, perNodeCores)
	totalSlots := perNode * float64(c.Nodes)
	// The application master displaces an executor when it does not fit in
	// the first node's leftover memory.
	leftover := effNodeMB - perNode*containerMB
	if leftover < amMB && totalSlots > 0 {
		totalSlots--
	}
	executors := math.Min(v[ix.execInstances], totalSlots)
	if executors < 1 {
		return s.failResult(w, inputIdx, res, "no-executors", noisy, v)
	}
	totalCores := executors * execCores
	res.Executors = int(executors)
	res.TotalCores = int(totalCores)

	// CPU oversubscription: advertising more vcores than physical cores
	// lets YARN schedule more concurrent tasks than the silicon can run.
	activeNodes := math.Min(executors, float64(c.Nodes))
	usedCoresPerNode := totalCores/float64(c.Nodes) + v[ix.driverCores]/float64(c.Nodes)
	cpuEff := 1.0
	if usedCoresPerNode > float64(c.CoresPerNode) {
		// Oversubscribed cores lose more than proportional throughput to
		// context switching and cache contention.
		rho := usedCoresPerNode / float64(c.CoresPerNode)
		cpuEff = 1 / (rho * (1 + 0.3*(rho-1)))
	}

	// Page-cache starvation: when containers consume most of a node's
	// physical memory, the OS loses its file cache and effective disk
	// bandwidth drops. This makes blanket max-memory configurations hurt
	// I/O-heavy workloads and pushes the optimum into the interior.
	perNodeUsedMB := executors / float64(c.Nodes) * containerMB
	memPressure := perNodeUsedMB / physMB
	diskFactor := 1.0
	if memPressure > 0.75 {
		diskFactor = 1 + 1.4*(memPressure-0.75)/0.25
	}

	// ---- 2. Task layout ----------------------------------------------
	blockMB := v[ix.blocksize]
	mapTasks := math.Max(1, math.Ceil(d*1024/blockMB))
	reduceTasks := math.Max(8, v[ix.parallelism])

	// ---- 3. Serializer / codec factors --------------------------------
	kryo := v[ix.serializer] == 1
	serCPU := 1.0   // shuffle serialization CPU cost multiplier
	deser := 2.2    // in-memory expansion of deserialized java objects
	cacheSer := 2.2 // cached-data expansion factor
	if kryo {
		serCPU = 0.7
		deser = 1.5
		cacheSer = 1.5
	}
	codec := codecTable[int(v[ix.codec])]
	shuffleRatio := 1.0
	compressCPU := 0.0 // core-seconds per shuffled GB
	if v[ix.shuffleCompress] == 1 {
		shuffleRatio = codec.ratio
		compressCPU = 1 / codec.gbps
	}

	// ---- 4. Phase times ------------------------------------------------
	bk := &res.Breakdown

	// Startup: AM negotiation + executor launches + NameNode metadata.
	nnFactor := 1 + 0.10*math.Max(0, mapTasks/v[ix.nnHandlers]-1)
	bk.Startup = (6 + 0.35*executors) * nnFactor
	if v[ix.schedulerMode] == 1 { // FAIR adds bookkeeping for a single job
		bk.Startup += 1.5
	}

	// HDFS read bandwidth shared by executors on each node.
	ioBufFactor := 1 + 0.18*(4/v[ix.ioFileBuffer])
	dnFactor := 1 + 0.15*math.Max(0, totalCores/(v[ix.dnHandlers]*float64(c.Nodes))-1)
	readTime := d * 1024 / (activeNodes * c.DiskMBps) * ioBufFactor * dnFactor * diskFactor

	// Map phase CPU (70 % of per-iteration compute), wave-quantized.
	iters := float64(w.Iterations)
	cpuWorkIter := w.ComputePerGB * d / c.CPUFactor // core-seconds per iteration
	taskOverhead := 0.15
	if v[ix.schedulerMode] == 1 {
		taskOverhead += 0.03
	}
	mapWaves := math.Ceil(mapTasks / totalCores)
	perMapTask := cpuWorkIter * 0.7 / mapTasks
	mapCPUTime := mapWaves * (perMapTask + taskOverhead) / cpuEff

	// Locality: with fewer executors than nodes, a share of blocks is
	// remote and the scheduler waits spark.locality.wait per wave before
	// falling back.
	remoteFrac := 1 - activeNodes/float64(c.Nodes)
	localityPenalty := v[ix.localityWait] * mapWaves * remoteFrac * 0.5
	// Large waits also stall imbalanced final waves.
	if math.Mod(mapTasks, totalCores) != 0 {
		localityPenalty += v[ix.localityWait] * 0.1 * mapWaves
	}

	// Read and map compute overlap; the slower one dominates.
	bk.ReadMap = math.Max(readTime, mapCPUTime) + localityPenalty

	// Shuffle volume per iteration.
	shuffleGB := d * w.ShuffleFrac
	shuffleComp := shuffleGB * shuffleRatio
	shufBufFactor := 1 + 0.12*(32/v[ix.shuffleBuf])
	fetchFactor := 1 + 0.10*(48/v[ix.maxSizeInFlight])
	shuffleDisk := shuffleComp * 1024 * 1.6 / (activeNodes * c.DiskMBps) * shufBufFactor * diskFactor
	crossFrac := (float64(c.Nodes) - 1) / float64(c.Nodes)
	shuffleNet := shuffleComp * crossFrac * 1024 / (activeNodes * c.NetMBps) * fetchFactor
	shuffleCPU := (shuffleGB*compressCPU + shuffleGB*serCPU*0.6) / totalCores / cpuEff
	shuffleTimeIter := shuffleDisk + shuffleNet + shuffleCPU

	// Spill: execution memory per concurrently running task.
	memFraction := v[ix.memFraction]
	storageFraction := v[ix.storageFraction]
	execHeapPerTask := execMemGB * memFraction * (1 - storageFraction) / execCores
	wsPerTask := shuffleGB*deser/reduceTasks + 0.05
	spillRatio := wsPerTask / math.Max(execHeapPerTask, 1e-6)
	bk.SpillRat = spillRatio
	if spillRatio > 1 && shuffleGB > 0.01 {
		spillBytesRatio := codec.ratio
		if v[ix.spillCompress] == 0 {
			spillBytesRatio = 1.0
		}
		extraPasses := math.Min(spillRatio-1, 3)
		bk.Shuffle += extraPasses * shuffleGB * spillBytesRatio * 2 * 1024 / (activeNodes * c.DiskMBps) * iters
	}

	// Reduce phase CPU (30 % of compute), wave-quantized.
	reduceWaves := math.Ceil(reduceTasks / totalCores)
	perReduceTask := cpuWorkIter * 0.3 / reduceTasks
	reduceCPUTime := reduceWaves * (perReduceTask + taskOverhead) / cpuEff

	// Broadcast per iteration: small blocks mean many fetch round trips,
	// oversized blocks serialize poorly.
	bcastMB := v[ix.broadcastBlock]
	bcastTime := w.BroadcastMB / 1024 * crossFrac * 1024 / c.NetMBps * (1 + 0.5*math.Abs(math.Log2(bcastMB/4)))

	// Per-stage driver barriers: every iteration has a map and a reduce
	// stage whose scheduling round-trips do not parallelize (Amdahl floor).
	stageBarrier := 1.3 * 2 * iters

	bk.Shuffle += shuffleTimeIter * iters
	bk.Reduce = (reduceCPUTime+bcastTime)*iters + stageBarrier

	// ---- 5. Caching across iterations ----------------------------------
	cacheHit := 1.0
	if w.CacheFrac > 0 && iters > 1 {
		cacheNeedGB := d * w.CacheFrac * cacheSer
		cacheCPUPerIter := 0.0
		if v[ix.rddCompress] == 1 {
			cacheNeedGB *= 0.55
			cacheCPUPerIter = d * w.CacheFrac / codec.gbps / totalCores / cpuEff
		}
		storageGB := executors * execMemGB * memFraction * storageFraction
		cacheHit = math.Min(1, storageGB/math.Max(cacheNeedGB, 1e-6))
		missFrac := 1 - cacheHit
		// Each later iteration re-reads and re-computes missed partitions.
		perIterMiss := missFrac*(readTime+mapCPUTime*0.4) + cacheCPUPerIter
		bk.Recache = perIterMiss * (iters - 1)
		// Subsequent iterations scan cached data instead of HDFS.
		bk.ReadMap += (mapCPUTime*0.4 + taskOverhead*mapWaves) * (iters - 1)
	}

	// ---- 6. Failure cliffs ----------------------------------------------
	// OOM: concurrent task working sets exceeding the execution heap kill
	// cache-heavy executors (the paper's KMeans OOM behaviour).
	if w.CacheFrac > 0.3 {
		partGB := d / mapTasks
		taskNeedGB := partGB * deser * execCores
		execHeapGB := execMemGB * memFraction
		if taskNeedGB > execHeapGB*1.5 {
			res.OOM = true
			return s.failResult(w, inputIdx, res, "oom", noisy, v)
		}
	}
	// Driver exhaustion: task metadata and collected results.
	driverNeedGB := 0.35 + 0.06*d + (mapTasks+reduceTasks*iters)*0.0008
	if v[ix.driverMem] < driverNeedGB*0.5 {
		res.OOM = true
		return s.failResult(w, inputIdx, res, "driver-oom", noisy, v)
	}
	driverPenalty := 1.0
	if v[ix.driverMem] < driverNeedGB {
		driverPenalty = 1.3
	}

	// ---- 7. Residual penalties ------------------------------------------
	// GC pressure grows with heap occupancy.
	heapUse := (wsPerTask*execCores + d*w.CacheFrac*cacheSer/math.Max(executors, 1)) / execMemGB
	gcFrac := 0.02 + 0.10*math.Pow(math.Max(0, heapUse-0.5), 2)
	// Very large JVM heaps pay longer stop-the-world collections.
	if execMemGB > 6 {
		gcFrac += 0.015 * (execMemGB - 6)
	}
	if gcFrac > 0.4 {
		gcFrac = 0.4
	}
	bk.GCFrac = gcFrac

	// Overcommitted NodeManager memory causes paging for memory-heavy jobs.
	thrash := 1.0
	if overcommit && (w.CacheFrac > 0.3 || spillRatio > 1) {
		thrash = 1.25
	}
	// Aggressive vmem enforcement kills containers of cache-heavy java
	// jobs, forcing task retries.
	vmemPenalty := 1.0
	if v[ix.pmemCheck] == 1 && v[ix.vmemRatio] < 2.1 && !kryo && w.CacheFrac > 0.8 {
		vmemPenalty = 1.2
	}

	// ---- 8. Output write --------------------------------------------------
	outGB := d * w.OutputFrac
	repl := v[ix.replication]
	writeDisk := outGB * repl * 1024 / (activeNodes * c.DiskMBps) * ioBufFactor * diskFactor
	writeNet := outGB * (repl - 1) * 1024 / (activeNodes * c.NetMBps)
	bk.Write = writeDisk + writeNet

	// ---- total ------------------------------------------------------------
	compute := (bk.ReadMap + bk.Reduce) / (1 - gcFrac)
	total := bk.Startup + compute + bk.Shuffle + bk.Recache + bk.Write
	total *= driverPenalty * thrash * vmemPenalty
	bk.Penalty = total - (bk.Startup + compute + bk.Shuffle + bk.Recache + bk.Write)

	if noisy && s.NoiseSigma > 0 {
		total *= s.noiseFactor(w, inputIdx, v)
	}
	res.ExecTime = total

	s.fillObservables(&res, w, c, executors, totalCores, usedCoresPerNode,
		execMemGB, containerMB, effNodeMB, shuffleComp, spillRatio, gcFrac,
		cacheHit, mapTasks, reduceTasks, v)
	return res
}

// failResult produces the outcome of a failed run: a penalty execution time
// proportional to the default-configuration time, so failures are sharply
// worse than any completed run.
func (s *Simulator) failResult(w Workload, inputIdx int, res Result, reason string, noisy bool, v []float64) Result {
	res.Failed = true
	def := s.DefaultTime(w, inputIdx)
	t := 2.5 * def
	if reason == "unschedulable" || reason == "no-executors" {
		// Submission failures surface faster than mid-run OOMs.
		t = 1.8 * def
	}
	if noisy && s.NoiseSigma > 0 {
		t *= s.noiseFactor(w, inputIdx, v)
	}
	res.ExecTime = t
	res.Metrics[MetricExecTime] = t
	res.Metrics[MetricFailed] = 1
	// A failed run leaves the cluster lightly loaded.
	for i := range res.LoadAvg {
		res.LoadAvg[i] = 0.5
	}
	return res
}

// fillObservables computes the load-average state and internal metrics.
func (s *Simulator) fillObservables(res *Result, w Workload, c Cluster,
	executors, totalCores, usedCoresPerNode, execMemGB, containerMB, effNodeMB,
	shuffleComp, spillRatio, gcFrac, cacheHit, mapTasks, reduceTasks float64, v []float64) {

	cpuUtil := math.Min(1.2, totalCores/float64(c.TotalCores()))
	memUtil := math.Min(1.2, executors*containerMB/(effNodeMB*float64(c.Nodes)))
	diskBusy := math.Min(1, (shuffleComp*2+w.OutputFrac)/(res.ExecTime*c.DiskMBps*float64(c.Nodes)/1024+1e-9))
	netBusy := math.Min(1, shuffleComp/(res.ExecTime*c.NetMBps*float64(c.Nodes)/1024+1e-9))

	rng := s.obsRand(w, v)
	perNodeLoad := usedCoresPerNode * (0.85 + 0.3*cpuUtil)
	for n := 0; n < c.Nodes; n++ {
		base := perNodeLoad
		if n == 0 {
			base += v[s.idx.driverCores] * 0.5 // driver + AM on node 0
		}
		jitter := 1 + 0.05*rng.NormFloat64()
		res.LoadAvg[n*3+0] = base * jitter
		res.LoadAvg[n*3+1] = base * 0.85 * jitter
		res.LoadAvg[n*3+2] = base * 0.65 * jitter
	}

	m := res.Metrics
	m[MetricExecTime] = res.ExecTime
	m[MetricCPUUtil] = cpuUtil
	m[MetricMemUtil] = memUtil
	m[MetricShuffleGB] = shuffleComp
	m[MetricSpillRatio] = spillRatio
	m[MetricGCFrac] = gcFrac
	m[MetricDiskBusy] = diskBusy
	m[MetricNetBusy] = netBusy
	m[MetricMapTasks] = mapTasks
	m[MetricReduceTasks] = reduceTasks
	m[MetricCacheHit] = cacheHit
	m[MetricFailed] = 0
}

// noiseFactor returns the deterministic multiplicative noise for one
// evaluation, keyed by (seed, cluster, workload, input, quantized config).
func (s *Simulator) noiseFactor(w Workload, inputIdx int, v []float64) float64 {
	rng := s.evalRand(w, inputIdx, v)
	return math.Exp(s.NoiseSigma*rng.NormFloat64() - 0.5*s.NoiseSigma*s.NoiseSigma)
}

func (s *Simulator) evalRand(w Workload, inputIdx int, v []float64) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%d", s.seed, s.cluster.Name, w.Short, inputIdx)
	for _, x := range v {
		fmt.Fprintf(h, "|%.4g", x)
	}
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

func (s *Simulator) obsRand(w Workload, v []float64) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "obs|%d|%s|%s", s.seed, s.cluster.Name, w.Short)
	for _, x := range v {
		fmt.Fprintf(h, "|%.4g", x)
	}
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// ClampToCluster clips concrete parameter values that exceed the cluster's
// physical capacity down to the largest feasible setting: executor/AM/driver
// memory and the YARN memory knobs are bounded by per-node physical memory.
// This implements the paper's rule for applying a model trained on one
// hardware environment to a smaller one (§5.3.2): "if the recommended
// configuration parameters are outside the scope of the new environment, we
// need to clip it to the boundary".
func (s *Simulator) ClampToCluster(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	ix := s.idx
	physMB := float64(s.cluster.MemMBPerNode) - 1024
	// Largest executor heap whose container (heap + 10% overhead) fits.
	maxExecGB := math.Floor(physMB / 1.1 / 1024)
	if out[ix.execMem] > maxExecGB {
		out[ix.execMem] = maxExecGB
	}
	if out[ix.yarnNMMem] > physMB {
		out[ix.yarnNMMem] = math.Floor(physMB)
	}
	if out[ix.yarnMaxMB] > physMB {
		out[ix.yarnMaxMB] = math.Floor(physMB)
	}
	if out[ix.driverMem] > maxExecGB {
		out[ix.driverMem] = maxExecGB
	}
	cores := float64(s.cluster.CoresPerNode)
	if out[ix.execCores] > cores {
		out[ix.execCores] = cores
	}
	if out[ix.yarnNMCores] > cores*2 {
		out[ix.yarnNMCores] = cores * 2
	}
	return out
}

// IdleState returns the load-average vector of an idle cluster, used as the
// initial tuner state before any evaluation.
func (s *Simulator) IdleState() []float64 {
	st := make([]float64, StateDim)
	for i := range st {
		st[i] = 0.3
	}
	return st
}
