package sparksim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"deepcat/internal/mat"
)

func simA(t *testing.T) *Simulator {
	t.Helper()
	return NewSimulator(ClusterA(), 1)
}

// setValue sets the named parameter on a concrete-values vector.
func setValue(t *testing.T, s *Simulator, v []float64, name string, x float64) {
	t.Helper()
	i, ok := s.Space().Lookup(name)
	if !ok {
		t.Fatalf("parameter %q missing", name)
	}
	v[i] = x
}

func TestTable1Workloads(t *testing.T) {
	ws := Workloads()
	if len(ws) != 4 {
		t.Fatalf("workloads = %d, want 4", len(ws))
	}
	wantShort := []string{"WC", "TS", "PR", "KM"}
	wantCat := []string{"micro", "micro", "websearch", "ml"}
	for i, w := range ws {
		if w.Short != wantShort[i] || w.Category != wantCat[i] {
			t.Errorf("workload %d = %s/%s, want %s/%s", i, w.Short, w.Category, wantShort[i], wantCat[i])
		}
		for d := 0; d < 3; d++ {
			if w.InputGB[d] <= 0 {
				t.Errorf("%s D%d size %v", w.Short, d+1, w.InputGB[d])
			}
		}
		if w.InputGB[0] >= w.InputGB[1] || w.InputGB[1] >= w.InputGB[2] {
			t.Errorf("%s input sizes not increasing: %v", w.Short, w.InputGB)
		}
	}
}

func TestTable2ParameterCounts(t *testing.T) {
	space := PipelineSpace()
	if space.Dim() != 32 {
		t.Fatalf("space dim = %d, want 32", space.Dim())
	}
	counts := space.CountByComponent()
	if counts[ComponentSpark] != 20 {
		t.Errorf("spark params = %d, want 20", counts[ComponentSpark])
	}
	if counts[ComponentYARN] != 7 {
		t.Errorf("yarn params = %d, want 7", counts[ComponentYARN])
	}
	if counts[ComponentHDFS] != 5 {
		t.Errorf("hdfs params = %d, want 5", counts[ComponentHDFS])
	}
}

func TestWorkloadByShort(t *testing.T) {
	w, err := WorkloadByShort("TS")
	if err != nil || w.Name != "TeraSort" {
		t.Fatalf("WorkloadByShort(TS) = %v, %v", w.Name, err)
	}
	if _, err := WorkloadByShort("XX"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestAllPairsAndLabels(t *testing.T) {
	pairs := AllPairs()
	if len(pairs) != 12 {
		t.Fatalf("pairs = %d, want 12", len(pairs))
	}
	if got := PairLabel(pairs[0].Workload, pairs[0].InputIdx); got != "WC-D1" {
		t.Fatalf("label = %q", got)
	}
	if got := PairLabel(pairs[11].Workload, pairs[11].InputIdx); got != "KM-D3" {
		t.Fatalf("label = %q", got)
	}
}

func TestClusterAccessors(t *testing.T) {
	a := ClusterA()
	if a.TotalCores() != 48 || a.TotalMemMB() != 3*16384 {
		t.Fatalf("cluster A totals: %d cores, %d MB", a.TotalCores(), a.TotalMemMB())
	}
	if a.String() == "" || ClusterB().String() == "" {
		t.Fatal("empty cluster String")
	}
	b := ClusterB()
	if b.TotalCores() != 24 || b.TotalMemMB() != 3*8192 {
		t.Fatalf("cluster B totals: %d cores, %d MB", b.TotalCores(), b.TotalMemMB())
	}
}

func TestDefaultNeverFails(t *testing.T) {
	for _, cl := range []Cluster{ClusterA(), ClusterB()} {
		sim := NewSimulator(cl, 1)
		for _, p := range AllPairs() {
			r := sim.DefaultResult(p.Workload, p.InputIdx)
			if r.Failed || r.OOM {
				t.Errorf("%s default on %s failed (oom=%v)", PairLabel(p.Workload, p.InputIdx), cl.Name, r.OOM)
			}
			if r.ExecTime <= 0 || math.IsNaN(r.ExecTime) {
				t.Errorf("%s default time = %v", PairLabel(p.Workload, p.InputIdx), r.ExecTime)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	sim1 := NewSimulator(ClusterA(), 42)
	sim2 := NewSimulator(ClusterA(), 42)
	rng := rand.New(rand.NewSource(9))
	ts, _ := WorkloadByShort("TS")
	for i := 0; i < 20; i++ {
		u := sim1.Space().RandomAction(rng)
		r1 := sim1.Evaluate(ts, 0, u)
		r2 := sim2.Evaluate(ts, 0, u)
		if r1.ExecTime != r2.ExecTime || r1.Failed != r2.Failed {
			t.Fatalf("same (seed, action) produced different results: %v vs %v", r1.ExecTime, r2.ExecTime)
		}
	}
}

func TestSeedChangesNoise(t *testing.T) {
	ts, _ := WorkloadByShort("TS")
	u := PipelineSpace().DefaultAction()
	a := NewSimulator(ClusterA(), 1).Evaluate(ts, 0, u).ExecTime
	b := NewSimulator(ClusterA(), 2).Evaluate(ts, 0, u).ExecTime
	if a == b {
		t.Fatal("different seeds produced identical noisy times")
	}
}

func TestNoiseMagnitude(t *testing.T) {
	sim := simA(t)
	ts, _ := WorkloadByShort("TS")
	noiseless := sim.DefaultTime(ts, 0)
	noisy := sim.Evaluate(ts, 0, sim.Space().DefaultAction()).ExecTime
	if rel := math.Abs(noisy-noiseless) / noiseless; rel > 0.2 {
		t.Fatalf("noise moved time by %.1f%%", rel*100)
	}
}

func TestNoiseDisabled(t *testing.T) {
	sim := simA(t)
	sim.NoiseSigma = 0
	ts, _ := WorkloadByShort("TS")
	if got := sim.Evaluate(ts, 0, sim.Space().DefaultAction()).ExecTime; got != sim.DefaultTime(ts, 0) {
		t.Fatal("NoiseSigma=0 still noisy")
	}
}

func TestMoreResourcesHelp(t *testing.T) {
	// Scaling default resources up (more executors, cores, memory) must
	// improve every workload's D1 time.
	sim := simA(t)
	sim.NoiseSigma = 0
	for _, w := range Workloads() {
		def := sim.DefaultTime(w, 0)
		v := sim.Space().DefaultValues()
		setValue(t, sim, v, "spark.executor.instances", 6)
		setValue(t, sim, v, "spark.executor.cores", 4)
		setValue(t, sim, v, "spark.executor.memory", 4)
		setValue(t, sim, v, "spark.default.parallelism", 48)
		setValue(t, sim, v, "yarn.nodemanager.resource.memory-mb", 14336)
		setValue(t, sim, v, "yarn.nodemanager.resource.cpu-vcores", 16)
		setValue(t, sim, v, "yarn.scheduler.maximum-allocation-mb", 14336)
		setValue(t, sim, v, "spark.driver.memory", 4)
		r := sim.EvaluateValues(w, 0, v)
		if r.Failed {
			t.Errorf("%s: scaled-up config failed", w.Short)
			continue
		}
		if r.ExecTime >= def {
			t.Errorf("%s: scaled-up config %.1fs not faster than default %.1fs", w.Short, r.ExecTime, def)
		}
	}
}

func TestKryoHelpsShuffleHeavy(t *testing.T) {
	sim := simA(t)
	sim.NoiseSigma = 0
	ts, _ := WorkloadByShort("TS")
	v := sim.Space().DefaultValues()
	base := sim.EvaluateValues(ts, 0, v).ExecTime
	setValue(t, sim, v, "spark.serializer", 1) // kryo
	kryo := sim.EvaluateValues(ts, 0, v).ExecTime
	if kryo >= base {
		t.Fatalf("kryo %.2fs not faster than java %.2fs on TeraSort", kryo, base)
	}
}

func TestLargerInputTakesLonger(t *testing.T) {
	sim := simA(t)
	sim.NoiseSigma = 0
	for _, w := range Workloads() {
		t1 := sim.DefaultTime(w, 0)
		t2 := sim.DefaultTime(w, 1)
		t3 := sim.DefaultTime(w, 2)
		if !(t1 < t2 && t2 < t3) {
			t.Errorf("%s: times not increasing with input: %v %v %v", w.Short, t1, t2, t3)
		}
	}
}

func TestClusterBSlower(t *testing.T) {
	a := NewSimulator(ClusterA(), 1)
	b := NewSimulator(ClusterB(), 1)
	for _, w := range Workloads() {
		ta := a.DefaultTime(w, 0)
		tb := b.DefaultTime(w, 0)
		if tb <= ta {
			t.Errorf("%s: cluster B default %.1fs not slower than A %.1fs", w.Short, tb, ta)
		}
	}
}

func TestUnschedulableContainerFails(t *testing.T) {
	sim := simA(t)
	ts, _ := WorkloadByShort("TS")
	v := sim.Space().DefaultValues()
	setValue(t, sim, v, "spark.executor.memory", 10)
	setValue(t, sim, v, "yarn.scheduler.maximum-allocation-mb", 8192)
	r := sim.EvaluateValues(ts, 0, v)
	if !r.Failed {
		t.Fatal("oversized container was scheduled")
	}
	def := sim.DefaultTime(ts, 0)
	if r.ExecTime < def {
		t.Fatalf("failure penalty %.1fs below default %.1fs", r.ExecTime, def)
	}
}

func TestNoExecutorFails(t *testing.T) {
	sim := simA(t)
	ts, _ := WorkloadByShort("TS")
	v := sim.Space().DefaultValues()
	setValue(t, sim, v, "spark.executor.cores", 8)
	setValue(t, sim, v, "yarn.nodemanager.resource.cpu-vcores", 6)
	setValue(t, sim, v, "yarn.scheduler.maximum-allocation-vcores", 16)
	r := sim.EvaluateValues(ts, 0, v)
	if !r.Failed {
		t.Fatal("zero-slot config did not fail")
	}
}

func TestKMeansOOMCliff(t *testing.T) {
	sim := simA(t)
	km, _ := WorkloadByShort("KM")
	v := sim.Space().DefaultValues()
	// Many concurrent tasks per executor with a tiny heap: working sets
	// exceed execution memory.
	setValue(t, sim, v, "spark.executor.cores", 8)
	setValue(t, sim, v, "spark.executor.memory", 1)
	setValue(t, sim, v, "yarn.nodemanager.resource.cpu-vcores", 16)
	setValue(t, sim, v, "yarn.scheduler.maximum-allocation-vcores", 16)
	setValue(t, sim, v, "dfs.blocksize", 256)
	r := sim.EvaluateValues(km, 0, v)
	if !r.OOM || !r.Failed {
		t.Fatalf("expected OOM, got oom=%v failed=%v", r.OOM, r.Failed)
	}
	// TeraSort spills instead of OOMing under the same squeeze.
	ts, _ := WorkloadByShort("TS")
	r = sim.EvaluateValues(ts, 0, v)
	if r.OOM {
		t.Fatal("non-caching TeraSort reported OOM")
	}
}

func TestYarnVcoreCapClampsExecutorCores(t *testing.T) {
	sim := simA(t)
	sim.NoiseSigma = 0
	ts, _ := WorkloadByShort("TS")
	v := sim.Space().DefaultValues()
	setValue(t, sim, v, "spark.executor.cores", 8)
	setValue(t, sim, v, "yarn.scheduler.maximum-allocation-vcores", 4)
	setValue(t, sim, v, "yarn.nodemanager.resource.cpu-vcores", 16)
	r := sim.EvaluateValues(ts, 0, v)
	if r.Failed {
		t.Fatal("clamped request failed")
	}
	if r.TotalCores != r.Executors*4 {
		t.Fatalf("vcore cap not applied: %d cores for %d executors", r.TotalCores, r.Executors)
	}
}

func TestLoadAverageState(t *testing.T) {
	sim := simA(t)
	ts, _ := WorkloadByShort("TS")
	r := sim.Evaluate(ts, 0, sim.Space().DefaultAction())
	if len(r.LoadAvg) != StateDim {
		t.Fatalf("state dim = %d, want %d", len(r.LoadAvg), StateDim)
	}
	for i, l := range r.LoadAvg {
		if l <= 0 || math.IsNaN(l) {
			t.Fatalf("load[%d] = %v", i, l)
		}
	}
	// Node 0 hosts driver + AM and must carry at least the load of others.
	if r.LoadAvg[0] < r.LoadAvg[3]*0.9 {
		t.Fatalf("node0 load %.2f below node1 load %.2f", r.LoadAvg[0], r.LoadAvg[3])
	}
	// 1-minute load >= 15-minute load for a just-finished burst.
	if r.LoadAvg[0] < r.LoadAvg[2] {
		t.Fatalf("load1 %.2f < load15 %.2f", r.LoadAvg[0], r.LoadAvg[2])
	}
	if len(sim.IdleState()) != StateDim {
		t.Fatal("IdleState dim wrong")
	}
}

func TestMetricsVector(t *testing.T) {
	sim := simA(t)
	ts, _ := WorkloadByShort("TS")
	r := sim.Evaluate(ts, 0, sim.Space().DefaultAction())
	if len(r.Metrics) != MetricsDim {
		t.Fatalf("metrics dim = %d, want %d", len(r.Metrics), MetricsDim)
	}
	if r.Metrics[MetricExecTime] != r.ExecTime {
		t.Fatal("MetricExecTime mismatch")
	}
	if r.Metrics[MetricShuffleGB] <= 0 {
		t.Fatal("TeraSort shuffle volume must be positive")
	}
	if r.Metrics[MetricFailed] != 0 {
		t.Fatal("successful run flagged as failed")
	}
	if !mat.AllFinite(r.Metrics) {
		t.Fatal("non-finite metrics")
	}
}

func TestMetricsDistinguishWorkloads(t *testing.T) {
	// TeraSort shuffles far more than KMeans; KMeans caches, TeraSort does
	// not — the signal OtterTune's workload mapping relies on.
	sim := simA(t)
	u := sim.Space().DefaultAction()
	ts, _ := WorkloadByShort("TS")
	km, _ := WorkloadByShort("KM")
	mts := sim.Evaluate(ts, 0, u).Metrics
	mkm := sim.Evaluate(km, 0, u).Metrics
	if mts[MetricShuffleGB] <= mkm[MetricShuffleGB] {
		t.Fatal("TeraSort should shuffle more than KMeans")
	}
	if mkm[MetricCacheHit] >= 1 && mts[MetricCacheHit] >= 1 {
		// KMeans under default memory cannot fully cache.
		t.Fatal("KMeans default cache hit should be partial")
	}
}

func TestClampToCluster(t *testing.T) {
	simB := NewSimulator(ClusterB(), 1)
	v := simB.Space().DefaultValues()
	setValue(t, simB, v, "spark.executor.memory", 10)
	setValue(t, simB, v, "yarn.nodemanager.resource.memory-mb", 15360)
	setValue(t, simB, v, "yarn.scheduler.maximum-allocation-mb", 15360)
	setValue(t, simB, v, "spark.executor.cores", 8)
	clamped := simB.ClampToCluster(v)
	ts, _ := WorkloadByShort("TS")
	r := simB.EvaluateValues(ts, 0, clamped)
	if r.Failed {
		t.Fatal("clamped config still unschedulable on cluster B")
	}
	// Original vector untouched.
	i, _ := simB.Space().Lookup("spark.executor.memory")
	if v[i] != 10 {
		t.Fatal("ClampToCluster mutated its input")
	}
	if clamped[i] >= 10 {
		t.Fatalf("executor memory not clamped: %v", clamped[i])
	}
}

func TestEvaluateFiniteProperty(t *testing.T) {
	sim := simA(t)
	ws := Workloads()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := ws[rng.Intn(len(ws))]
		d := rng.Intn(3)
		r := sim.Evaluate(w, d, sim.Space().RandomAction(rng))
		return r.ExecTime > 0 && !math.IsNaN(r.ExecTime) && !math.IsInf(r.ExecTime, 0) &&
			mat.AllFinite(r.Metrics) && mat.AllFinite(r.LoadAvg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFailurePenaltyDominatesProperty(t *testing.T) {
	// Any failed run must cost more than the default configuration: cliffs
	// are never attractive.
	sim := simA(t)
	ws := Workloads()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := ws[rng.Intn(len(ws))]
		d := rng.Intn(3)
		r := sim.Evaluate(w, d, sim.Space().RandomAction(rng))
		if !r.Failed {
			return true
		}
		return r.ExecTime > sim.DefaultTime(w, d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestInputIndexPanics(t *testing.T) {
	sim := simA(t)
	ts, _ := WorkloadByShort("TS")
	defer func() {
		if recover() == nil {
			t.Fatal("bad input index did not panic")
		}
	}()
	sim.Evaluate(ts, 3, sim.Space().DefaultAction())
}

func TestCloseToOptimalSparsity(t *testing.T) {
	// The Fig. 2 premise: most random configurations beat the default, but
	// few come within 10% of the best found.
	sim := simA(t)
	rng := rand.New(rand.NewSource(7))
	ts, _ := WorkloadByShort("TS")
	def := sim.DefaultTime(ts, 0)
	var times []float64
	best := def
	for i := 0; i < 200; i++ {
		r := sim.Evaluate(ts, 0, sim.Space().RandomAction(rng))
		times = append(times, r.ExecTime)
		if !r.Failed && r.ExecTime < best {
			best = r.ExecTime
		}
	}
	var beatDef, within10 int
	for _, x := range times {
		if x < def {
			beatDef++
		}
		if x <= best*1.10 {
			within10++
		}
	}
	if beatDef < 100 {
		t.Fatalf("only %d/200 random configs beat default; expected a majority", beatDef)
	}
	if within10 > 20 {
		t.Fatalf("%d/200 within 10%% of best; close-to-optimal should be sparse", within10)
	}
}
