package sparksim

import (
	"math"
	"math/rand"
	"testing"
)

func TestBreakdownComponentsPositive(t *testing.T) {
	sim := NewSimulator(ClusterA(), 1)
	sim.NoiseSigma = 0
	for _, w := range Workloads() {
		r := sim.DefaultResult(w, 0)
		bk := r.Breakdown
		if bk.Startup <= 0 || bk.ReadMap <= 0 || bk.Reduce <= 0 {
			t.Errorf("%s: non-positive core phases %+v", w.Short, bk)
		}
		if bk.GCFrac < 0 || bk.GCFrac > 0.4 {
			t.Errorf("%s: gc fraction %v outside [0, 0.4]", w.Short, bk.GCFrac)
		}
		if bk.SpillRat < 0 {
			t.Errorf("%s: negative spill ratio", w.Short)
		}
	}
}

func TestBreakdownSumConsistent(t *testing.T) {
	// For a successful noise-free run, the total must equal the sum of
	// phases with the GC inflation on compute plus the multiplicative
	// penalty remainder.
	sim := NewSimulator(ClusterA(), 1)
	sim.NoiseSigma = 0
	ts, _ := WorkloadByShort("TS")
	r := sim.DefaultResult(ts, 0)
	bk := r.Breakdown
	compute := (bk.ReadMap + bk.Reduce) / (1 - bk.GCFrac)
	sum := bk.Startup + compute + bk.Shuffle + bk.Recache + bk.Write + bk.Penalty
	if math.Abs(sum-r.ExecTime) > 1e-6*r.ExecTime {
		t.Fatalf("breakdown sum %.3f != total %.3f", sum, r.ExecTime)
	}
}

func TestShuffleHeavyWorkloadShuffleDominant(t *testing.T) {
	// TeraSort's shuffle phase must dwarf WordCount's at the same input
	// size and configuration.
	sim := NewSimulator(ClusterA(), 1)
	sim.NoiseSigma = 0
	ts, _ := WorkloadByShort("TS")
	wc, _ := WorkloadByShort("WC")
	v := sim.Space().DefaultValues()
	st := sim.EvaluateValues(ts, 0, v).Breakdown.Shuffle
	sw := sim.EvaluateValues(wc, 0, v).Breakdown.Shuffle
	if st < 4*sw {
		t.Fatalf("TeraSort shuffle %.1fs not >> WordCount shuffle %.1fs", st, sw)
	}
}

func TestIterativeWorkloadRecache(t *testing.T) {
	// Under the memory-starved default, KMeans must pay recompute cost in
	// later iterations; TeraSort (non-iterative) must not.
	sim := NewSimulator(ClusterA(), 1)
	sim.NoiseSigma = 0
	km, _ := WorkloadByShort("KM")
	ts, _ := WorkloadByShort("TS")
	if got := sim.DefaultResult(km, 0).Breakdown.Recache; got <= 0 {
		t.Fatalf("KMeans default recache = %v, want > 0", got)
	}
	if got := sim.DefaultResult(ts, 0).Breakdown.Recache; got != 0 {
		t.Fatalf("TeraSort recache = %v, want 0", got)
	}
}

func TestPageCachePenaltyInteriorOptimum(t *testing.T) {
	// For the I/O-heavy TeraSort, maxing executor memory must at some
	// point stop helping: the page-cache starvation penalty makes blanket
	// max-memory configurations worse than moderate ones.
	sim := NewSimulator(ClusterA(), 1)
	sim.NoiseSigma = 0
	ts, _ := WorkloadByShort("TS")
	v := sim.Space().DefaultValues()
	setValue(t, sim, v, "spark.executor.memory", 4)
	setValue(t, sim, v, "spark.executor.cores", 4)
	setValue(t, sim, v, "yarn.nodemanager.resource.memory-mb", 15360)
	setValue(t, sim, v, "yarn.scheduler.maximum-allocation-mb", 15360)
	setValue(t, sim, v, "yarn.nodemanager.resource.cpu-vcores", 16)

	// Two 4 GB executors per node leave the OS its file cache; packing a
	// third consumes nearly all physical memory and throttles disk.
	setValue(t, sim, v, "spark.executor.instances", 6)
	moderate := sim.EvaluateValues(ts, 0, v)
	setValue(t, sim, v, "spark.executor.instances", 9)
	packed := sim.EvaluateValues(ts, 0, v)
	if moderate.Failed || packed.Failed {
		t.Fatalf("unexpected failures: %v %v", moderate.Failed, packed.Failed)
	}
	if packed.TotalCores <= moderate.TotalCores {
		t.Fatalf("packed run did not get more cores (%d vs %d)", packed.TotalCores, moderate.TotalCores)
	}
	if packed.ExecTime <= moderate.ExecTime {
		t.Fatalf("dense packing (%.1fs, %d cores) not worse than moderate (%.1fs, %d cores); interior optimum missing",
			packed.ExecTime, packed.TotalCores, moderate.ExecTime, moderate.TotalCores)
	}
}

func TestCPUOversubscriptionPenalty(t *testing.T) {
	// Cluster A's NodeManager cannot advertise beyond its 16 physical
	// cores, but Cluster B's 8-core VMs can (the knob goes to 16): YARN
	// then schedules more concurrent tasks than the silicon runs, and the
	// extra cores must not pay off.
	sim := NewSimulator(ClusterB(), 1)
	sim.NoiseSigma = 0
	wc, _ := WorkloadByShort("WC")
	v := sim.Space().DefaultValues()
	setValue(t, sim, v, "spark.executor.memory", 1)
	setValue(t, sim, v, "yarn.nodemanager.resource.cpu-vcores", 16)
	setValue(t, sim, v, "yarn.scheduler.maximum-allocation-vcores", 16)
	setValue(t, sim, v, "spark.executor.instances", 12)

	setValue(t, sim, v, "spark.executor.cores", 2) // fits 24 physical cores
	fit := sim.EvaluateValues(wc, 2, v)
	setValue(t, sim, v, "spark.executor.cores", 4) // 32 tasks on 24 cores
	over := sim.EvaluateValues(wc, 2, v)
	if fit.Failed || over.Failed {
		t.Fatalf("unexpected failures: %v %v", fit.Failed, over.Failed)
	}
	if over.TotalCores <= fit.TotalCores {
		t.Fatalf("oversubscribed run did not get more vcores (%d vs %d)", over.TotalCores, fit.TotalCores)
	}
	if over.ExecTime <= fit.ExecTime {
		t.Fatalf("oversubscribed (%.1fs) not slower than fitted (%.1fs)", over.ExecTime, fit.ExecTime)
	}
}

func TestExecutorsReportedMatchRequest(t *testing.T) {
	sim := NewSimulator(ClusterA(), 1)
	ts, _ := WorkloadByShort("TS")
	v := sim.Space().DefaultValues()
	setValue(t, sim, v, "spark.executor.instances", 4)
	r := sim.EvaluateValues(ts, 0, v)
	if r.Executors != 4 {
		t.Fatalf("granted %d executors, requested 4 with ample capacity", r.Executors)
	}
	if r.TotalCores != 4 {
		t.Fatalf("total cores %d for 4 single-core executors", r.TotalCores)
	}
}

func TestLargerClusterBInputsStillDeterministic(t *testing.T) {
	simB := NewSimulator(ClusterB(), 7)
	rng := rand.New(rand.NewSource(2))
	km, _ := WorkloadByShort("KM")
	u := simB.Space().RandomAction(rng)
	a := simB.Evaluate(km, 2, u)
	b := simB.Evaluate(km, 2, u)
	if a.ExecTime != b.ExecTime {
		t.Fatal("repeat evaluation differs")
	}
}
