package sparksim

import "deepcat/internal/config"

// Component labels for CountByComponent accounting (Table 2).
const (
	ComponentSpark = "spark"
	ComponentYARN  = "yarn"
	ComponentHDFS  = "hdfs"
)

// PipelineSpace returns the paper's 32-parameter configuration space for
// the HDFS + YARN + Spark pipeline (Table 2): 20 Spark parameters
// (including the Spark-YARN connector), 7 YARN parameters and 5 HDFS
// parameters. Defaults follow Apache Spark 2.2 / Hadoop 2.7 out-of-the-box
// values; ranges follow the official tuning guides for a 16 GB, 16-core
// node.
func PipelineSpace() *config.Space {
	return config.MustNewSpace([]config.Param{
		// --- Spark (20, incl. Spark-YARN connector) ---
		{Name: "spark.executor.instances", Component: ComponentSpark, Kind: config.Numeric, Min: 1, Max: 12, Default: 2, Integer: true},
		{Name: "spark.executor.cores", Component: ComponentSpark, Kind: config.Numeric, Min: 1, Max: 8, Default: 1, Integer: true},
		{Name: "spark.executor.memory", Component: ComponentSpark, Kind: config.Numeric, Min: 1, Max: 10, Default: 1, Integer: true, Unit: "GB"},
		{Name: "spark.driver.memory", Component: ComponentSpark, Kind: config.Numeric, Min: 1, Max: 8, Default: 1, Integer: true, Unit: "GB"},
		{Name: "spark.driver.cores", Component: ComponentSpark, Kind: config.Numeric, Min: 1, Max: 4, Default: 1, Integer: true},
		{Name: "spark.default.parallelism", Component: ComponentSpark, Kind: config.Numeric, Min: 8, Max: 256, Default: 16, Integer: true},
		{Name: "spark.memory.fraction", Component: ComponentSpark, Kind: config.Numeric, Min: 0.4, Max: 0.9, Default: 0.6},
		{Name: "spark.memory.storageFraction", Component: ComponentSpark, Kind: config.Numeric, Min: 0.2, Max: 0.8, Default: 0.5},
		{Name: "spark.shuffle.compress", Component: ComponentSpark, Kind: config.Bool, Default: 1},
		{Name: "spark.shuffle.spill.compress", Component: ComponentSpark, Kind: config.Bool, Default: 1},
		{Name: "spark.shuffle.file.buffer", Component: ComponentSpark, Kind: config.Numeric, Min: 16, Max: 128, Default: 32, Integer: true, Unit: "KB"},
		{Name: "spark.reducer.maxSizeInFlight", Component: ComponentSpark, Kind: config.Numeric, Min: 24, Max: 144, Default: 48, Integer: true, Unit: "MB"},
		{Name: "spark.io.compression.codec", Component: ComponentSpark, Kind: config.Categorical, Choices: []string{"lz4", "lzf", "snappy"}, Default: 0},
		{Name: "spark.serializer", Component: ComponentSpark, Kind: config.Categorical, Choices: []string{"java", "kryo"}, Default: 0},
		{Name: "spark.kryoserializer.buffer.max", Component: ComponentSpark, Kind: config.Numeric, Min: 32, Max: 128, Default: 64, Integer: true, Unit: "MB"},
		{Name: "spark.rdd.compress", Component: ComponentSpark, Kind: config.Bool, Default: 0},
		{Name: "spark.broadcast.blockSize", Component: ComponentSpark, Kind: config.Numeric, Min: 1, Max: 16, Default: 4, Integer: true, Unit: "MB"},
		{Name: "spark.locality.wait", Component: ComponentSpark, Kind: config.Numeric, Min: 0, Max: 10, Default: 3, Integer: true, Unit: "s"},
		{Name: "spark.scheduler.mode", Component: ComponentSpark, Kind: config.Categorical, Choices: []string{"FIFO", "FAIR"}, Default: 0},
		{Name: "spark.yarn.am.memory", Component: ComponentSpark, Kind: config.Numeric, Min: 1, Max: 4, Default: 1, Integer: true, Unit: "GB"},

		// --- YARN (7) ---
		{Name: "yarn.nodemanager.resource.memory-mb", Component: ComponentYARN, Kind: config.Numeric, Min: 4096, Max: 15360, Default: 8192, Integer: true, Unit: "MB"},
		{Name: "yarn.nodemanager.resource.cpu-vcores", Component: ComponentYARN, Kind: config.Numeric, Min: 6, Max: 16, Default: 8, Integer: true},
		{Name: "yarn.scheduler.maximum-allocation-mb", Component: ComponentYARN, Kind: config.Numeric, Min: 8192, Max: 15360, Default: 8192, Integer: true, Unit: "MB"},
		{Name: "yarn.scheduler.minimum-allocation-mb", Component: ComponentYARN, Kind: config.Numeric, Min: 256, Max: 2048, Default: 1024, Integer: true, Unit: "MB"},
		{Name: "yarn.scheduler.maximum-allocation-vcores", Component: ComponentYARN, Kind: config.Numeric, Min: 4, Max: 16, Default: 8, Integer: true},
		{Name: "yarn.nodemanager.vmem-pmem-ratio", Component: ComponentYARN, Kind: config.Numeric, Min: 2, Max: 5, Default: 2.1},
		{Name: "yarn.nodemanager.pmem-check-enabled", Component: ComponentYARN, Kind: config.Bool, Default: 1},

		// --- HDFS (5) ---
		{Name: "dfs.blocksize", Component: ComponentHDFS, Kind: config.Numeric, Min: 32, Max: 256, Default: 128, Integer: true, Unit: "MB"},
		{Name: "dfs.replication", Component: ComponentHDFS, Kind: config.Numeric, Min: 1, Max: 3, Default: 3, Integer: true},
		{Name: "dfs.namenode.handler.count", Component: ComponentHDFS, Kind: config.Numeric, Min: 10, Max: 100, Default: 10, Integer: true},
		{Name: "dfs.datanode.handler.count", Component: ComponentHDFS, Kind: config.Numeric, Min: 10, Max: 64, Default: 10, Integer: true},
		{Name: "io.file.buffer.size", Component: ComponentHDFS, Kind: config.Numeric, Min: 4, Max: 128, Default: 4, Integer: true, Unit: "KB"},
	})
}
