package sparksim

import (
	"math/rand"
	"testing"
)

func BenchmarkEvaluate(b *testing.B) {
	sim := NewSimulator(ClusterA(), 1)
	ts, err := WorkloadByShort("TS")
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	u := sim.Space().RandomAction(rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Evaluate(ts, 0, u)
	}
}

func BenchmarkEvaluateAllWorkloads(b *testing.B) {
	sim := NewSimulator(ClusterA(), 1)
	rng := rand.New(rand.NewSource(3))
	pairs := AllPairs()
	actions := make([][]float64, len(pairs))
	for i := range actions {
		actions[i] = sim.Space().RandomAction(rng)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		sim.Evaluate(p.Workload, p.InputIdx, actions[i%len(actions)])
	}
}

func BenchmarkDenormalize(b *testing.B) {
	space := PipelineSpace()
	u := space.DefaultAction()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		space.Denormalize(u)
	}
}
