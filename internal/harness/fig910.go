package harness

import (
	"io"

	"deepcat/internal/env"
	"deepcat/internal/sparksim"
)

// Fig9Row is one bar group of the workload-adaptability study: a DeepCAT
// model trained on one workload tuning PageRank D1, compared with the
// natively trained baselines.
type Fig9Row struct {
	Label    string // e.g. "M_WC->PR"
	BestTime float64
	Cost     float64
}

// Fig9Result is the paper's Fig. 9.
type Fig9Result struct {
	// DeepCATRows holds M_PR->PR, M_WC->PR, M_TS->PR, M_KM->PR.
	DeepCATRows []Fig9Row
	// CDBTune / OtterTune are natively trained/tuned on PR-D1.
	CDBTune   Fig9Row
	OtterTune Fig9Row
	Default   float64
}

// RunFig9 evaluates workload adaptability: DeepCAT models offline-trained
// on each of the four workloads online-tune PageRank D1.
func (h *Harness) RunFig9() Fig9Result {
	pr, err := sparksim.WorkloadByShort("PR")
	if err != nil {
		panic(err)
	}
	target := h.EnvA(pr, 0)
	res := Fig9Result{Default: target.DefaultTime()}
	reps := float64(h.Opts.Replications)

	for _, src := range []string{"PR", "WC", "TS", "KM"} {
		w, err := sparksim.WorkloadByShort(src)
		if err != nil {
			panic(err)
		}
		srcEnv := h.EnvA(w, 0)
		row := Fig9Row{Label: "M_" + src + "->PR"}
		for s := int64(0); s < int64(h.Opts.Replications); s++ {
			d := h.DeepCATModel(srcEnv, s)
			rep := d.Clone().OnlineTune(target)
			row.BestTime += rep.BestTime / reps
			row.Cost += rep.TotalCost() / reps
		}
		res.DeepCATRows = append(res.DeepCATRows, row)
	}

	res.CDBTune = Fig9Row{Label: "CDBTune(PR)"}
	res.OtterTune = Fig9Row{Label: "OtterTune(PR)"}
	for s := int64(0); s < int64(h.Opts.Replications); s++ {
		cb := h.CDBTuneModel(target, s)
		rep := cb.Clone().OnlineTune(target)
		res.CDBTune.BestTime += rep.BestTime / reps
		res.CDBTune.Cost += rep.TotalCost() / reps

		ot := h.OtterTuner(100 + s)
		rep = ot.OnlineTune(target, target.Label())
		res.OtterTune.BestTime += rep.BestTime / reps
		res.OtterTune.Cost += rep.TotalCost() / reps
	}
	return res
}

// Fprint renders the adaptability bars.
func (r Fig9Result) Fprint(w io.Writer) {
	writeRow(w, "Figure 9: adapting to different workloads (target PR-D1, default %.1fs)", r.Default)
	writeRow(w, "%-16s %-14s %s", "model", "best time (s)", "total tuning cost (s)")
	for _, row := range r.DeepCATRows {
		writeRow(w, "%-16s %-14.1f %.1f", row.Label, row.BestTime, row.Cost)
	}
	writeRow(w, "%-16s %-14.1f %.1f", r.CDBTune.Label, r.CDBTune.BestTime, r.CDBTune.Cost)
	writeRow(w, "%-16s %-14.1f %.1f", r.OtterTune.Label, r.OtterTune.BestTime, r.OtterTune.Cost)
}

// Fig10Row is one (workload, tuner) cell of the hardware-adaptability
// study: models trained on Cluster-A tuning the workload on Cluster-B.
type Fig10Row struct {
	Pair     string
	Tuner    string
	Speedup  float64
	Cost     float64
	BestTime float64
}

// Fig10Result is the paper's Fig. 10.
type Fig10Result struct {
	Rows []Fig10Row
	// Defaults maps pair label to Cluster-B default time.
	Defaults map[string]float64
}

// RunFig10 trains on Cluster-A and online-tunes WordCount D1 and PageRank
// D1 on Cluster-B, with out-of-scope recommendations clamped to the new
// environment's boundaries (§5.3.2).
func (h *Harness) RunFig10() Fig10Result {
	res := Fig10Result{Defaults: make(map[string]float64)}
	reps := float64(h.Opts.Replications)
	for _, short := range []string{"WC", "PR"} {
		w, err := sparksim.WorkloadByShort(short)
		if err != nil {
			panic(err)
		}
		srcEnv := h.EnvA(w, 0)
		target := h.EnvB(w, 0)
		pair := sparksim.PairLabel(w, 0)
		res.Defaults[pair] = target.DefaultTime()

		rows := map[string]*Fig10Row{}
		for _, tn := range TunerNames {
			rows[tn] = &Fig10Row{Pair: pair, Tuner: tn}
		}
		for s := int64(0); s < int64(h.Opts.Replications); s++ {
			var out *env.Report
			d := h.DeepCATModel(srcEnv, s)
			out = d.Clone().OnlineTune(target)
			accumulate(rows["DeepCAT"], out, target.DefaultTime(), reps)

			cb := h.CDBTuneModel(srcEnv, s)
			out = cb.Clone().OnlineTune(target)
			accumulate(rows["CDBTune"], out, target.DefaultTime(), reps)

			ot := h.OtterTuner(200 + s)
			out = ot.OnlineTune(target, target.Label())
			accumulate(rows["OtterTune"], out, target.DefaultTime(), reps)
		}
		for _, tn := range TunerNames {
			res.Rows = append(res.Rows, *rows[tn])
		}
	}
	return res
}

func accumulate(row *Fig10Row, rep *env.Report, defTime, reps float64) {
	row.Speedup += rep.Speedup(defTime) / reps
	row.Cost += rep.TotalCost() / reps
	row.BestTime += rep.BestTime / reps
}

// Fprint renders the hardware-adaptability results.
func (r Fig10Result) Fprint(w io.Writer) {
	writeRow(w, "Figure 10: adapting Cluster-A models to Cluster-B (clipped to hardware bounds)")
	writeRow(w, "%-8s %-10s %-10s %-12s %s", "pair", "tuner", "speedup", "best (s)", "total cost (s)")
	for _, row := range r.Rows {
		writeRow(w, "%-8s %-10s %-10.2f %-12.1f %.1f (default %.1fs)",
			row.Pair, row.Tuner, row.Speedup, row.BestTime, row.Cost, r.Defaults[row.Pair])
	}
}
