package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunDynamicStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short mode")
	}
	h := New(tinyOptions())
	r, err := h.RunDynamic([]string{"TS", "WC"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Steps) != 4*3 {
		t.Fatalf("steps = %d, want 12", len(r.Steps))
	}
	// Requests alternate workloads.
	if !strings.HasPrefix(r.Steps[0].Pair, "TS") || !strings.HasPrefix(r.Steps[3].Pair, "WC") {
		t.Fatalf("pair sequence wrong: %s then %s", r.Steps[0].Pair, r.Steps[3].Pair)
	}
	for _, tn := range TunerNames {
		if r.TotalCost[tn] <= 0 {
			t.Fatalf("%s: non-positive total cost", tn)
		}
	}
	var buf bytes.Buffer
	r.Fprint(&buf)
	if !strings.Contains(buf.String(), "Dynamic workload stream") {
		t.Fatal("Fprint missing header")
	}
}

func TestRunDynamicAccumulatesExperience(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short mode")
	}
	// Serving the same workload repeatedly must not degrade: the tuner's
	// later visits benefit from accumulated online experience, so the mean
	// speedup over the second half of the stream is at least ~80% of the
	// first half's (it is usually better).
	opts := tinyOptions()
	opts.OfflineIters = 500
	h := New(opts)
	r, err := h.RunDynamic([]string{"TS"}, 6)
	if err != nil {
		t.Fatal(err)
	}
	var first, second float64
	var n1, n2 int
	for _, s := range r.Steps {
		if s.Tuner != "DeepCAT" {
			continue
		}
		if s.Request <= 3 {
			first += s.Speedup
			n1++
		} else {
			second += s.Speedup
			n2++
		}
	}
	first /= float64(n1)
	second /= float64(n2)
	if second < 0.8*first {
		t.Fatalf("later requests degraded: first half %.2fx, second half %.2fx", first, second)
	}
}

func TestRunDynamicEmptyErrors(t *testing.T) {
	if _, err := New(tinyOptions()).RunDynamic(nil, 3); err == nil {
		t.Fatal("empty workload list did not return an error")
	}
	if _, err := New(tinyOptions()).RunDynamic([]string{"XX"}, 3); err == nil {
		t.Fatal("unknown workload short did not return an error")
	}
}
