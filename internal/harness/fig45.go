package harness

import (
	"io"
	"math/rand"

	"deepcat/internal/core"
	"deepcat/internal/sparksim"
)

// Fig4Result compares conventional experience replay against RDPER: the
// best execution time found by 5 online steps from models checkpointed at
// increasing offline-training iteration counts (paper Fig. 4).
type Fig4Result struct {
	Marks []int
	// BestRDPER[i] / BestUniform[i] is the mean best online execution time
	// from the model checkpointed at Marks[i].
	BestRDPER   []float64
	BestUniform []float64
}

// RunFig4 trains TD3 once per replay mode per replication (checkpointing
// along the way) and online-tunes a clone at every mark.
func (h *Harness) RunFig4(marks []int) Fig4Result {
	ts, err := sparksim.WorkloadByShort("TS")
	if err != nil {
		panic(err)
	}
	e := h.EnvA(ts, 0)
	res := Fig4Result{
		Marks:       marks,
		BestRDPER:   make([]float64, len(marks)),
		BestUniform: make([]float64, len(marks)),
	}
	reps := float64(h.Opts.Replications)
	for _, mode := range []string{"rdper", "uniform"} {
		out := res.BestRDPER
		if mode == "uniform" {
			out = res.BestUniform
		}
		for s := int64(0); s < int64(h.Opts.Replications); s++ {
			cfg := core.DefaultConfig(e.StateDim(), e.Space().Dim())
			cfg.ReplayMode = mode
			cfg.OnlineSteps = h.Opts.OnlineSteps
			d, err := core.New(rand.New(rand.NewSource(h.Opts.Seed*7000+s)), cfg)
			if err != nil {
				panic(err)
			}
			mi := 0
			d.OfflineTrain(e, marks[len(marks)-1], func(it int) {
				if mi < len(marks) && it == marks[mi] {
					rep := d.Clone().OnlineTune(e)
					out[mi] += rep.BestTime / reps
					mi++
				}
			})
		}
	}
	return res
}

// Fprint renders the two convergence curves.
func (r Fig4Result) Fprint(w io.Writer) {
	writeRow(w, "Figure 4: best online execution time vs offline training iterations (TS-D1)")
	writeRow(w, "%-10s %-18s %s", "iterations", "TD3+RDPER (s)", "TD3 conventional ER (s)")
	for i, m := range r.Marks {
		writeRow(w, "%-10d %-18.1f %.1f", m, r.BestRDPER[i], r.BestUniform[i])
	}
}

// Fig5Result is the Twin-Q Optimizer ablation: per-step execution times of
// 5 online tuning steps with and without the optimizer, from the same
// offline model (paper Fig. 5).
type Fig5Result struct {
	// StepsWith[i] / StepsWithout[i] are mean per-step execution times.
	StepsWith    []float64
	StepsWithout []float64
	// Totals and best configurations found.
	TotalWith    float64
	TotalWithout float64
	BestWith     float64
	BestWithout  float64
}

// RunFig5 uses a partially converged offline model (the regime in which the
// raw actor still emits sub-optimal actions, as in the paper's online
// fine-tuning of a standard model on a new request) and runs the online
// stage with and without the Twin-Q Optimizer.
func (h *Harness) RunFig5(offlineIters int) Fig5Result {
	ts, err := sparksim.WorkloadByShort("TS")
	if err != nil {
		panic(err)
	}
	e := h.EnvA(ts, 0)
	steps := h.Opts.OnlineSteps
	res := Fig5Result{
		StepsWith:    make([]float64, steps),
		StepsWithout: make([]float64, steps),
	}
	reps := float64(h.Opts.Replications)
	for s := int64(0); s < int64(h.Opts.Replications); s++ {
		cfg := core.DefaultConfig(e.StateDim(), e.Space().Dim())
		cfg.OnlineSteps = steps
		d, err := core.New(rand.New(rand.NewSource(h.Opts.Seed*8000+s)), cfg)
		if err != nil {
			panic(err)
		}
		d.OfflineTrain(e, offlineIters, nil)

		with := d.Clone().OnlineTune(e)
		noOpt := d.Clone()
		noOpt.Cfg.UseTwinQ = false
		without := noOpt.OnlineTune(e)

		for i := 0; i < steps && i < len(with.Steps); i++ {
			res.StepsWith[i] += with.Steps[i].ExecTime / reps
		}
		for i := 0; i < steps && i < len(without.Steps); i++ {
			res.StepsWithout[i] += without.Steps[i].ExecTime / reps
		}
		res.TotalWith += with.EvaluationCost() / reps
		res.TotalWithout += without.EvaluationCost() / reps
		res.BestWith += with.BestTime / reps
		res.BestWithout += without.BestTime / reps
	}
	return res
}

// Fprint renders per-step times and the totals.
func (r Fig5Result) Fprint(w io.Writer) {
	writeRow(w, "Figure 5: execution time per online step, with vs without Twin-Q Optimizer (TS-D1)")
	writeRow(w, "%-6s %-18s %s", "step", "DeepCAT (s)", "DeepCAT w/o Twin-Q (s)")
	for i := range r.StepsWith {
		writeRow(w, "%-6d %-18.1f %.1f", i+1, r.StepsWith[i], r.StepsWithout[i])
	}
	writeRow(w, "total  %-18.1f %.1f   (%.1f%% less with Twin-Q)", r.TotalWith, r.TotalWithout,
		100*(1-r.TotalWith/r.TotalWithout))
	writeRow(w, "best   %-18.1f %.1f", r.BestWith, r.BestWithout)
}
