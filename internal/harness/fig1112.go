package harness

import (
	"io"
	"math/rand"

	"deepcat/internal/core"
	"deepcat/internal/sparksim"
)

// Fig11Point is one beta setting of the RDPER ratio sweep.
type Fig11Point struct {
	Beta     float64
	BestTime float64
	Cost     float64
}

// Fig11Result is the paper's Fig. 11: best execution time and total online
// cost as a function of RDPER's high-reward batch ratio beta.
type Fig11Result struct {
	Points []Fig11Point
}

// RunFig11 trains one model per beta in {0.1..0.9} (per replication) on
// TeraSort D1 and runs the online stage.
func (h *Harness) RunFig11(offlineIters int) Fig11Result {
	ts, err := sparksim.WorkloadByShort("TS")
	if err != nil {
		panic(err)
	}
	e := h.EnvA(ts, 0)
	res := Fig11Result{Points: make([]Fig11Point, 9)}
	reps := float64(h.Opts.Replications)
	h.forEach(9, func(i int) {
		b := i + 1
		beta := float64(b) / 10
		pt := Fig11Point{Beta: beta}
		for s := int64(0); s < int64(h.Opts.Replications); s++ {
			cfg := core.DefaultConfig(e.StateDim(), e.Space().Dim())
			cfg.Beta = beta
			cfg.OnlineSteps = h.Opts.OnlineSteps
			d, err := core.New(rand.New(rand.NewSource(h.Opts.Seed*9000+int64(b)*17+s)), cfg)
			if err != nil {
				panic(err)
			}
			d.OfflineTrain(e, offlineIters, nil)
			rep := d.Clone().OnlineTune(e)
			pt.BestTime += rep.BestTime / reps
			pt.Cost += rep.TotalCost() / reps
		}
		res.Points[i] = pt
	})
	return res
}

// Fprint renders the beta sweep.
func (r Fig11Result) Fprint(w io.Writer) {
	writeRow(w, "Figure 11: DeepCAT under different beta settings (TS-D1)")
	writeRow(w, "%-6s %-14s %s", "beta", "best time (s)", "total cost (s)")
	for _, p := range r.Points {
		writeRow(w, "%-6.1f %-14.1f %.1f", p.Beta, p.BestTime, p.Cost)
	}
}

// Fig12Point is one Q_th setting of the Twin-Q threshold sweep.
type Fig12Point struct {
	QTh      float64
	BestTime float64
	Cost     float64
}

// Fig12Result is the paper's Fig. 12: best execution time and total online
// cost as a function of the Twin-Q Optimizer threshold Q_th.
type Fig12Result struct {
	Points []Fig12Point
}

// RunFig12 trains one model per replication and runs the online stage under
// each Q_th (the threshold only affects online tuning, so the offline model
// is shared across settings).
func (h *Harness) RunFig12(offlineIters int, ths []float64) Fig12Result {
	ts, err := sparksim.WorkloadByShort("TS")
	if err != nil {
		panic(err)
	}
	e := h.EnvA(ts, 0)
	res := Fig12Result{Points: make([]Fig12Point, len(ths))}
	for i, th := range ths {
		res.Points[i].QTh = th
	}
	reps := float64(h.Opts.Replications)
	for s := int64(0); s < int64(h.Opts.Replications); s++ {
		cfg := core.DefaultConfig(e.StateDim(), e.Space().Dim())
		cfg.OnlineSteps = h.Opts.OnlineSteps
		d, err := core.New(rand.New(rand.NewSource(h.Opts.Seed*9500+s)), cfg)
		if err != nil {
			panic(err)
		}
		d.OfflineTrain(e, offlineIters, nil)
		for i, th := range ths {
			c := d.Clone()
			c.Cfg.TwinQ.QTh = th
			rep := c.OnlineTune(e)
			res.Points[i].BestTime += rep.BestTime / reps
			res.Points[i].Cost += rep.TotalCost() / reps
		}
	}
	return res
}

// Fprint renders the Q_th sweep.
func (r Fig12Result) Fprint(w io.Writer) {
	writeRow(w, "Figure 12: DeepCAT under different Q_th settings (TS-D1)")
	writeRow(w, "%-6s %-14s %s", "Q_th", "best time (s)", "total cost (s)")
	for _, p := range r.Points {
		writeRow(w, "%-6.1f %-14.1f %.1f", p.QTh, p.BestTime, p.Cost)
	}
}
