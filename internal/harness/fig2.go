package harness

import (
	"io"
	"math/rand"
	"sort"

	"deepcat/internal/sparksim"
)

// Fig2Result holds the CDF of random-configuration performance relative to
// the best found configuration (paper Fig. 2: 200 random TeraSort configs).
type Fig2Result struct {
	Pair string
	// DefaultTime is the default-configuration execution time.
	DefaultTime float64
	// BestTime is the best execution time among the sampled configs.
	BestTime float64
	// RelativePerf holds, sorted ascending, bestTime/execTime for each
	// sampled config (1.0 = optimal, small = far from optimal).
	RelativePerf []float64
	// FracBeatDefault is the fraction of samples faster than the default.
	FracBeatDefault float64
	// FracWithin10 is the fraction within 10% of the best.
	FracWithin10 float64
}

// RunFig2 samples n random configurations of TeraSort D1 (the paper uses
// n = 200) and computes their performance CDF.
func (h *Harness) RunFig2(n int) Fig2Result {
	ts, err := sparksim.WorkloadByShort("TS")
	if err != nil {
		panic(err)
	}
	e := h.EnvA(ts, 0)
	rng := rand.New(rand.NewSource(h.Opts.Seed * 5000))
	times := make([]float64, 0, n)
	best := e.DefaultTime()
	for i := 0; i < n; i++ {
		o := e.Evaluate(e.Space().RandomAction(rng))
		times = append(times, o.ExecTime)
		if !o.Failed && o.ExecTime < best {
			best = o.ExecTime
		}
	}
	res := Fig2Result{
		Pair:        "TS-D1",
		DefaultTime: e.DefaultTime(),
		BestTime:    best,
	}
	var beat, within int
	for _, t := range times {
		res.RelativePerf = append(res.RelativePerf, best/t)
		if t < res.DefaultTime {
			beat++
		}
		if t <= best*1.10 {
			within++
		}
	}
	sort.Float64s(res.RelativePerf)
	res.FracBeatDefault = float64(beat) / float64(n)
	res.FracWithin10 = float64(within) / float64(n)
	return res
}

// Fprint renders the CDF as decile rows plus the headline fractions.
func (r Fig2Result) Fprint(w io.Writer) {
	writeRow(w, "Figure 2: CDF of %d random configurations (%s), relative performance = best/time", len(r.RelativePerf), r.Pair)
	writeRow(w, "default=%.1fs best=%.1fs", r.DefaultTime, r.BestTime)
	writeRow(w, "%-22s %s", "relative performance", "cumulative probability")
	n := len(r.RelativePerf)
	for p := 1; p <= 10; p++ {
		idx := p*n/10 - 1
		if idx < 0 {
			idx = 0
		}
		writeRow(w, "%-22.3f %.2f", r.RelativePerf[idx], float64(p)/10)
	}
	writeRow(w, "beat default: %.1f%%   within 10%% of best: %.1f%%", 100*r.FracBeatDefault, 100*r.FracWithin10)
}
