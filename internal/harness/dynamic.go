package harness

import (
	"errors"
	"fmt"
	"io"
	"math/rand"

	"deepcat/internal/core"
	"deepcat/internal/env"
	"deepcat/internal/sparksim"
)

// DynamicStep is the outcome of one tuning request in the dynamic-workload
// stream.
type DynamicStep struct {
	Request  int
	Pair     string
	Tuner    string
	BestTime float64
	Speedup  float64
	Cost     float64
}

// DynamicResult is the extension study motivated by the paper's
// introduction: "configuration tuning is not a once-for-all job because the
// performance … is highly related to the workload characteristics … which
// may frequently change with time". A stream of tuning requests arrives,
// each for a different workload-input pair; DeepCAT serves every request
// from ONE offline model (fine-tuned online per request, accumulating
// experience across requests), while OtterTune re-maps and re-trains its GP
// per request and CDBTune fine-tunes its own single model.
type DynamicResult struct {
	Steps []DynamicStep
	// MeanSpeedup and TotalCost aggregate per tuner over the stream.
	MeanSpeedup map[string]float64
	TotalCost   map[string]float64
}

// RunDynamic serves a stream of requests cycling through the given pairs
// (paper abbreviations, e.g. "TS", "PR"), all at input D1. requests is the
// stream length. The DRL tuners are trained offline once, on the first
// pair only — the realistic setting where the standard environment used
// for offline training does not match most later requests.
func (h *Harness) RunDynamic(shorts []string, requests int) (DynamicResult, error) {
	if len(shorts) == 0 {
		return DynamicResult{}, errors.New("harness: RunDynamic needs at least one workload")
	}
	envs := make([]*env.SparkEnv, len(shorts))
	for i, s := range shorts {
		w, err := sparksim.WorkloadByShort(s)
		if err != nil {
			return DynamicResult{}, fmt.Errorf("harness: %w", err)
		}
		envs[i] = h.EnvA(w, 0)
	}

	res := DynamicResult{
		MeanSpeedup: make(map[string]float64),
		TotalCost:   make(map[string]float64),
	}

	// DeepCAT: one offline model on the first workload; the SAME tuner
	// instance serves every request, so online experience accumulates.
	dcCfg := core.DefaultConfig(envs[0].StateDim(), envs[0].Space().Dim())
	dcCfg.OnlineSteps = h.Opts.OnlineSteps
	dc, err := core.New(rand.New(rand.NewSource(h.Opts.Seed*16000)), dcCfg)
	if err != nil {
		return DynamicResult{}, fmt.Errorf("harness: dynamic stream: %w", err)
	}
	dc.OfflineTrain(envs[0], h.Opts.OfflineIters, nil)

	// CDBTune: same protocol.
	cb := h.CDBTuneModel(envs[0], 0).Clone()

	// OtterTune: repository shared with the other experiments.
	ot := h.OtterTuner(400)

	for r := 0; r < requests; r++ {
		e := envs[r%len(envs)]
		pair := e.Label()

		dcRep := dc.OnlineTune(e)
		res.record(&res.Steps, r, pair, "DeepCAT", dcRep, e.DefaultTime())

		cbRep := cb.OnlineTune(e)
		res.record(&res.Steps, r, pair, "CDBTune", cbRep, e.DefaultTime())

		otRep := ot.OnlineTune(e, e.Label())
		res.record(&res.Steps, r, pair, "OtterTune", otRep, e.DefaultTime())
	}
	n := float64(requests)
	for _, tn := range TunerNames {
		res.MeanSpeedup[tn] /= n
	}
	return res, nil
}

// record appends a step and accumulates the aggregates.
func (r *DynamicResult) record(steps *[]DynamicStep, req int, pair, tuner string, rep *env.Report, def float64) {
	*steps = append(*steps, DynamicStep{
		Request:  req + 1,
		Pair:     pair,
		Tuner:    tuner,
		BestTime: rep.BestTime,
		Speedup:  rep.Speedup(def),
		Cost:     rep.TotalCost(),
	})
	r.MeanSpeedup[tuner] += rep.Speedup(def)
	r.TotalCost[tuner] += rep.TotalCost()
}

// Fprint renders the stream and the aggregates.
func (r DynamicResult) Fprint(w io.Writer) {
	writeRow(w, "Dynamic workload stream: one tuner instance serving changing requests")
	writeRow(w, "%-4s %-20s %-10s %-10s %-10s %s", "req", "pair", "tuner", "best (s)", "speedup", "cost (s)")
	for _, s := range r.Steps {
		writeRow(w, "%-4d %-20s %-10s %-10.1f %-10.2f %.1f", s.Request, s.Pair, s.Tuner, s.BestTime, s.Speedup, s.Cost)
	}
	writeRow(w, "mean speedup: DeepCAT %.2fx  CDBTune %.2fx  OtterTune %.2fx",
		r.MeanSpeedup["DeepCAT"], r.MeanSpeedup["CDBTune"], r.MeanSpeedup["OtterTune"])
	writeRow(w, "total cost:   DeepCAT %.0fs  CDBTune %.0fs  OtterTune %.0fs",
		r.TotalCost["DeepCAT"], r.TotalCost["CDBTune"], r.TotalCost["OtterTune"])
}
