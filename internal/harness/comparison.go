package harness

import (
	"io"

	"deepcat/internal/env"
	"deepcat/internal/sparksim"
)

// TunerNames lists the compared approaches in presentation order.
var TunerNames = []string{"DeepCAT", "CDBTune", "OtterTune"}

// PairComparison aggregates the online tuning sessions of all three tuners
// on one workload-input pair.
type PairComparison struct {
	Pair        string
	DefaultTime float64
	// Reports maps tuner name to one report per replication seed.
	Reports map[string][]*env.Report
}

// MeanSpeedup returns the average Fig. 6 speedup of the named tuner.
func (p PairComparison) MeanSpeedup(tuner string) float64 {
	reps := p.Reports[tuner]
	if len(reps) == 0 {
		return 0
	}
	var s float64
	for _, r := range reps {
		s += r.Speedup(p.DefaultTime)
	}
	return s / float64(len(reps))
}

// MeanTotalCost returns the average Fig. 7 total online tuning time.
func (p PairComparison) MeanTotalCost(tuner string) float64 {
	reps := p.Reports[tuner]
	if len(reps) == 0 {
		return 0
	}
	var s float64
	for _, r := range reps {
		s += r.TotalCost()
	}
	return s / float64(len(reps))
}

// MeanRecommendCost returns the average recommendation-time component.
func (p PairComparison) MeanRecommendCost(tuner string) float64 {
	reps := p.Reports[tuner]
	if len(reps) == 0 {
		return 0
	}
	var s float64
	for _, r := range reps {
		s += r.RecommendationCost()
	}
	return s / float64(len(reps))
}

// ComparisonResult holds the full 12-pair, 3-tuner study behind Figures 6,
// 7 and 8.
type ComparisonResult struct {
	Pairs []PairComparison
}

// AvgSpeedup averages a tuner's speedup over all pairs.
func (c *ComparisonResult) AvgSpeedup(tuner string) float64 {
	var s float64
	for _, p := range c.Pairs {
		s += p.MeanSpeedup(tuner)
	}
	return s / float64(len(c.Pairs))
}

// AvgTotalCost averages a tuner's total online tuning time over all pairs.
func (c *ComparisonResult) AvgTotalCost(tuner string) float64 {
	var s float64
	for _, p := range c.Pairs {
		s += p.MeanTotalCost(tuner)
	}
	return s / float64(len(c.Pairs))
}

// RunComparison executes (or returns the cached) full comparison: for every
// workload-input pair and every replication seed, DeepCAT and CDBTune are
// offline-trained on the pair and fine-tuned online for OnlineSteps steps,
// and OtterTune tunes online against its repository with the pair's own
// entry held out.
func (h *Harness) RunComparison() *ComparisonResult {
	h.mu.Lock()
	cached := h.compare
	h.mu.Unlock()
	if cached != nil {
		return cached
	}
	// The OtterTune repository is shared: build it before fanning out so
	// workers only read it.
	h.Repository()
	pairs := sparksim.AllPairs()
	res := &ComparisonResult{Pairs: make([]PairComparison, len(pairs))}
	h.forEach(len(pairs), func(i int) {
		p := pairs[i]
		e := h.EnvA(p.Workload, p.InputIdx)
		pc := PairComparison{
			Pair:        sparksim.PairLabel(p.Workload, p.InputIdx),
			DefaultTime: e.DefaultTime(),
			Reports:     make(map[string][]*env.Report),
		}
		for s := int64(0); s < int64(h.Opts.Replications); s++ {
			dc := h.DeepCATModel(e, s)
			pc.Reports["DeepCAT"] = append(pc.Reports["DeepCAT"], dc.Clone().OnlineTune(e))

			cb := h.CDBTuneModel(e, s)
			pc.Reports["CDBTune"] = append(pc.Reports["CDBTune"], cb.Clone().OnlineTune(e))

			ot := h.OtterTuner(s)
			pc.Reports["OtterTune"] = append(pc.Reports["OtterTune"], ot.OnlineTune(e, e.Label()))
		}
		res.Pairs[i] = pc
	})
	h.mu.Lock()
	h.compare = res
	h.mu.Unlock()
	return res
}

// FprintFig6 renders the speedup-over-default bars of Fig. 6.
func (c *ComparisonResult) FprintFig6(w io.Writer) {
	writeRow(w, "Figure 6: speedup of best recommended configuration over default (higher is better)")
	writeRow(w, "%-8s %-10s %-10s %-10s %s", "pair", "default(s)", "DeepCAT", "CDBTune", "OtterTune")
	for _, p := range c.Pairs {
		writeRow(w, "%-8s %-10.1f %-10.2f %-10.2f %.2f", p.Pair, p.DefaultTime,
			p.MeanSpeedup("DeepCAT"), p.MeanSpeedup("CDBTune"), p.MeanSpeedup("OtterTune"))
	}
	writeRow(w, "%-8s %-10s %-10.2f %-10.2f %.2f", "AVG", "",
		c.AvgSpeedup("DeepCAT"), c.AvgSpeedup("CDBTune"), c.AvgSpeedup("OtterTune"))
	writeRow(w, "DeepCAT vs CDBTune: %.2fx   DeepCAT vs OtterTune: %.2fx",
		c.AvgSpeedup("DeepCAT")/c.AvgSpeedup("CDBTune"),
		c.AvgSpeedup("DeepCAT")/c.AvgSpeedup("OtterTune"))
}

// FprintFig7 renders the total-tuning-time bars of Fig. 7 with the
// recommendation-time breakdown (the black segments of the paper's figure).
func (c *ComparisonResult) FprintFig7(w io.Writer) {
	writeRow(w, "Figure 7: total online tuning time, recommendation time in parentheses (lower is better)")
	writeRow(w, "%-8s %-22s %-22s %s", "pair", "DeepCAT", "CDBTune", "OtterTune")
	for _, p := range c.Pairs {
		writeRow(w, "%-8s %8.1fs (%6.3fs)   %8.1fs (%6.3fs)   %8.1fs (%6.3fs)", p.Pair,
			p.MeanTotalCost("DeepCAT"), p.MeanRecommendCost("DeepCAT"),
			p.MeanTotalCost("CDBTune"), p.MeanRecommendCost("CDBTune"),
			p.MeanTotalCost("OtterTune"), p.MeanRecommendCost("OtterTune"))
	}
	dc, cb, ot := c.AvgTotalCost("DeepCAT"), c.AvgTotalCost("CDBTune"), c.AvgTotalCost("OtterTune")
	writeRow(w, "%-8s %8.1fs %15s %8.1fs %15s %8.1fs", "AVG", dc, "", cb, "", ot)
	writeRow(w, "DeepCAT saves %.1f%% vs CDBTune, %.1f%% vs OtterTune on average",
		100*(1-dc/cb), 100*(1-dc/ot))
}

// FprintFig8 renders, for each pair, the best-so-far execution time and the
// accumulated tuning cost after each online step (paper Fig. 8).
func (c *ComparisonResult) FprintFig8(w io.Writer) {
	writeRow(w, "Figure 8: best-so-far execution time / accumulated tuning cost per online step")
	for _, p := range c.Pairs {
		writeRow(w, "%s (default %.1fs)", p.Pair, p.DefaultTime)
		for _, tuner := range TunerNames {
			reps := p.Reports[tuner]
			if len(reps) == 0 {
				continue
			}
			r := reps[0] // representative replication
			best := r.BestSoFar()
			cost := r.AccumulatedCost()
			writeRow(w, "  %-10s", tuner)
			for i := range best {
				b := best[i]
				if b > 1e17 {
					b = -1 // no success yet
				}
				writeRow(w, "    step %d: best %7.1fs  accumulated cost %8.1fs", i+1, b, cost[i])
			}
		}
	}
}
