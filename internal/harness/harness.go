// Package harness regenerates every table and figure of the paper's
// evaluation (Tables 1-2, Figures 2-12) on the sparksim substrate, plus the
// ablation studies called out in DESIGN.md. Each experiment has a Run
// function returning a structured result and a Fprint method rendering the
// same rows/series the paper reports.
//
// Offline-trained models are cached per (environment, tuner, seed) inside a
// Harness, so experiments that share runs (Figures 6, 7 and 8 are three
// views of the same tuning sessions) train each model exactly once.
package harness

import (
	"fmt"
	"io"
	"math/rand"
	"sync"

	"deepcat/internal/baselines/cdbtune"
	"deepcat/internal/baselines/ottertune"
	"deepcat/internal/core"
	"deepcat/internal/env"
	"deepcat/internal/sparksim"
)

// Options scales the experiments. Full-paper fidelity uses DefaultOptions;
// benchmarks use QuickOptions to finish in CI-friendly time.
type Options struct {
	// Seed drives all randomness (simulator noise, network init,
	// exploration); every experiment is reproducible from it.
	Seed int64
	// OfflineIters is the offline training budget per DRL model.
	OfflineIters int
	// Replications is the number of independent seeds averaged per
	// reported number.
	Replications int
	// RepoSamples is OtterTune's offline sample count per workload.
	RepoSamples int
	// OnlineSteps is the online tuning budget (the paper uses 5).
	OnlineSteps int
	// Workers is the number of goroutines used by fan-out experiments
	// (pairs, sweep points). 0 or 1 runs serially; AutoWorkers() picks a
	// CPU-based value. Parallelism does not change results.
	Workers int
}

// DefaultOptions matches the scale used for EXPERIMENTS.md.
func DefaultOptions() Options {
	return Options{
		Seed:         1,
		OfflineIters: 2000,
		Replications: 3,
		RepoSamples:  150,
		OnlineSteps:  5,
	}
}

// QuickOptions is a reduced profile for benchmarks and smoke tests.
func QuickOptions() Options {
	return Options{
		Seed:         1,
		OfflineIters: 900,
		Replications: 1,
		RepoSamples:  80,
		OnlineSteps:  5,
	}
}

// Harness owns the simulators and the offline-model cache.
type Harness struct {
	Opts Options
	SimA *sparksim.Simulator
	SimB *sparksim.Simulator

	mu       sync.Mutex
	deepcats map[string]*core.DeepCAT
	cdbtunes map[string]*cdbtune.CDBTune
	repo     *ottertune.Repository
	compare  *ComparisonResult
}

// New creates a harness.
func New(opts Options) *Harness {
	return &Harness{
		Opts:     opts,
		SimA:     sparksim.NewSimulator(sparksim.ClusterA(), opts.Seed),
		SimB:     sparksim.NewSimulator(sparksim.ClusterB(), opts.Seed),
		deepcats: make(map[string]*core.DeepCAT),
		cdbtunes: make(map[string]*cdbtune.CDBTune),
	}
}

// EnvA returns the Cluster-A environment for a pair.
func (h *Harness) EnvA(w sparksim.Workload, inputIdx int) *env.SparkEnv {
	return env.NewSparkEnv(h.SimA, w, inputIdx)
}

// EnvB returns the Cluster-B environment for a pair, with §5.3.2 boundary
// clamping enabled (models trained on A recommend out-of-scope values).
func (h *Harness) EnvB(w sparksim.Workload, inputIdx int) *env.SparkEnv {
	e := env.NewSparkEnv(h.SimB, w, inputIdx)
	e.Clamp = true
	return e
}

// DeepCATModel returns (training on first use) a DeepCAT model offline-
// trained on the given Cluster-A environment with the given replication
// seed.
func (h *Harness) DeepCATModel(e env.Environment, seedOffset int64) *core.DeepCAT {
	key := fmt.Sprintf("dc|%s|%d", e.Label(), seedOffset)
	h.mu.Lock()
	m, ok := h.deepcats[key]
	h.mu.Unlock()
	if ok {
		return m
	}
	cfg := core.DefaultConfig(e.StateDim(), e.Space().Dim())
	cfg.OnlineSteps = h.Opts.OnlineSteps
	d, err := core.New(rand.New(rand.NewSource(h.Opts.Seed*1000+seedOffset)), cfg)
	if err != nil {
		panic(err) // default config is always valid
	}
	d.OfflineTrain(e, h.Opts.OfflineIters, nil)
	h.mu.Lock()
	h.deepcats[key] = d
	h.mu.Unlock()
	return d
}

// CDBTuneModel returns (training on first use) a CDBTune model.
func (h *Harness) CDBTuneModel(e env.Environment, seedOffset int64) *cdbtune.CDBTune {
	key := fmt.Sprintf("cb|%s|%d", e.Label(), seedOffset)
	h.mu.Lock()
	m, ok := h.cdbtunes[key]
	h.mu.Unlock()
	if ok {
		return m
	}
	cfg := cdbtune.DefaultConfig(e.StateDim(), e.Space().Dim())
	cfg.OnlineSteps = h.Opts.OnlineSteps
	c, err := cdbtune.New(rand.New(rand.NewSource(h.Opts.Seed*2000+seedOffset)), cfg)
	if err != nil {
		panic(err) // default config is always valid
	}
	c.OfflineTrain(e, h.Opts.OfflineIters)
	h.mu.Lock()
	h.cdbtunes[key] = c
	h.mu.Unlock()
	return c
}

// Repository returns OtterTune's offline repository over all 12 Cluster-A
// pairs, built on first use.
func (h *Harness) Repository() *ottertune.Repository {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.repo == nil {
		var envs []env.Environment
		for _, p := range sparksim.AllPairs() {
			envs = append(envs, env.NewSparkEnv(h.SimA, p.Workload, p.InputIdx))
		}
		h.repo = ottertune.BuildRepository(rand.New(rand.NewSource(h.Opts.Seed*3000+7)), envs, h.Opts.RepoSamples)
	}
	return h.repo
}

// OtterTuner builds an OtterTune instance over the shared repository.
func (h *Harness) OtterTuner(seedOffset int64) *ottertune.OtterTune {
	cfg := ottertune.DefaultConfig()
	cfg.OnlineSteps = h.Opts.OnlineSteps
	ot, err := ottertune.New(rand.New(rand.NewSource(h.Opts.Seed*4000+seedOffset)), h.Repository(), cfg)
	if err != nil {
		panic(err) // repository is non-empty by construction
	}
	return ot
}

// writeRow is a small helper for aligned text tables.
func writeRow(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format+"\n", args...)
}
