package harness

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"deepcat/internal/env"
)

func parseCSV(t *testing.T, data string) [][]string {
	t.Helper()
	records, err := csv.NewReader(strings.NewReader(data)).ReadAll()
	if err != nil {
		t.Fatalf("invalid csv: %v", err)
	}
	return records
}

func TestFig2CSV(t *testing.T) {
	h := New(tinyOptions())
	r := h.RunFig2(50)
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rec := parseCSV(t, buf.String())
	if len(rec) != 51 {
		t.Fatalf("records = %d, want header + 50", len(rec))
	}
	if rec[0][0] != "relative_perf" {
		t.Fatalf("header = %v", rec[0])
	}
}

func TestFig4And5And1112CSV(t *testing.T) {
	h := New(tinyOptions())
	var buf bytes.Buffer
	if err := h.RunFig4([]int{60, 120}).WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := len(parseCSV(t, buf.String())); got != 3 {
		t.Fatalf("fig4 records = %d", got)
	}
	buf.Reset()
	if err := h.RunFig5(80).WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := len(parseCSV(t, buf.String())); got != 6 {
		t.Fatalf("fig5 records = %d", got)
	}
	buf.Reset()
	r12 := h.RunFig12(80, []float64{0.2, 0.4})
	if err := r12.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := len(parseCSV(t, buf.String())); got != 3 {
		t.Fatalf("fig12 records = %d", got)
	}
}

func TestComparisonCSV(t *testing.T) {
	// Build a synthetic comparison to avoid training in a unit test.
	c := &ComparisonResult{Pairs: []PairComparison{{
		Pair:        "TS-D1",
		DefaultTime: 100,
		Reports: map[string][]*env.Report{
			"DeepCAT": {{
				Tuner: "DeepCAT", EnvLabel: "TS-D1",
				Steps: []env.TuningStep{
					{ExecTime: 50, RecommendSeconds: 0.1},
					{ExecTime: 40, RecommendSeconds: 0.1, Optimized: true},
				},
				BestTime: 40,
			}},
			"CDBTune":   {},
			"OtterTune": {},
		},
	}}}
	var buf bytes.Buffer
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rec := parseCSV(t, buf.String())
	if len(rec) != 3 { // header + 2 steps
		t.Fatalf("records = %d", len(rec))
	}
	if rec[2][8] != "true" { // twinq_optimized column of step 2
		t.Fatalf("optimized flag = %q", rec[2][8])
	}
	if rec[1][5] != "50" { // best_so_far after step 1
		t.Fatalf("best_so_far = %q", rec[1][5])
	}
}

func TestFig3CSV(t *testing.T) {
	h := New(tinyOptions())
	r := h.RunFig3(100, 50)
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rec := parseCSV(t, buf.String())
	if len(rec) != len(r.Points)+1 {
		t.Fatalf("records = %d", len(rec))
	}
	if len(rec[0]) != 5 {
		t.Fatalf("columns = %d", len(rec[0]))
	}
}
