package harness

import (
	"fmt"
	"io"
	"math/rand"

	"deepcat/internal/baselines/cdbtune"
	"deepcat/internal/core"
	"deepcat/internal/env"
	"deepcat/internal/sparksim"
)

// AblationRow is one variant of an ablation study.
type AblationRow struct {
	Variant  string
	BestTime float64
	Cost     float64
}

// AblationResult is a set of variants measured under identical budgets.
type AblationResult struct {
	Name string
	Rows []AblationRow
}

// Fprint renders an ablation table.
func (r AblationResult) Fprint(w io.Writer) {
	writeRow(w, "Ablation: %s (TS-D1)", r.Name)
	writeRow(w, "%-28s %-14s %s", "variant", "best time (s)", "total cost (s)")
	for _, row := range r.Rows {
		writeRow(w, "%-28s %-14.1f %.1f", row.Variant, row.BestTime, row.Cost)
	}
}

// tsEnvA returns the TS-D1 Cluster-A environment.
func (h *Harness) tsEnvA() (*env.SparkEnv, error) {
	ts, err := sparksim.WorkloadByShort("TS")
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	return h.EnvA(ts, 0), nil
}

// RunAblationReplay compares RDPER against uniform replay and TD-error PER
// under the same TD3 backbone and training budget — the design choice of
// §3.3.
func (h *Harness) RunAblationReplay(offlineIters int) (AblationResult, error) {
	e, err := h.tsEnvA()
	if err != nil {
		return AblationResult{}, err
	}
	res := AblationResult{Name: "replay mechanism (TD3 backbone)"}
	reps := float64(h.Opts.Replications)
	for _, mode := range []string{"rdper", "uniform", "per"} {
		row := AblationRow{Variant: "replay=" + mode}
		for s := int64(0); s < int64(h.Opts.Replications); s++ {
			cfg := core.DefaultConfig(e.StateDim(), e.Space().Dim())
			cfg.ReplayMode = mode
			cfg.OnlineSteps = h.Opts.OnlineSteps
			d, err := core.New(rand.New(rand.NewSource(h.Opts.Seed*11000+s)), cfg)
			if err != nil {
				return AblationResult{}, fmt.Errorf("harness: replay ablation %s: %w", mode, err)
			}
			d.OfflineTrain(e, offlineIters, nil)
			rep := d.Clone().OnlineTune(e)
			row.BestTime += rep.BestTime / reps
			row.Cost += rep.TotalCost() / reps
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// RunAblationTwinQ compares the online gate variants: min(Q1,Q2) (the
// paper's indicator), a single-critic gate, and no gate at all — the design
// choice of §3.4.
func (h *Harness) RunAblationTwinQ(offlineIters int) (AblationResult, error) {
	e, err := h.tsEnvA()
	if err != nil {
		return AblationResult{}, err
	}
	res := AblationResult{Name: "Twin-Q Optimizer gate"}
	reps := float64(h.Opts.Replications)
	variants := []struct {
		name   string
		mutate func(*core.DeepCAT)
	}{
		{"gate=min(Q1,Q2)", func(d *core.DeepCAT) {}},
		{"gate=Q1 only", func(d *core.DeepCAT) { d.Cfg.TwinQ.SingleQ = true }},
		{"gate=none", func(d *core.DeepCAT) { d.Cfg.UseTwinQ = false }},
	}
	for s := int64(0); s < int64(h.Opts.Replications); s++ {
		cfg := core.DefaultConfig(e.StateDim(), e.Space().Dim())
		cfg.OnlineSteps = h.Opts.OnlineSteps
		d, err := core.New(rand.New(rand.NewSource(h.Opts.Seed*12000+s)), cfg)
		if err != nil {
			return AblationResult{}, fmt.Errorf("harness: twin-q ablation: %w", err)
		}
		d.OfflineTrain(e, offlineIters, nil)
		for i, v := range variants {
			c := d.Clone()
			v.mutate(c)
			rep := c.OnlineTune(e)
			if s == 0 {
				res.Rows = append(res.Rows, AblationRow{Variant: v.name})
			}
			res.Rows[i].BestTime += rep.BestTime / reps
			res.Rows[i].Cost += rep.TotalCost() / reps
		}
	}
	return res, nil
}

// RunAblationBackbone compares the TD3 backbone against DDPG under
// identical replay (RDPER is DeepCAT-only; both use their canonical
// setup: TD3+RDPER+Eq.1 reward vs DDPG+TD-PER+delta reward) — isolating
// what swapping the agent family buys.
func (h *Harness) RunAblationBackbone(offlineIters int) (AblationResult, error) {
	e, err := h.tsEnvA()
	if err != nil {
		return AblationResult{}, err
	}
	res := AblationResult{Name: "agent backbone"}
	reps := float64(h.Opts.Replications)

	rowTD3 := AblationRow{Variant: "TD3+RDPER (DeepCAT, no gate)"}
	rowDDPG := AblationRow{Variant: "DDPG+TD-PER (CDBTune)"}
	for s := int64(0); s < int64(h.Opts.Replications); s++ {
		cfg := core.DefaultConfig(e.StateDim(), e.Space().Dim())
		cfg.OnlineSteps = h.Opts.OnlineSteps
		cfg.UseTwinQ = false // isolate the backbone, not the gate
		d, err := core.New(rand.New(rand.NewSource(h.Opts.Seed*13000+s)), cfg)
		if err != nil {
			return AblationResult{}, fmt.Errorf("harness: backbone ablation (TD3): %w", err)
		}
		d.OfflineTrain(e, offlineIters, nil)
		rep := d.Clone().OnlineTune(e)
		rowTD3.BestTime += rep.BestTime / reps
		rowTD3.Cost += rep.TotalCost() / reps

		ccfg := cdbtune.DefaultConfig(e.StateDim(), e.Space().Dim())
		ccfg.OnlineSteps = h.Opts.OnlineSteps
		c, err := cdbtune.New(rand.New(rand.NewSource(h.Opts.Seed*13000+s)), ccfg)
		if err != nil {
			return AblationResult{}, fmt.Errorf("harness: backbone ablation (DDPG): %w", err)
		}
		c.OfflineTrain(e, offlineIters)
		crep := c.Clone().OnlineTune(e)
		rowDDPG.BestTime += crep.BestTime / reps
		rowDDPG.Cost += crep.TotalCost() / reps
	}
	res.Rows = []AblationRow{rowTD3, rowDDPG}
	return res, nil
}

// RunAblationReward compares DeepCAT's immediate reward (Eq. 1) against the
// CDBTune-style delta reward on the same TD3+RDPER stack — the design
// choice of §3.1.
func (h *Harness) RunAblationReward(offlineIters int) (AblationResult, error) {
	e, err := h.tsEnvA()
	if err != nil {
		return AblationResult{}, err
	}
	res := AblationResult{Name: "reward function (TD3+RDPER stack)"}
	reps := float64(h.Opts.Replications)

	rowImm := AblationRow{Variant: "immediate reward (Eq. 1)"}
	rowDelta := AblationRow{Variant: "delta reward (CDBTune-style)"}
	for s := int64(0); s < int64(h.Opts.Replications); s++ {
		cfg := core.DefaultConfig(e.StateDim(), e.Space().Dim())
		cfg.OnlineSteps = h.Opts.OnlineSteps
		d, err := core.New(rand.New(rand.NewSource(h.Opts.Seed*14000+s)), cfg)
		if err != nil {
			return AblationResult{}, fmt.Errorf("harness: reward ablation: %w", err)
		}
		d.OfflineTrain(e, offlineIters, nil)
		rep := d.Clone().OnlineTune(e)
		rowImm.BestTime += rep.BestTime / reps
		rowImm.Cost += rep.TotalCost() / reps

		// Delta-reward variant: identical TD3+RDPER stack, CDBTune-style
		// reward.
		cfg2 := cfg
		cfg2.RewardMode = "delta"
		d2, err := core.New(rand.New(rand.NewSource(h.Opts.Seed*14000+s)), cfg2)
		if err != nil {
			return AblationResult{}, fmt.Errorf("harness: reward ablation (delta): %w", err)
		}
		d2.OfflineTrain(e, offlineIters, nil)
		rep2 := d2.Clone().OnlineTune(e)
		rowDelta.BestTime += rep2.BestTime / reps
		rowDelta.Cost += rep2.TotalCost() / reps
	}
	res.Rows = []AblationRow{rowImm, rowDelta}
	return res, nil
}
