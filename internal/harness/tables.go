package harness

import (
	"io"

	"deepcat/internal/sparksim"
)

// Table1Row is one row of the paper's Table 1 (workload characteristics).
type Table1Row struct {
	Workload string
	Short    string
	Category string
	Inputs   string
}

// Table1 reproduces the paper's Table 1.
func Table1() []Table1Row {
	var rows []Table1Row
	for _, w := range sparksim.Workloads() {
		rows = append(rows, Table1Row{
			Workload: w.Name,
			Short:    w.Short,
			Category: w.Category,
			Inputs:   w.InputLabel,
		})
	}
	return rows
}

// FprintTable1 renders Table 1.
func FprintTable1(w io.Writer) {
	writeRow(w, "Table 1: Workload characteristics")
	writeRow(w, "%-16s %-10s %s", "Workload", "Category", "Input Datasets (D1, D2, D3)")
	for _, r := range Table1() {
		writeRow(w, "%-16s %-10s %s", r.Workload+" ("+r.Short+")", r.Category, r.Inputs)
	}
}

// Table2Row is one row of the paper's Table 2 (tuned parameter counts).
type Table2Row struct {
	Component string
	Count     int
}

// Table2 reproduces the paper's Table 2 from the actual pipeline space.
func Table2() []Table2Row {
	counts := sparksim.PipelineSpace().CountByComponent()
	return []Table2Row{
		{Component: "Spark", Count: counts[sparksim.ComponentSpark]},
		{Component: "YARN", Count: counts[sparksim.ComponentYARN]},
		{Component: "HDFS", Count: counts[sparksim.ComponentHDFS]},
	}
}

// FprintTable2 renders Table 2.
func FprintTable2(w io.Writer) {
	writeRow(w, "Table 2: Number of tuned parameters in the pipeline")
	writeRow(w, "%-28s %s", "Component of the pipeline", "Number of parameters")
	for _, r := range Table2() {
		writeRow(w, "%-28s %d", r.Component, r.Count)
	}
}
