package harness

import (
	"runtime"
	"sync"
)

// Workers returns the effective worker count for fan-out experiments:
// Options.Workers when positive, otherwise 1 (serial). Parallelism never
// changes results — every unit of work owns its own seeded random state and
// writes to a distinct slot — it only changes wall-clock time.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return 1
}

// AutoWorkers is a convenient Workers setting: one worker per CPU, capped
// at 8 (the experiments are memory-bandwidth-bound beyond that).
func AutoWorkers() int {
	n := runtime.NumCPU()
	if n > 8 {
		n = 8
	}
	if n < 1 {
		n = 1
	}
	return n
}

// forEach runs fn(i) for i in [0, n) on the harness's worker pool. Each
// index is processed exactly once; fn must write its result to its own
// slot, never shared state (the model cache inside Harness is internally
// locked).
func (h *Harness) forEach(n int, fn func(i int)) {
	workers := h.Opts.workers()
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
