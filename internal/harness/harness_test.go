package harness

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// tinyOptions keeps harness unit tests fast; shape-level assertions about
// the paper's claims live in the integration tests below and in
// EXPERIMENTS.md runs.
func tinyOptions() Options {
	return Options{
		Seed:         1,
		OfflineIters: 150,
		Replications: 1,
		RepoSamples:  25,
		OnlineSteps:  5,
	}
}

func TestTable1(t *testing.T) {
	rows := Table1()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].Short != "TS" || rows[1].Inputs != "3.2, 6, 10 (GB)" {
		t.Fatalf("TS row = %+v", rows[1])
	}
	var buf bytes.Buffer
	FprintTable1(&buf)
	if !strings.Contains(buf.String(), "TeraSort") {
		t.Fatal("Table 1 output missing TeraSort")
	}
}

func TestTable2(t *testing.T) {
	rows := Table2()
	want := map[string]int{"Spark": 20, "YARN": 7, "HDFS": 5}
	for _, r := range rows {
		if want[r.Component] != r.Count {
			t.Fatalf("%s = %d, want %d", r.Component, r.Count, want[r.Component])
		}
	}
	var buf bytes.Buffer
	FprintTable2(&buf)
	if !strings.Contains(buf.String(), "Spark") {
		t.Fatal("Table 2 output missing Spark")
	}
}

func TestFig2(t *testing.T) {
	h := New(tinyOptions())
	r := h.RunFig2(100)
	if len(r.RelativePerf) != 100 {
		t.Fatalf("samples = %d", len(r.RelativePerf))
	}
	// Sorted ascending, all in (0, 1].
	for i, v := range r.RelativePerf {
		if v <= 0 || v > 1+1e-9 {
			t.Fatalf("relative perf %v out of range", v)
		}
		if i > 0 && v < r.RelativePerf[i-1] {
			t.Fatal("relative perf not sorted")
		}
	}
	// Paper Fig. 2 shape: most beat default, few are close to optimal.
	if r.FracBeatDefault < 0.5 {
		t.Fatalf("only %.0f%% beat default", 100*r.FracBeatDefault)
	}
	if r.FracWithin10 > 0.15 {
		t.Fatalf("%.0f%% within 10%% of best; should be sparse", 100*r.FracWithin10)
	}
	var buf bytes.Buffer
	r.Fprint(&buf)
	if !strings.Contains(buf.String(), "Figure 2") {
		t.Fatal("Fprint missing header")
	}
}

func TestFig3(t *testing.T) {
	h := New(tinyOptions())
	r := h.RunFig3(200, 50)
	if len(r.Points) != 4 {
		t.Fatalf("points = %d", len(r.Points))
	}
	for _, p := range r.Points {
		if math.IsNaN(p.MinQ) || math.IsNaN(p.Reward) {
			t.Fatal("NaN in trace")
		}
		if p.MinQ > p.Q1+1e-12 || p.MinQ > p.Q2+1e-12 {
			t.Fatal("MinQ exceeds a critic output")
		}
	}
	var buf bytes.Buffer
	r.Fprint(&buf)
	if !strings.Contains(buf.String(), "Figure 3") {
		t.Fatal("Fprint missing header")
	}
}

func TestFig3CriticTracksReward(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping long harness test in -short mode")
	}
	h := New(tinyOptions())
	r := h.RunFig3(1500, 100)
	if r.Corr < 0.5 {
		t.Fatalf("minQ/reward correlation = %.2f, want > 0.5 (Fig. 3 premise)", r.Corr)
	}
}

func TestFig4Structure(t *testing.T) {
	h := New(tinyOptions())
	r := h.RunFig4([]int{100, 200})
	if len(r.BestRDPER) != 2 || len(r.BestUniform) != 2 {
		t.Fatalf("series lengths %d/%d", len(r.BestRDPER), len(r.BestUniform))
	}
	for i := range r.Marks {
		if r.BestRDPER[i] <= 0 || r.BestUniform[i] <= 0 {
			t.Fatalf("non-positive best time at mark %d", r.Marks[i])
		}
	}
	var buf bytes.Buffer
	r.Fprint(&buf)
	if !strings.Contains(buf.String(), "RDPER") {
		t.Fatal("Fprint missing series")
	}
}

func TestFig5Structure(t *testing.T) {
	h := New(tinyOptions())
	r := h.RunFig5(150)
	if len(r.StepsWith) != 5 || len(r.StepsWithout) != 5 {
		t.Fatalf("steps %d/%d", len(r.StepsWith), len(r.StepsWithout))
	}
	if r.TotalWith <= 0 || r.TotalWithout <= 0 {
		t.Fatal("non-positive totals")
	}
	var buf bytes.Buffer
	r.Fprint(&buf)
	if !strings.Contains(buf.String(), "Twin-Q") {
		t.Fatal("Fprint missing header")
	}
}

func TestComparisonStructureAndCaching(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping comparison in -short mode")
	}
	h := New(tinyOptions())
	c := h.RunComparison()
	if len(c.Pairs) != 12 {
		t.Fatalf("pairs = %d", len(c.Pairs))
	}
	for _, p := range c.Pairs {
		for _, tn := range TunerNames {
			reps := p.Reports[tn]
			if len(reps) != 1 {
				t.Fatalf("%s/%s: %d reports", p.Pair, tn, len(reps))
			}
			if len(reps[0].Steps) == 0 {
				t.Fatalf("%s/%s: no steps", p.Pair, tn)
			}
		}
	}
	// Second call returns the cached pointer (no retraining).
	if h.RunComparison() != c {
		t.Fatal("comparison not cached")
	}
	var buf bytes.Buffer
	c.FprintFig6(&buf)
	c.FprintFig7(&buf)
	c.FprintFig8(&buf)
	out := buf.String()
	for _, want := range []string{"Figure 6", "Figure 7", "Figure 8", "AVG"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
}

func TestFig9Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short mode")
	}
	h := New(tinyOptions())
	r := h.RunFig9()
	if len(r.DeepCATRows) != 4 {
		t.Fatalf("rows = %d", len(r.DeepCATRows))
	}
	if r.DeepCATRows[0].Label != "M_PR->PR" {
		t.Fatalf("first row %q", r.DeepCATRows[0].Label)
	}
	var buf bytes.Buffer
	r.Fprint(&buf)
	if !strings.Contains(buf.String(), "M_WC->PR") {
		t.Fatal("Fprint missing row")
	}
}

func TestFig10Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short mode")
	}
	h := New(tinyOptions())
	r := h.RunFig10()
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Cost <= 0 {
			t.Fatalf("%s/%s: non-positive cost", row.Pair, row.Tuner)
		}
	}
	var buf bytes.Buffer
	r.Fprint(&buf)
	if !strings.Contains(buf.String(), "Cluster-B") {
		t.Fatal("Fprint missing header")
	}
}

func TestFig11Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short mode")
	}
	h := New(tinyOptions())
	r := h.RunFig11(120)
	if len(r.Points) != 9 {
		t.Fatalf("points = %d", len(r.Points))
	}
	for i, p := range r.Points {
		if math.Abs(p.Beta-float64(i+1)/10) > 1e-9 {
			t.Fatalf("beta[%d] = %v", i, p.Beta)
		}
		if p.BestTime <= 0 {
			t.Fatalf("beta %.1f: best %v", p.Beta, p.BestTime)
		}
	}
	var buf bytes.Buffer
	r.Fprint(&buf)
	if !strings.Contains(buf.String(), "Figure 11") {
		t.Fatal("Fprint missing header")
	}
}

func TestFig12Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short mode")
	}
	h := New(tinyOptions())
	ths := []float64{0.1, 0.3, 0.5}
	r := h.RunFig12(150, ths)
	if len(r.Points) != 3 {
		t.Fatalf("points = %d", len(r.Points))
	}
	for i, p := range r.Points {
		if p.QTh != ths[i] || p.BestTime <= 0 || p.Cost <= 0 {
			t.Fatalf("point %d = %+v", i, p)
		}
	}
	var buf bytes.Buffer
	r.Fprint(&buf)
	if !strings.Contains(buf.String(), "Q_th") {
		t.Fatal("Fprint missing header")
	}
}

func TestAblationsStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short mode")
	}
	h := New(tinyOptions())
	runs := []func(int) (AblationResult, error){
		h.RunAblationReplay,
		h.RunAblationTwinQ,
		h.RunAblationBackbone,
		h.RunAblationReward,
	}
	for _, run := range runs {
		res, err := run(120)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) < 2 {
			t.Fatalf("%s: %d rows", res.Name, len(res.Rows))
		}
		for _, row := range res.Rows {
			if row.BestTime <= 0 || row.Cost <= 0 {
				t.Fatalf("%s/%s: %+v", res.Name, row.Variant, row)
			}
		}
		var buf bytes.Buffer
		res.Fprint(&buf)
		if !strings.Contains(buf.String(), "Ablation") {
			t.Fatal("Fprint missing header")
		}
	}
}

func TestDeepCATModelCached(t *testing.T) {
	h := New(tinyOptions())
	e, err := h.tsEnvA()
	if err != nil {
		t.Fatal(err)
	}
	a := h.DeepCATModel(e, 0)
	b := h.DeepCATModel(e, 0)
	if a != b {
		t.Fatal("model not cached")
	}
	c := h.DeepCATModel(e, 1)
	if a == c {
		t.Fatal("different seeds share a model")
	}
}
