package harness

import (
	"context"
	"fmt"
	"io"
	"math"

	"deepcat/internal/chaos"
	"deepcat/internal/core"
	"deepcat/internal/env"
	"deepcat/internal/sparksim"
)

// ChaosOptions configures one chaos-versus-baseline experiment.
type ChaosOptions struct {
	// Workload and InputIdx pick the Cluster-A pair to tune.
	Workload sparksim.Workload
	InputIdx int
	// Chaos is the fault profile injected into the faulted run.
	Chaos chaos.Config
	// Hardening is the fault policy of the faulted run's online loop; the
	// zero value selects core.DefaultHardening().
	Hardening core.Hardening
	// Steps overrides the online tuning budget for both runs (0 keeps the
	// harness default).
	Steps int
}

// ChaosResult compares one fault-free online tuning run against a
// fault-injected run of the same offline-trained agent: both start from the
// same snapshot, tune identically-seeded simulators, and differ only in the
// chaos wrapper and the hardened loop absorbing it.
type ChaosResult struct {
	EnvLabel string
	Chaos    chaos.Config
	// Stats counts the faults the chaos wrapper actually injected.
	Stats chaos.Stats
	// Baseline is the fault-free run; Faulted the run under injection.
	Baseline *env.Report
	Faulted  *env.Report
	// Gap is the relative best-time regression of the faulted run,
	// (faulted - baseline) / baseline; negative when the faulted run found
	// a better configuration despite the faults. +Inf when every faulted
	// step failed.
	Gap float64
}

// RunChaos trains (or reuses) the pair's offline model, snapshots it, and
// restores two identical tuners: one runs the classic loop against a clean
// simulator, the other runs the hardened loop against a chaos-wrapped clone
// of the same simulator. Fresh simulators seeded alike keep the two
// trajectories comparable; the snapshot keeps the agents bit-identical at
// the start of online tuning.
func (h *Harness) RunChaos(ctx context.Context, opts ChaosOptions) (*ChaosResult, error) {
	steps := opts.Steps
	if steps <= 0 {
		steps = h.Opts.OnlineSteps
	}
	hard := opts.Hardening
	if hard == (core.Hardening{}) {
		hard = core.DefaultHardening()
	}

	model := h.DeepCATModel(h.EnvA(opts.Workload, opts.InputIdx), 0)
	snap, err := model.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("harness: chaos snapshot: %w", err)
	}

	newEnv := func() *env.SparkEnv {
		sim := sparksim.NewSimulator(sparksim.ClusterA(), h.Opts.Seed)
		return env.NewSparkEnv(sim, opts.Workload, opts.InputIdx)
	}

	base, err := core.Restore(snap)
	if err != nil {
		return nil, err
	}
	base.Cfg.OnlineSteps = steps
	baseRep, err := base.OnlineTuneCtx(ctx, newEnv())
	if err != nil {
		return nil, fmt.Errorf("harness: baseline run: %w", err)
	}

	faulted, err := core.Restore(snap)
	if err != nil {
		return nil, err
	}
	faulted.Cfg.OnlineSteps = steps
	faulted.Cfg.Hardening = hard
	chaosEnv := chaos.Wrap(newEnv(), opts.Chaos)
	faultRep, err := faulted.OnlineTuneCtx(ctx, chaosEnv)
	if err != nil {
		return nil, fmt.Errorf("harness: faulted run: %w", err)
	}

	res := &ChaosResult{
		EnvLabel: chaosEnv.Label(),
		Chaos:    opts.Chaos,
		Stats:    chaosEnv.Stats(),
		Baseline: baseRep,
		Faulted:  faultRep,
		Gap:      math.Inf(1),
	}
	if baseRep.BestTime > 0 && !math.IsInf(faultRep.BestTime, 0) {
		res.Gap = (faultRep.BestTime - baseRep.BestTime) / baseRep.BestTime
	}
	return res, nil
}

// Fprint renders the comparison as an aligned text table.
func (r *ChaosResult) Fprint(w io.Writer) {
	fmt.Fprintf(w, "Chaos comparison — %s\n", r.EnvLabel)
	writeRow(w, "  faults injected: %d/%d evals (crash %d, hang %d, outlier %d, corrupt %d, unavailable %d)",
		r.Stats.Faults(), r.Stats.Evals, r.Stats.Crashes, r.Stats.Hangs,
		r.Stats.Outliers, r.Stats.Corruptions, r.Stats.Unavailable)
	writeRow(w, "  %-10s %12s %8s %8s %8s %8s", "run", "best time", "faults", "retries", "rejects", "fallbacks")
	writeRow(w, "  %-10s %12.2f %8d %8d %8d %8d", "baseline",
		r.Baseline.BestTime, r.Baseline.Faults, r.Baseline.Retries, r.Baseline.Rejected, r.Baseline.Fallbacks)
	writeRow(w, "  %-10s %12.2f %8d %8d %8d %8d", "faulted",
		r.Faulted.BestTime, r.Faulted.Faults, r.Faulted.Retries, r.Faulted.Rejected, r.Faulted.Fallbacks)
	writeRow(w, "  best-time gap: %+.2f%%", r.Gap*100)
}
