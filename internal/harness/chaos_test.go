package harness

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"deepcat/internal/chaos"
	"deepcat/internal/core"
	"deepcat/internal/sparksim"
)

// chaosProfile is the acceptance fault mix: well above a 10% injected fault
// rate across four classes.
func chaosProfile(seed int64) chaos.Config {
	return chaos.Config{
		Seed:          seed,
		CrashRate:     0.10,
		HangRate:      0.05,
		HangDuration:  5 * time.Millisecond,
		OutlierRate:   0.10,
		OutlierFactor: 25,
		CorruptRate:   0.10,
	}
}

func chaosWorkload(t *testing.T, short string) sparksim.Workload {
	t.Helper()
	w, err := sparksim.WorkloadByShort(short)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestRunChaosConvergence is the chaos acceptance test: a hardened run under
// a >=10% fault rate must converge within 15% of the fault-free run of the
// same snapshot, and the report must show faults were actually absorbed
// (retried, rejected or fallen back on) rather than never injected. It runs
// in -short mode on purpose — CI's short pass is the chaos gate.
func TestRunChaosConvergence(t *testing.T) {
	h := New(tinyOptions())
	res, err := h.RunChaos(context.Background(), ChaosOptions{
		Workload: chaosWorkload(t, "TS"),
		InputIdx: 1,
		Chaos:    chaosProfile(7),
		Steps:    12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Faults() == 0 {
		t.Fatal("chaos profile injected no faults; the run proves nothing")
	}
	if rate := float64(res.Stats.Faults()) / float64(res.Stats.Evals); rate < 0.10 {
		t.Fatalf("injected fault rate %.2f, want >= 0.10", rate)
	}
	if math.IsInf(res.Faulted.BestTime, 0) {
		t.Fatal("faulted run never measured a successful step")
	}
	if res.Gap > 0.15 {
		var buf bytes.Buffer
		res.Fprint(&buf)
		t.Fatalf("faulted run converged %.1f%% worse than baseline, want <= 15%%\n%s",
			res.Gap*100, buf.String())
	}
	if res.Faulted.Faults+res.Faulted.Rejected+res.Faulted.Fallbacks+res.Faulted.Retries == 0 {
		t.Fatal("hardened loop reports no fault handling despite injected faults")
	}
	if res.Baseline.Faults+res.Baseline.Rejected+res.Baseline.Fallbacks != 0 {
		t.Fatalf("baseline run reports fault handling: %+v", res.Baseline)
	}

	var buf bytes.Buffer
	res.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"Chaos comparison", "baseline", "faulted", "best-time gap"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fprint output missing %q:\n%s", want, out)
		}
	}
}

// TestRunChaosDeterministic verifies the whole experiment — fault schedule,
// retries, fallbacks and final best — is a pure function of its seeds.
func TestRunChaosDeterministic(t *testing.T) {
	run := func() *ChaosResult {
		h := New(tinyOptions())
		res, err := h.RunChaos(context.Background(), ChaosOptions{
			Workload: chaosWorkload(t, "WC"),
			InputIdx: 1,
			Chaos:    chaosProfile(3),
			Steps:    8,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Stats != b.Stats {
		t.Fatalf("fault schedules diverged: %+v vs %+v", a.Stats, b.Stats)
	}
	if a.Faulted.BestTime != b.Faulted.BestTime || a.Baseline.BestTime != b.Baseline.BestTime {
		t.Fatalf("best times diverged: faulted %g/%g baseline %g/%g",
			a.Faulted.BestTime, b.Faulted.BestTime, a.Baseline.BestTime, b.Baseline.BestTime)
	}
	for i := range a.Faulted.Steps {
		sa, sb := a.Faulted.Steps[i], b.Faulted.Steps[i]
		if sa.ExecTime != sb.ExecTime || sa.Fault != sb.Fault || sa.Rejected != sb.Rejected {
			t.Fatalf("faulted step %d diverged: %+v vs %+v", i, sa, sb)
		}
	}
}

// TestRunChaosZeroProfile checks the degenerate case: with no faults
// configured, the faulted run is the baseline run.
func TestRunChaosZeroProfile(t *testing.T) {
	h := New(tinyOptions())
	res, err := h.RunChaos(context.Background(), ChaosOptions{
		Workload:  chaosWorkload(t, "TS"),
		InputIdx:  1,
		Chaos:     chaos.Config{Seed: 1},
		Hardening: core.DefaultHardening(),
		Steps:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Faults() != 0 {
		t.Fatalf("zero profile injected %d faults", res.Stats.Faults())
	}
	if res.Gap != 0 {
		t.Fatalf("gap = %+.4f, want exactly 0 for identical runs", res.Gap)
	}
	for i := range res.Baseline.Steps {
		if res.Baseline.Steps[i].ExecTime != res.Faulted.Steps[i].ExecTime {
			t.Fatalf("step %d diverged without faults", i)
		}
	}
}
