package harness

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		h := New(Options{Seed: 1, OfflineIters: 10, Replications: 1, RepoSamples: 5, OnlineSteps: 1, Workers: workers})
		const n = 37
		var hits [n]int32
		h.forEach(n, func(i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		for i, c := range hits {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestAutoWorkersPositive(t *testing.T) {
	if w := AutoWorkers(); w < 1 || w > 8 {
		t.Fatalf("AutoWorkers = %d", w)
	}
}

func TestParallelComparisonDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short mode")
	}
	optsSerial := tinyOptions()
	optsPar := tinyOptions()
	optsPar.Workers = 4
	serial := New(optsSerial).RunComparison()
	parallel := New(optsPar).RunComparison()
	if len(serial.Pairs) != len(parallel.Pairs) {
		t.Fatal("pair count differs")
	}
	for i := range serial.Pairs {
		sp, pp := serial.Pairs[i], parallel.Pairs[i]
		if sp.Pair != pp.Pair {
			t.Fatalf("pair order differs: %s vs %s", sp.Pair, pp.Pair)
		}
		for _, tn := range TunerNames {
			sr, pr := sp.Reports[tn], pp.Reports[tn]
			for k := range sr {
				if sr[k].BestTime != pr[k].BestTime {
					t.Fatalf("%s/%s: best %.3f vs %.3f", sp.Pair, tn, sr[k].BestTime, pr[k].BestTime)
				}
				for si := range sr[k].Steps {
					// Wall-clock recommendation time legitimately varies
					// under contention; evaluated times must not.
					if sr[k].Steps[si].ExecTime != pr[k].Steps[si].ExecTime {
						t.Fatalf("%s/%s step %d: exec %.3f vs %.3f",
							sp.Pair, tn, si, sr[k].Steps[si].ExecTime, pr[k].Steps[si].ExecTime)
					}
				}
			}
		}
	}
}
