package harness

import (
	"fmt"
	"io"
	"math/rand"

	"deepcat/internal/baselines/bestconfig"
)

// ExtensionRow is one variant of the extension study.
type ExtensionRow struct {
	Variant  string
	Steps    int
	BestTime float64
	EvalCost float64
}

// ExtensionResult covers the approaches beyond the paper's head-to-head
// evaluation: the search-based BestConfig family the paper discusses but
// omits (§1, §6), at the DRL budget and at larger budgets, and OtterTune
// with Lasso knob selection — the dimension-reduction direction the paper's
// future work points at.
type ExtensionResult struct {
	Rows []ExtensionRow
	// DeepCATBest / DeepCATCost give the 5-step DeepCAT reference on the
	// same environment.
	DeepCATBest float64
	DeepCATCost float64
}

// RunExtensions runs the extension study on TeraSort D1.
func (h *Harness) RunExtensions() (ExtensionResult, error) {
	e, err := h.tsEnvA()
	if err != nil {
		return ExtensionResult{}, err
	}
	var res ExtensionResult
	reps := float64(h.Opts.Replications)

	// DeepCAT reference at the paper's 5-step budget.
	for s := int64(0); s < int64(h.Opts.Replications); s++ {
		d := h.DeepCATModel(e, s)
		rep := d.Clone().OnlineTune(e)
		res.DeepCATBest += rep.BestTime / reps
		res.DeepCATCost += rep.EvaluationCost() / reps
	}

	// BestConfig at 1x, 4x and 10x the DRL budget: search-based tuning
	// restarts from scratch and needs many more evaluations to catch up.
	for _, mult := range []int{1, 4, 10} {
		steps := h.Opts.OnlineSteps * mult
		row := ExtensionRow{Variant: "BestConfig (DDS+RBS)", Steps: steps}
		for s := int64(0); s < int64(h.Opts.Replications); s++ {
			bc, err := bestconfig.New(rand.New(rand.NewSource(h.Opts.Seed*15000+s)), bestconfig.DefaultConfig())
			if err != nil {
				return ExtensionResult{}, fmt.Errorf("harness: bestconfig baseline: %w", err)
			}
			rep := bc.OnlineTune(e, steps)
			row.BestTime += rep.BestTime / reps
			row.EvalCost += rep.EvaluationCost() / reps
		}
		res.Rows = append(res.Rows, row)
	}

	// OtterTune with Lasso knob selection (top 8 of 32 knobs).
	row := ExtensionRow{Variant: "OtterTune + Lasso top-8", Steps: h.Opts.OnlineSteps}
	for s := int64(0); s < int64(h.Opts.Replications); s++ {
		ot := h.OtterTuner(300 + s)
		ot.Cfg.TopKnobs = 8
		rep := ot.OnlineTune(e, e.Label())
		row.BestTime += rep.BestTime / reps
		row.EvalCost += rep.EvaluationCost() / reps
	}
	res.Rows = append(res.Rows, row)
	return res, nil
}

// Fprint renders the extension table.
func (r ExtensionResult) Fprint(w io.Writer) {
	writeRow(w, "Extensions: search-based baseline and knob selection (TS-D1)")
	writeRow(w, "%-26s %-7s %-14s %s", "variant", "steps", "best time (s)", "eval cost (s)")
	writeRow(w, "%-26s %-7d %-14.1f %.1f", "DeepCAT (reference)", 5, r.DeepCATBest, r.DeepCATCost)
	for _, row := range r.Rows {
		writeRow(w, "%-26s %-7d %-14.1f %.1f", row.Variant, row.Steps, row.BestTime, row.EvalCost)
	}
}
