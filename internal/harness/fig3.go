package harness

import (
	"io"
	"math"
	"math/rand"

	"deepcat/internal/core"
	"deepcat/internal/sparksim"
)

// Fig3Point is one smoothed sample of the offline-training trace: the twin
// critic outputs and the real reward for the evaluated action.
type Fig3Point struct {
	Iter   int
	Q1     float64
	Q2     float64
	MinQ   float64
	Reward float64
}

// Fig3Result shows that min(Q1, Q2) tracks the real reward during offline
// training — the premise of the Twin-Q Optimizer (paper Fig. 3).
type Fig3Result struct {
	Points []Fig3Point
	// Corr is the Pearson correlation between the smoothed min-Q and
	// smoothed reward series — the "very similar trend" claim of Fig. 3.
	// It is computed over the windows after the first (the critics start
	// untrained, so the first window is warm-up).
	Corr float64
}

// RunFig3 offline-trains a fresh DeepCAT model on TeraSort D1 and records
// the twin-Q/reward trace, smoothed over windows of the given size.
func (h *Harness) RunFig3(iters, window int) Fig3Result {
	ts, err := sparksim.WorkloadByShort("TS")
	if err != nil {
		panic(err)
	}
	e := h.EnvA(ts, 0)
	cfg := core.DefaultConfig(e.StateDim(), e.Space().Dim())
	d, err := core.New(rand.New(rand.NewSource(h.Opts.Seed*6000)), cfg)
	if err != nil {
		panic(err)
	}
	trace := d.OfflineTrain(e, iters, nil)

	var res Fig3Result
	for start := 0; start+window <= len(trace.Iters); start += window {
		var p Fig3Point
		for _, it := range trace.Iters[start : start+window] {
			p.Q1 += it.Q1
			p.Q2 += it.Q2
			p.MinQ += it.MinQ
			p.Reward += it.Reward
		}
		n := float64(window)
		p.Q1 /= n
		p.Q2 /= n
		p.MinQ /= n
		p.Reward /= n
		p.Iter = start + window
		res.Points = append(res.Points, p)
	}

	// Trend correlation over the smoothed series, skipping the warm-up
	// window.
	var qs, rs []float64
	for _, p := range res.Points {
		if p.Iter <= window {
			continue
		}
		qs = append(qs, p.MinQ)
		rs = append(rs, p.Reward)
	}
	res.Corr = pearson(qs, rs)
	return res
}

func pearson(a, b []float64) float64 {
	n := float64(len(a))
	if n == 0 {
		return 0
	}
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		cov += (a[i] - ma) * (b[i] - mb)
		va += (a[i] - ma) * (a[i] - ma)
		vb += (b[i] - mb) * (b[i] - mb)
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// Fprint renders the smoothed trace.
func (r Fig3Result) Fprint(w io.Writer) {
	writeRow(w, "Figure 3: twin critic Q-values vs real reward during offline training (TS-D1)")
	writeRow(w, "%-8s %-10s %-10s %-10s %s", "iter", "Q1", "Q2", "min(Q1,Q2)", "reward")
	for _, p := range r.Points {
		writeRow(w, "%-8d %-10.3f %-10.3f %-10.3f %.3f", p.Iter, p.Q1, p.Q2, p.MinQ, p.Reward)
	}
	writeRow(w, "corr(minQ, reward) over second half: %.3f", r.Corr)
}
