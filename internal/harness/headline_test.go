package harness

import (
	"testing"
)

// TestHeadlineClaims is the end-to-end integration check of the paper's
// central comparison at the quick profile: DeepCAT must beat the default
// configuration by a wide margin, stay at least competitive with both
// baselines on recommendation quality, and spend the least total online
// tuning time. The thresholds are deliberately loose — the precise factors
// live in EXPERIMENTS.md — but a regression that breaks the orderings the
// paper is about must fail this test.
func TestHeadlineClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping headline integration test in -short mode")
	}
	opts := QuickOptions()
	opts.Workers = AutoWorkers()
	h := New(opts)
	c := h.RunComparison()

	dc := c.AvgSpeedup("DeepCAT")
	cb := c.AvgSpeedup("CDBTune")
	ot := c.AvgSpeedup("OtterTune")
	t.Logf("avg speedups: DeepCAT %.2fx, CDBTune %.2fx, OtterTune %.2fx", dc, cb, ot)

	if dc < 2.5 {
		t.Errorf("DeepCAT average speedup %.2fx below 2.5x", dc)
	}
	if dc < 0.95*cb {
		t.Errorf("DeepCAT speedup %.2fx clearly below CDBTune %.2fx", dc, cb)
	}
	if dc < 0.9*ot {
		t.Errorf("DeepCAT speedup %.2fx clearly below OtterTune %.2fx", dc, ot)
	}

	dcost := c.AvgTotalCost("DeepCAT")
	ccost := c.AvgTotalCost("CDBTune")
	ocost := c.AvgTotalCost("OtterTune")
	t.Logf("avg total costs: DeepCAT %.0fs, CDBTune %.0fs, OtterTune %.0fs", dcost, ccost, ocost)

	if dcost >= ocost {
		t.Errorf("DeepCAT cost %.0fs not below OtterTune %.0fs", dcost, ocost)
	}
	// The CDBTune cost margin is only ~11% at full scale and noisy at a
	// single quick-profile seed, so assert just that DeepCAT is in the
	// same cost class (the precise relation is measured in EXPERIMENTS.md).
	if dcost >= 1.5*ccost {
		t.Errorf("DeepCAT cost %.0fs far above CDBTune %.0fs", dcost, ccost)
	}
}
