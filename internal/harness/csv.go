package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSVWriter is implemented by experiment results that can export their data
// series for external plotting.
type CSVWriter interface {
	// WriteCSV writes a header row followed by one record per data point.
	WriteCSV(w io.Writer) error
}

func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("harness: csv: %w", err)
	}
	if err := cw.WriteAll(rows); err != nil {
		return fmt.Errorf("harness: csv: %w", err)
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// WriteCSV exports the relative-performance CDF (Fig. 2).
func (r Fig2Result) WriteCSV(w io.Writer) error {
	rows := make([][]string, len(r.RelativePerf))
	n := float64(len(r.RelativePerf))
	for i, v := range r.RelativePerf {
		rows[i] = []string{f(v), f(float64(i+1) / n)}
	}
	return writeCSV(w, []string{"relative_perf", "cumulative_prob"}, rows)
}

// WriteCSV exports the smoothed twin-Q/reward trace (Fig. 3).
func (r Fig3Result) WriteCSV(w io.Writer) error {
	rows := make([][]string, len(r.Points))
	for i, p := range r.Points {
		rows[i] = []string{strconv.Itoa(p.Iter), f(p.Q1), f(p.Q2), f(p.MinQ), f(p.Reward)}
	}
	return writeCSV(w, []string{"iter", "q1", "q2", "min_q", "reward"}, rows)
}

// WriteCSV exports the replay-convergence curves (Fig. 4).
func (r Fig4Result) WriteCSV(w io.Writer) error {
	rows := make([][]string, len(r.Marks))
	for i, m := range r.Marks {
		rows[i] = []string{strconv.Itoa(m), f(r.BestRDPER[i]), f(r.BestUniform[i])}
	}
	return writeCSV(w, []string{"iterations", "best_rdper_s", "best_uniform_s"}, rows)
}

// WriteCSV exports the per-step Twin-Q ablation (Fig. 5).
func (r Fig5Result) WriteCSV(w io.Writer) error {
	rows := make([][]string, len(r.StepsWith))
	for i := range r.StepsWith {
		rows[i] = []string{strconv.Itoa(i + 1), f(r.StepsWith[i]), f(r.StepsWithout[i])}
	}
	return writeCSV(w, []string{"step", "with_twinq_s", "without_twinq_s"}, rows)
}

// WriteCSV exports the full comparison behind Figures 6-8: one record per
// (pair, tuner, replication, step).
func (c *ComparisonResult) WriteCSV(w io.Writer) error {
	var rows [][]string
	for _, p := range c.Pairs {
		for _, tuner := range TunerNames {
			for rep, r := range p.Reports[tuner] {
				best := r.BestSoFar()
				cost := r.AccumulatedCost()
				for i, st := range r.Steps {
					b := best[i]
					if b > 1e17 {
						b = -1
					}
					rows = append(rows, []string{
						p.Pair, tuner, strconv.Itoa(rep), strconv.Itoa(i + 1),
						f(st.ExecTime), f(b), f(cost[i]),
						strconv.FormatBool(st.Failed), strconv.FormatBool(st.Optimized),
						f(p.DefaultTime),
					})
				}
			}
		}
	}
	return writeCSV(w, []string{
		"pair", "tuner", "replication", "step",
		"exec_time_s", "best_so_far_s", "accumulated_cost_s",
		"failed", "twinq_optimized", "default_time_s",
	}, rows)
}

// WriteCSV exports the beta sweep (Fig. 11).
func (r Fig11Result) WriteCSV(w io.Writer) error {
	rows := make([][]string, len(r.Points))
	for i, p := range r.Points {
		rows[i] = []string{f(p.Beta), f(p.BestTime), f(p.Cost)}
	}
	return writeCSV(w, []string{"beta", "best_time_s", "total_cost_s"}, rows)
}

// WriteCSV exports the Q_th sweep (Fig. 12).
func (r Fig12Result) WriteCSV(w io.Writer) error {
	rows := make([][]string, len(r.Points))
	for i, p := range r.Points {
		rows[i] = []string{f(p.QTh), f(p.BestTime), f(p.Cost)}
	}
	return writeCSV(w, []string{"q_th", "best_time_s", "total_cost_s"}, rows)
}
