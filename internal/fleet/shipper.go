package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"time"

	"deepcat/internal/obs"
	"deepcat/internal/warehouse"
)

// maxSegmentBytes bounds one pulled segment. Local segments seal at a few
// MiB; anything past this is a misconfigured or malicious peer, not a
// bigger log.
const maxSegmentBytes = 256 << 20

// ShipperConfig configures warehouse segment replication.
type ShipperConfig struct {
	// Warehouse is the local store segments land in.
	Warehouse *warehouse.Warehouse
	// Router supplies membership and peer readiness; down peers are
	// skipped until their probe recovers.
	Router *Router
	// Interval is the pull period (default 5s; < 0 disables the loop,
	// leaving SyncOnce to explicit calls).
	Interval time.Duration
	// SealInterval is how often the local active segment is force-sealed
	// so the tail of this node's experience becomes shippable (default
	// 30s; < 0 disables sealing).
	SealInterval time.Duration
	// FetchTimeout bounds one segment list or fetch (default 10s).
	FetchTimeout time.Duration

	// Registry, when non-nil, receives shipping metrics.
	Registry *obs.Registry
	// Logger, when non-nil, receives per-sync findings.
	Logger *obs.Logger
}

// Shipper replicates sealed warehouse WAL segments from every fleet peer
// into the local warehouse's replica index. Pulls are idempotent by
// (peer, segment name) — the warehouse skips files it already applied — so
// a shipper can crash, restart and re-pull from scratch without
// double-counting a single transition.
type Shipper struct {
	cfg ShipperConfig
	hc  *http.Client
	log *obs.Logger

	shippedSegments *obs.Counter
	shippedRecords  *obs.Counter
	shipErrors      *obs.Counter
	shipLag         *obs.Gauge

	stopc  chan struct{}
	stopWG sync.WaitGroup
	once   sync.Once
}

// NewShipper builds a shipper; Start launches its background loops.
func NewShipper(cfg ShipperConfig) (*Shipper, error) {
	if cfg.Warehouse == nil {
		return nil, fmt.Errorf("fleet: shipper needs a warehouse")
	}
	if cfg.Router == nil {
		return nil, fmt.Errorf("fleet: shipper needs a router")
	}
	if cfg.Interval == 0 {
		cfg.Interval = 5 * time.Second
	}
	if cfg.SealInterval == 0 {
		cfg.SealInterval = 30 * time.Second
	}
	if cfg.FetchTimeout <= 0 {
		cfg.FetchTimeout = 10 * time.Second
	}
	return &Shipper{
		cfg:             cfg,
		hc:              &http.Client{Timeout: cfg.FetchTimeout},
		log:             cfg.Logger,
		shippedSegments: cfg.Registry.Counter("deepcat_fleet_shipped_segments_total"),
		shippedRecords:  cfg.Registry.Counter("deepcat_fleet_shipped_records_total"),
		shipErrors:      cfg.Registry.Counter("deepcat_fleet_ship_errors_total"),
		shipLag:         cfg.Registry.Gauge("deepcat_fleet_ship_lag_segments"),
		stopc:           make(chan struct{}),
	}, nil
}

// Start launches the pull and seal loops; no-ops for a single-member
// fleet, where there is nobody to ship to or from.
func (s *Shipper) Start() {
	if s.cfg.Router.Single() {
		return
	}
	if s.cfg.Interval > 0 {
		s.stopWG.Add(1)
		go s.loop(s.cfg.Interval, func() {
			if err := s.SyncOnce(); err != nil {
				s.log.Warn("segment sync failed", "err", err)
			}
		})
	}
	if s.cfg.SealInterval > 0 {
		s.stopWG.Add(1)
		go s.loop(s.cfg.SealInterval, func() {
			if err := s.cfg.Warehouse.Seal(); err != nil && err != warehouse.ErrClosed {
				s.log.Warn("segment seal failed", "err", err)
			}
		})
	}
}

// Close stops the loops.
func (s *Shipper) Close() {
	s.once.Do(func() { close(s.stopc) })
	s.stopWG.Wait()
}

func (s *Shipper) loop(period time.Duration, fn func()) {
	defer s.stopWG.Done()
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-s.stopc:
			return
		case <-ticker.C:
			fn()
		}
	}
}

// SyncOnce pulls every ready peer's segment list and fetches the files the
// local warehouse has not applied yet. Per-peer failures are joined into
// the returned error without aborting the other peers; the lag gauge ends
// the pass at the number of known-but-unapplied segments.
func (s *Shipper) SyncOnce() error {
	var errs []string
	lag := 0
	for _, peer := range s.cfg.Router.Peers() {
		if peer == s.cfg.Router.Self() {
			continue
		}
		if !s.cfg.Router.Ready(peer) {
			continue
		}
		pending, err := s.syncPeer(peer)
		lag += pending
		if err != nil {
			s.shipErrors.Inc()
			errs = append(errs, fmt.Sprintf("%s: %v", peer, err))
		}
	}
	s.shipLag.Set(int64(lag))
	if len(errs) > 0 {
		return fmt.Errorf("fleet: sync: %v", errs)
	}
	return nil
}

// syncPeer replicates one peer, returning how many of its segments remain
// unapplied (0 after a fully successful pass).
func (s *Shipper) syncPeer(peer string) (pending int, err error) {
	infos, err := s.listSegments(peer)
	if err != nil {
		return 0, err
	}
	for _, info := range infos {
		if s.cfg.Warehouse.HasRemoteSegment(peer, info.Name) {
			continue
		}
		data, err := s.fetchSegment(peer, info.Name)
		if err != nil {
			pending++
			s.shipErrors.Inc()
			s.log.Warn("segment fetch failed", "peer", peer, "segment", info.Name, "err", err)
			continue
		}
		n, applied, err := s.cfg.Warehouse.IngestRemoteSegment(peer, info.Name, data)
		if err != nil {
			pending++
			s.shipErrors.Inc()
			s.log.Warn("segment apply failed", "peer", peer, "segment", info.Name, "err", err)
			continue
		}
		if applied {
			s.shippedSegments.Inc()
			s.shippedRecords.Add(uint64(n))
			s.log.Info("segment shipped", "peer", peer, "segment", info.Name, "records", n)
		}
	}
	return pending, nil
}

func (s *Shipper) listSegments(peer string) ([]warehouse.SegmentInfo, error) {
	resp, err := s.hc.Get(peer + "/v1/fleet/segments")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("list segments: HTTP %d", resp.StatusCode)
	}
	var body struct {
		Segments []warehouse.SegmentInfo `json:"segments"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&body); err != nil {
		return nil, fmt.Errorf("list segments: %w", err)
	}
	return body.Segments, nil
}

func (s *Shipper) fetchSegment(peer, name string) ([]byte, error) {
	resp, err := s.hc.Get(peer + "/v1/fleet/segments/" + url.PathEscape(name))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fetch segment: HTTP %d", resp.StatusCode)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxSegmentBytes+1))
	if err != nil {
		return nil, err
	}
	if len(data) > maxSegmentBytes {
		return nil, fmt.Errorf("segment exceeds %d bytes", maxSegmentBytes)
	}
	return data, nil
}
