package fleet

import (
	"fmt"
	"testing"
)

func members(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://node-%d:8080", i)
	}
	return out
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty membership accepted")
	}
	if _, err := NewRing([]string{" ", ""}, 0); err == nil {
		t.Fatal("blank membership accepted")
	}
	r, err := NewRing([]string{"http://b/", "http://a", "http://b"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Members(); len(got) != 2 || got[0] != "http://a" || got[1] != "http://b" {
		t.Fatalf("members = %v, want deduped sorted [http://a http://b]", got)
	}
}

func TestRingOwnerDeterministic(t *testing.T) {
	a, err := NewRing(members(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	// A second ring over a shuffled copy of the same membership must agree
	// on every key: ownership is a pure function of (members, key).
	shuffled := []string{members(5)[3], members(5)[0], members(5)[4], members(5)[1], members(5)[2]}
	b, err := NewRing(shuffled, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("s-%06d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("rings disagree on %s: %s vs %s", key, a.Owner(key), b.Owner(key))
		}
	}
}

func TestRingDistribution(t *testing.T) {
	r, err := NewRing(members(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("s-%08d", i))]++
	}
	for m, c := range counts {
		frac := float64(c) / n
		// With 64 vnodes per member the split should be near 1/3; a member
		// outside [15%, 55%] means the hash or ring walk is broken.
		if frac < 0.15 || frac > 0.55 {
			t.Fatalf("member %s owns %.1f%% of keys: %v", m, frac*100, counts)
		}
	}
}

func TestRingOwnerExcludingRemapsOnlyDownMembersKeys(t *testing.T) {
	r, err := NewRing(members(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	dead := r.Owner("s-victim")
	down := func(m string) bool { return m == dead }
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("s-%06d", i)
		base := r.Owner(key)
		failover := r.OwnerExcluding(key, down)
		if failover == dead {
			t.Fatalf("key %s still routed to down member %s", key, dead)
		}
		if base != dead && failover != base {
			t.Fatalf("key %s moved from healthy owner %s to %s", key, base, failover)
		}
	}
	// All members down: fall back to the base owner rather than nothing.
	if got := r.OwnerExcluding("s-victim", func(string) bool { return true }); got != dead {
		t.Fatalf("all-down fallback = %s, want base owner %s", got, dead)
	}
}

// BenchmarkFleetRoute measures the per-request ownership decision — the
// cost every routed call pays before any session work happens.
func BenchmarkFleetRoute(b *testing.B) {
	r, err := NewRouter(Config{
		Self:          "http://node-0:8080",
		Peers:         members(5),
		ProbeInterval: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("s-%016x", i*2654435761)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.Owner(keys[i%len(keys)]) == "" {
			b.Fatal("no owner")
		}
	}
}
