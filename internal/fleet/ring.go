// Package fleet turns the tuning service into an N-process shared-nothing
// fleet. Membership is static (the -peers flag); a consistent-hash ring
// with virtual nodes maps every session id to exactly one owning shard, so
// any node can accept any request and forward or redirect it to the owner.
// A background prober tracks each peer's /v1/readyz, and ownership lookups
// walk past peers that are down, which is how sessions fail over to the
// next live shard when one is killed. A pull-based shipper replicates
// sealed warehouse WAL segments between peers so donor training on any
// node sees the whole fleet's experience.
package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// DefaultVNodes is the virtual-node count per member. 64 points per member
// keeps the ownership spread within a few percent of uniform for small
// static fleets while the whole ring still fits in a cache-friendly slice.
const DefaultVNodes = 64

// ringPoint is one virtual node: a position on the hash circle and the
// member it belongs to.
type ringPoint struct {
	hash   uint64
	member int // index into Ring.members
}

// Ring is a consistent-hash ring over a static member set. It is immutable
// after construction and therefore safe for concurrent use; readiness is
// layered on top by the Router, not baked into the ring, so every node
// computes the same base mapping from the same -peers flag.
type Ring struct {
	members []string
	points  []ringPoint
}

// NewRing builds a ring over the member base URLs with the given number of
// virtual nodes per member (<= 0 selects DefaultVNodes). Members are
// deduplicated and sorted so every node building a ring from the same peer
// set — in any order — gets the identical mapping.
func NewRing(members []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(members))
	var uniq []string
	for _, m := range members {
		m = strings.TrimRight(strings.TrimSpace(m), "/")
		if m == "" {
			continue
		}
		if !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("fleet: ring needs at least one member")
	}
	sort.Strings(uniq)
	r := &Ring{
		members: uniq,
		points:  make([]ringPoint, 0, len(uniq)*vnodes),
	}
	for mi, m := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:   hashKey(fmt.Sprintf("%s#%d", m, v)),
				member: mi,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r, nil
}

// hashKey is the ring's hash function: FNV-1a 64. Speed matters more than
// cryptographic strength here — the router computes it on every request —
// and FNV spreads short session ids well enough for the vnode layer to
// smooth the rest.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}

// Members returns the sorted member base URLs.
func (r *Ring) Members() []string {
	return append([]string(nil), r.members...)
}

// Contains reports whether member is part of the ring.
func (r *Ring) Contains(member string) bool {
	member = strings.TrimRight(member, "/")
	for _, m := range r.members {
		if m == member {
			return true
		}
	}
	return false
}

// Owner returns the member owning key: the first virtual node clockwise
// from the key's hash.
func (r *Ring) Owner(key string) string {
	return r.members[r.points[r.search(key)].member]
}

// OwnerExcluding returns the first member clockwise from key whose down(m)
// is false — the failover owner when the base owner is unreachable. When
// every member is down it falls back to the base owner, so the caller
// still produces a deterministic answer instead of an empty one.
func (r *Ring) OwnerExcluding(key string, down func(member string) bool) string {
	start := r.search(key)
	n := len(r.points)
	// Walk distinct members in ring order from the key's position.
	tried := make(map[int]bool, len(r.members))
	for i := 0; i < n && len(tried) < len(r.members); i++ {
		p := r.points[(start+i)%n]
		if tried[p.member] {
			continue
		}
		tried[p.member] = true
		m := r.members[p.member]
		if down == nil || !down(m) {
			return m
		}
	}
	return r.members[r.points[start].member]
}

// search returns the index of the first ring point at or clockwise of key.
func (r *Ring) search(key string) int {
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}
