package fleet

import (
	"fmt"
	"net/http"
	"sync"
	"time"

	"deepcat/internal/obs"
)

// Config describes this node's place in the fleet.
type Config struct {
	// Self is this node's advertised base URL (what peers and clients dial,
	// e.g. "http://10.0.0.3:8080"). It must appear in Peers.
	Self string
	// Peers is the full static membership, including Self.
	Peers []string
	// VNodes is the virtual-node count per member (<= 0 selects
	// DefaultVNodes).
	VNodes int

	// ProbeInterval is the readiness-probe period (default 1s; < 0 disables
	// probing, leaving every peer permanently ready — single-process tests
	// use that).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one readiness probe (default 750ms).
	ProbeTimeout time.Duration

	// Registry, when non-nil, receives the router's per-shard metrics.
	Registry *obs.Registry
	// Logger, when non-nil, receives peer up/down transitions.
	Logger *obs.Logger
}

// Router decides, per session id, whether this node serves the request or
// which peer it should go to, excluding peers whose /v1/readyz probe is
// failing. All methods are safe for concurrent use.
type Router struct {
	ring *Ring
	self string
	cfg  Config
	hc   *http.Client
	log  *obs.Logger

	peerReady map[string]*obs.Gauge
	probes    *obs.Counter
	probeErrs *obs.Counter

	mu   sync.Mutex
	down map[string]bool

	stopc  chan struct{}
	stopWG sync.WaitGroup
	once   sync.Once
}

// NewRouter validates the membership and builds the router. Call Start to
// begin probing peers; until then every peer counts as ready.
func NewRouter(cfg Config) (*Router, error) {
	ring, err := NewRing(cfg.Peers, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	if !ring.Contains(cfg.Self) {
		return nil, fmt.Errorf("fleet: self %q is not in the peer list %v", cfg.Self, ring.Members())
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 750 * time.Millisecond
	}
	r := &Router{
		ring:      ring,
		self:      normalizeURL(cfg.Self),
		cfg:       cfg,
		hc:        &http.Client{Timeout: cfg.ProbeTimeout},
		log:       cfg.Logger,
		peerReady: make(map[string]*obs.Gauge),
		probes:    cfg.Registry.Counter("deepcat_fleet_probes_total"),
		probeErrs: cfg.Registry.Counter("deepcat_fleet_probe_errors_total"),
		down:      make(map[string]bool),
		stopc:     make(chan struct{}),
	}
	for _, m := range ring.Members() {
		g := cfg.Registry.Gauge("deepcat_fleet_peer_ready", "peer", m)
		g.Set(1)
		r.peerReady[m] = g
	}
	return r, nil
}

func normalizeURL(u string) string {
	for len(u) > 0 && u[len(u)-1] == '/' {
		u = u[:len(u)-1]
	}
	return u
}

// Self returns this node's advertised base URL.
func (r *Router) Self() string { return r.self }

// Peers returns the full sorted membership, including self.
func (r *Router) Peers() []string { return r.ring.Members() }

// Ring returns the underlying ring (immutable).
func (r *Router) Ring() *Ring { return r.ring }

// Single reports whether the fleet has exactly one member — the degenerate
// case where every ownership check is trivially local.
func (r *Router) Single() bool { return len(r.ring.members) == 1 }

// Owner returns the node currently responsible for a session id: the
// ring's base owner, or the next ready member clockwise when the base
// owner is down. Self is never considered down from its own router.
func (r *Router) Owner(id string) string {
	if r.Single() {
		return r.self
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring.OwnerExcluding(id, func(m string) bool {
		return m != r.self && r.down[m]
	})
}

// Owns reports whether this node is the current owner of id.
func (r *Router) Owns(id string) bool { return r.Owner(id) == r.self }

// Ready reports whether the member's last readiness probe succeeded.
func (r *Router) Ready(member string) bool {
	if member == r.self {
		return true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return !r.down[member]
}

// SetReady overrides a member's readiness; the prober will re-overwrite it
// on its next pass. Tests and operator tooling use it to fail a shard out
// immediately instead of waiting for a probe.
func (r *Router) SetReady(member string, ready bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.markLocked(member, ready)
}

func (r *Router) markLocked(member string, ready bool) {
	wasDown := r.down[member]
	if ready == !wasDown {
		return
	}
	if ready {
		delete(r.down, member)
		r.peerReady[member].Set(1)
		r.log.Info("fleet peer ready", "peer", member)
	} else {
		r.down[member] = true
		r.peerReady[member].Set(0)
		r.log.Warn("fleet peer down", "peer", member)
	}
}

// Start launches the background readiness prober. It is a no-op for a
// single-member fleet or a negative ProbeInterval.
func (r *Router) Start() {
	if r.Single() || r.cfg.ProbeInterval < 0 {
		return
	}
	r.stopWG.Add(1)
	go r.probeLoop()
}

// Close stops the prober.
func (r *Router) Close() {
	r.once.Do(func() { close(r.stopc) })
	r.stopWG.Wait()
}

func (r *Router) probeLoop() {
	defer r.stopWG.Done()
	ticker := time.NewTicker(r.cfg.ProbeInterval)
	defer ticker.Stop()
	r.probeAll()
	for {
		select {
		case <-r.stopc:
			return
		case <-ticker.C:
			r.probeAll()
		}
	}
}

// probeAll checks every peer's /v1/readyz once, in parallel so one hung
// peer cannot delay marking the others.
func (r *Router) probeAll() {
	var wg sync.WaitGroup
	for _, m := range r.ring.Members() {
		if m == r.self {
			continue
		}
		wg.Add(1)
		go func(m string) {
			defer wg.Done()
			ready := r.probeOne(m)
			r.mu.Lock()
			r.markLocked(m, ready)
			r.mu.Unlock()
		}(m)
	}
	wg.Wait()
}

// probeOne performs one readiness check against a peer.
func (r *Router) probeOne(member string) bool {
	r.probes.Inc()
	resp, err := r.hc.Get(member + "/v1/readyz")
	if err != nil {
		r.probeErrs.Inc()
		return false
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		r.probeErrs.Inc()
		return false
	}
	return true
}
