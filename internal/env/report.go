package env

import (
	"fmt"
	"strings"
)

// TuningStep records one online tuning step: what was recommended, what it
// cost to evaluate, and how long the recommender itself took.
type TuningStep struct {
	// Action is the normalized configuration that was evaluated.
	Action []float64
	// ExecTime is the configuration's measured execution time in seconds
	// (this is also the evaluation cost of the step).
	ExecTime float64
	// RecommendSeconds is the wall-clock time the tuner spent producing
	// the recommendation (model inference, GP retraining, Twin-Q search).
	RecommendSeconds float64
	// Failed reports a failed evaluation (OOM / unschedulable).
	Failed bool
	// Optimized reports that the Twin-Q Optimizer replaced the raw actor
	// output before evaluation (DeepCAT only).
	Optimized bool

	// Fault names the environment fault that ended the step when every
	// retry was exhausted ("crash", "timeout", "unavailable", ...); empty
	// for a measured step. Faulted steps have ExecTime 0 and never update
	// the best configuration.
	Fault string
	// Retries counts evaluation attempts beyond the first (hardened loop
	// only).
	Retries int
	// Rejected reports that the measurement came back but the sanitizer
	// refused it (non-finite or outlier) before it could reach the reward.
	Rejected bool
	// Fallback reports that the step's measurement came from re-running
	// the last known good configuration after the suggested one kept
	// failing.
	Fallback bool
}

// Report summarizes an online tuning session.
type Report struct {
	// Tuner names the approach ("DeepCAT", "CDBTune", "OtterTune").
	Tuner string
	// EnvLabel names the tuned environment.
	EnvLabel string
	Steps    []TuningStep
	// BestTime is the lowest successful execution time observed; BestAction
	// the corresponding configuration. BestTime is +Inf when every step
	// failed.
	BestTime   float64
	BestAction []float64

	// Hardened-loop accounting: environment faults that survived retrying,
	// total retry attempts, sanitizer rejections, and last-known-good
	// fallback evaluations. All zero for the classic infallible loop.
	Faults    int
	Retries   int
	Rejected  int
	Fallbacks int
}

// EvaluationCost returns the summed execution time of all steps (the
// configuration-evaluation component of the paper's "total online tuning
// time").
func (r *Report) EvaluationCost() float64 {
	var s float64
	for _, st := range r.Steps {
		s += st.ExecTime
	}
	return s
}

// RecommendationCost returns the summed recommendation wall-clock time.
func (r *Report) RecommendationCost() float64 {
	var s float64
	for _, st := range r.Steps {
		s += st.RecommendSeconds
	}
	return s
}

// TotalCost is evaluation plus recommendation cost, the paper's total online
// tuning time (§5.2.2).
func (r *Report) TotalCost() float64 {
	return r.EvaluationCost() + r.RecommendationCost()
}

// BestSoFar returns, for each step i, the best successful execution time
// observed in steps 0..i (+Inf until the first success) — the Fig. 8 trace.
func (r *Report) BestSoFar() []float64 {
	out := make([]float64, len(r.Steps))
	best := inf()
	for i, st := range r.Steps {
		if !st.Failed && st.ExecTime < best {
			best = st.ExecTime
		}
		out[i] = best
	}
	return out
}

// AccumulatedCost returns, for each step i, the total tuning cost through
// step i — the Fig. 8 x-axis.
func (r *Report) AccumulatedCost() []float64 {
	out := make([]float64, len(r.Steps))
	var acc float64
	for i, st := range r.Steps {
		acc += st.ExecTime + st.RecommendSeconds
		out[i] = acc
	}
	return out
}

// Speedup returns defaultTime / BestTime (the Fig. 6 metric); 0 when no
// step succeeded.
func (r *Report) Speedup(defaultTime float64) float64 {
	if len(r.Steps) == 0 || r.BestTime <= 0 || r.BestTime > 1e17 {
		return 0
	}
	return defaultTime / r.BestTime
}

// String renders a compact multi-line summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s on %s: best %.1fs, eval cost %.1fs, recommend %.2fs\n",
		r.Tuner, r.EnvLabel, r.BestTime, r.EvaluationCost(), r.RecommendationCost())
	for i, st := range r.Steps {
		status := ""
		if st.Failed {
			status = " FAILED"
		}
		if st.Fault != "" {
			status += " FAULT(" + st.Fault + ")"
		}
		if st.Rejected {
			status += " REJECTED"
		}
		if st.Fallback {
			status += " (fallback)"
		}
		if st.Optimized {
			status += " (twin-q optimized)"
		}
		fmt.Fprintf(&b, "  step %d: %.1fs%s\n", i+1, st.ExecTime, status)
	}
	return b.String()
}

func inf() float64 { return 1e18 }
