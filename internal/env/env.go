// Package env defines the tuning-target abstraction that DeepCAT and the
// baseline tuners drive, together with the report types that record what an
// online tuning session cost and found.
//
// An Environment is a black box: the tuner submits a normalized
// configuration action, the environment runs it (here: the sparksim cluster
// model) and returns the execution time, the resulting system state (load
// averages) and internal metrics. Tuners never see simulator internals, so
// any system implementing Environment — including a binding to a real
// cluster — can be tuned unchanged.
package env

import (
	"context"
	"fmt"

	"deepcat/internal/config"
	"deepcat/internal/sparksim"
)

// Outcome is the result of one configuration evaluation.
type Outcome struct {
	// ExecTime is the measured execution time in seconds (the performance
	// metric the paper minimizes).
	ExecTime float64
	// Failed and OOM mirror sparksim.Result semantics.
	Failed bool
	OOM    bool
	// State is the post-run system state (load averages, §3.1).
	State []float64
	// Metrics is the internal-metrics vector used for workload mapping.
	Metrics []float64
}

// Environment is a tunable system.
type Environment interface {
	// Space is the configuration space being tuned.
	Space() *config.Space
	// StateDim is the length of Outcome.State.
	StateDim() int
	// MetricsDim is the length of Outcome.Metrics.
	MetricsDim() int
	// Evaluate runs the configuration encoded by the normalized action
	// u in [0,1]^Space().Dim() and returns the outcome. Implementations
	// must not retain u.
	Evaluate(u []float64) Outcome
	// DefaultTime returns the execution time under the out-of-the-box
	// configuration, the baseline of the paper's reward function (Eq. 1).
	DefaultTime() float64
	// IdleState returns the system state before any evaluation.
	IdleState() []float64
	// Label names the environment for reports (e.g. "TS-D1@cluster-a").
	Label() string
}

// CtxEnvironment is the fallible, cancelable half of the evaluation
// contract. A binding to a real cluster implements it instead of (or in
// addition to) the infallible Evaluate: a submitted job can crash, straggle
// past the caller's deadline, or find the cluster temporarily unreachable,
// and the returned error reports which. Implementations must honor ctx —
// returning ctx.Err() (possibly wrapped) once it is done — and must not
// retain u.
//
// Environments that do not implement CtxEnvironment are driven through
// EvaluateWithContext, which adapts the infallible Evaluate.
type CtxEnvironment interface {
	Environment
	EvaluateCtx(ctx context.Context, u []float64) (Outcome, error)
}

// EvaluateWithContext evaluates u on e under ctx, bridging both halves of
// the contract so callers never branch on the environment's capabilities:
//
//   - a CtxEnvironment is called directly and owns deadline handling;
//   - a plain Environment with an uncancelable ctx is called inline
//     (zero overhead — this is the path every pre-existing environment
//     takes);
//   - a plain Environment under a cancelable ctx is evaluated in a
//     goroutine so the caller regains control at the deadline. The
//     evaluation itself cannot be interrupted — its goroutine is abandoned
//     and its result discarded — which bounds the caller's wall-clock time,
//     not the environment's work.
func EvaluateWithContext(ctx context.Context, e Environment, u []float64) (Outcome, error) {
	if err := ctx.Err(); err != nil {
		return Outcome{}, err
	}
	if ce, ok := e.(CtxEnvironment); ok {
		return ce.EvaluateCtx(ctx, u)
	}
	if ctx.Done() == nil {
		return e.Evaluate(u), nil
	}
	type result struct{ o Outcome }
	ch := make(chan result, 1)
	go func() { ch <- result{e.Evaluate(u)} }()
	select {
	case r := <-ch:
		return r.o, nil
	case <-ctx.Done():
		return Outcome{}, ctx.Err()
	}
}

// SparkEnv adapts a sparksim.Simulator plus a (workload, input) pair to the
// Environment interface. When Clamp is set, recommended configurations are
// first clamped to the cluster's physical capacity (the paper's rule for
// hardware migration, §5.3.2).
type SparkEnv struct {
	Sim      *sparksim.Simulator
	Workload sparksim.Workload
	InputIdx int
	// Clamp enables ClampToCluster before each evaluation.
	Clamp bool

	defaultTime float64
}

// NewSparkEnv builds an environment for one workload-input pair.
func NewSparkEnv(sim *sparksim.Simulator, w sparksim.Workload, inputIdx int) *SparkEnv {
	return &SparkEnv{
		Sim:         sim,
		Workload:    w,
		InputIdx:    inputIdx,
		defaultTime: sim.DefaultTime(w, inputIdx),
	}
}

// Space returns the 32-parameter pipeline space.
func (e *SparkEnv) Space() *config.Space { return e.Sim.Space() }

// StateDim returns sparksim.StateDim.
func (e *SparkEnv) StateDim() int { return sparksim.StateDim }

// MetricsDim returns sparksim.MetricsDim.
func (e *SparkEnv) MetricsDim() int { return sparksim.MetricsDim }

// DefaultTime returns the noise-free default-configuration execution time.
func (e *SparkEnv) DefaultTime() float64 { return e.defaultTime }

// IdleState returns the idle-cluster load averages.
func (e *SparkEnv) IdleState() []float64 { return e.Sim.IdleState() }

// Label names the pair and cluster.
func (e *SparkEnv) Label() string {
	return fmt.Sprintf("%s@%s", sparksim.PairLabel(e.Workload, e.InputIdx), e.Sim.Cluster().Name)
}

// Evaluate runs the configuration on the simulated cluster.
func (e *SparkEnv) Evaluate(u []float64) Outcome {
	var r sparksim.Result
	if e.Clamp {
		v := e.Space().Denormalize(u)
		r = e.Sim.EvaluateValues(e.Workload, e.InputIdx, e.Sim.ClampToCluster(v))
	} else {
		r = e.Sim.Evaluate(e.Workload, e.InputIdx, u)
	}
	return Outcome{
		ExecTime: r.ExecTime,
		Failed:   r.Failed,
		OOM:      r.OOM,
		State:    r.LoadAvg,
		Metrics:  r.Metrics,
	}
}

// Counted wraps an Environment and counts evaluations and accumulated
// evaluation time; useful for budget enforcement and tests.
type Counted struct {
	Environment
	Evals     int
	TotalTime float64
}

// NewCounted wraps e.
func NewCounted(e Environment) *Counted { return &Counted{Environment: e} }

// Evaluate forwards to the wrapped environment and updates the counters.
func (c *Counted) Evaluate(u []float64) Outcome {
	o := c.Environment.Evaluate(u)
	c.Evals++
	c.TotalTime += o.ExecTime
	return o
}

// EvaluateCtx forwards through the contract bridge, so wrapping with
// Counted never hides the inner environment's fallible path. Failed
// evaluations still count — a crashed run was paid for — but contribute no
// execution time.
func (c *Counted) EvaluateCtx(ctx context.Context, u []float64) (Outcome, error) {
	o, err := EvaluateWithContext(ctx, c.Environment, u)
	c.Evals++
	if err == nil {
		c.TotalTime += o.ExecTime
	}
	return o, err
}
