package env

import (
	"math"
	"strings"
	"testing"

	"deepcat/internal/sparksim"
)

func tsEnv(t *testing.T) *SparkEnv {
	t.Helper()
	sim := sparksim.NewSimulator(sparksim.ClusterA(), 1)
	ts, err := sparksim.WorkloadByShort("TS")
	if err != nil {
		t.Fatal(err)
	}
	return NewSparkEnv(sim, ts, 0)
}

func TestSparkEnvBasics(t *testing.T) {
	e := tsEnv(t)
	if e.Space().Dim() != 32 {
		t.Fatalf("space dim %d", e.Space().Dim())
	}
	if e.StateDim() != sparksim.StateDim || e.MetricsDim() != sparksim.MetricsDim {
		t.Fatal("dims wrong")
	}
	if e.DefaultTime() <= 0 {
		t.Fatal("default time not positive")
	}
	if got := e.Label(); got != "TS-D1@cluster-a" {
		t.Fatalf("label = %q", got)
	}
	if len(e.IdleState()) != e.StateDim() {
		t.Fatal("idle state dim wrong")
	}
}

func TestSparkEnvEvaluate(t *testing.T) {
	e := tsEnv(t)
	o := e.Evaluate(e.Space().DefaultAction())
	if o.ExecTime <= 0 || o.Failed {
		t.Fatalf("default evaluation: %+v", o)
	}
	if len(o.State) != e.StateDim() || len(o.Metrics) != e.MetricsDim() {
		t.Fatal("outcome dims wrong")
	}
	// Default evaluation time must be close to the noise-free baseline.
	if math.Abs(o.ExecTime-e.DefaultTime())/e.DefaultTime() > 0.2 {
		t.Fatalf("eval %.1f vs default %.1f", o.ExecTime, e.DefaultTime())
	}
}

func TestSparkEnvClamp(t *testing.T) {
	simB := sparksim.NewSimulator(sparksim.ClusterB(), 1)
	ts, _ := sparksim.WorkloadByShort("TS")
	e := NewSparkEnv(simB, ts, 0)

	// A 10 GB executor request cannot be scheduled on 8 GB nodes...
	u := e.Space().DefaultAction()
	i, _ := e.Space().Lookup("spark.executor.memory")
	j, _ := e.Space().Lookup("yarn.scheduler.maximum-allocation-mb")
	u[i] = 1.0
	u[j] = 1.0
	if o := e.Evaluate(u); !o.Failed {
		t.Fatal("oversized request succeeded without clamping")
	}
	// ... unless the environment clamps to the hardware boundary (§5.3.2).
	e.Clamp = true
	if o := e.Evaluate(u); o.Failed {
		t.Fatal("clamped request still failed")
	}
}

func TestCountedEnv(t *testing.T) {
	e := tsEnv(t)
	c := NewCounted(e)
	u := e.Space().DefaultAction()
	o1 := c.Evaluate(u)
	o2 := c.Evaluate(u)
	if c.Evals != 2 {
		t.Fatalf("Evals = %d", c.Evals)
	}
	if want := o1.ExecTime + o2.ExecTime; math.Abs(c.TotalTime-want) > 1e-9 {
		t.Fatalf("TotalTime = %v, want %v", c.TotalTime, want)
	}
}

func TestReportCosts(t *testing.T) {
	r := &Report{
		Tuner:    "DeepCAT",
		EnvLabel: "TS-D1@cluster-a",
		Steps: []TuningStep{
			{ExecTime: 50, RecommendSeconds: 0.1},
			{ExecTime: 40, RecommendSeconds: 0.2, Failed: true},
			{ExecTime: 30, RecommendSeconds: 0.3, Optimized: true},
		},
		BestTime: 30,
	}
	if got := r.EvaluationCost(); got != 120 {
		t.Fatalf("EvaluationCost = %v", got)
	}
	if got := r.RecommendationCost(); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("RecommendationCost = %v", got)
	}
	if got := r.TotalCost(); math.Abs(got-120.6) > 1e-12 {
		t.Fatalf("TotalCost = %v", got)
	}
}

func TestReportBestSoFar(t *testing.T) {
	r := &Report{Steps: []TuningStep{
		{ExecTime: 50},
		{ExecTime: 10, Failed: true}, // failures never count as best
		{ExecTime: 30},
		{ExecTime: 60},
	}}
	got := r.BestSoFar()
	want := []float64{50, 50, 30, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BestSoFar = %v, want %v", got, want)
		}
	}
}

func TestReportBestSoFarAllFailed(t *testing.T) {
	r := &Report{Steps: []TuningStep{{ExecTime: 10, Failed: true}}}
	if got := r.BestSoFar(); got[0] < 1e17 {
		t.Fatalf("BestSoFar with no success = %v, want +inf sentinel", got[0])
	}
}

func TestReportAccumulatedCost(t *testing.T) {
	r := &Report{Steps: []TuningStep{
		{ExecTime: 10, RecommendSeconds: 1},
		{ExecTime: 20, RecommendSeconds: 2},
	}}
	got := r.AccumulatedCost()
	if got[0] != 11 || got[1] != 33 {
		t.Fatalf("AccumulatedCost = %v", got)
	}
}

func TestReportSpeedup(t *testing.T) {
	r := &Report{Steps: []TuningStep{{ExecTime: 25}}, BestTime: 25}
	if got := r.Speedup(100); got != 4 {
		t.Fatalf("Speedup = %v", got)
	}
	empty := &Report{}
	if got := empty.Speedup(100); got != 0 {
		t.Fatalf("empty Speedup = %v", got)
	}
	failed := &Report{Steps: []TuningStep{{Failed: true}}, BestTime: 1e18}
	if got := failed.Speedup(100); got != 0 {
		t.Fatalf("failed Speedup = %v", got)
	}
}

func TestReportString(t *testing.T) {
	r := &Report{
		Tuner: "DeepCAT", EnvLabel: "x",
		Steps:    []TuningStep{{ExecTime: 10, Failed: true}, {ExecTime: 5, Optimized: true}},
		BestTime: 5,
	}
	s := r.String()
	for _, want := range []string{"DeepCAT", "FAILED", "twin-q optimized", "step 2"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String missing %q:\n%s", want, s)
		}
	}
}
