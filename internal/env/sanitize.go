package env

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Sanitizer rejection sentinels; callers branch with errors.Is.
var (
	// ErrNonFinite marks a measurement carrying NaN or ±Inf (or a
	// non-positive execution time) — a corrupted metrics pipeline, not a
	// slow run.
	ErrNonFinite = errors.New("non-finite measurement")
	// ErrOutlier marks an execution time implausibly far above the recent
	// history — a straggler or a mis-scaled measurement that would poison
	// the reward if learned from.
	ErrOutlier = errors.New("outlier measurement")
)

// CheckFinite rejects an outcome whose execution time is non-positive or
// non-finite, or whose state/metrics vectors carry NaN or ±Inf. It is the
// first gate every measured outcome passes before reaching the reward,
// the replay buffer, the flight recorder or the warehouse.
func CheckFinite(o Outcome) error {
	if !(o.ExecTime > 0) || math.IsInf(o.ExecTime, 0) {
		return fmt.Errorf("exec time %g: %w", o.ExecTime, ErrNonFinite)
	}
	for i, v := range o.State {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("state[%d] = %g: %w", i, v, ErrNonFinite)
		}
	}
	for i, v := range o.Metrics {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("metrics[%d] = %g: %w", i, v, ErrNonFinite)
		}
	}
	return nil
}

// Sanitizer gates measured outcomes before they are learned from: a finite
// check plus a robust upper-tail outlier test over the recent history of
// accepted execution times (median absolute deviation, the standard robust
// scale estimate). Only the upper tail is rejected — a suspiciously slow
// measurement is a straggler, while a suspiciously fast one may be exactly
// the improvement the tuner is searching for and must never be discarded.
//
// The zero value is unusable; construct with NewSanitizer. Fields are
// exported so session checkpoints can persist the history; the sanitizer
// itself consumes no randomness.
type Sanitizer struct {
	// Window bounds the accepted-measurement history (default 20).
	Window int
	// MADK is the rejection threshold in MAD units above the median
	// (default 8).
	MADK float64
	// MinSamples is the history size below which the outlier test is
	// skipped — with too little history "normal" is unknowable (default 5).
	MinSamples int
	// Recent holds the accepted execution times, oldest first.
	Recent []float64
}

// DefaultMADK is the default rejection threshold: 8 MADs above the median,
// far outside measurement noise but well inside an injected 10x outlier.
const DefaultMADK = 8

// NewSanitizer builds a sanitizer; window <= 0 selects 20 and k <= 0
// selects DefaultMADK.
func NewSanitizer(window int, k float64) *Sanitizer {
	if window <= 0 {
		window = 20
	}
	if k <= 0 {
		k = DefaultMADK
	}
	return &Sanitizer{Window: window, MADK: k, MinSamples: 5}
}

// Check validates a measured outcome against both gates without admitting
// it to the history; call Admit once the outcome has actually been used.
func (s *Sanitizer) Check(o Outcome) error {
	if err := CheckFinite(o); err != nil {
		return err
	}
	return s.CheckTime(o.ExecTime)
}

// CheckTime applies only the upper-tail MAD test to an execution time.
func (s *Sanitizer) CheckTime(execTime float64) error {
	if len(s.Recent) < s.MinSamples {
		return nil
	}
	med, mad := MedianMAD(s.Recent)
	// Floor the scale at 5% of the median: a run of near-identical
	// measurements must not make every future measurement an "outlier".
	scale := math.Max(mad, 0.05*med)
	if execTime > med+s.MADK*scale {
		return fmt.Errorf("exec time %.4g > median %.4g + %g*MAD %.4g: %w",
			execTime, med, s.MADK, scale, ErrOutlier)
	}
	return nil
}

// Admit records an accepted execution time, aging out the oldest entry
// beyond the window.
func (s *Sanitizer) Admit(execTime float64) {
	s.Recent = append(s.Recent, execTime)
	if len(s.Recent) > s.Window {
		s.Recent = s.Recent[len(s.Recent)-s.Window:]
	}
}

// MedianMAD returns the median and the median absolute deviation of xs.
// Both are 0 for an empty slice.
func MedianMAD(xs []float64) (median, mad float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	median = quantileSorted(sorted)
	devs := sorted // reuse: the absolute deviations overwrite the copy
	for i, v := range sorted {
		devs[i] = math.Abs(v - median)
	}
	sort.Float64s(devs)
	return median, quantileSorted(devs)
}

// quantileSorted returns the median of an already-sorted slice.
func quantileSorted(sorted []float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return sorted[n/2]
	}
	return 0.5 * (sorted[n/2-1] + sorted[n/2])
}
