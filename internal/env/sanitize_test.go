package env

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"
)

func TestCheckFinite(t *testing.T) {
	good := Outcome{ExecTime: 10, State: []float64{0.5}, Metrics: []float64{1}}
	if err := CheckFinite(good); err != nil {
		t.Fatalf("finite outcome rejected: %v", err)
	}
	cases := []Outcome{
		{ExecTime: math.NaN(), State: []float64{0.5}},
		{ExecTime: math.Inf(1), State: []float64{0.5}},
		{ExecTime: 0, State: []float64{0.5}},
		{ExecTime: -3, State: []float64{0.5}},
		{ExecTime: 10, State: []float64{math.NaN()}},
		{ExecTime: 10, State: []float64{0.5}, Metrics: []float64{math.Inf(-1)}},
	}
	for i, o := range cases {
		if err := CheckFinite(o); !errors.Is(err, ErrNonFinite) {
			t.Errorf("case %d: CheckFinite = %v, want ErrNonFinite", i, err)
		}
	}
}

func TestSanitizerUpperTailOnly(t *testing.T) {
	s := NewSanitizer(20, 8)
	for _, v := range []float64{100, 102, 98, 101, 99, 100} {
		s.Admit(v)
	}
	// 10x the median is an outlier.
	if err := s.CheckTime(1000); !errors.Is(err, ErrOutlier) {
		t.Fatalf("10x outlier passed: %v", err)
	}
	// A dramatic improvement is NOT an outlier: the lower tail is the
	// whole point of tuning.
	if err := s.CheckTime(10); err != nil {
		t.Fatalf("improvement rejected: %v", err)
	}
	// Values near the median pass.
	if err := s.CheckTime(110); err != nil {
		t.Fatalf("normal measurement rejected: %v", err)
	}
}

func TestSanitizerNeedsHistory(t *testing.T) {
	s := NewSanitizer(20, 8)
	s.Admit(100)
	s.Admit(101)
	// Below MinSamples everything finite passes.
	if err := s.CheckTime(1e6); err != nil {
		t.Fatalf("outlier test fired with %d samples: %v", len(s.Recent), err)
	}
}

func TestSanitizerWindowAges(t *testing.T) {
	s := NewSanitizer(4, 8)
	for i := 0; i < 10; i++ {
		s.Admit(float64(100 + i))
	}
	if len(s.Recent) != 4 {
		t.Fatalf("window holds %d, want 4", len(s.Recent))
	}
	if s.Recent[0] != 106 {
		t.Fatalf("oldest retained = %g, want 106", s.Recent[0])
	}
}

func TestSanitizerZeroVarianceFloor(t *testing.T) {
	s := NewSanitizer(20, 8)
	for i := 0; i < 8; i++ {
		s.Admit(100)
	}
	// MAD is 0; the 5%-of-median floor keeps nearby values acceptable.
	if err := s.CheckTime(105); err != nil {
		t.Fatalf("near-identical measurement rejected under zero variance: %v", err)
	}
	if err := s.CheckTime(500); !errors.Is(err, ErrOutlier) {
		t.Fatalf("5x outlier passed under zero variance: %v", err)
	}
}

// fixedEnv is a minimal plain Environment for shim tests.
type fixedEnv struct {
	Environment
	delay time.Duration
	out   Outcome
}

func (f *fixedEnv) Evaluate(u []float64) Outcome {
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	return f.out
}

func TestEvaluateWithContextPlainEnv(t *testing.T) {
	e := &fixedEnv{out: Outcome{ExecTime: 42}}
	o, err := EvaluateWithContext(context.Background(), e, []float64{0.5})
	if err != nil || o.ExecTime != 42 {
		t.Fatalf("plain env via shim = (%+v, %v)", o, err)
	}
}

func TestEvaluateWithContextDeadline(t *testing.T) {
	e := &fixedEnv{out: Outcome{ExecTime: 42}, delay: 200 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := EvaluateWithContext(ctx, e, []float64{0.5})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hung evaluation = %v, want DeadlineExceeded", err)
	}
}

func TestEvaluateWithContextCancelledBeforeCall(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := EvaluateWithContext(ctx, &fixedEnv{}, []float64{0.5})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx = %v, want Canceled", err)
	}
}

// ctxEnv verifies the shim prefers the fallible path when implemented.
type ctxEnv struct {
	Environment
	called bool
}

func (c *ctxEnv) Evaluate(u []float64) Outcome { return Outcome{ExecTime: 1} }
func (c *ctxEnv) EvaluateCtx(ctx context.Context, u []float64) (Outcome, error) {
	c.called = true
	return Outcome{ExecTime: 2}, nil
}

func TestEvaluateWithContextPrefersCtxPath(t *testing.T) {
	e := &ctxEnv{}
	o, err := EvaluateWithContext(context.Background(), e, nil)
	if err != nil || !e.called || o.ExecTime != 2 {
		t.Fatalf("ctx path not taken: (%+v, %v, called=%v)", o, err, e.called)
	}
}
