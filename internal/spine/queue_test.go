package spine

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"deepcat/internal/rl"
)

func batchWith(high bool, n int) ingestBatch {
	trs := make([]*rl.Transition, n)
	for i := range trs {
		trs[i] = &rl.Transition{Reward: -1}
	}
	return ingestBatch{trs: trs, high: high}
}

// The overflow policy in isolation: oldest low-priority victim first,
// then the incoming low batch, then the oldest high batch — exercised
// directly against the queue so the ordering is deterministic (no racing
// drainer).
func TestIngestQueueDropPolicyOrdering(t *testing.T) {
	q := newIngestQueue(2)

	// Case 1: full of [low, high]; pushing high evicts the queued low,
	// not the head position per se.
	lowA, highB, highC := batchWith(false, 1), batchWith(true, 2), batchWith(true, 3)
	if _, d := q.push(lowA); d {
		t.Fatal("push into empty queue dropped")
	}
	if _, d := q.push(highB); d {
		t.Fatal("push into non-full queue dropped")
	}
	victim, dropped := q.push(highC)
	if !dropped || len(victim.trs) != len(lowA.trs) {
		t.Fatalf("expected queued low batch evicted, got dropped=%v victim=%d trs", dropped, len(victim.trs))
	}

	// Case 2: queue now [highB, highC]; pushing low is refused (the
	// incoming batch itself is the victim).
	lowD := batchWith(false, 4)
	victim, dropped = q.push(lowD)
	if !dropped || len(victim.trs) != 4 {
		t.Fatalf("expected incoming low batch refused, got dropped=%v victim=%d trs", dropped, len(victim.trs))
	}

	// Case 3: all high and incoming high — drop the oldest so fresher
	// experience wins among equals.
	highE := batchWith(true, 5)
	victim, dropped = q.push(highE)
	if !dropped || len(victim.trs) != 2 {
		t.Fatalf("expected oldest high batch evicted, got dropped=%v victim=%d trs", dropped, len(victim.trs))
	}

	// FIFO order of the survivors: highC then highE.
	b, ok := q.pop()
	if !ok || len(b.trs) != 3 {
		t.Fatalf("pop 1 = %d trs, want 3", len(b.trs))
	}
	q.done()
	b, ok = q.pop()
	if !ok || len(b.trs) != 5 {
		t.Fatalf("pop 2 = %d trs, want 5", len(b.trs))
	}
	q.done()
}

func TestIngestQueueCloseDrains(t *testing.T) {
	q := newIngestQueue(4)
	q.push(batchWith(true, 1))
	q.push(batchWith(false, 2))
	q.close()
	// Closed but non-empty: pop still returns the queued batches in order.
	if b, ok := q.pop(); !ok || len(b.trs) != 1 {
		t.Fatalf("pop after close: ok=%v n=%d", ok, len(b.trs))
	}
	q.done()
	if b, ok := q.pop(); !ok || len(b.trs) != 2 {
		t.Fatalf("pop after close: ok=%v n=%d", ok, len(b.trs))
	}
	q.done()
	if _, ok := q.pop(); ok {
		t.Fatal("pop on closed empty queue returned a batch")
	}
	// Pushes after close are refused.
	if _, dropped := q.push(batchWith(true, 3)); !dropped {
		t.Fatal("push after close not dropped")
	}
}

func TestWaitIdleContext(t *testing.T) {
	q := newIngestQueue(4)
	q.push(batchWith(true, 1))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := q.waitIdle(ctx); err == nil {
		t.Fatal("waitIdle on a stuck queue did not honor ctx")
	}
}

func tr(reward float64) rl.Transition {
	return rl.Transition{
		State:     []float64{1, 2},
		Action:    []float64{0.5},
		Reward:    reward,
		NextState: []float64{2, 3},
	}
}

// End-to-end through the spine: a queued spine ingests asynchronously,
// WaitIngestIdle lines the test up with the drainer, and the data is
// sampleable afterward.
func TestSpineQueuedIngest(t *testing.T) {
	s := New(Options{Shards: 2, ShardCapacity: 64, FlushEvery: 4, QueueCapacity: 16})
	defer s.Close()
	a := s.Actor("TS")
	for i := 0; i < 20; i++ {
		a.Enqueue(tr(float64(i)))
	}
	a.Flush()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.WaitIngestIdle(ctx); err != nil {
		t.Fatal(err)
	}
	if got := s.Len("TS"); got != 20 {
		t.Fatalf("Len = %d, want 20", got)
	}
	if a.Sheds() != 0 {
		t.Fatalf("unexpected sheds: %d", a.Sheds())
	}
	var dst rl.Batch
	if n := s.Sample("TS", rand.New(rand.NewSource(1)), 8, &dst); n != 8 {
		t.Fatalf("Sample = %d, want 8", n)
	}
}

// An ingest storm against a tiny queue with the drainer wedged behind a
// shard lock must shed — crediting the actor — and the learner must
// still be able to train and publish from what survived.
func TestSpineShedUnderStormLearnerPublishes(t *testing.T) {
	s := New(Options{
		Shards: 1, ShardCapacity: 256, FlushEvery: 2, QueueCapacity: 2,
		RewardThreshold: 0, Seed: 7,
	})
	defer s.Close()

	// Seed enough experience for a learner before the storm.
	warm := make([]rl.Transition, 80)
	for i := range warm {
		warm[i] = tr(float64(i%2) - 0.5)
	}
	s.Ingest("TS", warm)

	// Wedge the drainer: hold the lane's only shard lock so applies stall
	// and the queue must overflow.
	l := s.lane("TS")
	l.shards[0].mu.Lock()
	a := s.Actor("TS")
	for i := 0; i < 100; i++ {
		a.Enqueue(tr(-1)) // low priority: below threshold
	}
	a.Flush()
	sheds := a.Sheds()
	l.shards[0].mu.Unlock()
	if sheds == 0 {
		t.Fatal("storm against a full queue shed nothing")
	}
	if s.ShedTransitions() < sheds {
		t.Fatalf("spine total %d < actor sheds %d", s.ShedTransitions(), sheds)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.WaitIngestIdle(ctx); err != nil {
		t.Fatal(err)
	}
	// The learner publishes from the surviving experience.
	if _, err := s.TrainFamily("TS", 2); err != nil {
		t.Fatalf("TrainFamily after storm: %v", err)
	}
	if p, ok := s.Policy("TS"); !ok || p.Version == 0 {
		t.Fatal("no policy published after storm")
	}
	st := s.Stats()
	if st.ShedTransitions == 0 {
		t.Fatal("Stats does not surface sheds")
	}
}

// High-reward batches must displace queued low-reward batches end to end.
func TestSpineHighRewardDisplacesLow(t *testing.T) {
	s := New(Options{
		Shards: 1, ShardCapacity: 256, FlushEvery: 2, QueueCapacity: 1,
		RewardThreshold: 0,
	})
	defer s.Close()
	l := s.lane("TS")
	l.shards[0].mu.Lock()
	low := s.Actor("TS")
	high := s.Actor("TS")
	// Give the drainer a moment to park on pop, then fill the queue with
	// a low batch and displace it with a high one.
	low.Enqueue(tr(-1))
	low.Enqueue(tr(-1))
	low.Flush()
	// One batch may be held mid-apply by the drainer (blocked on the shard
	// lock); keep pushing low batches until the queue itself is full.
	for low.Sheds() == 0 {
		low.Enqueue(tr(-1))
		low.Enqueue(tr(-1))
		low.Flush()
	}
	lowShedsBefore := low.Sheds()
	high.Enqueue(tr(1))
	high.Enqueue(tr(1))
	high.Flush()
	l.shards[0].mu.Unlock()
	if high.Sheds() != 0 {
		t.Fatalf("high-priority batch was shed (%d)", high.Sheds())
	}
	if low.Sheds() < lowShedsBefore {
		t.Fatal("low shed count went backward")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.WaitIngestIdle(ctx); err != nil {
		t.Fatal(err)
	}
	if s.Len("TS") == 0 {
		t.Fatal("nothing survived to the rings")
	}
}

// A synchronous spine (QueueCapacity 0) must behave exactly as before:
// no queue, no sheds, immediate visibility.
func TestSpineSynchronousUnchanged(t *testing.T) {
	s := New(Options{Shards: 2, ShardCapacity: 64, FlushEvery: 4})
	defer s.Close()
	a := s.Actor("TS")
	for i := 0; i < 8; i++ {
		a.Enqueue(tr(float64(i)))
	}
	a.Flush()
	if got := s.Len("TS"); got != 8 {
		t.Fatalf("Len = %d, want 8 immediately after Flush", got)
	}
	if s.QueueDepth() != 0 || s.ShedTransitions() != 0 {
		t.Fatal("synchronous spine reports queue state")
	}
	if err := s.WaitIngestIdle(context.Background()); err != nil {
		t.Fatal(err)
	}
}
