// Package spine is the high-throughput replay backbone of the actor/learner
// split (Ape-X style, Horgan et al.): tuning sessions become lightweight
// actors that enqueue their observed transitions into a sharded, lock-minimal
// reward-driven replay (RDPER's high/low pools, per shard), and a pool of
// background learners — one TD3 agent per workload family — trains off the
// shared experience and publishes versioned, immutable weight snapshots that
// sessions adopt at their own cadence.
//
// The replay path is built to never be the bottleneck:
//
//   - Batched ingest: each actor accumulates transitions in a private append
//     buffer and flushes the whole batch under one shard-lock acquisition.
//   - Sharding: every workload family's lane is split across N shards, each
//     with its own writer lock, so concurrent actors rarely contend.
//   - Copy-on-write slots: a transition is deep-copied once at enqueue into a
//     flat backing array and published into its ring slot with an atomic
//     pointer swap; from then on it is immutable. Samplers read slots with
//     atomic loads only — they never take a lock and never block ingest.
//
// Nothing here touches disk: durability stays with the warehouse WAL, which
// also warm-starts the spine after a restart (see the service wiring).
package spine

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"deepcat/internal/obs"
	"deepcat/internal/rl"
)

// Sentinel errors.
var (
	// ErrClosed marks calls against a closed spine.
	ErrClosed = errors.New("spine closed")
	// ErrUnknownFamily marks a family with no ingested experience.
	ErrUnknownFamily = errors.New("unknown workload family")
)

// Options configures a Spine. The zero value of every field selects a
// sensible default.
type Options struct {
	// Shards is the number of writer-locked shards per workload-family lane
	// (default 8).
	Shards int
	// ShardCapacity bounds each shard's high and low ring pool (default
	// 2048 transitions per pool, so a lane retains up to
	// Shards*ShardCapacity*2 transitions).
	ShardCapacity int
	// RewardThreshold is RDPER's R_th: transitions with reward >= R_th land
	// in the high-reward pools (default 0, matching core.DefaultConfig).
	RewardThreshold float64
	// Beta is the fraction of each sampled batch drawn from the high-reward
	// pools (default 0.6, the paper's pick).
	Beta float64
	// FlushEvery is the actor append-buffer size: enqueues are local until
	// this many accumulate, then the batch is flushed under one lock
	// acquisition (default 32). Actors may also Flush explicitly.
	FlushEvery int
	// QueueCapacity, when positive, puts a bounded ingest queue (measured
	// in flush batches) between actors and the shard rings: Flush becomes
	// a non-blocking enqueue and a single drainer goroutine applies
	// batches, shedding by the drop-oldest-low-priority policy when the
	// queue overflows (see ingestQueue). Zero keeps the original
	// synchronous Flush — no queue, no shedding, deterministic ingest.
	QueueCapacity int

	// LearnInterval is the period of the background learner loop; zero or
	// negative disables it, leaving TrainFamily to explicit calls.
	LearnInterval time.Duration
	// LearnIters is the number of gradient updates per learner pass
	// (default 4).
	LearnIters int
	// LearnBatch is the training mini-batch size (default 32).
	LearnBatch int
	// LearnMinNew is how many transitions a lane must ingest since its last
	// training before the background loop retrains it (default 32).
	LearnMinNew int
	// MinTransitions is the smallest lane that gets a learner at all
	// (default 64).
	MinTransitions int
	// Workers bounds concurrent background learner passes (default 2).
	Workers int
	// Seed drives learner randomness; each family derives a deterministic
	// sub-seed from it (default 1).
	Seed int64

	// Registry, when non-nil, receives the spine's metrics; nil keeps the
	// layer a no-op. Logger, when non-nil, receives learner events.
	Registry *obs.Registry
	Logger   *obs.Logger
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 8
	}
	if o.ShardCapacity <= 0 {
		o.ShardCapacity = 2048
	}
	if o.Beta <= 0 || o.Beta > 1 {
		o.Beta = 0.6
	}
	if o.FlushEvery <= 0 {
		o.FlushEvery = 32
	}
	if o.LearnIters <= 0 {
		o.LearnIters = 4
	}
	if o.LearnBatch <= 0 {
		o.LearnBatch = 32
	}
	if o.LearnMinNew <= 0 {
		o.LearnMinNew = 32
	}
	if o.MinTransitions <= 0 {
		o.MinTransitions = 64
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// shard is one writer-locked slice of a lane: an RDPER high/low pool pair.
// The mutex guards only the writer cursors; samplers never take it.
type shard struct {
	mu        sync.Mutex
	high, low *ring
}

// lane is one workload family's experience: Shards shards plus ingest
// accounting. Lanes are created on first ingest and never removed.
type lane struct {
	family string
	shards []*shard
	// rr distributes flushes across shards round-robin.
	rr atomic.Uint64
	// ingested counts transitions ever flushed into the lane.
	ingested atomic.Uint64
}

func (l *lane) highLen() int {
	n := 0
	for _, sh := range l.shards {
		n += sh.high.len()
	}
	return n
}

func (l *lane) lowLen() int {
	n := 0
	for _, sh := range l.shards {
		n += sh.low.len()
	}
	return n
}

func (l *lane) len() int { return l.highLen() + l.lowLen() }

// spineMetrics bundles the spine's instruments; nil-instrument no-ops when
// the spine runs without a registry. reg is kept for the per-family health
// gauges, whose label sets only exist once a lane does.
type spineMetrics struct {
	reg       *obs.Registry
	ingested  *obs.Counter
	flushes   *obs.Counter
	sampled   *obs.Counter
	sampleDur *obs.Histogram
	trainings *obs.Counter
	publishes *obs.Counter
	learners  *obs.Gauge
	dutyCycle *obs.Gauge
	shed      *obs.Counter
}

func newSpineMetrics(reg *obs.Registry) spineMetrics {
	return spineMetrics{
		reg:       reg,
		ingested:  reg.Counter("deepcat_spine_ingest_transitions_total"),
		flushes:   reg.Counter("deepcat_spine_ingest_flushes_total"),
		sampled:   reg.Counter("deepcat_spine_sampled_transitions_total"),
		sampleDur: reg.Histogram("deepcat_spine_sample_duration_seconds", nil),
		trainings: reg.Counter("deepcat_spine_learner_trainings_total"),
		publishes: reg.Counter("deepcat_spine_policy_publishes_total"),
		learners:  reg.Gauge("deepcat_spine_learners"),
		dutyCycle: reg.Gauge("deepcat_spine_learner_duty_permille"),
		shed:      reg.Counter("deepcat_spine_shed_transitions_total"),
	}
}

// Spine is the shared replay backbone plus its learner pool. All methods
// are safe for concurrent use; Actor handles are not (one per session).
type Spine struct {
	opts Options
	met  spineMetrics
	logg *obs.Logger

	mu     sync.RWMutex
	lanes  map[string]*lane
	closed bool

	lmu      sync.Mutex
	learners map[string]*learner

	stopc      chan struct{}
	loopWG     sync.WaitGroup
	trainWG    sync.WaitGroup
	trainSlots chan struct{}

	// born anchors the learner duty-cycle ratio; trainNS accumulates wall
	// time spent inside training passes across all learners.
	born    time.Time
	trainNS atomic.Int64

	// queue is the bounded ingest queue (nil when QueueCapacity is 0 and
	// Flush applies synchronously); bufPool recycles flush buffers across
	// the actor→drainer handoff; shedTotal counts transitions dropped by
	// the overflow policy.
	queue     *ingestQueue
	bufPool   sync.Pool
	shedTotal atomic.Uint64
}

// New creates a spine. When opts.LearnInterval is positive a background
// goroutine periodically retrains due families' learners.
func New(opts Options) *Spine {
	opts = opts.withDefaults()
	s := &Spine{
		opts:       opts,
		met:        newSpineMetrics(opts.Registry),
		logg:       opts.Logger,
		lanes:      make(map[string]*lane),
		learners:   make(map[string]*learner),
		stopc:      make(chan struct{}),
		trainSlots: make(chan struct{}, opts.Workers),
		born:       time.Now(),
	}
	if opts.QueueCapacity > 0 {
		s.queue = newIngestQueue(opts.QueueCapacity)
		s.loopWG.Add(1)
		go s.drainLoop()
	}
	if opts.LearnInterval > 0 {
		s.loopWG.Add(1)
		go s.loop()
	}
	return s
}

// Close stops the background learner loop and waits for in-flight passes.
// Ingest and sampling against a closed spine stay safe (the rings are plain
// memory); TrainFamily fails with ErrClosed.
func (s *Spine) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stopc)
	if s.queue != nil {
		// Wake the drainer; it applies everything still queued before
		// exiting, so a graceful shutdown loses no experience.
		s.queue.close()
	}
	s.loopWG.Wait()
	s.trainWG.Wait()
}

// lane returns the family's lane, creating it on first use.
func (s *Spine) lane(family string) *lane {
	s.mu.RLock()
	l := s.lanes[family]
	s.mu.RUnlock()
	if l != nil {
		return l
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if l = s.lanes[family]; l != nil {
		return l
	}
	l = &lane{family: family, shards: make([]*shard, s.opts.Shards)}
	for i := range l.shards {
		l.shards[i] = &shard{
			high: newRing(s.opts.ShardCapacity),
			low:  newRing(s.opts.ShardCapacity),
		}
	}
	s.lanes[family] = l
	return l
}

// peek returns any stored transition of the lane (nil when empty); learners
// use it to discover the family's state/action dimensions.
func (l *lane) peek() *rl.Transition {
	for _, sh := range l.shards {
		for _, r := range []*ring{sh.high, sh.low} {
			if n := int(r.n.Load()); n > 0 {
				return r.slots[0].Load()
			}
		}
	}
	return nil
}

// Actor is one producer's handle into the spine: a private append buffer
// bound to a workload family, flushed in batches. Not safe for concurrent
// use — each session (or benchmark goroutine) owns its own.
type Actor struct {
	sp   *Spine
	lane *lane
	buf  []*rl.Transition
	// shed counts this actor's transitions dropped by the ingest queue's
	// overflow policy — including batches it enqueued long ago that were
	// evicted as someone else's flush arrived. Atomic because the drainer
	// and overflow path credit it from other goroutines.
	shed atomic.Uint64
}

// Actor returns a new producer handle for the family.
func (s *Spine) Actor(family string) *Actor {
	return &Actor{
		sp:   s,
		lane: s.lane(family),
		buf:  s.getBuf(),
	}
}

// Sheds returns the number of this actor's transitions dropped by spine
// backpressure (always 0 on a synchronous spine).
func (a *Actor) Sheds() uint64 { return a.shed.Load() }

// Enqueue deep-copies the transition into the actor's append buffer,
// flushing the batch into the lane once FlushEvery accumulate. The caller
// may reuse tr's slices immediately.
func (a *Actor) Enqueue(tr rl.Transition) {
	a.buf = append(a.buf, compactClone(tr))
	if len(a.buf) >= cap(a.buf) {
		a.Flush()
	}
}

// Pending returns the number of buffered, not-yet-flushed transitions.
func (a *Actor) Pending() int { return len(a.buf) }

// Flush publishes the buffered transitions. On a synchronous spine
// (QueueCapacity 0) they go straight into the next shard (round-robin)
// under a single lock acquisition. With a bounded ingest queue, Flush is
// a non-blocking handoff: the buffer is enqueued for the drainer, the
// actor takes a recycled buffer from the pool, and if the queue was full
// the overflow policy's victim is shed with its transitions credited to
// the owning actor — the serving thread never waits on replay ingest.
func (a *Actor) Flush() {
	if len(a.buf) == 0 {
		return
	}
	sp := a.sp
	if sp.queue == nil {
		sp.applyBatch(a.lane, a.buf)
		a.buf = a.buf[:0]
		return
	}
	rth := sp.opts.RewardThreshold
	high := false
	for _, tr := range a.buf {
		if tr.Reward >= rth {
			high = true
			break
		}
	}
	b := ingestBatch{lane: a.lane, trs: a.buf, high: high, shed: &a.shed}
	a.buf = sp.getBuf()
	if victim, dropped := sp.queue.push(b); dropped {
		sp.shedBatch(victim)
	}
}

// Ingest bulk-loads transitions into a family's lane, spreading them across
// shards in FlushEvery-sized batches. The service uses it to warm-start the
// spine from the warehouse WAL after a restart. On a queued spine it waits
// for the queue to drain so the bulk load keeps its synchronous contract
// (callers train immediately after warm-starting).
func (s *Spine) Ingest(family string, trs []rl.Transition) {
	a := s.Actor(family)
	for _, tr := range trs {
		a.Enqueue(tr)
	}
	a.Flush()
	s.WaitIngestIdle(context.Background())
}

// Sample fills dst with up to n transitions of the family, ceil(Beta*n)
// from the high-reward pools and the rest from the low (while one side is
// empty the whole batch comes from the other, mirroring RDPER). dst's
// backing slices are reused across calls; the sampled transitions reference
// the spine's immutable copy-on-write slots and must not be mutated. It
// returns the number sampled — 0 for an unknown or empty family — and never
// blocks ingest.
func (s *Spine) Sample(family string, rng *rand.Rand, n int, dst *rl.Batch) int {
	start := time.Now()
	s.mu.RLock()
	l := s.lanes[family]
	s.mu.RUnlock()
	dst.Transitions = dst.Transitions[:0]
	dst.Indices = dst.Indices[:0]
	dst.Weights = dst.Weights[:0]
	if l == nil {
		return 0
	}
	highN, lowN := l.highLen(), l.lowLen()
	if highN+lowN == 0 {
		return 0
	}
	nHigh := int(s.opts.Beta*float64(n) + 0.999999)
	if nHigh > n {
		nHigh = n
	}
	switch {
	case highN == 0:
		nHigh = 0
	case lowN == 0:
		nHigh = n
	}
	l.samplePool(rng, nHigh, true, dst)
	l.samplePool(rng, n-nHigh, false, dst)
	for i := range dst.Transitions {
		dst.Indices = append(dst.Indices, i)
		dst.Weights = append(dst.Weights, 1)
	}
	s.met.sampled.Add(uint64(len(dst.Transitions)))
	s.met.sampleDur.ObserveSince(start)
	return len(dst.Transitions)
}

// samplePool appends n draws (with replacement) from the lane's high or low
// pools: a random shard, probed forward past empty ones, then a random slot.
// Lock-free — only atomic loads.
func (l *lane) samplePool(rng *rand.Rand, n int, high bool, dst *rl.Batch) {
	ns := len(l.shards)
	for i := 0; i < n; i++ {
		start := rng.Intn(ns)
		for probe := 0; probe < ns; probe++ {
			sh := l.shards[(start+probe)%ns]
			r := sh.low
			if high {
				r = sh.high
			}
			if tr := r.sample(rng); tr != nil {
				dst.Transitions = append(dst.Transitions, *tr)
				break
			}
		}
	}
}

// LaneStats summarizes one workload family's lane and learner.
type LaneStats struct {
	Family string `json:"family"`
	// High and Low are the retained pool sizes; Ingested counts every
	// transition ever flushed (including evicted ones).
	High     int    `json:"high"`
	Low      int    `json:"low"`
	Ingested uint64 `json:"ingested"`
	// Version is the latest published policy version (0 = none yet);
	// Trainings counts learner passes.
	Version   int `json:"version,omitempty"`
	Trainings int `json:"trainings,omitempty"`
	// Backlog is how many transitions have been ingested since the last
	// learner pass — the replay-path lag between actors producing
	// experience and the learner consuming it.
	Backlog uint64 `json:"backlog,omitempty"`
	// StalenessSeconds is how long ago the family's policy was last
	// published (0 while nothing has been published yet).
	StalenessSeconds float64 `json:"staleness_seconds,omitempty"`
}

// Stats is a point-in-time snapshot of the spine.
type Stats struct {
	Shards        int         `json:"shards"`
	ShardCapacity int         `json:"shard_capacity"`
	Lanes         []LaneStats `json:"lanes,omitempty"`
	// LearnerDuty is the fraction of wall time the learner pool has spent
	// inside training passes since the spine started (summed over workers,
	// so >1 means more than one concurrent pass on average).
	LearnerDuty float64 `json:"learner_duty,omitempty"`
	// QueueDepth is the number of flush batches waiting in the bounded
	// ingest queue (0 on a synchronous spine); ShedTransitions counts
	// transitions its overflow policy has dropped.
	QueueDepth      int    `json:"queue_depth,omitempty"`
	ShedTransitions uint64 `json:"shed_transitions,omitempty"`
}

// Stats reports per-family lane sizes and learner progress, sorted by
// family.
func (s *Spine) Stats() Stats {
	s.mu.RLock()
	lanes := make([]*lane, 0, len(s.lanes))
	for _, l := range s.lanes {
		lanes = append(lanes, l)
	}
	s.mu.RUnlock()
	st := Stats{Shards: s.opts.Shards, ShardCapacity: s.opts.ShardCapacity}
	now := time.Now()
	for _, l := range lanes {
		ls := LaneStats{
			Family:   l.family,
			High:     l.highLen(),
			Low:      l.lowLen(),
			Ingested: l.ingested.Load(),
		}
		ls.Backlog = ls.Ingested
		s.lmu.Lock()
		if ln := s.learners[l.family]; ln != nil {
			if p := ln.pub.Load(); p != nil {
				ls.Version = p.Version
			}
			ls.Trainings = int(ln.trainings.Load())
			ls.Backlog = ls.Ingested - ln.lastIngested.Load()
			if at := ln.lastPublish.Load(); at > 0 {
				ls.StalenessSeconds = now.Sub(time.Unix(0, at)).Seconds()
			}
		}
		s.lmu.Unlock()
		st.Lanes = append(st.Lanes, ls)
	}
	if elapsed := now.Sub(s.born).Seconds(); elapsed > 0 {
		st.LearnerDuty = float64(s.trainNS.Load()) / 1e9 / elapsed
	}
	st.QueueDepth = s.QueueDepth()
	st.ShedTransitions = s.shedTotal.Load()
	sort.Slice(st.Lanes, func(i, j int) bool { return st.Lanes[i].Family < st.Lanes[j].Family })
	return st
}

// RefreshHealthMetrics publishes the spine's derived health view into its
// registry gauges: per-family queue depth, ingest backlog, published policy
// version and staleness, plus the pool-wide learner duty cycle. Gauges are
// resolved by name each call (families appear dynamically); the background
// loop refreshes them every tick and the service's metrics-snapshot path
// refreshes them on demand, so scrapes are never staler than one request.
// A spine without a registry no-ops.
func (s *Spine) RefreshHealthMetrics() {
	if s.met.reg == nil {
		return
	}
	st := s.Stats()
	for _, ls := range st.Lanes {
		s.met.reg.Gauge("deepcat_spine_queue_depth", "family", ls.Family).Set(int64(ls.High + ls.Low))
		s.met.reg.Gauge("deepcat_spine_ingest_backlog", "family", ls.Family).Set(int64(ls.Backlog))
		s.met.reg.Gauge("deepcat_spine_policy_version", "family", ls.Family).Set(int64(ls.Version))
		s.met.reg.Gauge("deepcat_spine_policy_staleness_seconds", "family", ls.Family).
			Set(int64(ls.StalenessSeconds + 0.5))
	}
	s.met.dutyCycle.Set(int64(st.LearnerDuty * 1000))
	s.met.reg.Gauge("deepcat_spine_ingest_queue_depth").Set(int64(st.QueueDepth))
}

// Len returns the number of retained transitions for a family (0 when
// unknown).
func (s *Spine) Len(family string) int {
	s.mu.RLock()
	l := s.lanes[family]
	s.mu.RUnlock()
	if l == nil {
		return 0
	}
	return l.len()
}

func (s *Spine) isClosed() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.closed
}
