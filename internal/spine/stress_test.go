package spine

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"deepcat/internal/rl"
)

// TestSpineConcurrentStress drives the full actor/learner contract at once:
// 8 actors enqueueing, 4 samplers reading lock-free, a learner goroutine
// training and publishing, and an adopter goroutine restoring published
// policies into its own agent — the way sessions adopt weights. It is sized
// to finish quickly in -short mode and exists chiefly to run under -race
// (CI's race job covers ./... so this is exercised there automatically).
func TestSpineConcurrentStress(t *testing.T) {
	perActor, passes := 400, 6
	if testing.Short() {
		perActor, passes = 120, 3
	}
	s := New(Options{Shards: 4, ShardCapacity: 512, FlushEvery: 16, LearnBatch: 16, Seed: 7})
	defer s.Close()

	const fam = "stress"
	var wg, samplerWG sync.WaitGroup
	stop := make(chan struct{})

	// 8 concurrent actors, each with its own handle and append buffer.
	for a := 0; a < 8; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(a + 1)))
			ac := s.Actor(fam)
			for i := 0; i < perActor; i++ {
				ac.Enqueue(rl.Transition{
					State:     []float64{rng.Float64(), rng.Float64(), rng.Float64()},
					Action:    []float64{rng.Float64(), rng.Float64()},
					Reward:    rng.NormFloat64(),
					NextState: []float64{rng.Float64(), rng.Float64(), rng.Float64()},
				})
			}
			ac.Flush()
		}(a)
	}

	// 4 samplers hammering the lock-free read path while ingest runs.
	for sm := 0; sm < 4; sm++ {
		samplerWG.Add(1)
		go func(sm int) {
			defer samplerWG.Done()
			rng := rand.New(rand.NewSource(int64(100 + sm)))
			var batch rl.Batch
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := s.Sample(fam, rng, 32, &batch)
				for i := 0; i < n; i++ {
					if len(batch.Transitions[i].State) != 3 {
						t.Errorf("sampled transition with state dim %d", len(batch.Transitions[i].State))
						return
					}
				}
			}
		}(sm)
	}

	// Learner: repeated passes publishing fresh policy versions.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for p := 0; p < passes; p++ {
			if _, err := s.TrainFamily(fam, 1); err != nil {
				// Early passes may race the first flush; that's fine.
				time.Sleep(time.Millisecond)
				continue
			}
		}
	}()

	// Adopter: poll the published policy and restore it into a private agent,
	// exactly what a session's weight adoption does.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var agent *rl.TD3
		seen := 0
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			pol, ok := s.Policy(fam)
			if !ok {
				time.Sleep(time.Millisecond)
				continue
			}
			if agent == nil {
				rng := rand.New(rand.NewSource(999))
				cfg := rl.DefaultTD3Config(3, 2)
				cfg.Hidden = []int{64, 64}
				a2, err := rl.NewTD3(rng, cfg)
				if err != nil {
					t.Errorf("adopter agent: %v", err)
					return
				}
				agent = a2
			}
			if err := agent.RestoreState(pol.Agent); err != nil {
				t.Errorf("adopt version %d: %v", pol.Version, err)
				return
			}
			agent.Act([]float64{0.1, 0.2, 0.3})
			if seen++; seen >= passes {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	wg.Wait()
	close(stop)
	samplerWG.Wait()

	want := uint64(8 * perActor)
	if got := s.Stats().Lanes[0].Ingested; got != want {
		t.Fatalf("ingested = %d, want %d", got, want)
	}
}
