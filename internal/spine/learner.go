package spine

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"deepcat/internal/core"
	"deepcat/internal/rl"
)

// Policy is one published weight snapshot of a family's learner. It is
// immutable after publication: many sessions may adopt the same Policy
// concurrently, each copying the state into its own agent. Versions are
// dense per family, starting at 1, so "adopt if newer than what I have" is
// a single integer comparison and a resumed session (whose checkpoint
// recorded its adopted version) never re-adopts an older snapshot.
type Policy struct {
	Family  string
	Version int
	// Agent carries every network and optimizer moment; treat as read-only.
	Agent rl.TD3State
}

// learner trains one workload family's TD3 agent off the lane and publishes
// Policy snapshots. tmu serializes training passes; pub is the lock-free
// read side sessions adopt from, so adoption never waits on a pass.
type learner struct {
	family string
	// tmu guards agent, rng and batch across passes.
	tmu   sync.Mutex
	agent *rl.TD3
	rng   *rand.Rand
	// batch is the reused sampling scratch; its backing grows once to the
	// batch size and is then recycled every iteration.
	batch rl.Batch
	// lastIngested is the lane's ingested count at the last pass; the
	// background loop retrains once LearnMinNew more arrive.
	lastIngested atomic.Uint64

	pub       atomic.Pointer[Policy]
	trainings atomic.Uint64
	// lastPublish is the unix-nano wall time of the latest published
	// Policy; the health gauges derive staleness from it.
	lastPublish atomic.Int64
}

// learnerSeed derives a deterministic per-family seed, mirroring the
// warehouse's donor seeding so a spine rebuilt from the same WAL trains the
// same trajectory given the same sampling stream.
func learnerSeed(base int64, family string) int64 {
	h := fnv.New64a()
	h.Write([]byte(family))
	return base ^ int64(h.Sum64()&0x7fffffffffff)
}

// ensureLearner returns the family's learner, creating it on first use. The
// family's state/action dimensions come from a stored transition, so a lane
// must hold experience before it can have a learner.
func (s *Spine) ensureLearner(l *lane) (*learner, error) {
	s.lmu.Lock()
	defer s.lmu.Unlock()
	if ln := s.learners[l.family]; ln != nil {
		return ln, nil
	}
	tr := l.peek()
	if tr == nil {
		return nil, fmt.Errorf("spine: %s: %w", l.family, ErrUnknownFamily)
	}
	// The agent architecture must match the sessions', or adoption would be
	// refused; both sides derive it from core.DefaultConfig.
	cfg := core.DefaultConfig(len(tr.State), len(tr.Action))
	rng := rand.New(rand.NewSource(learnerSeed(s.opts.Seed, l.family)))
	agent, err := rl.NewTD3(rng, cfg.TD3)
	if err != nil {
		return nil, fmt.Errorf("spine: learner %s: %w", l.family, err)
	}
	ln := &learner{family: l.family, agent: agent, rng: rng}
	s.learners[l.family] = ln
	s.met.learners.Inc()
	s.logg.Info("spine learner created", "family", l.family,
		"state_dim", len(tr.State), "action_dim", len(tr.Action))
	return ln, nil
}

// Policy returns the latest published weight snapshot for a family; ok is
// false while the family has no learner or the learner has not published
// yet. The read side is lock-free beyond the learner-map lookup.
func (s *Spine) Policy(family string) (*Policy, bool) {
	s.lmu.Lock()
	ln := s.learners[family]
	s.lmu.Unlock()
	if ln == nil {
		return nil, false
	}
	p := ln.pub.Load()
	if p == nil {
		return nil, false
	}
	return p, true
}

// TrainFamily synchronously runs one learner pass for a family: iters
// gradient updates (<= 0 selects Options.LearnIters) sampled from the lane,
// then a new Policy version published. Tests and the e2e gate call it
// directly; production runs it from the background loop.
func (s *Spine) TrainFamily(family string, iters int) (*Policy, error) {
	if s.isClosed() {
		return nil, ErrClosed
	}
	s.mu.RLock()
	l := s.lanes[family]
	s.mu.RUnlock()
	if l == nil || l.len() == 0 {
		return nil, fmt.Errorf("spine: %s: %w", family, ErrUnknownFamily)
	}
	ln, err := s.ensureLearner(l)
	if err != nil {
		return nil, err
	}
	if iters <= 0 {
		iters = s.opts.LearnIters
	}
	return s.trainPass(l, ln, iters), nil
}

// trainPass performs one training pass, serialized per learner, and
// publishes the result as the family's next Policy version.
func (s *Spine) trainPass(l *lane, ln *learner, iters int) *Policy {
	ln.tmu.Lock()
	defer ln.tmu.Unlock()
	start := time.Now()
	done := 0
	for i := 0; i < iters; i++ {
		n := s.opts.LearnBatch
		if avail := l.len(); avail < n {
			n = avail
		}
		if n < 2 {
			break
		}
		if got := s.Sample(l.family, ln.rng, n, &ln.batch); got == 0 {
			break
		}
		ln.agent.Train(ln.rng, ln.batch)
		done++
	}
	ln.lastIngested.Store(l.ingested.Load())
	ln.trainings.Add(1)
	s.met.trainings.Inc()
	prev := 0
	if p := ln.pub.Load(); p != nil {
		prev = p.Version
	}
	pol := &Policy{Family: l.family, Version: prev + 1, Agent: ln.agent.CaptureState()}
	ln.pub.Store(pol)
	ln.lastPublish.Store(time.Now().UnixNano())
	s.trainNS.Add(time.Since(start).Nanoseconds())
	s.met.publishes.Inc()
	s.logg.Debug("spine policy published", "family", l.family,
		"version", pol.Version, "iters", done, "dur", time.Since(start))
	return pol
}

// loop is the background learner scheduler: every LearnInterval it finds
// lanes with enough new experience and dispatches a pass for each, bounded
// by the worker pool. Saturated dispatches are skipped — the lane stays due
// and the next tick retries, so nothing queues without bound.
func (s *Spine) loop() {
	defer s.loopWG.Done()
	ticker := time.NewTicker(s.opts.LearnInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stopc:
			return
		case <-ticker.C:
		}
		s.RefreshHealthMetrics()
		for _, fam := range s.dueFamilies() {
			select {
			case s.trainSlots <- struct{}{}:
			default:
				continue
			}
			s.trainWG.Add(1)
			go func(fam string) {
				defer s.trainWG.Done()
				defer func() { <-s.trainSlots }()
				if _, err := s.TrainFamily(fam, 0); err != nil {
					s.logg.Warn("spine learner pass failed", "family", fam, "err", err)
				}
			}(fam)
		}
	}
}

// dueFamilies lists lanes big enough for a learner that have ingested at
// least LearnMinNew transitions since their last pass, sorted for
// determinism.
func (s *Spine) dueFamilies() []string {
	s.mu.RLock()
	lanes := make([]*lane, 0, len(s.lanes))
	for _, l := range s.lanes {
		lanes = append(lanes, l)
	}
	s.mu.RUnlock()
	var due []string
	for _, l := range lanes {
		if l.len() < s.opts.MinTransitions {
			continue
		}
		s.lmu.Lock()
		ln := s.learners[l.family]
		s.lmu.Unlock()
		var last uint64
		if ln != nil {
			last = ln.lastIngested.Load()
		}
		if l.ingested.Load()-last < uint64(s.opts.LearnMinNew) {
			continue
		}
		due = append(due, l.family)
	}
	sort.Strings(due)
	return due
}
