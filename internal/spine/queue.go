package spine

import (
	"context"
	"sync"
	"sync/atomic"

	"deepcat/internal/rl"
)

// ingestBatch is one actor flush in transit through the bounded queue:
// the destination lane, the copy-on-write transitions, a priority bit
// (whether any transition clears the reward threshold — high-reward
// experience is RDPER's scarce resource and sheds last), and the owner
// actor's shed counter so dropped work is attributed to the session that
// produced it.
type ingestBatch struct {
	lane *lane
	trs  []*rl.Transition
	high bool
	shed *atomic.Uint64 // nil for ownerless bulk loads
}

// ingestQueue is the spine's backpressure boundary: a bounded FIFO of
// flush batches between actors and the shard rings. When it is full the
// overflow policy drops in strict priority order:
//
//  1. the oldest low-priority batch already queued (stale, expendable
//     experience makes room for anything newer);
//  2. failing that, the incoming batch if it is itself low-priority;
//  3. failing that — everything queued and incoming is high — the oldest,
//     so fresher experience wins among equals.
//
// Every dropped batch is counted against its owning actor and the
// spine-wide shed counter; nothing ever blocks the actor's serving
// thread.
type ingestQueue struct {
	mu       sync.Mutex
	nonEmpty *sync.Cond
	idle     *sync.Cond
	batches  []ingestBatch
	capb     int
	applying bool
	closed   bool
}

func newIngestQueue(capBatches int) *ingestQueue {
	q := &ingestQueue{capb: capBatches}
	q.nonEmpty = sync.NewCond(&q.mu)
	q.idle = sync.NewCond(&q.mu)
	return q
}

// push enqueues b, evicting per the overflow policy when full. It returns
// the dropped batch, if any, so the caller can credit shed counters and
// recycle buffers. Never blocks.
func (q *ingestQueue) push(b ingestBatch) (dropped ingestBatch, didDrop bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return b, true
	}
	if len(q.batches) >= q.capb {
		victim := -1
		for i, qb := range q.batches {
			if !qb.high {
				victim = i
				break
			}
		}
		switch {
		case victim >= 0:
			dropped = q.batches[victim]
			q.batches = append(q.batches[:victim], q.batches[victim+1:]...)
		case !b.high:
			return b, true // everything queued outranks the newcomer
		default:
			dropped = q.batches[0]
			q.batches = q.batches[1:]
		}
		didDrop = true
	}
	q.batches = append(q.batches, b)
	q.nonEmpty.Signal()
	return dropped, didDrop
}

// pop blocks until a batch is available or the queue is closed; ok=false
// means closed-and-empty (time for the drainer to exit).
func (q *ingestQueue) pop() (ingestBatch, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.batches) == 0 {
		if q.closed {
			return ingestBatch{}, false
		}
		q.nonEmpty.Wait()
	}
	b := q.batches[0]
	q.batches = q.batches[1:]
	q.applying = true
	return b, true
}

// done marks the popped batch applied and wakes idle waiters when the
// queue has fully drained.
func (q *ingestQueue) done() {
	q.mu.Lock()
	q.applying = false
	if len(q.batches) == 0 {
		q.idle.Broadcast()
	}
	q.mu.Unlock()
}

// depth returns the number of queued (not yet applied) batches.
func (q *ingestQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.batches)
}

// close wakes the drainer; queued batches are still drained before the
// drainer exits, so a graceful shutdown loses nothing.
func (q *ingestQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.nonEmpty.Broadcast()
	q.idle.Broadcast()
	q.mu.Unlock()
}

// waitIdle blocks until the queue is empty with no batch mid-apply, the
// queue closes, or the context expires. Bulk loads use it to keep their
// synchronous contract; tests use it to line up assertions.
func (q *ingestQueue) waitIdle(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		// A waker so ctx expiry can interrupt the cond wait. Taking the
		// mutex serializes the broadcast against the waiter's park, so the
		// wakeup can't slip between its ctx check and its Wait.
		select {
		case <-ctx.Done():
			q.mu.Lock()
			q.idle.Broadcast()
			q.mu.Unlock()
		case <-done:
		}
	}()
	defer close(done)
	q.mu.Lock()
	defer q.mu.Unlock()
	for (len(q.batches) > 0 || q.applying) && !q.closed {
		if err := ctx.Err(); err != nil {
			return err
		}
		q.idle.Wait()
	}
	return ctx.Err()
}

// drainLoop is the spine's single queue consumer: it applies batches to
// their lanes' shard rings under the normal shard locks, recycles flush
// buffers, and exits once the queue is closed and empty.
func (s *Spine) drainLoop() {
	defer s.loopWG.Done()
	for {
		b, ok := s.queue.pop()
		if !ok {
			return
		}
		s.applyBatch(b.lane, b.trs)
		s.recycle(b.trs)
		s.queue.done()
	}
}

// applyBatch routes one flush's transitions into the next shard
// round-robin under a single lock acquisition — the same hot loop a
// synchronous Flush runs inline. Ingest accounting happens here, at
// apply time, so lane.ingested (and the learner backlog derived from it)
// only ever counts experience that actually reached a ring.
func (s *Spine) applyBatch(l *lane, trs []*rl.Transition) {
	if len(trs) == 0 {
		return
	}
	sh := l.shards[l.rr.Add(1)%uint64(len(l.shards))]
	rth := s.opts.RewardThreshold
	sh.mu.Lock()
	for _, tr := range trs {
		if tr.Reward >= rth {
			sh.high.append(tr)
		} else {
			sh.low.append(tr)
		}
	}
	sh.mu.Unlock()
	l.ingested.Add(uint64(len(trs)))
	s.met.ingested.Add(uint64(len(trs)))
	s.met.flushes.Inc()
}

// shedBatch credits a dropped batch to its owner and the spine totals,
// then recycles the buffer.
func (s *Spine) shedBatch(b ingestBatch) {
	n := uint64(len(b.trs))
	if b.shed != nil {
		b.shed.Add(n)
	}
	s.shedTotal.Add(n)
	s.met.shed.Add(n)
	s.recycle(b.trs)
}

// getBuf hands an actor a recycled flush buffer (or a fresh one).
func (s *Spine) getBuf() []*rl.Transition {
	if v := s.bufPool.Get(); v != nil {
		return v.([]*rl.Transition)[:0]
	}
	return make([]*rl.Transition, 0, s.opts.FlushEvery)
}

// recycle returns a flush buffer to the pool. Slot pointers are cleared
// so the pool doesn't pin evicted transitions.
func (s *Spine) recycle(trs []*rl.Transition) {
	for i := range trs {
		trs[i] = nil
	}
	s.bufPool.Put(trs[:0])
}

// WaitIngestIdle blocks until the ingest queue (if any) has fully
// drained or the context expires. A synchronous spine returns
// immediately.
func (s *Spine) WaitIngestIdle(ctx context.Context) error {
	if s.queue == nil {
		return nil
	}
	return s.queue.waitIdle(ctx)
}

// QueueDepth returns the number of flush batches waiting in the ingest
// queue (0 for a synchronous spine).
func (s *Spine) QueueDepth() int {
	if s.queue == nil {
		return 0
	}
	return s.queue.depth()
}

// ShedTransitions returns the total transitions dropped by the ingest
// queue's overflow policy since the spine started.
func (s *Spine) ShedTransitions() uint64 { return s.shedTotal.Load() }
