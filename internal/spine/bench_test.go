package spine

import (
	"math/rand"
	"runtime"
	"testing"

	"deepcat/internal/rl"
)

// benchTransition matches the shape used by BenchmarkRDPERAddSample in
// internal/rl (state 9, action 32), so the two scorecards compare
// per-transition cost of the same payload.
func benchTransition(rng *rand.Rand) rl.Transition {
	tr := rl.Transition{
		State:     make([]float64, 9),
		Action:    make([]float64, 32),
		Reward:    rng.NormFloat64(),
		NextState: make([]float64, 9),
	}
	for i := range tr.State {
		tr.State[i] = rng.Float64()
		tr.NextState[i] = rng.Float64()
	}
	for i := range tr.Action {
		tr.Action[i] = rng.Float64()
	}
	return tr
}

// BenchmarkSpineIngest measures per-transition enqueue cost with at least 8
// concurrent actors sharing one lane — the acceptance scorecard against
// BenchmarkRDPERAddSample's single-threaded Add+Sample (7.7µs/op baseline).
// Each goroutine owns its own Actor (private append buffer), so the only
// shared work is the round-robin shard flush.
func BenchmarkSpineIngest(b *testing.B) {
	s := New(Options{Shards: 8, ShardCapacity: 4096, FlushEvery: 32})
	defer s.Close()
	seed := rand.New(rand.NewSource(1))
	proto := benchTransition(seed)

	// RunParallel spawns GOMAXPROCS*parallelism goroutines; guarantee >= 8.
	par := (8 + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0)
	b.SetParallelism(par)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		a := s.Actor("bench")
		tr := proto // each actor reuses one transition value, as sessions do
		for pb.Next() {
			a.Enqueue(tr)
		}
		a.Flush()
	})
}

// BenchmarkSpineIngestBackpressure is BenchmarkSpineIngest through the
// bounded ingest queue: per-transition enqueue cost when Flush is a
// non-blocking handoff to the drainer instead of an inline shard append.
// The queue is sized generously so the benchmark measures the handoff
// (pool get, priority scan, queue push), not steady-state shedding.
func BenchmarkSpineIngestBackpressure(b *testing.B) {
	s := New(Options{Shards: 8, ShardCapacity: 4096, FlushEvery: 32, QueueCapacity: 1024})
	defer s.Close()
	seed := rand.New(rand.NewSource(1))
	proto := benchTransition(seed)

	par := (8 + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0)
	b.SetParallelism(par)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		a := s.Actor("bench")
		tr := proto
		for pb.Next() {
			a.Enqueue(tr)
		}
		a.Flush()
	})
}

// BenchmarkSpineSample measures the lock-free learner-side read path: one
// 32-transition RDPER-split batch per op into a reused rl.Batch.
func BenchmarkSpineSample(b *testing.B) {
	s := New(Options{Shards: 8, ShardCapacity: 4096})
	defer s.Close()
	rng := rand.New(rand.NewSource(2))
	var trs []rl.Transition
	for i := 0; i < 4096; i++ {
		trs = append(trs, benchTransition(rng))
	}
	s.Ingest("bench", trs)

	var batch rl.Batch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.Sample("bench", rng, 32, &batch); got != 32 {
			b.Fatalf("sampled %d, want 32", got)
		}
	}
}

// BenchmarkSpineTrainPublish measures a full learner pass: sample + one TD3
// gradient update + versioned policy publication.
func BenchmarkSpineTrainPublish(b *testing.B) {
	s := New(Options{Shards: 4, ShardCapacity: 4096, LearnBatch: 32})
	defer s.Close()
	rng := rand.New(rand.NewSource(3))
	var trs []rl.Transition
	for i := 0; i < 1024; i++ {
		trs = append(trs, benchTransition(rng))
	}
	s.Ingest("bench", trs)
	if _, err := s.TrainFamily("bench", 1); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.TrainFamily("bench", 1); err != nil {
			b.Fatal(err)
		}
	}
}
