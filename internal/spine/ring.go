package spine

import (
	"math/rand"
	"sync/atomic"

	"deepcat/internal/rl"
)

// ring is one fixed-capacity experience pool built for the actor/learner
// split: many actors append through a single writer-side lock (held by the
// owning shard), while learner-side samplers read without any lock at all.
//
// The trick is copy-on-write at transition granularity. A transition is
// deep-copied into one flat backing array exactly once, at enqueue time, and
// is immutable from then on; publishing it into a slot is a single atomic
// pointer swap. Eviction never mutates a stored transition — it just swaps
// the slot pointer to a newer immutable one — so a sampler that loaded a
// slot pointer can keep reading through it for as long as it likes while
// ingest races ahead. Samplers therefore never block ingest and ingest
// never blocks samplers; the only synchronization is the writer-side cursor
// (guarded by the shard mutex) and the per-slot atomics.
type ring struct {
	slots []atomic.Pointer[rl.Transition]
	// n is the number of filled slots, monotone until it reaches cap. A
	// slot's pointer is stored before n is advanced past it, so a reader
	// that observes n >= k can safely load any slot < k.
	n atomic.Int64
	// next is the writer cursor; callers must hold the owning shard's
	// mutex around append.
	next int
}

func newRing(capacity int) *ring {
	return &ring{slots: make([]atomic.Pointer[rl.Transition], capacity)}
}

// append publishes an immutable transition, evicting the oldest when full.
// The caller must hold the owning shard's mutex and must never mutate tr
// (or its slices) after the call.
func (r *ring) append(tr *rl.Transition) {
	r.slots[r.next].Store(tr)
	r.next++
	if r.next == len(r.slots) {
		r.next = 0
	}
	if int(r.n.Load()) < len(r.slots) {
		r.n.Add(1)
	}
}

// len returns the number of stored transitions. Safe without locks.
func (r *ring) len() int { return int(r.n.Load()) }

// sample loads one uniformly random stored transition, or nil when the ring
// is empty. Safe without locks; the returned transition is immutable.
func (r *ring) sample(rng *rand.Rand) *rl.Transition {
	n := int(r.n.Load())
	if n == 0 {
		return nil
	}
	return r.slots[rng.Intn(n)].Load()
}

// compactClone deep-copies tr into a single flat float64 backing array: one
// allocation for the struct, one for all three vectors. The result is what
// ring slots store, so it must never be mutated after publication.
func compactClone(tr rl.Transition) *rl.Transition {
	ns, na, nn := len(tr.State), len(tr.Action), len(tr.NextState)
	flat := make([]float64, ns+na+nn)
	copy(flat, tr.State)
	copy(flat[ns:], tr.Action)
	copy(flat[ns+na:], tr.NextState)
	return &rl.Transition{
		State:     flat[:ns:ns],
		Action:    flat[ns : ns+na : ns+na],
		Reward:    tr.Reward,
		NextState: flat[ns+na:],
		Done:      tr.Done,
	}
}
