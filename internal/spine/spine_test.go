package spine

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"deepcat/internal/rl"
)

// testTransition builds a transition whose reward decides its pool and whose
// state[0] carries an id so tests can tell samples apart.
func testTransition(id float64, reward float64) rl.Transition {
	return rl.Transition{
		State:     []float64{id, 0.5, 0.25},
		Action:    []float64{0.1, 0.2},
		Reward:    reward,
		NextState: []float64{id + 1, 0.5, 0.25},
	}
}

func TestSpineIngestAndSample(t *testing.T) {
	s := New(Options{Shards: 4, ShardCapacity: 64, Beta: 0.6, FlushEvery: 8})
	defer s.Close()

	for i := 0; i < 40; i++ {
		r := 1.0 // high pool
		if i%2 == 1 {
			r = -1.0 // low pool
		}
		s.Ingest("fam", []rl.Transition{testTransition(float64(i), r)})
	}
	if got := s.Len("fam"); got != 40 {
		t.Fatalf("Len = %d, want 40", got)
	}

	rng := rand.New(rand.NewSource(1))
	var batch rl.Batch
	n := s.Sample("fam", rng, 30, &batch)
	if n != 30 || len(batch.Transitions) != 30 {
		t.Fatalf("Sample returned %d (batch %d), want 30", n, len(batch.Transitions))
	}
	if len(batch.Indices) != 30 || len(batch.Weights) != 30 {
		t.Fatalf("Indices/Weights = %d/%d, want 30/30", len(batch.Indices), len(batch.Weights))
	}
	// ceil(0.6*30) = 18 draws must come from the high-reward pool.
	high := 0
	for _, tr := range batch.Transitions {
		if tr.Reward >= 0 {
			high++
		}
	}
	if high != 18 {
		t.Fatalf("high-pool draws = %d, want 18", high)
	}

	// The batch's backing slices must be reused on the next call.
	p0 := &batch.Transitions[0]
	if got := s.Sample("fam", rng, 30, &batch); got != 30 {
		t.Fatalf("second Sample = %d, want 30", got)
	}
	if p0 != &batch.Transitions[0] {
		t.Fatal("Sample reallocated dst backing slices")
	}
}

func TestSpineSampleUnknownOrEmpty(t *testing.T) {
	s := New(Options{})
	defer s.Close()
	rng := rand.New(rand.NewSource(1))
	batch := rl.Batch{Transitions: make([]rl.Transition, 5), Indices: make([]int, 5), Weights: make([]float64, 5)}
	if n := s.Sample("nope", rng, 8, &batch); n != 0 {
		t.Fatalf("Sample unknown family = %d, want 0", n)
	}
	if len(batch.Transitions) != 0 || len(batch.Indices) != 0 || len(batch.Weights) != 0 {
		t.Fatal("Sample must truncate dst even when empty")
	}
	if _, err := s.TrainFamily("nope", 1); err == nil {
		t.Fatal("TrainFamily on unknown family must error")
	}
}

func TestSpineOneSidedPools(t *testing.T) {
	s := New(Options{Shards: 2, ShardCapacity: 32})
	defer s.Close()
	// Only low-reward experience: the whole batch must come from the low pool.
	for i := 0; i < 10; i++ {
		s.Ingest("low-only", []rl.Transition{testTransition(float64(i), -1)})
	}
	rng := rand.New(rand.NewSource(2))
	var batch rl.Batch
	if n := s.Sample("low-only", rng, 12, &batch); n != 12 {
		t.Fatalf("Sample = %d, want 12", n)
	}
	for _, tr := range batch.Transitions {
		if tr.Reward >= 0 {
			t.Fatal("sampled a high-reward transition from a low-only lane")
		}
	}
}

func TestSpineCopyOnWriteIsolation(t *testing.T) {
	s := New(Options{Shards: 1, ShardCapacity: 8, FlushEvery: 1})
	defer s.Close()
	tr := testTransition(7, 1)
	a := s.Actor("fam")
	a.Enqueue(tr)
	// The caller may reuse its slices immediately; the spine's copy must not
	// see the mutation.
	tr.State[0] = math.NaN()
	rng := rand.New(rand.NewSource(3))
	var batch rl.Batch
	if n := s.Sample("fam", rng, 1, &batch); n != 1 {
		t.Fatalf("Sample = %d, want 1", n)
	}
	if got := batch.Transitions[0].State[0]; got != 7 {
		t.Fatalf("stored State[0] = %v, want 7 (copy-on-write broken)", got)
	}
}

func TestSpineEviction(t *testing.T) {
	s := New(Options{Shards: 2, ShardCapacity: 4, FlushEvery: 4})
	defer s.Close()
	for i := 0; i < 100; i++ {
		s.Ingest("fam", []rl.Transition{testTransition(float64(i), 1)})
	}
	// 2 shards x 4 capacity on the high side = at most 8 retained.
	if got := s.Len("fam"); got > 8 {
		t.Fatalf("Len = %d, want <= 8 after eviction", got)
	}
	st := s.Stats()
	if len(st.Lanes) != 1 || st.Lanes[0].Ingested != 100 {
		t.Fatalf("Stats = %+v, want one lane with Ingested=100", st)
	}
}

func TestActorBatchedFlush(t *testing.T) {
	s := New(Options{Shards: 1, ShardCapacity: 64, FlushEvery: 8})
	defer s.Close()
	a := s.Actor("fam")
	for i := 0; i < 7; i++ {
		a.Enqueue(testTransition(float64(i), 1))
	}
	if a.Pending() != 7 || s.Len("fam") != 0 {
		t.Fatalf("pending=%d len=%d, want 7/0 before flush", a.Pending(), s.Len("fam"))
	}
	a.Enqueue(testTransition(7, 1)) // hits FlushEvery, auto-flushes
	if a.Pending() != 0 || s.Len("fam") != 8 {
		t.Fatalf("pending=%d len=%d, want 0/8 after auto flush", a.Pending(), s.Len("fam"))
	}
}

func TestLearnerPublishesDeterministically(t *testing.T) {
	mk := func() *Spine {
		s := New(Options{Shards: 2, ShardCapacity: 256, Seed: 42, LearnBatch: 16})
		rng := rand.New(rand.NewSource(9))
		var trs []rl.Transition
		for i := 0; i < 64; i++ {
			trs = append(trs, rl.Transition{
				State:     []float64{rng.Float64(), rng.Float64(), rng.Float64()},
				Action:    []float64{rng.Float64(), rng.Float64()},
				Reward:    rng.NormFloat64(),
				NextState: []float64{rng.Float64(), rng.Float64(), rng.Float64()},
			})
		}
		s.Ingest("fam", trs)
		return s
	}
	s1, s2 := mk(), mk()
	defer s1.Close()
	defer s2.Close()

	p1, err := s1.TrainFamily("fam", 2)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s2.TrainFamily("fam", 2)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Version != 1 || p2.Version != 1 {
		t.Fatalf("versions = %d/%d, want 1/1", p1.Version, p2.Version)
	}
	w1 := p1.Agent.Actor.Layers[0].W.Data
	w2 := p2.Agent.Actor.Layers[0].W.Data
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatalf("actor weights diverge at %d: %v vs %v (determinism broken)", i, w1[i], w2[i])
		}
	}

	// A second pass bumps the version and republishes.
	p3, err := s1.TrainFamily("fam", 1)
	if err != nil {
		t.Fatal(err)
	}
	if p3.Version != 2 {
		t.Fatalf("second pass version = %d, want 2", p3.Version)
	}
	got, ok := s1.Policy("fam")
	if !ok || got.Version != 2 {
		t.Fatalf("Policy = %+v ok=%v, want version 2", got, ok)
	}
}

func TestSpineBackgroundLoop(t *testing.T) {
	s := New(Options{
		Shards: 2, ShardCapacity: 256,
		LearnInterval: 5 * time.Millisecond,
		LearnIters:    1, LearnBatch: 8,
		LearnMinNew: 8, MinTransitions: 8,
	})
	defer s.Close()
	rng := rand.New(rand.NewSource(11))
	var trs []rl.Transition
	for i := 0; i < 32; i++ {
		trs = append(trs, rl.Transition{
			State:     []float64{rng.Float64(), rng.Float64()},
			Action:    []float64{rng.Float64()},
			Reward:    rng.NormFloat64(),
			NextState: []float64{rng.Float64(), rng.Float64()},
		})
	}
	s.Ingest("fam", trs)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := s.Policy("fam"); ok {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("background loop never published a policy")
}

func TestSpineClosedTrainFails(t *testing.T) {
	s := New(Options{})
	s.Ingest("fam", []rl.Transition{testTransition(1, 1)})
	s.Close()
	if _, err := s.TrainFamily("fam", 1); err == nil {
		t.Fatal("TrainFamily after Close must fail")
	}
	s.Close() // idempotent
}
