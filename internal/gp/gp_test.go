package gp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"deepcat/internal/mat"
)

func TestKernelBasics(t *testing.T) {
	for _, k := range []Kernel{RBF{1, 2}, Matern52{1, 2}} {
		x := []float64{0.3, 0.7}
		if got := k.Eval(x, x); math.Abs(got-2) > 1e-9 {
			t.Fatalf("k(x,x) = %v, want variance 2", got)
		}
		far := k.Eval(x, []float64{10, -10})
		if far >= 0.1 {
			t.Fatalf("distant kernel value %v not small", far)
		}
		// Symmetry.
		y := []float64{0.1, 0.9}
		if k.Eval(x, y) != k.Eval(y, x) {
			t.Fatal("kernel not symmetric")
		}
	}
}

func TestKernelMonotoneInDistanceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := RBF{LengthScale: 0.5 + rng.Float64(), Variance: 1}
		m := Matern52{LengthScale: 0.5 + rng.Float64(), Variance: 1}
		x := mat.RandVec(rng, 3, -1, 1)
		d1 := mat.RandVec(rng, 3, -0.1, 0.1)
		d2 := make([]float64, 3)
		mat.ScaleTo(d2, 3, d1) // strictly farther in the same direction
		y1 := make([]float64, 3)
		y2 := make([]float64, 3)
		mat.AddTo(y1, x, d1)
		mat.AddTo(y2, x, d2)
		return k.Eval(x, y1) >= k.Eval(x, y2) && m.Eval(x, y1) >= m.Eval(x, y2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit(RBF{1, 1}, 1e-6, nil, nil); !errors.Is(err, ErrNoData) {
		t.Fatalf("err = %v, want ErrNoData", err)
	}
	if _, err := Fit(RBF{1, 1}, 1e-6, [][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Fit(RBF{1, 1}, 1e-6, [][]float64{{1}, {1, 2}}, []float64{1, 2}); err == nil {
		t.Fatal("ragged inputs accepted")
	}
}

func TestGPInterpolatesTrainingPoints(t *testing.T) {
	x := [][]float64{{0}, {0.25}, {0.5}, {0.75}, {1}}
	y := make([]float64, len(x))
	for i, xi := range x {
		y[i] = math.Sin(2 * math.Pi * xi[0])
	}
	g, err := Fit(RBF{0.3, 1}, 1e-8, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 5 {
		t.Fatalf("Len = %d", g.Len())
	}
	for i, xi := range x {
		m, v := g.Predict(xi)
		if math.Abs(m-y[i]) > 1e-3 {
			t.Fatalf("mean at train point %v = %v, want %v", xi, m, y[i])
		}
		if v > 1e-3 {
			t.Fatalf("variance at train point = %v, want ~0", v)
		}
	}
}

func TestGPVarianceGrowsAwayFromData(t *testing.T) {
	x := [][]float64{{0.4}, {0.5}, {0.6}}
	y := []float64{1, 2, 1}
	g, err := Fit(RBF{0.1, 1}, 1e-6, x, y)
	if err != nil {
		t.Fatal(err)
	}
	_, vNear := g.Predict([]float64{0.5})
	_, vFar := g.Predict([]float64{3})
	if vFar <= vNear {
		t.Fatalf("variance near %v >= far %v", vNear, vFar)
	}
	// Far from data the posterior reverts to the prior variance.
	if math.Abs(vFar-1) > 0.05 {
		t.Fatalf("far variance %v, want ~prior 1", vFar)
	}
}

func TestGPRegressionAccuracy(t *testing.T) {
	// Learn f(x) = x0² + sin(3 x1) from 80 noisy samples.
	rng := rand.New(rand.NewSource(3))
	f := func(x []float64) float64 { return x[0]*x[0] + math.Sin(3*x[1]) }
	var x [][]float64
	var y []float64
	for i := 0; i < 80; i++ {
		xi := mat.RandVec(rng, 2, 0, 1)
		x = append(x, xi)
		y = append(y, f(xi)+0.01*rng.NormFloat64())
	}
	g, err := Fit(Matern52{0.5, 1}, 1e-4, x, y)
	if err != nil {
		t.Fatal(err)
	}
	var mse float64
	const probes = 100
	for i := 0; i < probes; i++ {
		xi := mat.RandVec(rng, 2, 0.05, 0.95)
		m, _ := g.Predict(xi)
		d := m - f(xi)
		mse += d * d
	}
	mse /= probes
	if mse > 0.005 {
		t.Fatalf("GP test MSE = %v, want < 0.005", mse)
	}
}

func TestPosteriorVarianceBoundedByPriorProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := [][]float64{{0.1, 0.1}, {0.5, 0.4}, {0.9, 0.8}}
	y := []float64{1, -1, 2}
	g, err := Fit(RBF{0.4, 1.7}, 1e-6, x, y)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		_ = rng
		p := mat.RandVec(r, 2, -2, 3)
		_, v := g.Predict(p)
		return v >= 0 && v <= 1.7+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestExpectedImprovement(t *testing.T) {
	// Certain improvement: mean below best with zero uncertainty.
	if got := ExpectedImprovement(1, 0, 3); got != 2 {
		t.Fatalf("EI = %v, want 2", got)
	}
	// No improvement possible with zero uncertainty.
	if got := ExpectedImprovement(5, 0, 3); got != 0 {
		t.Fatalf("EI = %v, want 0", got)
	}
	// Uncertainty makes even a worse mean worth something.
	if got := ExpectedImprovement(3.5, 1, 3); got <= 0 {
		t.Fatalf("EI with std = %v, want > 0", got)
	}
	// More uncertainty -> more EI at equal mean.
	if ExpectedImprovement(3, 2, 3) <= ExpectedImprovement(3, 1, 3) {
		t.Fatal("EI not increasing in std")
	}
	// Lower mean -> more EI at equal std.
	if ExpectedImprovement(2, 1, 3) <= ExpectedImprovement(2.5, 1, 3) {
		t.Fatal("EI not decreasing in mean")
	}
}

func TestExpectedImprovementNonNegativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mean := rng.NormFloat64() * 100
		std := math.Abs(rng.NormFloat64()) * 100
		best := rng.NormFloat64() * 100
		return ExpectedImprovement(mean, std, best) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFitDuplicatePointsStable(t *testing.T) {
	// Duplicate rows make the kernel matrix singular without jitter; Fit
	// must still succeed via its jitter ladder.
	x := [][]float64{{0.5, 0.5}, {0.5, 0.5}, {0.5, 0.5}}
	y := []float64{1, 1.1, 0.9}
	g, err := Fit(RBF{1, 1}, 1e-9, x, y)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := g.Predict([]float64{0.5, 0.5})
	if math.Abs(m-1.0) > 0.1 {
		t.Fatalf("duplicate-point mean = %v, want ~1", m)
	}
}

func TestLogMarginalLikelihoodPrefersTrueScale(t *testing.T) {
	// Data generated from a smooth function: a reasonable lengthscale must
	// out-score a wildly wrong one under the log marginal likelihood.
	rng := rand.New(rand.NewSource(8))
	var x [][]float64
	var y []float64
	for i := 0; i < 60; i++ {
		xi := mat.RandVec(rng, 2, 0, 1)
		x = append(x, xi)
		y = append(y, math.Sin(3*xi[0])+xi[1]+0.01*rng.NormFloat64())
	}
	good, err := Fit(Matern52{0.5, 1}, 1e-4, x, y)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := Fit(Matern52{1e-4, 1}, 1e-4, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if good.LogMarginalLikelihood() <= bad.LogMarginalLikelihood() {
		t.Fatalf("LML(good)=%v <= LML(bad)=%v",
			good.LogMarginalLikelihood(), bad.LogMarginalLikelihood())
	}
}

func TestFitBestSelectsByLML(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var x [][]float64
	var y []float64
	for i := 0; i < 50; i++ {
		xi := mat.RandVec(rng, 2, 0, 1)
		x = append(x, xi)
		y = append(y, xi[0]*xi[0]+0.01*rng.NormFloat64())
	}
	kernels := []Kernel{
		Matern52{1e-5, 1}, // absurdly short: interpolates noise
		Matern52{0.7, 1},  // sensible
	}
	best, err := FitBest(kernels, 1e-4, x, y)
	if err != nil {
		t.Fatal(err)
	}
	sensible, _ := Fit(kernels[1], 1e-4, x, y)
	if best.LogMarginalLikelihood() < sensible.LogMarginalLikelihood() {
		t.Fatal("FitBest returned a worse model than a candidate")
	}
}

func TestFitBestErrors(t *testing.T) {
	if _, err := FitBest(nil, 1e-4, [][]float64{{1}}, []float64{1}); err == nil {
		t.Fatal("no kernels accepted")
	}
	if _, err := FitBest([]Kernel{Matern52{1, 1}}, 1e-4, nil, nil); err == nil {
		t.Fatal("no data accepted")
	}
}

func TestLengthScaleGrid(t *testing.T) {
	grid := LengthScaleGrid(1, 100, 2, 5)
	if len(grid) != 5 {
		t.Fatalf("grid size %d", len(grid))
	}
	first := grid[0].(Matern52)
	last := grid[4].(Matern52)
	if math.Abs(first.LengthScale-1) > 1e-9 || math.Abs(last.LengthScale-100) > 1e-6 {
		t.Fatalf("grid endpoints %v .. %v", first.LengthScale, last.LengthScale)
	}
	for i := 1; i < len(grid); i++ {
		if grid[i].(Matern52).LengthScale <= grid[i-1].(Matern52).LengthScale {
			t.Fatal("grid not increasing")
		}
	}
	// Degenerate requests collapse to a single kernel.
	if got := LengthScaleGrid(1, 0.5, 1, 5); len(got) != 1 {
		t.Fatalf("degenerate grid size %d", len(got))
	}
}
