// Package gp implements Gaussian-process regression with Expected
// Improvement acquisition — the surrogate model family behind the OtterTune
// baseline (Van Aken et al., 2017): OtterTune fits a GP over observed
// configurations and picks the next configuration by maximizing EI.
//
// The implementation is exact GP regression via Cholesky factorization
// (package linalg). It is adequate for the sample sizes OtterTune works
// with online (hundreds to a few thousand observations).
package gp

import (
	"errors"
	"fmt"
	"math"

	"deepcat/internal/linalg"
	"deepcat/internal/mat"
)

// Kernel is a positive-definite covariance function.
type Kernel interface {
	// Eval returns k(x, y).
	Eval(x, y []float64) float64
}

// RBF is the squared-exponential kernel
// k(x,y) = Variance * exp(-||x-y||² / (2 LengthScale²)).
type RBF struct {
	LengthScale float64
	Variance    float64
}

// Eval implements Kernel.
func (k RBF) Eval(x, y []float64) float64 {
	d := mat.Dist2(x, y)
	return k.Variance * math.Exp(-d*d/(2*k.LengthScale*k.LengthScale))
}

// Matern52 is the Matérn-5/2 kernel, the common choice for configuration
// surfaces that are less smooth than RBF assumes.
type Matern52 struct {
	LengthScale float64
	Variance    float64
}

// Eval implements Kernel.
func (k Matern52) Eval(x, y []float64) float64 {
	r := mat.Dist2(x, y) / k.LengthScale
	s5r := math.Sqrt(5) * r
	return k.Variance * (1 + s5r + 5*r*r/3) * math.Exp(-s5r)
}

// GP is a fitted Gaussian-process regressor.
type GP struct {
	kernel Kernel
	noise  float64
	x      [][]float64
	alpha  []float64
	chol   *linalg.Cholesky
	meanY  float64
	lml    float64
}

// ErrNoData is returned when Fit is called without observations.
var ErrNoData = errors.New("gp: no training data")

// Fit performs exact GP regression on observations (X, y) with i.i.d.
// observation noise variance `noise`. The target is internally centred on
// its mean. X rows must share a common dimension; the data is copied.
func Fit(kernel Kernel, noise float64, x [][]float64, y []float64) (*GP, error) {
	n := len(x)
	if n == 0 {
		return nil, ErrNoData
	}
	if len(y) != n {
		return nil, fmt.Errorf("gp: %d inputs but %d targets", n, len(y))
	}
	dim := len(x[0])
	xc := make([][]float64, n)
	for i, xi := range x {
		if len(xi) != dim {
			return nil, fmt.Errorf("gp: row %d has dim %d, want %d", i, len(xi), dim)
		}
		xc[i] = mat.CloneSlice(xi)
	}
	meanY := mat.Mean(y)
	yc := make([]float64, n)
	for i, v := range y {
		yc[i] = v - meanY
	}

	k := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := kernel.Eval(xc[i], xc[j])
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
	}
	linalg.AddJitter(k, noise+1e-8)
	chol, err := linalg.NewCholesky(k)
	if err != nil {
		// Retry once with a heavier jitter before giving up.
		linalg.AddJitter(k, 1e-4)
		chol, err = linalg.NewCholesky(k)
		if err != nil {
			return nil, fmt.Errorf("gp: kernel matrix not PD: %w", err)
		}
	}
	alpha := chol.SolveVec(yc)
	// Log marginal likelihood: -1/2 yᵀ K⁻¹ y - 1/2 log|K| - n/2 log(2π).
	lml := -0.5*mat.Dot(yc, alpha) - 0.5*chol.LogDet() - 0.5*float64(n)*math.Log(2*math.Pi)
	return &GP{
		kernel: kernel,
		noise:  noise,
		x:      xc,
		alpha:  alpha,
		chol:   chol,
		meanY:  meanY,
		lml:    lml,
	}, nil
}

// LogMarginalLikelihood returns the fitted model's log marginal likelihood,
// the standard criterion for kernel hyper-parameter selection.
func (g *GP) LogMarginalLikelihood() float64 { return g.lml }

// FitBest fits one GP per candidate kernel and returns the one maximizing
// the log marginal likelihood — the grid-search analogue of scikit-learn's
// default hyper-parameter optimization. Kernels whose Gram matrix cannot be
// factorized are skipped; an error is returned only if every candidate
// fails.
func FitBest(kernels []Kernel, noise float64, x [][]float64, y []float64) (*GP, error) {
	var best *GP
	var firstErr error
	for _, k := range kernels {
		g, err := Fit(k, noise, x, y)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if best == nil || g.lml > best.lml {
			best = g
		}
	}
	if best == nil {
		if firstErr == nil {
			firstErr = fmt.Errorf("gp: no candidate kernels")
		}
		return nil, firstErr
	}
	return best, nil
}

// LengthScaleGrid builds Matern-5/2 candidates with log-spaced length
// scales spanning [lo, hi], for use with FitBest.
func LengthScaleGrid(lo, hi, variance float64, steps int) []Kernel {
	if steps < 2 || lo <= 0 || hi <= lo {
		return []Kernel{Matern52{LengthScale: lo, Variance: variance}}
	}
	out := make([]Kernel, steps)
	ratio := math.Pow(hi/lo, 1/float64(steps-1))
	l := lo
	for i := range out {
		out[i] = Matern52{LengthScale: l, Variance: variance}
		l *= ratio
	}
	return out
}

// Len returns the number of training observations.
func (g *GP) Len() int { return len(g.x) }

// Predict returns the posterior mean and variance at x. The variance is the
// latent-function variance (without observation noise) and is never
// negative.
func (g *GP) Predict(x []float64) (mean, variance float64) {
	n := len(g.x)
	kstar := make([]float64, n)
	for i, xi := range g.x {
		kstar[i] = g.kernel.Eval(x, xi)
	}
	mean = g.meanY + mat.Dot(kstar, g.alpha)
	v := linalg.ForwardSubst(g.chol.L, kstar)
	variance = g.kernel.Eval(x, x) - mat.Dot(v, v)
	if variance < 0 {
		variance = 0
	}
	return mean, variance
}

// stdNormPDF is the standard normal density.
func stdNormPDF(z float64) float64 {
	return math.Exp(-z*z/2) / math.Sqrt(2*math.Pi)
}

// stdNormCDF is the standard normal distribution function.
func stdNormCDF(z float64) float64 {
	return 0.5 * (1 + math.Erf(z/math.Sqrt2))
}

// ExpectedImprovement returns EI for *minimization*: the expected amount by
// which a point with posterior (mean, std) improves on the incumbent best
// value. Zero std degenerates to max(best-mean, 0).
func ExpectedImprovement(mean, std, best float64) float64 {
	if std <= 0 {
		if mean < best {
			return best - mean
		}
		return 0
	}
	z := (best - mean) / std
	ei := (best-mean)*stdNormCDF(z) + std*stdNormPDF(z)
	if ei < 0 {
		// Analytically EI >= 0; far in the tail the two terms cancel and
		// floating point can leave a vanishing negative residue.
		return 0
	}
	return ei
}
