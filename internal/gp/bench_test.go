package gp

import (
	"math/rand"
	"testing"

	"deepcat/internal/mat"
)

func benchData(n, dim int) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(1))
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = mat.RandVec(rng, dim, 0, 1)
		y[i] = mat.Sum(x[i]) + rng.NormFloat64()*0.1
	}
	return x, y
}

func BenchmarkFit200x32(b *testing.B) {
	x, y := benchData(200, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(Matern52{1, 1}, 1e-3, x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredict200x32(b *testing.B) {
	x, y := benchData(200, 32)
	g, err := Fit(Matern52{1, 1}, 1e-3, x, y)
	if err != nil {
		b.Fatal(err)
	}
	p := mat.RandVec(rand.New(rand.NewSource(2)), 32, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Predict(p)
	}
}
