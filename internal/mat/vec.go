package mat

import (
	"fmt"
	"math"
	"math/rand"
)

// Vector helpers operate on plain []float64 slices. They are free functions
// rather than methods on a named type so that the rest of the codebase can
// pass ordinary slices around without conversions.

// Dot returns the inner product of a and b, which must have equal length.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// AxpyTo computes dst = a*x + y element-wise. All slices must share length;
// dst may alias x or y.
func AxpyTo(dst []float64, a float64, x, y []float64) {
	if len(dst) != len(x) || len(x) != len(y) {
		panic("mat: axpy length mismatch")
	}
	for i := range dst {
		dst[i] = a*x[i] + y[i]
	}
}

// AddTo computes dst = a + b element-wise; dst may alias a or b.
func AddTo(dst, a, b []float64) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("mat: add length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// SubTo computes dst = a - b element-wise; dst may alias a or b.
func SubTo(dst, a, b []float64) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("mat: sub length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// ScaleTo computes dst = s*a element-wise; dst may alias a.
func ScaleTo(dst []float64, s float64, a []float64) {
	if len(dst) != len(a) {
		panic("mat: scale length mismatch")
	}
	for i := range dst {
		dst[i] = s * a[i]
	}
}

// HadamardTo computes dst = a ⊙ b element-wise; dst may alias a or b.
func HadamardTo(dst, a, b []float64) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("mat: hadamard length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] * b[i]
	}
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Dist2 returns the Euclidean distance between a and b.
func Dist2(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: dist length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Sum returns the sum of the entries of v.
func Sum(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of v, or 0 for an empty slice.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	return Sum(v) / float64(len(v))
}

// Stddev returns the population standard deviation of v, or 0 when
// len(v) < 2.
func Stddev(v []float64) float64 {
	if len(v) < 2 {
		return 0
	}
	m := Mean(v)
	var s float64
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(v)))
}

// Min returns the smallest entry of v and its index; it panics on an empty
// slice.
func Min(v []float64) (float64, int) {
	if len(v) == 0 {
		panic("mat: Min of empty slice")
	}
	best, idx := v[0], 0
	for i, x := range v[1:] {
		if x < best {
			best, idx = x, i+1
		}
	}
	return best, idx
}

// Max returns the largest entry of v and its index; it panics on an empty
// slice.
func Max(v []float64) (float64, int) {
	if len(v) == 0 {
		panic("mat: Max of empty slice")
	}
	best, idx := v[0], 0
	for i, x := range v[1:] {
		if x > best {
			best, idx = x, i+1
		}
	}
	return best, idx
}

// Clip returns v clamped into [lo, hi].
func Clip(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ClipSlice clamps every entry of v into [lo, hi] in place.
func ClipSlice(v []float64, lo, hi float64) {
	for i, x := range v {
		v[i] = Clip(x, lo, hi)
	}
}

// CloneSlice returns a copy of v.
func CloneSlice(v []float64) []float64 {
	c := make([]float64, len(v))
	copy(c, v)
	return c
}

// RandVec returns a length-n vector with entries drawn from U(lo, hi).
func RandVec(rng *rand.Rand, n int, lo, hi float64) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = lo + rng.Float64()*(hi-lo)
	}
	return v
}

// RandNormalVec returns a length-n vector with entries drawn from
// N(mean, sigma²).
func RandNormalVec(rng *rand.Rand, n int, mean, sigma float64) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = mean + sigma*rng.NormFloat64()
	}
	return v
}

// AllFinite reports whether every entry of v is a finite number.
func AllFinite(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}
