package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("New(3,4) = %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("entry %d = %v, want 0", i, v)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1,2) did not panic")
		}
	}()
	New(-1, 2)
}

func TestFromRowsAndAt(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("shape %dx%d", m.Rows, m.Cols)
	}
	if m.At(0, 1) != 2 || m.At(2, 0) != 5 {
		t.Fatalf("At wrong: %v %v", m.At(0, 1), m.At(2, 0))
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestFromRowsEmpty(t *testing.T) {
	m := FromRows(nil)
	if m.Rows != 0 || m.Cols != 0 {
		t.Fatalf("empty FromRows = %dx%d", m.Rows, m.Cols)
	}
}

func TestSetAndRowAliasing(t *testing.T) {
	m := New(2, 2)
	m.Set(1, 0, 7)
	row := m.Row(1)
	if row[0] != 7 {
		t.Fatalf("row[0] = %v", row[0])
	}
	row[1] = 9
	if m.At(1, 1) != 9 {
		t.Fatal("Row does not alias storage")
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	m := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("At(2,0) did not panic")
		}
	}()
	m.At(2, 0)
}

func TestCloneIndependence(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestCopyFrom(t *testing.T) {
	a := New(2, 2)
	b := FromRows([][]float64{{1, 2}, {3, 4}})
	a.CopyFrom(b)
	if !a.Equal(b, 0) {
		t.Fatal("CopyFrom mismatch")
	}
}

func TestCopyFromShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape-mismatched CopyFrom did not panic")
		}
	}()
	New(2, 2).CopyFrom(New(2, 3))
}

func TestZeroFillScale(t *testing.T) {
	m := New(2, 2)
	m.Fill(3)
	m.Scale(2)
	for _, v := range m.Data {
		if v != 6 {
			t.Fatalf("got %v, want 6", v)
		}
	}
	m.Zero()
	for _, v := range m.Data {
		if v != 0 {
			t.Fatalf("got %v after Zero", v)
		}
	}
}

func TestAddScaled(t *testing.T) {
	a := FromRows([][]float64{{1, 1}})
	b := FromRows([][]float64{{2, 4}})
	a.AddScaled(b, 0.5)
	want := FromRows([][]float64{{2, 3}})
	if !a.Equal(want, 1e-12) {
		t.Fatalf("AddScaled = %v", a)
	}
}

func TestLerp(t *testing.T) {
	a := FromRows([][]float64{{0, 10}})
	b := FromRows([][]float64{{10, 0}})
	a.Lerp(b, 0.25)
	want := FromRows([][]float64{{2.5, 7.5}})
	if !a.Equal(want, 1e-12) {
		t.Fatalf("Lerp = %v", a)
	}
}

func TestLerpEndpoints(t *testing.T) {
	// tau=0 leaves target unchanged; tau=1 copies source exactly.
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{5, -3}})
	a0 := a.Clone()
	a0.Lerp(b, 0)
	if !a0.Equal(a, 0) {
		t.Fatal("Lerp(0) changed the matrix")
	}
	a1 := a.Clone()
	a1.Lerp(b, 1)
	if !a1.Equal(b, 0) {
		t.Fatal("Lerp(1) did not copy the source")
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose shape %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulVecTo(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	x := []float64{1, -1}
	dst := make([]float64, 3)
	m.MulVecTo(dst, x)
	want := []float64{-1, -1, -1}
	for i := range want {
		if math.Abs(dst[i]-want[i]) > 1e-12 {
			t.Fatalf("MulVecTo = %v, want %v", dst, want)
		}
	}
}

func TestMulVecTransTo(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	x := []float64{1, 0, -1}
	dst := make([]float64, 2)
	m.MulVecTransTo(dst, x)
	want := []float64{-4, -4}
	for i := range want {
		if math.Abs(dst[i]-want[i]) > 1e-12 {
			t.Fatalf("MulVecTransTo = %v, want %v", dst, want)
		}
	}
}

func TestMulVecTransMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := New(7, 5)
	m.RandUniform(rng, 1)
	x := RandVec(rng, 7, -1, 1)
	got := make([]float64, 5)
	m.MulVecTransTo(got, x)
	want := make([]float64, 5)
	m.Transpose().MulVecTo(want, x)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-10 {
			t.Fatalf("entry %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestAddOuterScaled(t *testing.T) {
	m := New(2, 3)
	m.AddOuterScaled([]float64{1, 2}, []float64{1, 0, -1}, 2)
	want := FromRows([][]float64{{2, 0, -2}, {4, 0, -4}})
	if !m.Equal(want, 1e-12) {
		t.Fatalf("AddOuterScaled = %v", m)
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := a.Mul(b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !got.Equal(want, 1e-12) {
		t.Fatalf("Mul = %v", got)
	}
}

func TestMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Mul with bad shapes did not panic")
		}
	}()
	New(2, 3).Mul(New(2, 3))
}

func TestMulAssociativityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := New(3, 4), New(4, 2), New(2, 5)
		a.RandUniform(r, 1)
		b.RandUniform(r, 1)
		c.RandUniform(r, 1)
		left := a.Mul(b).Mul(c)
		right := a.Mul(b.Mul(c))
		return left.Equal(right, 1e-9)
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := 1 + int(r.Int31n(6))
		cols := 1 + int(r.Int31n(6))
		m := New(rows, cols)
		m.RandUniform(r, 10)
		return m.Transpose().Transpose().Equal(m, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestXavierInitBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := New(64, 32)
	m.XavierInit(rng, 32, 64)
	bound := math.Sqrt(6.0 / (32 + 64))
	if m.MaxAbs() > bound {
		t.Fatalf("Xavier init exceeded bound: %v > %v", m.MaxAbs(), bound)
	}
	if m.MaxAbs() == 0 {
		t.Fatal("Xavier init produced all zeros")
	}
}

func TestRandUniformDeterministic(t *testing.T) {
	a, b := New(4, 4), New(4, 4)
	a.RandUniform(rand.New(rand.NewSource(42)), 1)
	b.RandUniform(rand.New(rand.NewSource(42)), 1)
	if !a.Equal(b, 0) {
		t.Fatal("same seed produced different matrices")
	}
}

func TestEqualShapeMismatch(t *testing.T) {
	if New(2, 2).Equal(New(2, 3), 1) {
		t.Fatal("matrices of different shape compared equal")
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	small := FromRows([][]float64{{1}})
	if s := small.String(); s == "" {
		t.Fatal("empty String for small matrix")
	}
	large := New(100, 100)
	if s := large.String(); s != "Matrix 100x100" {
		t.Fatalf("large String = %q", s)
	}
}
