package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot with mismatched lengths did not panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAxpyTo(t *testing.T) {
	dst := make([]float64, 2)
	AxpyTo(dst, 2, []float64{1, 2}, []float64{10, 20})
	if dst[0] != 12 || dst[1] != 24 {
		t.Fatalf("AxpyTo = %v", dst)
	}
}

func TestAddSubScaleHadamard(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{3, 5}
	dst := make([]float64, 2)
	AddTo(dst, a, b)
	if dst[0] != 4 || dst[1] != 7 {
		t.Fatalf("AddTo = %v", dst)
	}
	SubTo(dst, b, a)
	if dst[0] != 2 || dst[1] != 3 {
		t.Fatalf("SubTo = %v", dst)
	}
	ScaleTo(dst, 2, a)
	if dst[0] != 2 || dst[1] != 4 {
		t.Fatalf("ScaleTo = %v", dst)
	}
	HadamardTo(dst, a, b)
	if dst[0] != 3 || dst[1] != 10 {
		t.Fatalf("HadamardTo = %v", dst)
	}
}

func TestAddToAliasing(t *testing.T) {
	a := []float64{1, 2}
	AddTo(a, a, a)
	if a[0] != 2 || a[1] != 4 {
		t.Fatalf("aliased AddTo = %v", a)
	}
}

func TestNorm2AndDist2(t *testing.T) {
	if got := Norm2([]float64{3, 4}); !almostEq(got, 5, 1e-12) {
		t.Fatalf("Norm2 = %v", got)
	}
	if got := Dist2([]float64{1, 1}, []float64{4, 5}); !almostEq(got, 5, 1e-12) {
		t.Fatalf("Dist2 = %v", got)
	}
}

func TestSumMeanStddev(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Sum(v) != 40 {
		t.Fatalf("Sum = %v", Sum(v))
	}
	if Mean(v) != 5 {
		t.Fatalf("Mean = %v", Mean(v))
	}
	if !almostEq(Stddev(v), 2, 1e-12) {
		t.Fatalf("Stddev = %v", Stddev(v))
	}
	if Mean(nil) != 0 || Stddev([]float64{1}) != 0 {
		t.Fatal("degenerate Mean/Stddev not zero")
	}
}

func TestMinMax(t *testing.T) {
	v := []float64{3, -1, 7, -1, 7}
	mn, mi := Min(v)
	mx, xi := Max(v)
	if mn != -1 || mi != 1 {
		t.Fatalf("Min = %v@%d", mn, mi)
	}
	if mx != 7 || xi != 2 {
		t.Fatalf("Max = %v@%d", mx, xi)
	}
}

func TestMinEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Min(nil) did not panic")
		}
	}()
	Min(nil)
}

func TestClip(t *testing.T) {
	if Clip(-2, 0, 1) != 0 || Clip(2, 0, 1) != 1 || Clip(0.5, 0, 1) != 0.5 {
		t.Fatal("Clip wrong")
	}
	v := []float64{-5, 0.5, 5}
	ClipSlice(v, 0, 1)
	if v[0] != 0 || v[1] != 0.5 || v[2] != 1 {
		t.Fatalf("ClipSlice = %v", v)
	}
}

func TestCloneSliceIndependence(t *testing.T) {
	a := []float64{1, 2}
	c := CloneSlice(a)
	c[0] = 9
	if a[0] != 1 {
		t.Fatal("CloneSlice shares storage")
	}
}

func TestRandVecBoundsAndDeterminism(t *testing.T) {
	v := RandVec(rand.New(rand.NewSource(5)), 100, -2, 3)
	for _, x := range v {
		if x < -2 || x >= 3 {
			t.Fatalf("RandVec out of bounds: %v", x)
		}
	}
	w := RandVec(rand.New(rand.NewSource(5)), 100, -2, 3)
	for i := range v {
		if v[i] != w[i] {
			t.Fatal("RandVec not deterministic for fixed seed")
		}
	}
}

func TestRandNormalVecMoments(t *testing.T) {
	v := RandNormalVec(rand.New(rand.NewSource(11)), 20000, 1.5, 0.5)
	if m := Mean(v); !almostEq(m, 1.5, 0.02) {
		t.Fatalf("mean = %v", m)
	}
	if s := Stddev(v); !almostEq(s, 0.5, 0.02) {
		t.Fatalf("stddev = %v", s)
	}
}

func TestAllFinite(t *testing.T) {
	if !AllFinite([]float64{1, 2, 3}) {
		t.Fatal("finite slice reported non-finite")
	}
	if AllFinite([]float64{1, math.NaN()}) {
		t.Fatal("NaN slipped through")
	}
	if AllFinite([]float64{math.Inf(1)}) {
		t.Fatal("Inf slipped through")
	}
}

func TestCauchySchwarzProperty(t *testing.T) {
	// |<a,b>| <= ||a|| * ||b||
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + int(r.Int31n(20))
		a := RandVec(r, n, -10, 10)
		b := RandVec(r, n, -10, 10)
		return math.Abs(Dot(a, b)) <= Norm2(a)*Norm2(b)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + int(r.Int31n(20))
		a := RandVec(r, n, -10, 10)
		b := RandVec(r, n, -10, 10)
		c := RandVec(r, n, -10, 10)
		return Dist2(a, c) <= Dist2(a, b)+Dist2(b, c)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
