package mat

import "fmt"

// Lane-major batched kernels.
//
// A lane block stores the activations of K independent samples ("lanes")
// side by side: entry (unit j, lane r) lives at xt[j*stride + r], so one
// unit's values across the whole batch are contiguous. That layout lets one
// weight traversal score every lane at once — the GEMM form of MulVecTo —
// and, on amd64, lets the SIMD kernels broadcast a weight and multiply it
// against 4 or 8 lanes per instruction.
//
// Bit-exactness contract: for every (row i, lane r) the result is computed
// as a single left-to-right accumulation
//
//	acc = init[i]; acc += W[i,c0]*x[c0]; acc += W[i,c0+1]*x[c0+1]; ...
//
// with one multiply and one add per term and no fused multiply-add, followed
// by acc += bias[i] and the optional ReLU clamp. This is exactly the
// operation sequence of MulVecTo plus Activation.apply, so a lane-major pass
// over K samples is bit-identical to K sequential per-sample passes — the
// property the batched Twin-Q scorer's equivalence tests pin down. Every
// backend (AVX-512, AVX2, pure Go) preserves the same per-lane chain; they
// only differ in how many independent lanes advance per instruction.

// LaneOpts parameterizes MulLanes.
type LaneOpts struct {
	// ColOff and NCols select the column window [ColOff, ColOff+NCols) of
	// the weight matrix; NCols == 0 means "through the last column". The
	// Twin-Q scorer uses the window to skip the state columns whose
	// contribution is precomputed once per Suggest.
	ColOff, NCols int
	// Init holds the per-row starting accumulator values (the precomputed
	// prefix dot); nil starts every accumulator at zero.
	Init []float64
	// Bias, when non-nil, is added to each row's accumulator after the dot,
	// mirroring Dense layer biases.
	Bias []float64
	// ReLU clamps negative post-bias values to zero inside the kernel
	// (bit-identical to Activation.apply for ReLU, including NaN and
	// signed-zero handling). Transcendental activations are applied by the
	// caller in a separate elementwise pass.
	ReLU bool
}

// MulLanes computes dst[i*stride+r] = init(i) + Σ_j W[i, ColOff+j]*xt[j*stride+r]
// (+ bias, + optional ReLU) for i in [0, Rows) and r in [0, lanes), with j
// ascending — see the bit-exactness contract above. xt must hold NCols units
// of `stride` lanes each; dst must hold Rows units of `stride` lanes. lanes
// must be a positive multiple of 8 so the SIMD backends never touch a
// partial vector; callers pad their batch to the next multiple of 8 (the
// nn.Arena does this automatically).
func (m *Matrix) MulLanes(dst, xt []float64, stride, lanes int, opt LaneOpts) {
	cols := opt.NCols
	if cols == 0 {
		cols = m.Cols - opt.ColOff
	}
	if opt.ColOff < 0 || opt.ColOff+cols > m.Cols {
		panic(fmt.Sprintf("mat: MulLanes column window [%d,%d) outside %d cols", opt.ColOff, opt.ColOff+cols, m.Cols))
	}
	if lanes <= 0 || lanes%8 != 0 || lanes > stride {
		panic(fmt.Sprintf("mat: MulLanes lanes %d (stride %d) must be a positive multiple of 8 and <= stride", lanes, stride))
	}
	if len(xt) < (cols-1)*stride+lanes {
		panic(fmt.Sprintf("mat: MulLanes xt len %d, need %d", len(xt), (cols-1)*stride+lanes))
	}
	if len(dst) < (m.Rows-1)*stride+lanes {
		panic(fmt.Sprintf("mat: MulLanes dst len %d, need %d", len(dst), (m.Rows-1)*stride+lanes))
	}
	if opt.Init != nil && len(opt.Init) != m.Rows {
		panic(fmt.Sprintf("mat: MulLanes init len %d, want %d", len(opt.Init), m.Rows))
	}
	if opt.Bias != nil && len(opt.Bias) != m.Rows {
		panic(fmt.Sprintf("mat: MulLanes bias len %d, want %d", len(opt.Bias), m.Rows))
	}
	if m.Rows == 0 || cols == 0 {
		// Degenerate: dst is just init+bias broadcast (or zero).
		mulLanesGo(m.Data[opt.ColOff:], m.Cols, m.Rows, cols, xt, dst, stride, lanes, opt.Init, opt.Bias, opt.ReLU)
		return
	}
	laneKernel(m.Data[opt.ColOff:], m.Cols, m.Rows, cols, xt, dst, stride, lanes, opt.Init, opt.Bias, opt.ReLU)
}

// MulVecColsTo computes dst[i] = Σ_j W[i, colOff+j]*x[j] for j in
// [0, len(x)), the column-windowed form of MulVecTo. The Twin-Q scorer uses
// it to fold a shared input prefix (the state) into per-row accumulator
// seeds once per batch. No bias is added: the partial sum must continue
// through MulLanes before the layer bias applies.
func (m *Matrix) MulVecColsTo(dst, x []float64, colOff int) {
	if colOff < 0 || colOff+len(x) > m.Cols {
		panic(fmt.Sprintf("mat: MulVecColsTo window [%d,%d) outside %d cols", colOff, colOff+len(x), m.Cols))
	}
	if len(dst) != m.Rows {
		panic(fmt.Sprintf("mat: MulVecColsTo len(dst)=%d, want %d", len(dst), m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols+colOff : i*m.Cols+colOff+len(x)]
		var sum float64
		for j, w := range row {
			sum += w * x[j]
		}
		dst[i] = sum
	}
}

// laneKernelFunc is the signature shared by every MulLanes backend. w points
// at the first selected column of row 0 and rows advance by wstride.
type laneKernelFunc func(w []float64, wstride, rows, cols int, xt, dst []float64, stride, lanes int, init, bias []float64, relu bool)

// laneKernel is the backend selected at init time (see lanes_amd64.go); it
// defaults to the portable Go implementation.
var laneKernel laneKernelFunc = mulLanesGo

// laneKernelName names the active backend, for logs and tests.
var laneKernelName = "go"

// LaneKernel reports which MulLanes backend is active ("avx512", "avx2" or
// "go").
func LaneKernel() string { return laneKernelName }

// mulLanesGo is the portable reference backend. The lane loop is blocked by
// four so the accumulator chains of independent lanes interleave, which
// hides floating-point add latency; each individual chain still runs
// strictly left to right.
func mulLanesGo(w []float64, wstride, rows, cols int, xt, dst []float64, stride, lanes int, init, bias []float64, relu bool) {
	for i := 0; i < rows; i++ {
		wrow := w[i*wstride:]
		var seed float64
		if init != nil {
			seed = init[i]
		}
		out := dst[i*stride:]
		var r int
		for ; r+4 <= lanes; r += 4 {
			a0, a1, a2, a3 := seed, seed, seed, seed
			for j := 0; j < cols; j++ {
				wj := wrow[j]
				col := xt[j*stride+r:]
				a0 += wj * col[0]
				a1 += wj * col[1]
				a2 += wj * col[2]
				a3 += wj * col[3]
			}
			out[r+0] = a0
			out[r+1] = a1
			out[r+2] = a2
			out[r+3] = a3
		}
		for ; r < lanes; r++ {
			acc := seed
			for j := 0; j < cols; j++ {
				acc += wrow[j] * xt[j*stride+r]
			}
			out[r] = acc
		}
		if bias != nil {
			b := bias[i]
			for r := 0; r < lanes; r++ {
				out[r] += b
			}
		}
		if relu {
			for r := 0; r < lanes; r++ {
				if !(out[r] > 0) {
					out[r] = 0
				}
			}
		}
	}
}
