package mat

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// laneBackends returns every MulLanes backend that can run on this machine,
// always including the portable reference.
func laneBackends() map[string]laneKernelFunc {
	b := map[string]laneKernelFunc{"go": mulLanesGo}
	if laneKernelName != "go" {
		b[laneKernelName] = laneKernel
	}
	for name, kern := range extraLaneBackends() {
		b[name] = kern
	}
	return b
}

// packLanes transposes k row-major samples (k x cols) into a lane-major
// block with the given stride, zeroing the pad lanes.
func packLanes(x []float64, k, cols, stride int) []float64 {
	xt := make([]float64, cols*stride)
	for j := 0; j < cols; j++ {
		for r := 0; r < k; r++ {
			xt[j*stride+r] = x[r*cols+j]
		}
	}
	return xt
}

// TestMulLanesMatchesMulVecTo is the kernel-level bit-exactness property:
// for random shapes, every backend must reproduce per-sample MulVecTo plus
// bias plus ReLU bit for bit, including the column-window/init form used by
// the Twin-Q prefix split.
func TestMulLanesMatchesMulVecTo(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for name, kern := range laneBackends() {
		for trial := 0; trial < 60; trial++ {
			rows := 1 + rng.Intn(70)
			cols := 1 + rng.Intn(70)
			k := 1 + rng.Intn(70)
			stride := (k + 7) &^ 7
			relu := trial%2 == 0
			withBias := trial%3 != 0
			w := New(rows, cols)
			w.RandUniform(rng, 2)
			x := make([]float64, k*cols)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			var bias []float64
			if withBias {
				bias = RandVec(rng, rows, -1, 1)
			}

			xt := packLanes(x, k, cols, stride)
			dst := make([]float64, rows*stride)
			for i := range dst {
				dst[i] = math.NaN() // kernels must fully overwrite live lanes
			}
			kern(w.Data, cols, rows, cols, xt, dst, stride, stride, nil, bias, relu)

			want := make([]float64, rows)
			for r := 0; r < k; r++ {
				w.MulVecTo(want, x[r*cols:(r+1)*cols])
				for i := 0; i < rows; i++ {
					v := want[i]
					if withBias {
						v += bias[i]
					}
					if relu && !(v > 0) {
						v = 0
					}
					got := dst[i*stride+r]
					if got != v || math.Signbit(got) != math.Signbit(v) {
						t.Fatalf("%s trial %d: rows=%d cols=%d k=%d relu=%v bias=%v: dst[%d,%d] = %v, want %v (bit mismatch)",
							name, trial, rows, cols, k, relu, withBias, i, r, got, v)
					}
				}
			}
		}
	}
}

// TestMulLanesColumnWindowInit checks the prefix-split form: seeding the
// accumulators with the state-prefix dot and running MulLanes over the
// remaining columns must equal one full-width MulVecTo chain bit for bit.
func TestMulLanesColumnWindowInit(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for name, kern := range laneBackends() {
		for trial := 0; trial < 40; trial++ {
			rows := 1 + rng.Intn(40)
			pre := 1 + rng.Intn(20)
			suf := 1 + rng.Intn(40)
			k := 1 + rng.Intn(33)
			stride := (k + 7) &^ 7
			w := New(rows, pre+suf)
			w.RandUniform(rng, 1.5)
			bias := RandVec(rng, rows, -0.5, 0.5)
			prefix := RandVec(rng, pre, -2, 2)
			sufX := make([]float64, k*suf)
			for i := range sufX {
				sufX[i] = rng.NormFloat64()
			}

			init := make([]float64, rows)
			w.MulVecColsTo(init, prefix, 0)
			xt := packLanes(sufX, k, suf, stride)
			dst := make([]float64, rows*stride)
			kern(w.Data[pre:], w.Cols, rows, suf, xt, dst, stride, stride, init, bias, true)

			full := make([]float64, pre+suf)
			copy(full, prefix)
			want := make([]float64, rows)
			for r := 0; r < k; r++ {
				copy(full[pre:], sufX[r*suf:(r+1)*suf])
				w.MulVecTo(want, full)
				for i := 0; i < rows; i++ {
					v := want[i] + bias[i]
					if !(v > 0) {
						v = 0
					}
					if got := dst[i*stride+r]; got != v {
						t.Fatalf("%s trial %d: rows=%d pre=%d suf=%d k=%d: dst[%d,%d] = %v, want %v",
							name, trial, rows, pre, suf, k, i, r, got, v)
					}
				}
			}
		}
	}
}

// TestMulLanesReLUEdgeCases pins the clamp semantics the backends must share
// with Activation.apply: NaN and negative zero both map to +0.
func TestMulLanesReLUEdgeCases(t *testing.T) {
	for name, kern := range laneBackends() {
		// One row, identity-ish weights chosen so the accumulator becomes
		// the interesting value directly.
		w := New(1, 1)
		w.Data[0] = 1
		in := []float64{math.NaN(), math.Inf(-1), math.Copysign(0, -1), 0, -3.5, 2.25}
		k := len(in)
		stride := (k + 7) &^ 7
		xt := make([]float64, stride)
		copy(xt, in)
		dst := make([]float64, stride)
		kern(w.Data, 1, 1, 1, xt, dst, stride, stride, nil, nil, true)
		want := []float64{0, 0, 0, 0, 0, 2.25}
		for i, v := range want {
			if dst[i] != v || math.Signbit(dst[i]) {
				t.Fatalf("%s: relu(%v) = %v (signbit %v), want %v", name, in[i], dst[i], math.Signbit(dst[i]), v)
			}
		}
	}
}

// TestMulLanesArgChecks covers the panic contract.
func TestMulLanesArgChecks(t *testing.T) {
	w := New(2, 4)
	xt := make([]float64, 4*8)
	dst := make([]float64, 2*8)
	mustPanic := func(desc string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", desc)
			}
		}()
		f()
	}
	mustPanic("lanes not multiple of 8", func() { w.MulLanes(dst, xt, 8, 5, LaneOpts{}) })
	mustPanic("lanes beyond stride", func() { w.MulLanes(dst, xt, 8, 16, LaneOpts{}) })
	mustPanic("column window out of range", func() { w.MulLanes(dst, xt, 8, 8, LaneOpts{ColOff: 3, NCols: 2}) })
	mustPanic("short dst", func() { w.MulLanes(dst[:8], xt, 8, 8, LaneOpts{}) })
	mustPanic("bad init length", func() { w.MulLanes(dst, xt, 8, 8, LaneOpts{Init: make([]float64, 3)}) })
	mustPanic("prefix window", func() { w.MulVecColsTo(make([]float64, 2), make([]float64, 5), 0) })
}

func BenchmarkMulLanes64(b *testing.B) {
	for _, shape := range []struct{ rows, cols int }{{64, 32}, {64, 64}, {1, 64}} {
		b.Run(fmt.Sprintf("%dx%d", shape.rows, shape.cols), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			w := New(shape.rows, shape.cols)
			w.RandUniform(rng, 1)
			bias := RandVec(rng, shape.rows, -1, 1)
			const lanes = 64
			xt := RandVec(rng, shape.cols*lanes, -1, 1)
			dst := make([]float64, shape.rows*lanes)
			b.SetBytes(int64(8 * shape.rows * shape.cols * lanes))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.MulLanes(dst, xt, lanes, lanes, LaneOpts{Bias: bias, ReLU: true})
			}
		})
	}
}
