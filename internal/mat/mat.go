// Package mat provides the dense float64 vector and matrix kernels used by
// the neural-network, Gaussian-process and reinforcement-learning layers of
// the DeepCAT reproduction.
//
// The package is deliberately small and allocation-conscious: matrices are
// stored row-major in a single contiguous slice, every operation that can
// write into a caller-supplied destination does so, and all stochastic
// initializers take an explicit *rand.Rand so that callers control
// determinism.
//
// Dimension mismatches are programmer errors and panic; they are never
// returned as errors.
package mat

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense, row-major matrix of float64 values.
type Matrix struct {
	Rows, Cols int
	// Data holds the entries in row-major order: element (i, j) is
	// Data[i*Cols+j]. Its length is always Rows*Cols.
	Data []float64
}

// New returns a zero-valued rows x cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows. The data is
// copied.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("mat: ragged rows: row %d has %d cols, want %d", i, len(r), cols))
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.checkIndex(i, j)
	return m.Data[i*m.Cols+j]
}

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.checkIndex(i, j)
	m.Data[i*m.Cols+j] = v
}

func (m *Matrix) checkIndex(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
}

// Row returns row i as a slice aliasing the matrix storage. Mutating the
// returned slice mutates the matrix.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("mat: row %d out of range %d", i, m.Rows))
	}
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// CopyFrom copies src into m. The shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("mat: copy shape mismatch %dx%d <- %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	copy(m.Data, src.Data)
}

// Zero sets every entry of m to zero.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every entry of m to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Scale multiplies every entry of m by s in place.
func (m *Matrix) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AddScaled adds s*other to m in place. Shapes must match.
func (m *Matrix) AddScaled(other *Matrix, s float64) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic(fmt.Sprintf("mat: addScaled shape mismatch %dx%d + %dx%d", m.Rows, m.Cols, other.Rows, other.Cols))
	}
	for i, v := range other.Data {
		m.Data[i] += s * v
	}
}

// Lerp sets m = (1-t)*m + t*other in place; used for Polyak (soft target)
// updates where t is the mixing coefficient tau.
func (m *Matrix) Lerp(other *Matrix, t float64) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic(fmt.Sprintf("mat: lerp shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, other.Rows, other.Cols))
	}
	for i, v := range other.Data {
		m.Data[i] = (1-t)*m.Data[i] + t*v
	}
}

// Transpose returns a newly allocated transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// MulVecTo computes dst = m * x for a column vector x of length m.Cols,
// writing the m.Rows results into dst. dst and x must not alias.
func (m *Matrix) MulVecTo(dst, x []float64) {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("mat: mulVec len(x)=%d, want %d", len(x), m.Cols))
	}
	if len(dst) != m.Rows {
		panic(fmt.Sprintf("mat: mulVec len(dst)=%d, want %d", len(dst), m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var sum float64
		for j, w := range row {
			sum += w * x[j]
		}
		dst[i] = sum
	}
}

// MulVecTransTo computes dst = mᵀ * x for a vector x of length m.Rows,
// writing the m.Cols results into dst. dst and x must not alias.
func (m *Matrix) MulVecTransTo(dst, x []float64) {
	if len(x) != m.Rows {
		panic(fmt.Sprintf("mat: mulVecTrans len(x)=%d, want %d", len(x), m.Rows))
	}
	if len(dst) != m.Cols {
		panic(fmt.Sprintf("mat: mulVecTrans len(dst)=%d, want %d", len(dst), m.Cols))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, w := range row {
			dst[j] += w * xi
		}
	}
}

// AddOuterScaled adds s * x*yᵀ to m in place, where len(x) == m.Rows and
// len(y) == m.Cols. This is the gradient accumulation kernel for dense
// layers.
func (m *Matrix) AddOuterScaled(x, y []float64, s float64) {
	if len(x) != m.Rows || len(y) != m.Cols {
		panic(fmt.Sprintf("mat: addOuter dims %dx%d vs %dx%d", len(x), len(y), m.Rows, m.Cols))
	}
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		sx := s * xi
		for j, yj := range y {
			row[j] += sx * yj
		}
	}
}

// Mul returns the matrix product m * b as a new matrix.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("mat: mul shape mismatch %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := New(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		arow := m.Data[i*m.Cols : (i+1)*m.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, a := range arow {
			if a == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += a * bv
			}
		}
	}
	return out
}

// RandUniform fills m with samples from U(-bound, bound).
func (m *Matrix) RandUniform(rng *rand.Rand, bound float64) {
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * bound
	}
}

// XavierInit fills m with the Glorot/Xavier uniform initialization for a
// dense layer with fanIn inputs and fanOut outputs.
func (m *Matrix) XavierInit(rng *rand.Rand, fanIn, fanOut int) {
	bound := math.Sqrt(6.0 / float64(fanIn+fanOut))
	m.RandUniform(rng, bound)
}

// MaxAbs returns the largest absolute entry of m (0 for an empty matrix).
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Equal reports whether m and b have identical shape and entries within tol.
func (m *Matrix) Equal(b *Matrix, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders a small human-readable dump, useful in tests and debugging.
func (m *Matrix) String() string {
	s := fmt.Sprintf("Matrix %dx%d", m.Rows, m.Cols)
	if m.Rows*m.Cols <= 64 {
		for i := 0; i < m.Rows; i++ {
			s += fmt.Sprintf("\n  %v", m.Row(i))
		}
	}
	return s
}
