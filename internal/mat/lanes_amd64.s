// SIMD MulLanes backends. See lanes.go for the bit-exactness contract:
// per lane the accumulation is a strict multiply-then-add chain in ascending
// column order (no FMA), bias is added after the dot, and ReLU is
// MAX(acc, +0.0) with the zero operand in the tie/NaN-winning position so
// NaN and signed-zero inputs behave exactly like Activation.apply.
//
// Both routines vectorize across lanes: VBROADCASTSD splats one weight and a
// single VMULPD/VADDPD pair advances 8 (AVX-512) or 4 (AVX2) independent
// lane chains at once. Rows are processed four at a time so four
// independent accumulator chains are in flight per lane vector, hiding
// floating-point add latency.
//
// Arguments (common to both):
//	w+0(FP)       *float64  first selected column of W row 0
//	wstride+8(FP) int64     elements between consecutive W rows
//	rows+16(FP)   int64     output rows (> 0)
//	cols+24(FP)   int64     dot length (> 0)
//	xt+32(FP)     *float64  lane-major input, cols x stride
//	dst+40(FP)    *float64  lane-major output, rows x stride
//	stride+48(FP) int64     lane stride (elements)
//	lanes+56(FP)  int64     lanes to produce (positive multiple of 8)
//	init+64(FP)   *float64  per-row accumulator seeds, may be nil
//	bias+72(FP)   *float64  per-row bias, may be nil
//	relu+80(FP)   int64     non-zero: clamp negatives to +0

#include "textflag.h"

// func mulLanesAVX512(w *float64, wstride, rows, cols int64, xt, dst *float64, stride, lanes int64, init, bias *float64, relu int64)
TEXT ·mulLanesAVX512(SB), NOSPLIT, $0-88
	MOVQ wstride+8(FP), R9
	SHLQ $3, R9                    // W row stride in bytes
	MOVQ cols+24(FP), R11
	MOVQ stride+48(FP), R14
	SHLQ $3, R14                   // lane stride in bytes
	MOVQ lanes+56(FP), R15
	VPXORQ Z14, Z14, Z14           // +0.0 lanes for ReLU
	XORQ R10, R10                  // i = 0

z_loop_i:
	MOVQ rows+16(FP), AX
	SUBQ R10, AX
	CMPQ AX, $4
	JLT  z_rows_tail

	// --- 4-row block ---
	// While two lane vectors (16 lanes) remain, rows i..i+3 are advanced
	// over both at once: the four weight broadcasts per column are shared
	// between the vectors, halving broadcast and loop-control work per
	// lane-MAC. Each lane still owns a strict multiply-then-add chain, so
	// results are bit-identical to the one-vector block.
	XORQ R13, R13                  // r = 0
z_loop_r4:
	MOVQ R15, AX
	SUBQ R13, AX
	CMPQ AX, $16
	JLT  z_loop_r4x1
	// seed accumulators: rows i..i+3 in Z0..Z3 (vector 0) / Z4..Z7 (vector 1)
	MOVQ init+64(FP), AX
	TESTQ AX, AX
	JZ   z_zero_acc2
	LEAQ (AX)(R10*8), AX
	VBROADCASTSD 0(AX), Z0
	VBROADCASTSD 8(AX), Z1
	VBROADCASTSD 16(AX), Z2
	VBROADCASTSD 24(AX), Z3
	VMOVAPD Z0, Z4
	VMOVAPD Z1, Z5
	VMOVAPD Z2, Z6
	VMOVAPD Z3, Z7
	JMP  z_acc2_ready
z_zero_acc2:
	VPXORQ Z0, Z0, Z0
	VPXORQ Z1, Z1, Z1
	VPXORQ Z2, Z2, Z2
	VPXORQ Z3, Z3, Z3
	VPXORQ Z4, Z4, Z4
	VPXORQ Z5, Z5, Z5
	VPXORQ Z6, Z6, Z6
	VPXORQ Z7, Z7, Z7
z_acc2_ready:
	MOVQ w+0(FP), AX
	MOVQ R10, BX
	IMULQ R9, BX
	ADDQ BX, AX
	LEAQ (AX)(R9*2), BX
	MOVQ xt+32(FP), SI
	LEAQ (SI)(R13*8), SI
	MOVQ R11, DX
z_loop_j4x2:
	VMOVUPD (SI), Z8
	VMOVUPD 64(SI), Z13
	VBROADCASTSD (AX), Z9
	VMULPD Z8, Z9, Z10
	VADDPD Z10, Z0, Z0
	VMULPD Z13, Z9, Z12
	VADDPD Z12, Z4, Z4
	VBROADCASTSD (AX)(R9*1), Z11
	VMULPD Z8, Z11, Z10
	VADDPD Z10, Z1, Z1
	VMULPD Z13, Z11, Z12
	VADDPD Z12, Z5, Z5
	VBROADCASTSD (BX), Z9
	VMULPD Z8, Z9, Z10
	VADDPD Z10, Z2, Z2
	VMULPD Z13, Z9, Z12
	VADDPD Z12, Z6, Z6
	VBROADCASTSD (BX)(R9*1), Z11
	VMULPD Z8, Z11, Z10
	VADDPD Z10, Z3, Z3
	VMULPD Z13, Z11, Z12
	VADDPD Z12, Z7, Z7
	ADDQ $8, AX
	ADDQ $8, BX
	ADDQ R14, SI
	DECQ DX
	JNZ  z_loop_j4x2
	MOVQ bias+72(FP), AX
	TESTQ AX, AX
	JZ   z_nobias4x2
	LEAQ (AX)(R10*8), AX
	VBROADCASTSD 0(AX), Z9
	VADDPD Z9, Z0, Z0
	VADDPD Z9, Z4, Z4
	VBROADCASTSD 8(AX), Z9
	VADDPD Z9, Z1, Z1
	VADDPD Z9, Z5, Z5
	VBROADCASTSD 16(AX), Z9
	VADDPD Z9, Z2, Z2
	VADDPD Z9, Z6, Z6
	VBROADCASTSD 24(AX), Z9
	VADDPD Z9, Z3, Z3
	VADDPD Z9, Z7, Z7
z_nobias4x2:
	MOVQ relu+80(FP), AX
	TESTQ AX, AX
	JZ   z_norelu4x2
	VMAXPD Z14, Z0, Z0
	VMAXPD Z14, Z1, Z1
	VMAXPD Z14, Z2, Z2
	VMAXPD Z14, Z3, Z3
	VMAXPD Z14, Z4, Z4
	VMAXPD Z14, Z5, Z5
	VMAXPD Z14, Z6, Z6
	VMAXPD Z14, Z7, Z7
z_norelu4x2:
	MOVQ dst+40(FP), AX
	MOVQ R10, DX
	IMULQ R14, DX
	ADDQ DX, AX
	LEAQ (AX)(R13*8), AX
	VMOVUPD Z0, (AX)
	VMOVUPD Z4, 64(AX)
	VMOVUPD Z1, (AX)(R14*1)
	VMOVUPD Z5, 64(AX)(R14*1)
	LEAQ (AX)(R14*2), AX
	VMOVUPD Z2, (AX)
	VMOVUPD Z6, 64(AX)
	VMOVUPD Z3, (AX)(R14*1)
	VMOVUPD Z7, 64(AX)(R14*1)
	ADDQ $16, R13
	CMPQ R13, R15
	JLT  z_loop_r4
	JMP  z_r4_done

z_loop_r4x1:
	// seed accumulators Z0..Z3 from init[i..i+3] or zero
	MOVQ init+64(FP), AX
	TESTQ AX, AX
	JZ   z_zero_acc
	LEAQ (AX)(R10*8), AX
	VBROADCASTSD 0(AX), Z0
	VBROADCASTSD 8(AX), Z1
	VBROADCASTSD 16(AX), Z2
	VBROADCASTSD 24(AX), Z3
	JMP  z_acc_ready
z_zero_acc:
	VPXORQ Z0, Z0, Z0
	VPXORQ Z1, Z1, Z1
	VPXORQ Z2, Z2, Z2
	VPXORQ Z3, Z3, Z3
z_acc_ready:
	// AX -> W row i, BX -> W row i+2; rows i+1/i+3 via (reg)(R9*1)
	MOVQ w+0(FP), AX
	MOVQ R10, BX
	IMULQ R9, BX
	ADDQ BX, AX
	LEAQ (AX)(R9*2), BX
	// SI -> xt[0*stride + r]
	MOVQ xt+32(FP), SI
	LEAQ (SI)(R13*8), SI
	MOVQ R11, DX                   // j countdown
z_loop_j4:
	VMOVUPD (SI), Z8
	VBROADCASTSD (AX), Z9
	VMULPD Z8, Z9, Z10
	VADDPD Z10, Z0, Z0
	VBROADCASTSD (AX)(R9*1), Z11
	VMULPD Z8, Z11, Z12
	VADDPD Z12, Z1, Z1
	VBROADCASTSD (BX), Z9
	VMULPD Z8, Z9, Z10
	VADDPD Z10, Z2, Z2
	VBROADCASTSD (BX)(R9*1), Z11
	VMULPD Z8, Z11, Z12
	VADDPD Z12, Z3, Z3
	ADDQ $8, AX
	ADDQ $8, BX
	ADDQ R14, SI
	DECQ DX
	JNZ  z_loop_j4
	// bias
	MOVQ bias+72(FP), AX
	TESTQ AX, AX
	JZ   z_nobias4
	LEAQ (AX)(R10*8), AX
	VBROADCASTSD 0(AX), Z9
	VADDPD Z9, Z0, Z0
	VBROADCASTSD 8(AX), Z9
	VADDPD Z9, Z1, Z1
	VBROADCASTSD 16(AX), Z9
	VADDPD Z9, Z2, Z2
	VBROADCASTSD 24(AX), Z9
	VADDPD Z9, Z3, Z3
z_nobias4:
	MOVQ relu+80(FP), AX
	TESTQ AX, AX
	JZ   z_norelu4
	VMAXPD Z14, Z0, Z0
	VMAXPD Z14, Z1, Z1
	VMAXPD Z14, Z2, Z2
	VMAXPD Z14, Z3, Z3
z_norelu4:
	// store to dst + i*stride*8 + r*8, rows advancing by stride
	MOVQ dst+40(FP), AX
	MOVQ R10, DX
	IMULQ R14, DX
	ADDQ DX, AX
	LEAQ (AX)(R13*8), AX
	VMOVUPD Z0, (AX)
	VMOVUPD Z1, (AX)(R14*1)
	LEAQ (AX)(R14*2), AX
	VMOVUPD Z2, (AX)
	VMOVUPD Z3, (AX)(R14*1)
	ADDQ $8, R13
	CMPQ R13, R15
	JLT  z_loop_r4
z_r4_done:
	ADDQ $4, R10
	JMP  z_loop_i

z_rows_tail:
	TESTQ AX, AX
	JZ   z_done
	// --- single-row block, repeated for the <=3 tail rows ---
	// With only one output row there is a single dependent accumulator
	// chain per lane vector, so four lane vectors are advanced together
	// (four independent chains) while at least 32 lanes remain; the shared
	// weight broadcast is reused across all four.
	XORQ R13, R13                  // r = 0
z_loop_r1x4:
	MOVQ R15, AX
	SUBQ R13, AX
	CMPQ AX, $32
	JLT  z_loop_r1
	MOVQ init+64(FP), AX
	TESTQ AX, AX
	JZ   z_zero_acc1x4
	VBROADCASTSD (AX)(R10*8), Z0
	VMOVAPD Z0, Z1
	VMOVAPD Z0, Z2
	VMOVAPD Z0, Z3
	JMP  z_acc1x4_ready
z_zero_acc1x4:
	VPXORQ Z0, Z0, Z0
	VPXORQ Z1, Z1, Z1
	VPXORQ Z2, Z2, Z2
	VPXORQ Z3, Z3, Z3
z_acc1x4_ready:
	MOVQ w+0(FP), AX
	MOVQ R10, BX
	IMULQ R9, BX
	ADDQ BX, AX
	MOVQ xt+32(FP), SI
	LEAQ (SI)(R13*8), SI
	MOVQ R11, DX
z_loop_j1x4:
	VBROADCASTSD (AX), Z9
	VMOVUPD (SI), Z8
	VMULPD Z8, Z9, Z10
	VADDPD Z10, Z0, Z0
	VMOVUPD 64(SI), Z11
	VMULPD Z11, Z9, Z12
	VADDPD Z12, Z1, Z1
	VMOVUPD 128(SI), Z8
	VMULPD Z8, Z9, Z10
	VADDPD Z10, Z2, Z2
	VMOVUPD 192(SI), Z11
	VMULPD Z11, Z9, Z12
	VADDPD Z12, Z3, Z3
	ADDQ $8, AX
	ADDQ R14, SI
	DECQ DX
	JNZ  z_loop_j1x4
	MOVQ bias+72(FP), AX
	TESTQ AX, AX
	JZ   z_nobias1x4
	VBROADCASTSD (AX)(R10*8), Z9
	VADDPD Z9, Z0, Z0
	VADDPD Z9, Z1, Z1
	VADDPD Z9, Z2, Z2
	VADDPD Z9, Z3, Z3
z_nobias1x4:
	MOVQ relu+80(FP), AX
	TESTQ AX, AX
	JZ   z_norelu1x4
	VMAXPD Z14, Z0, Z0
	VMAXPD Z14, Z1, Z1
	VMAXPD Z14, Z2, Z2
	VMAXPD Z14, Z3, Z3
z_norelu1x4:
	MOVQ dst+40(FP), AX
	MOVQ R10, DX
	IMULQ R14, DX
	ADDQ DX, AX
	LEAQ (AX)(R13*8), AX
	VMOVUPD Z0, (AX)
	VMOVUPD Z1, 64(AX)
	VMOVUPD Z2, 128(AX)
	VMOVUPD Z3, 192(AX)
	ADDQ $32, R13
	JMP  z_loop_r1x4
z_loop_r1:
	CMPQ R13, R15
	JGE  z_row1_done
	MOVQ init+64(FP), AX
	TESTQ AX, AX
	JZ   z_zero_acc1
	VBROADCASTSD (AX)(R10*8), Z0
	JMP  z_acc1_ready
z_zero_acc1:
	VPXORQ Z0, Z0, Z0
z_acc1_ready:
	MOVQ w+0(FP), AX
	MOVQ R10, BX
	IMULQ R9, BX
	ADDQ BX, AX
	MOVQ xt+32(FP), SI
	LEAQ (SI)(R13*8), SI
	MOVQ R11, DX
z_loop_j1:
	VMOVUPD (SI), Z8
	VBROADCASTSD (AX), Z9
	VMULPD Z8, Z9, Z10
	VADDPD Z10, Z0, Z0
	ADDQ $8, AX
	ADDQ R14, SI
	DECQ DX
	JNZ  z_loop_j1
	MOVQ bias+72(FP), AX
	TESTQ AX, AX
	JZ   z_nobias1
	VBROADCASTSD (AX)(R10*8), Z9
	VADDPD Z9, Z0, Z0
z_nobias1:
	MOVQ relu+80(FP), AX
	TESTQ AX, AX
	JZ   z_norelu1
	VMAXPD Z14, Z0, Z0
z_norelu1:
	MOVQ dst+40(FP), AX
	MOVQ R10, DX
	IMULQ R14, DX
	ADDQ DX, AX
	VMOVUPD Z0, (AX)(R13*8)
	ADDQ $8, R13
	JMP  z_loop_r1
z_row1_done:
	INCQ R10
	MOVQ rows+16(FP), AX
	SUBQ R10, AX
	JMP  z_rows_tail

z_done:
	VZEROUPPER
	RET

// func mulLanesAVX2(w *float64, wstride, rows, cols int64, xt, dst *float64, stride, lanes int64, init, bias *float64, relu int64)
TEXT ·mulLanesAVX2(SB), NOSPLIT, $0-88
	MOVQ wstride+8(FP), R9
	SHLQ $3, R9
	MOVQ cols+24(FP), R11
	MOVQ stride+48(FP), R14
	SHLQ $3, R14
	MOVQ lanes+56(FP), R15
	VXORPD Y14, Y14, Y14
	XORQ R10, R10

y_loop_i:
	MOVQ rows+16(FP), AX
	SUBQ R10, AX
	CMPQ AX, $4
	JLT  y_rows_tail

	// Two lane vectors (8 lanes) per step while available, sharing the four
	// weight broadcasts — same scheme as the AVX-512 main block.
	XORQ R13, R13
y_loop_r4:
	MOVQ R15, AX
	SUBQ R13, AX
	CMPQ AX, $8
	JLT  y_loop_r4x1
	MOVQ init+64(FP), AX
	TESTQ AX, AX
	JZ   y_zero_acc2
	LEAQ (AX)(R10*8), AX
	VBROADCASTSD 0(AX), Y0
	VBROADCASTSD 8(AX), Y1
	VBROADCASTSD 16(AX), Y2
	VBROADCASTSD 24(AX), Y3
	VMOVAPD Y0, Y4
	VMOVAPD Y1, Y5
	VMOVAPD Y2, Y6
	VMOVAPD Y3, Y7
	JMP  y_acc2_ready
y_zero_acc2:
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
y_acc2_ready:
	MOVQ w+0(FP), AX
	MOVQ R10, BX
	IMULQ R9, BX
	ADDQ BX, AX
	LEAQ (AX)(R9*2), BX
	MOVQ xt+32(FP), SI
	LEAQ (SI)(R13*8), SI
	MOVQ R11, DX
y_loop_j4x2:
	VMOVUPD (SI), Y8
	VMOVUPD 32(SI), Y13
	VBROADCASTSD (AX), Y9
	VMULPD Y8, Y9, Y10
	VADDPD Y10, Y0, Y0
	VMULPD Y13, Y9, Y12
	VADDPD Y12, Y4, Y4
	VBROADCASTSD (AX)(R9*1), Y11
	VMULPD Y8, Y11, Y10
	VADDPD Y10, Y1, Y1
	VMULPD Y13, Y11, Y12
	VADDPD Y12, Y5, Y5
	VBROADCASTSD (BX), Y9
	VMULPD Y8, Y9, Y10
	VADDPD Y10, Y2, Y2
	VMULPD Y13, Y9, Y12
	VADDPD Y12, Y6, Y6
	VBROADCASTSD (BX)(R9*1), Y11
	VMULPD Y8, Y11, Y10
	VADDPD Y10, Y3, Y3
	VMULPD Y13, Y11, Y12
	VADDPD Y12, Y7, Y7
	ADDQ $8, AX
	ADDQ $8, BX
	ADDQ R14, SI
	DECQ DX
	JNZ  y_loop_j4x2
	MOVQ bias+72(FP), AX
	TESTQ AX, AX
	JZ   y_nobias4x2
	LEAQ (AX)(R10*8), AX
	VBROADCASTSD 0(AX), Y9
	VADDPD Y9, Y0, Y0
	VADDPD Y9, Y4, Y4
	VBROADCASTSD 8(AX), Y9
	VADDPD Y9, Y1, Y1
	VADDPD Y9, Y5, Y5
	VBROADCASTSD 16(AX), Y9
	VADDPD Y9, Y2, Y2
	VADDPD Y9, Y6, Y6
	VBROADCASTSD 24(AX), Y9
	VADDPD Y9, Y3, Y3
	VADDPD Y9, Y7, Y7
y_nobias4x2:
	MOVQ relu+80(FP), AX
	TESTQ AX, AX
	JZ   y_norelu4x2
	VMAXPD Y14, Y0, Y0
	VMAXPD Y14, Y1, Y1
	VMAXPD Y14, Y2, Y2
	VMAXPD Y14, Y3, Y3
	VMAXPD Y14, Y4, Y4
	VMAXPD Y14, Y5, Y5
	VMAXPD Y14, Y6, Y6
	VMAXPD Y14, Y7, Y7
y_norelu4x2:
	MOVQ dst+40(FP), AX
	MOVQ R10, DX
	IMULQ R14, DX
	ADDQ DX, AX
	LEAQ (AX)(R13*8), AX
	VMOVUPD Y0, (AX)
	VMOVUPD Y4, 32(AX)
	VMOVUPD Y1, (AX)(R14*1)
	VMOVUPD Y5, 32(AX)(R14*1)
	LEAQ (AX)(R14*2), AX
	VMOVUPD Y2, (AX)
	VMOVUPD Y6, 32(AX)
	VMOVUPD Y3, (AX)(R14*1)
	VMOVUPD Y7, 32(AX)(R14*1)
	ADDQ $8, R13
	CMPQ R13, R15
	JLT  y_loop_r4
	JMP  y_r4_done

y_loop_r4x1:
	MOVQ init+64(FP), AX
	TESTQ AX, AX
	JZ   y_zero_acc
	LEAQ (AX)(R10*8), AX
	VBROADCASTSD 0(AX), Y0
	VBROADCASTSD 8(AX), Y1
	VBROADCASTSD 16(AX), Y2
	VBROADCASTSD 24(AX), Y3
	JMP  y_acc_ready
y_zero_acc:
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
y_acc_ready:
	MOVQ w+0(FP), AX
	MOVQ R10, BX
	IMULQ R9, BX
	ADDQ BX, AX
	LEAQ (AX)(R9*2), BX
	MOVQ xt+32(FP), SI
	LEAQ (SI)(R13*8), SI
	MOVQ R11, DX
y_loop_j4:
	VMOVUPD (SI), Y8
	VBROADCASTSD (AX), Y9
	VMULPD Y8, Y9, Y10
	VADDPD Y10, Y0, Y0
	VBROADCASTSD (AX)(R9*1), Y11
	VMULPD Y8, Y11, Y12
	VADDPD Y12, Y1, Y1
	VBROADCASTSD (BX), Y9
	VMULPD Y8, Y9, Y10
	VADDPD Y10, Y2, Y2
	VBROADCASTSD (BX)(R9*1), Y11
	VMULPD Y8, Y11, Y12
	VADDPD Y12, Y3, Y3
	ADDQ $8, AX
	ADDQ $8, BX
	ADDQ R14, SI
	DECQ DX
	JNZ  y_loop_j4
	MOVQ bias+72(FP), AX
	TESTQ AX, AX
	JZ   y_nobias4
	LEAQ (AX)(R10*8), AX
	VBROADCASTSD 0(AX), Y9
	VADDPD Y9, Y0, Y0
	VBROADCASTSD 8(AX), Y9
	VADDPD Y9, Y1, Y1
	VBROADCASTSD 16(AX), Y9
	VADDPD Y9, Y2, Y2
	VBROADCASTSD 24(AX), Y9
	VADDPD Y9, Y3, Y3
y_nobias4:
	MOVQ relu+80(FP), AX
	TESTQ AX, AX
	JZ   y_norelu4
	VMAXPD Y14, Y0, Y0
	VMAXPD Y14, Y1, Y1
	VMAXPD Y14, Y2, Y2
	VMAXPD Y14, Y3, Y3
y_norelu4:
	MOVQ dst+40(FP), AX
	MOVQ R10, DX
	IMULQ R14, DX
	ADDQ DX, AX
	LEAQ (AX)(R13*8), AX
	VMOVUPD Y0, (AX)
	VMOVUPD Y1, (AX)(R14*1)
	LEAQ (AX)(R14*2), AX
	VMOVUPD Y2, (AX)
	VMOVUPD Y3, (AX)(R14*1)
	ADDQ $4, R13
	CMPQ R13, R15
	JLT  y_loop_r4
y_r4_done:
	ADDQ $4, R10
	JMP  y_loop_i

y_rows_tail:
	TESTQ AX, AX
	JZ   y_done
	// Four lane vectors per step while >=16 lanes remain, for the same
	// chain-interleaving reason as the AVX-512 tail.
	XORQ R13, R13
y_loop_r1x4:
	MOVQ R15, AX
	SUBQ R13, AX
	CMPQ AX, $16
	JLT  y_loop_r1
	MOVQ init+64(FP), AX
	TESTQ AX, AX
	JZ   y_zero_acc1x4
	VBROADCASTSD (AX)(R10*8), Y0
	VMOVAPD Y0, Y1
	VMOVAPD Y0, Y2
	VMOVAPD Y0, Y3
	JMP  y_acc1x4_ready
y_zero_acc1x4:
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
y_acc1x4_ready:
	MOVQ w+0(FP), AX
	MOVQ R10, BX
	IMULQ R9, BX
	ADDQ BX, AX
	MOVQ xt+32(FP), SI
	LEAQ (SI)(R13*8), SI
	MOVQ R11, DX
y_loop_j1x4:
	VBROADCASTSD (AX), Y9
	VMOVUPD (SI), Y8
	VMULPD Y8, Y9, Y10
	VADDPD Y10, Y0, Y0
	VMOVUPD 32(SI), Y11
	VMULPD Y11, Y9, Y12
	VADDPD Y12, Y1, Y1
	VMOVUPD 64(SI), Y8
	VMULPD Y8, Y9, Y10
	VADDPD Y10, Y2, Y2
	VMOVUPD 96(SI), Y11
	VMULPD Y11, Y9, Y12
	VADDPD Y12, Y3, Y3
	ADDQ $8, AX
	ADDQ R14, SI
	DECQ DX
	JNZ  y_loop_j1x4
	MOVQ bias+72(FP), AX
	TESTQ AX, AX
	JZ   y_nobias1x4
	VBROADCASTSD (AX)(R10*8), Y9
	VADDPD Y9, Y0, Y0
	VADDPD Y9, Y1, Y1
	VADDPD Y9, Y2, Y2
	VADDPD Y9, Y3, Y3
y_nobias1x4:
	MOVQ relu+80(FP), AX
	TESTQ AX, AX
	JZ   y_norelu1x4
	VMAXPD Y14, Y0, Y0
	VMAXPD Y14, Y1, Y1
	VMAXPD Y14, Y2, Y2
	VMAXPD Y14, Y3, Y3
y_norelu1x4:
	MOVQ dst+40(FP), AX
	MOVQ R10, DX
	IMULQ R14, DX
	ADDQ DX, AX
	LEAQ (AX)(R13*8), AX
	VMOVUPD Y0, (AX)
	VMOVUPD Y1, 32(AX)
	VMOVUPD Y2, 64(AX)
	VMOVUPD Y3, 96(AX)
	ADDQ $16, R13
	JMP  y_loop_r1x4
y_loop_r1:
	CMPQ R13, R15
	JGE  y_row1_done
	MOVQ init+64(FP), AX
	TESTQ AX, AX
	JZ   y_zero_acc1
	VBROADCASTSD (AX)(R10*8), Y0
	JMP  y_acc1_ready
y_zero_acc1:
	VXORPD Y0, Y0, Y0
y_acc1_ready:
	MOVQ w+0(FP), AX
	MOVQ R10, BX
	IMULQ R9, BX
	ADDQ BX, AX
	MOVQ xt+32(FP), SI
	LEAQ (SI)(R13*8), SI
	MOVQ R11, DX
y_loop_j1:
	VMOVUPD (SI), Y8
	VBROADCASTSD (AX), Y9
	VMULPD Y8, Y9, Y10
	VADDPD Y10, Y0, Y0
	ADDQ $8, AX
	ADDQ R14, SI
	DECQ DX
	JNZ  y_loop_j1
	MOVQ bias+72(FP), AX
	TESTQ AX, AX
	JZ   y_nobias1
	VBROADCASTSD (AX)(R10*8), Y9
	VADDPD Y9, Y0, Y0
y_nobias1:
	MOVQ relu+80(FP), AX
	TESTQ AX, AX
	JZ   y_norelu1
	VMAXPD Y14, Y0, Y0
y_norelu1:
	MOVQ dst+40(FP), AX
	MOVQ R10, DX
	IMULQ R14, DX
	ADDQ DX, AX
	VMOVUPD Y0, (AX)(R13*8)
	ADDQ $4, R13
	JMP  y_loop_r1
y_row1_done:
	INCQ R10
	MOVQ rows+16(FP), AX
	SUBQ R10, AX
	JMP  y_rows_tail

y_done:
	VZEROUPPER
	RET

// func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvAsm() (lo, hi uint32)
TEXT ·xgetbvAsm(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, lo+0(FP)
	MOVL DX, hi+4(FP)
	RET
