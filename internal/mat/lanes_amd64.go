//go:build amd64

package mat

// SIMD backends for MulLanes. Both vectorize across lanes — one weight is
// broadcast and multiplied against 8 (AVX-512) or 4 (AVX2) lanes per
// instruction — so each lane's accumulator chain stays a strict
// multiply-then-add sequence in ascending column order, bit-identical to the
// portable backend and to per-sample MulVecTo. No FMA is emitted: fusing
// would drop the intermediate rounding and change results.

//go:noescape
func mulLanesAVX512(w *float64, wstride, rows, cols int64, xt, dst *float64, stride, lanes int64, init, bias *float64, relu int64)

//go:noescape
func mulLanesAVX2(w *float64, wstride, rows, cols int64, xt, dst *float64, stride, lanes int64, init, bias *float64, relu int64)

func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

func xgetbvAsm() (lo, hi uint32)

func init() {
	maxLeaf, _, _, _ := cpuidAsm(0, 0)
	if maxLeaf < 7 {
		return
	}
	_, _, c1, _ := cpuidAsm(1, 0)
	const osxsave, avx = 1 << 27, 1 << 28
	if c1&osxsave == 0 || c1&avx == 0 {
		return
	}
	xcr0, _ := xgetbvAsm()
	_, b7, _, _ := cpuidAsm(7, 0)
	const (
		avx2Bit    = 1 << 5
		avx512fBit = 1 << 16
		// XCR0: SSE+AVX state for AVX2; opmask+ZMM_Hi256+Hi16_ZMM on top
		// for AVX-512.
		ymmState = 0x6
		zmmState = 0xe6
	)
	if b7&avx2Bit != 0 && xcr0&ymmState == ymmState {
		laneKernelAVX2OK = true
	}
	switch {
	case b7&avx512fBit != 0 && xcr0&zmmState == zmmState:
		laneKernel = mulLanesAVX512Wrap
		laneKernelName = "avx512"
	case laneKernelAVX2OK:
		laneKernel = mulLanesAVX2Wrap
		laneKernelName = "avx2"
	}
}

// laneKernelAVX2OK records whether the AVX2 backend can run on this CPU even
// when AVX-512 is selected; the property tests use it to cover the
// non-selected SIMD backend too.
var laneKernelAVX2OK bool

// wrap adapts the slice-level kernel signature to the pointer-level asm
// entry points. Degenerate shapes (no rows or no columns) take the portable
// path so the asm never sees a zero trip count.
func mulLanesAVX512Wrap(w []float64, wstride, rows, cols int, xt, dst []float64, stride, lanes int, init, bias []float64, relu bool) {
	if rows == 0 || cols == 0 {
		mulLanesGo(w, wstride, rows, cols, xt, dst, stride, lanes, init, bias, relu)
		return
	}
	mulLanesAVX512(&w[0], int64(wstride), int64(rows), int64(cols), &xt[0], &dst[0],
		int64(stride), int64(lanes), ptrOrNil(init), ptrOrNil(bias), boolInt64(relu))
}

func mulLanesAVX2Wrap(w []float64, wstride, rows, cols int, xt, dst []float64, stride, lanes int, init, bias []float64, relu bool) {
	if rows == 0 || cols == 0 {
		mulLanesGo(w, wstride, rows, cols, xt, dst, stride, lanes, init, bias, relu)
		return
	}
	mulLanesAVX2(&w[0], int64(wstride), int64(rows), int64(cols), &xt[0], &dst[0],
		int64(stride), int64(lanes), ptrOrNil(init), ptrOrNil(bias), boolInt64(relu))
}

func ptrOrNil(s []float64) *float64 {
	if s == nil {
		return nil
	}
	return &s[0]
}

func boolInt64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
