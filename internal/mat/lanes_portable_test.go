//go:build !amd64

package mat

// extraLaneBackends: no non-selected SIMD backends exist off amd64.
func extraLaneBackends() map[string]laneKernelFunc {
	return nil
}
