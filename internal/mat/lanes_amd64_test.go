//go:build amd64

package mat

// extraLaneBackends returns SIMD backends the CPU can run but init did not
// select — on an AVX-512 machine that is the AVX2 kernel, which would
// otherwise only be exercised on older hardware.
func extraLaneBackends() map[string]laneKernelFunc {
	b := map[string]laneKernelFunc{}
	if laneKernelAVX2OK && laneKernelName != "avx2" {
		b["avx2"] = mulLanesAVX2Wrap
	}
	return b
}
