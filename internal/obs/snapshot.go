package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
)

// HistogramSnapshot is a histogram's point-in-time value: raw (non-
// cumulative) per-bucket counts over the bucket bounds, plus the running
// count and sum. Two snapshots merge bucket-wise only when their bound
// layouts are identical.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds,omitempty"`
	// Counts has len(Bounds)+1 entries; the last is the +Inf bucket.
	Counts []uint64 `json:"counts,omitempty"`
	Count  uint64   `json:"count"`
	Sum    float64  `json:"sum"`
}

// Quantile estimates the q-quantile of the snapshotted values with the same
// linear interpolation Histogram.Quantile uses, so a dashboard computing
// p99 from a merged fleet snapshot agrees with a single shard computing it
// live.
func (h *HistogramSnapshot) Quantile(q float64) float64 {
	if h == nil || len(h.Bounds) == 0 || h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var cum uint64
	for i, bound := range h.Bounds {
		n := h.Counts[i]
		if float64(cum)+float64(n) >= rank {
			lower := 0.0
			if i > 0 {
				lower = h.Bounds[i-1]
			}
			if n == 0 {
				return bound
			}
			frac := (rank - float64(cum)) / float64(n)
			return lower + frac*(bound-lower)
		}
		cum += n
	}
	return h.Bounds[len(h.Bounds)-1]
}

// InstrumentSnapshot is one instrument's point-in-time value. Exactly one
// of Value (counter), Gauge/GaugeMax (gauge) or Histogram is meaningful,
// per Kind.
type InstrumentSnapshot struct {
	Name string `json:"name"`
	// Labels is the rendered label set (`k="v",k2="v2"`), "" for none; it
	// is part of the instrument's identity for merging.
	Labels string `json:"labels,omitempty"`
	// Kind is "counter", "gauge" or "histogram".
	Kind string `json:"kind"`

	// Value is the counter total; merging sums it.
	Value uint64 `json:"value,omitempty"`
	// Gauge is the gauge value; merging sums it (an in-flight or queue-depth
	// gauge aggregated fleet-wide is the fleet's total). GaugeMax tracks the
	// largest single contribution across merged snapshots, for gauges where
	// the hottest shard matters more than the sum.
	Gauge    int64 `json:"gauge,omitempty"`
	GaugeMax int64 `json:"gauge_max,omitempty"`

	Histogram *HistogramSnapshot `json:"histogram,omitempty"`
}

func (ins InstrumentSnapshot) key() string { return ins.Name + "{" + ins.Labels + "}" }

// Snapshot is a mergeable point-in-time copy of a registry: the JSON wire
// format of the per-shard scrape endpoint and the value type the fleet
// aggregator sums. The zero value is an empty snapshot ready to Merge into.
type Snapshot struct {
	Instruments []InstrumentSnapshot `json:"instruments"`
}

// Snapshot captures every registered instrument, sorted by name then
// labels. A nil registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	all := make([]*instrument, 0, len(r.instruments))
	for _, ins := range r.instruments {
		all = append(all, ins)
	}
	r.mu.Unlock()
	snap := Snapshot{Instruments: make([]InstrumentSnapshot, 0, len(all))}
	for _, ins := range all {
		out := InstrumentSnapshot{Name: ins.name, Labels: ins.labels, Kind: ins.kind.String()}
		switch ins.kind {
		case kindCounter:
			out.Value = ins.c.Value()
		case kindGauge:
			v := ins.g.Value()
			out.Gauge, out.GaugeMax = v, v
		default:
			h := &HistogramSnapshot{
				Bounds: append([]float64(nil), ins.h.bounds...),
				Counts: make([]uint64, len(ins.h.counts)),
			}
			for i := range ins.h.counts {
				h.Counts[i] = ins.h.counts[i].Load()
			}
			h.Count = ins.h.Count()
			h.Sum = ins.h.Sum()
			out.Histogram = h
		}
		snap.Instruments = append(snap.Instruments, out)
	}
	snap.sort()
	return snap
}

func (s *Snapshot) sort() {
	sort.Slice(s.Instruments, func(i, j int) bool {
		if s.Instruments[i].Name != s.Instruments[j].Name {
			return s.Instruments[i].Name < s.Instruments[j].Name
		}
		return s.Instruments[i].Labels < s.Instruments[j].Labels
	})
}

// Merge folds other into s: counters sum, gauges sum (tracking the max
// single contribution), histograms add bucket-wise. Instruments unknown to
// s are appended. It fails — leaving s partially merged only past the
// failing instrument — when the same name+labels carries different kinds or
// histogram bucket layouts on the two sides; shards of one fleet build
// their registries from the same code, so a mismatch means the scrape mixed
// incompatible builds and summing would silently corrupt the result.
func (s *Snapshot) Merge(other Snapshot) error {
	idx := make(map[string]int, len(s.Instruments))
	for i, ins := range s.Instruments {
		idx[ins.key()] = i
	}
	for _, in := range other.Instruments {
		i, ok := idx[in.key()]
		if !ok {
			cp := in
			if in.Histogram != nil {
				cp.Histogram = &HistogramSnapshot{
					Bounds: append([]float64(nil), in.Histogram.Bounds...),
					Counts: append([]uint64(nil), in.Histogram.Counts...),
					Count:  in.Histogram.Count,
					Sum:    in.Histogram.Sum,
				}
			}
			idx[cp.key()] = len(s.Instruments)
			s.Instruments = append(s.Instruments, cp)
			continue
		}
		dst := &s.Instruments[i]
		if dst.Kind != in.Kind {
			return fmt.Errorf("obs: merge %s: kind %s vs %s", in.key(), dst.Kind, in.Kind)
		}
		switch dst.Kind {
		case "counter":
			dst.Value += in.Value
		case "gauge":
			dst.Gauge += in.Gauge
			if in.GaugeMax > dst.GaugeMax {
				dst.GaugeMax = in.GaugeMax
			}
		case "histogram":
			if err := dst.Histogram.merge(in.Histogram, in.key()); err != nil {
				return err
			}
		default:
			return fmt.Errorf("obs: merge %s: unknown kind %q", in.key(), in.Kind)
		}
	}
	s.sort()
	return nil
}

// merge adds other into h bucket-wise; layouts must match exactly.
func (h *HistogramSnapshot) merge(other *HistogramSnapshot, key string) error {
	if other == nil {
		return fmt.Errorf("obs: merge %s: histogram instrument without histogram value", key)
	}
	if len(other.Bounds) != len(h.Bounds) {
		return fmt.Errorf("obs: merge %s: bucket layout mismatch: %d bounds vs %d",
			key, len(h.Bounds), len(other.Bounds))
	}
	for i, b := range other.Bounds {
		if b != h.Bounds[i] {
			return fmt.Errorf("obs: merge %s: bucket layout mismatch at bound %d: %g vs %g",
				key, i, h.Bounds[i], b)
		}
	}
	if len(other.Counts) != len(h.Counts) {
		return fmt.Errorf("obs: merge %s: bucket layout mismatch: %d counts vs %d",
			key, len(h.Counts), len(other.Counts))
	}
	for i, c := range other.Counts {
		h.Counts[i] += c
	}
	h.Count += other.Count
	h.Sum += other.Sum
	return nil
}

// SetGauge sets (adding if absent) a gauge instrument in the snapshot; the
// fleet aggregator uses it to annotate a merged snapshot with per-shard
// availability markers that ride the same exposition writer.
func (s *Snapshot) SetGauge(name string, value int64, labels ...string) {
	ls := renderLabels(labels)
	for i := range s.Instruments {
		if s.Instruments[i].Name == name && s.Instruments[i].Labels == ls {
			s.Instruments[i].Gauge = value
			s.Instruments[i].GaugeMax = value
			return
		}
	}
	s.Instruments = append(s.Instruments, InstrumentSnapshot{
		Name: name, Labels: ls, Kind: "gauge", Gauge: value, GaugeMax: value,
	})
	s.sort()
}

// CounterTotal sums every counter named name across its label sets; a
// dashboard's "total requests" over `deepcat_http_requests_total{endpoint,
// code}` is one call.
func (s Snapshot) CounterTotal(name string) uint64 {
	var total uint64
	for _, ins := range s.Instruments {
		if ins.Name == name && ins.Kind == "counter" {
			total += ins.Value
		}
	}
	return total
}

// GaugeValue returns the summed value of the gauge family name (all label
// sets), and whether any instrument matched.
func (s Snapshot) GaugeValue(name string) (int64, bool) {
	var total int64
	found := false
	for _, ins := range s.Instruments {
		if ins.Name == name && ins.Kind == "gauge" {
			total += ins.Gauge
			found = true
		}
	}
	return total, found
}

// HistogramTotal merges every histogram named name across its label sets
// into one (nil when none match or layouts differ): the fleet-wide latency
// distribution of an endpoint family.
func (s Snapshot) HistogramTotal(name string) *HistogramSnapshot {
	var total *HistogramSnapshot
	for _, ins := range s.Instruments {
		if ins.Name != name || ins.Kind != "histogram" || ins.Histogram == nil {
			continue
		}
		if total == nil {
			total = &HistogramSnapshot{
				Bounds: append([]float64(nil), ins.Histogram.Bounds...),
				Counts: append([]uint64(nil), ins.Histogram.Counts...),
				Count:  ins.Histogram.Count,
				Sum:    ins.Histogram.Sum,
			}
			continue
		}
		if total.merge(ins.Histogram, name) != nil {
			return nil
		}
	}
	return total
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format — identical, byte for byte, to what the live registry it was taken
// from would expose.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var lastFamily string
	for i := range s.Instruments {
		ins := &s.Instruments[i]
		if ins.Name != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", ins.Name, ins.Kind); err != nil {
				return err
			}
			lastFamily = ins.Name
		}
		if err := writeSnapshotInstrument(w, ins); err != nil {
			return err
		}
	}
	return nil
}

func writeSnapshotInstrument(w io.Writer, ins *InstrumentSnapshot) error {
	suffix := ""
	if ins.Labels != "" {
		suffix = "{" + ins.Labels + "}"
	}
	switch ins.Kind {
	case "counter":
		_, err := fmt.Fprintf(w, "%s%s %d\n", ins.Name, suffix, ins.Value)
		return err
	case "gauge":
		_, err := fmt.Fprintf(w, "%s%s %d\n", ins.Name, suffix, ins.Gauge)
		return err
	}
	h := ins.Histogram
	if h == nil {
		return fmt.Errorf("obs: instrument %s%s: histogram kind without histogram value", ins.Name, suffix)
	}
	sep := ""
	if ins.Labels != "" {
		sep = ins.Labels + ","
	}
	var cum uint64
	for i, bound := range h.Bounds {
		cum += h.Counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", ins.Name, sep, formatFloat(bound), cum); err != nil {
			return err
		}
	}
	if len(h.Counts) > len(h.Bounds) {
		cum += h.Counts[len(h.Bounds)]
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", ins.Name, sep, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", ins.Name, suffix, formatFloat(h.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", ins.Name, suffix, h.Count)
	return err
}

// SnapshotHandler serves the registry's snapshot as JSON; the tuning port
// mounts it so fleet peers can scrape and merge per-shard metrics without
// reaching each shard's (optional, separately bound) ops listener. A nil
// registry serves an empty snapshot.
func (r *Registry) SnapshotHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(r.Snapshot())
	})
}
