package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("deepcat_test_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("deepcat_test_total"); again != c {
		t.Fatal("re-registration returned a different counter")
	}

	g := r.Gauge("deepcat_test_inflight")
	g.Inc()
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 1 {
		t.Fatalf("gauge = %d, want 1", got)
	}
	g.Set(-7)
	if got := g.Value(); got != -7 {
		t.Fatalf("gauge = %d, want -7", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("deepcat_concurrent_total")
	h := r.Histogram("deepcat_concurrent_seconds", []float64{0.5})
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if got, want := h.Sum(), 0.25*workers*perWorker; got != want {
		t.Fatalf("histogram sum = %g, want %g", got, want)
	}
}

// TestHistogramBucketBoundaries pins the inclusive-upper-bound (`le`)
// semantics: an observation exactly on a bound lands in that bound's
// bucket, one just above lands in the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("deepcat_bounds_seconds", []float64{0.1, 1, 10})
	for _, v := range []float64{0.1, 0.100001, 1, 5, 10, 11, -1} {
		h.Observe(v)
	}
	// Raw (non-cumulative) expectations per bucket:
	//   le=0.1  : -1, 0.1          -> 2
	//   le=1    : 0.100001, 1      -> 2
	//   le=10   : 5, 10            -> 2
	//   le=+Inf : 11               -> 1
	want := []uint64{2, 2, 2, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if got := h.Count(); got != 7 {
		t.Fatalf("count = %d, want 7", got)
	}
}

// TestWritePrometheusGolden locks the exposition format byte-for-byte.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("deepcat_requests_total", "endpoint", "suggest", "code", "200").Add(3)
	r.Counter("deepcat_requests_total", "endpoint", "observe", "code", "200").Add(2)
	r.Gauge("deepcat_inflight").Set(1)
	h := r.Histogram("deepcat_latency_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE deepcat_inflight gauge
deepcat_inflight 1
# TYPE deepcat_latency_seconds histogram
deepcat_latency_seconds_bucket{le="0.1"} 1
deepcat_latency_seconds_bucket{le="1"} 2
deepcat_latency_seconds_bucket{le="+Inf"} 3
deepcat_latency_seconds_sum 2.55
deepcat_latency_seconds_count 3
# TYPE deepcat_requests_total counter
deepcat_requests_total{endpoint="observe",code="200"} 2
deepcat_requests_total{endpoint="suggest",code="200"} 3
`
	if b.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// TestNopRegistry verifies the no-op path a daemon without -metrics-addr
// takes: nil registry, nil instruments, no panics, no output.
func TestNopRegistry(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total")
	g := r.Gauge("x")
	h := r.Histogram("x_seconds", nil)
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Dec()
	h.Observe(1.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments retained state")
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil || b.Len() != 0 {
		t.Fatalf("nil registry wrote %q, err %v", b.String(), err)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("deepcat_mixed")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("deepcat_mixed")
}
