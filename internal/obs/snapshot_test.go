package obs

import (
	"strings"
	"testing"
)

func TestSnapshotMergeSumsAcrossShards(t *testing.T) {
	a := NewRegistry()
	a.Counter("deepcat_requests_total", "endpoint", "suggest").Add(3)
	a.Gauge("deepcat_inflight").Set(2)
	ha := a.Histogram("deepcat_latency_seconds", []float64{0.1, 1})
	ha.Observe(0.05)
	ha.Observe(2)

	b := NewRegistry()
	b.Counter("deepcat_requests_total", "endpoint", "suggest").Add(4)
	b.Gauge("deepcat_inflight").Set(5)
	hb := b.Histogram("deepcat_latency_seconds", []float64{0.1, 1})
	hb.Observe(0.5)

	merged := a.Snapshot()
	if err := merged.Merge(b.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if got := merged.CounterTotal("deepcat_requests_total"); got != 7 {
		t.Errorf("counter total = %d, want 7", got)
	}
	if got, _ := merged.GaugeValue("deepcat_inflight"); got != 7 {
		t.Errorf("gauge sum = %d, want 7", got)
	}
	for _, ins := range merged.Instruments {
		if ins.Name == "deepcat_inflight" && ins.GaugeMax != 5 {
			t.Errorf("gauge max = %d, want 5 (hottest shard)", ins.GaugeMax)
		}
	}
	h := merged.HistogramTotal("deepcat_latency_seconds")
	if h == nil || h.Count != 3 {
		t.Fatalf("merged histogram = %+v, want count 3", h)
	}
	// One observation per bucket: 0.05 in le=0.1, 0.5 in le=1, 2 in +Inf.
	if h.Counts[0] != 1 || h.Counts[1] != 1 || h.Counts[2] != 1 {
		t.Errorf("bucket counts = %v, want [1 1 1]", h.Counts)
	}
}

// TestSnapshotMergeRejectsMismatchedBuckets pins the layout guard: two
// shards running different builds with different bucket boundaries must
// fail the merge loudly instead of silently adding unlike buckets.
func TestSnapshotMergeRejectsMismatchedBuckets(t *testing.T) {
	a := NewRegistry()
	a.Histogram("deepcat_latency_seconds", []float64{0.1, 1}).Observe(0.5)
	b := NewRegistry()
	b.Histogram("deepcat_latency_seconds", []float64{0.1, 1, 10}).Observe(0.5)

	snap := a.Snapshot()
	if err := snap.Merge(b.Snapshot()); err == nil {
		t.Fatal("merging histograms with different bucket layouts did not error")
	}

	c := NewRegistry()
	c.Histogram("deepcat_latency_seconds", []float64{0.1, 2}).Observe(0.5)
	snap = a.Snapshot()
	if err := snap.Merge(c.Snapshot()); err == nil {
		t.Fatal("merging histograms with different bucket bounds did not error")
	}
}

// TestSnapshotMergeKindMismatch: the same name snapshotted as a counter on
// one shard and a gauge on another cannot be combined.
func TestSnapshotMergeKindMismatch(t *testing.T) {
	a := NewRegistry()
	a.Counter("deepcat_thing").Add(1)
	b := NewRegistry()
	b.Gauge("deepcat_thing").Set(1)

	snap := a.Snapshot()
	if err := snap.Merge(b.Snapshot()); err == nil {
		t.Fatal("merging a counter with a gauge of the same name did not error")
	}
}

func TestSnapshotMergeEmptyHistogram(t *testing.T) {
	a := NewRegistry()
	ha := a.Histogram("deepcat_latency_seconds", []float64{0.1, 1})
	ha.Observe(0.05)
	b := NewRegistry()
	b.Histogram("deepcat_latency_seconds", []float64{0.1, 1}) // registered, never observed

	// Empty into populated.
	snap := a.Snapshot()
	if err := snap.Merge(b.Snapshot()); err != nil {
		t.Fatalf("merging an empty histogram: %v", err)
	}
	if h := snap.HistogramTotal("deepcat_latency_seconds"); h == nil || h.Count != 1 || h.Sum != 0.05 {
		t.Errorf("merged = %+v, want count 1 sum 0.05", snap.HistogramTotal("deepcat_latency_seconds"))
	}

	// Populated into empty.
	snap = b.Snapshot()
	if err := snap.Merge(a.Snapshot()); err != nil {
		t.Fatalf("merging into an empty histogram: %v", err)
	}
	if h := snap.HistogramTotal("deepcat_latency_seconds"); h == nil || h.Count != 1 {
		t.Errorf("merged = %+v, want count 1", snap.HistogramTotal("deepcat_latency_seconds"))
	}

	// Empty into empty, plus merging into a zero-value Snapshot.
	var zero Snapshot
	if err := zero.Merge(b.Snapshot()); err != nil {
		t.Fatalf("merging into zero snapshot: %v", err)
	}
	if h := zero.HistogramTotal("deepcat_latency_seconds"); h == nil || h.Count != 0 {
		t.Errorf("zero merge = %+v, want empty histogram present", h)
	}
}

// TestSnapshotMergedPrometheusGolden pins the exposition of a merged
// snapshot — bucket, _sum and _count lines must reflect the fleet-wide
// totals in the exact format a single registry would emit.
func TestSnapshotMergedPrometheusGolden(t *testing.T) {
	a := NewRegistry()
	ha := a.Histogram("deepcat_latency_seconds", []float64{0.1, 1})
	ha.Observe(0.05)
	ha.Observe(2)
	a.Counter("deepcat_requests_total", "endpoint", "suggest").Add(3)

	b := NewRegistry()
	hb := b.Histogram("deepcat_latency_seconds", []float64{0.1, 1})
	hb.Observe(0.5)
	b.Counter("deepcat_requests_total", "endpoint", "suggest").Add(2)

	merged := a.Snapshot()
	if err := merged.Merge(b.Snapshot()); err != nil {
		t.Fatal(err)
	}
	merged.SetGauge("deepcat_fleet_shard_up", 1, "shard", "http://a")

	var out strings.Builder
	if err := merged.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE deepcat_fleet_shard_up gauge
deepcat_fleet_shard_up{shard="http://a"} 1
# TYPE deepcat_latency_seconds histogram
deepcat_latency_seconds_bucket{le="0.1"} 1
deepcat_latency_seconds_bucket{le="1"} 2
deepcat_latency_seconds_bucket{le="+Inf"} 3
deepcat_latency_seconds_sum 2.55
deepcat_latency_seconds_count 3
# TYPE deepcat_requests_total counter
deepcat_requests_total{endpoint="suggest"} 5
`
	if out.String() != want {
		t.Fatalf("merged exposition mismatch:\n--- got ---\n%s--- want ---\n%s", out.String(), want)
	}
}
