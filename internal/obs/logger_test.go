package obs

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

// fixedClock makes log lines deterministic.
func fixedClock() time.Time {
	return time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
}

func TestLoggerFormat(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, LevelDebug)
	l.now = fixedClock
	l.Info("session created", "id", "s-1f", "warm", true, "iters", 25)
	l.Warn("slow suggest", "dur", 1500*time.Millisecond)
	l.Error("boom", "err", errors.New("disk full: no space"))

	want := `time=2026-08-05T12:00:00.000Z level=info msg="session created" id=s-1f warm=true iters=25
time=2026-08-05T12:00:00.000Z level=warn msg="slow suggest" dur=1.5s
time=2026-08-05T12:00:00.000Z level=error msg=boom err="disk full: no space"
`
	if b.String() != want {
		t.Fatalf("log mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

func TestLoggerLevelFiltering(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, LevelWarn)
	l.now = fixedClock
	l.Debug("hidden")
	l.Info("hidden too")
	l.Warn("visible")
	if got := b.String(); strings.Contains(got, "hidden") || !strings.Contains(got, "visible") {
		t.Fatalf("level filtering broken: %q", got)
	}
	if l.Enabled(LevelInfo) || !l.Enabled(LevelError) {
		t.Fatal("Enabled disagrees with the configured level")
	}
}

func TestLoggerWith(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, LevelInfo).With("request_id", "r-abc")
	l.now = fixedClock
	l.Info("handled", "code", 200)
	got := b.String()
	if !strings.Contains(got, "request_id=r-abc") || !strings.Contains(got, "code=200") {
		t.Fatalf("With context missing: %q", got)
	}
}

func TestNilLogger(t *testing.T) {
	var l *Logger
	l.Debug("x")
	l.Info("x", "k", "v")
	l.Warn("x")
	l.Error("x")
	if l.With("k", "v") != nil {
		t.Fatal("nil logger With should stay nil")
	}
	if l.Enabled(LevelError) {
		t.Fatal("nil logger reports enabled")
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "WARN": LevelWarn, "error": LevelError,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel accepted junk")
	}
}

func TestOddKeyValuePairs(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, LevelInfo)
	l.now = fixedClock
	l.Info("odd", "k1", "v1", "dangling")
	if got := b.String(); !strings.Contains(got, "!extra=dangling") {
		t.Fatalf("dangling value dropped: %q", got)
	}
}

func TestLoggerJSONFormat(t *testing.T) {
	var b strings.Builder
	l := NewLoggerFormat(&b, LevelDebug, FormatJSON)
	l.now = fixedClock
	l.Info("session created", "id", "s-1f", "warm", true, "iters", 25, "ratio", 0.5)
	l.Warn("slow suggest", "dur", 1500*time.Millisecond)
	l.Error("boom", "err", errors.New(`disk "full"`))

	want := `{"time":"2026-08-05T12:00:00.000Z","level":"info","msg":"session created","id":"s-1f","warm":true,"iters":25,"ratio":0.5}
{"time":"2026-08-05T12:00:00.000Z","level":"warn","msg":"slow suggest","dur":"1.5s"}
{"time":"2026-08-05T12:00:00.000Z","level":"error","msg":"boom","err":"disk \"full\""}
`
	if b.String() != want {
		t.Fatalf("json log mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}

	// Every line must parse as standalone JSON with the expected fields.
	for _, line := range strings.Split(strings.TrimSpace(b.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line is not valid JSON: %v\n%s", err, line)
		}
		for _, key := range []string{"time", "level", "msg"} {
			if _, ok := rec[key]; !ok {
				t.Fatalf("line missing %q: %s", key, line)
			}
		}
	}
}

func TestLoggerJSONWith(t *testing.T) {
	var b strings.Builder
	l := NewLoggerFormat(&b, LevelInfo, FormatJSON).With("request_id", "r-abc", "n", 7)
	l.now = fixedClock
	l.Info("handled", "code", 200)
	var rec map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(b.String())), &rec); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, b.String())
	}
	if rec["request_id"] != "r-abc" || rec["n"] != float64(7) || rec["code"] != float64(200) {
		t.Fatalf("bound context lost: %v", rec)
	}
}

func TestParseFormat(t *testing.T) {
	for s, want := range map[string]Format{"kv": FormatKV, "text": FormatKV, "JSON": FormatJSON, "": FormatKV} {
		got, err := ParseFormat(s)
		if err != nil || got != want {
			t.Fatalf("ParseFormat(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseFormat("yaml"); err == nil {
		t.Fatal("ParseFormat accepted junk")
	}
}

// TestLoggerJSONEscaping pins the JSON logger's handling of hostile value
// bytes: control characters, '=' and quotes must survive a round trip
// through encoding and never appear raw on the wire, where they would
// corrupt line-oriented log shippers.
func TestLoggerJSONEscaping(t *testing.T) {
	var b strings.Builder
	l := NewLoggerFormat(&b, LevelDebug, FormatJSON)
	l.now = fixedClock
	msg := "weird \"msg\" \x01with ctl"
	val := "a=b\nc\td\x00e\"f"
	l.Info(msg, "key \"with\" quotes", val, "plain", "ok")

	line := b.String()
	if !strings.HasSuffix(line, "\n") {
		t.Fatalf("line not newline-terminated: %q", line)
	}
	for i := 0; i < len(line)-1; i++ {
		if line[i] < 0x20 {
			t.Fatalf("raw control byte 0x%02x at offset %d on the wire: %q", line[i], i, line)
		}
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(line), &doc); err != nil {
		t.Fatalf("line is not valid JSON: %v\n%q", err, line)
	}
	if doc["msg"] != msg {
		t.Errorf("msg round-trip: got %q, want %q", doc["msg"], msg)
	}
	if doc[`key "with" quotes`] != val {
		t.Errorf("value round-trip: got %q, want %q", doc[`key "with" quotes`], val)
	}
	if doc["plain"] != "ok" {
		t.Errorf("plain value: got %q", doc["plain"])
	}
}

// TestLoggerKVEscaping pins the key=value format: values carrying '=',
// quotes or control characters are strconv-quoted so the line stays
// splittable on spaces and parseable with strconv.Unquote.
func TestLoggerKVEscaping(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, LevelDebug)
	l.now = fixedClock
	l.Info("m", "eq", "a=b", "ctl", "x\x01y", "tab", "x\ty", "quote", `x"y`)

	line := strings.TrimSuffix(b.String(), "\n")
	for i := 0; i < len(line); i++ {
		if line[i] < 0x20 {
			t.Fatalf("raw control byte 0x%02x on the wire: %q", line[i], line)
		}
	}
	for _, want := range []string{`eq="a=b"`, `ctl="x\x01y"`, `tab="x\ty"`, `quote="x\"y"`} {
		if !strings.Contains(line, want) {
			t.Errorf("line missing %s:\n%q", want, line)
		}
	}
}
