package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Level orders log severities.
type Level int32

// Severity levels, least to most severe.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the lowercase level name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return fmt.Sprintf("level(%d)", int(l))
}

// ParseLevel maps a flag value ("debug", "info", "warn", "error") to a
// Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q", s)
}

// Format selects the line encoding of a Logger.
type Format int

const (
	// FormatKV is the default human-oriented key=value encoding.
	FormatKV Format = iota
	// FormatJSON writes one JSON object per line with the same fields as
	// FormatKV (time, level, msg, then the pairs), for log pipelines that
	// ingest structured records.
	FormatJSON
)

// ParseFormat maps a flag value ("kv", "json") to a Format.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(s) {
	case "kv", "text", "":
		return FormatKV, nil
	case "json":
		return FormatJSON, nil
	}
	return FormatKV, fmt.Errorf("obs: unknown log format %q", s)
}

// output is the shared sink behind a Logger and all its With children, so
// concurrent writes from different derived loggers never interleave.
type output struct {
	mu sync.Mutex
	w  io.Writer
}

// Logger writes leveled key=value lines:
//
//	time=2026-08-05T12:00:00.000Z level=info msg="session created" id=s-1f
//
// or, under FormatJSON, the same record as one JSON object per line:
//
//	{"time":"2026-08-05T12:00:00.000Z","level":"info","msg":"session created","id":"s-1f"}
//
// A nil *Logger discards everything, so call sites never branch.
type Logger struct {
	out    *output
	min    Level
	format Format
	ctx    string // pre-rendered bound pairs in the logger's format
	now    func() time.Time
}

// NewLogger returns a key=value logger writing lines at or above min to w.
func NewLogger(w io.Writer, min Level) *Logger {
	return NewLoggerFormat(w, min, FormatKV)
}

// NewLoggerFormat is NewLogger with an explicit line format.
func NewLoggerFormat(w io.Writer, min Level, format Format) *Logger {
	return &Logger{out: &output{w: w}, min: min, format: format, now: time.Now}
}

// With returns a child logger with kv (alternating key, value) appended to
// every line. The child shares the parent's writer, level and format.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil || len(kv) == 0 {
		return l
	}
	var b strings.Builder
	b.WriteString(l.ctx)
	if l.format == FormatJSON {
		appendPairsJSON(&b, kv)
	} else {
		appendPairs(&b, kv)
	}
	return &Logger{out: l.out, min: l.min, format: l.format, ctx: b.String(), now: l.now}
}

// Enabled reports whether level would be written; guard expensive argument
// construction with it.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level >= l.min
}

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(level Level, msg string, kv []any) {
	if !l.Enabled(level) {
		return
	}
	var b strings.Builder
	if l.format == FormatJSON {
		b.WriteString(`{"time":"`)
		b.WriteString(l.now().UTC().Format("2006-01-02T15:04:05.000Z"))
		b.WriteString(`","level":"`)
		b.WriteString(level.String())
		b.WriteString(`","msg":`)
		b.WriteString(jsonValue(msg))
		b.WriteString(l.ctx)
		appendPairsJSON(&b, kv)
		b.WriteByte('}')
	} else {
		b.WriteString("time=")
		b.WriteString(l.now().UTC().Format("2006-01-02T15:04:05.000Z"))
		b.WriteString(" level=")
		b.WriteString(level.String())
		b.WriteString(" msg=")
		b.WriteString(formatValue(msg))
		b.WriteString(l.ctx)
		appendPairs(&b, kv)
	}
	b.WriteByte('\n')
	l.out.mu.Lock()
	defer l.out.mu.Unlock()
	_, _ = io.WriteString(l.out.w, b.String())
}

// appendPairs renders alternating key/value arguments; a trailing odd
// value is logged under the key "!extra" rather than dropped.
func appendPairs(b *strings.Builder, kv []any) {
	for i := 0; i+1 < len(kv); i += 2 {
		b.WriteByte(' ')
		b.WriteString(formatKey(kv[i]))
		b.WriteByte('=')
		b.WriteString(formatValue(kv[i+1]))
	}
	if len(kv)%2 != 0 {
		b.WriteString(" !extra=")
		b.WriteString(formatValue(kv[len(kv)-1]))
	}
}

func formatKey(k any) string {
	s, ok := k.(string)
	if !ok {
		s = fmt.Sprint(k)
	}
	if needsQuoting(s) {
		return strconv.Quote(s)
	}
	return s
}

// needsQuoting reports whether a key=value token must be quoted to keep
// the line parseable: empty, containing separator bytes (space, '=',
// quote, newline) or any control character.
func needsQuoting(s string) bool {
	if s == "" || strings.ContainsAny(s, " =\"\n") {
		return true
	}
	for _, r := range s {
		if r < 0x20 || r == 0x7f {
			return true
		}
	}
	return false
}

// appendPairsJSON is appendPairs for FormatJSON: each pair is rendered as
// `,"key":value` with native JSON numbers and booleans.
func appendPairsJSON(b *strings.Builder, kv []any) {
	for i := 0; i+1 < len(kv); i += 2 {
		b.WriteByte(',')
		b.WriteString(jsonKey(kv[i]))
		b.WriteByte(':')
		b.WriteString(jsonValue(kv[i+1]))
	}
	if len(kv)%2 != 0 {
		b.WriteString(`,"!extra":`)
		b.WriteString(jsonValue(kv[len(kv)-1]))
	}
}

func jsonKey(k any) string {
	s, ok := k.(string)
	if !ok {
		s = fmt.Sprint(k)
	}
	out, _ := json.Marshal(s)
	return string(out)
}

// jsonValue renders a value as a JSON token. Numbers and booleans stay
// native; errors, Stringers and Durations become their string form; types
// json cannot marshal fall back to their fmt.Sprint rendering.
func jsonValue(v any) string {
	switch t := v.(type) {
	case error:
		v = t.Error()
	case time.Duration:
		v = t.String()
	case fmt.Stringer:
		v = t.String()
	}
	out, err := json.Marshal(v)
	if err != nil {
		out, _ = json.Marshal(fmt.Sprint(v))
	}
	return string(out)
}

func formatValue(v any) string {
	var s string
	switch t := v.(type) {
	case string:
		s = t
	case error:
		s = t.Error()
	case time.Duration:
		s = t.String()
	case fmt.Stringer:
		s = t.String()
	default:
		s = fmt.Sprint(v)
	}
	if needsQuoting(s) {
		return strconv.Quote(s)
	}
	return s
}
