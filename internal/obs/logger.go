package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Level orders log severities.
type Level int32

// Severity levels, least to most severe.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the lowercase level name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return fmt.Sprintf("level(%d)", int(l))
}

// ParseLevel maps a flag value ("debug", "info", "warn", "error") to a
// Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q", s)
}

// output is the shared sink behind a Logger and all its With children, so
// concurrent writes from different derived loggers never interleave.
type output struct {
	mu sync.Mutex
	w  io.Writer
}

// Logger writes leveled key=value lines:
//
//	time=2026-08-05T12:00:00.000Z level=info msg="session created" id=s-1f
//
// A nil *Logger discards everything, so call sites never branch.
type Logger struct {
	out *output
	min Level
	ctx string // pre-rendered bound key=value pairs, leading space included
	now func() time.Time
}

// NewLogger returns a logger writing lines at or above min to w.
func NewLogger(w io.Writer, min Level) *Logger {
	return &Logger{out: &output{w: w}, min: min, now: time.Now}
}

// With returns a child logger with kv (alternating key, value) appended to
// every line. The child shares the parent's writer and level.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil || len(kv) == 0 {
		return l
	}
	var b strings.Builder
	b.WriteString(l.ctx)
	appendPairs(&b, kv)
	return &Logger{out: l.out, min: l.min, ctx: b.String(), now: l.now}
}

// Enabled reports whether level would be written; guard expensive argument
// construction with it.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level >= l.min
}

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(level Level, msg string, kv []any) {
	if !l.Enabled(level) {
		return
	}
	var b strings.Builder
	b.WriteString("time=")
	b.WriteString(l.now().UTC().Format("2006-01-02T15:04:05.000Z"))
	b.WriteString(" level=")
	b.WriteString(level.String())
	b.WriteString(" msg=")
	b.WriteString(formatValue(msg))
	b.WriteString(l.ctx)
	appendPairs(&b, kv)
	b.WriteByte('\n')
	l.out.mu.Lock()
	defer l.out.mu.Unlock()
	_, _ = io.WriteString(l.out.w, b.String())
}

// appendPairs renders alternating key/value arguments; a trailing odd
// value is logged under the key "!extra" rather than dropped.
func appendPairs(b *strings.Builder, kv []any) {
	for i := 0; i+1 < len(kv); i += 2 {
		b.WriteByte(' ')
		b.WriteString(formatKey(kv[i]))
		b.WriteByte('=')
		b.WriteString(formatValue(kv[i+1]))
	}
	if len(kv)%2 != 0 {
		b.WriteString(" !extra=")
		b.WriteString(formatValue(kv[len(kv)-1]))
	}
}

func formatKey(k any) string {
	s, ok := k.(string)
	if !ok {
		s = fmt.Sprint(k)
	}
	if strings.ContainsAny(s, " =\"\n") {
		return strconv.Quote(s)
	}
	return s
}

func formatValue(v any) string {
	var s string
	switch t := v.(type) {
	case string:
		s = t
	case error:
		s = t.Error()
	case time.Duration:
		s = t.String()
	case fmt.Stringer:
		s = t.String()
	default:
		s = fmt.Sprint(v)
	}
	if s == "" || strings.ContainsAny(s, " =\"\n") {
		return strconv.Quote(s)
	}
	return s
}
