// Package obs is the observability layer: a dependency-free metrics
// registry (atomic counters, gauges and fixed-bucket histograms with
// Prometheus text exposition) and a leveled structured logger. The whole
// stack — HTTP server, tuning sessions, experience warehouse — records into
// it, and cmd/deepcat-serve exposes it on a separate listener so profiling
// and scraping never share the tuning port.
//
// Every constructor is nil-safe: methods on a nil *Registry return nil
// instruments, and methods on nil instruments are no-ops, so a daemon run
// without -metrics-addr pays only a nil check per recording site.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency buckets in seconds, spanning the
// sub-millisecond HTTP bookkeeping path up to multi-second donor trainings.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets. Buckets are upper
// bounds (inclusive, Prometheus `le` semantics) with an implicit +Inf.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // per-bucket, len(bounds)+1; cumulated at exposition
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Leftmost bucket with bounds[i] >= v — the inclusive `le` bucket; the
	// +Inf bucket at len(bounds) catches everything past the last bound.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// NewHistogram returns an unregistered histogram over the given bucket
// bounds (sorted ascending; nil selects DefBuckets). Tools that aggregate
// measurements without exposing a scrape endpoint — the fleet load
// generator's latency report, for one — use it directly.
func NewHistogram(buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	return &Histogram{
		bounds: append([]float64(nil), buckets...),
		counts: make([]atomic.Uint64, len(buckets)+1),
	}
}

// Quantile estimates the q-quantile (q in [0,1]) of the observed values by
// linear interpolation within the bucket holding it. Values beyond the
// last finite bound are clamped to it; an empty histogram reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || len(h.bounds) == 0 {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum uint64
	for i, bound := range h.bounds {
		n := h.counts[i].Load()
		if float64(cum)+float64(n) >= rank {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			if n == 0 {
				return bound
			}
			frac := (rank - float64(cum)) / float64(n)
			return lower + frac*(bound-lower)
		}
		cum += n
	}
	// The quantile lands in the +Inf bucket; the last finite bound is the
	// best statement the fixed buckets can make.
	return h.bounds[len(h.bounds)-1]
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// kind tags what an instrument is, for exposition TYPE lines.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// instrument is one registered metric: a family name, an optional rendered
// label set, and exactly one of the three value holders.
type instrument struct {
	name   string
	labels string // `k="v",k2="v2"` or ""
	kind   kind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds the registered instruments. A nil *Registry is the no-op
// registry: its methods return nil instruments whose methods do nothing.
type Registry struct {
	mu          sync.Mutex
	instruments map[string]*instrument
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{instruments: make(map[string]*instrument)}
}

// Counter registers (or returns the existing) counter under name with the
// given label pairs ("key", "value", ...).
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	ins := r.lookup(name, kindCounter, labels)
	return ins.c
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	ins := r.lookup(name, kindGauge, labels)
	return ins.g
}

// Histogram registers (or returns the existing) histogram. A nil buckets
// slice selects DefBuckets; bounds must be sorted ascending.
func (r *Registry) Histogram(name string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	ins := r.lookupHistogram(name, buckets, labels)
	return ins.h
}

func (r *Registry) lookup(name string, k kind, labels []string) *instrument {
	ls := renderLabels(labels)
	key := name + "{" + ls + "}"
	r.mu.Lock()
	defer r.mu.Unlock()
	if ins, ok := r.instruments[key]; ok {
		if ins.kind != k {
			panic(fmt.Sprintf("obs: %s re-registered as %s, was %s", name, k, ins.kind))
		}
		return ins
	}
	ins := &instrument{name: name, labels: ls, kind: k}
	switch k {
	case kindCounter:
		ins.c = &Counter{}
	case kindGauge:
		ins.g = &Gauge{}
	}
	r.instruments[key] = ins
	return ins
}

func (r *Registry) lookupHistogram(name string, buckets []float64, labels []string) *instrument {
	ls := renderLabels(labels)
	key := name + "{" + ls + "}"
	r.mu.Lock()
	defer r.mu.Unlock()
	if ins, ok := r.instruments[key]; ok {
		if ins.kind != kindHistogram {
			panic(fmt.Sprintf("obs: %s re-registered as histogram, was %s", name, ins.kind))
		}
		return ins
	}
	h := &Histogram{
		bounds: append([]float64(nil), buckets...),
		counts: make([]atomic.Uint64, len(buckets)+1),
	}
	ins := &instrument{name: name, labels: ls, kind: kindHistogram, h: h}
	r.instruments[key] = ins
	return ins
}

// renderLabels formats alternating key/value pairs as `k="v",k2="v2"`.
// Values are escaped per the Prometheus text format.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("obs: odd number of label arguments")
	}
	var b strings.Builder
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[i+1]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// WritePrometheus writes every registered instrument in the Prometheus
// text exposition format, sorted by name then labels, with one # TYPE line
// per family. It delegates to the snapshot writer, so a merged fleet
// snapshot and a live registry render identically.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	return r.Snapshot().WritePrometheus(w)
}

func formatFloat(f float64) string {
	s := fmt.Sprintf("%g", f)
	return s
}

// Handler returns an http.Handler serving the exposition; mount it at
// /metrics. A nil registry serves an empty (but valid) page.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
