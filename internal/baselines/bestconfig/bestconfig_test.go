package bestconfig

import (
	"math/rand"
	"testing"
	"testing/quick"

	"deepcat/internal/env"
	"deepcat/internal/sparksim"
)

func testEnv(t *testing.T) *env.SparkEnv {
	t.Helper()
	sim := sparksim.NewSimulator(sparksim.ClusterA(), 1)
	ts, err := sparksim.WorkloadByShort("TS")
	if err != nil {
		t.Fatal(err)
	}
	return env.NewSparkEnv(sim, ts, 0)
}

func TestNewValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := New(rng, Config{SamplesPerRound: 0, Shrink: 2}); err == nil {
		t.Fatal("zero samples accepted")
	}
	if _, err := New(rng, Config{SamplesPerRound: 5, Shrink: 0}); err == nil {
		t.Fatal("zero shrink accepted")
	}
	if _, err := New(rng, DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestDDSLatinHypercubeProperty(t *testing.T) {
	// Each dimension's k intervals must each contain exactly one sample.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b, err := New(rng, DefaultConfig())
		if err != nil {
			return false
		}
		dim := 1 + int(rng.Int31n(8))
		k := 2 + int(rng.Int31n(8))
		lo := make([]float64, dim)
		hi := make([]float64, dim)
		for d := range hi {
			lo[d] = rng.Float64() * 0.3
			hi[d] = 0.7 + rng.Float64()*0.3
		}
		batch := b.ddsSample(lo, hi, k)
		for d := 0; d < dim; d++ {
			seen := make([]bool, k)
			width := (hi[d] - lo[d]) / float64(k)
			for _, u := range batch {
				if u[d] < lo[d] || u[d] > hi[d] {
					return false
				}
				cell := int((u[d] - lo[d]) / width)
				if cell == k {
					cell = k - 1
				}
				if seen[cell] {
					return false // two samples in one interval
				}
				seen[cell] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestOnlineTuneBudgetRespected(t *testing.T) {
	e := testEnv(t)
	b, _ := New(rand.New(rand.NewSource(2)), DefaultConfig())
	for _, budget := range []int{3, 5, 12} {
		rep := b.OnlineTune(e, budget)
		if len(rep.Steps) != budget {
			t.Fatalf("budget %d: %d steps", budget, len(rep.Steps))
		}
	}
}

func TestOnlineTuneImprovesWithBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping search test in -short mode")
	}
	e := testEnv(t)
	// Average over seeds: a larger budget must find a better (or equal)
	// configuration — the monotonicity the RBS recursion provides.
	const seeds = 5
	var small, large float64
	for s := int64(0); s < seeds; s++ {
		b1, _ := New(rand.New(rand.NewSource(10+s)), DefaultConfig())
		small += b1.OnlineTune(e, 5).BestTime / seeds
		b2, _ := New(rand.New(rand.NewSource(10+s)), DefaultConfig())
		large += b2.OnlineTune(e, 30).BestTime / seeds
	}
	if large >= small {
		t.Fatalf("30-step search (%.1fs) not better than 5-step (%.1fs)", large, small)
	}
	// And even the small budget beats the default on average.
	if small >= e.DefaultTime() {
		t.Fatalf("5-step search %.1fs worse than default %.1fs", small, e.DefaultTime())
	}
}

func TestSearchIsStateless(t *testing.T) {
	// Two sessions with the same seed produce identical step sequences:
	// BestConfig restarts from scratch each request.
	e := testEnv(t)
	b1, _ := New(rand.New(rand.NewSource(3)), DefaultConfig())
	b2, _ := New(rand.New(rand.NewSource(3)), DefaultConfig())
	r1 := b1.OnlineTune(e, 10)
	r2 := b2.OnlineTune(e, 10)
	for i := range r1.Steps {
		if r1.Steps[i].ExecTime != r2.Steps[i].ExecTime {
			t.Fatal("same-seed sessions diverged")
		}
	}
}

func TestAllFailedRoundKeepsSearching(t *testing.T) {
	// An environment where everything fails must not wedge the search box.
	fe := failingEnv{testEnv(t)}
	b, _ := New(rand.New(rand.NewSource(4)), DefaultConfig())
	rep := b.OnlineTune(fe, 10)
	if len(rep.Steps) != 10 {
		t.Fatalf("steps = %d", len(rep.Steps))
	}
	if rep.BestAction != nil {
		t.Fatal("best action recorded despite universal failure")
	}
}

// failingEnv wraps an environment and fails every evaluation.
type failingEnv struct{ *env.SparkEnv }

func (f failingEnv) Evaluate(u []float64) env.Outcome {
	o := f.SparkEnv.Evaluate(u)
	o.Failed = true
	return o
}
