// Package bestconfig implements the BestConfig baseline (Zhu et al., SoCC
// 2017), the search-based family the paper discusses in §1 and §6: divide-
// and-diverge sampling (DDS) over the configuration space followed by
// recursive bound-and-search (RBS) around the incumbent best point.
//
// The paper omits BestConfig from its head-to-head evaluation because
// search-based methods "need a large number of time-consuming configuration
// evaluations and restart from scratch whenever a new tuning request
// comes"; this implementation exists to make that argument measurable: the
// extension benchmarks run BestConfig at the DRL approaches' 5-step budget
// (where it barely improves on random sampling) and at several times that
// budget (where it becomes competitive but costs proportionally more).
package bestconfig

import (
	"fmt"
	"math/rand"
	"time"

	"deepcat/internal/env"
	"deepcat/internal/mat"
)

// Config collects BestConfig's knobs.
type Config struct {
	// SamplesPerRound is the DDS sample count per round (each round is one
	// Latin-hypercube-style divide-and-diverge batch).
	SamplesPerRound int
	// Shrink is the RBS bounding factor: after each round the search box
	// contracts to Shrink times the interval width around the incumbent in
	// every dimension.
	Shrink float64
}

// DefaultConfig returns the settings used by the extension benchmarks.
func DefaultConfig() Config {
	return Config{SamplesPerRound: 5, Shrink: 2.0}
}

// BestConfig is the search-based tuner. It holds no learned state: every
// tuning request starts from scratch, which is exactly the cost profile the
// paper contrasts with DRL fine-tuning.
type BestConfig struct {
	Cfg Config
	rng *rand.Rand
}

// New constructs a BestConfig tuner.
func New(rng *rand.Rand, cfg Config) (*BestConfig, error) {
	if cfg.SamplesPerRound <= 0 {
		return nil, fmt.Errorf("bestconfig: non-positive samples per round")
	}
	if cfg.Shrink <= 0 {
		return nil, fmt.Errorf("bestconfig: non-positive shrink factor")
	}
	return &BestConfig{Cfg: cfg, rng: rng}, nil
}

// ddsSample draws k divide-and-diverge samples inside the box [lo, hi]^d:
// each dimension is split into k equal intervals and each sample occupies a
// distinct interval per dimension (a Latin hypercube), so the batch both
// divides the space and diverges across it.
func (b *BestConfig) ddsSample(lo, hi []float64, k int) [][]float64 {
	dim := len(lo)
	out := make([][]float64, k)
	for i := range out {
		out[i] = make([]float64, dim)
	}
	for d := 0; d < dim; d++ {
		perm := b.rng.Perm(k)
		width := (hi[d] - lo[d]) / float64(k)
		for i := 0; i < k; i++ {
			cell := float64(perm[i])
			out[i][d] = lo[d] + width*(cell+b.rng.Float64())
		}
	}
	return out
}

// OnlineTune searches environment e with a budget of totalSteps
// evaluations: rounds of DDS sampling, each followed by RBS bounding around
// the best point found so far.
func (b *BestConfig) OnlineTune(e env.Environment, totalSteps int) *env.Report {
	rep := &env.Report{Tuner: "BestConfig", EnvLabel: e.Label(), BestTime: 1e18}
	dim := e.Space().Dim()
	lo := make([]float64, dim)
	hi := make([]float64, dim)
	for d := range hi {
		hi[d] = 1
	}

	remaining := totalSteps
	for remaining > 0 {
		k := b.Cfg.SamplesPerRound
		if k > remaining {
			k = remaining
		}
		recStart := time.Now()
		batch := b.ddsSample(lo, hi, k)
		rec := time.Since(recStart).Seconds() / float64(k)

		roundBestIdx := -1
		roundBest := 1e18
		for _, u := range batch {
			outcome := e.Evaluate(u)
			rep.Steps = append(rep.Steps, env.TuningStep{
				Action:           mat.CloneSlice(u),
				ExecTime:         outcome.ExecTime,
				RecommendSeconds: rec,
				Failed:           outcome.Failed,
			})
			if !outcome.Failed && outcome.ExecTime < rep.BestTime {
				rep.BestTime = outcome.ExecTime
				rep.BestAction = mat.CloneSlice(u)
			}
			if !outcome.Failed && outcome.ExecTime < roundBest {
				roundBest = outcome.ExecTime
				roundBestIdx = len(rep.Steps) - 1
			}
			remaining--
		}

		// RBS: bound the next round around the incumbent best. When the
		// whole round failed, keep the current box (diverge again).
		if roundBestIdx >= 0 {
			center := rep.BestAction
			for d := 0; d < dim; d++ {
				width := (hi[d] - lo[d]) / float64(k) * b.Cfg.Shrink
				lo[d] = mat.Clip(center[d]-width/2, 0, 1)
				hi[d] = mat.Clip(center[d]+width/2, 0, 1)
				if hi[d]-lo[d] < 1e-6 { // degenerate box: reopen slightly
					lo[d] = mat.Clip(center[d]-1e-3, 0, 1)
					hi[d] = mat.Clip(center[d]+1e-3, 0, 1)
				}
			}
		}
	}
	return rep
}
