package ottertune

import (
	"math/rand"
	"testing"
)

func TestProjectHelpers(t *testing.T) {
	u := []float64{0.1, 0.2, 0.3, 0.4}
	if got := project(u, nil); &got[0] != &u[0] {
		t.Fatal("nil selection must pass through")
	}
	got := project(u, []int{3, 1})
	if len(got) != 2 || got[0] != 0.4 || got[1] != 0.2 {
		t.Fatalf("project = %v", got)
	}
	all := projectAll([][]float64{u, u}, []int{0})
	if len(all) != 2 || all[0][0] != 0.1 {
		t.Fatalf("projectAll = %v", all)
	}
}

func TestKnobSelectionTunesOnlySelected(t *testing.T) {
	repo, envs := buildTestRepo(t, 60)
	e := envs[3] // TS-D1
	cfg := DefaultConfig()
	cfg.TopKnobs = 6
	cfg.OnlineSteps = 3
	ot, err := New(rand.New(rand.NewSource(8)), repo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := ot.OnlineTune(e, e.Label())
	def := e.Space().DefaultAction()
	for _, st := range rep.Steps {
		// Every recommended action differs from the default in at most
		// TopKnobs coordinates (local candidates perturb around observed
		// actions, which themselves obey the restriction only for random
		// candidates; steps from the random pool must obey it exactly).
		var changed int
		for j := range st.Action {
			if st.Action[j] != def[j] {
				changed++
			}
		}
		if changed > e.Space().Dim() {
			t.Fatalf("impossible changed count %d", changed)
		}
	}
	// The first step has no target observations, so it comes from the
	// random candidate pool and must honor the restriction strictly.
	var changed int
	for j := range rep.Steps[0].Action {
		if rep.Steps[0].Action[j] != def[j] {
			changed++
		}
	}
	if changed > cfg.TopKnobs {
		t.Fatalf("first step changed %d knobs, selection allows %d", changed, cfg.TopKnobs)
	}
}

func TestKnobSelectionStillImproves(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping tuning test in -short mode")
	}
	repo, envs := buildTestRepo(t, 150)
	e := envs[3]
	cfg := DefaultConfig()
	cfg.TopKnobs = 8
	ot, err := New(rand.New(rand.NewSource(9)), repo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := ot.OnlineTune(e, e.Label())
	if rep.BestTime >= e.DefaultTime() {
		t.Fatalf("knob-selected tuning found nothing better than default: %.1f vs %.1f",
			rep.BestTime, e.DefaultTime())
	}
}
