package ottertune

import (
	"math"
	"math/rand"
	"testing"

	"deepcat/internal/env"
	"deepcat/internal/sparksim"
)

func buildTestRepo(t *testing.T, samples int) (*Repository, []env.Environment) {
	t.Helper()
	sim := sparksim.NewSimulator(sparksim.ClusterA(), 1)
	var envs []env.Environment
	for _, p := range sparksim.AllPairs() {
		envs = append(envs, env.NewSparkEnv(sim, p.Workload, p.InputIdx))
	}
	repo := BuildRepository(rand.New(rand.NewSource(4)), envs, samples)
	return repo, envs
}

func TestBuildRepository(t *testing.T) {
	repo, envs := buildTestRepo(t, 30)
	if len(repo.Workloads) != 12 {
		t.Fatalf("workloads = %d", len(repo.Workloads))
	}
	for i, w := range repo.Workloads {
		if w.Label != envs[i].Label() {
			t.Fatalf("label %q != %q", w.Label, envs[i].Label())
		}
		if len(w.X) != 30 || len(w.Y) != 30 {
			t.Fatalf("%s: %d/%d samples", w.Label, len(w.X), len(w.Y))
		}
		if len(w.Signature) != envs[i].MetricsDim() {
			t.Fatalf("%s: signature dim %d", w.Label, len(w.Signature))
		}
		if w.DefaultTime <= 0 {
			t.Fatalf("%s: default time %v", w.Label, w.DefaultTime)
		}
		for _, y := range w.Y {
			if y <= 0 || math.IsNaN(y) {
				t.Fatalf("%s: bad observation %v", w.Label, y)
			}
		}
	}
}

func TestMapWorkloadExcludesSelf(t *testing.T) {
	repo, _ := buildTestRepo(t, 30)
	self := repo.Workloads[3] // TS-D1
	idx := repo.MapWorkload(self.Signature, self.Label)
	if idx < 0 {
		t.Fatal("no mapping found")
	}
	if repo.Workloads[idx].Label == self.Label {
		t.Fatal("mapped to excluded label")
	}
}

func TestMapWorkloadFindsSimilar(t *testing.T) {
	repo, _ := buildTestRepo(t, 30)
	// TS-D2's signature should map to the other large TeraSort input,
	// whose metrics (shuffle-heavy, no caching) are closest. Mapping of
	// the smallest inputs is legitimately ambiguous (sizes dominate some
	// metrics), so the assertion targets the clear-cut case.
	self := repo.Workloads[4] // TS-D2
	idx := repo.MapWorkload(self.Signature, self.Label)
	mapped := repo.Workloads[idx].Label
	if mapped != "TS-D1@cluster-a" && mapped != "TS-D3@cluster-a" {
		t.Fatalf("TS-D2 mapped to %s, want a TeraSort sibling", mapped)
	}
	// And a shuffle-heavy micro benchmark must never map onto the
	// cache-heavy ML workload.
	for _, i := range []int{3, 4, 5} { // TS-D1..D3
		w := repo.Workloads[i]
		m := repo.Workloads[repo.MapWorkload(w.Signature, w.Label)].Label
		if m == "KM-D1@cluster-a" || m == "KM-D2@cluster-a" || m == "KM-D3@cluster-a" {
			t.Fatalf("%s mapped to KMeans (%s)", w.Label, m)
		}
	}
}

func TestNewValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := New(rng, nil, DefaultConfig()); err == nil {
		t.Fatal("nil repository accepted")
	}
	if _, err := New(rng, &Repository{}, DefaultConfig()); err == nil {
		t.Fatal("empty repository accepted")
	}
	repo, _ := buildTestRepo(t, 5)
	cfg := DefaultConfig()
	cfg.OnlineSteps = 0
	if _, err := New(rng, repo, cfg); err == nil {
		t.Fatal("zero steps accepted")
	}
}

func TestOnlineTuneImproves(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping tuning test in -short mode")
	}
	repo, envs := buildTestRepo(t, 150)
	e := envs[3] // TS-D1
	ot, err := New(rand.New(rand.NewSource(5)), repo, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep := ot.OnlineTune(e, e.Label())
	if rep.Tuner != "OtterTune" {
		t.Fatalf("tuner name %q", rep.Tuner)
	}
	if len(rep.Steps) != 5 {
		t.Fatalf("steps = %d", len(rep.Steps))
	}
	if rep.BestTime >= e.DefaultTime() {
		t.Fatalf("best %.1f not better than default %.1f", rep.BestTime, e.DefaultTime())
	}
	// GP retraining dominates recommendation cost; it must be visible.
	if rep.RecommendationCost() <= 0 {
		t.Fatal("recommendation cost not measured")
	}
}

func TestOnlineTuneColdStartMapping(t *testing.T) {
	// Before any target observation exists, mapping falls back to default
	// execution time; the first step must still produce a valid action.
	repo, envs := buildTestRepo(t, 40)
	e := envs[0]
	cfg := DefaultConfig()
	cfg.OnlineSteps = 1
	ot, _ := New(rand.New(rand.NewSource(6)), repo, cfg)
	rep := ot.OnlineTune(e, e.Label())
	if len(rep.Steps) != 1 {
		t.Fatalf("steps = %d", len(rep.Steps))
	}
	a := rep.Steps[0].Action
	if len(a) != e.Space().Dim() {
		t.Fatalf("action dim %d", len(a))
	}
	for _, x := range a {
		if x < 0 || x > 1 {
			t.Fatalf("action coordinate %v outside [0,1]", x)
		}
	}
}

func TestMapByDefaultTime(t *testing.T) {
	repo, _ := buildTestRepo(t, 10)
	ot, _ := New(rand.New(rand.NewSource(7)), repo, DefaultConfig())
	// A default time equal to TS-D1's should map to TS-D1 unless excluded.
	def := repo.Workloads[3].DefaultTime
	if idx := ot.mapByDefaultTime(def, ""); idx != 3 {
		t.Fatalf("mapByDefaultTime = %d, want 3", idx)
	}
	if idx := ot.mapByDefaultTime(def, repo.Workloads[3].Label); idx == 3 {
		t.Fatal("excluded label still mapped")
	}
}

func TestStandardizeZeroVarianceMetric(t *testing.T) {
	repo, _ := buildTestRepo(t, 10)
	// MetricFailed is 0 for every successful-run signature; its std is
	// floored so standardize never divides by zero.
	s := repo.standardize(repo.Workloads[0].Signature)
	for i, v := range s {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("standardized metric %d = %v", i, v)
		}
	}
}
