// Package ottertune implements the OtterTune baseline (Van Aken et al.,
// SIGMOD 2017) as the paper evaluates it: a machine-learning pipeline that
// maps the target workload onto the most similar previously observed
// workload via internal metrics, fits a Gaussian-process surrogate over
// that workload's observations plus the target's own, and recommends the
// configuration maximizing Expected Improvement.
//
// The defining cost characteristic the paper measures in Fig. 7 is
// reproduced structurally: OtterTune retrains its GP from scratch at every
// online step, so its recommendation time is orders of magnitude above the
// DRL approaches' network inference.
package ottertune

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"deepcat/internal/analysis"
	"deepcat/internal/env"
	"deepcat/internal/gp"
	"deepcat/internal/mat"
)

// WorkloadData is one repository entry: the offline observations collected
// for a previously seen workload.
type WorkloadData struct {
	// Label names the workload ("TS-D1@cluster-a").
	Label string
	// X are normalized configurations; Y the execution times in seconds
	// (OtterTune regresses the raw performance metric).
	X [][]float64
	Y []float64
	// Signature is the workload's mean internal-metrics vector, used for
	// workload mapping.
	Signature []float64
	// DefaultTime is the workload's default-configuration time.
	DefaultTime float64
}

// Repository is OtterTune's store of historical tuning data.
type Repository struct {
	Workloads []WorkloadData
	// metricMean/metricStd standardize signatures before distance
	// computation.
	metricMean []float64
	metricStd  []float64
}

// BuildRepository samples each environment with n random configurations and
// assembles the repository OtterTune needs before it can tune anything (the
// paper feeds it "thousands of offline samples", §4.4).
func BuildRepository(rng *rand.Rand, envs []env.Environment, n int) *Repository {
	repo := &Repository{}
	for _, e := range envs {
		wd := WorkloadData{Label: e.Label(), DefaultTime: e.DefaultTime()}
		var sig []float64
		for i := 0; i < n; i++ {
			u := e.Space().RandomAction(rng)
			o := e.Evaluate(u)
			wd.X = append(wd.X, u)
			wd.Y = append(wd.Y, o.ExecTime)
			if sig == nil {
				sig = make([]float64, len(o.Metrics))
			}
			mat.AddTo(sig, sig, o.Metrics)
		}
		mat.ScaleTo(sig, 1/float64(n), sig)
		wd.Signature = sig
		repo.Workloads = append(repo.Workloads, wd)
	}
	repo.fitStandardizer()
	return repo
}

// fitStandardizer computes per-metric mean/std over the repository
// signatures.
func (r *Repository) fitStandardizer() {
	if len(r.Workloads) == 0 {
		return
	}
	dim := len(r.Workloads[0].Signature)
	r.metricMean = make([]float64, dim)
	r.metricStd = make([]float64, dim)
	for j := 0; j < dim; j++ {
		var col []float64
		for _, w := range r.Workloads {
			col = append(col, w.Signature[j])
		}
		r.metricMean[j] = mat.Mean(col)
		r.metricStd[j] = mat.Stddev(col)
		if r.metricStd[j] < 1e-9 {
			r.metricStd[j] = 1
		}
	}
}

// standardize maps a metrics vector into the repository's standardized
// space.
func (r *Repository) standardize(m []float64) []float64 {
	out := make([]float64, len(m))
	for j := range m {
		out[j] = (m[j] - r.metricMean[j]) / r.metricStd[j]
	}
	return out
}

// MapWorkload returns the index of the repository workload most similar to
// the target metrics signature (Euclidean distance in standardized metric
// space), excluding entries whose label matches excludeLabel (so a workload
// does not trivially map to its own repository entry when held out).
func (r *Repository) MapWorkload(targetSig []float64, excludeLabel string) int {
	best := -1
	bestD := math.Inf(1)
	ts := r.standardize(targetSig)
	for i, w := range r.Workloads {
		if w.Label == excludeLabel {
			continue
		}
		d := mat.Dist2(ts, r.standardize(w.Signature))
		if d < bestD {
			bestD = d
			best = i
		}
	}
	return best
}

// Config collects OtterTune's knobs.
type Config struct {
	// OnlineSteps is the online recommendation budget (5 in the paper).
	OnlineSteps int
	// Candidates is the number of random candidates scored by EI per step.
	Candidates int
	// LocalCandidates is the number of perturbations of the incumbent best
	// added to the candidate pool.
	LocalCandidates int
	// LocalSigma is the perturbation scale for local candidates.
	LocalSigma float64
	// TargetWeight duplicates target-workload observations in the GP
	// training set so fresh target data outweighs mapped history.
	TargetWeight int
	// Kernel hyper-parameters and observation noise for the GP.
	LengthScale float64
	Variance    float64
	Noise       float64
	// MaxGPSamples caps the GP training-set size for tractability; when the
	// mapped workload has more observations a random subset is used.
	MaxGPSamples int
	// TopKnobs, when positive, enables OtterTune's Lasso-based knob
	// selection: only the TopKnobs most important parameters (ranked on
	// the mapped workload's data) are tuned, the rest stay at their
	// defaults. Zero tunes the full space.
	TopKnobs int
	// RawUnits feeds the GP concrete knob values (GB, MB, counts) rather
	// than [0,1]-normalized coordinates, with the kernel length scale
	// selected by log-marginal-likelihood grid search — the behaviour of a
	// scikit-learn pipeline without per-knob scaling, which is how the
	// paper's OtterTune is implemented (§4.4). A single isotropic length
	// scale over heterogeneous units is dominated by the large-unit
	// memory knobs, which is the mechanism behind the paper's finding
	// that "the GP regression model is too simple to capture the complex
	// information" (§5.2.1). Setting RawUnits to false gives the stronger
	// normalized-unit variant measured by the extension benchmarks.
	RawUnits bool
}

// DefaultConfig returns the settings used in the experiments.
func DefaultConfig() Config {
	return Config{
		OnlineSteps:     5,
		Candidates:      300,
		LocalCandidates: 0,
		LocalSigma:      0.15,
		TargetWeight:    3,
		LengthScale:     0.8,
		Variance:        10000,
		Noise:           25,
		MaxGPSamples:    900,
		RawUnits:        true,
	}
}

// OtterTune is the baseline tuner bound to a repository.
type OtterTune struct {
	Cfg  Config
	Repo *Repository
	rng  *rand.Rand
}

// New constructs an OtterTune instance.
func New(rng *rand.Rand, repo *Repository, cfg Config) (*OtterTune, error) {
	if repo == nil || len(repo.Workloads) == 0 {
		return nil, fmt.Errorf("ottertune: empty repository")
	}
	if cfg.OnlineSteps <= 0 || cfg.Candidates <= 0 {
		return nil, fmt.Errorf("ottertune: non-positive step configuration")
	}
	return &OtterTune{Cfg: cfg, Repo: repo, rng: rng}, nil
}

// OnlineTune runs the online stage on environment e. Each step performs
// workload mapping, retrains the GP (the dominant recommendation cost),
// maximizes EI over a candidate pool and evaluates the winner. excludeLabel
// is the repository label to hold out (normally e.Label(); pass "" to allow
// self-mapping).
func (o *OtterTune) OnlineTune(e env.Environment, excludeLabel string) *env.Report {
	rep := &env.Report{Tuner: "OtterTune", EnvLabel: e.Label(), BestTime: 1e18}
	var obsX [][]float64
	var obsY []float64
	var obsMetrics []float64
	var sel []int // selected knob indices when knob selection is on

	for step := 0; step < o.Cfg.OnlineSteps; step++ {
		recStart := time.Now()

		// Workload mapping: use accumulated target metrics; before any
		// observation exists, fall back to matching by default time,
		// which the tuner knows from the standing system.
		var mappedIdx int
		if obsMetrics != nil {
			mappedIdx = o.Repo.MapWorkload(obsMetrics, excludeLabel)
		} else {
			mappedIdx = o.mapByDefaultTime(e.DefaultTime(), excludeLabel)
		}
		mapped := o.Repo.Workloads[mappedIdx]

		// Lasso knob selection (once per session, on the first mapped
		// workload's data): restrict the tuned dimensions to the most
		// important knobs, as OtterTune's pipeline does.
		if o.Cfg.TopKnobs > 0 && sel == nil {
			ranking, rerr := analysis.KnobImportance(e.Space(), mapped.X, mapped.Y, 0)
			if rerr == nil {
				sel = analysis.TopK(ranking, o.Cfg.TopKnobs)
			}
		}

		// Assemble GP training data: mapped history + weighted target
		// observations, projected onto the selected knobs when knob
		// selection is active and mapped into GP feature space.
		x, y := o.trainingSet(mapped, obsX, obsY)
		model, err := o.fitGP(e, projectAll(x, sel), y, sel)

		var action []float64
		if err != nil {
			// Degenerate GP (should not happen): random fallback keeps
			// the session alive.
			action = e.Space().RandomAction(o.rng)
		} else {
			action = o.maximizeEI(e, model, obsX, obsY, mapped, sel)
		}
		rec := time.Since(recStart).Seconds()

		outcome := e.Evaluate(action)
		obsX = append(obsX, mat.CloneSlice(action))
		obsY = append(obsY, outcome.ExecTime)
		if obsMetrics == nil {
			obsMetrics = mat.CloneSlice(outcome.Metrics)
		} else {
			// Running mean of target metrics.
			for j := range obsMetrics {
				obsMetrics[j] = (obsMetrics[j]*float64(step) + outcome.Metrics[j]) / float64(step+1)
			}
		}

		rep.Steps = append(rep.Steps, env.TuningStep{
			Action:           mat.CloneSlice(action),
			ExecTime:         outcome.ExecTime,
			RecommendSeconds: rec,
			Failed:           outcome.Failed,
		})
		if !outcome.Failed && outcome.ExecTime < rep.BestTime {
			rep.BestTime = outcome.ExecTime
			rep.BestAction = mat.CloneSlice(action)
		}
	}
	return rep
}

// mapByDefaultTime picks the repository workload with the closest default
// execution time; the cold-start mapping before target metrics exist.
func (o *OtterTune) mapByDefaultTime(def float64, excludeLabel string) int {
	best := 0
	bestD := math.Inf(1)
	for i, w := range o.Repo.Workloads {
		if w.Label == excludeLabel {
			continue
		}
		d := math.Abs(math.Log(w.DefaultTime) - math.Log(def))
		if d < bestD {
			bestD = d
			best = i
		}
	}
	return best
}

// trainingSet merges mapped-workload history (subsampled to MaxGPSamples)
// with TargetWeight copies of the target observations.
func (o *OtterTune) trainingSet(mapped WorkloadData, obsX [][]float64, obsY []float64) ([][]float64, []float64) {
	var x [][]float64
	var y []float64
	n := len(mapped.X)
	if n > o.Cfg.MaxGPSamples {
		perm := o.rng.Perm(n)[:o.Cfg.MaxGPSamples]
		for _, i := range perm {
			x = append(x, mapped.X[i])
			y = append(y, mapped.Y[i])
		}
	} else {
		x = append(x, mapped.X...)
		y = append(y, mapped.Y...)
	}
	for w := 0; w < o.Cfg.TargetWeight; w++ {
		for i := range obsX {
			x = append(x, obsX[i])
			// Tiny jitter on duplicated rows keeps the kernel matrix
			// comfortably positive definite.
			y = append(y, obsY[i])
		}
	}
	return x, y
}

// maximizeEI scores a pool of random and local candidates and returns the
// best by Expected Improvement (on log execution time).
func (o *OtterTune) maximizeEI(e env.Environment, model *gp.GP, obsX [][]float64, obsY []float64, mapped WorkloadData, sel []int) []float64 {
	// Incumbent for EI: the best observation seen (target first, else
	// mapped history). Local candidates are only generated around the
	// target's own observations — OtterTune recommends from its model, it
	// does not replay configurations out of the repository.
	best := math.Inf(1)
	var bestX []float64
	for i, yv := range obsY {
		if yv < best {
			best = yv
			bestX = obsX[i]
		}
	}
	if math.IsInf(best, 1) {
		for _, yv := range mapped.Y {
			if yv < best {
				best = yv
			}
		}
	}

	var bestEI float64 = -1
	var bestA []float64
	try := func(u []float64) {
		m, v := model.Predict(o.features(e, project(u, sel), sel))
		ei := gp.ExpectedImprovement(m, math.Sqrt(v), best)
		if ei > bestEI {
			bestEI = ei
			bestA = u
		}
	}
	for i := 0; i < o.Cfg.Candidates; i++ {
		try(o.candidate(e, sel))
	}
	if bestX != nil {
		for i := 0; i < o.Cfg.LocalCandidates; i++ {
			u := mat.CloneSlice(bestX)
			for j := range u {
				u[j] = mat.Clip(u[j]+o.Cfg.LocalSigma*o.rng.NormFloat64(), 0, 1)
			}
			try(u)
		}
	}
	if bestA == nil {
		bestA = o.candidate(e, sel)
	}
	return bestA
}

// fitGP trains the surrogate on the (possibly projected) sample matrix. In
// raw-unit mode the features are concrete knob values and the kernel length
// scale is chosen by log-marginal-likelihood grid search over scales
// spanning the units present; in normalized mode the configured fixed
// kernel is used.
func (o *OtterTune) fitGP(e env.Environment, x [][]float64, y []float64, sel []int) (*gp.GP, error) {
	if !o.Cfg.RawUnits {
		return gp.Fit(gp.Matern52{LengthScale: o.Cfg.LengthScale, Variance: o.Cfg.Variance},
			o.Cfg.Noise, x, y)
	}
	raw := make([][]float64, len(x))
	for i, u := range x {
		raw[i] = o.features(e, u, sel)
	}
	kernels := gp.LengthScaleGrid(1, 1e5, o.Cfg.Variance, 8)
	return gp.FitBest(kernels, o.Cfg.Noise, raw, y)
}

// features maps a (possibly projected) normalized sample into GP feature
// space: identity in normalized mode, concrete knob values in raw mode.
func (o *OtterTune) features(e env.Environment, u []float64, sel []int) []float64 {
	if !o.Cfg.RawUnits {
		return u
	}
	space := e.Space()
	out := make([]float64, len(u))
	if sel == nil {
		for j, v := range u {
			out[j] = space.Param(j).Denorm(v)
		}
		return out
	}
	for i, j := range sel {
		out[i] = space.Param(j).Denorm(u[i])
	}
	return out
}

// candidate draws a random candidate configuration: fully random without
// knob selection, otherwise the default configuration with only the
// selected knobs randomized.
func (o *OtterTune) candidate(e env.Environment, sel []int) []float64 {
	if sel == nil {
		return e.Space().RandomAction(o.rng)
	}
	u := e.Space().DefaultAction()
	for _, j := range sel {
		u[j] = o.rng.Float64()
	}
	return u
}

// project extracts the selected coordinates of u (or returns u when no
// selection is active).
func project(u []float64, sel []int) []float64 {
	if sel == nil {
		return u
	}
	out := make([]float64, len(sel))
	for i, j := range sel {
		out[i] = u[j]
	}
	return out
}

// projectAll maps project over a sample matrix.
func projectAll(x [][]float64, sel []int) [][]float64 {
	if sel == nil {
		return x
	}
	out := make([][]float64, len(x))
	for i, u := range x {
		out[i] = project(u, sel)
	}
	return out
}
