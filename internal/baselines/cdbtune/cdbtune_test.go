package cdbtune

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"deepcat/internal/env"
	"deepcat/internal/mat"
	"deepcat/internal/sparksim"
)

func testEnv(t *testing.T) *env.SparkEnv {
	t.Helper()
	sim := sparksim.NewSimulator(sparksim.ClusterA(), 1)
	ts, err := sparksim.WorkloadByShort("TS")
	if err != nil {
		t.Fatal(err)
	}
	return env.NewSparkEnv(sim, ts, 0)
}

func TestRewardSign(t *testing.T) {
	// Faster than default and previous: positive.
	if r := Reward(50, 80, 100); r <= 0 {
		t.Fatalf("improvement reward = %v, want > 0", r)
	}
	// Slower than default: negative.
	if r := Reward(150, 80, 100); r >= 0 {
		t.Fatalf("regression reward = %v, want < 0", r)
	}
	// Equal to default: zero.
	if r := Reward(100, 100, 100); r != 0 {
		t.Fatalf("neutral reward = %v, want 0", r)
	}
}

func TestRewardAmplifiesSustainedProgress(t *testing.T) {
	// The same execution time is rewarded more when it also improves on
	// the previous step than when it regresses from it.
	better := Reward(50, 70, 100)
	worse := Reward(50, 45, 100)
	if better <= worse {
		t.Fatalf("reward does not weight progress: %v <= %v", better, worse)
	}
}

func TestRewardMonotoneInTimeProperty(t *testing.T) {
	// CDBTune's reward is monotone in execution time within the regime
	// t < 2*prev (the |1+deltaP| factor flips sign beyond that). The
	// DeepCAT paper's criticism — the delta reward optimizes for eventual
	// improvement rather than per-action cost — is tied to exactly such
	// quirks, so the property is asserted only on the well-behaved regime
	// and the quirk itself is pinned by TestRewardNonMonotoneQuirk.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		def := 50 + rng.Float64()*200
		prev := 20 + rng.Float64()*300
		t1 := 10 + rng.Float64()*(prev*2-11)
		t2 := t1 + (prev*2-t1)*rng.Float64()*0.99 // slower, still < 2*prev
		return Reward(t1, prev, def) >= Reward(t2, prev, def)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRewardNonMonotoneQuirk(t *testing.T) {
	// With def > 2*prev, slowing down past 2*prev can *raise* the reward —
	// a real artifact of the delta formula that DeepCAT's immediate reward
	// (Eq. 1) avoids.
	atKink := Reward(40, 20, 100) // exactly 2*prev: |1+deltaP| = 0
	beyond := Reward(60, 20, 100) // 3*prev, still faster than default
	if !(beyond > atKink) {
		t.Fatalf("expected quirk: Reward(60)=%v <= Reward(40)=%v", beyond, atKink)
	}
}

func TestNewValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := New(rng, Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
	cfg := DefaultConfig(9, 32)
	cfg.DDPG.Gamma = -1
	if _, err := New(rng, cfg); err == nil {
		t.Fatal("invalid DDPG config accepted")
	}
	if _, err := New(rng, DefaultConfig(9, 32)); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestOfflineThenOnlineImproves(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping training test in -short mode")
	}
	e := testEnv(t)
	c, err := New(rand.New(rand.NewSource(2)), DefaultConfig(e.StateDim(), e.Space().Dim()))
	if err != nil {
		t.Fatal(err)
	}
	c.OfflineTrain(e, 1500)
	rep := c.Clone().OnlineTune(e)
	if rep.Tuner != "CDBTune" {
		t.Fatalf("tuner name %q", rep.Tuner)
	}
	if len(rep.Steps) != 5 {
		t.Fatalf("steps = %d", len(rep.Steps))
	}
	if rep.BestTime >= e.DefaultTime() {
		t.Fatalf("best %.1f not better than default %.1f", rep.BestTime, e.DefaultTime())
	}
	if rep.RecommendationCost() <= 0 {
		t.Fatal("recommendation time not measured")
	}
}

func TestCloneIndependence(t *testing.T) {
	e := testEnv(t)
	c, _ := New(rand.New(rand.NewSource(3)), DefaultConfig(e.StateDim(), e.Space().Dim()))
	c.OfflineTrain(e, 100)
	cl := c.Clone()
	s := e.IdleState()
	if mat.Dist2(c.Agent.Act(s), cl.Agent.Act(s)) != 0 {
		t.Fatal("clone policy differs")
	}
	if cl.Buffer.Len() != 0 {
		t.Fatal("clone inherited buffer")
	}
	before := c.Agent.Act(s)
	cl.OfflineTrain(e, 100)
	if mat.Dist2(c.Agent.Act(s), before) != 0 {
		t.Fatal("training clone mutated original")
	}
}

func TestOnlineStepsRecordActions(t *testing.T) {
	e := testEnv(t)
	c, _ := New(rand.New(rand.NewSource(4)), DefaultConfig(e.StateDim(), e.Space().Dim()))
	c.OfflineTrain(e, 80)
	rep := c.OnlineTune(e)
	for i, st := range rep.Steps {
		if len(st.Action) != e.Space().Dim() {
			t.Fatalf("step %d action dim %d", i, len(st.Action))
		}
		if st.ExecTime <= 0 || math.IsNaN(st.ExecTime) {
			t.Fatalf("step %d time %v", i, st.ExecTime)
		}
		if st.Optimized {
			t.Fatal("CDBTune has no Twin-Q Optimizer; Optimized must be false")
		}
	}
}
