// Package cdbtune implements the CDBTune baseline (Zhang et al., SIGMOD
// 2019) as the paper evaluates it: a DDPG agent with TD-error prioritized
// experience replay, trained offline and fine-tuned online for five steps
// per tuning request. Two deliberate differences from DeepCAT follow the
// paper's analysis (§3, §5.2):
//
//   - the agent is single-critic DDPG, so it inherits the Q-value
//     overestimation TD3 was designed to remove;
//   - replay is prioritized by TD error (information gain), not by reward,
//     so the sparse high-reward transitions are not guaranteed replay share;
//   - the reward is CDBTune's own delta-based formula, which targets
//     eventual improvement rather than DeepCAT's per-action immediate
//     objective, and there is no Twin-Q Optimizer, so every recommended
//     action — good or bad — is paid for with a real evaluation.
package cdbtune

import (
	"fmt"
	"math/rand"
	"time"

	"deepcat/internal/core"

	"deepcat/internal/env"
	"deepcat/internal/mat"
	"deepcat/internal/rl"
)

// Config collects CDBTune's hyper-parameters.
type Config struct {
	// ReplayCapacity bounds the prioritized replay buffer.
	ReplayCapacity int
	// BatchSize is the training mini-batch size.
	BatchSize int
	// WarmupSteps is the number of random-action steps before training.
	WarmupSteps int
	// ExploreSigma is the offline exploration noise.
	ExploreSigma float64
	// EpisodeLen is the offline episode length.
	EpisodeLen int
	// OnlineSteps is the online fine-tuning budget (5 in the paper).
	OnlineSteps int
	// FineTuneIters is the number of gradient updates per online step.
	FineTuneIters int
	// RecoverySigma is exploration noise after a failed online step.
	RecoverySigma float64
	// DDPG configures the agent.
	DDPG rl.DDPGConfig
}

// DefaultConfig mirrors DeepCAT's defaults wherever the approaches share a
// knob, so comparisons isolate the algorithmic differences.
func DefaultConfig(stateDim, actionDim int) Config {
	d := rl.DefaultDDPGConfig(stateDim, actionDim)
	d.Hidden = []int{64, 64}
	return Config{
		ReplayCapacity: 100000,
		BatchSize:      32,
		WarmupSteps:    64,
		ExploreSigma:   0.15,
		EpisodeLen:     5,
		OnlineSteps:    5,
		FineTuneIters:  24,
		RecoverySigma:  0.25,
		DDPG:           d,
	}
}

// CDBTune is the baseline tuner.
type CDBTune struct {
	Cfg    Config
	Agent  *rl.DDPG
	Buffer *rl.PrioritizedReplay
	rng    *rand.Rand
}

// New constructs a CDBTune tuner.
func New(rng *rand.Rand, cfg Config) (*CDBTune, error) {
	if cfg.EpisodeLen <= 0 || cfg.OnlineSteps <= 0 || cfg.BatchSize <= 0 {
		return nil, fmt.Errorf("cdbtune: non-positive step configuration")
	}
	agent, err := rl.NewDDPG(rng, cfg.DDPG)
	if err != nil {
		return nil, err
	}
	return &CDBTune{
		Cfg:    cfg,
		Agent:  agent,
		Buffer: rl.NewPrioritizedReplay(cfg.ReplayCapacity),
		rng:    rng,
	}, nil
}

// Reward is CDBTune's delta-based reward for an execution-time metric:
// improvement over the initial (default) time and over the previous step's
// time are combined so that sustained progress is amplified. With
// delta0 = (T0-Tt)/T0 and deltaP = (Tp-Tt)/Tp:
//
//	r = ((1+delta0)^2 - 1) * |1+deltaP|   when delta0 > 0
//	r = -((1-delta0)^2 - 1) * |1-deltaP|  otherwise
//
// This is the "eventual optimum" objective the DeepCAT paper contrasts with
// its immediate per-action reward (Eq. 1).
func Reward(execTime, prevTime, defaultTime float64) float64 {
	return core.DeltaReward(execTime, prevTime, defaultTime)
}

// OfflineTrain interacts with e for iters environment steps, training DDPG
// with TD-error PER after each step once warm.
func (c *CDBTune) OfflineTrain(e env.Environment, iters int) {
	state := e.IdleState()
	defTime := e.DefaultTime()
	prevTime := defTime
	stepInEp := 0
	for it := 1; it <= iters; it++ {
		var action []float64
		if c.Buffer.Len() < c.Cfg.WarmupSteps {
			action = e.Space().RandomAction(c.rng)
		} else {
			action = c.Agent.ActNoisy(c.rng, state, c.Cfg.ExploreSigma)
		}
		outcome := e.Evaluate(action)
		r := Reward(outcome.ExecTime, prevTime, defTime)
		stepInEp++
		done := stepInEp >= c.Cfg.EpisodeLen
		c.Buffer.Add(rl.Transition{
			State:     state,
			Action:    action,
			Reward:    r,
			NextState: outcome.State,
			Done:      done,
		})
		if done {
			state = e.IdleState()
			prevTime = defTime
			stepInEp = 0
		} else {
			state = outcome.State
			prevTime = outcome.ExecTime
		}
		if c.Buffer.Len() >= c.Cfg.WarmupSteps {
			batch := c.Buffer.Sample(c.rng, c.Cfg.BatchSize)
			stats := c.Agent.Train(c.rng, batch)
			c.Buffer.UpdatePriorities(batch.Indices, stats.TDErrors)
		}
	}
}

// Clone returns an independent copy with the same weights and an empty
// buffer.
func (c *CDBTune) Clone() *CDBTune {
	out := &CDBTune{
		Cfg:    c.Cfg,
		rng:    rand.New(rand.NewSource(c.rng.Int63())),
		Buffer: rl.NewPrioritizedReplay(c.Cfg.ReplayCapacity),
	}
	agent, err := rl.NewDDPG(out.rng, c.Cfg.DDPG)
	if err != nil {
		panic(err) // config validated in New
	}
	agent.Actor.CopyFrom(c.Agent.Actor)
	agent.ActorTarget.CopyFrom(c.Agent.ActorTarget)
	agent.Critic.CopyFrom(c.Agent.Critic)
	agent.CriticT.CopyFrom(c.Agent.CriticT)
	out.Agent = agent
	return out
}

// OnlineTune fine-tunes the offline model on environment e for the
// configured number of steps and reports the session. Every recommended
// action is evaluated for real — CDBTune has no mechanism to skip
// sub-optimal configurations, which is the cost gap DeepCAT's Twin-Q
// Optimizer targets.
func (c *CDBTune) OnlineTune(e env.Environment) *env.Report {
	rep := &env.Report{Tuner: "CDBTune", EnvLabel: e.Label(), BestTime: 1e18}
	state := e.IdleState()
	defTime := e.DefaultTime()
	prevTime := defTime
	lastFailed := false
	for step := 0; step < c.Cfg.OnlineSteps; step++ {
		recStart := time.Now()
		var action []float64
		if lastFailed && c.Cfg.RecoverySigma > 0 {
			action = c.Agent.ActNoisy(c.rng, state, c.Cfg.RecoverySigma)
		} else {
			action = c.Agent.Act(state)
		}
		outcome := e.Evaluate(action)
		r := Reward(outcome.ExecTime, prevTime, defTime)
		c.Buffer.Add(rl.Transition{
			State:     state,
			Action:    action,
			Reward:    r,
			NextState: outcome.State,
			Done:      step == c.Cfg.OnlineSteps-1,
		})
		for i := 0; i < c.Cfg.FineTuneIters && c.Buffer.Len() >= 2; i++ {
			n := c.Cfg.BatchSize
			if c.Buffer.Len() < n {
				n = c.Buffer.Len()
			}
			batch := c.Buffer.Sample(c.rng, n)
			stats := c.Agent.Train(c.rng, batch)
			c.Buffer.UpdatePriorities(batch.Indices, stats.TDErrors)
		}
		rec := time.Since(recStart).Seconds()

		rep.Steps = append(rep.Steps, env.TuningStep{
			Action:           mat.CloneSlice(action),
			ExecTime:         outcome.ExecTime,
			RecommendSeconds: rec,
			Failed:           outcome.Failed,
		})
		if !outcome.Failed && outcome.ExecTime < rep.BestTime {
			rep.BestTime = outcome.ExecTime
			rep.BestAction = mat.CloneSlice(action)
		}
		lastFailed = outcome.Failed
		prevTime = outcome.ExecTime
		state = outcome.State
	}
	return rep
}
