package analysis_test

import (
	"fmt"

	"deepcat/internal/analysis"
)

// Lasso recovers a sparse linear relationship: only the informative
// features receive non-zero weights.
func ExampleLasso() {
	// y = 2*x0, features x1 and x2 are noise-free but irrelevant.
	x := [][]float64{
		{0.0, 0.3, 0.9},
		{0.2, 0.8, 0.1},
		{0.4, 0.1, 0.5},
		{0.6, 0.9, 0.2},
		{0.8, 0.4, 0.7},
		{1.0, 0.6, 0.4},
	}
	y := []float64{0.0, 0.4, 0.8, 1.2, 1.6, 2.0}
	w, err := analysis.Lasso(x, y, 0.01, 200)
	if err != nil {
		panic(err)
	}
	fmt.Printf("w0=%.1f w1=%.1f w2=%.1f\n", w[0], w[1], w[2])
	// Output:
	// w0=2.0 w1=0.0 w2=0.0
}
