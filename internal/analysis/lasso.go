// Package analysis provides white-box configuration analysis: Lasso-based
// knob importance ranking over observed (configuration, performance)
// samples. OtterTune uses exactly this technique to select the knobs worth
// tuning (Van Aken et al., 2017, §5.1), and the DeepCAT paper points to
// software-analysis-driven dimension reduction (LOCAT, LITE) as the future
// work that would further cut online tuning cost — this package is the
// reusable primitive for both.
package analysis

import (
	"fmt"
	"math"
	"sort"

	"deepcat/internal/config"
	"deepcat/internal/mat"
)

// Lasso fits a linear model y = Xw + b with an L1 penalty via cyclic
// coordinate descent on standardized features, and returns the weights in
// the original (un-standardized) feature scale. lambda is the L1 strength
// in standardized space (typical values 0.001-0.1 of the response's
// standard deviation); iters is the number of full coordinate sweeps.
//
// Columns with zero variance receive weight 0. The intercept is not
// returned: importance analysis only needs the weights.
func Lasso(x [][]float64, y []float64, lambda float64, iters int) ([]float64, error) {
	n := len(x)
	if n == 0 {
		return nil, fmt.Errorf("analysis: no samples")
	}
	if len(y) != n {
		return nil, fmt.Errorf("analysis: %d samples but %d targets", n, len(y))
	}
	dim := len(x[0])
	for i, row := range x {
		if len(row) != dim {
			return nil, fmt.Errorf("analysis: row %d has %d features, want %d", i, len(row), dim)
		}
	}
	if lambda < 0 {
		return nil, fmt.Errorf("analysis: negative lambda %g", lambda)
	}

	// Standardize columns and center the response.
	mu := make([]float64, dim)
	sd := make([]float64, dim)
	for j := 0; j < dim; j++ {
		col := make([]float64, n)
		for i := range x {
			col[i] = x[i][j]
		}
		mu[j] = mat.Mean(col)
		sd[j] = mat.Stddev(col)
	}
	ymean := mat.Mean(y)
	z := make([][]float64, n) // standardized features
	for i := range x {
		z[i] = make([]float64, dim)
		for j := 0; j < dim; j++ {
			if sd[j] > 1e-12 {
				z[i][j] = (x[i][j] - mu[j]) / sd[j]
			}
		}
	}
	r := make([]float64, n) // residual with current weights (all zero)
	for i := range y {
		r[i] = y[i] - ymean
	}

	w := make([]float64, dim)
	nf := float64(n)
	for it := 0; it < iters; it++ {
		for j := 0; j < dim; j++ {
			if sd[j] <= 1e-12 {
				continue
			}
			// rho = (1/n) * z_j · (r + z_j w_j): the correlation of the
			// j-th feature with the residual excluding its own term.
			var rho, zz float64
			for i := range z {
				rho += z[i][j] * (r[i] + z[i][j]*w[j])
				zz += z[i][j] * z[i][j]
			}
			rho /= nf
			zz /= nf
			wNew := softThreshold(rho, lambda) / zz
			if wNew != w[j] {
				d := wNew - w[j]
				for i := range r {
					r[i] -= d * z[i][j]
				}
				w[j] = wNew
			}
		}
	}
	// Map back to original scale.
	for j := range w {
		if sd[j] > 1e-12 {
			w[j] /= sd[j]
		}
	}
	return w, nil
}

// softThreshold is the Lasso proximal operator.
func softThreshold(x, lambda float64) float64 {
	switch {
	case x > lambda:
		return x - lambda
	case x < -lambda:
		return x + lambda
	default:
		return 0
	}
}

// Importance is one knob's ranked contribution to the performance model.
type Importance struct {
	// Index is the knob's position in the configuration space.
	Index int
	// Name is the knob's parameter name.
	Name string
	// Weight is the signed Lasso weight on the normalized knob value
	// (negative = increasing the knob reduces execution time).
	Weight float64
}

// KnobImportance ranks a configuration space's knobs by their Lasso weight
// magnitude against the observed performance. Actions must be normalized
// configurations ([0,1]^d) and y the corresponding execution times (or any
// cost to minimize). lambda defaults to 1% of stddev(y) when zero.
func KnobImportance(space *config.Space, actions [][]float64, y []float64, lambda float64) ([]Importance, error) {
	if lambda == 0 {
		lambda = 0.01 * mat.Stddev(y)
	}
	w, err := Lasso(actions, y, lambda, 100)
	if err != nil {
		return nil, err
	}
	if len(w) != space.Dim() {
		return nil, fmt.Errorf("analysis: %d weights for a %d-dim space", len(w), space.Dim())
	}
	out := make([]Importance, space.Dim())
	for j := range w {
		out[j] = Importance{Index: j, Name: space.Param(j).Name, Weight: w[j]}
	}
	sort.SliceStable(out, func(a, b int) bool {
		return math.Abs(out[a].Weight) > math.Abs(out[b].Weight)
	})
	return out, nil
}

// TopK returns the space indices of the k most important knobs (all of them
// when k exceeds the ranking length).
func TopK(ranking []Importance, k int) []int {
	if k > len(ranking) {
		k = len(ranking)
	}
	idx := make([]int, k)
	for i := 0; i < k; i++ {
		idx[i] = ranking[i].Index
	}
	return idx
}
