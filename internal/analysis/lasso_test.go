package analysis

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"deepcat/internal/config"
	"deepcat/internal/mat"
	"deepcat/internal/sparksim"
)

func TestLassoValidation(t *testing.T) {
	if _, err := Lasso(nil, nil, 0.1, 10); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := Lasso([][]float64{{1}}, []float64{1, 2}, 0.1, 10); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Lasso([][]float64{{1}, {1, 2}}, []float64{1, 2}, 0.1, 10); err == nil {
		t.Fatal("ragged rows accepted")
	}
	if _, err := Lasso([][]float64{{1}}, []float64{1}, -1, 10); err == nil {
		t.Fatal("negative lambda accepted")
	}
}

func TestLassoRecoversSparseSupport(t *testing.T) {
	// y = 3*x0 - 2*x3 + noise over 10 features: Lasso must give features
	// 0 and 3 the dominant weights and zero out most others.
	rng := rand.New(rand.NewSource(1))
	const n, dim = 300, 10
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = mat.RandVec(rng, dim, 0, 1)
		y[i] = 3*x[i][0] - 2*x[i][3] + 0.05*rng.NormFloat64()
	}
	w, err := Lasso(x, y, 0.02, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w[0]-3) > 0.3 || math.Abs(w[3]+2) > 0.3 {
		t.Fatalf("support weights w0=%v w3=%v", w[0], w[3])
	}
	for j, v := range w {
		if j == 0 || j == 3 {
			continue
		}
		if math.Abs(v) > 0.3 {
			t.Fatalf("noise feature %d has weight %v", j, v)
		}
	}
}

func TestLassoShrinksWithLambdaProperty(t *testing.T) {
	// Larger lambda never increases the L1 norm of the solution.
	rng := rand.New(rand.NewSource(2))
	const n, dim = 100, 5
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = mat.RandVec(rng, dim, 0, 1)
		y[i] = 2*x[i][0] - x[i][1] + 0.1*rng.NormFloat64()
	}
	l1 := func(w []float64) float64 {
		var s float64
		for _, v := range w {
			s += math.Abs(v)
		}
		return s
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := r.Float64() * 0.5
		b := a + r.Float64()*0.5
		wa, err1 := Lasso(x, y, a, 60)
		wb, err2 := Lasso(x, y, b, 60)
		if err1 != nil || err2 != nil {
			return false
		}
		return l1(wb) <= l1(wa)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLassoZeroVarianceColumn(t *testing.T) {
	x := [][]float64{{1, 0.2}, {1, 0.8}, {1, 0.5}}
	y := []float64{1, 4, 2.5}
	w, err := Lasso(x, y, 0.001, 50)
	if err != nil {
		t.Fatal(err)
	}
	if w[0] != 0 {
		t.Fatalf("constant column weight = %v, want 0", w[0])
	}
	if w[1] < 1 {
		t.Fatalf("informative column weight = %v", w[1])
	}
}

func TestLassoHugeLambdaAllZero(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := make([][]float64, 50)
	y := make([]float64, 50)
	for i := range x {
		x[i] = mat.RandVec(rng, 4, 0, 1)
		y[i] = mat.Sum(x[i])
	}
	w, err := Lasso(x, y, 1e6, 20)
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range w {
		if v != 0 {
			t.Fatalf("weight %d = %v under huge lambda", j, v)
		}
	}
}

func TestKnobImportanceOnSimulator(t *testing.T) {
	// The resource knobs (executor instances/cores/memory, parallelism)
	// must rank above cosmetic knobs (scheduler mode, kryo buffer) on the
	// simulated TeraSort landscape — a behavioural check that the analysis
	// finds the structure the cost model actually has.
	sim := sparksim.NewSimulator(sparksim.ClusterA(), 1)
	ts, err := sparksim.WorkloadByShort("TS")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	var actions [][]float64
	var y []float64
	for i := 0; i < 400; i++ {
		u := sim.Space().RandomAction(rng)
		r := sim.Evaluate(ts, 0, u)
		actions = append(actions, u)
		y = append(y, r.ExecTime)
	}
	ranking, err := KnobImportance(sim.Space(), actions, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranking) != 32 {
		t.Fatalf("ranking size %d", len(ranking))
	}
	rank := map[string]int{}
	for i, imp := range ranking {
		rank[imp.Name] = i
	}
	// Knobs with a strong (near-)monotone effect on TeraSort must rank
	// high: executor memory drives the container-rejection cliff and page
	// cache, NodeManager memory gates scheduling, instances drive
	// parallelism, replication multiplies output I/O. (Knobs with
	// non-monotone effects, like executor cores, are invisible to a
	// *linear* analysis — that limitation is inherent to Lasso ranking.)
	for _, important := range []string{
		"spark.executor.memory",
		"yarn.nodemanager.resource.memory-mb",
		"spark.executor.instances",
		"dfs.replication",
	} {
		if rank[important] >= 10 {
			t.Errorf("%s ranked %d, expected top 10", important, rank[important])
		}
	}
	if rank["spark.kryoserializer.buffer.max"] < 5 {
		t.Errorf("cosmetic knob ranked %d, expected low importance", rank["spark.kryoserializer.buffer.max"])
	}
}

func TestTopK(t *testing.T) {
	ranking := []Importance{{Index: 7}, {Index: 2}, {Index: 9}}
	got := TopK(ranking, 2)
	if len(got) != 2 || got[0] != 7 || got[1] != 2 {
		t.Fatalf("TopK = %v", got)
	}
	if got := TopK(ranking, 10); len(got) != 3 {
		t.Fatalf("overlong TopK = %v", got)
	}
}

func TestKnobImportanceDimensionMismatch(t *testing.T) {
	space := config.MustNewSpace([]config.Param{
		{Name: "a", Kind: config.Numeric, Min: 0, Max: 1, Default: 0},
		{Name: "b", Kind: config.Numeric, Min: 0, Max: 1, Default: 0},
	})
	_, err := KnobImportance(space, [][]float64{{0.5}}, []float64{1}, 0.1)
	if err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}
