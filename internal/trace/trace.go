// Package trace is the tuning flight recorder: a structured, per-session
// event stream that makes every online tuning decision auditable after the
// fact. Where package obs aggregates (counters, histograms — "how many
// Twin-Q rejections fleet-wide?"), package trace records the individual
// decisions behind those aggregates — every candidate action the Twin-Q
// Optimizer scored with both critic values, the reward decomposition of
// every observation, which RDPER pool each transition entered — so an
// operator can answer "why did session X pick this configuration at step
// 12, and what did it reject?".
//
// The recorder is strictly passive: it consumes no randomness and never
// feeds anything back into the tuner, so tuning decisions are bit-identical
// with tracing on or off (core's determinism regression test enforces
// this). Every entry point is nil-safe — a nil *Session, nil *Span or nil
// Recorder interface value degenerates to a no-op — so call sites never
// branch and an untraced tuner pays only a nil check.
//
// Storage is two-tier: each session keeps a bounded in-memory ring of
// recent events (served by GET /v1/sessions/{id}/trace) and, optionally, an
// append-only JSONL spool on disk that survives the session (read by
// cmd/deepcat-trace). Chrome trace-event export for Perfetto or
// chrome://tracing lives in chrome.go.
package trace

import (
	"strconv"
	"sync"
	"time"
)

// Event kinds.
const (
	// KindSpan is a completed timed operation (suggest, observe,
	// train_once, checkpoint, warehouse_ingest, donor_adopt, ...). The
	// event's Time is the span start and DurNS its duration, so one event
	// describes the whole span.
	KindSpan = "span"
	// KindCandidate is one candidate action scored by the Twin-Q
	// Optimizer, including the raw actor output (Try == 1).
	KindCandidate = "twinq_candidate"
	// KindReward is the reward decomposition of one observation.
	KindReward = "reward"
	// KindRoute is one RDPER routing decision: which pool a transition
	// entered and the threshold that sent it there.
	KindRoute = "rdper_route"
)

// Candidate records one Twin-Q Optimizer scoring (Algorithm 1): the
// candidate action, both critic outputs, the min-Q score the verdict is
// based on, and the threshold in force. Try 1 is the raw actor
// recommendation; higher tries are Gaussian perturbations of it.
type Candidate struct {
	Try      int       `json:"try"`
	Action   []float64 `json:"action"`
	Q1       float64   `json:"q1"`
	Q2       float64   `json:"q2"`
	MinQ     float64   `json:"min_q"`
	QTh      float64   `json:"q_th"`
	Accepted bool      `json:"accepted"`
}

// RewardBreakdown records every term of one reward computation, so the
// number the agent learned from can be re-derived by hand. PerfE and
// SpeedupTarget are zero for the "delta" (CDBTune-style) mode, which has no
// expected-performance term.
type RewardBreakdown struct {
	Mode          string  `json:"mode"`
	ExecTime      float64 `json:"exec_time"`
	PrevTime      float64 `json:"prev_time"`
	DefTime       float64 `json:"def_time"`
	SpeedupTarget float64 `json:"speedup_target,omitempty"`
	PerfE         float64 `json:"perf_e,omitempty"`
	Reward        float64 `json:"reward"`
}

// Route records one RDPER routing decision and the pool sizes after it.
type Route struct {
	Pool    string  `json:"pool"` // "high" or "low"
	RTh     float64 `json:"r_th"`
	Reward  float64 `json:"reward"`
	HighLen int     `json:"high_len"`
	LowLen  int     `json:"low_len"`
}

// Event is one flight-recorder entry. Exactly one of Candidate, Reward and
// Route is set for the decision kinds; span events carry their name,
// duration and string attributes instead.
type Event struct {
	Seq  uint64    `json:"seq"`
	Time time.Time `json:"time"`
	Kind string    `json:"kind"`
	// Step is the 1-based online tuning step the event belongs to, 0 when
	// emitted outside any step (session construction, offline training).
	Step int `json:"step,omitempty"`

	// Span and DurNS are set for KindSpan: Time is the span's start.
	Span  string `json:"span,omitempty"`
	DurNS int64  `json:"dur_ns,omitempty"`
	// Attrs carries span attributes (request_id, tries, donor, ...).
	Attrs map[string]string `json:"attrs,omitempty"`

	Candidate *Candidate       `json:"candidate,omitempty"`
	Reward    *RewardBreakdown `json:"reward,omitempty"`
	Route     *Route           `json:"route,omitempty"`
}

// Recorder is what instrumented code (core.DeepCAT, rl.RDPER, the tuning
// service) emits events through. Implementations must be safe for
// concurrent use and must not mutate the event's slices or maps after Emit
// returns. A nil Recorder is valid and means tracing is off.
type Recorder interface {
	Emit(ev Event)
}

// Options configures a session recorder.
type Options struct {
	// RingSize bounds the in-memory event ring; older events are evicted.
	// <= 0 selects DefaultRingSize.
	RingSize int
	// Spool, when non-nil, additionally appends every event to an on-disk
	// JSONL file; the recorder owns it and closes it on Close.
	Spool *Spool
}

// DefaultRingSize is the ring capacity when Options.RingSize is zero: large
// enough to hold several full online steps (a 64-try Twin-Q search plus 24
// fine-tune spans per step) without unbounded growth.
const DefaultRingSize = 512

// Session is the per-tuning-session flight recorder: a bounded ring of
// recent events plus an optional JSONL spool. All methods are safe for
// concurrent use and safe on a nil receiver.
type Session struct {
	mu      sync.Mutex
	seq     uint64
	step    int
	buf     []Event
	next    int
	full    bool
	dropped uint64
	spool   *Spool
	now     func() time.Time
}

// NewSession builds a recorder.
func NewSession(opts Options) *Session {
	size := opts.RingSize
	if size <= 0 {
		size = DefaultRingSize
	}
	return &Session{
		buf:   make([]Event, size),
		spool: opts.Spool,
		now:   time.Now,
	}
}

// SetStep sets the current online tuning step; subsequent events with a
// zero Step are stamped with it. The tuning service calls it once per
// suggest, before handing control to the tuner.
func (s *Session) SetStep(step int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.step = step
	s.mu.Unlock()
}

// Emit appends one event, stamping its sequence number and, when unset, its
// time and step. The ring keeps the most recent events; the spool, if any,
// keeps everything (best-effort — a spool write error never fails the
// tuning path).
func (s *Session) Emit(ev Event) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.seq++
	ev.Seq = s.seq
	if ev.Time.IsZero() {
		ev.Time = s.now()
	}
	if ev.Step == 0 {
		ev.Step = s.step
	}
	if s.full {
		s.dropped++
	}
	s.buf[s.next] = ev
	s.next++
	if s.next == len(s.buf) {
		s.next = 0
		s.full = true
	}
	spool := s.spool
	s.mu.Unlock()
	if spool != nil {
		_ = spool.Write(ev)
	}
}

// Recent returns up to n of the most recent events, oldest first. n <= 0
// returns everything still in the ring.
func (s *Session) Recent(n int) []Event {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	have := s.next
	if s.full {
		have = len(s.buf)
	}
	if n <= 0 || n > have {
		n = have
	}
	out := make([]Event, 0, n)
	start := s.next - n
	if start < 0 {
		start += len(s.buf)
	}
	for i := 0; i < n; i++ {
		out = append(out, s.buf[(start+i)%len(s.buf)])
	}
	return out
}

// Len returns the number of events currently held in the ring.
func (s *Session) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.full {
		return len(s.buf)
	}
	return s.next
}

// Dropped returns how many events the ring has evicted since creation (they
// remain in the spool when one is attached).
func (s *Session) Dropped() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// SpoolPath returns the path of the attached spool, "" when none.
func (s *Session) SpoolPath() string {
	if s == nil || s.spool == nil {
		return ""
	}
	return s.spool.Path()
}

// Close releases the spool, if any. The ring stays readable.
func (s *Session) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	spool := s.spool
	s.spool = nil
	s.mu.Unlock()
	if spool == nil {
		return nil
	}
	return spool.Close()
}

// Span measures one timed operation. Obtain it from Begin, optionally add
// attributes, then End it; a nil *Span (tracing off) no-ops throughout.
type Span struct {
	rec   Recorder
	name  string
	start time.Time
	attrs map[string]string
}

// Begin starts a span on r. With a nil recorder — a nil interface or a nil
// *Session behind one — it returns nil, which every Span method tolerates,
// so call sites need no branches (and pay no time.Now call when tracing is
// off).
func Begin(r Recorder, name string) *Span {
	if r == nil {
		return nil
	}
	if s, ok := r.(*Session); ok && s == nil {
		return nil
	}
	return &Span{rec: r, name: name, start: time.Now()}
}

// Attr attaches a string attribute; it returns the span for chaining.
func (sp *Span) Attr(key, value string) *Span {
	if sp == nil {
		return nil
	}
	if sp.attrs == nil {
		sp.attrs = make(map[string]string, 4)
	}
	sp.attrs[key] = value
	return sp
}

// AttrInt attaches an integer attribute.
func (sp *Span) AttrInt(key string, v int) *Span {
	return sp.Attr(key, strconv.Itoa(v))
}

// AttrFloat attaches a float attribute in shortest-round-trip form.
func (sp *Span) AttrFloat(key string, v float64) *Span {
	return sp.Attr(key, strconv.FormatFloat(v, 'g', -1, 64))
}

// AttrBool attaches a boolean attribute.
func (sp *Span) AttrBool(key string, v bool) *Span {
	return sp.Attr(key, strconv.FormatBool(v))
}

// End emits the completed span: one KindSpan event whose Time is the span's
// start and DurNS the elapsed time.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.rec.Emit(Event{
		Kind:  KindSpan,
		Time:  sp.start,
		Span:  sp.name,
		DurNS: time.Since(sp.start).Nanoseconds(),
		Attrs: sp.attrs,
	})
}
