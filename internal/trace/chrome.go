package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the Chrome trace-event format (the JSON
// array flavor), loadable in Perfetto and chrome://tracing. Timestamps and
// durations are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant-event scope
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the JSON-object container format ({"traceEvents": [...]}),
// which both viewers accept and which leaves room for metadata.
type chromeFile struct {
	TraceEvents []chromeEvent     `json:"traceEvents"`
	Metadata    map[string]string `json:"metadata,omitempty"`
}

// WriteChrome renders events as Chrome trace-event JSON. Span events become
// complete ("X") slices with their attributes as args; decision events
// (Twin-Q candidates, reward decompositions, RDPER routing) become instant
// ("i") events carrying their full payload, so a Perfetto query can pull Q
// values straight out of the trace. sessionID names the process track.
func WriteChrome(w io.Writer, sessionID string, events []Event) error {
	out := chromeFile{
		TraceEvents: make([]chromeEvent, 0, len(events)+1),
		Metadata:    map[string]string{"session": sessionID},
	}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 1, Tid: 1,
		Args: map[string]any{"name": "deepcat-session " + sessionID},
	})
	for _, ev := range events {
		out.TraceEvents = append(out.TraceEvents, chromeFromEvent(ev, 1, 1))
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("trace: write chrome trace: %w", err)
	}
	return nil
}

// chromeFromEvent converts one flight-recorder event into a Chrome trace
// event on the given process/thread track. Span events become complete
// ("X") slices; decision events become instant ("i") events carrying their
// full payload.
func chromeFromEvent(ev Event, pid, tid int) chromeEvent {
	ce := chromeEvent{
		Ts:  float64(ev.Time.UnixNano()) / 1e3,
		Pid: pid,
		Tid: tid,
	}
	args := map[string]any{"seq": ev.Seq}
	if ev.Step > 0 {
		args["step"] = ev.Step
	}
	switch ev.Kind {
	case KindSpan:
		ce.Name = ev.Span
		ce.Ph = "X"
		ce.Dur = float64(ev.DurNS) / 1e3
		for k, v := range ev.Attrs {
			args[k] = v
		}
	case KindCandidate:
		c := ev.Candidate
		verdict := "rejected"
		if c.Accepted {
			verdict = "accepted"
		}
		ce.Name = fmt.Sprintf("twinq try %d (%s)", c.Try, verdict)
		ce.Ph = "i"
		ce.S = "t"
		args["q1"] = c.Q1
		args["q2"] = c.Q2
		args["min_q"] = c.MinQ
		args["q_th"] = c.QTh
		args["try"] = c.Try
		args["accepted"] = c.Accepted
	case KindReward:
		r := ev.Reward
		ce.Name = "reward"
		ce.Ph = "i"
		ce.S = "t"
		args["mode"] = r.Mode
		args["exec_time"] = r.ExecTime
		args["prev_time"] = r.PrevTime
		args["def_time"] = r.DefTime
		args["reward"] = r.Reward
		if r.Mode != "delta" {
			args["speedup_target"] = r.SpeedupTarget
			args["perf_e"] = r.PerfE
		}
	case KindRoute:
		rt := ev.Route
		ce.Name = "rdper " + rt.Pool
		ce.Ph = "i"
		ce.S = "t"
		args["pool"] = rt.Pool
		args["r_th"] = rt.RTh
		args["reward"] = rt.Reward
		args["high_len"] = rt.HighLen
		args["low_len"] = rt.LowLen
	default:
		ce.Name = ev.Kind
		ce.Ph = "i"
		ce.S = "t"
	}
	ce.Args = args
	return ce
}
