package trace

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// writeSpoolFile spools the given events into dir/name.jsonl.
func writeSpoolFile(t *testing.T, dir, name string, events []Event) {
	t.Helper()
	sp, err := OpenSpool(filepath.Join(dir, name+".jsonl"), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if err := sp.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
}

func spanEvent(name, traceID string, at time.Time, durNS int64) Event {
	return Event{
		Time: at, Kind: KindSpan, Span: name, DurNS: durNS,
		Attrs: map[string]string{AttrTraceID: traceID},
	}
}

func TestCollectTracesStitchesAcrossDirs(t *testing.T) {
	base := t.TempDir()
	router := filepath.Join(base, "router")
	shard := filepath.Join(base, "shard1")
	for _, d := range []string{router, shard} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	t0 := time.Unix(100, 0).UTC()
	writeSpoolFile(t, router, "_server", []Event{
		spanEvent("http.suggest", "aaa", t0, 5e6),
		spanEvent("fleet.proxy", "aaa", t0.Add(time.Millisecond), 4e6),
		{Time: t0, Kind: KindSpan, Span: "no_trace_ctx"}, // no trace id: skipped
	})
	writeSpoolFile(t, shard, "_server", []Event{
		spanEvent("http.suggest", "aaa", t0.Add(2*time.Millisecond), 2e6),
		spanEvent("http.observe", "bbb", t0.Add(time.Second), 1e6),
	})

	traces, err := CollectTraces([]string{router, shard})
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 {
		t.Fatalf("got %d traces, want 2: %v", len(traces), traces)
	}
	if got := len(traces["aaa"]); got != 3 {
		t.Errorf("trace aaa: %d events, want 3", got)
	}
	if got := Sources(traces["aaa"]); len(got) != 2 || got[0] != "router/_server" || got[1] != "shard1/_server" {
		t.Errorf("trace aaa sources = %v", got)
	}
	if got := BestTrace(traces); got != "aaa" {
		t.Errorf("BestTrace = %q, want aaa (spans two sources)", got)
	}
}

func TestCollectTracesReadsRotatedSpool(t *testing.T) {
	dir := t.TempDir()
	t0 := time.Unix(200, 0).UTC()
	writeSpoolFile(t, dir, "_server", []Event{spanEvent("late", "ccc", t0.Add(time.Second), 1e6)})
	// The rotated predecessor holds the older half of the trace.
	old, err := os.Create(filepath.Join(dir, "_server.jsonl.1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewEncoder(old).Encode(spanEvent("early", "ccc", t0, 1e6)); err != nil {
		t.Fatal(err)
	}
	old.Close()

	traces, err := CollectTraces([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	evs := traces["ccc"]
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2 (rotated + live)", len(evs))
	}
	if evs[0].Event.Span != "early" || evs[1].Event.Span != "late" {
		t.Errorf("rotated events must come first: %q then %q", evs[0].Event.Span, evs[1].Event.Span)
	}
}

func TestBestTraceTieBreaks(t *testing.T) {
	ev := func(src string) SourcedEvent {
		return SourcedEvent{Source: src, Event: Event{Kind: KindSpan, Span: "s"}}
	}
	traces := map[string][]SourcedEvent{
		"zz": {ev("a")},
		"aa": {ev("a")},
		"mm": {ev("a"), ev("a")}, // same source count, more events
	}
	if got := BestTrace(traces); got != "mm" {
		t.Errorf("BestTrace = %q, want mm (most events)", got)
	}
	delete(traces, "mm")
	if got := BestTrace(traces); got != "aa" {
		t.Errorf("BestTrace = %q, want aa (lexicographic tie-break)", got)
	}
	if got := BestTrace(nil); got != "" {
		t.Errorf("BestTrace(nil) = %q, want empty", got)
	}
}

func TestWriteChromeStitchedOneTrackPerSource(t *testing.T) {
	t0 := time.Unix(300, 0).UTC()
	events := []SourcedEvent{
		{Source: "shard1/_server", Event: spanEvent("http.suggest", "dd", t0.Add(time.Millisecond), 2e6)},
		{Source: "router/_server", Event: spanEvent("fleet.proxy", "dd", t0, 4e6)},
	}
	var buf bytes.Buffer
	if err := WriteChromeStitched(&buf, "dd", events); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		Metadata map[string]string `json:"metadata"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Metadata["trace_id"] != "dd" {
		t.Errorf("metadata trace_id = %q", out.Metadata["trace_id"])
	}
	pidByName := map[string]int{}
	var spans []string
	for _, ce := range out.TraceEvents {
		if ce.Ph == "M" && ce.Name == "process_name" {
			pidByName[ce.Args["name"].(string)] = ce.Pid
			continue
		}
		spans = append(spans, ce.Name)
		want := "shard1/_server"
		if ce.Name == "fleet.proxy" {
			want = "router/_server"
		}
		if ce.Pid != pidByName[want] {
			t.Errorf("span %s on pid %d, want the %s track (pid %d)", ce.Name, ce.Pid, want, pidByName[want])
		}
	}
	if len(pidByName) != 2 || pidByName["router/_server"] == pidByName["shard1/_server"] {
		t.Errorf("want two distinct process tracks, got %v", pidByName)
	}
	// Global time order: router's proxy span starts before the shard handler.
	if len(spans) != 2 || spans[0] != "fleet.proxy" || spans[1] != "http.suggest" {
		t.Errorf("span order = %v, want [fleet.proxy http.suggest]", spans)
	}
}
