package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestWriteChrome(t *testing.T) {
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	events := []Event{
		{Seq: 1, Time: base, Kind: KindSpan, Step: 1, Span: "suggest",
			DurNS: 1_500_000, Attrs: map[string]string{"request_id": "r-42", "tries": "3"}},
		{Seq: 2, Time: base.Add(time.Millisecond), Kind: KindCandidate, Step: 1,
			Candidate: &Candidate{Try: 1, Action: []float64{0.5}, Q1: 0.1, Q2: 0.2, MinQ: 0.1, QTh: 0.3}},
		{Seq: 3, Time: base.Add(2 * time.Millisecond), Kind: KindCandidate, Step: 1,
			Candidate: &Candidate{Try: 2, Action: []float64{0.6}, Q1: 0.4, Q2: 0.5, MinQ: 0.4, QTh: 0.3, Accepted: true}},
		{Seq: 4, Time: base.Add(3 * time.Millisecond), Kind: KindReward, Step: 1,
			Reward: &RewardBreakdown{Mode: "immediate", ExecTime: 50, PrevTime: 80, DefTime: 120, SpeedupTarget: 3, PerfE: 40, Reward: -0.25}},
		{Seq: 5, Time: base.Add(4 * time.Millisecond), Kind: KindRoute, Step: 1,
			Route: &Route{Pool: "low", RTh: 0, Reward: -0.25, LowLen: 1}},
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, "s-test", events); err != nil {
		t.Fatal(err)
	}

	// The export must be a loadable Chrome trace: one JSON object holding a
	// traceEvents array Perfetto will accept.
	var file struct {
		TraceEvents []map[string]any  `json:"traceEvents"`
		Metadata    map[string]string `json:"metadata"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if file.Metadata["session"] != "s-test" {
		t.Fatalf("metadata = %v", file.Metadata)
	}
	// process_name metadata + the five events.
	if len(file.TraceEvents) != 6 {
		t.Fatalf("got %d trace events, want 6", len(file.TraceEvents))
	}
	if file.TraceEvents[0]["ph"] != "M" {
		t.Fatalf("first event is not process metadata: %v", file.TraceEvents[0])
	}

	span := file.TraceEvents[1]
	if span["ph"] != "X" || span["name"] != "suggest" {
		t.Fatalf("span event = %v", span)
	}
	if dur := span["dur"].(float64); dur != 1500 {
		t.Fatalf("span dur = %v µs, want 1500", dur)
	}
	if ts := span["ts"].(float64); ts != float64(base.UnixNano())/1e3 {
		t.Fatalf("span ts = %v", ts)
	}
	args := span["args"].(map[string]any)
	if args["request_id"] != "r-42" {
		t.Fatalf("span args lost the request id: %v", args)
	}

	cand := file.TraceEvents[3]
	if cand["ph"] != "i" || cand["name"] != "twinq try 2 (accepted)" {
		t.Fatalf("candidate event = %v", cand)
	}
	cargs := cand["args"].(map[string]any)
	if cargs["min_q"].(float64) != 0.4 || cargs["q_th"].(float64) != 0.3 || cargs["accepted"] != true {
		t.Fatalf("candidate args = %v", cargs)
	}

	reward := file.TraceEvents[4]
	rargs := reward["args"].(map[string]any)
	if rargs["perf_e"].(float64) != 40 || rargs["reward"].(float64) != -0.25 {
		t.Fatalf("reward args = %v", rargs)
	}

	route := file.TraceEvents[5]
	if route["name"] != "rdper low" {
		t.Fatalf("route event = %v", route)
	}
}

func TestWriteChromeDeltaModeOmitsPerfE(t *testing.T) {
	events := []Event{{Seq: 1, Time: time.Unix(0, 0), Kind: KindReward,
		Reward: &RewardBreakdown{Mode: "delta", ExecTime: 50, PrevTime: 80, DefTime: 120, Reward: 0.1}}}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, "s", events); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatal(err)
	}
	args := file.TraceEvents[1]["args"].(map[string]any)
	if _, ok := args["perf_e"]; ok {
		t.Fatalf("delta-mode reward carries perf_e: %v", args)
	}
	if args["mode"] != "delta" {
		t.Fatalf("reward args = %v", args)
	}
}

func TestEventJSONRoundTrip(t *testing.T) {
	// The ring events served over HTTP and the spool lines share one JSON
	// encoding; a round trip must preserve every payload.
	in := Event{Seq: 9, Time: time.Date(2026, 8, 5, 12, 0, 0, 123456789, time.UTC),
		Kind: KindCandidate, Step: 4,
		Candidate: &Candidate{Try: 2, Action: []float64{0.25, 0.75}, Q1: -0.1, Q2: 0.3, MinQ: -0.1, QTh: 0.3}}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Event
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Seq != in.Seq || !out.Time.Equal(in.Time) || out.Step != in.Step {
		t.Fatalf("round trip changed envelope: %+v", out)
	}
	if out.Candidate == nil || out.Candidate.MinQ != in.Candidate.MinQ ||
		len(out.Candidate.Action) != 2 || out.Candidate.Action[1] != 0.75 {
		t.Fatalf("round trip changed candidate: %+v", out.Candidate)
	}
}
