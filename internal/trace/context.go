package trace

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"strings"
)

// TraceparentHeader is the HTTP header carrying the trace context between
// fleet hops, in the W3C Trace Context format:
//
//	00-<32 hex trace-id>-<16 hex span-id>-<2 hex flags>
//
// The client mints a context per logical call, every shard echoes it on the
// response, and the 307/proxy forwarding paths pass it downstream, so all
// spans a request produces — router, owning shard, spine — share one trace
// id and cmd/deepcat-trace can stitch them across shard spools.
const TraceparentHeader = "traceparent"

// Span attribute keys under which propagated context lands on recorded
// spans. deepcat-trace's stitcher groups spans by AttrTraceID.
const (
	AttrTraceID    = "trace_id"
	AttrParentSpan = "parent_span"
)

// SpanContext is a propagated trace identity: which end-to-end request a
// span belongs to (TraceID) and which hop emitted it (SpanID). It is pure
// labeling — carrying or recording one consumes no tuner randomness (ids
// come from crypto/rand, never from a session's seeded RNG stream) and
// feeds nothing back into any decision.
type SpanContext struct {
	// TraceID is 32 lowercase hex characters shared by every hop.
	TraceID string
	// SpanID is 16 lowercase hex characters identifying one hop.
	SpanID string
}

// NewSpanContext mints a fresh root context from crypto/rand.
func NewSpanContext() SpanContext {
	var b [24]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return SpanContext{
		TraceID: hex.EncodeToString(b[:16]),
		SpanID:  hex.EncodeToString(b[16:]),
	}
}

// Child derives the next hop's context: same trace id, fresh span id.
func (c SpanContext) Child() SpanContext {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		panic(err)
	}
	return SpanContext{TraceID: c.TraceID, SpanID: hex.EncodeToString(b[:])}
}

// Valid reports whether the context carries a well-formed, non-zero trace
// id and span id.
func (c SpanContext) Valid() bool {
	return isHexID(c.TraceID, 32) && isHexID(c.SpanID, 16)
}

// Traceparent renders the context as a traceparent header value (version
// 00, sampled flag set — the recorder has no sampling).
func (c SpanContext) Traceparent() string {
	return "00-" + c.TraceID + "-" + c.SpanID + "-01"
}

// ParseTraceparent parses a traceparent header value. ok is false for an
// empty, malformed, all-zero or future-versioned value; the caller then
// mints a fresh context instead of propagating garbage.
func ParseTraceparent(v string) (SpanContext, bool) {
	parts := strings.Split(strings.TrimSpace(v), "-")
	if len(parts) != 4 || parts[0] != "00" {
		return SpanContext{}, false
	}
	c := SpanContext{TraceID: parts[1], SpanID: parts[2]}
	if !c.Valid() || len(parts[3]) != 2 || !isHex(parts[3]) {
		return SpanContext{}, false
	}
	return c, true
}

// isHexID reports whether s is exactly n lowercase hex chars and not all
// zeros (the W3C invalid id).
func isHexID(s string, n int) bool {
	if len(s) != n || !isHex(s) {
		return false
	}
	return strings.Trim(s, "0") != ""
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// ctxKey keys the SpanContext in a context.Context.
type ctxKey struct{}

// ContextWith returns ctx carrying sc; handlers stash the parsed (or
// minted) request context here so session spans deep in the call tree can
// label themselves without new plumbing through every signature.
func ContextWith(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext extracts the propagated SpanContext, ok false when none.
func FromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(ctxKey{}).(SpanContext)
	return sc, ok && sc.Valid()
}

// AttrContext labels a span with the propagated context (trace id and the
// parent hop's span id); nil-safe like every Span method.
func (sp *Span) AttrContext(sc SpanContext) *Span {
	if sp == nil || !sc.Valid() {
		return sp
	}
	return sp.Attr(AttrTraceID, sc.TraceID).Attr(AttrParentSpan, sc.SpanID)
}
