package trace

import (
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	// Every entry point must no-op on nil so instrumented code never
	// branches: a nil *Session, a nil Recorder, a nil *Span.
	var s *Session
	s.SetStep(3)
	s.Emit(Event{Kind: KindReward})
	if got := s.Recent(0); got != nil {
		t.Fatalf("nil session Recent = %v, want nil", got)
	}
	if s.Len() != 0 || s.Dropped() != 0 || s.SpoolPath() != "" {
		t.Fatal("nil session not zero-valued")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("nil session Close = %v", err)
	}

	if sp := Begin(nil, "x"); sp != nil {
		t.Fatal("Begin(nil) != nil")
	}
	// A nil *Session behind the Recorder interface must also be treated as
	// tracing-off — the classic typed-nil trap.
	if sp := Begin(s, "x"); sp != nil {
		t.Fatal("Begin(typed-nil *Session) != nil")
	}
	var span *Span
	span.Attr("k", "v").AttrInt("i", 1).AttrFloat("f", 0.5).AttrBool("b", true).End()
}

func TestRingEviction(t *testing.T) {
	s := NewSession(Options{RingSize: 4})
	for i := 0; i < 10; i++ {
		s.Emit(Event{Kind: KindRoute, Route: &Route{HighLen: i}})
	}
	if got := s.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := s.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	events := s.Recent(0)
	if len(events) != 4 {
		t.Fatalf("Recent(0) returned %d events, want 4", len(events))
	}
	// Oldest first, and the oldest survivors are emits 7..10 (seq 7..10).
	for i, ev := range events {
		if want := uint64(7 + i); ev.Seq != want {
			t.Fatalf("event %d seq = %d, want %d", i, ev.Seq, want)
		}
		if want := 6 + i; ev.Route.HighLen != want {
			t.Fatalf("event %d payload = %d, want %d", i, ev.Route.HighLen, want)
		}
	}
	// A limited fetch returns the newest n, still oldest first.
	last2 := s.Recent(2)
	if len(last2) != 2 || last2[0].Seq != 9 || last2[1].Seq != 10 {
		t.Fatalf("Recent(2) = %+v, want seq 9,10", last2)
	}
	// Over-asking is clamped to what the ring holds.
	if got := s.Recent(99); len(got) != 4 {
		t.Fatalf("Recent(99) returned %d events, want 4", len(got))
	}
}

func TestStepAndTimeStamping(t *testing.T) {
	s := NewSession(Options{RingSize: 8})
	fixed := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	s.now = func() time.Time { return fixed }

	s.Emit(Event{Kind: KindReward, Reward: &RewardBreakdown{}})
	s.SetStep(7)
	s.Emit(Event{Kind: KindReward, Reward: &RewardBreakdown{}})
	s.Emit(Event{Kind: KindReward, Step: 3, Reward: &RewardBreakdown{}})
	preset := fixed.Add(-time.Hour)
	s.Emit(Event{Kind: KindSpan, Span: "x", Time: preset})

	events := s.Recent(0)
	if events[0].Step != 0 {
		t.Fatalf("pre-SetStep event stamped with step %d", events[0].Step)
	}
	if events[1].Step != 7 {
		t.Fatalf("event step = %d, want 7 from SetStep", events[1].Step)
	}
	if events[2].Step != 3 {
		t.Fatalf("explicit step overridden to %d", events[2].Step)
	}
	if !events[1].Time.Equal(fixed) {
		t.Fatalf("unset time not stamped: %v", events[1].Time)
	}
	if !events[3].Time.Equal(preset) {
		t.Fatalf("preset time overridden: %v", events[3].Time)
	}
	for i, ev := range events {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d seq = %d", i, ev.Seq)
		}
	}
}

func TestSpanAttributes(t *testing.T) {
	s := NewSession(Options{RingSize: 8})
	sp := Begin(s, "work")
	if sp == nil {
		t.Fatal("Begin over a live session returned nil")
	}
	sp.Attr("who", "me").AttrInt("n", 3).AttrFloat("q", 0.25).AttrBool("ok", true)
	sp.End()

	events := s.Recent(0)
	if len(events) != 1 {
		t.Fatalf("got %d events, want 1", len(events))
	}
	ev := events[0]
	if ev.Kind != KindSpan || ev.Span != "work" {
		t.Fatalf("span event = %+v", ev)
	}
	if ev.DurNS < 0 {
		t.Fatalf("negative duration %d", ev.DurNS)
	}
	want := map[string]string{"who": "me", "n": "3", "q": "0.25", "ok": "true"}
	for k, v := range want {
		if ev.Attrs[k] != v {
			t.Fatalf("attr %s = %q, want %q", k, ev.Attrs[k], v)
		}
	}
}
