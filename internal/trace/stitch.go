package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Cross-shard trace stitching. Every process in a fleet spools its spans
// independently — the router's _server spool, each shard's _server and
// per-session spools, the spine's learner spool. A request that hops
// router -> owner shard -> spine leaves spans in three different files,
// tied together only by the trace_id attribute the propagated traceparent
// header carried. CollectTraces re-joins them: it scans whole trace
// directories, groups every trace_id-carrying event by its id and
// remembers which spool (source) each one came from, so one request's
// path through the fleet can be rendered as a single timeline.

// SourcedEvent is one flight-recorder event annotated with the spool it
// was read from. Source is "<dir-base>/<spool-base>" (e.g.
// "shard1/_server" or "router/s-1f"), which doubles as the process-track
// name in stitched Chrome exports.
type SourcedEvent struct {
	Source string
	Event  Event
}

// CollectTraces scans every *.jsonl spool (plus its rotated <path>.1
// predecessor) under each directory and groups span events by their
// trace_id attribute. Events without a trace context are skipped — only
// propagated request traces are stitchable. The result maps trace id to
// that trace's events across all sources; events keep per-spool order.
func CollectTraces(dirs []string) (map[string][]SourcedEvent, error) {
	traces := make(map[string][]SourcedEvent)
	for _, dir := range dirs {
		matches, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
		if err != nil {
			return nil, fmt.Errorf("trace: scan %s: %w", dir, err)
		}
		sort.Strings(matches)
		for _, path := range matches {
			source := filepath.Base(filepath.Clean(dir)) + "/" +
				strings.TrimSuffix(filepath.Base(path), ".jsonl")
			var events []Event
			if _, err := os.Stat(path + ".1"); err == nil {
				old, err := ReadSpool(path + ".1")
				if err != nil {
					return nil, err
				}
				events = old
			}
			cur, err := ReadSpool(path)
			if err != nil {
				return nil, err
			}
			events = append(events, cur...)
			for _, ev := range events {
				id := ev.Attrs[AttrTraceID]
				if id == "" {
					continue
				}
				traces[id] = append(traces[id], SourcedEvent{Source: source, Event: ev})
			}
		}
	}
	return traces, nil
}

// Sources returns the distinct sources contributing to a trace, sorted.
func Sources(events []SourcedEvent) []string {
	seen := make(map[string]bool)
	for _, se := range events {
		seen[se.Source] = true
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// BestTrace picks the most interesting trace from a CollectTraces result:
// the one spanning the most distinct sources (the deepest cross-shard
// path), ties broken by event count then lexicographically smallest id so
// the choice is deterministic. Returns "" for an empty map.
func BestTrace(traces map[string][]SourcedEvent) string {
	best, bestSrc, bestLen := "", 0, 0
	for id, evs := range traces {
		nsrc := len(Sources(evs))
		better := nsrc > bestSrc ||
			(nsrc == bestSrc && len(evs) > bestLen) ||
			(nsrc == bestSrc && len(evs) == bestLen && (best == "" || id < best))
		if better {
			best, bestSrc, bestLen = id, nsrc, len(evs)
		}
	}
	return best
}

// WriteChromeStitched renders one stitched trace as Chrome trace-event
// JSON with one process track per source, so a cross-shard request shows
// as aligned slices on the router's, the owning shard's and the spine's
// tracks. Events are emitted in global time order.
func WriteChromeStitched(w io.Writer, traceID string, events []SourcedEvent) error {
	sources := Sources(events)
	pid := make(map[string]int, len(sources))
	out := chromeFile{
		TraceEvents: make([]chromeEvent, 0, len(events)+len(sources)),
		Metadata:    map[string]string{"trace_id": traceID},
	}
	for i, src := range sources {
		pid[src] = i + 1
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: i + 1, Tid: 1,
			Args: map[string]any{"name": src},
		})
	}
	evs := append([]SourcedEvent(nil), events...)
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if !a.Event.Time.Equal(b.Event.Time) {
			return a.Event.Time.Before(b.Event.Time)
		}
		if a.Source != b.Source {
			return a.Source < b.Source
		}
		return a.Event.Seq < b.Event.Seq
	})
	for _, se := range evs {
		out.TraceEvents = append(out.TraceEvents, chromeFromEvent(se.Event, pid[se.Source], 1))
	}
	if err := json.NewEncoder(w).Encode(out); err != nil {
		return fmt.Errorf("trace: write stitched chrome trace: %w", err)
	}
	return nil
}
