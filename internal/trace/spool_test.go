package trace

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func spoolEvents(t *testing.T, path string) []Event {
	t.Helper()
	events, err := ReadSpool(path)
	if err != nil {
		t.Fatal(err)
	}
	return events
}

func TestSpoolRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.jsonl")
	sp, err := OpenSpool(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if err := sp.Write(Event{Seq: uint64(i), Kind: KindCandidate,
			Candidate: &Candidate{Try: i, MinQ: float64(i) / 10, Action: []float64{0.1, 0.2}}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	events := spoolEvents(t, path)
	if len(events) != 5 {
		t.Fatalf("read %d events, want 5", len(events))
	}
	for i, ev := range events {
		if ev.Seq != uint64(i+1) || ev.Candidate == nil || ev.Candidate.Try != i+1 {
			t.Fatalf("event %d = %+v", i, ev)
		}
	}
	if err := sp.Close(); err != nil {
		t.Fatalf("double close = %v", err)
	}
	if err := sp.Write(Event{}); err == nil {
		t.Fatal("write after close succeeded")
	}
}

func TestSpoolTornTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.jsonl")
	sp, err := OpenSpool(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := sp.Write(Event{Seq: uint64(i), Kind: KindRoute, Route: &Route{Pool: "high"}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a torn, newline-less JSON fragment.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":4,"kind":"rdper_ro`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Reading tolerates the tear...
	if got := spoolEvents(t, path); len(got) != 3 {
		t.Fatalf("read %d events from torn spool, want 3", len(got))
	}
	// ...and reopening truncates it, so the next append yields a clean file.
	sp, err = OpenSpool(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Write(Event{Seq: 4, Kind: KindRoute, Route: &Route{Pool: "low"}}); err != nil {
		t.Fatal(err)
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	events := spoolEvents(t, path)
	if len(events) != 4 {
		t.Fatalf("after recovery read %d events, want 4", len(events))
	}
	if events[3].Route.Pool != "low" {
		t.Fatalf("recovered tail event = %+v", events[3])
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "rdper_ro\n") || !strings.HasSuffix(string(data), "\n") {
		t.Fatalf("torn fragment survived recovery:\n%s", data)
	}
}

func TestSpoolWholeFileTorn(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.jsonl")
	if err := os.WriteFile(path, []byte(`{"seq":1,"kind":"span"`), 0o644); err != nil {
		t.Fatal(err)
	}
	sp, err := OpenSpool(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != 0 {
		t.Fatalf("newline-less spool not truncated to 0, size %d", st.Size())
	}
}

func TestSpoolRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.jsonl")
	// A threshold small enough that a handful of events trips rotation.
	sp, err := OpenSpool(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	total := 40
	for i := 1; i <= total; i++ {
		if err := sp.Write(Event{Seq: uint64(i), Kind: KindRoute, Route: &Route{Pool: "high", HighLen: i}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	old := spoolEvents(t, path+".1")
	cur := spoolEvents(t, path)
	if len(old) == 0 {
		t.Fatal("no rotated generation written")
	}
	// Rotation drops at most one older generation; the current file plus
	// the previous one must end with an unbroken suffix of the stream.
	joined := append(old, cur...)
	last := joined[len(joined)-1]
	if last.Seq != uint64(total) {
		t.Fatalf("newest event seq = %d, want %d", last.Seq, total)
	}
	for i := 1; i < len(joined); i++ {
		if joined[i].Seq != joined[i-1].Seq+1 {
			t.Fatalf("gap in rotated stream: seq %d follows %d", joined[i].Seq, joined[i-1].Seq)
		}
	}
}
