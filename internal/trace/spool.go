package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// DefaultSpoolMaxBytes is the rotation threshold when Open is given zero: a
// few hundred thousand events before the previous generation is dropped.
const DefaultSpoolMaxBytes = 8 << 20

// Spool is an append-only JSONL event file: one JSON-encoded Event per
// line. When the file exceeds the rotation threshold it is renamed to
// <path>.1 (replacing any previous generation) and a fresh file is started,
// so a long-lived session is bounded by roughly twice the threshold on
// disk. Opening an existing spool truncates a torn final line — the residue
// of a crash mid-write — back to the last newline, so recovery never yields
// an unparseable tail.
type Spool struct {
	mu       sync.Mutex
	path     string
	f        *os.File
	w        *bufio.Writer
	size     int64
	maxBytes int64
	closed   bool
}

// OpenSpool opens (or creates) the spool at path. maxBytes <= 0 selects
// DefaultSpoolMaxBytes.
func OpenSpool(path string, maxBytes int64) (*Spool, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultSpoolMaxBytes
	}
	size, err := recoverSpool(path)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("trace: open spool: %w", err)
	}
	return &Spool{path: path, f: f, w: bufio.NewWriter(f), size: size, maxBytes: maxBytes}, nil
}

// recoverSpool truncates a torn trailing line (no final newline) and
// returns the resulting file size; a missing file is size 0.
func recoverSpool(path string) (int64, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("trace: recover spool: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, fmt.Errorf("trace: recover spool: %w", err)
	}
	size := st.Size()
	if size == 0 {
		return 0, nil
	}
	// Walk backwards from the end to the last newline; everything after it
	// is a torn line from a crash mid-append.
	buf := make([]byte, 4096)
	end := size
	for end > 0 {
		n := int64(len(buf))
		if n > end {
			n = end
		}
		if _, err := f.ReadAt(buf[:n], end-n); err != nil {
			return 0, fmt.Errorf("trace: recover spool: %w", err)
		}
		for i := n - 1; i >= 0; i-- {
			if buf[i] == '\n' {
				keep := end - n + i + 1
				if keep < size {
					if err := f.Truncate(keep); err != nil {
						return 0, fmt.Errorf("trace: recover spool: %w", err)
					}
				}
				return keep, nil
			}
		}
		end -= n
	}
	// No newline anywhere: the whole file is one torn line.
	if err := f.Truncate(0); err != nil {
		return 0, fmt.Errorf("trace: recover spool: %w", err)
	}
	return 0, nil
}

// Path returns the spool's current file path.
func (sp *Spool) Path() string { return sp.path }

// Write appends one event as a JSON line, rotating first when the file has
// grown past the threshold.
func (sp *Spool) Write(ev Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("trace: encode event: %w", err)
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.closed {
		return fmt.Errorf("trace: spool closed")
	}
	if sp.size > 0 && sp.size+int64(len(data))+1 > sp.maxBytes {
		if err := sp.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := sp.w.Write(data); err != nil {
		return fmt.Errorf("trace: write spool: %w", err)
	}
	if err := sp.w.WriteByte('\n'); err != nil {
		return fmt.Errorf("trace: write spool: %w", err)
	}
	// Flush per event: a flight recorder that loses its newest entries in a
	// crash is not much of a flight recorder, and the event rate (tens per
	// tuning step) is nowhere near bufio's break-even point.
	if err := sp.w.Flush(); err != nil {
		return fmt.Errorf("trace: write spool: %w", err)
	}
	sp.size += int64(len(data)) + 1
	return nil
}

// rotateLocked moves the current file to <path>.1 and starts a fresh one.
func (sp *Spool) rotateLocked() error {
	if err := sp.w.Flush(); err != nil {
		return fmt.Errorf("trace: rotate spool: %w", err)
	}
	if err := sp.f.Close(); err != nil {
		return fmt.Errorf("trace: rotate spool: %w", err)
	}
	if err := os.Rename(sp.path, sp.path+".1"); err != nil {
		return fmt.Errorf("trace: rotate spool: %w", err)
	}
	f, err := os.OpenFile(sp.path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("trace: rotate spool: %w", err)
	}
	sp.f = f
	sp.w = bufio.NewWriter(f)
	sp.size = 0
	return nil
}

// Close flushes and closes the file. Further writes fail.
func (sp *Spool) Close() error {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.closed {
		return nil
	}
	sp.closed = true
	if err := sp.w.Flush(); err != nil {
		sp.f.Close()
		return fmt.Errorf("trace: close spool: %w", err)
	}
	return sp.f.Close()
}

// ReadSpool loads every event from a JSONL spool file, in file order. A
// torn or corrupt line ends the read without error (everything before it is
// returned), matching the recovery semantics of OpenSpool.
func ReadSpool(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: read spool: %w", err)
	}
	defer f.Close()
	return ReadEvents(f)
}

// ReadEvents decodes JSONL events from r until EOF or the first
// undecodable line.
func ReadEvents(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			break
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return events, fmt.Errorf("trace: read spool: %w", err)
	}
	return events, nil
}
