// Package admission implements adaptive per-shard admission control: an
// AIMD (additive-increase / multiplicative-decrease) concurrency limiter
// with priority classes, sitting in front of the serving endpoints.
//
// The limiter tracks a floating-point concurrency limit. Every successful
// request nudges it up by ~1/limit (additive increase: one full unit per
// "round trip" of limit requests); every congestion signal — a 5xx, a
// deadline expiry, or a latency breach reported by the caller — cuts it
// multiplicatively (default ×0.7), with a cooldown so one burst of
// failures counts as one signal, the same way TCP halves cwnd once per
// loss event, not once per lost packet.
//
// Priority classes map onto fractions of the current limit: Critical
// (suggest — the serving hot path) may use all of it, High (observe —
// training data, lossy-tolerable) 90%, Normal (warehouse/admin/everything
// else) 75%. Under pressure the classes shed in reverse priority order
// and the hot path keeps its headroom; under no pressure the fractions
// are invisible because the limit grows far above actual concurrency.
//
// Acquire is a handful of atomics on the happy path (no locks, no
// channels, no allocation) so it can guard a ~78µs Suggest without
// showing up in its profile.
package admission

import (
	"math"
	"sync/atomic"
	"time"
)

// Priority orders request classes for admission. Higher values get more
// of the concurrency budget and shed last.
type Priority int

const (
	// Normal is everything shed-tolerant: warehouse, traces, session
	// admin. First to shed.
	Normal Priority = iota
	// High is the observe path — training data; losing one costs a
	// transition, not a user-visible answer.
	High
	// Critical is the suggest path — the user-visible serving decision.
	// Sheds only at hard saturation.
	Critical
)

// String returns the metric-label form of the priority.
func (p Priority) String() string {
	switch p {
	case Critical:
		return "critical"
	case High:
		return "high"
	default:
		return "normal"
	}
}

// headroom is the fraction of the current limit each class may occupy.
func (p Priority) headroom() float64 {
	switch p {
	case Critical:
		return 1.0
	case High:
		return 0.90
	default:
		return 0.75
	}
}

// Config parameterizes a Limiter. The zero value selects the defaults.
type Config struct {
	// Initial is the starting concurrency limit (default 32).
	Initial float64
	// Min and Max clamp the adaptive limit (defaults 4 and 4096).
	Min, Max float64
	// DecreaseFactor is the multiplicative cut on congestion (default 0.7).
	DecreaseFactor float64
	// Cooldown is the minimum spacing between multiplicative decreases,
	// so one failure burst counts once (default 200ms).
	Cooldown time.Duration
}

func (c Config) withDefaults() Config {
	if c.Initial <= 0 {
		c.Initial = 32
	}
	if c.Min <= 0 {
		c.Min = 4
	}
	if c.Max <= 0 {
		c.Max = 4096
	}
	if c.Max < c.Min {
		c.Max = c.Min
	}
	if c.Initial < c.Min {
		c.Initial = c.Min
	}
	if c.Initial > c.Max {
		c.Initial = c.Max
	}
	if c.DecreaseFactor <= 0 || c.DecreaseFactor >= 1 {
		c.DecreaseFactor = 0.7
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 200 * time.Millisecond
	}
	return c
}

// Limiter is an AIMD concurrency limiter with priority classes. All
// methods are safe for concurrent use; Acquire/Release are lock-free.
type Limiter struct {
	cfg Config

	limitBits atomic.Uint64 // float64 bits of the current limit
	inFlight  atomic.Int64
	lastCut   atomic.Int64 // UnixNano of the last multiplicative decrease

	admitted [3]atomic.Int64 // per-priority admits
	shed     [3]atomic.Int64 // per-priority sheds
}

// New returns a Limiter with the given config (zero Config = defaults).
func New(cfg Config) *Limiter {
	cfg = cfg.withDefaults()
	l := &Limiter{cfg: cfg}
	l.limitBits.Store(math.Float64bits(cfg.Initial))
	return l
}

// Limit returns the current adaptive concurrency limit.
func (l *Limiter) Limit() float64 {
	return math.Float64frombits(l.limitBits.Load())
}

// InFlight returns the number of currently admitted requests.
func (l *Limiter) InFlight() int64 { return l.inFlight.Load() }

// Acquire tries to admit one request of the given priority. It returns
// false (a shed) when the class's share of the current limit is full.
// On true the caller MUST call Release exactly once.
func (l *Limiter) Acquire(p Priority) bool {
	limit := l.Limit()
	allowed := int64(limit * p.headroom())
	if allowed < 1 {
		allowed = 1
	}
	// Optimistic increment, revert on overshoot: one CAS-free add in the
	// admit case, which is the common one.
	if n := l.inFlight.Add(1); n > allowed {
		l.inFlight.Add(-1)
		l.shed[priorityIndex(p)].Add(1)
		return false
	}
	l.admitted[priorityIndex(p)].Add(1)
	return true
}

// Release returns an admitted request's slot and feeds the AIMD signal:
// congested=true applies a (cooldown-limited) multiplicative decrease,
// congested=false an additive increase of 1/limit.
func (l *Limiter) Release(congested bool) {
	l.inFlight.Add(-1)
	if congested {
		l.decrease()
		return
	}
	// Additive increase: limit += 1/limit per success, i.e. +1 for every
	// `limit` successes — classic AIMD probing. CAS loop; contention here
	// is bounded by the number of concurrently completing requests.
	for {
		old := l.limitBits.Load()
		cur := math.Float64frombits(old)
		if cur >= l.cfg.Max {
			return
		}
		next := cur + 1/cur
		if next > l.cfg.Max {
			next = l.cfg.Max
		}
		if l.limitBits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

func (l *Limiter) decrease() {
	now := time.Now().UnixNano()
	last := l.lastCut.Load()
	if now-last < int64(l.cfg.Cooldown) {
		return
	}
	if !l.lastCut.CompareAndSwap(last, now) {
		return // another goroutine took this loss event
	}
	for {
		old := l.limitBits.Load()
		cur := math.Float64frombits(old)
		next := cur * l.cfg.DecreaseFactor
		if next < l.cfg.Min {
			next = l.cfg.Min
		}
		if l.limitBits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// RetryAfter suggests a client backoff for a shed, scaled by how far
// over its budget the limiter is: 1s near the boundary, up to 10s at
// heavy oversubscription. Whole seconds, ready for a Retry-After header.
func (l *Limiter) RetryAfter() time.Duration {
	limit := l.Limit()
	if limit <= 0 {
		return 10 * time.Second
	}
	over := float64(l.inFlight.Load()) / limit // ≥ ~1.0 when shedding
	secs := int(over * 2)
	if secs < 1 {
		secs = 1
	}
	if secs > 10 {
		secs = 10
	}
	return time.Duration(secs) * time.Second
}

// Snapshot is a point-in-time view of the limiter for metrics and admin
// surfaces.
type Snapshot struct {
	Limit    float64
	InFlight int64
	Admitted [3]int64 // indexed by priorityIndex
	Shed     [3]int64
}

// Stats returns a snapshot of the limiter counters.
func (l *Limiter) Stats() Snapshot {
	s := Snapshot{Limit: l.Limit(), InFlight: l.inFlight.Load()}
	for i := 0; i < 3; i++ {
		s.Admitted[i] = l.admitted[i].Load()
		s.Shed[i] = l.shed[i].Load()
	}
	return s
}

// priorityIndex maps a Priority to its counter slot, tolerating
// out-of-range values.
func priorityIndex(p Priority) int {
	if p < Normal || p > Critical {
		return int(Normal)
	}
	return int(p)
}
