package admission

import (
	"sync"
	"testing"
	"time"
)

func TestDefaults(t *testing.T) {
	l := New(Config{})
	if got := l.Limit(); got != 32 {
		t.Fatalf("default initial limit = %v, want 32", got)
	}
	if l.InFlight() != 0 {
		t.Fatal("fresh limiter has in-flight requests")
	}
}

func TestAcquireRelease(t *testing.T) {
	l := New(Config{Initial: 2, Min: 2, Max: 2})
	if !l.Acquire(Critical) || !l.Acquire(Critical) {
		t.Fatal("could not fill the limit")
	}
	if l.Acquire(Critical) {
		t.Fatal("admitted past the limit")
	}
	l.Release(false)
	if !l.Acquire(Critical) {
		t.Fatal("released slot not reusable")
	}
	st := l.Stats()
	if st.Shed[priorityIndex(Critical)] != 1 {
		t.Fatalf("shed count = %d, want 1", st.Shed[priorityIndex(Critical)])
	}
}

// Lower priorities must shed before higher ones: with limit 10, Normal's
// share is 7, High's 9, Critical's 10.
func TestPriorityHeadroom(t *testing.T) {
	l := New(Config{Initial: 10, Min: 10, Max: 10})
	// Fill to Normal's ceiling.
	for i := 0; i < 7; i++ {
		if !l.Acquire(Normal) {
			t.Fatalf("Normal admit %d refused below its share", i)
		}
	}
	if l.Acquire(Normal) {
		t.Fatal("Normal admitted past its 75% share")
	}
	// High and Critical still have headroom.
	if !l.Acquire(High) || !l.Acquire(High) {
		t.Fatal("High refused inside its 90% share")
	}
	if l.Acquire(High) {
		t.Fatal("High admitted past its share")
	}
	if !l.Acquire(Critical) {
		t.Fatal("Critical refused inside the full limit")
	}
	if l.Acquire(Critical) {
		t.Fatal("Critical admitted past the full limit")
	}
}

func TestAIMDDecrease(t *testing.T) {
	l := New(Config{Initial: 100, Min: 4, Max: 200, Cooldown: time.Nanosecond})
	if !l.Acquire(Critical) {
		t.Fatal("acquire")
	}
	l.Release(true)
	if got := l.Limit(); got >= 100 {
		t.Fatalf("limit after congestion = %v, want < 100", got)
	}
	// Repeated congestion floors at Min.
	for i := 0; i < 50; i++ {
		l.Acquire(Critical)
		time.Sleep(time.Microsecond) // pass the (1ns) cooldown deterministically
		l.Release(true)
	}
	if got := l.Limit(); got != 4 {
		t.Fatalf("limit after sustained congestion = %v, want Min=4", got)
	}
}

func TestAIMDIncrease(t *testing.T) {
	l := New(Config{Initial: 10, Min: 4, Max: 12})
	start := l.Limit()
	for i := 0; i < 200; i++ {
		if l.Acquire(Critical) {
			l.Release(false)
		}
	}
	if got := l.Limit(); got <= start {
		t.Fatalf("limit did not grow: %v", got)
	}
	if got := l.Limit(); got > 12 {
		t.Fatalf("limit exceeded Max: %v", got)
	}
}

// One burst of congestion inside the cooldown window must count as one
// loss event, not N.
func TestDecreaseCooldown(t *testing.T) {
	l := New(Config{Initial: 100, Min: 4, Max: 200, Cooldown: time.Hour})
	for i := 0; i < 10; i++ {
		l.Acquire(Critical)
		l.Release(true)
	}
	// One ×0.7 cut: 70. Ten would floor at Min.
	if got := l.Limit(); got < 69 || got > 71 {
		t.Fatalf("limit after burst = %v, want one single cut (~70)", got)
	}
}

func TestRetryAfterBounds(t *testing.T) {
	l := New(Config{Initial: 4, Min: 4, Max: 4})
	if got := l.RetryAfter(); got < time.Second || got > 10*time.Second {
		t.Fatalf("RetryAfter = %v out of [1s,10s]", got)
	}
	for i := 0; i < 4; i++ {
		l.Acquire(Critical)
	}
	if got := l.RetryAfter(); got < time.Second {
		t.Fatalf("RetryAfter under saturation = %v", got)
	}
}

// The ISSUE's -race gate: 8 concurrent clients with mixed priorities
// hammering Acquire/Release with occasional congestion signals. The
// invariants checked: in-flight returns to zero, the limit stays inside
// [Min, Max], and admitted+shed accounting balances the attempts.
func TestLimiterConcurrent(t *testing.T) {
	l := New(Config{Initial: 16, Min: 4, Max: 64, Cooldown: time.Millisecond})
	const (
		clients  = 8
		attempts = 2000
	)
	prios := [3]Priority{Critical, High, Normal}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			p := prios[c%len(prios)]
			for i := 0; i < attempts; i++ {
				if !l.Acquire(p) {
					continue
				}
				// Every 97th completion reports congestion to exercise the
				// decrease path under contention.
				l.Release(i%97 == 0)
			}
		}(c)
	}
	wg.Wait()
	if got := l.InFlight(); got != 0 {
		t.Fatalf("in-flight after drain = %d, want 0", got)
	}
	if lim := l.Limit(); lim < 4 || lim > 64 {
		t.Fatalf("limit out of bounds: %v", lim)
	}
	st := l.Stats()
	var total int64
	for i := 0; i < 3; i++ {
		total += st.Admitted[i] + st.Shed[i]
	}
	if total != clients*attempts {
		t.Fatalf("admitted+shed = %d, want %d", total, clients*attempts)
	}
}

func TestPriorityString(t *testing.T) {
	for p, want := range map[Priority]string{Critical: "critical", High: "high", Normal: "normal", Priority(99): "normal"} {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", p, got, want)
		}
	}
}

// BenchmarkAdmission measures the uncontended Acquire/Release pair — the
// overhead added to every admitted request. Budgeted in bench_baseline.json;
// it must stay a tiny fraction of the ~78µs Suggest it guards.
func BenchmarkAdmission(b *testing.B) {
	l := New(Config{Initial: 1024, Min: 4, Max: 4096})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if l.Acquire(Critical) {
			l.Release(false)
		}
	}
}

// BenchmarkAdmissionParallel is the contended variant: all procs hammer
// one limiter, the shape it sees at saturation.
func BenchmarkAdmissionParallel(b *testing.B) {
	l := New(Config{Initial: 1024, Min: 4, Max: 4096})
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if l.Acquire(High) {
				l.Release(false)
			}
		}
	})
}
