package service

import (
	"math"
	"testing"
)

// observeOnce drives one suggest/observe round and returns the response.
func observeOnce(t *testing.T, m *Manager, id string, req ObserveRequest) ObserveResponse {
	t.Helper()
	sug, err := m.Suggest(id, "")
	if err != nil {
		t.Fatal(err)
	}
	req.Step = sug.Step
	resp, err := m.Observe(id, req, "")
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestBreakerLifecycle walks the full degraded-mode state machine: healthy
// sessions trip after BreakerThreshold consecutive failures, serve the
// last known good configuration while degraded, probe half-open after the
// cooldown, and recover on a successful probe.
func TestBreakerLifecycle(t *testing.T) {
	m := testManager(t, 0)
	m.SetResilience(Resilience{BreakerThreshold: 3, BreakerCooldown: 2, SanitizeWindow: -1})
	createTestSession(t, m, "brk")

	// Establish a last known good configuration.
	if r := observeOnce(t, m, "brk", ObserveRequest{ExecTime: 100}); r.Health != HealthHealthy {
		t.Fatalf("health after one success = %q", r.Health)
	}

	// Three consecutive failures trip the breaker.
	for i := 0; i < 2; i++ {
		if r := observeOnce(t, m, "brk", ObserveRequest{ExecTime: 100, Failed: true}); r.Health != HealthHealthy {
			t.Fatalf("failure %d: health = %q, want still healthy", i+1, r.Health)
		}
	}
	if r := observeOnce(t, m, "brk", ObserveRequest{ExecTime: 100, Failed: true}); r.Health != HealthDegraded {
		t.Fatalf("health after third failure = %q, want degraded", r.Health)
	}
	s, err := m.Get("brk")
	if err != nil {
		t.Fatal(err)
	}
	info := s.Info()
	if info.Health != HealthDegraded || info.Trips != 1 {
		t.Fatalf("degraded info = health %q trips %d", info.Health, info.Trips)
	}
	replayAtTrip := info.ReplayLen

	// Degraded suggestions serve the last known good action without
	// consulting the model; degraded observations are not learned from.
	sug, err := m.Suggest("brk", "")
	if err != nil {
		t.Fatal(err)
	}
	if !sug.Degraded {
		t.Fatalf("degraded session served a model suggestion: %+v", sug)
	}
	for i, v := range sug.Action {
		if v != info.BestAction[i] {
			t.Fatalf("degraded action[%d] = %g, want LKG %g", i, v, info.BestAction[i])
		}
	}
	if _, err := m.Observe("brk", ObserveRequest{Step: sug.Step, ExecTime: 100, Failed: true}, ""); err != nil {
		t.Fatal(err)
	}
	// Second cooldown observation moves the breaker to half-open.
	if r := observeOnce(t, m, "brk", ObserveRequest{ExecTime: 100}); r.Health != HealthHalfOpen {
		t.Fatalf("health after cooldown = %q, want half_open", r.Health)
	}
	if got := s.Info().ReplayLen; got != replayAtTrip {
		t.Fatalf("degraded observations reached the replay buffer: %d -> %d", replayAtTrip, got)
	}

	// The half-open probe is a fresh model suggestion; its success closes
	// the breaker.
	probe, err := m.Suggest("brk", "")
	if err != nil {
		t.Fatal(err)
	}
	if probe.Degraded {
		t.Fatal("half-open probe re-served the LKG action")
	}
	if r, err := m.Observe("brk", ObserveRequest{Step: probe.Step, ExecTime: 95}, ""); err != nil || r.Health != HealthHealthy {
		t.Fatalf("probe observation = (%+v, %v), want healthy", r, err)
	}
	if got := s.Info().Health; got != HealthHealthy {
		t.Fatalf("recovered session health = %q", got)
	}
}

// TestBreakerProbeFailureReopens verifies a failed half-open probe drops
// the session straight back to degraded.
func TestBreakerProbeFailureReopens(t *testing.T) {
	m := testManager(t, 0)
	m.SetResilience(Resilience{BreakerThreshold: 2, BreakerCooldown: 1, SanitizeWindow: -1})
	createTestSession(t, m, "re")
	observeOnce(t, m, "re", ObserveRequest{ExecTime: 100})
	observeOnce(t, m, "re", ObserveRequest{ExecTime: 100, Failed: true})
	observeOnce(t, m, "re", ObserveRequest{ExecTime: 100, Failed: true}) // trip
	observeOnce(t, m, "re", ObserveRequest{ExecTime: 100, Failed: true}) // cooldown -> half_open
	if r := observeOnce(t, m, "re", ObserveRequest{ExecTime: 100, Failed: true}); r.Health != HealthDegraded {
		t.Fatalf("failed probe left health %q, want degraded", r.Health)
	}
	s, _ := m.Get("re")
	if trips := s.Info().Trips; trips != 2 {
		t.Fatalf("trips = %d, want 2", trips)
	}
}

// TestQuarantineOutlier verifies the sanitizer refuses a measurement far
// above the session's recent history: the step advances but nothing is
// learned and the best configuration is untouched.
func TestQuarantineOutlier(t *testing.T) {
	m := testManager(t, 0)
	createTestSession(t, m, "q")
	for i := 0; i < 6; i++ {
		observeOnce(t, m, "q", ObserveRequest{ExecTime: 100 + float64(i)})
	}
	s, _ := m.Get("q")
	before := s.Info()
	r := observeOnce(t, m, "q", ObserveRequest{ExecTime: 10000})
	if !r.Quarantined || r.Reward != 0 {
		t.Fatalf("10000s outlier not quarantined: %+v", r)
	}
	after := s.Info()
	if after.ReplayLen != before.ReplayLen {
		t.Fatal("quarantined observation reached the replay buffer")
	}
	if after.BestTime != before.BestTime {
		t.Fatal("quarantined observation moved the best time")
	}
	if after.Quarantined != 1 {
		t.Fatalf("quarantine count = %d, want 1", after.Quarantined)
	}
	// A dramatic improvement is NOT quarantined: the lower tail is the
	// whole point of tuning.
	if r := observeOnce(t, m, "q", ObserveRequest{ExecTime: 10}); r.Quarantined {
		t.Fatal("improvement quarantined")
	}
}

// TestQuarantineNonFinite verifies direct (non-HTTP) callers cannot push
// NaN into the session: the observation is quarantined, not stored.
func TestQuarantineNonFinite(t *testing.T) {
	m := testManager(t, 0)
	createTestSession(t, m, "nan")
	r := observeOnce(t, m, "nan", ObserveRequest{ExecTime: math.NaN()})
	if !r.Quarantined {
		t.Fatalf("NaN exec time accepted: %+v", r)
	}
	badState := make([]float64, stateDim(t, m, "nan"))
	badState[0] = math.Inf(1)
	r = observeOnce(t, m, "nan", ObserveRequest{ExecTime: 100, State: badState})
	if !r.Quarantined {
		t.Fatalf("Inf state accepted: %+v", r)
	}
	s, _ := m.Get("nan")
	if got := s.Info().Quarantined; got != 2 {
		t.Fatalf("quarantine count = %d, want 2", got)
	}
}

func stateDim(t *testing.T, m *Manager, id string) int {
	t.Helper()
	s, err := m.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	return s.env.StateDim()
}

// TestBreakerStateSurvivesRestart trips a session, then resumes it from
// its checkpoint in a fresh manager and verifies the degraded state and
// sanitizer history persisted.
func TestBreakerStateSurvivesRestart(t *testing.T) {
	store := NewMemStore()
	m := NewManager(store, 0)
	m.SetResilience(Resilience{BreakerThreshold: 2, BreakerCooldown: 2, SanitizeWindow: -1})
	createTestSession(t, m, "per")
	observeOnce(t, m, "per", ObserveRequest{ExecTime: 100})
	observeOnce(t, m, "per", ObserveRequest{ExecTime: 100, Failed: true})
	observeOnce(t, m, "per", ObserveRequest{ExecTime: 100, Failed: true}) // trip + checkpoint

	m2 := NewManager(store, 0)
	m2.SetResilience(Resilience{BreakerThreshold: 2, BreakerCooldown: 2, SanitizeWindow: -1})
	if n, err := m2.Resume(); err != nil || n != 1 {
		t.Fatalf("resume = (%d, %v)", n, err)
	}
	s, err := m2.Get("per")
	if err != nil {
		t.Fatal(err)
	}
	info := s.Info()
	if info.Health != HealthDegraded || info.Trips != 1 {
		t.Fatalf("resumed info = health %q trips %d, want degraded/1", info.Health, info.Trips)
	}
	if m2.DegradedCount() != 1 {
		t.Fatalf("degraded count = %d, want 1", m2.DegradedCount())
	}
	// The resumed session continues the state machine where it left off.
	observeOnce(t, m2, "per", ObserveRequest{ExecTime: 100})
	if r := observeOnce(t, m2, "per", ObserveRequest{ExecTime: 100}); r.Health != HealthHalfOpen {
		t.Fatalf("resumed cooldown ended at %q, want half_open", r.Health)
	}
}
