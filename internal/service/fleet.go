package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"deepcat/internal/admission"
	"deepcat/internal/fleet"
	"deepcat/internal/obs"
	"deepcat/internal/trace"
	"deepcat/internal/warehouse"
)

// forwardedHeader marks a request already bounced once by a fleet node, so
// two shards with momentarily divergent ring views (one sees a peer down,
// the other does not) cannot ping-pong a request between them: the second
// hop either serves locally or fails with 421 Misdirected Request.
const forwardedHeader = "X-Deepcat-Forwarded"

// maxCheckpointBytes bounds an adopted checkpoint body. Checkpoints carry
// the full replay buffer and agent weights; real ones are single-digit
// megabytes.
const maxCheckpointBytes = 64 << 20

// readyCheckTimeout bounds the /v1/readyz dependency probe. It sits below
// the fleet router's probe timeout so a wedged shard answers "not ready"
// (or times out client-side) instead of stalling its peers' probers.
const readyCheckTimeout = 500 * time.Millisecond

// fleetScrapeTimeout bounds each per-shard metrics scrape inside
// /v1/fleet/metrics. A dead or wedged shard costs the aggregated view at
// most this long and is marked unavailable, never an error.
const fleetScrapeTimeout = 2 * time.Second

// maxSnapshotBytes bounds a scraped peer snapshot body; a real registry
// snapshot is tens of kilobytes.
const maxSnapshotBytes = 16 << 20

// FleetOptions configures a Server as one shard of a fleet.
type FleetOptions struct {
	// Router supplies membership, ownership, and peer readiness.
	Router *fleet.Router
	// Proxy forwards misrouted requests server-side instead of answering
	// 307 Temporary Redirect; it spends this node's bandwidth to support
	// clients that cannot follow redirects.
	Proxy bool
	// Admission, when non-nil, guards the serving endpoints with adaptive
	// AIMD load shedding (see internal/admission and endpointPriority).
	// Works standalone too — it does not require a Router.
	Admission *admission.Limiter
}

// fleetGlue is the service-layer half of fleet routing: the ownership
// middleware, the forwarding paths, and the migrate/adopt handoff
// protocol.
type fleetGlue struct {
	router  *fleet.Router
	proxy   bool
	manager *Manager
	hc      *http.Client
	log     *obs.Logger
	// rec mirrors the owning Server's process recorder (nil with tracing
	// off); the proxy hop records its span there.
	rec *trace.Session

	mu sync.Mutex
	// moved tombstones sessions explicitly migrated off this node: id ->
	// new owner's base URL. The ring alone would keep routing those ids
	// here, so the tombstone wins until this process restarts (after which
	// the adopter's checkpoint, not this map, is the durable truth).
	moved map[string]string
}

func newFleetGlue(m *Manager, opts FleetOptions) *fleetGlue {
	_, logger := m.Obs()
	return &fleetGlue{
		router:  opts.Router,
		proxy:   opts.Proxy,
		manager: m,
		hc:      &http.Client{Timeout: 30 * time.Second},
		log:     logger,
		moved:   make(map[string]string),
	}
}

func (g *fleetGlue) movedTarget(id string) (string, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	t, ok := g.moved[id]
	return t, ok
}

func (g *fleetGlue) setMoved(id, target string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.moved[id] = target
}

func (g *fleetGlue) clearMoved(id string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.moved, id)
}

// newOwnedID draws session ids until one maps to this shard. With N
// members each draw succeeds with probability ~1/N, so the loop is a
// handful of cheap hashes; the bound is pure paranoia — running past it
// would mean the ring no longer contains self.
func (g *fleetGlue) newOwnedID() string {
	id := newID()
	for i := 0; i < 4096 && !g.router.Owns(id); i++ {
		id = newID()
	}
	return id
}

// ensureLocal lazily resumes a session this shard owns but does not have
// live. This is the failover path: a dead peer's sessions write-through
// checkpointed into the shared store on every observation, so the first
// request the ring reroutes here rebuilds the session from its last
// acknowledged state. Errors are not fatal — the wrapped handler reports
// ErrNotFound to the caller if nothing could be resumed.
func (g *fleetGlue) ensureLocal(id string) {
	if _, err := g.manager.Get(id); err == nil || !errors.Is(err, ErrNotFound) {
		return
	}
	ok, err := g.manager.ResumeOne(id)
	if ok {
		g.manager.met.fleetFailoverResumes.Inc()
		return
	}
	if err != nil && !errors.Is(err, ErrNotFound) {
		g.log.Warn("failover resume failed", "id", id, "err", err)
	}
}

// forward bounces a request whose body is still unread to its owner.
func (g *fleetGlue) forward(w http.ResponseWriter, r *http.Request, target string) {
	if g.proxy {
		g.proxyWith(w, r, target, r.Body)
		return
	}
	g.redirect(w, r, target)
}

// redirect answers 307 so the client retries the identical request —
// method and body included — against the owning shard.
func (g *fleetGlue) redirect(w http.ResponseWriter, r *http.Request, target string) {
	g.manager.met.fleetRedirects.Inc()
	w.Header().Set("Location", target+r.URL.RequestURI())
	writeJSON(w, http.StatusTemporaryRedirect, ErrorResponse{
		Error: fmt.Sprintf("session owned by %s", target),
	})
}

// proxyWith relays the request server-side and streams the owner's
// response back verbatim. The hop propagates this node's request id and a
// child trace context downstream, so the owner's spans join the same trace
// with this hop as their parent; the hop itself is recorded as a
// "fleet.proxy" span in the process recorder.
func (g *fleetGlue) proxyWith(w http.ResponseWriter, r *http.Request, target string, body io.Reader) {
	g.manager.met.fleetProxied.Inc()
	req, err := http.NewRequestWithContext(r.Context(), r.Method, target+r.URL.RequestURI(), body)
	if err != nil {
		writeJSON(w, http.StatusBadGateway, ErrorResponse{Error: fmt.Sprintf("proxy to %s: %s", target, err)})
		return
	}
	req.Header = r.Header.Clone()
	req.Header.Set(forwardedHeader, g.router.Self())
	// instrument stamped both headers on the response; forwarding the same
	// values means every hop logs one request id, and the downstream spans
	// point at this hop as their parent within the same trace.
	if id := w.Header().Get(requestIDHeader); id != "" {
		req.Header.Set(requestIDHeader, id)
	}
	// Deadline propagation: re-stamp the budget header with what is
	// actually left of this hop's context deadline (instrument parsed the
	// original header into it), so the owner gates against remaining
	// budget, not the client's original allowance. The cloned header's
	// stale value must not survive a hop that has already spent part of it.
	if dl, ok := r.Context().Deadline(); ok {
		req.Header.Set(DeadlineHeader, remainingBudgetMS(dl))
	}
	sp := trace.Begin(g.rec, "fleet.proxy").Attr("target", target)
	if sc, ok := trace.FromContext(r.Context()); ok {
		req.Header.Set(trace.TraceparentHeader, sc.Child().Traceparent())
		sp.AttrContext(sc)
	}
	resp, err := g.hc.Do(req)
	if err != nil {
		sp.Attr("error", err.Error()).End()
		writeJSON(w, http.StatusBadGateway, ErrorResponse{Error: fmt.Sprintf("proxy to %s: %s", target, err)})
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		switch http.CanonicalHeaderKey(k) {
		case requestIDHeader, http.CanonicalHeaderKey(trace.TraceparentHeader):
			continue // instrument already stamped this node's copies
		case shardHeader:
			// The owner did the work; its identity wins over the one this
			// node's instrument stamped.
			w.Header().Set(shardHeader, resp.Header.Get(shardHeader))
			continue
		}
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	sp.AttrInt("status", resp.StatusCode).End()
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// migrate drains a local session and hands its checkpoint to target. On
// any transfer failure the session resumes serving here unchanged; the
// tombstone is only written once the target has verified and persisted the
// snapshot, so the session exists on exactly one node at every point an
// external request can observe.
func (g *fleetGlue) migrate(ctx context.Context, id, target string) error {
	data, err := g.manager.BeginDrain(id)
	if err != nil {
		return err
	}
	if err := g.sendAdopt(ctx, target, id, data); err != nil {
		g.manager.AbortDrain(id)
		return fmt.Errorf("handoff of %s to %s: %w", id, target, err)
	}
	_ = g.manager.CompleteDrain(id)
	g.setMoved(id, target)
	g.manager.met.fleetMigrationsOut.Inc()
	g.log.Info("session migrated out", "id", id, "target", target)
	return nil
}

// sendAdopt posts the checkpoint to the target's adopt endpoint. A 409
// from the target means it already holds a live session with this id —
// for a retried migrate that is success, not failure.
func (g *fleetGlue) sendAdopt(ctx context.Context, target, id string, data []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		target+"/v1/fleet/adopt/"+id, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(forwardedHeader, g.router.Self())
	resp, err := g.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusCreated || resp.StatusCode == http.StatusOK ||
		resp.StatusCode == http.StatusConflict {
		return nil
	}
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	return fmt.Errorf("adopt returned HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
}

// routed wraps a session-scoped handler with fleet ownership dispatch.
// Owned ids are served locally (lazily failover-resuming if needed);
// migrated-away ids follow their tombstone; everything else bounces to the
// ring owner. A request that already bounced once is never bounced again.
func (s *Server) routed(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		g := s.fleet
		if g == nil || g.router.Single() {
			h(w, r)
			return
		}
		id := r.PathValue("id")
		if target, ok := g.movedTarget(id); ok && target != g.router.Self() {
			if g.router.Ready(target) {
				g.forward(w, r, target)
				return
			}
			// The adopter died. Its write-through checkpoints are in the
			// shared store, so ownership falls back to the ring.
			g.clearMoved(id)
		}
		if g.router.Owns(id) {
			g.ensureLocal(id)
			h(w, r)
			return
		}
		if _, err := s.manager.Get(id); err == nil {
			// Live here without ring ownership: adopted via an explicit
			// migrate. Serving beats forwarding to a node that would only
			// tombstone the request back.
			h(w, r)
			return
		}
		if r.Header.Get(forwardedHeader) != "" {
			// Our ring disagrees with the sender's (probe lag around a
			// failover) and we hold nothing. Fail rather than bounce back.
			writeJSON(w, http.StatusMisdirectedRequest, ErrorResponse{
				Error: fmt.Sprintf("session %s is not owned here and the request was already forwarded once", id),
			})
			return
		}
		g.forward(w, r, g.router.Owner(id))
	}
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	ch := make(chan ReadyResponse, 1)
	go func() {
		var pr ReadyResponse
		if _, err := s.manager.store.List(); err == nil {
			pr.Store = true
		}
		// Returning from Count at all proves the registry (and the breaker
		// state it fronts) is answering, not wedged on its lock.
		s.manager.Count()
		pr.Registry = true
		ch <- pr
	}()
	select {
	case pr := <-ch:
		pr.Ready = pr.Store && pr.Registry
		status := http.StatusOK
		if !pr.Ready {
			status = http.StatusServiceUnavailable
			pr.Reason = "checkpoint store unreachable"
		}
		writeJSON(w, status, pr)
	case <-time.After(readyCheckTimeout):
		writeJSON(w, http.StatusServiceUnavailable, ReadyResponse{Reason: "dependency probe timed out"})
	}
}

func (s *Server) handleRing(w http.ResponseWriter, r *http.Request) {
	g := s.fleet
	members := g.router.Peers()
	out := make([]RingMember, 0, len(members))
	for _, m := range members {
		out = append(out, RingMember{URL: m, Self: m == g.router.Self(), Ready: g.router.Ready(m)})
	}
	writeJSON(w, http.StatusOK, RingResponse{Self: g.router.Self(), Members: out, Sessions: s.manager.Count()})
}

func (s *Server) handleSegments(w http.ResponseWriter, r *http.Request) {
	resp := SegmentListResponse{Segments: []warehouse.SegmentInfo{}}
	if wh := s.manager.Warehouse(); wh != nil {
		if infos, err := wh.Segments(); err == nil {
			resp.Segments = infos
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSegment(w http.ResponseWriter, r *http.Request) {
	wh := s.manager.Warehouse()
	if wh == nil {
		writeErr(w, fmt.Errorf("warehouse not enabled: %w", ErrNotFound))
		return
	}
	name := r.PathValue("name")
	path, err := wh.SegmentPath(name)
	if err != nil {
		writeErr(w, fmt.Errorf("%s: %w", err, ErrInvalid))
		return
	}
	f, err := os.Open(path)
	if err != nil {
		writeErr(w, fmt.Errorf("segment %s: %w", name, ErrNotFound))
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = io.Copy(w, f)
}

func (s *Server) handleMigrate(w http.ResponseWriter, r *http.Request) {
	g := s.fleet
	id := r.PathValue("id")
	target := strings.TrimRight(r.URL.Query().Get("target"), "/")
	if target == "" {
		target = g.router.Owner(id)
	}
	if !g.router.Ring().Contains(target) {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{
			Error: fmt.Sprintf("target %q is not a fleet member", target),
		})
		return
	}
	if target == g.router.Self() {
		writeJSON(w, http.StatusConflict, ErrorResponse{
			Error: fmt.Sprintf("session %s already lives on %s", id, target),
		})
		return
	}
	// A migrate request may land on any node; only the one holding the
	// session can drain it, so bounce to wherever the session lives now.
	if _, err := s.manager.Get(id); errors.Is(err, ErrNotFound) {
		if t, ok := g.movedTarget(id); ok && r.Header.Get(forwardedHeader) == "" {
			g.forward(w, r, t)
			return
		}
		if owner := g.router.Owner(id); owner != g.router.Self() && r.Header.Get(forwardedHeader) == "" {
			g.forward(w, r, owner)
			return
		}
		writeErr(w, err)
		return
	}
	if err := g.migrate(r.Context(), id, target); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, MigrateResponse{ID: id, Target: target})
}

// scrapeShard fetches one peer's metrics snapshot with its own timeout so
// a dead shard delays the aggregated view by at most fleetScrapeTimeout.
func (g *fleetGlue) scrapeShard(ctx context.Context, url string) ShardMetrics {
	sm := ShardMetrics{URL: url}
	ctx, cancel := context.WithTimeout(ctx, fleetScrapeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/metrics/snapshot", nil)
	if err != nil {
		sm.Error = err.Error()
		return sm
	}
	resp, err := g.hc.Do(req)
	if err != nil {
		sm.Error = err.Error()
		return sm
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		sm.Error = fmt.Sprintf("HTTP %d", resp.StatusCode)
		return sm
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxSnapshotBytes)).Decode(&sm.Snapshot); err != nil {
		sm.Error = fmt.Sprintf("decode snapshot: %s", err)
		return sm
	}
	sm.OK = true
	return sm
}

// handleFleetMetrics serves the fleet-wide aggregated registry: every ring
// member is scraped concurrently (self is snapshotted in-process), the
// per-shard snapshots merge per obs.Snapshot semantics — counters sum,
// gauges sum tracking the max contribution, histograms add bucket-wise —
// and the merged view is annotated with one deepcat_fleet_shard_up gauge
// per member. Unreachable or incompatible shards degrade to up=0 without
// failing the response. Default output is the Prometheus text exposition;
// ?format=json returns the merged and per-shard snapshots for dashboards
// (deepcat-top drives this form).
func (s *Server) handleFleetMetrics(w http.ResponseWriter, r *http.Request) {
	if f := r.URL.Query().Get("format"); f != "" && f != "json" && f != "prometheus" {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("unknown metrics format %q", f)})
		return
	}
	g := s.fleet
	members := g.router.Peers()
	shards := make([]ShardMetrics, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		if m == g.router.Self() {
			shards[i] = ShardMetrics{URL: m, Self: true, OK: true, Snapshot: s.manager.MetricsSnapshot()}
			continue
		}
		wg.Add(1)
		go func(i int, m string) {
			defer wg.Done()
			shards[i] = g.scrapeShard(r.Context(), m)
		}(i, m)
	}
	wg.Wait()
	var merged obs.Snapshot
	for i := range shards {
		if !shards[i].OK {
			continue
		}
		if err := merged.Merge(shards[i].Snapshot); err != nil {
			// A merge failure means the shard runs an incompatible build
			// (mismatched histogram layouts); its numbers are excluded and it
			// reports as down rather than silently corrupting the totals.
			shards[i].OK = false
			shards[i].Error = err.Error()
			g.log.Warn("fleet metrics merge failed", "shard", shards[i].URL, "err", err)
		}
	}
	for _, sm := range shards {
		up := int64(0)
		if sm.OK {
			up = 1
		}
		merged.SetGauge("deepcat_fleet_shard_up", up, "shard", sm.URL)
	}
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, FleetMetricsResponse{Self: g.router.Self(), Shards: shards, Merged: merged})
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = merged.WritePrometheus(w)
}

func (s *Server) handleAdopt(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxCheckpointBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("read checkpoint: %s", err)})
		return
	}
	info, err := s.manager.Adopt(id, data)
	if err != nil {
		writeErr(w, err)
		return
	}
	s.fleet.clearMoved(id)
	s.manager.met.fleetMigrationsIn.Inc()
	writeJSON(w, http.StatusCreated, info)
}
