package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"deepcat/internal/admission"
	"deepcat/internal/obs"
)

func overloadServer(t *testing.T, adm *admission.Limiter) (*Manager, *obs.Registry, *httptest.Server) {
	t.Helper()
	m := NewManager(NewMemStore(), 0)
	reg := obs.NewRegistry()
	m.AttachObs(reg, nil)
	srv := httptest.NewServer(NewFleetServer(m, FleetOptions{Admission: adm}))
	t.Cleanup(srv.Close)
	return m, reg, srv
}

func TestDeadlineHeaderMalformed(t *testing.T) {
	_, _, srv := overloadServer(t, nil)
	for _, bad := range []string{"abc", "-5", "0", "1.5"} {
		req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/sessions", nil)
		req.Header.Set(DeadlineHeader, bad)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("deadline %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// A budget that cannot cover the endpoint's observed p99 must be rejected
// up front with 504 + Retry-After and counted as a deadline shed; a
// generous budget passes.
func TestDeadlineBudgetGate(t *testing.T) {
	m, reg, srv := overloadServer(t, nil)
	if _, err := m.Create(CreateSessionRequest{ID: "dl", Workload: "TS", Input: 1, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	// Teach the endpoint's histogram a ~1s p99: the registry resolves the
	// same instrument instrument() observes into.
	h := reg.Histogram("deepcat_http_request_duration_seconds", nil, "endpoint", "suggest")
	for i := 0; i < deadlineMinSamples+10; i++ {
		h.Observe(1.0)
	}

	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/sessions/dl/suggest", nil)
	req.Header.Set(DeadlineHeader, "10") // 10ms budget vs ~1s p99
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("starved budget: status %d, want 504", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("504 budget reject missing Retry-After")
	}
	snap := reg.Snapshot()
	if got := snap.CounterTotal("deepcat_shed_total"); got != 1 {
		t.Fatalf("deepcat_shed_total = %d, want 1", got)
	}

	// A sufficient budget is admitted and served.
	req, _ = http.NewRequest(http.MethodPost, srv.URL+"/v1/sessions/dl/suggest", nil)
	req.Header.Set(DeadlineHeader, "30000")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("generous budget: status %d, want 200", resp.StatusCode)
	}
}

// A saturated limiter sheds guarded endpoints with 429 + Retry-After but
// leaves health/readiness/metrics untouched — the observability surface
// must survive the overload it is reporting.
func TestAdmissionShedAndExemptions(t *testing.T) {
	adm := admission.New(admission.Config{Initial: 1, Min: 1, Max: 1})
	m, reg, srv := overloadServer(t, adm)
	if _, err := m.Create(CreateSessionRequest{ID: "sh", Workload: "TS", Input: 1, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	// Hold the only slot so every guarded request sheds.
	if !adm.Acquire(admission.Critical) {
		t.Fatal("could not take the only slot")
	}
	defer adm.Release(false)

	resp, err := http.Post(srv.URL+"/v1/sessions/sh/suggest", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated suggest: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("shed response missing Retry-After")
	}
	for _, path := range []string{"/healthz", "/v1/readyz", "/v1/metrics/snapshot"} {
		r2, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
		if r2.StatusCode != http.StatusOK {
			t.Fatalf("exempt endpoint %s shed with status %d", path, r2.StatusCode)
		}
	}
	snap := reg.Snapshot()
	if got := snap.CounterTotal("deepcat_shed_total"); got < 1 {
		t.Fatalf("deepcat_shed_total = %d, want >= 1", got)
	}
}

// Priority classes shed in order: with the limiter sized so Normal's
// share is exhausted but Critical's is not, session admin sheds while
// suggest still serves.
func TestAdmissionPriorityOrdering(t *testing.T) {
	adm := admission.New(admission.Config{Initial: 4, Min: 4, Max: 4})
	m, _, srv := overloadServer(t, adm)
	if _, err := m.Create(CreateSessionRequest{ID: "pr", Workload: "TS", Input: 1, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	// Occupy 3 of 4 slots: Normal's share (75% of 4 = 3) is now full,
	// Critical (4) still has one.
	for i := 0; i < 3; i++ {
		if !adm.Acquire(admission.Critical) {
			t.Fatal("setup acquire failed")
		}
	}
	defer func() {
		for i := 0; i < 3; i++ {
			adm.Release(false)
		}
	}()

	resp, err := http.Get(srv.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("normal-priority list at 3/4 occupancy: status %d, want 429", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/v1/sessions/pr/suggest", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("critical-priority suggest at 3/4 occupancy: status %d, want 200", resp.StatusCode)
	}
}

// The sentinel mapping for deadline/cancel outcomes: 504 for an expired
// budget (with Retry-After), 499 for an abandoned request — neither is a
// 5xx server fault.
func TestWriteErrDeadlineAndCancel(t *testing.T) {
	rec := httptest.NewRecorder()
	writeErr(rec, context.DeadlineExceeded)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("DeadlineExceeded = %d, want 504", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("504 missing Retry-After")
	}
	rec = httptest.NewRecorder()
	writeErr(rec, context.Canceled)
	if rec.Code != 499 {
		t.Fatalf("Canceled = %d, want 499", rec.Code)
	}
}

// A parsed budget becomes the request context's deadline: a handler that
// outlives it answers 504, not 200-after-the-fact. The session's own
// mutex is held across the budget window so the suggest path's ctx check
// deterministically runs after expiry.
func TestDeadlineBecomesContext(t *testing.T) {
	m, _, srv := overloadServer(t, nil)
	if _, err := m.Create(CreateSessionRequest{ID: "ctx", Workload: "TS", Input: 1, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	sess, err := m.Get("ctx")
	if err != nil {
		t.Fatal(err)
	}
	// Wedge the session past the 20ms budget; Suggest re-checks its ctx
	// once it finally acquires the lock.
	sess.mu.Lock()
	go func() {
		time.Sleep(120 * time.Millisecond)
		sess.mu.Unlock()
	}()
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/sessions/ctx/suggest", nil)
	req.Header.Set(DeadlineHeader, "20")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout && resp.StatusCode != 499 {
		t.Fatalf("expired in-flight budget: status %d, want 504 (or 499)", resp.StatusCode)
	}
}
