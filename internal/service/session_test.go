package service

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func testManager(t *testing.T, max int) *Manager {
	t.Helper()
	return NewManager(NewMemStore(), max)
}

func createTestSession(t *testing.T, m *Manager, id string) SessionInfo {
	t.Helper()
	info, err := m.Create(CreateSessionRequest{ID: id, Workload: "TS", Input: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return info
}

func TestSessionLifecycle(t *testing.T) {
	m := testManager(t, 0)
	info := createTestSession(t, m, "life")
	if info.State != StateReady || info.Step != 0 {
		t.Fatalf("fresh session info = %+v", info)
	}
	if info.DefaultTime <= 0 {
		t.Fatalf("default time %g, want > 0", info.DefaultTime)
	}

	// Observe before any suggestion is a conflict.
	if _, err := m.Observe("life", ObserveRequest{ExecTime: 100}, ""); !errors.Is(err, ErrConflict) {
		t.Fatalf("observe without suggestion = %v, want ErrConflict", err)
	}

	sug, err := m.Suggest("life", "")
	if err != nil {
		t.Fatal(err)
	}
	if sug.Step != 1 || len(sug.Action) == 0 || len(sug.Config) != len(sug.Action) {
		t.Fatalf("suggestion = %+v", sug)
	}
	for _, v := range sug.Action {
		if v < 0 || v > 1 {
			t.Fatalf("action outside [0,1]: %v", sug.Action)
		}
	}

	// Re-suggesting while an observation is pending is idempotent.
	again, err := m.Suggest("life", "")
	if err != nil {
		t.Fatal(err)
	}
	if again.Step != sug.Step {
		t.Fatalf("re-suggest step = %d, want %d", again.Step, sug.Step)
	}
	for i := range sug.Action {
		if again.Action[i] != sug.Action[i] {
			t.Fatalf("re-suggest changed the action at dim %d", i)
		}
	}

	// Wrong step and bad payloads are rejected without consuming the
	// pending suggestion.
	if _, err := m.Observe("life", ObserveRequest{Step: 99, ExecTime: 100}, ""); !errors.Is(err, ErrConflict) {
		t.Fatalf("mismatched step = %v, want ErrConflict", err)
	}
	if _, err := m.Observe("life", ObserveRequest{ExecTime: 0}, ""); !errors.Is(err, ErrInvalid) {
		t.Fatalf("zero exec time = %v, want ErrInvalid", err)
	}
	if _, err := m.Observe("life", ObserveRequest{ExecTime: 50, State: []float64{1}}, ""); !errors.Is(err, ErrInvalid) {
		t.Fatalf("short state vector = %v, want ErrInvalid", err)
	}

	obs, err := m.Observe("life", ObserveRequest{Step: sug.Step, ExecTime: 120}, "")
	if err != nil {
		t.Fatal(err)
	}
	if obs.Step != 1 || !obs.Improved || obs.BestTime != 120 {
		t.Fatalf("observation = %+v", obs)
	}

	sess, err := m.Get("life")
	if err != nil {
		t.Fatal(err)
	}
	if got := sess.Info(); got.Step != 1 || got.State != StateReady || got.ReplayLen != 1 {
		t.Fatalf("after observe: %+v", got)
	}

	// A slower run does not displace the best.
	sug2, _ := m.Suggest("life", "")
	obs2, err := m.Observe("life", ObserveRequest{Step: sug2.Step, ExecTime: 500}, "")
	if err != nil {
		t.Fatal(err)
	}
	if obs2.Improved || obs2.BestTime != 120 {
		t.Fatalf("second observation = %+v", obs2)
	}

	// Failed runs never count as best.
	sug3, _ := m.Suggest("life", "")
	obs3, err := m.Observe("life", ObserveRequest{Step: sug3.Step, ExecTime: 60, Failed: true}, "")
	if err != nil {
		t.Fatal(err)
	}
	if obs3.Improved || obs3.BestTime != 120 {
		t.Fatalf("failed observation = %+v", obs3)
	}

	if err := m.Delete("life"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Suggest("life", ""); !errors.Is(err, ErrNotFound) {
		t.Fatalf("suggest after delete = %v, want ErrNotFound", err)
	}
}

func TestManagerCapacityAndDuplicates(t *testing.T) {
	m := testManager(t, 2)
	createTestSession(t, m, "one")
	if _, err := m.Create(CreateSessionRequest{ID: "one", Workload: "TS", Input: 1}); !errors.Is(err, ErrConflict) {
		t.Fatalf("duplicate id = %v, want ErrConflict", err)
	}
	createTestSession(t, m, "two")
	if _, err := m.Create(CreateSessionRequest{ID: "three", Workload: "TS", Input: 1}); !errors.Is(err, ErrFull) {
		t.Fatalf("over capacity = %v, want ErrFull", err)
	}
	if err := m.Delete("one"); err != nil {
		t.Fatal(err)
	}
	createTestSession(t, m, "three")

	m2 := testManager(t, 0)
	if _, err := m2.Create(CreateSessionRequest{ID: "bad", Workload: "XX", Input: 1}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("bad workload = %v, want ErrInvalid", err)
	}
	if _, err := m2.Create(CreateSessionRequest{ID: "../evil", Workload: "TS", Input: 1}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("path-traversal id = %v, want ErrInvalid", err)
	}
	// A failed create releases its reservation.
	if m2.Count() != 0 {
		t.Fatalf("failed creates left %d reservations", m2.Count())
	}
}

// TestSessionConcurrentHammer pounds one session with suggest and observe
// calls from 8 goroutines. Run under -race this is the service's
// thread-safety gate; functionally it checks the session never loses or
// double-counts a step no matter how calls interleave.
func TestSessionConcurrentHammer(t *testing.T) {
	m := testManager(t, 0)
	createTestSession(t, m, "hammer")

	const (
		goroutines = 8
		iterations = 30
	)
	var observed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				if g%2 == 0 {
					sug, err := m.Suggest("hammer", "")
					if err != nil {
						t.Errorf("suggest: %v", err)
						return
					}
					if sug.Step <= 0 {
						t.Errorf("suggest returned step %d", sug.Step)
						return
					}
				} else {
					_, err := m.Observe("hammer", ObserveRequest{ExecTime: 100 + float64(i)}, "")
					switch {
					case err == nil:
						observed.Add(1)
					case errors.Is(err, ErrConflict):
						// No pending suggestion right now; expected.
					default:
						t.Errorf("observe: %v", err)
						return
					}
				}
				if g == 0 && i%10 == 0 {
					// Interleave read-only traffic.
					if infos := m.List(); len(infos) != 1 {
						t.Errorf("List() returned %d sessions", len(infos))
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	s, err := m.Get("hammer")
	if err != nil {
		t.Fatal(err)
	}
	info := s.Info()
	if int64(info.Step) != observed.Load() {
		t.Fatalf("session advanced to step %d but %d observations succeeded", info.Step, observed.Load())
	}
	if info.ReplayLen != info.Step {
		t.Fatalf("replay holds %d transitions after %d observed steps", info.ReplayLen, info.Step)
	}
}

// TestConcurrentSessionsIsolated drives several sessions in parallel and
// checks their progress stays independent.
func TestConcurrentSessionsIsolated(t *testing.T) {
	m := testManager(t, 0)
	ids := []string{"w1", "w2", "w3", "w4"}
	for _, id := range ids {
		createTestSession(t, m, id)
	}
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(id string, rounds int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				sug, err := m.Suggest(id, "")
				if err != nil {
					t.Errorf("%s: suggest: %v", id, err)
					return
				}
				if _, err := m.Observe(id, ObserveRequest{Step: sug.Step, ExecTime: 200}, ""); err != nil {
					t.Errorf("%s: observe: %v", id, err)
					return
				}
			}
		}(id, 3+i)
	}
	wg.Wait()
	for i, id := range ids {
		s, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.Info().Step; got != 3+i {
			t.Errorf("%s at step %d, want %d", id, got, 3+i)
		}
	}
}
