package service_test

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"deepcat/internal/fleet"
	"deepcat/internal/obs"
	"deepcat/internal/service"
	"deepcat/internal/service/client"
	"deepcat/internal/spine"
	"deepcat/internal/trace"
)

// obsFleet is a fleet whose every shard runs the full observability stack:
// a metrics registry, a flight recorder spooling to a per-shard trace
// directory, and a replay spine — the deployment the fleet metrics
// aggregation and cross-shard trace stitching are built for.
type obsFleet struct {
	t        *testing.T
	nodes    []*fleetNode
	traceDir []string // one per node, distinct basenames for stitching
}

func newObsFleet(t *testing.T, n int) *obsFleet {
	t.Helper()
	dir := t.TempDir()
	listeners := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range listeners {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = lis
		urls[i] = "http://" + lis.Addr().String()
	}
	of := &obsFleet{t: t}
	for i, lis := range listeners {
		store, err := service.NewFSStore(filepath.Join(dir, "store"))
		if err != nil {
			t.Fatal(err)
		}
		m := service.NewManager(store, 0)
		reg := obs.NewRegistry()
		m.AttachObs(reg, nil)
		td := filepath.Join(dir, fmt.Sprintf("shard%d", i))
		m.AttachTrace(service.TraceConfig{Dir: td})
		sp := spine.New(spine.Options{Registry: reg})
		t.Cleanup(sp.Close)
		m.AttachSpine(service.SpineConfig{Spine: sp, AdoptEvery: 1})
		router, err := fleet.NewRouter(fleet.Config{
			Self:          urls[i],
			Peers:         urls,
			ProbeInterval: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		m.SetOwned(router.Owns)
		hs := &http.Server{Handler: service.NewFleetServer(m, service.FleetOptions{Router: router, Proxy: true})}
		go hs.Serve(lis)
		c := client.New(urls[i])
		of.nodes = append(of.nodes, &fleetNode{url: urls[i], hs: hs, manager: m, router: router, client: c})
		of.traceDir = append(of.traceDir, td)
	}
	t.Cleanup(func() {
		for _, n := range of.nodes {
			n.hs.Close()
		}
	})
	return of
}

func (of *obsFleet) owner(id string) int {
	url := of.nodes[0].router.Ring().Owner(id)
	for i, n := range of.nodes {
		if n.url == url {
			return i
		}
	}
	of.t.Fatalf("owner %s of %s is not a fleet node", url, id)
	return -1
}

// shardUp reads the merged availability gauge for one member.
func shardUp(snap obs.Snapshot, url string) (int64, bool) {
	for _, ins := range snap.Instruments {
		if ins.Name == "deepcat_fleet_shard_up" && strings.Contains(ins.Labels, `shard="`+url+`"`) {
			return ins.Gauge, true
		}
	}
	return 0, false
}

// TestFleetObservabilityEndToEnd drives a 3-shard fleet with a replay
// spine under a cross-shard client call and asserts the whole PR 9
// surface at once: one propagated trace id stitches the entry shard's
// router spans, the owner's handler and session spans and the spine
// enqueue into a single multi-source trace; the fleet metrics endpoint's
// merged totals equal the sum of the per-shard registries; and killing a
// shard degrades the merged view (shard marked down) without erroring.
func TestFleetObservabilityEndToEnd(t *testing.T) {
	of := newObsFleet(t, 3)
	ctx := context.Background()

	// An explicit id the ring maps to a known owner, created through a
	// NON-owner so create, suggest and observe all cross shards.
	const id = "obs-e2e-1"
	owner := of.owner(id)
	entry := (owner + 1) % len(of.nodes)
	c := client.New(of.nodes[entry].url)
	c.TraceContext = trace.NewSpanContext()

	if _, err := c.CreateSessionCtx(ctx, service.CreateSessionRequest{
		ID: id, Workload: "TS", Input: 1, Seed: 7, NoWarmStart: true,
	}); err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 2; step++ {
		if _, err := c.SuggestCtx(ctx, id); err != nil {
			t.Fatal(err)
		}
		if _, err := c.ObserveCtx(ctx, id, service.ObserveRequest{ExecTime: 80 - float64(step)}); err != nil {
			t.Fatal(err)
		}
	}

	// --- Stitching: one trace id across router, shard and spine spans. ---
	traces, err := trace.CollectTraces(of.traceDir)
	if err != nil {
		t.Fatal(err)
	}
	evs, ok := traces[c.TraceContext.TraceID]
	if !ok {
		t.Fatalf("no stitched trace for client trace id %s (have %d traces)", c.TraceContext.TraceID, len(traces))
	}
	sources := trace.Sources(evs)
	if len(sources) < 2 {
		t.Fatalf("trace spans %d source(s) %v, want the entry and owner shards at least", len(sources), sources)
	}
	spanSources := map[string]map[string]bool{} // span name -> set of sources
	for _, se := range evs {
		if se.Event.Kind != trace.KindSpan {
			continue
		}
		if spanSources[se.Event.Span] == nil {
			spanSources[se.Event.Span] = map[string]bool{}
		}
		spanSources[se.Event.Span][se.Source] = true
	}
	for _, want := range []string{"http.suggest", "fleet.proxy", "session.suggest", "spine.enqueue"} {
		if len(spanSources[want]) == 0 {
			t.Errorf("stitched trace missing %q span (spans: %v)", want, spanSources)
		}
	}
	// The proxied hop must put http.suggest spans in BOTH shards' spools.
	if len(spanSources["http.suggest"]) < 2 {
		t.Errorf("http.suggest recorded by %v, want both the entry and owner shards", spanSources["http.suggest"])
	}
	if trace.BestTrace(traces) != c.TraceContext.TraceID {
		t.Errorf("BestTrace did not pick the cross-shard trace")
	}

	// --- Aggregation: merged totals equal the sum of per-shard shares. ---
	resp, err := c.FleetMetrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Shards) != 3 {
		t.Fatalf("fleet metrics covers %d shards, want 3", len(resp.Shards))
	}
	var sum uint64
	for _, sm := range resp.Shards {
		if !sm.OK {
			t.Errorf("healthy shard %s reported down: %s", sm.URL, sm.Error)
		}
		sum += sm.Snapshot.CounterTotal("deepcat_http_requests_total")
	}
	if merged := resp.Merged.CounterTotal("deepcat_http_requests_total"); merged != sum || merged == 0 {
		t.Errorf("merged request total %d != per-shard sum %d (or zero)", merged, sum)
	}
	for _, n := range of.nodes {
		if up, ok := shardUp(resp.Merged, n.url); !ok || up != 1 {
			t.Errorf("shard %s up gauge = %d (found %v), want 1", n.url, up, ok)
		}
	}

	// --- Degradation: a killed shard is marked down, no error. ---
	victim := of.nodes[(owner+2)%len(of.nodes)]
	if err := victim.hs.Close(); err != nil {
		t.Fatal(err)
	}
	survivor := client.New(of.nodes[owner].url)
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err = survivor.FleetMetrics(ctx)
		if err != nil {
			t.Fatalf("fleet metrics errored with a dead shard: %v", err)
		}
		if up, ok := shardUp(resp.Merged, victim.url); ok && up == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dead shard %s never marked down: %+v", victim.url, resp.Merged)
		}
		time.Sleep(50 * time.Millisecond)
	}
	for _, sm := range resp.Shards {
		if sm.URL == victim.url {
			if sm.OK || sm.Error == "" {
				t.Errorf("dead shard entry = %+v, want OK=false with an error", sm)
			}
		} else if !sm.OK {
			t.Errorf("surviving shard %s reported down: %s", sm.URL, sm.Error)
		}
	}
	// The merged exposition must still render.
	hr, err := http.Get(of.nodes[owner].url + "/v1/fleet/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("prometheus form status = %d with a dead shard", hr.StatusCode)
	}
}

// TestRecorderDoesNotPerturbDecisionsPropagated extends the recorder
// neutrality invariant to the propagated-context path: a client sending
// traceparent and request-id headers to a daemon that records server and
// session spans must receive bit-identical suggestions to a client of an
// untraced daemon. Trace ids come from crypto/rand and span recording
// never touches the tuner's seeded RNG.
func TestRecorderDoesNotPerturbDecisionsPropagated(t *testing.T) {
	execTimes := []float64{90, 85, 70, 95}
	run := func(traced bool) [][]float64 {
		t.Helper()
		dir := t.TempDir()
		store, err := service.NewFSStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		m := service.NewManager(store, 0)
		if traced {
			m.AttachTrace(service.TraceConfig{Dir: filepath.Join(dir, "traces")})
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		hs := &http.Server{Handler: service.NewServer(m)}
		go hs.Serve(ln)
		defer hs.Close()

		c := client.New("http://" + ln.Addr().String())
		if traced {
			c.TraceContext = trace.NewSpanContext()
		}
		ctx := context.Background()
		if _, err := c.CreateSessionCtx(ctx, service.CreateSessionRequest{
			ID: "det", Workload: "TS", Input: 1, Seed: 11, NoWarmStart: true,
		}); err != nil {
			t.Fatal(err)
		}
		var actions [][]float64
		for _, exec := range execTimes {
			sr, err := c.SuggestCtx(ctx, "det")
			if err != nil {
				t.Fatal(err)
			}
			actions = append(actions, sr.Action)
			if _, err := c.ObserveCtx(ctx, "det", service.ObserveRequest{ExecTime: exec}); err != nil {
				t.Fatal(err)
			}
		}
		return actions
	}

	plain := run(false)
	traced := run(true)
	if len(plain) != len(traced) {
		t.Fatalf("step counts differ: %d vs %d", len(plain), len(traced))
	}
	for i := range plain {
		if len(plain[i]) != len(traced[i]) {
			t.Fatalf("step %d action dims differ", i+1)
		}
		for j := range plain[i] {
			if plain[i][j] != traced[i][j] {
				t.Fatalf("step %d dim %d: %v != %v — propagated tracing altered a tuning decision",
					i+1, j, plain[i][j], traced[i][j])
			}
		}
	}
}
