package service

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"deepcat/internal/admission"
	"deepcat/internal/obs"
	"deepcat/internal/trace"
)

// maxBodyBytes bounds request bodies; the largest legitimate body (an
// observation with a state vector) is well under 1 MiB.
const maxBodyBytes = 1 << 20

// requestIDHeader carries the per-request correlation id. The server
// generates one (or adopts a caller-supplied one) and echoes it on the
// response, and both ends log it, so a slow suggest in a scheduler's log
// can be matched to the server-side histogram sample it produced.
const requestIDHeader = "X-Request-Id"

// shardHeader names the fleet shard that actually served a response. A
// fleet node stamps itself before handling; the proxy path overwrites it
// with the owner's value, so a client of a proxied call learns which shard
// did the work (the typed client surfaces it in APIError).
const shardHeader = "X-Deepcat-Shard"

// Server is the HTTP front end over a Manager. It is an http.Handler;
// mount it on any listener. Every route is instrumented with the
// registry/logger attached to the Manager (see Manager.AttachObs): request
// counts and latency histograms per endpoint, an in-flight gauge, and a
// request-id-tagged access log line per call.
type Server struct {
	manager *Manager
	mux     *http.ServeMux
	log     *obs.Logger
	// fleet, when non-nil, makes this server one shard of a fleet: session
	// routes gain ownership dispatch and the /v1/fleet/* endpoints appear.
	fleet *fleetGlue
	// rec is the process-level flight recorder (spooled to _server.jsonl
	// under the trace dir): every HTTP hop records a span carrying the
	// propagated trace context, so cmd/deepcat-trace can stitch one
	// request's route/proxy/handler/session spans across shard spools. Nil
	// when the daemon runs with tracing off — that path records nothing.
	rec *trace.Session
	// adm, when non-nil, is the shard's AIMD admission limiter: guarded
	// endpoints acquire a slot before their handler runs and shed with
	// 429 + Retry-After when their priority class is out of headroom. Nil
	// disables shedding entirely (the default for bare NewServer, so
	// embedded/test servers behave exactly as before).
	adm *admission.Limiter
}

// NewServer builds the route table over m for a standalone daemon.
func NewServer(m *Manager) *Server {
	return NewFleetServer(m, FleetOptions{})
}

// NewFleetServer builds the route table over m as one shard of a fleet; a
// zero FleetOptions degenerates to a standalone server.
func NewFleetServer(m *Manager, opts FleetOptions) *Server {
	reg, logger := m.Obs()
	s := &Server{manager: m, mux: http.NewServeMux(), log: logger, rec: newRecorder(m.tc, "_server"), adm: opts.Admission}
	if opts.Router != nil {
		s.fleet = newFleetGlue(m, opts)
		s.fleet.rec = s.rec
	}
	route := func(pattern, endpoint string, h http.HandlerFunc) {
		s.mux.HandleFunc(pattern, s.instrument(newHTTPMetrics(reg, endpoint), endpoint, h))
	}
	route("GET /healthz", "healthz", s.handleHealth)
	route("GET /v1/healthz", "healthz", s.handleHealth)
	route("GET /v1/readyz", "readyz", s.handleReady)
	route("POST /v1/sessions", "session_create", s.handleCreate)
	route("GET /v1/sessions", "session_list", s.handleList)
	route("GET /v1/sessions/{id}", "session_get", s.routed(s.handleGet))
	route("DELETE /v1/sessions/{id}", "session_delete", s.routed(s.handleDelete))
	route("POST /v1/sessions/{id}/suggest", "suggest", s.routed(s.handleSuggest))
	route("POST /v1/sessions/{id}/observe", "observe", s.routed(s.handleObserve))
	route("GET /v1/sessions/{id}/trace", "trace", s.routed(s.handleTrace))
	route("GET /v1/sessions/{id}/trace/export", "trace_export", s.routed(s.handleTraceExport))
	route("GET /v1/warehouse/stats", "warehouse_stats", s.handleWarehouseStats)
	route("GET /v1/warehouse/families/{sig}/donors", "warehouse_donors", s.handleWarehouseDonors)
	route("GET /v1/metrics/snapshot", "metrics_snapshot", s.handleMetricsSnapshot)
	if s.fleet != nil {
		route("GET /v1/fleet/metrics", "fleet_metrics", s.handleFleetMetrics)
		route("GET /v1/fleet/ring", "fleet_ring", s.handleRing)
		route("GET /v1/fleet/segments", "fleet_segments", s.handleSegments)
		route("GET /v1/fleet/segments/{name}", "fleet_segment", s.handleSegment)
		route("POST /v1/fleet/migrate/{id}", "fleet_migrate", s.handleMigrate)
		route("POST /v1/fleet/adopt/{id}", "fleet_adopt", s.handleAdopt)
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// statusRecorder captures the response status for metrics and logging.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

// newRequestID generates a short random correlation id.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return "r-" + hex.EncodeToString(b[:])
}

// instrument wraps a handler with the per-endpoint bookkeeping: request-id
// assignment, trace-context propagation, deadline-budget enforcement,
// admission control, in-flight gauge, duration histogram, status-labelled
// request counter and one access log line.
//
// Trace context: a well-formed traceparent header is adopted and echoed on
// the response; with tracing enabled a missing one is minted (crypto/rand —
// never the tuner's seeded stream, so propagation is decision-neutral).
// The context rides the request's context.Context down to the session
// spans, and the server recorder logs one span per hop carrying it, which
// is what lets deepcat-trace stitch a request across shard spools. With
// tracing off and no caller-supplied header, nothing is minted, parsed
// into the context, or recorded — the path is unchanged.
//
// Overload control, in order: an X-Deepcat-Deadline budget that cannot
// cover the endpoint's observed p99 is rejected up front with 504 (the
// request was already dead; failing in microseconds beats queueing it to
// its grave); a surviving budget becomes the request context's deadline so
// every downstream stage — and the proxy hop — inherits it. Then the
// admission limiter (when configured) takes a slot for the endpoint's
// priority class or sheds with 429 + Retry-After; on completion the slot
// is released with a congestion signal (503/504 answers shrink the limit,
// everything else grows it). Health, readiness and metrics endpoints are
// exempt — during an overload they are exactly the endpoints that must
// keep answering.
func (s *Server) instrument(hm httpMetrics, endpoint string, h http.HandlerFunc) http.HandlerFunc {
	prio, guarded := endpointPriority(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqID := r.Header.Get(requestIDHeader)
		if reqID == "" {
			reqID = newRequestID()
			// Stamp the request too, so the proxy path forwards the same id
			// this node answers with and all hops share one correlation id.
			r.Header.Set(requestIDHeader, reqID)
		}
		w.Header().Set(requestIDHeader, reqID)
		if s.fleet != nil {
			w.Header().Set(shardHeader, s.fleet.router.Self())
		}
		sc, traced := trace.ParseTraceparent(r.Header.Get(trace.TraceparentHeader))
		if !traced && s.rec != nil {
			sc, traced = trace.NewSpanContext(), true
		}
		if traced {
			w.Header().Set(trace.TraceparentHeader, sc.Traceparent())
			r = r.WithContext(trace.ContextWith(r.Context(), sc))
		}
		sp := trace.Begin(s.rec, "http."+endpoint).
			Attr("request_id", reqID).AttrContext(sc)
		hm.inFlight.Inc()
		sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}

		admitted := func() bool {
			budget, hasBudget, derr := parseDeadline(r)
			if derr != nil {
				writeJSON(sr, http.StatusBadRequest, ErrorResponse{Error: derr.Error()})
				return false
			}
			if hasBudget {
				// The p99 gate needs a populated histogram; early in a
				// process's life the request is admitted on its deadline
				// alone.
				if hm.dur != nil && hm.dur.Count() >= deadlineMinSamples {
					if p99 := time.Duration(hm.dur.Quantile(0.99) * float64(time.Second)); p99 > 0 && budget < p99 {
						hm.shed("deadline").Inc()
						writeBudgetReject(sr, budget, p99, endpoint)
						return false
					}
				}
				ctx, cancel := context.WithTimeout(r.Context(), budget)
				defer cancel()
				r = r.WithContext(ctx)
			}
			if s.adm != nil && guarded {
				if !s.adm.Acquire(prio) {
					hm.shed("admission").Inc()
					writeShed(sr, s.adm.RetryAfter(), endpoint, prio)
					return false
				}
				defer func() {
					s.adm.Release(sr.status == http.StatusServiceUnavailable ||
						sr.status == http.StatusGatewayTimeout)
				}()
			}
			h(sr, r)
			return true
		}()

		hm.inFlight.Dec()
		if admitted {
			// Shed/rejected requests answer in microseconds; keeping them
			// out of the histogram stops them dragging the p99 estimate —
			// which gates future deadlines — down during an overload.
			hm.dur.ObserveSince(start)
		}
		hm.requests(strconv.Itoa(sr.status)).Inc()
		sp.AttrInt("status", sr.status).End()
		// Per-request lines go out at debug so an info-level daemon is not
		// spammed by healthy traffic; server-side failures always surface.
		if sr.status >= 500 {
			s.log.Warn("request failed", "request_id", reqID, "endpoint", endpoint,
				"method", r.Method, "path", r.URL.Path, "code", sr.status,
				"dur", time.Since(start))
		} else {
			s.log.Debug("request", "request_id", reqID, "endpoint", endpoint,
				"method", r.Method, "path", r.URL.Path, "code", sr.status,
				"dur", time.Since(start))
		}
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:           "ok",
		Sessions:         s.manager.Count(),
		MaxSessions:      s.manager.MaxSessions(),
		DegradedSessions: s.manager.DegradedCount(),
	})
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateSessionRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if g := s.fleet; g != nil && !g.router.Single() {
		if req.ID == "" {
			// Any shard can accept an anonymous create by drawing an id it
			// owns itself — no forwarding, and the client's first suggest
			// lands on the right node immediately.
			req.ID = g.newOwnedID()
		} else if !g.router.Owns(req.ID) && r.Header.Get(forwardedHeader) == "" {
			// Explicit ids route like any session request. The body was
			// consumed by decodeBody, so the proxy path re-marshals it; the
			// redirect path relies on the client re-sending its body, which
			// carries the id.
			owner := g.router.Owner(req.ID)
			if g.proxy {
				body, _ := json.Marshal(req)
				g.proxyWith(w, r, owner, bytes.NewReader(body))
			} else {
				g.redirect(w, r, owner)
			}
			return
		}
	}
	info, err := s.manager.Create(req)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.manager.List())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	sess, err := s.manager.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, sess.Info())
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.manager.Delete(r.PathValue("id")); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleSuggest(w http.ResponseWriter, r *http.Request) {
	// instrument already stamped the response header with the request id;
	// pass it down so the session's trace span carries the same value.
	resp, err := s.manager.SuggestCtx(r.Context(), r.PathValue("id"), w.Header().Get(requestIDHeader))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	var req ObserveRequest
	if !decodeBody(w, r, &req) {
		return
	}
	resp, err := s.manager.ObserveCtx(r.Context(), r.PathValue("id"), req, w.Header().Get(requestIDHeader))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	n := 0
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 0 {
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("bad n %q", v)})
			return
		}
		n = parsed
	}
	events, err := s.manager.Trace(id, n)
	if err != nil {
		writeErr(w, err)
		return
	}
	sess, err := s.manager.Get(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, TraceResponse{
		Session: id,
		Events:  events,
		Dropped: sess.TraceDropped(),
	})
}

func (s *Server) handleTraceExport(w http.ResponseWriter, r *http.Request) {
	if f := r.URL.Query().Get("format"); f != "" && f != "chrome" {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("unknown trace format %q", f)})
		return
	}
	id := r.PathValue("id")
	events, err := s.manager.Trace(id, 0)
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = trace.WriteChrome(w, id, events)
}

// handleMetricsSnapshot serves this shard's registry as a mergeable JSON
// snapshot (see obs.Snapshot). It is the per-shard scrape target of the
// fleet aggregator, mounted on the tuning port so peers need no access to
// the optional ops listener. A daemon without a registry answers an empty
// snapshot rather than erroring — the aggregator then merges nothing.
func (s *Server) handleMetricsSnapshot(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.manager.MetricsSnapshot())
}

func (s *Server) handleWarehouseStats(w http.ResponseWriter, r *http.Request) {
	wh := s.manager.Warehouse()
	if wh == nil {
		writeJSON(w, http.StatusOK, WarehouseStatsResponse{Enabled: false})
		return
	}
	st := wh.Stats()
	writeJSON(w, http.StatusOK, WarehouseStatsResponse{Enabled: true, Stats: &st})
}

func (s *Server) handleWarehouseDonors(w http.ResponseWriter, r *http.Request) {
	wh := s.manager.Warehouse()
	if wh == nil {
		writeErr(w, fmt.Errorf("warehouse not enabled: %w", ErrNotFound))
		return
	}
	sig := r.PathValue("sig")
	donors, err := wh.Donors(sig)
	if err != nil {
		writeErr(w, fmt.Errorf("%s: %w", err, ErrNotFound))
		return
	}
	writeJSON(w, http.StatusOK, DonorListResponse{Signature: sig, Donors: donors})
}

// decodeBody parses a JSON body into v, writing a 400 and returning false
// on failure. An empty body decodes the zero value.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			return true
		}
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("malformed request body: %s", err)})
		return false
	}
	return true
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr maps the service sentinel errors onto HTTP statuses. Every
// retriable rejection carries a Retry-After so clients back off by the
// server's estimate instead of their own schedule.
func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrInvalid):
		status = http.StatusBadRequest
	case errors.Is(err, ErrConflict):
		status = http.StatusConflict
	case errors.Is(err, ErrClosed):
		status = http.StatusGone
	case errors.Is(err, ErrFull):
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "5")
	case errors.Is(err, ErrDraining):
		// Mid-migration; by the time a client retries, the tombstone or
		// ring will route it to the new owner.
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, context.DeadlineExceeded):
		// The propagated budget expired mid-request. 504, like the
		// up-front gate, so deadline death is never a 5xx-class server
		// fault in the shed accounting.
		status = http.StatusGatewayTimeout
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, context.Canceled):
		// The caller went away; nobody is reading this response. 499 by
		// nginx convention keeps abandoned requests out of the 5xx error
		// budget.
		status = 499
	}
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}
