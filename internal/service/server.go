package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// maxBodyBytes bounds request bodies; the largest legitimate body (an
// observation with a state vector) is well under 1 MiB.
const maxBodyBytes = 1 << 20

// Server is the HTTP front end over a Manager. It is an http.Handler;
// mount it on any listener.
type Server struct {
	manager *Manager
	mux     *http.ServeMux
}

// NewServer builds the route table over m.
func NewServer(m *Manager) *Server {
	s := &Server{manager: m, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	s.mux.HandleFunc("GET /v1/sessions", s.handleList)
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	s.mux.HandleFunc("POST /v1/sessions/{id}/suggest", s.handleSuggest)
	s.mux.HandleFunc("POST /v1/sessions/{id}/observe", s.handleObserve)
	s.mux.HandleFunc("GET /v1/warehouse/stats", s.handleWarehouseStats)
	s.mux.HandleFunc("GET /v1/warehouse/families/{sig}/donors", s.handleWarehouseDonors)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:      "ok",
		Sessions:    s.manager.Count(),
		MaxSessions: s.manager.MaxSessions(),
	})
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateSessionRequest
	if !decodeBody(w, r, &req) {
		return
	}
	info, err := s.manager.Create(req)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.manager.List())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	sess, err := s.manager.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, sess.Info())
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.manager.Delete(r.PathValue("id")); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleSuggest(w http.ResponseWriter, r *http.Request) {
	resp, err := s.manager.Suggest(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	var req ObserveRequest
	if !decodeBody(w, r, &req) {
		return
	}
	resp, err := s.manager.Observe(r.PathValue("id"), req)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleWarehouseStats(w http.ResponseWriter, r *http.Request) {
	wh := s.manager.Warehouse()
	if wh == nil {
		writeJSON(w, http.StatusOK, WarehouseStatsResponse{Enabled: false})
		return
	}
	st := wh.Stats()
	writeJSON(w, http.StatusOK, WarehouseStatsResponse{Enabled: true, Stats: &st})
}

func (s *Server) handleWarehouseDonors(w http.ResponseWriter, r *http.Request) {
	wh := s.manager.Warehouse()
	if wh == nil {
		writeErr(w, fmt.Errorf("warehouse not enabled: %w", ErrNotFound))
		return
	}
	sig := r.PathValue("sig")
	donors, err := wh.Donors(sig)
	if err != nil {
		writeErr(w, fmt.Errorf("%s: %w", err, ErrNotFound))
		return
	}
	writeJSON(w, http.StatusOK, DonorListResponse{Signature: sig, Donors: donors})
}

// decodeBody parses a JSON body into v, writing a 400 and returning false
// on failure. An empty body decodes the zero value.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			return true
		}
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("malformed request body: %s", err)})
		return false
	}
	return true
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr maps the service sentinel errors onto HTTP statuses.
func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrInvalid):
		status = http.StatusBadRequest
	case errors.Is(err, ErrConflict):
		status = http.StatusConflict
	case errors.Is(err, ErrClosed):
		status = http.StatusGone
	case errors.Is(err, ErrFull):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}
