package service

import (
	"context"
	"math"
	"testing"

	"deepcat/internal/chaos"
	"deepcat/internal/cli"
	"deepcat/internal/env"
	"deepcat/internal/warehouse"
)

// e2eEvaluator measures one suggested configuration the way an external
// scheduler would: against an environment that may crash, corrupt or inflate
// the measurement, reporting whatever came back — including NaN/Inf, which
// the session must quarantine.
type e2eEvaluator struct {
	env     env.Environment
	ch      *chaos.Env // nil for the fault-free control
	defTime float64
}

func newE2EEvaluator(t *testing.T, seed int64, ccfg *chaos.Config) *e2eEvaluator {
	t.Helper()
	e, err := cli.BuildEnv("a", "TS", 1, seed)
	if err != nil {
		t.Fatal(err)
	}
	ev := &e2eEvaluator{env: e, defTime: e.DefaultTime()}
	if ccfg != nil {
		ev.ch = chaos.Wrap(e, *ccfg)
		ev.env = ev.ch
	}
	return ev
}

// step drives one suggest/observe round through the manager, evaluating the
// suggestion on the (possibly chaotic) environment.
func (ev *e2eEvaluator) step(t *testing.T, m *Manager, id string) ObserveResponse {
	t.Helper()
	sug, err := m.Suggest(id, "")
	if err != nil {
		t.Fatal(err)
	}
	req := ObserveRequest{Step: sug.Step}
	o, err := env.EvaluateWithContext(context.Background(), ev.env, sug.Action)
	if err != nil {
		// The job never produced a measurement; a scheduler reports the
		// wasted wall clock as a failed run.
		req.ExecTime = ev.defTime
		req.Failed = true
	} else {
		req.ExecTime = o.ExecTime
		req.State = o.State
		req.Failed = o.Failed
	}
	resp, err := m.Observe(id, req, "")
	if err != nil {
		t.Fatalf("observe step %d (exec %g failed %v): %v", sug.Step, req.ExecTime, req.Failed, err)
	}
	return resp
}

// TestChaosKillRestartEndToEnd is the service-level chaos acceptance test:
// a session tuned under >=10% injected faults — across a daemon "kill" (the
// manager and warehouse are abandoned mid-run and rebuilt from the
// checkpoint store and WAL) — must end within 15% of a fault-free control
// session with the same seed, trip and recover its circuit breaker, and
// leave zero non-finite values in any checkpoint or warehouse record.
func TestChaosKillRestartEndToEnd(t *testing.T) {
	dir := t.TempDir()
	store := NewMemStore()
	res := Resilience{BreakerThreshold: 3, BreakerCooldown: 2}
	ccfg := chaos.Config{
		Seed:          11,
		CrashRate:     0.10,
		OutlierRate:   0.08,
		OutlierFactor: 30,
		CorruptRate:   0.12,
	}

	openWH := func() *warehouse.Warehouse {
		wh, err := warehouse.Open(warehouse.Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		return wh
	}
	newManager := func(wh *warehouse.Warehouse) *Manager {
		m := NewManager(store, 0)
		m.SetResilience(res)
		m.AttachWarehouse(wh)
		return m
	}

	wh1 := openWH()
	m1 := newManager(wh1)
	for _, id := range []string{"ctl", "cha"} {
		if _, err := m1.Create(CreateSessionRequest{
			ID: id, Workload: "TS", Input: 1, Seed: 7, NoWarmStart: true,
		}); err != nil {
			t.Fatal(err)
		}
	}
	ctlEnv := newE2EEvaluator(t, 7, nil)
	chaEnv := newE2EEvaluator(t, 7, &ccfg)

	// Phase 1: tune both sessions until the daemon "dies".
	for i := 0; i < 10; i++ {
		ctlEnv.step(t, m1, "ctl")
		chaEnv.step(t, m1, "cha")
	}
	// Kill: no graceful manager shutdown — only the warehouse file handles
	// are released so the same directory can be reopened, as a restarted
	// process would.
	if err := wh1.Close(); err != nil {
		t.Fatal(err)
	}

	wh2 := openWH()
	defer wh2.Close()
	m2 := newManager(wh2)
	if n, err := m2.Resume(); err != nil || n != 2 {
		t.Fatalf("resume = (%d, %v), want 2 sessions", n, err)
	}

	// Phase 2: keep tuning through the restart.
	for i := 0; i < 10; i++ {
		ctlEnv.step(t, m2, "ctl")
		chaEnv.step(t, m2, "cha")
	}

	// Phase 3: a sustained environment outage trips the breaker...
	for i := 0; i < res.BreakerThreshold; i++ {
		sug, err := m2.Suggest("cha", "")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m2.Observe("cha", ObserveRequest{Step: sug.Step, ExecTime: chaEnv.defTime, Failed: true}, ""); err != nil {
			t.Fatal(err)
		}
	}
	s, err := m2.Get("cha")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Health(); got != HealthDegraded {
		t.Fatalf("health after outage = %q, want degraded", got)
	}
	sug, err := m2.Suggest("cha", "")
	if err != nil {
		t.Fatal(err)
	}
	if !sug.Degraded {
		t.Fatal("degraded session did not serve the last-known-good fallback")
	}
	// ...and a recovered environment closes it again: cooldown observations
	// followed by a successful half-open probe. Cooldown+probe is bounded,
	// so cap the loop rather than trusting the state machine blindly.
	for i := 0; s.Health() != HealthHealthy; i++ {
		if i > res.BreakerCooldown+2 {
			t.Fatalf("breaker stuck in %q after %d clean observations", s.Health(), i)
		}
		sug, err := m2.Suggest("cha", "")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m2.Observe("cha", ObserveRequest{Step: sug.Step, ExecTime: chaEnv.defTime}, ""); err != nil {
			t.Fatal(err)
		}
	}

	ctl, err := m2.Get("ctl")
	if err != nil {
		t.Fatal(err)
	}
	ctlInfo, chaInfo := ctl.Info(), s.Info()

	// The chaos run actually saw faults and quarantined the corrupt ones.
	if st := chaEnv.ch.Stats(); st.Faults() == 0 ||
		float64(st.Faults())/float64(st.Evals) < 0.10 {
		t.Fatalf("injected fault rate below 10%%: %+v", st)
	}
	if chaInfo.Quarantined == 0 {
		t.Fatal("no observation was quarantined despite corruption injection")
	}
	if chaInfo.Trips == 0 || chaInfo.Health != HealthHealthy {
		t.Fatalf("breaker never tripped or never recovered: trips %d health %q",
			chaInfo.Trips, chaInfo.Health)
	}

	// Convergence: the faulted session's best time is within 15% of the
	// fault-free control's.
	if chaInfo.BestTime > ctlInfo.BestTime*1.15 {
		t.Fatalf("chaos best %.2f vs control best %.2f: gap %.1f%% exceeds 15%%",
			chaInfo.BestTime, ctlInfo.BestTime, (chaInfo.BestTime/ctlInfo.BestTime-1)*100)
	}

	// Zero corrupted transitions anywhere durable: every warehouse record
	// and every checkpoint must be finite.
	var scanned int
	if err := wh2.ScanRecords(func(rec warehouse.Record) bool {
		scanned++
		for _, vs := range [][]float64{rec.Transition.State, rec.Transition.Action,
			rec.Transition.NextState, {rec.Transition.Reward}} {
			for _, v := range vs {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("non-finite value in warehouse record from %s", rec.Session)
				}
			}
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if scanned == 0 {
		t.Fatal("warehouse holds no records; the scan proves nothing")
	}
	ids, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("store holds %d checkpoints, want 2", len(ids))
	}
	for _, id := range ids {
		data, err := store.Load(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyCheckpoint(data); err != nil {
			t.Fatal(err)
		}
	}
}
