package service_test

import (
	"math"
	"net"
	"net/http"
	"testing"

	"deepcat/internal/cli"
	"deepcat/internal/service"
	"deepcat/internal/service/client"
)

// startDaemon serves a Manager over a real TCP listener on a random port
// and returns the manager, a client bound to it, and a shutdown function.
func startDaemon(t *testing.T, dir string, maxSessions int) (*service.Manager, *client.Client, func()) {
	t.Helper()
	store, err := service.NewFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	manager := service.NewManager(store, maxSessions)
	if _, err := manager.Resume(); err != nil {
		t.Fatalf("resume: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: service.NewServer(manager)}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ln)
	}()
	stop := func() {
		srv.Close()
		<-done
	}
	return manager, client.New("http://" + ln.Addr().String()), stop
}

// TestEndToEndTuningWithRestart is the acceptance test for the tuning
// service: it starts the daemon on a random port, opens a session for a
// sparksim workload, plays the external-scheduler role for 20
// suggest/observe rounds (evaluating each suggested configuration on its
// own simulator), kills the daemon, restarts it from the checkpoint
// directory, verifies the session resumed with replay pool and best-found
// configuration intact, and keeps tuning through the restored session.
func TestEndToEndTuningWithRestart(t *testing.T) {
	dir := t.TempDir()
	_, c, stop := startDaemon(t, dir, 8)

	if h, err := c.Health(); err != nil || h.Status != "ok" {
		t.Fatalf("health = %+v, %v", h, err)
	}

	info, err := c.CreateSession(service.CreateSessionRequest{
		Workload:     "TS",
		Input:        1,
		Seed:         42,
		OfflineIters: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.State != service.StateReady || info.ReplayLen != 25 {
		t.Fatalf("created session = %+v", info)
	}
	id := info.ID

	// The test is the job scheduler: it owns the target system (here a
	// sparksim instance) and reports measured runtimes back.
	target, err := cli.BuildEnv("a", "TS", 1, 4242)
	if err != nil {
		t.Fatal(err)
	}

	const rounds = 20
	best := math.Inf(1)
	runRounds := func(c *client.Client, n int, from int) {
		t.Helper()
		for i := 0; i < n; i++ {
			sug, err := c.Suggest(id)
			if err != nil {
				t.Fatalf("suggest round %d: %v", from+i, err)
			}
			if sug.Step != from+i+1 {
				t.Fatalf("suggest step = %d, want %d", sug.Step, from+i+1)
			}
			if len(sug.Config) != target.Space().Dim() {
				t.Fatalf("config has %d entries, want %d", len(sug.Config), target.Space().Dim())
			}
			outcome := target.Evaluate(sug.Action)
			obs, err := c.Observe(id, service.ObserveRequest{
				Step:     sug.Step,
				ExecTime: outcome.ExecTime,
				Failed:   outcome.Failed,
				State:    outcome.State,
			})
			if err != nil {
				t.Fatalf("observe round %d: %v", from+i, err)
			}
			if !outcome.Failed && outcome.ExecTime < best {
				best = outcome.ExecTime
				if !obs.Improved {
					t.Fatalf("round %d: %.1fs should have improved the best", from+i, outcome.ExecTime)
				}
			}
			if obs.BestTime != best {
				t.Fatalf("round %d: server best %.3f, scheduler best %.3f", from+i, obs.BestTime, best)
			}
		}
	}
	runRounds(c, rounds, 0)

	pre, err := c.Session(id)
	if err != nil {
		t.Fatal(err)
	}
	if pre.Step != rounds || pre.ReplayLen != 25+rounds {
		t.Fatalf("pre-restart session = %+v", pre)
	}
	if pre.BestTime != best || len(pre.BestAction) != target.Space().Dim() {
		t.Fatalf("pre-restart best %.3f (want %.3f), action dims %d", pre.BestTime, best, len(pre.BestAction))
	}

	// Kill the daemon and restart from the checkpoint directory.
	stop()
	manager2, c2, stop2 := startDaemon(t, dir, 8)
	defer stop2()
	if manager2.Count() != 1 {
		t.Fatalf("restarted daemon resumed %d sessions, want 1", manager2.Count())
	}

	post, err := c2.Session(id)
	if err != nil {
		t.Fatal(err)
	}
	if post.Step != pre.Step || post.ReplayLen != pre.ReplayLen {
		t.Fatalf("resumed session = %+v, want step %d replay %d", post, pre.Step, pre.ReplayLen)
	}
	if post.BestTime != pre.BestTime {
		t.Fatalf("resumed best %.3f, want %.3f", post.BestTime, pre.BestTime)
	}
	for i := range pre.BestAction {
		if post.BestAction[i] != pre.BestAction[i] {
			t.Fatalf("best action dim %d changed across restart", i)
		}
	}

	// The resumed session keeps tuning.
	runRounds(c2, 5, rounds)
	final, err := c2.Session(id)
	if err != nil {
		t.Fatal(err)
	}
	if final.Step != rounds+5 || final.ReplayLen != 25+rounds+5 {
		t.Fatalf("final session = %+v", final)
	}

	// Deleting the session also drops its checkpoint, so a further
	// restart comes up empty.
	if err := c2.DeleteSession(id); err != nil {
		t.Fatal(err)
	}
	stop2()
	manager3, _, stop3 := startDaemon(t, dir, 8)
	defer stop3()
	if manager3.Count() != 0 {
		t.Fatalf("deleted session came back: %d sessions", manager3.Count())
	}
}

// TestServerErrorMapping checks the HTTP status codes the API contract
// promises for the common failure shapes.
func TestServerErrorMapping(t *testing.T) {
	_, c, stop := startDaemon(t, t.TempDir(), 1)
	defer stop()

	wantStatus := func(err error, want int, what string) {
		t.Helper()
		apiErr, ok := err.(*client.APIError)
		if !ok {
			t.Fatalf("%s: error %v is not an APIError", what, err)
		}
		if apiErr.Status != want {
			t.Fatalf("%s: status %d, want %d", what, apiErr.Status, want)
		}
	}

	_, err := c.Session("missing")
	wantStatus(err, http.StatusNotFound, "get missing")

	_, err = c.CreateSession(service.CreateSessionRequest{Workload: "nope", Input: 1})
	wantStatus(err, http.StatusBadRequest, "bad workload")

	info, err := c.CreateSession(service.CreateSessionRequest{Workload: "WC", Input: 2})
	if err != nil {
		t.Fatal(err)
	}

	_, err = c.Observe(info.ID, service.ObserveRequest{ExecTime: 10})
	wantStatus(err, http.StatusConflict, "observe without suggestion")

	_, err = c.CreateSession(service.CreateSessionRequest{Workload: "TS", Input: 1})
	wantStatus(err, http.StatusServiceUnavailable, "over capacity")

	sug, err := c.Suggest(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Observe(info.ID, service.ObserveRequest{Step: sug.Step, ExecTime: -1})
	wantStatus(err, http.StatusBadRequest, "negative exec time")

	if err := c.DeleteSession(info.ID); err != nil {
		t.Fatal(err)
	}
	err = c.DeleteSession(info.ID)
	wantStatus(err, http.StatusNotFound, "double delete")
}

// TestObserveSurvivesCrashAfterCheckpoint simulates the crash-recovery
// contract directly at the manager layer: every acknowledged observation
// is on disk, so a crash immediately after an observe loses nothing.
func TestObserveSurvivesCrashAfterCheckpoint(t *testing.T) {
	dir := t.TempDir()
	store, err := service.NewFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := service.NewManager(store, 0)
	info, err := m.Create(service.CreateSessionRequest{ID: "crashy", Workload: "PR", Input: 1})
	if err != nil {
		t.Fatal(err)
	}
	sug, err := m.Suggest(info.ID, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Observe(info.ID, service.ObserveRequest{Step: sug.Step, ExecTime: 321}, ""); err != nil {
		t.Fatal(err)
	}
	// "Crash": no shutdown hooks run; a new manager reads the same dir.
	store2, err := service.NewFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m2 := service.NewManager(store2, 0)
	if n, err := m2.Resume(); err != nil || n != 1 {
		t.Fatalf("Resume = %d, %v", n, err)
	}
	s, err := m2.Get("crashy")
	if err != nil {
		t.Fatal(err)
	}
	got := s.Info()
	if got.Step != 1 || got.ReplayLen != 1 || got.BestTime != 321 {
		t.Fatalf("recovered session = %+v", got)
	}
}
