// Package service implements the tuning-as-a-service daemon: a registry of
// concurrent tuning sessions, each wrapping a core.DeepCAT agent bound to a
// workload, driven over a stdlib net/http JSON API by external job
// schedulers. Sessions checkpoint their full agent and replay state to a
// pluggable Store after every observation, so a restarted daemon resumes
// mid-tuning instead of re-paying offline training — the paper's
// cost-efficiency argument extended to process lifetime.
//
// API surface (all bodies JSON):
//
//	POST   /v1/sessions               create a session
//	GET    /v1/sessions               list sessions
//	GET    /v1/sessions/{id}          inspect one session
//	DELETE /v1/sessions/{id}          close a session and drop its checkpoint
//	POST   /v1/sessions/{id}/suggest  get the next configuration to run
//	POST   /v1/sessions/{id}/observe  report the measured outcome
//	GET    /healthz                   liveness and session counts
//
// When the daemon records flight-recorder traces (see Manager.AttachTrace),
// two endpoints expose each session's decision stream:
//
//	GET /v1/sessions/{id}/trace                        recent events (?n= limits)
//	GET /v1/sessions/{id}/trace/export?format=chrome   Chrome trace-event JSON
//
// When the daemon runs a fleet experience warehouse, sessions additionally
// stream every observed transition into it, new sessions warm-start from
// its donor agents, and two more endpoints expose its state:
//
//	GET /v1/warehouse/stats                  log, family and donor summary
//	GET /v1/warehouse/families/{sig}/donors  donor generations of one family
//
// Every daemon also exposes its metrics registry as a mergeable JSON
// snapshot (the per-shard scrape target of the fleet aggregator):
//
//	GET /v1/metrics/snapshot          obs.Snapshot JSON (empty without a registry)
//
// When the daemon runs as one shard of a fleet (see NewFleetServer and the
// internal/fleet package), every node answers every route — requests for
// sessions owned by another shard are 307-redirected (or server-side
// proxied) to the owner, with the request id and trace context forwarded on
// every hop — and these endpoints appear:
//
//	GET  /v1/healthz                  liveness (alias of /healthz)
//	GET  /v1/readyz                   readiness: store reachable, registry responsive
//	GET  /v1/fleet/ring               membership, per-peer readiness, ownership
//	GET  /v1/fleet/metrics            fleet-wide merged registry (Prometheus text;
//	                                  ?format=json adds per-shard snapshots)
//	GET  /v1/fleet/segments           shippable warehouse WAL segments
//	GET  /v1/fleet/segments/{name}    one segment's bytes (peers pull these)
//	POST /v1/fleet/migrate/{id}       drain a session and hand it to ?target=
//	POST /v1/fleet/adopt/{id}         accept a handed-off checkpoint (gob body)
package service

import (
	"time"

	"deepcat/internal/obs"
	"deepcat/internal/trace"
	"deepcat/internal/warehouse"
)

// Session lifecycle states.
const (
	// StateReady means the session will produce a fresh suggestion on the
	// next suggest call.
	StateReady = "ready"
	// StateAwaitingObservation means a suggestion is outstanding; suggest
	// re-returns it idempotently until the matching observe arrives.
	StateAwaitingObservation = "awaiting_observation"
	// StateClosed means the session was deleted and accepts no more calls.
	StateClosed = "closed"
)

// CreateSessionRequest asks the daemon to open a tuning session for one
// workload-input pair.
type CreateSessionRequest struct {
	// ID optionally fixes the session id (letters, digits, '.', '_', '-');
	// empty lets the daemon generate one.
	ID string `json:"id,omitempty"`
	// Workload is the Table-1 abbreviation: WC, TS, PR or KM.
	Workload string `json:"workload"`
	// Input is the 1-based dataset index (D1-D3).
	Input int `json:"input"`
	// Cluster is the hardware environment, "a" (default) or "b".
	Cluster string `json:"cluster,omitempty"`
	// Seed drives the session's randomness; 0 defaults to 1.
	Seed int64 `json:"seed,omitempty"`
	// OfflineIters optionally warm-starts the agent with that many offline
	// training iterations against the simulated environment before the
	// session starts serving suggestions. 0 starts cold.
	OfflineIters int `json:"offline_iters,omitempty"`
	// NoWarmStart opts the session out of warehouse warm-starting even
	// when the daemon runs a warehouse with a matching donor; control and
	// benchmark sessions use it to measure cold-start behavior.
	NoWarmStart bool `json:"no_warm_start,omitempty"`
}

// SessionInfo describes a session's public state.
type SessionInfo struct {
	ID          string    `json:"id"`
	Workload    string    `json:"workload"`
	Input       int       `json:"input"`
	Cluster     string    `json:"cluster"`
	Seed        int64     `json:"seed"`
	State       string    `json:"state"`
	Step        int       `json:"step"`
	DefaultTime float64   `json:"default_time"`
	BestTime    float64   `json:"best_time,omitempty"`
	BestAction  []float64 `json:"best_action,omitempty"`
	ReplayLen   int       `json:"replay_len"`
	// HighReplayLen is the size of the RDPER high-reward pool (0 for
	// non-RDPER replay modes).
	HighReplayLen int `json:"high_replay_len,omitempty"`
	// WarmStarted reports that the session was seeded from the warehouse
	// donor named by Donor instead of starting cold.
	WarmStarted bool   `json:"warm_started,omitempty"`
	Donor       string `json:"donor,omitempty"`
	// SpineMode reports that the session runs in actor/learner mode against
	// the shared replay spine; SpineVersion is the learner policy version it
	// last adopted (0 = none yet) and SpineAdoptions how many times it has
	// adopted refreshed weights.
	SpineMode      bool `json:"spine_mode,omitempty"`
	SpineVersion   int  `json:"spine_version,omitempty"`
	SpineAdoptions int  `json:"spine_adoptions,omitempty"`
	// SpineSheds counts this session's transitions dropped by the spine's
	// bounded ingest queue under backpressure (0 on a synchronous spine).
	// Lost experience costs training signal, never a serving answer.
	SpineSheds uint64 `json:"spine_sheds,omitempty"`
	// Health is the session's circuit-breaker state: "healthy",
	// "degraded" (breaker open, serving the last known good
	// configuration) or "half_open" (probing recovery).
	Health string `json:"health,omitempty"`
	// Quarantined counts observations the sanitizer refused (non-finite
	// or outlier measurements); Trips counts breaker openings.
	Quarantined int       `json:"quarantined,omitempty"`
	Trips       int       `json:"breaker_trips,omitempty"`
	CreatedAt   time.Time `json:"created_at"`
	UpdatedAt   time.Time `json:"updated_at"`
}

// SuggestResponse carries the next configuration to evaluate. Action is the
// normalized [0,1]^d vector (what observe echoes back implicitly via Step);
// Config is the same configuration denormalized to parameter values keyed
// by parameter name, ready to apply to a framework.
type SuggestResponse struct {
	Step      int                `json:"step"`
	Action    []float64          `json:"action"`
	Config    map[string]float64 `json:"config"`
	Optimized bool               `json:"optimized"`
	// Degraded marks a last-known-good fallback served while the session's
	// circuit breaker is open; the model was not consulted.
	Degraded bool `json:"degraded,omitempty"`
}

// ObserveRequest reports the measured outcome of the suggestion identified
// by Step (0 means "the pending one").
type ObserveRequest struct {
	Step int `json:"step,omitempty"`
	// ExecTime is the measured execution time in seconds.
	ExecTime float64 `json:"exec_time"`
	// Failed marks a run that crashed or violated constraints.
	Failed bool `json:"failed,omitempty"`
	// State optionally carries the post-run system state (load averages);
	// when omitted the session keeps its previous state vector.
	State []float64 `json:"state,omitempty"`
}

// ObserveResponse acknowledges an observation.
type ObserveResponse struct {
	Step     int     `json:"step"`
	Reward   float64 `json:"reward"`
	BestTime float64 `json:"best_time"`
	// Improved reports whether this observation set a new best.
	Improved bool `json:"improved"`
	// Quarantined reports that the sanitizer refused the measurement
	// (non-finite or implausible outlier): the step advanced but nothing
	// was learned, checkpointed or warehoused from it.
	Quarantined bool `json:"quarantined,omitempty"`
	// Health is the session's circuit-breaker state after this
	// observation; see SessionInfo.Health.
	Health string `json:"health,omitempty"`
}

// HealthResponse is the /healthz body.
type HealthResponse struct {
	Status      string `json:"status"`
	Sessions    int    `json:"sessions"`
	MaxSessions int    `json:"max_sessions"`
	// DegradedSessions counts live sessions whose circuit breaker is
	// currently open (degraded or half-open).
	DegradedSessions int `json:"degraded_sessions,omitempty"`
}

// WarehouseStatsResponse is the /v1/warehouse/stats body. Stats is absent
// when the daemon runs without a warehouse.
type WarehouseStatsResponse struct {
	Enabled bool             `json:"enabled"`
	Stats   *warehouse.Stats `json:"stats,omitempty"`
}

// DonorListResponse is the per-family donor listing body.
type DonorListResponse struct {
	Signature string                `json:"signature"`
	Donors    []warehouse.DonorMeta `json:"donors"`
}

// TraceResponse is the /v1/sessions/{id}/trace body: the session's most
// recent flight-recorder events, oldest first. Dropped counts events the
// bounded ring has evicted since the session started (they may still be in
// the on-disk spool when the daemon runs with one).
type TraceResponse struct {
	Session string        `json:"session"`
	Events  []trace.Event `json:"events"`
	Dropped uint64        `json:"dropped,omitempty"`
}

// ReadyResponse is the /v1/readyz body. Ready is true only when every
// dependency a request needs is answering; a false body rides a 503 so
// load balancers and the fleet's peer probes need only the status code.
type ReadyResponse struct {
	Ready bool `json:"ready"`
	// Store reports the checkpoint store answering a List.
	Store bool `json:"store"`
	// Registry reports the session registry answering within the probe
	// budget (a wedged manager lock fails this).
	Registry bool `json:"registry"`
	// Reason names the failing dependency when Ready is false.
	Reason string `json:"reason,omitempty"`
}

// RingMember describes one fleet member in the ring listing.
type RingMember struct {
	URL string `json:"url"`
	// Self marks the member serving this response.
	Self bool `json:"self,omitempty"`
	// Ready mirrors the responder's last readiness probe of this member.
	Ready bool `json:"ready"`
}

// RingResponse is the /v1/fleet/ring body.
type RingResponse struct {
	Self    string       `json:"self"`
	Members []RingMember `json:"members"`
	// Sessions counts sessions live on the responding node only.
	Sessions int `json:"sessions"`
}

// SegmentListResponse is the /v1/fleet/segments body.
type SegmentListResponse struct {
	Segments []warehouse.SegmentInfo `json:"segments"`
}

// MigrateResponse acknowledges a completed session handoff.
type MigrateResponse struct {
	ID     string `json:"id"`
	Target string `json:"target"`
}

// ShardMetrics is one fleet member's contribution to the aggregated
// metrics view. OK false marks a shard that could not be scraped (or whose
// snapshot could not merge); Error says why and Snapshot is empty.
type ShardMetrics struct {
	URL  string `json:"url"`
	Self bool   `json:"self,omitempty"`
	OK   bool   `json:"ok"`
	// Error is the scrape or merge failure, "" when OK.
	Error    string       `json:"error,omitempty"`
	Snapshot obs.Snapshot `json:"snapshot,omitempty"`
}

// FleetMetricsResponse is the /v1/fleet/metrics?format=json body: the
// per-shard snapshots (so a dashboard can show per-shard QPS next to fleet
// totals) plus the merged registry, already annotated with one
// deepcat_fleet_shard_up gauge per member.
type FleetMetricsResponse struct {
	Self   string         `json:"self"`
	Shards []ShardMetrics `json:"shards"`
	Merged obs.Snapshot   `json:"merged"`
}

// ErrorResponse is the envelope for every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}
